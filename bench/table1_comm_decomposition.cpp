// Table 1: decomposition of communication time for the flat (MPI-only)
// 2D algorithm on Franklin, R-MAT graphs with a constant edge budget and
// varying sparsity: (scale 27, deg 64), (scale 29, deg 16), (scale 31,
// deg 4), at 1024 / 2025 / 4096 cores. Expected shapes (paper §5.2/§6):
//  * Allgatherv (expand) always consumes a larger share of BFS time than
//    Alltoallv (fold),
//  * the gap widens as the graph gets sparser — for fixed edges the
//    vector dimension grows, and only the expand volume scales with it,
//  * both percentages rise with the core count.
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int mid_scale = util::bench_scale(16);
  const int nsources = bench_sources(2);

  print_header("Table 1: communication decomposition, flat 2D, Franklin",
               "Table 1, scales {27,29,31}, edge factors {64,16,4}",
               "ours: scales {" + std::to_string(mid_scale - 2) + "," +
                   std::to_string(mid_scale) + "," +
                   std::to_string(mid_scale + 2) +
                   "}, fixed edge budget, latency-rescaled franklin");

  std::printf("%-8s %-10s %-8s %14s %14s %14s\n", "cores", "scale",
              "degree", "BFS time (ms)", "Allgatherv", "Alltoallv");

  struct Config {
    int scale;
    int degree;
  };
  const Config configs[] = {{mid_scale - 2, 64},
                            {mid_scale, 16},
                            {mid_scale + 2, 4}};

  for (int cores : {1024, 2025, 4096}) {
    for (const Config& cfg : configs) {
      const Workload w = make_rmat_workload(cfg.scale, cfg.degree, nsources);
      const auto machine = scaled_machine(
          model::franklin(), w.built.directed_edge_count, 33.0);

      core::EngineOptions opts;
      opts.algorithm = core::Algorithm::kTwoDFlat;
      opts.cores = cores;
      opts.machine = machine;
      const MeanTimes mt = run_config(w, opts);
      std::printf("%-8d %-10d %-8d %14.3f %13.1f%% %13.1f%%\n", cores,
                  cfg.scale, cfg.degree, mt.total * 1e3,
                  100.0 * mt.allgather / mt.total,
                  100.0 * mt.alltoall / mt.total);
    }
  }
  std::printf("\nexpected: Allgatherv%% > Alltoallv%% everywhere; gap widens "
              "with sparsity (larger scale, lower degree); both rise with "
              "cores\n");
  return 0;
}
