# doctor_smoke: end-to-end check of the regression-attribution loop.
#   1. Seed a known regression: a scale-14 1d/raw run with --slow-beta=2
#      (doubled per-byte network cost — a pure machine-model drift).
#   2. bench_diff against the committed baselines with --doctor-out must
#      exit 1 AND auto-produce the doctor report: the output names the
#      DOCTOR_*.json path and the top-ranked cause.
#   3. The diagnosis must attribute the regression to the seeded cause
#      (network-beta-drift) — not merely detect "slower".
#   4. The standalone bench_doctor CLI on the same pair agrees.
# Invoked by ctest as
#   cmake -DBENCH_SUITE=<exe> -DBENCH_DIFF=<exe> -DBENCH_DOCTOR=<exe>
#         -DBASELINE_DIR=<repo> -DOUT_DIR=<scratch> -P doctor_smoke.cmake
foreach(var BENCH_SUITE BENCH_DIFF BENCH_DOCTOR BASELINE_DIR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "doctor_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/slowed" "${OUT_DIR}/doctor")

# One slowed record is enough: the doctor attributes per record pair.
execute_process(
  COMMAND "${BENCH_SUITE}" --scales=14 --algos=1d --wires=raw --slow-beta=2
          "--out-dir=${OUT_DIR}/slowed"
  RESULT_VARIABLE suite_rc
  OUTPUT_VARIABLE suite_out
  ERROR_VARIABLE suite_err)
if(NOT suite_rc EQUAL 0)
  message(FATAL_ERROR "doctor_smoke: bench_suite failed (rc=${suite_rc})\n"
                      "stdout:\n${suite_out}\nstderr:\n${suite_err}")
endif()

execute_process(
  COMMAND "${BENCH_DIFF}" "${BASELINE_DIR}" "${OUT_DIR}/slowed"
          "--doctor-out=${OUT_DIR}/doctor"
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 1)
  message(FATAL_ERROR "doctor_smoke: slowed diff should exit 1, got "
                      "rc=${diff_rc}\nstdout:\n${diff_out}\n"
                      "stderr:\n${diff_err}")
endif()
if(NOT diff_out MATCHES "DOCTOR_")
  message(FATAL_ERROR "doctor_smoke: gate tripped but the output does not "
                      "reference a DOCTOR_*.json report\n${diff_out}")
endif()
if(NOT diff_out MATCHES "top cause network-beta-drift")
  message(FATAL_ERROR "doctor_smoke: 2x beta_net regression was not "
                      "attributed to network-beta-drift\n${diff_out}")
endif()

file(GLOB doctor_reports "${OUT_DIR}/doctor/DOCTOR_*.json")
list(LENGTH doctor_reports nreports)
if(nreports LESS 1)
  message(FATAL_ERROR "doctor_smoke: no DOCTOR_*.json written under "
                      "${OUT_DIR}/doctor")
endif()
list(GET doctor_reports 0 first_report)
file(READ "${first_report}" report_json)
if(NOT report_json MATCHES "network-beta-drift")
  message(FATAL_ERROR "doctor_smoke: ${first_report} does not name "
                      "network-beta-drift\n${report_json}")
endif()

# The standalone CLI over the same pair must reach the same diagnosis.
execute_process(
  COMMAND "${BENCH_DOCTOR}" "${BASELINE_DIR}" "${OUT_DIR}/slowed"
  RESULT_VARIABLE doctor_rc
  OUTPUT_VARIABLE doctor_out
  ERROR_VARIABLE doctor_err)
if(NOT doctor_rc EQUAL 0)
  message(FATAL_ERROR "doctor_smoke: bench_doctor failed (rc=${doctor_rc})\n"
                      "stdout:\n${doctor_out}\nstderr:\n${doctor_err}")
endif()
if(NOT doctor_out MATCHES "1\\. network-beta-drift")
  message(FATAL_ERROR "doctor_smoke: bench_doctor did not rank "
                      "network-beta-drift first\n${doctor_out}")
endif()

message(STATUS "doctor_smoke passed: ${nreports} report(s), seeded 2x "
               "beta_net attributed to network-beta-drift")
