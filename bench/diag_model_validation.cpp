// Diagnostic: cross-validation of the two timing paths. The volume-
// profile pricing (core/volume_profile.hpp) extrapolates the figures
// beyond the functional simulator's range, so the two must agree where
// both can run. This harness sweeps (algorithm, machine, cores) and
// prints functional-vs-priced totals with their ratio; large systematic
// drift here would undermine every starred point in Figs 5-9.
#include "harness/harness.hpp"

#include "core/volume_profile.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(14);
  const Workload w = make_rmat_workload(scale, 16, 2);
  const auto profile = core::VolumeProfile::measure(
      w.built.csr, w.sources.front());

  print_header("Diagnostic: functional simulator vs volume-profile pricing",
               "internal consistency of the starred figure points",
               "ours: scale " + std::to_string(scale) +
                   " R-MAT, ratio = priced / functional (1.0 = perfect)");

  std::printf("%-10s %-8s %-8s %14s %14s %8s\n", "machine", "algo", "cores",
              "functional(us)", "priced (us)", "ratio");

  double worst = 1.0;
  for (const char* machine_name : {"franklin", "hopper"}) {
    const auto machine = scaled_machine(model::preset(machine_name),
                                        w.built.directed_edge_count, 33.0);
    for (int cores : {64, 256, 1024}) {
      for (bool two_d : {false, true}) {
        core::EngineOptions opts;
        opts.algorithm = two_d ? core::Algorithm::kTwoDFlat
                               : core::Algorithm::kOneDFlat;
        opts.cores = cores;
        opts.machine = machine;
        core::Engine engine{w.built.edges, w.n, opts};
        const auto functional =
            engine.run(w.sources.front()).report.total_seconds;

        double priced;
        if (two_d) {
          core::Price2DOptions o;
          o.cores = cores;
          priced = core::price_2d(profile, machine, o).total_seconds;
        } else {
          core::Price1DOptions o;
          o.cores = cores;
          priced = core::price_1d(profile, machine, o).total_seconds;
        }
        const double ratio = priced / functional;
        worst = std::max(worst, std::max(ratio, 1.0 / ratio));
        std::printf("%-10s %-8s %-8d %14.2f %14.2f %8.2f\n", machine_name,
                    two_d ? "2d" : "1d", cores, functional * 1e6,
                    priced * 1e6, ratio);
      }
    }
  }
  std::printf("\nworst-case disagreement: %.2fx (figure harnesses also "
              "apply one-point calibration at the handoff, tightening "
              "this further)\n",
              worst);
  return 0;
}
