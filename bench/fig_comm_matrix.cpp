// Communication-matrix study: where do the bytes of a distributed BFS
// actually flow? For each algorithm x wire-format configuration we run
// one search with the communication atlas attached and print the
// per-rank-pair roll-up: total/network bytes, the share confined to 2D
// row/column subcommunicators, send/receive skew, and the hotspot pair.
//
// This is the quantitative form of the paper's central architectural
// claim (SS3, SS6): the 2D checkerboard decomposition replaces the 1D
// code's world-sized alltoallv with collectives over O(sqrt(p))-sized
// row and column groups, so almost all traffic stays inside small
// subcommunicators while 1D confines exactly none of it.
//
// The hybrid direction's three bottom-up exchanges split: the frontier
// broadcast (2d-bu-frontier) rides the column groups, but the
// completion and result exchanges (2d-bu-complete / 2d-bu-result) run
// between transpose partners (i,j) <-> (j,i), which live in different
// rows AND columns — grid-wide pairwise traffic by construction. So
// hybrid runs confine a structurally smaller (but still nonzero) share,
// and get their own gate below.
//
// Doubles as the acceptance gate for the atlas analytics: top-down 2D
// must confine >= 50% of its network bytes to subcommunicators at the
// largest scale, hybrid 2D >= 15% (through all three bottom-up
// exchanges), and the 1D runs must confine exactly 0 bytes (a 1xp grid
// has no proper subgroup), or the bench exits nonzero.
#include "harness/harness.hpp"

#include "obs/comm_atlas.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

// Measured at scale 16 / 64 cores: 2d raw 95%, 2d auto 69%, hybrid raw
// 61%, hybrid auto 25% (auto compresses the row/col collectives but not
// the transpose-partner result exchange, so hybrid's share drops).
constexpr double kLocalityGate = 0.5;
constexpr double kHybridLocalityGate = 0.15;

struct Config {
  const char* label;
  core::Algorithm algorithm;
  bfs::DirectionMode direction;
  comm::WireFormat wire;
};

struct Row {
  const char* label;
  bool two_d;
  bool hybrid;
  obs::AtlasSummary summary;
};

Row run_config(const Workload& w, const Config& cfg) {
  core::EngineOptions opts;
  opts.algorithm = cfg.algorithm;
  opts.cores = 64;
  opts.machine = model::hopper();
  opts.wire_format = cfg.wire;
  opts.direction = cfg.direction;
  opts.atlas = true;

  core::Engine engine{w.built.edges, w.n, opts};
  (void)engine.run(w.sources.front());

  Row row;
  row.label = cfg.label;
  row.two_d = cfg.algorithm == core::Algorithm::kTwoDFlat;
  row.hybrid = cfg.direction == bfs::DirectionMode::kHybrid;
  row.summary = engine.comm_atlas()->summary();
  return row;
}

}  // namespace

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(16);

  print_header("Fig X: per-rank-pair communication matrix",
               "SS3/SS6 subcommunicator decomposition, quantified",
               "R-MAT ef 16, 64 cores, hopper; bytes confined to 2D "
               "row/column groups vs the full grid");

  const Config configs[] = {
      {"1d raw", core::Algorithm::kOneDFlat, bfs::DirectionMode::kTopDown,
       comm::WireFormat::kRaw},
      {"1d auto", core::Algorithm::kOneDFlat, bfs::DirectionMode::kTopDown,
       comm::WireFormat::kAuto},
      {"2d raw", core::Algorithm::kTwoDFlat, bfs::DirectionMode::kTopDown,
       comm::WireFormat::kRaw},
      {"2d auto", core::Algorithm::kTwoDFlat, bfs::DirectionMode::kTopDown,
       comm::WireFormat::kAuto},
      {"2d-hybrid raw", core::Algorithm::kTwoDFlat,
       bfs::DirectionMode::kHybrid, comm::WireFormat::kRaw},
      {"2d-hybrid auto", core::Algorithm::kTwoDFlat,
       bfs::DirectionMode::kHybrid, comm::WireFormat::kAuto},
  };

  const Workload w = make_rmat_workload(scale, 16, 1);
  std::printf("\nscale %d (%lld vertices, %lld directed edges)\n", scale,
              static_cast<long long>(w.n),
              static_cast<long long>(w.built.directed_edge_count));
  std::printf("%-16s %6s %14s %14s %10s %8s %8s %12s\n", "config", "grid",
              "network B", "subcomm B", "locality", "row-skew", "col-skew",
              "max pair");

  bool ok = true;
  for (const Config& cfg : configs) {
    const Row row = run_config(w, cfg);
    const obs::AtlasSummary& s = row.summary;
    char grid[16], pair[32];
    std::snprintf(grid, sizeof(grid), "%dx%d", s.grid_rows, s.grid_cols);
    std::snprintf(pair, sizeof(pair), "%d->%d %4.1f%%", s.max_pair_src,
                  s.max_pair_dst, 100.0 * s.max_pair_share);
    std::printf("%-16s %6s %14llu %14llu %9.1f%% %8.2f %8.2f %12s\n",
                row.label, grid,
                static_cast<unsigned long long>(s.network_bytes),
                static_cast<unsigned long long>(s.subcomm_bytes),
                100.0 * s.locality_share, s.row_skew, s.col_skew, pair);

    if (row.two_d) {
      const double gate = row.hybrid ? kHybridLocalityGate : kLocalityGate;
      if (s.locality_share < gate) {
        std::fprintf(stderr,
                     "fig_comm_matrix: FAILED — %s confines %.1f%% of "
                     "network bytes to subcommunicators (gate: >= %.0f%%)\n",
                     row.label, 100.0 * s.locality_share, 100.0 * gate);
        ok = false;
      }
    } else if (s.subcomm_bytes != 0) {
      std::fprintf(stderr,
                   "fig_comm_matrix: FAILED — %s reports %llu subcomm "
                   "bytes; a 1xp grid has no proper subgroup\n",
                   row.label,
                   static_cast<unsigned long long>(s.subcomm_bytes));
      ok = false;
    }
  }

  std::printf("\nacceptance: top-down 2D confines >= %.0f%% of network bytes "
              "to row/column subcommunicators, hybrid 2D >= %.0f%% (the "
              "bottom-up completion/result exchanges run between transpose "
              "partners, which straddle the groups); 1D confines none\n",
              100.0 * kLocalityGate, 100.0 * kHybridLocalityGate);
  return ok ? 0 : 1;
}
