// Figure 4: per-rank MPI-time heatmap on a 16x16 process grid when the
// sparse vectors are distributed to the *diagonal* processors only (the
// classical "1D vector distribution"). Expected shape (paper §4.3): the
// diagonal's serial fold-side merge leaves the off-diagonal ranks idling
// in the next blocking collective — idle time ~3-4x the actual transfer
// time — while the 2D vector distribution shows almost no imbalance.
//
// We print both heatmaps (percent of the max rank's MPI time, as in the
// paper's normalization) plus summary ratios.
#include "harness/harness.hpp"
#include "obs/imbalance.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

void print_heatmap(const bfs::RunReport& report, int s) {
  double max_comm = 0;
  for (double c : report.per_rank_comm) max_comm = std::max(max_comm, c);
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      const double c = report.per_rank_comm[static_cast<std::size_t>(
          i * s + j)];
      std::printf(" %3.0f", 100.0 * c / max_comm);
    }
    std::printf("\n");
  }
}

double diagonal_vs_offdiagonal(const bfs::RunReport& report, int s) {
  double diag = 0;
  double off = 0;
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      const double c = report.per_rank_comm[static_cast<std::size_t>(
          i * s + j)];
      if (i == j) {
        diag += c;
      } else {
        off += c / (s - 1);
      }
    }
  }
  return off / diag;  // >1: off-diagonal ranks wait on the diagonal
}

}  // namespace

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(14);
  const Workload w = make_rmat_workload(scale, 16, 1);
  const auto machine =
      scaled_machine(model::franklin(), w.built.directed_edge_count, 33.0);
  const int s = 16;

  print_header("Figure 4: MPI time per rank, 16x16 grid, vector "
               "distribution comparison",
               "Fig 4 (diagonal-only vectors) + §4.3 (2D vectors)",
               "ours: scale " + std::to_string(scale) +
                   " R-MAT, 256 simulated ranks");

  bfs::RunReport diag_report;
  bfs::RunReport twod_report;
  obs::ImbalanceProfile diag_profile;
  obs::ImbalanceProfile twod_profile;
  for (auto kind : {dist::VectorDistKind::kDiagonal,
                    dist::VectorDistKind::kTwoD}) {
    core::EngineOptions opts;
    opts.algorithm = core::Algorithm::kTwoDFlat;
    opts.cores = s * s;
    opts.machine = machine;
    opts.vector_dist = kind;
    opts.trace = true;  // feed the per-level idle-time profiler
    core::Engine engine{w.built.edges, w.n, opts};
    const auto out = engine.run(w.sources.front());
    if (kind == dist::VectorDistKind::kDiagonal) {
      diag_report = out.report;
      diag_profile = obs::profile_imbalance(*engine.tracer(), s * s);
    } else {
      twod_report = out.report;
      twod_profile = obs::profile_imbalance(*engine.tracer(), s * s);
    }
  }

  std::printf("\n-- 1D (diagonal) vector distribution: %% of max rank's "
              "MPI time --\n");
  print_heatmap(diag_report, s);
  std::printf("\n-- 2D vector distribution: %% of max rank's MPI time --\n");
  print_heatmap(twod_report, s);

  const double diag_ratio = diagonal_vs_offdiagonal(diag_report, s);
  const double twod_spread =
      util::imbalance(twod_report.per_rank_comm);
  std::printf("\noff-diagonal/diagonal MPI-time ratio, diagonal dist: "
              "%.2fx (paper: idle ~3-4x transfer)\n", diag_ratio);
  std::printf("per-rank MPI-time imbalance (max/mean), 2D dist: %.2f "
              "(paper: almost no imbalance)\n", twod_spread);
  std::printf("BFS time: diagonal dist %.3f ms vs 2D dist %.3f ms\n",
              diag_report.total_seconds * 1e3,
              twod_report.total_seconds * 1e3);

  // The same story from the trace-derived profiler (the data BenchRecord
  // persists into BENCH_*.json): idle share of all per-rank seconds, and
  // which ranks the levels waited on — under the diagonal distribution
  // the stragglers should be exactly the diagonal ranks (i*s + i).
  std::printf("\nidle fraction of per-rank time (trace profiler): "
              "diagonal dist %.1f%%, 2D dist %.1f%%\n",
              100.0 * diag_profile.wait_fraction,
              100.0 * twod_profile.wait_fraction);
  std::printf("stragglers under diagonal dist (most frequent first):");
  for (std::size_t i = 0; i < diag_profile.straggler_ranks.size() && i < 8;
       ++i) {
    std::printf(" %d", diag_profile.straggler_ranks[i]);
  }
  std::printf("  (diagonal ranks are multiples of %d)\n", s + 1);
  return 0;
}
