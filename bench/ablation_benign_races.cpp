// Ablation B (paper §4.2): benign-race distance updates vs atomic
// compare-and-swap in the shared-memory BFS. The paper measures <0.5%
// duplicate insertions at six-way threading and avoids non-scaling
// atomics entirely. We report the duplicate rate and host wall time for
// both modes at several thread counts (real execution, not simulated —
// on a single-core CI host the thread counts oversubscribe and the
// duplicate count is structurally 0; the invariant bound still holds).
#include "harness/harness.hpp"

#include "bfs/shared.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(15);
  const Workload w = make_rmat_workload(scale, 16, 1);
  const vid_t source = w.sources.front();

  print_header("Ablation: benign races vs atomic visited updates",
               "§4.2 (<0.5% extra insertions at 6-way threading)",
               "ours: scale " + std::to_string(scale) +
                   " R-MAT, host execution");

  std::printf("%-10s %-10s %16s %16s %14s\n", "threads", "mode",
              "duplicates", "dup rate", "wall (ms)");
  for (int threads : {1, 2, 4, 6}) {
    for (bool atomics : {false, true}) {
      bfs::SharedBfsOptions opts;
      opts.num_threads = threads;
      opts.use_atomics = atomics;
      // Median of three runs to de-noise the wall time.
      std::vector<double> times;
      bfs::SharedBfsResult result;
      for (int rep = 0; rep < 3; ++rep) {
        result = bfs::shared_bfs(w.built.csr, source, opts);
        times.push_back(result.out.report.total_seconds);
      }
      vid_t visited = 0;
      for (level_t l : result.out.level) {
        if (l >= 0) ++visited;
      }
      std::printf("%-10d %-10s %16lld %15.4f%% %14.3f\n", threads,
                  atomics ? "atomic" : "benign",
                  static_cast<long long>(result.duplicate_insertions),
                  100.0 * static_cast<double>(result.duplicate_insertions) /
                      static_cast<double>(visited),
                  util::percentile(times, 0.5) * 1e3);
    }
  }
  std::printf("\nexpected: duplicate rate well under 0.5%% (paper's bound); "
              "benign mode avoids the atomics' overhead\n");
  return 0;
}
