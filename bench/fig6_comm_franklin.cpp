// Figure 6: inter-node MPI communication time (seconds, incl. barrier
// waits) on Franklin for the same configurations as Figure 5. Expected
// shape (paper §6): the 2D algorithms consistently spend 30-60% less
// time in communication than their 1D counterparts — smaller collective
// groups (sqrt(p) participants) move the same data faster — and the
// hybrid variants cut communication further by shrinking the groups.
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();

  {
    const int scale = util::bench_scale(15);
    ScalingSpec spec;
    spec.title = "Figure 6(a): communication time, Franklin";
    spec.paper_ref = "Fig 6(a), n=2^29 m=2^33";
    spec.machine = model::franklin();
    spec.paper_log2_edges = 33;
    spec.cores = {512, 1024, 2048, 4096};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled franklin");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/true);
  }

  {
    const int scale = util::bench_scale(16);
    ScalingSpec spec;
    spec.title = "Figure 6(b): communication time, Franklin";
    spec.paper_ref = "Fig 6(b), n=2^32 m=2^36";
    spec.machine = model::franklin();
    spec.paper_log2_edges = 36;
    spec.cores = {4096, 6400, 8192};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled franklin");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/true);
  }
  return 0;
}
