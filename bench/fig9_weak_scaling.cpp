// Figure 9: weak scaling on Franklin — fixed R-MAT edges per core (the
// paper fixes ~17M/core), p in {512..4096}; panel (a) mean search time,
// panel (b) communication time. Ideal is a flat line. Expected shapes
// (paper §6): in this regime flat 1D beats hybrid 1D (hybrid's intra-node
// overheads aren't yet bought back by smaller collectives), and the 2D
// codes communicate least but pay more computation, landing behind 1D
// overall on this architecture.
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();
  // Scale 13 at 512 cores, +1 per doubling: fixed edges per core.
  const int base_scale = util::bench_scale(13);
  const int cores_list[] = {512, 1024, 2048, 4096};

  print_header("Figure 9: weak scaling, Franklin",
               "Fig 9, ~17M edges/core",
               "ours: scale " + std::to_string(base_scale) + "+log2(p/512)"
                   ", edgefactor 16, latency-rescaled franklin");

  struct Row {
    int cores;
    AlgoResult results[4];
  };
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    const int cores = cores_list[i];
    const int scale = base_scale + i;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    ScalingSpec spec;
    spec.title = "";
    spec.paper_ref = "";
    spec.machine = model::franklin();
    spec.paper_log2_edges = 33 + i;  // paper: ~17M edges/core => 2^33 total at 512
    spec.cores = {cores};
    spec.scale = scale;
    spec.edge_factor = 16;
    ScalingRunner runner{spec, w};
    Row row;
    row.cores = cores;
    int k = 0;
    for (Algo a : ScalingRunner::kAll) row.results[k++] = runner.point(a, cores);
    rows.push_back(row);
  }

  std::printf("\n(a) mean search time (seconds; flat line = ideal)\n");
  std::printf("%-8s", "cores");
  for (Algo a : ScalingRunner::kAll) std::printf(" %16s", algo_name(a));
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-8d", row.cores);
    for (const AlgoResult& r : row.results) {
      std::printf(" %14.6f%s", r.total, r.modeled ? "*" : " ");
    }
    std::printf("\n");
  }

  std::printf("\n(b) communication time (seconds)\n");
  std::printf("%-8s", "cores");
  for (Algo a : ScalingRunner::kAll) std::printf(" %16s", algo_name(a));
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-8d", row.cores);
    for (const AlgoResult& r : row.results) {
      std::printf(" %14.6f%s", r.comm, r.modeled ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("(*) = volume-profile model point\n");
  return 0;
}
