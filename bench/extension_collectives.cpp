// §7 future-work exploration: "understanding the bottlenecks in
// [All-to-all and Allgather] at high process concurrencies, and designing
// network topology-aware collective algorithms". This bench quantifies
// how much an allgather-algorithm switcher would buy the 2D BFS:
//  (a) the per-call cost surface (payload x group) with its crossovers,
//  (b) end-to-end BFS time with the calibrated ring default vs an ideal
//      per-call switcher, on both low- and high-diameter graphs.
#include "harness/harness.hpp"

#include "bfs/bfs2d.hpp"
#include "model/cost.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  print_header("Extension: allgather algorithm selection (expand phase)",
               "§7 future work: collective communication optimization",
               "per-call crossovers + end-to-end effect on 2D BFS");

  {
    const auto m = model::franklin();
    std::printf("\n-- preferred allgather algorithm (franklin) --\n");
    std::printf("%-14s", "result bytes");
    for (int g : {8, 32, 128, 512, 2048}) std::printf(" %10s", ("g=" + std::to_string(g)).c_str());
    std::printf("\n");
    for (std::size_t bytes = 64; bytes <= (1u << 24); bytes *= 16) {
      std::printf("%-14zu", bytes);
      for (int g : {8, 32, 128, 512, 2048}) {
        const char* best = "ring";
        double best_cost =
            model::cost_allgatherv(m, g, bytes, model::AllgatherAlgo::kRing);
        for (auto algo : {model::AllgatherAlgo::kRecursiveDoubling,
                          model::AllgatherAlgo::kBruck}) {
          const double c = model::cost_allgatherv(m, g, bytes, algo);
          if (c < best_cost) {
            best_cost = c;
            best = algo == model::AllgatherAlgo::kRecursiveDoubling ? "recdbl"
                                                                    : "bruck";
          }
        }
        std::printf(" %10s", best);
      }
      std::printf("\n");
    }
  }

  const int nsources = bench_sources(2);
  std::printf("\n-- end-to-end 2D flat BFS: ring vs ideal switcher --\n");
  std::printf("%-26s %8s %14s %14s %9s\n", "graph", "cores", "ring (ms)",
              "auto (ms)", "saved");
  auto run_pair = [&](const char* name, const Workload& w,
                      const model::MachineModel& machine, int cores) {
    double times[2];
    int idx = 0;
    for (auto algo : {model::AllgatherAlgo::kRing,
                      model::AllgatherAlgo::kAuto}) {
      bfs::Bfs2DOptions bopts;
      bopts.cores = cores;
      bopts.machine = machine;
      bopts.allgather_algo = algo;
      bfs::Bfs2D bfs{w.built.edges, w.n, bopts};
      double total = 0;
      for (vid_t source : w.sources) {
        total += bfs.run(source).report.total_seconds;
      }
      times[idx++] = total / static_cast<double>(w.sources.size());
    }
    std::printf("%-26s %8d %14.3f %14.3f %8.1f%%\n", name, cores,
                times[0] * 1e3, times[1] * 1e3,
                100.0 * (1.0 - times[1] / times[0]));
  };

  {
    const Workload w = make_rmat_workload(util::bench_scale(15), 16, nsources);
    const auto machine = scaled_machine(model::franklin(),
                                        w.built.directed_edge_count, 33.0);
    run_pair("R-MAT (low diameter)", w, machine, 1024);
  }
  {
    graph::WebcrawlParams p;
    p.num_vertices = vid_t{1} << util::bench_scale(15);
    p.target_diameter = 120;
    Workload w;
    w.built = graph::build_graph(graph::generate_webcrawl(p));
    w.n = w.built.csr.num_vertices();
    const auto comps = graph::connected_components(w.built.csr);
    w.sources = graph::sample_sources(w.built.csr, comps, nsources, 3);
    const auto machine = scaled_machine(model::hopper(),
                                        w.built.directed_edge_count,
                                        std::log2(5.5e9));
    run_pair("web crawl (high diameter)", w, machine, 1024);
  }
  std::printf(
      "\nfinding: per-call crossovers are real (log-latency algorithms win "
      "for sub-~256KB results), but end-to-end BFS gains are ~0%%: the "
      "expand is either bandwidth-bound (big frontiers) or a small share "
      "of a latency-floor-dominated run — a negative result for the §7 "
      "question as far as BFS itself is concerned.\n");
  return 0;
}
