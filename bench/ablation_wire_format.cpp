// Ablation: wire format for the distributed exchanges on scale-16 R-MAT.
// The paper ships raw 16-byte (vertex, parent) candidates through every
// Alltoallv; the sieve drops globally-visited targets on the sender and
// the bitmap/varint codecs compress what remains, with `auto` picking the
// smaller encoding per (destination, level). BFS outputs are identical in
// every row — this sweep measures only the metered bytes and the modeled
// time shift (decode cost at beta_L vs bytes saved at beta_N).
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(16);
  const int cores = 64;
  Workload w = make_rmat_workload(scale, 16, bench_sources(2));

  const auto machine =
      scaled_machine(model::hopper(), w.built.directed_edge_count, 33.0);

  print_header("Ablation: exchange wire format (sieve + compression)",
               "beyond the paper's raw candidate exchange",
               "ours: scale " + std::to_string(scale) + " R-MAT, " +
                   std::to_string(cores) + " cores");

  const comm::WireFormat formats[] = {
      comm::WireFormat::kRaw, comm::WireFormat::kSieve,
      comm::WireFormat::kBitmap, comm::WireFormat::kVarint,
      comm::WireFormat::kAuto};
  const core::Algorithm algos[] = {core::Algorithm::kOneDFlat,
                                   core::Algorithm::kTwoDFlat};

  for (core::Algorithm algo : algos) {
    std::printf("\n-- %s --\n", core::to_string(algo));
    std::printf("%-8s %16s %16s %10s %14s %10s\n", "format", "a2a bytes",
                "ag bytes", "vs raw", "BFS time (ms)", "GTEPS");
    std::uint64_t raw_total = 0;
    for (comm::WireFormat format : formats) {
      core::EngineOptions opts;
      opts.algorithm = algo;
      opts.cores = cores;
      opts.machine = machine;
      opts.wire_format = format;
      const MeanTimes mt = run_config(w, opts);
      const std::uint64_t a2a_bytes = mt.a2a_bytes;
      const std::uint64_t ag_bytes = mt.ag_bytes;
      const double total = mt.total;
      const std::uint64_t metered = a2a_bytes + ag_bytes;
      if (format == comm::WireFormat::kRaw) raw_total = metered;
      std::printf("%-8s %16llu %16llu %9.3fx %14.3f %10.3f\n",
                  comm::to_string(format),
                  static_cast<unsigned long long>(a2a_bytes),
                  static_cast<unsigned long long>(ag_bytes),
                  raw_total > 0 ? static_cast<double>(metered) /
                                      static_cast<double>(raw_total)
                                : 1.0,
                  total * 1e3,
                  static_cast<double>(w.built.directed_edge_count) / total /
                      1e9);
    }
  }
  std::printf(
      "\nexpected: sieve alone roughly halves the alltoall volume on R-MAT "
      "(most candidates re-target visited hubs); auto tracks the best of "
      "bitmap (dense early levels) and varint (sparse tail levels) for the "
      "largest reduction, at a small modeled encode/decode cost\n");
  return 0;
}
