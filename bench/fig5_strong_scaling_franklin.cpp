// Figure 5: BFS strong-scaling GTEPS on Franklin (Cray XT4) for Graph500
// R-MAT graphs. Panel (a): p in {512..4096} on the scale-29 class; panel
// (b): p in {4096..8192} on the scale-32 class. Expected shapes (paper
// §6): flat 1D leads the 2D codes by ~1.5-1.8x on this architecture
// (slow cores, relatively strong network), and the 1D hybrid overtakes
// flat 1D at the highest concurrencies as the NIC/bisection saturates.
//
// Graphs are scaled down (BFSSIM_SCALE overrides); machine latencies are
// rescaled by the same factor (see scaled_machine in harness/harness.hpp).
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();

  {
    const int scale = util::bench_scale(15);
    ScalingSpec spec;
    spec.title = "Figure 5(a): strong scaling GTEPS, Franklin";
    spec.paper_ref = "Fig 5(a), n=2^29 m=2^33";
    spec.machine = model::franklin();
    spec.paper_log2_edges = 33;
    spec.cores = {512, 1024, 2048, 4096};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled franklin");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/false);
  }

  {
    const int scale = util::bench_scale(16);
    ScalingSpec spec;
    spec.title = "Figure 5(b): strong scaling GTEPS, Franklin";
    spec.paper_ref = "Fig 5(b), n=2^32 m=2^36";
    spec.machine = model::franklin();
    spec.paper_log2_edges = 36;
    spec.cores = {4096, 6400, 8192};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled franklin");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/false);
  }
  return 0;
}
