// Crossover study for the direction-optimized 2D engine: the Beamer
// SC'12 "edge examinations per level" plot, reproduced on the simulated
// 2D SpMSV traversal. For each scale we run the same search twice —
// --direction topdown and --direction hybrid — and print the per-level
// edge examinations side by side, marking the levels where the alpha-beta
// heuristic crossed over to bottom-up (and back). The middle levels are
// where the R-MAT frontier covers most of the graph and bottom-up's
// early-exit scan examines a small fraction of the top-down adjacencies.
//
// Doubles as the acceptance gate for the hybrid: at the largest scale the
// hybrid must examine < 50% of the top-down edge count or the bench exits
// nonzero.
#include "harness/harness.hpp"

#include "bfs/report.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

struct ScaleResult {
  eid_t top_down = 0;
  eid_t hybrid = 0;
};

ScaleResult run_scale(int scale) {
  const Workload w = make_rmat_workload(scale, 16, 1);
  const vid_t source = w.sources.front();

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 64;
  opts.machine = model::hopper();
  opts.wire_format = comm::WireFormat::kAuto;

  core::Engine td_engine{w.built.edges, w.n, opts};
  const auto td = td_engine.run(source);

  opts.direction = bfs::DirectionMode::kHybrid;
  core::Engine hy_engine{w.built.edges, w.n, opts};
  const auto hy = hy_engine.run(source);

  std::printf("\nscale %d (%lld vertices, %lld directed edges)\n", scale,
              static_cast<long long>(w.n),
              static_cast<long long>(w.built.directed_edge_count));
  std::printf("%5s %12s %16s %16s %9s  %s\n", "level", "frontier",
              "top-down edges", "hybrid edges", "ratio", "direction");

  ScaleResult total;
  const std::size_t levels =
      std::max(td.report.levels.size(), hy.report.levels.size());
  for (std::size_t i = 0; i < levels; ++i) {
    const bfs::LevelStats* t =
        i < td.report.levels.size() ? &td.report.levels[i] : nullptr;
    const bfs::LevelStats* h =
        i < hy.report.levels.size() ? &hy.report.levels[i] : nullptr;
    const eid_t te = t != nullptr ? t->edges_scanned : 0;
    const eid_t he = h != nullptr ? h->edges_scanned : 0;
    total.top_down += te;
    total.hybrid += he;
    const bool bottom_up = h != nullptr && h->bottom_up;
    std::printf("%5zu %12lld %16lld %16lld %9.3f  %s%s\n", i,
                static_cast<long long>(t != nullptr ? t->frontier : 0),
                static_cast<long long>(te), static_cast<long long>(he),
                te > 0 ? static_cast<double>(he) / static_cast<double>(te)
                       : 0.0,
                bottom_up ? "bottom-up" : "top-down",
                h != nullptr && static_cast<bfs::DiropRationale>(
                                    h->dirop_rationale) ==
                                    bfs::DiropRationale::kEngage
                    ? "  <- crossover"
                    : (h != nullptr && static_cast<bfs::DiropRationale>(
                                           h->dirop_rationale) ==
                                           bfs::DiropRationale::kDisengage
                           ? "  <- crossover back"
                           : ""));
  }
  const double ratio =
      total.top_down > 0
          ? static_cast<double>(total.hybrid) /
                static_cast<double>(total.top_down)
          : 0.0;
  std::printf("%5s %12s %16lld %16lld %9.3f  (%d bottom-up level(s), "
              "%.1f%% of edges cut)\n",
              "total", "", static_cast<long long>(total.top_down),
              static_cast<long long>(total.hybrid), ratio,
              hy.report.dirop.bottom_up_levels, 100.0 * (1.0 - ratio));
  return total;
}

}  // namespace

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int max_scale = util::bench_scale(16);

  print_header("Crossover: direction-optimized 2D SpMSV traversal",
               "edge-examination plot after Beamer et al., SC'12",
               "R-MAT ef 16, 64 cores, hopper, --wire-format auto; "
               "topdown vs hybrid per level");

  ScaleResult last;
  for (int scale = max_scale - 2; scale <= max_scale; ++scale) {
    last = run_scale(scale);
  }

  const double final_ratio =
      static_cast<double>(last.hybrid) / static_cast<double>(last.top_down);
  std::printf("\nacceptance: hybrid examines %.1f%% of top-down edges at "
              "scale %d (gate: < 50%%)\n",
              100.0 * final_ratio, max_scale);
  if (final_ratio >= 0.5) {
    std::fprintf(stderr,
                 "crossover_direction: FAILED — hybrid examined %.1f%% of "
                 "top-down edges at scale %d (>= 50%%)\n",
                 100.0 * final_ratio, max_scale);
    return 1;
  }
  return 0;
}
