// Beyond-paper extension bench: direction-optimizing BFS (Beamer SC'12)
// against the paper-era top-down traversal, measured for real on the
// host (like Fig 3, this is not a simulation). Reports the edge
// examinations skipped and the wall-clock speedup across graph families:
// large on low-diameter R-MAT, nil (by design) on high-diameter graphs.
#include "harness/harness.hpp"

#include "bfs/direction_optimizing.hpp"
#include "util/timer.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

void run_family(const char* name, const graph::BuiltGraph& built,
                vid_t source) {
  const int reps = 3;
  bfs::DirectionOptimizingResult opt;
  bfs::DirectionOptimizingResult classic;
  std::vector<double> opt_times;
  std::vector<double> classic_times;
  for (int i = 0; i < reps; ++i) {
    opt = bfs::direction_optimizing_bfs(built.csr, source);
    opt_times.push_back(opt.out.report.total_seconds);
    bfs::DirectionOptimizingOptions top_down;
    top_down.force_top_down = true;
    classic = bfs::direction_optimizing_bfs(built.csr, source, top_down);
    classic_times.push_back(classic.out.report.total_seconds);
  }
  const double opt_ms = util::percentile(opt_times, 0.5) * 1e3;
  const double classic_ms = util::percentile(classic_times, 0.5) * 1e3;
  const auto opt_edges = opt.top_down_edges + opt.bottom_up_edges;
  std::printf("%-28s %12.3f %12.3f %9.2fx %11.1f%% %8d\n", name, classic_ms,
              opt_ms, classic_ms / opt_ms,
              100.0 * (1.0 - static_cast<double>(opt_edges) /
                                 static_cast<double>(classic.top_down_edges)),
              opt.bottom_up_levels);
}

}  // namespace

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(16);

  print_header("Extension: direction-optimizing BFS (host measurement)",
               "beyond the paper: Beamer et al., SC'12",
               "classic top-down vs alpha/beta-switched hybrid");
  std::printf("%-28s %12s %12s %10s %12s %8s\n", "graph", "classic (ms)",
              "dir-opt (ms)", "speedup", "edges cut", "bu-lvls");

  {
    const Workload w = make_rmat_workload(scale, 16, 1);
    run_family("R-MAT deg 16 (low diam)", w.built, w.sources.front());
  }
  {
    const Workload w = make_rmat_workload(scale - 2, 64, 1, 7);
    run_family("R-MAT deg 64 (low diam)", w.built, w.sources.front());
  }
  {
    graph::ErdosRenyiParams p;
    p.num_vertices = vid_t{1} << scale;
    p.edge_probability = 16.0 / static_cast<double>(p.num_vertices);
    auto built = graph::build_graph(graph::generate_erdos_renyi(p));
    const auto comps = graph::connected_components(built.csr);
    const auto sources = graph::sample_sources(built.csr, comps, 1, 3);
    run_family("Erdos-Renyi deg 16", built, sources.front());
  }
  {
    graph::WebcrawlParams p;
    p.num_vertices = vid_t{1} << scale;
    p.target_diameter = 120;
    auto built = graph::build_graph(graph::generate_webcrawl(p));
    const auto comps = graph::connected_components(built.csr);
    const auto sources = graph::sample_sources(built.csr, comps, 1, 3);
    run_family("web crawl (high diam)", built, sources.front());
  }

  std::printf("\nexpected: multi-x speedup and >60%% edge cut on the "
              "low-diameter skewed graphs; no bottom-up levels (and so no "
              "gain) on the high-diameter crawl\n");
  return 0;
}
