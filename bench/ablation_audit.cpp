// Ablation: SDC state-audit cadence vs detection latency and repair cost.
// The audit walks the live (parent, level) arrays at the level barrier
// every k levels, checking tree invariants and per-shard checksums
// against the write-time shadow; a detected corruption rolls back to the
// newest clean checkpoint and replays. The sweep prices both sides of
// the cadence trade: frequent audits cost compute (and allreduce
// agreement traffic) on every clean run, but bound how many levels a
// silent flip can poison — and therefore how far the rollback replays.
// Every flipped row converges to bit-identical parents/levels; the sweep
// measures only the audit overhead and the detection + replay time.
//
// Also emits a BENCH-style record (BENCH_<name>.json in the current
// directory, or --out-dir=DIR) for the flipped 2D configuration so SDC
// runs can be diffed with bench_diff like any other data point.
#include <cstring>
#include <string>

#include "harness/harness.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

struct Row {
  double total = 0;  ///< simulated makespan, seconds
  bfs::SdcReport sdc;
};

// One audited (and, when flip_level >= 0, corrupted) search. A fresh
// engine per row: a fired flip is consumed and a rollback rewinds the
// checkpoint history, so reusing one engine would skew later rows.
Row run_row(const Workload& w, core::EngineOptions opts, int flip_rank,
            int flip_level) {
  if (flip_level >= 0) {
    simmpi::MemFlip flip;
    flip.rank = flip_rank;
    flip.at_level = flip_level;
    flip.target = simmpi::FlipTarget::kParents;
    opts.faults.mem_flips.push_back(flip);
  }
  core::Engine engine{w.built.edges, w.n, opts};
  const auto out = engine.run(w.sources.front());
  return Row{out.report.total_seconds, out.report.sdc};
}

void print_sweep(const Workload& w, const core::EngineOptions& base,
                 double clean_total, int flip_rank, int flip_level) {
  const int cadences[] = {0, 8, 4, 2, 1};  // 0 = final-audit only
  std::printf("%-8s %-6s %6s %8s %10s %9s %9s %14s %9s\n", "mode",
              "cadence", "audits", "failed", "audit(ms)", "rollbacks",
              "replayed", "BFS time (ms)", "vs clean");
  for (int flips = 0; flips <= 1; ++flips) {
    for (int k : cadences) {
      core::EngineOptions opts = base;
      opts.recover.audit_every = k;
      if (flips == 0 && k == 0) continue;  // that row is the baseline
      const Row row =
          run_row(w, opts, flip_rank, flips != 0 ? flip_level : -1);
      const std::string cadence = k == 0 ? "final" : "k=" + std::to_string(k);
      std::printf("%-8s %-6s %6lld %8lld %10.3f %9lld %9lld %14.3f %8.2fx\n",
                  flips != 0 ? "flip" : "clean", cadence.c_str(),
                  static_cast<long long>(row.sdc.audits),
                  static_cast<long long>(row.sdc.audit_failures),
                  row.sdc.audit_seconds * 1e3,
                  static_cast<long long>(row.sdc.rollbacks),
                  static_cast<long long>(row.sdc.replayed_levels),
                  row.total * 1e3,
                  clean_total > 0 ? row.total / clean_total : 1.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out-dir=", 10) == 0) out_dir = argv[i] + 10;
  }

  const int scale = util::bench_scale(15);
  const int cores = 64;
  const int flip_rank = 1;
  const int flip_level = 3;
  Workload w = make_rmat_workload(scale, 16, bench_sources(2));

  const auto machine =
      scaled_machine(model::hopper(), w.built.directed_edge_count, 33.0);

  print_header(
      "Ablation: SDC audit cadence under an at-rest parent-array flip",
      "beyond the paper: ABFT audits + verified-checkpoint rollback",
      "ours: scale " + std::to_string(scale) + " R-MAT, " +
          std::to_string(cores) + " cores, flip rank " +
          std::to_string(flip_rank) + " @ level " +
          std::to_string(flip_level) + ":parents, checkpoints every 2");

  const core::Algorithm algos[] = {core::Algorithm::kOneDFlat,
                                   core::Algorithm::kTwoDFlat};
  for (core::Algorithm algo : algos) {
    core::EngineOptions base;
    base.algorithm = algo;
    base.cores = cores;
    base.machine = machine;
    base.recover.checkpoint_every = 2;
    const Row clean = run_row(w, base, 0, -1);
    std::printf("\n-- %s  (no audits, no flips: %.3f ms) --\n",
                core::to_string(algo), clean.total * 1e3);
    print_sweep(w, base, clean.total, flip_rank, flip_level);
  }

  std::printf(
      "\nexpected: clean-run audit overhead grows linearly as k drops (one "
      "O(n/p) shard walk plus an allreduce per audited level), staying a "
      "small slice of BFS time at this scale; with the flip injected, "
      "tighter cadences detect the corruption closer to the level that "
      "planted it, so the rollback replays fewer levels and total time "
      "converges toward the audit-only rows; the k=0 row leans on the "
      "end-of-run audit and checkpoint verification alone, paying the "
      "longest replay\n");

  // BENCH-style record for the continuous-benchmark tooling: the flipped
  // 2D point at audit cadence 2 (checkpoints every 2). The flip fires
  // once, on the first search of repetition 0 — later repetitions are
  // corruption-free and price the audit cadence into the noise model.
  BenchSpec spec;
  spec.name = "rmat" + std::to_string(scale) + "_sdc_2d_c" +
              std::to_string(cores);
  spec.created_by = "ablation_audit";
  spec.scale = scale;
  spec.sources = bench_sources(2);
  spec.repetitions = 3;
  spec.paper_log2_edges = 33.0;
  spec.engine.algorithm = core::Algorithm::kTwoDFlat;
  spec.engine.cores = cores;
  spec.engine.machine = model::hopper();
  {
    simmpi::MemFlip flip;
    flip.rank = flip_rank;
    flip.at_level = flip_level;
    flip.target = simmpi::FlipTarget::kParents;
    spec.engine.faults.mem_flips.push_back(flip);
  }
  spec.engine.recover.checkpoint_every = 2;
  spec.engine.recover.audit_every = 2;
  const obs::BenchRecord record = run_bench_record(spec);
  const std::string path =
      out_dir + "/" + obs::bench_record_filename(record.name);
  obs::save_bench_record(path, record);
  std::printf("\nwrote %s  (%s)\n", path.c_str(),
              describe_bench_record(record).c_str());
  return 0;
}
