// Ablation: checkpoint cadence vs recovery cost under a fail-stop kill.
// The level barrier makes checkpoint/restart cheap for level-synchronous
// BFS: snapshot (parents, levels, frontier) every k levels, and after a
// rank dies replay from the last snapshot on the shrunken (or
// spare-patched) communicator. The sweep prices the trade the cadence
// controls: frequent snapshots ship more replicated bytes but replay
// fewer levels when a rank is killed mid-traversal; k = inf (cadence 0)
// keeps only the implicit source snapshot and replays the whole prefix.
// Every row recovers to bit-identical parents/levels — the sweep measures
// only checkpoint traffic and the detection + replay virtual time.
//
// Also emits a BENCH-style record (BENCH_<name>.json in the current
// directory, or --out-dir=DIR) for the killed 2D/spare configuration so
// recovery runs can be diffed with bench_diff like any other data point.
#include <cstring>
#include <string>

#include "harness/harness.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

struct Row {
  double total = 0;          ///< simulated makespan, seconds
  bfs::RecoverReport recover;
};

// One killed (or fault-free, when kill_level < 0) search. A fresh engine
// per row: recovery mutates the communicator (shrink retires ranks for
// good; a fired kill is consumed), so reusing one engine would make later
// rows silently fault-free.
Row run_row(const Workload& w, core::EngineOptions opts, int kill_rank,
            int kill_level) {
  if (kill_level >= 0) {
    simmpi::RankKill kill;
    kill.rank = kill_rank;
    kill.at_level = kill_level;
    opts.faults.rank_kills.push_back(kill);
  }
  core::Engine engine{w.built.edges, w.n, opts};
  const auto out = engine.run(w.sources.front());
  return Row{out.report.total_seconds, out.report.recover};
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out-dir=", 10) == 0) out_dir = argv[i] + 10;
  }

  const int scale = util::bench_scale(15);
  const int cores = 64;
  const int kill_rank = 1;
  const int kill_level = 3;
  Workload w = make_rmat_workload(scale, 16, bench_sources(2));

  const auto machine =
      scaled_machine(model::hopper(), w.built.directed_edge_count, 33.0);

  print_header(
      "Ablation: checkpoint cadence under a fail-stop rank kill",
      "beyond the paper: shrink/spare recovery",
      "ours: scale " + std::to_string(scale) + " R-MAT, " +
          std::to_string(cores) + " cores, kill rank " +
          std::to_string(kill_rank) + " @ level " +
          std::to_string(kill_level));

  const core::Algorithm algos[] = {core::Algorithm::kOneDFlat,
                                   core::Algorithm::kTwoDFlat};
  const recover::Policy policies[] = {recover::Policy::kShrink,
                                      recover::Policy::kSpare};
  const int cadences[] = {0, 4, 2, 1};  // 0 = no periodic snapshots (k=inf)

  for (core::Algorithm algo : algos) {
    core::EngineOptions base;
    base.algorithm = algo;
    base.cores = cores;
    base.machine = machine;
    const Row fault_free = run_row(w, base, 0, -1);
    std::printf("\n-- %s  (fault-free: %.3f ms) --\n", core::to_string(algo),
                fault_free.total * 1e3);
    std::printf("%-7s %-8s %6s %12s %9s %13s %14s %9s\n", "policy",
                "cadence", "ckpts", "ckpt bytes", "replayed", "recovery(ms)",
                "BFS time (ms)", "vs clean");
    for (recover::Policy policy : policies) {
      for (int k : cadences) {
        core::EngineOptions opts = base;
        opts.recover.policy = policy;
        opts.recover.checkpoint_every = k;
        const Row row = run_row(w, opts, kill_rank, kill_level);
        const std::string cadence =
            k == 0 ? "inf" : "k=" + std::to_string(k);
        std::printf("%-7s %-8s %6lld %12llu %9lld %13.3f %14.3f %8.2fx\n",
                    recover::to_string(policy), cadence.c_str(),
                    static_cast<long long>(row.recover.checkpoints_taken),
                    static_cast<unsigned long long>(
                        row.recover.checkpoint_bytes),
                    static_cast<long long>(row.recover.replayed_levels),
                    row.recover.recovery_seconds * 1e3, row.total * 1e3,
                    fault_free.total > 0 ? row.total / fault_free.total
                                         : 1.0);
      }
    }
  }

  std::printf(
      "\nexpected: the fixed detection timeout dominates recovery(ms) at "
      "this scale, so the cadence's real lever is the replayed-level "
      "count — total BFS time closes toward the fault-free baseline as k "
      "drops and the replay shrinks to zero at k=1; checkpoint bytes grow "
      "only mildly because snapshots are incremental (every cadence ships "
      "roughly one full (parent, level) array overall, plus frontiers); "
      "spare recovery edges out shrink at equal cadence since it restores "
      "one shard instead of re-partitioning onto fewer ranks\n");

  // BENCH-style record for the continuous-benchmark tooling: the killed
  // 2D/spare point at cadence 2. Spare (not shrink) so the repetitions
  // after the consumed kill keep the same grid and stay comparable.
  BenchSpec spec;
  spec.name = "rmat" + std::to_string(scale) + "_recover_2d_spare_c" +
              std::to_string(cores);
  spec.created_by = "ablation_checkpoint";
  spec.scale = scale;
  spec.sources = bench_sources(2);
  spec.repetitions = 3;
  spec.paper_log2_edges = 33.0;
  spec.engine.algorithm = core::Algorithm::kTwoDFlat;
  spec.engine.cores = cores;
  spec.engine.machine = model::hopper();
  {
    simmpi::RankKill kill;
    kill.rank = kill_rank;
    kill.at_level = kill_level;
    spec.engine.faults.rank_kills.push_back(kill);
  }
  spec.engine.recover.policy = recover::Policy::kSpare;
  spec.engine.recover.checkpoint_every = 2;
  const obs::BenchRecord record = run_bench_record(spec);
  const std::string path =
      out_dir + "/" + obs::bench_record_filename(record.name);
  obs::save_bench_record(path, record);
  std::printf("\nwrote %s  (%s)\n", path.c_str(),
              describe_bench_record(record).c_str());
  return 0;
}
