// Shared engine for the strong-/weak-scaling figures (paper Figs 5-9):
// runs the four BFS implementations (1D/2D x flat/hybrid) over a list of
// core counts and prints GTEPS and communication-time series.
//
// Data points come from the functional cluster simulator wherever it is
// affordable; beyond a rank threshold (the 1D simulator's bookkeeping is
// O(p^2) per level) points are produced by the volume-profile pricing
// path, calibrated to the largest functional point so the two join
// smoothly. Each row is tagged with its method ("sim" or "model").
#pragma once

#include <algorithm>
#include <map>
#include <memory>

#include "core/volume_profile.hpp"
#include "harness/harness.hpp"

namespace dbfs::bench {

struct AlgoResult {
  double total = 0;   ///< mean simulated seconds per search
  double comm = 0;    ///< mean per-rank communication seconds
  double gteps = 0;
  bool modeled = false;
  int cores_used = 0;
};

struct ScalingSpec {
  const char* title;
  const char* paper_ref;
  model::MachineModel machine;
  double paper_log2_edges;   ///< latency rescale anchor (see scaled_machine)
  std::vector<int> cores;
  int scale;
  int edge_factor;
  /// Above this many *ranks*, a configuration switches from the
  /// functional simulator to volume-profile pricing. The 1D simulator's
  /// exchange bookkeeping is O(ranks^2) per level, so its limit is low;
  /// the 2D simulator's collectives only span sqrt(p) ranks, so it runs
  /// functionally at every core count the paper uses.
  int functional_rank_limit_1d = 2048;
  int functional_rank_limit_2d = 50000;
};

enum class Algo { kOneDFlat, kOneDHybrid, kTwoDFlat, kTwoDHybrid };

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kOneDFlat:
      return "1D Flat MPI";
    case Algo::kOneDHybrid:
      return "1D Hybrid";
    case Algo::kTwoDFlat:
      return "2D Flat MPI";
    case Algo::kTwoDHybrid:
      return "2D Hybrid";
  }
  return "?";
}

class ScalingRunner {
 public:
  ScalingRunner(const ScalingSpec& spec, const Workload& workload)
      : spec_(spec),
        workload_(workload),
        machine_(scaled_machine(spec.machine,
                                workload.built.directed_edge_count,
                                spec.paper_log2_edges)),
        profile_(core::VolumeProfile::measure(workload.built.csr,
                                              workload.sources.front())) {}

  /// Run one (algorithm, cores) point.
  AlgoResult run(Algo algo, int cores) {
    const int threads = is_hybrid(algo)
                            ? core::default_threads_per_rank(machine_)
                            : 1;
    const int ranks = std::max(1, cores / threads);
    const int limit = is_two_d(algo) ? spec_.functional_rank_limit_2d
                                     : spec_.functional_rank_limit_1d;
    if (ranks <= limit) {
      return functional_point(algo, cores, threads);
    }
    return modeled_point(algo, cores, threads);
  }

  /// Print the full table: one row per core count, one column per algo.
  /// `show_comm` selects the communication-time view (Figs 6, 8, 9b).
  void print_table(bool show_comm) {
    std::printf("%-8s", "cores");
    for (Algo a : kAll) std::printf(" %16s", algo_name(a));
    std::printf("  %s\n", show_comm ? "(comm seconds, lower=better)"
                                    : "(GTEPS, higher=better)");
    for (int cores : spec_.cores) {
      std::printf("%-8d", cores);
      for (Algo a : kAll) {
        const AlgoResult r = point(a, cores);
        if (show_comm) {
          std::printf(" %14.6f%s", r.comm, r.modeled ? "*" : " ");
        } else {
          std::printf(" %14.3f%s", r.gteps, r.modeled ? "*" : " ");
        }
      }
      std::printf("\n");
    }
    std::printf("(*) = volume-profile model point; unstarred = functional "
                "cluster simulation\n");
  }

  /// Mean-search-time view (Fig 9a).
  void print_time_table() {
    std::printf("%-8s", "cores");
    for (Algo a : kAll) std::printf(" %16s", algo_name(a));
    std::printf("  (mean search seconds, lower=better)\n");
    for (int cores : spec_.cores) {
      std::printf("%-8d", cores);
      for (Algo a : kAll) {
        const AlgoResult r = point(a, cores);
        std::printf(" %14.6f%s", r.total, r.modeled ? "*" : " ");
      }
      std::printf("\n");
    }
  }

  AlgoResult point(Algo a, int cores) {
    const auto key = std::make_pair(static_cast<int>(a), cores);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_.emplace(key, run(a, cores)).first;
    }
    return it->second;
  }

  static constexpr Algo kAll[] = {Algo::kOneDFlat, Algo::kOneDHybrid,
                                  Algo::kTwoDFlat, Algo::kTwoDHybrid};

 private:
  static bool is_hybrid(Algo a) {
    return a == Algo::kOneDHybrid || a == Algo::kTwoDHybrid;
  }

  static bool is_two_d(Algo a) {
    return a == Algo::kTwoDFlat || a == Algo::kTwoDHybrid;
  }

  AlgoResult functional_point(Algo algo, int cores, int threads) {
    core::EngineOptions opts;
    opts.cores = cores;
    opts.threads_per_rank = threads;
    opts.machine = machine_;
    switch (algo) {
      case Algo::kOneDFlat:
        opts.algorithm = core::Algorithm::kOneDFlat;
        break;
      case Algo::kOneDHybrid:
        opts.algorithm = core::Algorithm::kOneDHybrid;
        break;
      case Algo::kTwoDFlat:
        opts.algorithm = core::Algorithm::kTwoDFlat;
        break;
      case Algo::kTwoDHybrid:
        opts.algorithm = core::Algorithm::kTwoDHybrid;
        break;
    }
    const MeanTimes mt = run_config(workload_, opts);
    AlgoResult r;
    r.total = mt.total;
    r.comm = mt.comm;
    r.gteps = mt.gteps;
    r.cores_used = mt.cores_used;
    return r;
  }

  AlgoResult modeled_point(Algo algo, int cores, int threads) {
    core::PricedRun priced;
    if (is_two_d(algo)) {
      core::Price2DOptions o;
      o.cores = cores;
      o.threads_per_rank = threads;
      priced = core::price_2d(profile_, machine_, o);
    } else {
      core::Price1DOptions o;
      o.cores = cores;
      o.threads_per_rank = threads;
      priced = core::price_1d(profile_, machine_, o);
    }
    // One-point calibration against the largest functional configuration
    // of the same algorithm, so the sim and model series join smoothly.
    const double c = calibration(algo, threads);
    AlgoResult r;
    r.total = priced.total_seconds * c;
    r.comm = priced.comm_seconds * c;
    r.gteps = static_cast<double>(workload_.built.directed_edge_count) /
              r.total / 1e9;
    r.modeled = true;
    r.cores_used = priced.cores_used;
    return r;
  }

  double calibration(Algo algo, int threads) {
    const auto key = static_cast<int>(algo);
    auto it = calibration_.find(key);
    if (it != calibration_.end()) return it->second;

    const int limit = is_two_d(algo) ? spec_.functional_rank_limit_2d
                                     : spec_.functional_rank_limit_1d;
    const int anchor_cores = limit * threads;
    const AlgoResult functional =
        functional_point(algo, anchor_cores, threads);
    core::PricedRun priced;
    if (is_two_d(algo)) {
      core::Price2DOptions o;
      o.cores = anchor_cores;
      o.threads_per_rank = threads;
      priced = core::price_2d(profile_, machine_, o);
    } else {
      core::Price1DOptions o;
      o.cores = anchor_cores;
      o.threads_per_rank = threads;
      priced = core::price_1d(profile_, machine_, o);
    }
    const double c = priced.total_seconds > 0
                         ? functional.total / priced.total_seconds
                         : 1.0;
    calibration_.emplace(key, c);
    return c;
  }

  ScalingSpec spec_;
  const Workload& workload_;
  model::MachineModel machine_;
  core::VolumeProfile profile_;
  std::map<std::pair<int, int>, AlgoResult> cache_;
  std::map<int, double> calibration_;
};

}  // namespace dbfs::bench
