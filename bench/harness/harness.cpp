#include "harness/harness.hpp"

#include <stdexcept>

namespace dbfs::bench {

Workload make_rmat_workload(int scale, int edge_factor, int nsources,
                            std::uint64_t seed) {
  Workload w;
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  w.built = graph::build_graph(graph::generate_rmat(params));
  w.n = w.built.csr.num_vertices();
  const auto comps = graph::connected_components(w.built.csr);
  w.sources = graph::sample_sources(w.built.csr, comps, nsources, seed + 7);
  return w;
}

MeanTimes run_config(const Workload& w, core::EngineOptions opts) {
  core::Engine engine{w.built.edges, w.n, opts};
  MeanTimes mt;
  mt.cores_used = engine.cores_used();
  double teps_recip_sum = 0.0;
  for (vid_t source : w.sources) {
    const auto out = engine.run(source);
    mt.total += out.report.total_seconds;
    mt.comm += out.report.comm_seconds_mean;
    mt.comp += out.report.comp_seconds_mean;
    mt.allgather += out.report.allgather_seconds;
    mt.alltoall += out.report.alltoall_seconds;
    mt.a2a_bytes += out.report.alltoall_bytes;
    mt.ag_bytes += out.report.allgather_bytes;
    teps_recip_sum += 1.0 / out.report.teps(w.built.directed_edge_count);
  }
  const auto k = static_cast<double>(w.sources.size());
  mt.total /= k;
  mt.comm /= k;
  mt.comp /= k;
  mt.allgather /= k;
  mt.alltoall /= k;
  mt.gteps = k / teps_recip_sum / 1e9;  // harmonic mean
  return mt;
}

namespace {

std::string summarize_fault_plan(const simmpi::FaultPlan& plan) {
  if (!plan.enabled()) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu fail_rate=%g corrupt_rate=%g stragglers=%zu+%zu",
                static_cast<unsigned long long>(plan.seed),
                plan.collective_fail_rate, plan.corrupt_rate,
                plan.compute_stragglers.size(), plan.nic_stragglers.size());
  return buf;
}

}  // namespace

obs::BenchRecord run_bench_record(const BenchSpec& spec) {
  graph::RmatParams params;
  params.scale = spec.scale;
  params.edge_factor = spec.edge_factor;
  params.seed = spec.graph_seed;
  const graph::BuiltGraph built =
      graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();

  core::EngineOptions opts = spec.engine;
  opts.trace = true;
  opts.metrics = true;
  opts.atlas = true;
  if (spec.paper_log2_edges > 0.0) {
    opts.machine = scaled_machine(std::move(opts.machine),
                                  built.directed_edge_count,
                                  spec.paper_log2_edges);
  }
  core::Engine engine{built.edges, n, opts};
  const auto comps = graph::connected_components(engine.csr());
  const int threads = engine.options().threads_per_rank;
  const int ranks = engine.cores_used() / std::max(1, threads);

  obs::BenchRecordBuilder builder;
  obs::BenchRecord& record = builder.record();
  record.name = spec.name;
  record.created_by = spec.created_by;
  record.config.generator = "rmat";
  record.config.scale = spec.scale;
  record.config.edge_factor = spec.edge_factor;
  record.config.graph_seed = spec.graph_seed;
  record.config.algorithm = core::to_string(opts.algorithm);
  record.config.machine = opts.machine.name;
  record.config.wire_format = comm::to_string(opts.wire_format);
  record.config.cores = engine.cores_used();
  record.config.ranks = ranks;
  record.config.threads_per_rank = threads;
  record.config.source_seed = spec.source_seed;
  record.config.faults_enabled = opts.faults.enabled();
  record.config.fault_plan = summarize_fault_plan(opts.faults);

  std::vector<vid_t> profile_sources;
  for (int rep = 0; rep < spec.repetitions; ++rep) {
    const std::uint64_t seed =
        spec.source_seed + static_cast<std::uint64_t>(rep);
    const auto sources =
        graph::sample_sources(engine.csr(), comps, spec.sources, seed);
    if (rep == 0) profile_sources = sources;
    core::BatchOptions batch_opts;
    batch_opts.validate = spec.validate && rep == 0;
    const core::BatchResult batch =
        engine.run_batch(sources, built.directed_edge_count, batch_opts);
    if (batch.failed > 0) {
      throw std::runtime_error("bench '" + spec.name +
                               "': BFS validation failed: " +
                               batch.first_error);
    }
    builder.add_repetition(seed, batch.reports, built.directed_edge_count,
                           batch.validated, batch.failed);
  }

  // Profile run: observers keep only the most recent run, so re-run the
  // first repetition's first source and harvest the structural layers
  // (per-level split, idle-time heatmap, counters) from that one search.
  if (!profile_sources.empty()) {
    const auto out = engine.run(profile_sources.front());
    builder.attach_profile(engine.tracer(), engine.metrics(), out.report,
                           ranks);
    builder.attach_atlas(engine.comm_atlas());
  }
  return builder.finish();
}

std::string describe_bench_record(const obs::BenchRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-28s %8.3f GTEPS  %8.3f ms  comm %5.1f%%  imb %.2f  "
                "noise %.2f%%",
                r.name.c_str(), r.harmonic_mean_teps / 1e9,
                r.mean_seconds * 1e3,
                r.mean_seconds > 0.0
                    ? 100.0 * r.comm_seconds_mean /
                          (r.comm_seconds_mean + r.comp_seconds_mean)
                    : 0.0,
                r.imbalance.comm_imbalance,
                100.0 * r.noise.teps_rel_stddev);
  return buf;
}

}  // namespace dbfs::bench
