// The shared benchmark harness: workload preparation, consistent table
// headers, the single per-source timing loop every table/figure binary
// uses (run_config), and the BenchRunner that turns one benchmark
// configuration into a machine-readable obs::BenchRecord — the
// BENCH_<name>.json artifacts bench_suite emits and bench_diff gates on.
//
// This file absorbs the former bench/bench_common.hpp and, together with
// harness/scaling.hpp, the former bench/scaling_common.hpp; the printed
// one-block-per-figure output convention is unchanged, so the combined
// bench output still doubles as the EXPERIMENTS.md raw data.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "obs/bench_record.hpp"
#include "util/options.hpp"

namespace dbfs::bench {

inline void print_header(const char* experiment, const char* paper_ref,
                         const std::string& config) {
  std::printf("\n================================================================\n");
  std::printf("%s  (paper: %s)\n", experiment, paper_ref);
  if (!config.empty()) std::printf("%s\n", config.c_str());
  std::printf("================================================================\n");
}

/// Prepared R-MAT instance + sampled sources in the big component.
struct Workload {
  graph::BuiltGraph built;
  std::vector<vid_t> sources;
  vid_t n = 0;
};

Workload make_rmat_workload(int scale, int edge_factor, int nsources,
                            std::uint64_t seed = 1);

/// Number of BFS sources per configuration; benches default low so the
/// whole suite runs in seconds (DISTBFS_SOURCES overrides; the paper
/// uses >= 16).
inline int bench_sources(int dflt = 4) {
  return static_cast<int>(util::project_env_int("SOURCES", dflt));
}

/// Mean simulated times for one engine config over the workload's
/// sources — the single timing loop the tables and figures share.
struct MeanTimes {
  double total = 0;      ///< mean simulated seconds per search
  double comm = 0;       ///< mean per-rank communication seconds
  double comp = 0;
  double gteps = 0;      ///< harmonic mean over sources
  double allgather = 0;  ///< mean expand-side transfer seconds (Table 1)
  double alltoall = 0;   ///< mean fold-side transfer seconds
  std::uint64_t a2a_bytes = 0;  ///< summed over sources
  std::uint64_t ag_bytes = 0;
  int cores_used = 0;
};

MeanTimes run_config(const Workload& w, core::EngineOptions opts);

/// Machine miniaturization (see DESIGN.md and EXPERIMENTS.md): our graphs
/// are ~2^10-2^17x smaller than the paper's, so per-rank data volumes —
/// and with them every bandwidth-proportional term — shrink by that
/// factor automatically. Two classes of constants do NOT shrink by
/// themselves and must be rescaled to keep the paper's operating point:
///  * fixed latencies (per-message αN, thread barriers), which would
///    otherwise swamp the scaled-down levels at the paper's core counts;
///  * cache capacities: at the paper's scale the n/p-sized 1D distance
///    array is DRAM-resident and the n/sqrt(p)-sized 2D vectors more so —
///    the very contrast §5 builds on. Unscaled caches would swallow both
///    working sets and erase the 1D-vs-2D computation gap.
/// `paper_log2_edges` is the log2 of the paper run's directed edge count
/// (e.g. 33 for the scale-29, ef-16 instances).
inline model::MachineModel scaled_machine(model::MachineModel m,
                                          eid_t our_directed_edges,
                                          double paper_log2_edges) {
  const double factor = static_cast<double>(our_directed_edges) /
                        std::pow(2.0, paper_log2_edges);
  return model::miniaturized(std::move(m), factor);
}

/// One benchmark configuration for the continuous-benchmark trajectory.
struct BenchSpec {
  std::string name;          ///< record name; file = BENCH_<name>.json
  std::string created_by = "bench_harness";
  int scale = 14;
  int edge_factor = 16;
  std::uint64_t graph_seed = 1;
  /// BFS sources per repetition and the number of virtual-seed
  /// repetitions; repetition r samples sources with source_seed + r. The
  /// across-repetition spread is the noise model bench_diff scales by k.
  int sources = 2;
  int repetitions = 5;
  std::uint64_t source_seed = 2023;
  /// Validate trees on the first repetition (host-side; free of simulated
  /// time, so it cannot shift the recorded numbers).
  bool validate = true;
  /// When > 0, engine.machine is miniaturized to the paper's operating
  /// point via scaled_machine() once the graph (and with it the directed
  /// edge count) exists — the same latency rescale every figure applies.
  double paper_log2_edges = 0.0;
  core::EngineOptions engine;
};

/// Runs one BenchSpec end to end: builds the graph, runs every
/// repetition through core::Engine::run_batch, then re-runs one source
/// with tracer + metrics attached to capture the per-level
/// compute/wait/transfer split, the Fig 4-style idle-time heatmap, and
/// the wire.*/fault.* counters. Throws std::runtime_error when
/// validation fails — a benchmark of a wrong BFS tree is not a data
/// point.
obs::BenchRecord run_bench_record(const BenchSpec& spec);

/// Human-readable one-liner for suite progress output.
std::string describe_bench_record(const obs::BenchRecord& record);

}  // namespace dbfs::bench
