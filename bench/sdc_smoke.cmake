# sdc_smoke: end-to-end check of silent-data-corruption resilience.
#   1. bfs_tool runs with an at-rest memory flip injected mid-traversal
#      (1D parents, 2D-hybrid levels); the audit must detect it, the
#      rollback must repair it from a verified checkpoint, and every BFS
#      tree must still validate. Under the sanitize preset this whole
#      path — flip, audit, checkpoint verification, rollback, replay —
#      runs under ASan/UBSan.
#   2. With auditing off and no fault plan, the report JSON must carry no
#      "sdc" block and must be byte-identical across two invocations —
#      the SDC machinery is provably inert on clean runs (the committed
#      BENCH_*.json baselines diffed by bench_smoke pin the same property
#      against the pre-PR records).
# Invoked by ctest as
#   cmake -DBFS_TOOL=<exe> -DOUT_DIR=<scratch> -P sdc_smoke.cmake
cmake_policy(SET CMP0007 NEW)  # keep the triple's empty middle element
foreach(var BFS_TOOL OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sdc_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# --- 1. injected flips must be detected, rolled back, and repaired -----
foreach(triple "1d;;parents" "2d;--direction=hybrid;levels")
  list(GET triple 0 algo)
  list(GET triple 1 extra)
  list(GET triple 2 target)
  set(extra_args)
  if(extra MATCHES "--direction=(.*)")
    set(extra_args --direction ${CMAKE_MATCH_1})
  endif()
  execute_process(
    COMMAND "${BFS_TOOL}" --gen rmat --scale 11 --cores 16 --algo ${algo}
            ${extra_args} --sources 2
            --fault-plan flip:1@level2:${target}
            --audit-every 1 --checkpoint-every 1
    WORKING_DIRECTORY "${OUT_DIR}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "sdc_smoke: bfs_tool --algo ${algo} with a "
                        "${target} flip failed (rc=${run_rc})\n"
                        "stdout:\n${run_out}\nstderr:\n${run_err}")
  endif()
  if(NOT run_out MATCHES "validated 2/2 BFS trees")
    message(FATAL_ERROR "sdc_smoke: --algo ${algo} ran but did not "
                        "validate both trees after the ${target} flip\n"
                        "stdout:\n${run_out}")
  endif()
  if(NOT run_out MATCHES "[1-9][0-9]* flip\\(s\\) injected")
    message(FATAL_ERROR "sdc_smoke: --algo ${algo} validated but the "
                        "${target} flip never fired\nstdout:\n${run_out}")
  endif()
  if(NOT run_out MATCHES "[1-9][0-9]* rollback\\(s\\) repairing")
    message(FATAL_ERROR "sdc_smoke: --algo ${algo} took the ${target} flip "
                        "but never rolled back — was the corruption "
                        "detected?\nstdout:\n${run_out}")
  endif()
endforeach()

# --- 2. the machinery must be inert on clean runs ----------------------
foreach(side a b)
  execute_process(
    COMMAND "${BFS_TOOL}" --gen rmat --scale 11 --cores 16 --algo 2d
            --sources 1 --json
    WORKING_DIRECTORY "${OUT_DIR}"
    RESULT_VARIABLE clean_rc
    OUTPUT_VARIABLE clean_${side}
    ERROR_VARIABLE clean_err)
  if(NOT clean_rc EQUAL 0)
    message(FATAL_ERROR "sdc_smoke: clean bfs_tool run ${side} failed "
                        "(rc=${clean_rc})\nstderr:\n${clean_err}")
  endif()
endforeach()
if(NOT clean_a STREQUAL clean_b)
  message(FATAL_ERROR "sdc_smoke: two identical clean runs differ — the "
                      "SDC machinery is perturbing fault-free output")
endif()
if(clean_a MATCHES "\"sdc\"")
  message(FATAL_ERROR "sdc_smoke: clean run's report JSON carries an "
                      "\"sdc\" block — it must appear only when auditing "
                      "or a flip plan is active\n${clean_a}")
endif()

message(STATUS "sdc_smoke passed: flips detected and repaired with "
               "validated trees (1d/parents, 2d-hybrid/levels); clean "
               "report JSON stable and sdc-free")
