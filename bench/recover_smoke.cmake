# recover_smoke: end-to-end check of fail-stop recovery.
#   1. bfs_tool runs with a rank killed mid-traversal under both recovery
#      policies; every BFS tree must still validate and the tool must
#      report the survived failure. Under the sanitize preset this whole
#      path — kill, detection, shrink/spare rebuild, checkpoint restore,
#      replay — runs under ASan/UBSan.
#   2. bench_suite produces a killed record and an inert-plan (no-fault)
#      record of the same configuration, and bench_diff between them must
#      be clean: the kill only hits the first search of repetition 0, so
#      the recovery cost must sit inside the record's own noise gate. The
#      plans use a fast-detection backoff (a responsive interconnect)
#      so the fixed ULFM-style detection timeout does not dwarf the
#      miniature searches; the inert plan schedules the same kill on an
#      absent rank so faults_enabled matches on both sides (bench_diff
#      refuses to compare records whose fault configs drift).
# Invoked by ctest as
#   cmake -DBFS_TOOL=<exe> -DBENCH_SUITE=<exe> -DBENCH_DIFF=<exe>
#         -DOUT_DIR=<scratch> -P recover_smoke.cmake
foreach(var BFS_TOOL BENCH_SUITE BENCH_DIFF OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "recover_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/nofault" "${OUT_DIR}/killed")

# --- 1. killed runs must validate and report the recovery -------------
foreach(pair "1d;shrink" "2d;spare")
  list(GET pair 0 algo)
  list(GET pair 1 policy)
  execute_process(
    COMMAND "${BFS_TOOL}" --gen rmat --scale 11 --cores 16 --algo ${algo}
            --sources 2 --fault-plan kill:2@level2 --checkpoint-every 1
            --recover-policy ${policy}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "recover_smoke: bfs_tool --algo ${algo} "
                        "--recover-policy ${policy} failed (rc=${run_rc})\n"
                        "stdout:\n${run_out}\nstderr:\n${run_err}")
  endif()
  if(NOT run_out MATCHES "validated 2/2 BFS trees")
    message(FATAL_ERROR "recover_smoke: --algo ${algo} ran but did not "
                        "validate both trees after the kill\n"
                        "stdout:\n${run_out}")
  endif()
  if(NOT run_out MATCHES "rank failure\\(s\\) survived via ${policy}")
    message(FATAL_ERROR "recover_smoke: --algo ${algo} validated but never "
                        "reported the survived ${policy} recovery — did the "
                        "kill fire?\nstdout:\n${run_out}")
  endif()
endforeach()

# --- 2. recovery cost must sit inside the benchmark noise gate --------
# Same plan twice, except the kill target: rank 3 exists at 64 ranks,
# rank 999 never does (absent-rank kills are ignored by design), so the
# second plan is enabled-but-inert.
set(plan_tail "\"max_collective_retries\":6,\"backoff_base_seconds\":1e-6,\"backoff_cap_seconds\":2e-5")
file(WRITE "${OUT_DIR}/plan_killed.json"
     "{${plan_tail},\"rank_kills\":[{\"rank\":3,\"at_level\":2}]}")
file(WRITE "${OUT_DIR}/plan_inert.json"
     "{${plan_tail},\"rank_kills\":[{\"rank\":999,\"at_level\":2}]}")

foreach(side "nofault;plan_inert" "killed;plan_killed")
  list(GET side 0 dir)
  list(GET side 1 plan)
  execute_process(
    COMMAND "${BENCH_SUITE}" --scales=13 --algos=2d --wires=raw
            "--fault-plan=${OUT_DIR}/${plan}.json" --checkpoint-every=1
            --recover-policy=spare "--out-dir=${OUT_DIR}/${dir}"
    RESULT_VARIABLE suite_rc
    OUTPUT_VARIABLE suite_out
    ERROR_VARIABLE suite_err)
  if(NOT suite_rc EQUAL 0)
    message(FATAL_ERROR "recover_smoke: bench_suite (${dir}) failed "
                        "(rc=${suite_rc})\nstdout:\n${suite_out}\n"
                        "stderr:\n${suite_err}")
  endif()
endforeach()

execute_process(
  COMMAND "${BENCH_DIFF}" "${OUT_DIR}/nofault" "${OUT_DIR}/killed"
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "recover_smoke: killed record regressed beyond the "
                      "noise gate against the inert-plan record "
                      "(rc=${diff_rc})\nstdout:\n${diff_out}\n"
                      "stderr:\n${diff_err}")
endif()
if(NOT diff_out MATCHES "0 regression")
  message(FATAL_ERROR "recover_smoke: clean diff reported regressions?\n"
                      "${diff_out}")
endif()

message(STATUS "recover_smoke passed: kills survived with validated trees "
               "(1d/shrink, 2d/spare); killed-vs-inert TEPS within the "
               "noise gate")
