// Figure 11: the uk-union web crawl (diameter ~140, ~140 BFS iterations)
// on Hopper — 2D Flat vs 2D Hybrid, computation/communication split,
// p in {500, 1000, 2000, 4000}. Expected shapes (paper §6):
//  * communication is a small fraction of execution even at 4000 cores
//    (many tiny frontiers -> little data to move),
//  * because communication doesn't matter here, the hybrid code's
//    intra-node overheads make it *slower* than flat MPI,
//  * ~4x speedup going from 500 to 4000 cores.
// We substitute the proprietary crawl with the synthetic `webcrawl`
// generator (see DESIGN.md) at the same diameter.
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int log_n = util::bench_scale(17);
  const int diameter =
      static_cast<int>(util::project_env_int("DIAMETER", 140));
  const int nsources = bench_sources(2);

  graph::WebcrawlParams params;
  params.num_vertices = vid_t{1} << log_n;
  params.target_diameter = diameter;
  // uk-union averages ~40 links/page; match its density so the
  // compute:communication balance lands in the paper's regime.
  params.intra_edge_factor = 16;
  Workload w;
  w.built = graph::build_graph(graph::generate_webcrawl(params));
  w.n = w.built.csr.num_vertices();
  const auto comps = graph::connected_components(w.built.csr);
  w.sources = graph::sample_sources(w.built.csr, comps, nsources, 11);

  // uk-union has ~5.5B directed edges; rescale latencies accordingly.
  const auto machine =
      scaled_machine(model::hopper(), w.built.directed_edge_count,
                     std::log2(5.5e9));

  print_header("Figure 11: high-diameter web crawl (uk-union stand-in), "
               "Hopper",
               "Fig 11, uk-union, diameter ~140",
               "ours: 2^" + std::to_string(log_n) + " pages, diameter " +
                   std::to_string(diameter) + ", latency-rescaled hopper");

  std::printf("%-8s %-12s %14s %14s %14s %8s\n", "cores", "algorithm",
              "total (ms)", "comp (ms)", "comm (ms)", "comm%");
  double flat_500 = 0;
  double flat_4000 = 0;
  for (int cores : {500, 1000, 2000, 4000}) {
    for (bool hybrid : {false, true}) {
      core::EngineOptions opts;
      opts.algorithm = hybrid ? core::Algorithm::kTwoDHybrid
                              : core::Algorithm::kTwoDFlat;
      opts.cores = cores;
      opts.machine = machine;
      const MeanTimes mt = run_config(w, opts);
      std::printf("%-8d %-12s %14.3f %14.3f %14.3f %7.1f%%\n", cores,
                  hybrid ? "2D Hybrid" : "2D Flat", mt.total * 1e3,
                  mt.comp * 1e3, mt.comm * 1e3,
                  100.0 * mt.comm / (mt.comm + mt.comp));
      if (!hybrid && cores == 500) flat_500 = mt.total;
      if (!hybrid && cores == 4000) flat_4000 = mt.total;
    }
  }
  std::printf("\nspeedup of 2D Flat from 500 to 4000 cores: %.2fx "
              "(paper: ~4x)\n",
              flat_500 / flat_4000);
  std::printf("expected: hybrid slower than flat here (communication is "
              "minor, intra-node overheads dominate ~%d tiny levels)\n",
              diameter);
  return 0;
}
