// Ablation C (paper §4.2): the SpMSV back-end polyalgorithm inside the
// full 2D BFS. Forces the SPA and the heap merge across a core-count
// sweep and compares against the automatic selector. Expected: SPA wins
// while the per-rank sub-problems are dense relative to the block
// dimension (low core counts); the heap takes over as blocks go
// hypersparse (high core counts); auto tracks the better of the two.
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(15);
  const int nsources = bench_sources(2);
  const Workload w = make_rmat_workload(scale, 16, nsources);
  const auto machine =
      scaled_machine(model::franklin(), w.built.directed_edge_count, 33.0);

  print_header("Ablation: SpMSV back end inside 2D BFS (SPA / heap / auto)",
               "§4.2 polyalgorithm, Fig 3 crossover",
               "ours: scale " + std::to_string(scale) +
                   " R-MAT, latency-rescaled franklin");

  std::printf("%-8s %14s %14s %14s %20s\n", "cores", "spa (ms)",
              "heap (ms)", "auto (ms)", "auto picks (spa/heap)");
  for (int cores : {64, 256, 1024, 4096, 16384}) {
    double times[3] = {0, 0, 0};
    std::int64_t spa_calls = 0;
    std::int64_t heap_calls = 0;
    const sparse::SpmsvBackend backends[3] = {sparse::SpmsvBackend::kSpa,
                                              sparse::SpmsvBackend::kHeap,
                                              sparse::SpmsvBackend::kAuto};
    for (int b = 0; b < 3; ++b) {
      core::EngineOptions opts;
      opts.algorithm = core::Algorithm::kTwoDFlat;
      opts.cores = cores;
      opts.machine = machine;
      opts.backend = backends[b];
      core::Engine engine{w.built.edges, w.n, opts};
      for (vid_t source : w.sources) {
        const auto out = engine.run(source);
        times[b] += out.report.total_seconds;
        if (b == 2) {
          spa_calls += out.report.spmsv_spa_calls;
          heap_calls += out.report.spmsv_heap_calls;
        }
      }
      times[b] /= static_cast<double>(w.sources.size());
    }
    std::printf("%-8d %14.3f %14.3f %14.3f %11lld/%-8lld\n", cores,
                times[0] * 1e3, times[1] * 1e3, times[2] * 1e3,
                static_cast<long long>(spa_calls),
                static_cast<long long>(heap_calls));
  }
  std::printf("\nexpected: SPA ahead at low core counts, heap ahead at "
              "high core counts, auto close to min(spa, heap)\n");
  return 0;
}
