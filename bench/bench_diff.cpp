// bench_diff: the noise-aware regression gate over BENCH_*.json records.
// Compares two record sets (directories holding BENCH_*.json, or
// individual record files), matching records by name and flagging a
// metric only when its delta is worse in the metric's direction and
// beyond the records' own k-sigma noise band or the absolute relative
// floor (see obs/bench_diff.hpp for the exact rule).
//
//   bench_diff BASELINE CURRENT [--k=3] [--rel-floor=0.05]
//              [--min-rel=0.001] [--require-all] [--doctor-out=DIR]
//
// Exit codes: 0 = no regressions, 1 = regressions found, 2 = unusable
// input (unreadable file, schema-version mismatch, config drift under an
// existing name, or --require-all unmet). The bench-smoke ctest drives
// this against the committed repo-root baselines.
//
// --doctor-out=DIR closes the detection -> diagnosis loop: for every
// record pair that tripped the gate, run the attribution engine
// (obs/doctor.hpp) and write DIR/DOCTOR_<name>.json, naming the report
// and the top-ranked cause in the failure output.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "obs/bench_diff.hpp"
#include "obs/bench_record.hpp"
#include "obs/doctor.hpp"

namespace {

namespace fs = std::filesystem;
using dbfs::obs::BenchRecord;

/// A path names either one record file or a directory of BENCH_*.json.
std::vector<BenchRecord> load_set(const std::string& path) {
  std::vector<BenchRecord> records;
  if (fs::is_directory(path)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 11 /* BENCH_ + .json */ &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
      records.push_back(dbfs::obs::load_bench_record(file));
    }
  } else {
    records.push_back(dbfs::obs::load_bench_record(path));
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  dbfs::obs::BenchDiffOptions options;
  bool require_all = false;
  std::string doctor_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--k=", 0) == 0) {
      options.sigma_k = std::stod(arg.substr(4));
    } else if (arg.rfind("--rel-floor=", 0) == 0) {
      options.rel_floor = std::stod(arg.substr(12));
    } else if (arg.rfind("--min-rel=", 0) == 0) {
      options.min_rel = std::stod(arg.substr(10));
    } else if (arg == "--require-all") {
      require_all = true;
    } else if (arg.rfind("--doctor-out=", 0) == 0) {
      doctor_out = arg.substr(13);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE CURRENT [--k=K] "
                 "[--rel-floor=F] [--min-rel=M] [--require-all] "
                 "[--doctor-out=DIR]\n"
                 "BASELINE/CURRENT: a BENCH_*.json file or a directory of "
                 "them\n");
    return 2;
  }

  std::vector<BenchRecord> baseline;
  std::vector<BenchRecord> current;
  try {
    baseline = load_set(positional[0]);
    current = load_set(positional[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
  if (baseline.empty() || current.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json records under %s\n",
                 baseline.empty() ? positional[0].c_str()
                                  : positional[1].c_str());
    return 2;
  }

  const auto report = dbfs::obs::diff_bench_records(baseline, current, options);
  std::fputs(dbfs::obs::format_bench_diff(report).c_str(), stdout);

  // Gate tripped and a doctor directory was given: auto-diagnose every
  // regressed pair so the failure output names causes, not just metrics.
  if (report.regressions > 0 && !doctor_out.empty()) {
    std::set<std::string> regressed;
    for (const auto& delta : report.deltas) {
      if (delta.regression) regressed.insert(delta.record);
    }
    std::error_code ec;
    fs::create_directories(doctor_out, ec);
    for (const std::string& name : regressed) {
      const auto by_name = [&name](const BenchRecord& r) {
        return r.name == name;
      };
      const auto base_it =
          std::find_if(baseline.begin(), baseline.end(), by_name);
      const auto cand_it =
          std::find_if(current.begin(), current.end(), by_name);
      if (base_it == baseline.end() || cand_it == current.end()) continue;
      const auto diagnosis = dbfs::obs::diagnose(*base_it, *cand_it);
      const std::string path =
          (fs::path(doctor_out) / dbfs::obs::doctor_report_filename(name))
              .string();
      try {
        dbfs::obs::save_doctor_report(path, diagnosis);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_diff: %s\n", e.what());
        continue;
      }
      std::printf("doctor: %s: top cause %s\n", name.c_str(),
                  diagnosis.top_cause().c_str());
      std::fputs(dbfs::obs::format_doctor_report(diagnosis).c_str(), stdout);
      std::printf("doctor: wrote %s\n", path.c_str());
    }
  }

  if (!report.errors.empty()) return 2;
  if (require_all &&
      (!report.only_in_baseline.empty() || !report.only_in_current.empty())) {
    std::fprintf(stderr,
                 "bench_diff: --require-all set but the record sets do not "
                 "cover each other\n");
    return 2;
  }
  if (report.compared == 0) {
    std::fprintf(stderr, "bench_diff: no record names in common\n");
    return 2;
  }
  return report.regressions > 0 ? 1 : 0;
}
