// Figure 7: BFS strong-scaling GTEPS on Hopper (Cray XE6). Panel (a):
// p in {1224..10008} on the scale-30 class; panel (b): p in
// {5040..40000} on the scale-32 class. Expected shape (paper §6): in
// contrast to Franklin, the 2D algorithms score *higher* than 1D here —
// Magny-Cours integer cores got much faster while per-core bisection
// bandwidth regressed, so communication efficiency decides the race.
// Flat 1D is not run at 40K cores (its communication already consumed
// >90% of execution beyond 10-20K, as the paper notes).
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();

  {
    const int scale = util::bench_scale(15);
    ScalingSpec spec;
    spec.title = "Figure 7(a): strong scaling GTEPS, Hopper";
    spec.paper_ref = "Fig 7(a), n=2^30 m=2^34";
    spec.machine = model::hopper();
    spec.paper_log2_edges = 34;
    spec.cores = {1224, 2500, 5040, 10008};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled hopper");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/false);
  }

  {
    const int scale = util::bench_scale(16);
    ScalingSpec spec;
    spec.title = "Figure 7(b): strong scaling GTEPS, Hopper";
    spec.paper_ref = "Fig 7(b), n=2^32 m=2^36";
    spec.machine = model::hopper();
    spec.paper_log2_edges = 36;
    spec.cores = {5040, 10008, 20000, 40000};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled hopper");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/false);
  }
  return 0;
}
