// Table 2: performance comparison with the Parallel Boost Graph Library
// on Carver (Nehalem + QDR InfiniBand): MTEPS of PBGL vs our Flat 2D at
// 128 and 256 cores, R-MAT scales 22 and 24. Expected shape (paper §6):
// the tuned Flat 2D code is roughly an order of magnitude faster (up to
// 16x), and PBGL barely improves — or regresses — when doubling cores.
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int small_scale = util::bench_scale(14);
  const int big_scale = small_scale + 2;
  const int nsources = bench_sources(2);

  print_header("Table 2: PBGL comparison on Carver (MTEPS)",
               "Table 2, scales {22,24}, p in {128,256}",
               "ours: scales {" + std::to_string(small_scale) + "," +
                   std::to_string(big_scale) +
                   "}, latency-rescaled carver");

  std::printf("%-8s %-10s %16s %16s %10s\n", "cores", "code",
              ("scale " + std::to_string(small_scale)).c_str(),
              ("scale " + std::to_string(big_scale)).c_str(), "ratio");

  for (int cores : {128, 256}) {
    double mteps[2][2] = {{0, 0}, {0, 0}};  // [code][scale]
    for (int si = 0; si < 2; ++si) {
      const int scale = si == 0 ? small_scale : big_scale;
      const Workload w = make_rmat_workload(scale, 16, nsources);
      const auto machine = scaled_machine(
          model::carver(), w.built.directed_edge_count, 26.0);
      for (int code = 0; code < 2; ++code) {
        core::EngineOptions opts;
        opts.algorithm = code == 0 ? core::Algorithm::kPbglLike
                                   : core::Algorithm::kTwoDFlat;
        opts.cores = cores;
        opts.machine = machine;
        const MeanTimes mt = run_config(w, opts);
        mteps[code][si] = mt.gteps * 1e3;
      }
    }
    std::printf("%-8d %-10s %16.1f %16.1f\n", cores, "PBGL-like",
                mteps[0][0], mteps[0][1]);
    std::printf("%-8d %-10s %16.1f %16.1f %9.1fx\n", cores, "Flat 2D",
                mteps[1][0], mteps[1][1], mteps[1][0] / mteps[0][0]);
  }
  std::printf("\nexpected: Flat 2D an order of magnitude faster (paper: up "
              "to 16x); PBGL gains little from doubling cores\n");
  return 0;
}
