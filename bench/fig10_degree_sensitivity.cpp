// Figure 10: GTEPS under varying average degree at fixed total edge
// count — (scale 31, degree 4), (scale 29, degree 16), (scale 27,
// degree 64) in the paper, at p = 1024 and p = 4096. Expected shape
// (paper §6): the 1D lead over 2D grows as the graph gets *sparser*, and
// the flat 2D algorithm beats flat 1D for the first time on the densest
// (degree 64) instance — for fixed edges, denser graphs mean shorter
// frontier/parent vectors, shrinking the 2D code's cache-miss penalty.
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();
  // Fixed edge budget: scale+2/deg4, scale/deg16, scale-2/deg64.
  const int mid_scale = util::bench_scale(14);

  struct Config {
    int scale;
    int degree;
  };
  const Config configs[] = {{mid_scale + 2, 4},
                            {mid_scale, 16},
                            {mid_scale - 2, 64}};

  for (int cores : {1024, 4096}) {
    print_header(
        cores == 1024 ? "Figure 10(a): GTEPS vs average degree, p=1024"
                      : "Figure 10(b): GTEPS vs average degree, p=4096",
        "Fig 10, fixed edges, degrees {4,16,64}",
        "ours: scales {" + std::to_string(mid_scale + 2) + "," +
            std::to_string(mid_scale) + "," + std::to_string(mid_scale - 2) +
            "}, latency-rescaled franklin");

    std::printf("%-22s", "config");
    for (Algo a : ScalingRunner::kAll) std::printf(" %16s", algo_name(a));
    std::printf("  (GTEPS)\n");

    for (const Config& cfg : configs) {
      const Workload w = make_rmat_workload(cfg.scale, cfg.degree, nsources);
      ScalingSpec spec;
      spec.title = "";
      spec.paper_ref = "";
      spec.machine = model::franklin();
      // Paper's fixed budget is 2^33 edges across all three configs.
      spec.paper_log2_edges = 33;
      spec.cores = {cores};
      spec.scale = cfg.scale;
      spec.edge_factor = cfg.degree;
      ScalingRunner runner{spec, w};

      std::printf("scale %-2d, degree %-5d", cfg.scale, cfg.degree);
      for (Algo a : ScalingRunner::kAll) {
        const AlgoResult r = runner.point(a, cores);
        std::printf(" %14.3f%s", r.gteps, r.modeled ? "*" : " ");
      }
      std::printf("\n");
    }
    std::printf("(*) = volume-profile model point\n");
  }
  return 0;
}
