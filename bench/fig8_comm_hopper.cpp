// Figure 8: inter-node communication time on Hopper for the Figure 7
// configurations. Expected shape (paper §6): 1D communication blows up
// with core count (flat 1D's comm consumed >90% of execution by 20K
// cores) while the 2D hybrid stays under ~50% at 20K — the headline
// "3.5x communication reduction" of the paper comes from comparing these
// series.
#include "harness/scaling.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int nsources = bench_sources();

  {
    const int scale = util::bench_scale(15);
    ScalingSpec spec;
    spec.title = "Figure 8(a): communication time, Hopper";
    spec.paper_ref = "Fig 8(a), n=2^30 m=2^34";
    spec.machine = model::hopper();
    spec.paper_log2_edges = 34;
    spec.cores = {1224, 2500, 5040, 10008};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled hopper");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/true);
  }

  {
    const int scale = util::bench_scale(16);
    ScalingSpec spec;
    spec.title = "Figure 8(b): communication time, Hopper";
    spec.paper_ref = "Fig 8(b), n=2^32 m=2^36";
    spec.machine = model::hopper();
    spec.paper_log2_edges = 36;
    spec.cores = {5040, 10008, 20000, 40000};
    spec.scale = scale;
    spec.edge_factor = 16;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    print_header(spec.title, spec.paper_ref,
                 "ours: scale " + std::to_string(scale) +
                     ", edgefactor 16, latency-rescaled hopper");
    ScalingRunner runner{spec, w};
    runner.print_table(/*show_comm=*/true);

    // The paper's headline: communication reduced by up to 3.5x relative
    // to the flat 1D code. Report the measured ratio at the top end.
    const AlgoResult flat1d = runner.point(Algo::kOneDFlat, 20000);
    const AlgoResult hyb2d = runner.point(Algo::kTwoDHybrid, 20000);
    std::printf("\ncomm(1D Flat)/comm(2D Hybrid) at 20000 cores: %.2fx "
                "(paper: up to 3.5x)\n",
                flat1d.comm / hyb2d.comm);
  }
  return 0;
}
