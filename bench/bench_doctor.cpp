// bench_doctor: regression attribution over two BENCH_*.json records.
// Where bench_diff answers "did performance regress?", bench_doctor
// answers "why": it aligns the per-level comm/comp/wait splits (and the
// per-site transfer breakdown when present), decomposes the TEPS delta
// into ranked contributions, and classifies the known regression
// signatures — straggler rank, codec fallback, checkpoint/recovery
// overhead, machine-model drift, frontier-shape change (obs/doctor.hpp).
//
//   bench_doctor BASELINE CANDIDATE [--json-out=PATH]
//
// BASELINE/CANDIDATE are BENCH_*.json files, or directories of them (the
// records are then matched by name and every common name is diagnosed).
// The human-readable diagnosis goes to stdout; --json-out writes the
// machine-readable report (one file per name under a directory argument,
// or exactly that file when a single pair is diagnosed).
//
// Exit codes: 0 = diagnosis produced, 2 = unusable input.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"
#include "obs/doctor.hpp"

namespace {

namespace fs = std::filesystem;
using dbfs::obs::BenchRecord;

/// A path names either one record file or a directory of BENCH_*.json.
std::vector<BenchRecord> load_set(const std::string& path) {
  std::vector<BenchRecord> records;
  if (fs::is_directory(path)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 11 /* BENCH_ + .json */ &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
      records.push_back(dbfs::obs::load_bench_record(file));
    }
  } else {
    records.push_back(dbfs::obs::load_bench_record(path));
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_doctor: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_doctor BASELINE CANDIDATE [--json-out=PATH]\n"
                 "BASELINE/CANDIDATE: a BENCH_*.json file or a directory of "
                 "them\n");
    return 2;
  }

  std::vector<BenchRecord> baseline;
  std::vector<BenchRecord> candidate;
  try {
    baseline = load_set(positional[0]);
    candidate = load_set(positional[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_doctor: %s\n", e.what());
    return 2;
  }

  // Diagnose every candidate whose name has a baseline twin.
  std::vector<std::pair<const BenchRecord*, const BenchRecord*>> pairs;
  for (const BenchRecord& cand : candidate) {
    const auto it = std::find_if(
        baseline.begin(), baseline.end(),
        [&cand](const BenchRecord& b) { return b.name == cand.name; });
    if (it != baseline.end()) pairs.emplace_back(&*it, &cand);
  }
  if (pairs.empty()) {
    std::fprintf(stderr, "bench_doctor: no record names in common\n");
    return 2;
  }

  const bool json_is_dir = !json_out.empty() &&
                           (fs::is_directory(json_out) || pairs.size() > 1);
  if (json_is_dir) {
    std::error_code ec;
    fs::create_directories(json_out, ec);
  }

  for (const auto& [base, cand] : pairs) {
    const auto report = dbfs::obs::diagnose(*base, *cand);
    std::fputs(dbfs::obs::format_doctor_report(report).c_str(), stdout);
    if (json_out.empty()) continue;
    const std::string path =
        json_is_dir
            ? (fs::path(json_out) /
               dbfs::obs::doctor_report_filename(cand->name))
                  .string()
            : json_out;
    try {
      dbfs::obs::save_doctor_report(path, report);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_doctor: %s\n", e.what());
      return 2;
    }
    std::printf("doctor: wrote %s\n", path.c_str());
  }
  return 0;
}
