// Figure 3: speedup of the SPA over the heap (priority queue) for the
// local SpMSV union, as a function of simulated core count. The paper
// measures a crossover near 10K cores: per-core sub-problems shrink as p
// grows, and below a certain density the SPA's dense accumulator stops
// paying for itself while the heap's O(nnz(x)) working set keeps winning
// on memory too.
//
// This is a *real* microbenchmark (google-benchmark, host wall time) of
// the actual SPA and heap SpMSV kernels, run at the per-core problem
// sizes implied by distributing a scale-N R-MAT over p cores; alongside
// the wall times we report the per-core memory footprints of the two
// structures (the paper quotes >750 MB/core for the SPA at scale 33 on
// 10K cores).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "sparse/spmsv.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dbfs;

struct LocalProblem {
  sparse::DcscMatrix block;
  sparse::SparseVector<vid_t> frontier;
};

// Build the local sub-problem a single rank sees on a p-core 2D run over
// a scale-`scale` R-MAT: an (n/s x n/s) block holding m/p edges, with a
// frontier occupying a Graph500-typical ~1/8 of the block's columns.
LocalProblem make_local_problem(int scale, int cores, std::uint64_t seed) {
  const auto n = vid_t{1} << scale;
  const eid_t m = 16 * n;
  const int s = std::max(1, static_cast<int>(std::sqrt(
                                static_cast<double>(cores))));
  const vid_t block_dim = std::max<vid_t>(1, n / s);
  const auto local_nnz =
      static_cast<eid_t>(static_cast<double>(m) / (s * s));

  util::Xoshiro256 rng{seed};
  std::vector<sparse::Triple> triples;
  triples.reserve(static_cast<std::size_t>(local_nnz));
  for (eid_t i = 0; i < local_nnz; ++i) {
    triples.push_back(sparse::Triple{
        static_cast<vid_t>(rng.next_below(
            static_cast<std::uint64_t>(block_dim))),
        static_cast<vid_t>(rng.next_below(
            static_cast<std::uint64_t>(block_dim)))});
  }
  LocalProblem prob;
  prob.block =
      sparse::DcscMatrix::from_triples(block_dim, block_dim, std::move(triples));

  std::vector<sparse::SvEntry<vid_t>> entries;
  for (vid_t c = 0; c < block_dim; ++c) {
    if (rng.next_double() < 0.125) entries.push_back({c, c});
  }
  prob.frontier =
      sparse::SparseVector<vid_t>::from_sorted(block_dim, std::move(entries));
  return prob;
}

vid_t mul(vid_t, vid_t col, vid_t) { return col; }
vid_t comb(vid_t a, vid_t b) { return std::max(a, b); }

void BM_SpmsvSpa(benchmark::State& state) {
  const int scale = util::bench_scale(18);
  const auto cores = static_cast<int>(state.range(0));
  const auto prob = make_local_problem(scale, cores, 42);
  sparse::Spa<vid_t> spa{prob.block.nrows()};
  for (auto _ : state) {
    auto y = sparse::spmsv<vid_t>(prob.block, prob.frontier, mul, comb,
                                  sparse::SpmsvBackend::kSpa, &spa);
    benchmark::DoNotOptimize(y);
  }
  state.counters["spa_bytes"] = static_cast<double>(spa.memory_bytes());
}

void BM_SpmsvHeap(benchmark::State& state) {
  const int scale = util::bench_scale(18);
  const auto cores = static_cast<int>(state.range(0));
  const auto prob = make_local_problem(scale, cores, 42);
  for (auto _ : state) {
    auto y = sparse::spmsv<vid_t>(prob.block, prob.frontier, mul, comb,
                                  sparse::SpmsvBackend::kHeap, nullptr);
    benchmark::DoNotOptimize(y);
  }
}

void register_benchmarks() {
  for (long cores : {256, 1024, 2500, 10000, 40000}) {
    benchmark::RegisterBenchmark("BM_SpmsvSpa", BM_SpmsvSpa)->Arg(cores);
    benchmark::RegisterBenchmark("BM_SpmsvHeap", BM_SpmsvHeap)->Arg(cores);
  }
}

// After the google-benchmark table, print the Figure 3 series explicitly:
// speedup of SPA over heap per core count.
void print_figure3(int scale) {
  std::printf("\n=== Figure 3: speedup of SPA over heap for local SpMSV "
              "(scale %d R-MAT per-core problem) ===\n",
              scale);
  std::printf("%-10s %14s %14s %10s %16s\n", "cores", "spa (us)",
              "heap (us)", "speedup", "spa MB/core");
  for (int cores : {256, 1024, 2500, 10000, 40000}) {
    const auto prob = make_local_problem(scale, cores, 42);
    sparse::Spa<vid_t> spa{prob.block.nrows()};
    // Warm + measure a fixed repetition count per backend.
    const int reps = 20;
    util::Timer t;
    for (int i = 0; i < reps; ++i) {
      auto y = sparse::spmsv<vid_t>(prob.block, prob.frontier, mul, comb,
                                    sparse::SpmsvBackend::kSpa, &spa);
      benchmark::DoNotOptimize(y);
    }
    const double spa_us = t.elapsed() / reps * 1e6;
    t.reset();
    for (int i = 0; i < reps; ++i) {
      auto y = sparse::spmsv<vid_t>(prob.block, prob.frontier, mul, comb,
                                    sparse::SpmsvBackend::kHeap, nullptr);
      benchmark::DoNotOptimize(y);
    }
    const double heap_us = t.elapsed() / reps * 1e6;
    std::printf("%-10d %14.2f %14.2f %9.2fx %16.2f\n", cores, spa_us,
                heap_us, heap_us / spa_us,
                static_cast<double>(spa.memory_bytes()) / 1e6);
  }
  std::printf("(paper: SPA faster at low concurrency; heap preferable "
              "beyond ~10K cores, where it also saves memory)\n");
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure3(dbfs::util::bench_scale(18));
  return 0;
}
