// Beyond-paper extension bench: batched multi-source BFS (msBFS) vs k
// independent traversals, measured on the host. The batched traversal
// shares adjacency scans across lanes, so edge examinations and wall time
// collapse on low-diameter graphs — the regime of the paper's multi-
// source Graph500 protocol and of analytics like degrees-of-separation.
#include "harness/harness.hpp"

#include "bfs/multi_source.hpp"
#include "bfs/serial.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(15);
  const Workload base = make_rmat_workload(scale, 16, 1);
  const auto comps = graph::connected_components(base.built.csr);

  print_header("Extension: batched multi-source BFS (host measurement)",
               "beyond the paper: msBFS, Then et al. VLDB'14",
               "ours: scale " + std::to_string(scale) +
                   " R-MAT; k lanes in one traversal vs k serial runs");

  std::printf("%-8s %14s %14s %10s %16s\n", "k", "serial k (ms)",
              "batched (ms)", "speedup", "edge-scan ratio");
  for (int k : {4, 16, 64}) {
    const auto sources =
        graph::sample_sources(base.built.csr, comps, k, 100 + k);
    if (static_cast<int>(sources.size()) < k) break;

    util::Timer t;
    eid_t serial_edges = 0;
    for (vid_t s : sources) {
      serial_edges += bfs::serial_bfs(base.built.csr, s).report.edges_traversed;
    }
    const double serial_ms = t.elapsed() * 1e3;

    t.reset();
    const auto ms = bfs::multi_source_bfs(base.built.csr, sources);
    const double batched_ms = t.elapsed() * 1e3;

    std::printf("%-8d %14.3f %14.3f %9.2fx %15.1f%%\n", k, serial_ms,
                batched_ms, serial_ms / batched_ms,
                100.0 * static_cast<double>(ms.report.edges_traversed) /
                    static_cast<double>(serial_edges));
  }
  std::printf("\nexpected: speedup grows with k (lanes share scans); the "
              "batched traversal examines a small fraction of the edges k "
              "independent runs would\n");
  return 0;
}
