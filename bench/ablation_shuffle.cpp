// Ablation A (paper §4.4): random vertex relabeling before partitioning.
// Measures per-rank vertex/edge imbalance and the resulting simulated
// BFS time with and without the shuffle, on skewed R-MAT input.
// Expected: R-MAT's self-similarity concentrates edges on low vertex ids,
// so without the shuffle rank 0's overload throttles every level; the
// shuffle restores near-uniform loads (the Graph500 strategy).
#include "harness/harness.hpp"

#include "dist/local_graph1d.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(14);
  const int nsources = bench_sources(2);
  const int ranks = 64;

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  const auto raw = graph::generate_rmat(params);

  print_header("Ablation: random vertex shuffle before 1D partitioning",
               "§4.4 load-balancing strategy",
               "ours: scale " + std::to_string(scale) + " R-MAT, " +
                   std::to_string(ranks) + " ranks, franklin");

  std::printf("%-12s %16s %16s %16s %16s\n", "variant", "edge imbalance",
              "max edges/rank", "BFS time (ms)", "GTEPS");
  for (bool shuffle : {false, true}) {
    graph::BuildOptions build;
    build.shuffle = shuffle;
    Workload w;
    w.built = graph::build_graph(raw, build);
    w.n = w.built.csr.num_vertices();
    const auto comps = graph::connected_components(w.built.csr);
    w.sources = graph::sample_sources(w.built.csr, comps, nsources, 3);

    const auto lg = dist::LocalGraph1D::build(w.built.edges, w.n, ranks);
    std::vector<double> loads;
    eid_t max_edges = 0;
    for (int r = 0; r < ranks; ++r) {
      loads.push_back(static_cast<double>(lg.local_edges(r)));
      max_edges = std::max(max_edges, lg.local_edges(r));
    }

    core::EngineOptions opts;
    opts.algorithm = core::Algorithm::kOneDFlat;
    opts.cores = ranks;
    opts.machine = scaled_machine(model::franklin(),
                                  w.built.directed_edge_count, 33.0);
    // Exact per-rank pricing: this experiment is *about* imbalance.
    opts.load_smoothing = 0.0;
    const MeanTimes mt = run_config(w, opts);

    std::printf("%-12s %16.3f %16lld %16.3f %16.3f\n",
                shuffle ? "shuffled" : "natural",
                util::imbalance(loads), static_cast<long long>(max_edges),
                mt.total * 1e3, mt.gteps);
  }
  std::printf("\nexpected: the shuffle cuts edge imbalance sharply and "
              "improves BFS time/GTEPS accordingly\n");
  return 0;
}
