// §6 text experiment: "our Flat 1D code is 2.72x, 3.43x, and 4.13x
// faster than the non-replicated reference MPI code on 512, 1024, and
// 2048 cores" (Franklin). We weak-scale the problem with the core count,
// matching the paper's regime of substantial per-core volume at every
// concurrency. Expected shape: a multi-x gap that grows with cores.
#include "harness/harness.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int base_scale = util::bench_scale(13);
  const int nsources = bench_sources(2);

  print_header("Flat 1D vs Graph500 reference MPI code, Franklin",
               "§6: 2.72x / 3.43x / 4.13x at 512/1024/2048 cores",
               "ours: weak-scaled R-MAT from scale " +
                   std::to_string(base_scale));

  std::printf("%-8s %-8s %18s %18s %10s\n", "cores", "scale",
              "flat 1D (ms)", "reference (ms)", "speedup");
  const int cores_list[] = {512, 1024, 2048};
  for (int i = 0; i < 3; ++i) {
    const int cores = cores_list[i];
    const int scale = base_scale + i;
    const Workload w = make_rmat_workload(scale, 16, nsources);
    const auto machine = scaled_machine(
        model::franklin(), w.built.directed_edge_count, 33.0);

    core::EngineOptions ours;
    ours.algorithm = core::Algorithm::kOneDFlat;
    ours.cores = cores;
    ours.machine = machine;
    const MeanTimes mt_ours = run_config(w, ours);

    core::EngineOptions ref;
    ref.algorithm = core::Algorithm::kGraph500Ref;
    ref.cores = cores;
    ref.machine = machine;
    const MeanTimes mt_ref = run_config(w, ref);

    std::printf("%-8d %-8d %18.3f %18.3f %9.2fx\n", cores, scale,
                mt_ours.total * 1e3, mt_ref.total * 1e3,
                mt_ref.total / mt_ours.total);
  }
  std::printf("\nexpected: multi-x speedup growing with cores "
              "(paper: 2.72x -> 4.13x)\n");
  return 0;
}
