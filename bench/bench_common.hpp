// Shared plumbing for the table/figure harnesses: consistent headers,
// row printing, graph preparation, and source selection. Every bench
// prints one self-describing block per paper table/figure so the
// combined bench output doubles as the EXPERIMENTS.md raw data.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"

namespace dbfs::bench {

inline void print_header(const char* experiment, const char* paper_ref,
                         const std::string& config) {
  std::printf("\n================================================================\n");
  std::printf("%s  (paper: %s)\n", experiment, paper_ref);
  if (!config.empty()) std::printf("%s\n", config.c_str());
  std::printf("================================================================\n");
}

/// Prepared R-MAT instance + sampled sources in the big component.
struct Workload {
  graph::BuiltGraph built;
  std::vector<vid_t> sources;
  vid_t n = 0;
};

inline Workload make_rmat_workload(int scale, int edge_factor, int nsources,
                                   std::uint64_t seed = 1) {
  Workload w;
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  w.built = graph::build_graph(graph::generate_rmat(params));
  w.n = w.built.csr.num_vertices();
  const auto comps = graph::connected_components(w.built.csr);
  w.sources = graph::sample_sources(w.built.csr, comps, nsources, seed + 7);
  return w;
}

/// Number of BFS sources per configuration; benches default low so the
/// whole suite runs in seconds (DISTBFS_SOURCES overrides; the paper
/// uses >= 16).
inline int bench_sources(int dflt = 4) {
  return static_cast<int>(util::project_env_int("SOURCES", dflt));
}

/// Mean simulated seconds + mean comm seconds for one engine config over
/// the workload's sources.
struct MeanTimes {
  double total = 0;
  double comm = 0;
  double comp = 0;
  double gteps = 0;
  int cores_used = 0;
};

inline MeanTimes run_config(const Workload& w, core::EngineOptions opts) {
  core::Engine engine{w.built.edges, w.n, opts};
  MeanTimes mt;
  mt.cores_used = engine.cores_used();
  double teps_recip_sum = 0.0;
  for (vid_t source : w.sources) {
    const auto out = engine.run(source);
    mt.total += out.report.total_seconds;
    mt.comm += out.report.comm_seconds_mean;
    mt.comp += out.report.comp_seconds_mean;
    teps_recip_sum +=
        1.0 / out.report.teps(w.built.directed_edge_count);
  }
  const auto k = static_cast<double>(w.sources.size());
  mt.total /= k;
  mt.comm /= k;
  mt.comp /= k;
  mt.gteps = k / teps_recip_sum / 1e9;  // harmonic mean
  return mt;
}

/// Machine miniaturization (see DESIGN.md and EXPERIMENTS.md): our graphs
/// are ~2^10-2^17x smaller than the paper's, so per-rank data volumes —
/// and with them every bandwidth-proportional term — shrink by that
/// factor automatically. Two classes of constants do NOT shrink by
/// themselves and must be rescaled to keep the paper's operating point:
///  * fixed latencies (per-message αN, thread barriers), which would
///    otherwise swamp the scaled-down levels at the paper's core counts;
///  * cache capacities: at the paper's scale the n/p-sized 1D distance
///    array is DRAM-resident and the n/sqrt(p)-sized 2D vectors more so —
///    the very contrast §5 builds on. Unscaled caches would swallow both
///    working sets and erase the 1D-vs-2D computation gap.
/// `paper_log2_edges` is the log2 of the paper run's directed edge count
/// (e.g. 33 for the scale-29, ef-16 instances).
inline model::MachineModel scaled_machine(model::MachineModel m,
                                          eid_t our_directed_edges,
                                          double paper_log2_edges) {
  const double factor = static_cast<double>(our_directed_edges) /
                        std::pow(2.0, paper_log2_edges);
  return model::miniaturized(std::move(m), factor);
}

}  // namespace dbfs::bench
