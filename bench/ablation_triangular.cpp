// Ablation (paper §7, "Exploiting symmetry in undirected graphs"): store
// only the upper wedge of the symmetric adjacency matrix. The paper
// proposes the 50% space saving and leaves the algorithmic cost an open
// question; this bench quantifies both sides of the trade on our
// implementation (scan-based transpose product + pairwise exchanges):
//   * matrix memory: should drop by ~2x,
//   * BFS time: extra per-level O(nnz_local) scan — cheap when frontiers
//     are huge (R-MAT's bulk levels touch most columns anyway), painful
//     on high-diameter graphs whose ~140 tiny levels each rescan the
//     whole block.
#include "harness/harness.hpp"

#include "dist/partition2d.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

void run_case(const char* name, const Workload& w,
              const model::MachineModel& machine, int cores) {
  std::printf("\n-- %s, %d cores --\n", name, cores);
  std::printf("%-12s %16s %16s %16s\n", "storage", "matrix MB", "BFS (ms)",
              "comp (ms)");
  for (bool triangular : {false, true}) {
    core::EngineOptions opts;
    opts.algorithm = core::Algorithm::kTwoDFlat;
    opts.cores = cores;
    opts.machine = machine;
    opts.triangular_storage = triangular;
    core::Engine engine{w.built.edges, w.n, opts};
    const MeanTimes mt = run_config(w, opts);

    // Memory measured on a standalone partition with the same grid.
    const auto grid = simmpi::ProcessGrid::closest_square(cores);
    const dist::Partition2D part{w.built.edges, w.n, grid, triangular};
    std::printf("%-12s %16.2f %16.3f %16.3f\n",
                triangular ? "triangular" : "full",
                static_cast<double>(part.memory_bytes()) / 1e6,
                mt.total * 1e3, mt.comp * 1e3);
  }
}

}  // namespace

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(15);
  const int nsources = bench_sources(2);

  print_header("Ablation: triangular (symmetry-exploiting) matrix storage",
               "§7 future work: 50% space via upper-triangle storage",
               "ours: scan-based transpose product per level");

  {
    const Workload w = make_rmat_workload(scale, 16, nsources);
    const auto machine = scaled_machine(model::hopper(),
                                        w.built.directed_edge_count, 34.0);
    for (int cores : {256, 1024}) run_case("R-MAT (low diameter)", w, machine, cores);
  }
  {
    graph::WebcrawlParams params;
    params.num_vertices = vid_t{1} << scale;
    params.target_diameter = 100;
    Workload w;
    w.built = graph::build_graph(graph::generate_webcrawl(params));
    w.n = w.built.csr.num_vertices();
    const auto comps = graph::connected_components(w.built.csr);
    w.sources = graph::sample_sources(w.built.csr, comps, nsources, 3);
    const auto machine = scaled_machine(model::hopper(),
                                        w.built.directed_edge_count, 34.0);
    for (int cores : {256}) run_case("web crawl (high diameter)", w, machine, cores);
  }
  std::printf("\nexpected: ~2x matrix-memory saving in both cases; modest "
              "slowdown on R-MAT, large slowdown on the high-diameter graph "
              "(per-level full-block rescans)\n");
  return 0;
}
