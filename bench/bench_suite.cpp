// bench_suite: the continuous-benchmark driver. Runs the curated
// configuration matrix — {1D, 2D} x {raw, auto wire format} x scales
// 14-16 on the latency-rescaled Hopper model — and writes one
// BENCH_<name>.json record per point, establishing the perf trajectory
// that bench_diff gates on. Every record carries >= 5 virtual-seed
// repetitions so the across-repetition spread doubles as the noise model.
//
//   bench_suite [--out-dir=DIR] [--scales=14,15,16] [--algos=1d,2d]
//               [--wires=raw,auto] [--cores=N] [--reps=N] [--sources=N]
//               [--direction=topdown|bottomup|hybrid] [--slow-beta=X] [--list]
//               [--fault-plan=kill:RANK@levelL[,...] |
//                --fault-plan=flip:RANK@levelL:target[,...] |
//                --fault-plan=FILE.json]
//               [--checkpoint-every=K] [--recover-policy=shrink|spare]
//               [--audit-every=K]
//
// A fault plan applies to every configuration in the matrix. A scheduled
// kill fires once per record (the engine consumes it on the first
// search of repetition 0 and recovers), so the later repetitions are
// fault-free and the across-repetition spread prices the recovery into
// the record's own noise model — the recover_smoke ctest leans on this.
//
// Baselines live at the repo root (committed); refresh them with
//   ./bench/bench_suite --out-dir=.
// from the build directory after an intentional perf change (see
// EXPERIMENTS.md). --slow-beta multiplies the machine's per-byte network
// cost — the bench_smoke ctest uses it to prove the regression gate
// actually fires.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace {

using namespace dbfs;
using namespace dbfs::bench;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct SuiteOptions {
  std::string out_dir = ".";
  std::vector<int> scales{14, 15, 16};
  std::vector<std::string> algos{"1d", "2d"};
  std::vector<std::string> wires{"raw", "auto"};
  int cores = 64;
  int reps = 5;
  int sources = 2;
  bfs::DirectionMode direction = bfs::DirectionMode::kTopDown;
  double slow_beta = 1.0;
  bool list_only = false;
  std::string fault_plan;
  recover::RecoverOptions recover;
};

core::Algorithm parse_algo(const std::string& name) {
  if (name == "1d") return core::Algorithm::kOneDFlat;
  if (name == "1d-hybrid") return core::Algorithm::kOneDHybrid;
  if (name == "2d") return core::Algorithm::kTwoDFlat;
  if (name == "2d-hybrid") return core::Algorithm::kTwoDHybrid;
  throw std::invalid_argument("bench_suite: unknown algorithm '" + name +
                              "' (use 1d, 1d-hybrid, 2d, 2d-hybrid)");
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      opt.out_dir = arg.substr(10);
    } else if (arg.rfind("--scales=", 0) == 0) {
      opt.scales.clear();
      for (const auto& s : split_csv(arg.substr(9))) {
        opt.scales.push_back(std::stoi(s));
      }
    } else if (arg.rfind("--algos=", 0) == 0) {
      opt.algos = split_csv(arg.substr(8));
    } else if (arg.rfind("--wires=", 0) == 0) {
      opt.wires = split_csv(arg.substr(8));
    } else if (arg.rfind("--cores=", 0) == 0) {
      opt.cores = std::stoi(arg.substr(8));
    } else if (arg.rfind("--reps=", 0) == 0) {
      opt.reps = std::stoi(arg.substr(7));
    } else if (arg.rfind("--sources=", 0) == 0) {
      opt.sources = std::stoi(arg.substr(10));
    } else if (arg.rfind("--direction=", 0) == 0) {
      try {
        opt.direction = bfs::parse_direction_mode(arg.substr(12));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_suite: %s\n", e.what());
        return 2;
      }
    } else if (arg.rfind("--slow-beta=", 0) == 0) {
      opt.slow_beta = std::stod(arg.substr(12));
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      opt.fault_plan = arg.substr(13);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      opt.recover.checkpoint_every = std::stoi(arg.substr(19));
    } else if (arg.rfind("--recover-policy=", 0) == 0) {
      opt.recover.policy = recover::parse_policy(arg.substr(17));
    } else if (arg.rfind("--audit-every=", 0) == 0) {
      opt.recover.audit_every = std::stoi(arg.substr(14));
    } else if (arg == "--list") {
      opt.list_only = true;
    } else {
      std::fprintf(stderr, "bench_suite: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  simmpi::FaultPlan faults;
  if (!opt.fault_plan.empty()) {
    try {
      if (opt.fault_plan.rfind("kill:", 0) == 0) {
        faults.rank_kills = simmpi::parse_kill_specs(opt.fault_plan.substr(5));
      } else if (opt.fault_plan.rfind("flip:", 0) == 0) {
        faults.mem_flips = simmpi::parse_flip_specs(opt.fault_plan.substr(5));
      } else {
        std::ifstream plan_file(opt.fault_plan);
        if (!plan_file) {
          std::fprintf(stderr, "bench_suite: cannot open fault plan %s\n",
                       opt.fault_plan.c_str());
          return 2;
        }
        std::ostringstream buffer;
        buffer << plan_file.rdbuf();
        faults = simmpi::fault_plan_from_json(buffer.str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_suite: %s\n", e.what());
      return 2;
    }
  }

  std::printf("bench_suite: %zu scale(s) x %zu algo(s) x %zu wire(s), "
              "%d cores, %d reps x %d sources%s\n",
              opt.scales.size(), opt.algos.size(), opt.wires.size(),
              opt.cores, opt.reps, opt.sources,
              opt.slow_beta != 1.0 ? "  [SLOWED beta]" : "");

  int written = 0;
  for (int scale : opt.scales) {
    for (const std::string& algo : opt.algos) {
      for (const std::string& wire : opt.wires) {
        BenchSpec spec;
        // Direction-optimized points replace the wire tag with the
        // direction tag (BENCH_rmat14_2d_hybrid_c64.json): run them with
        // a single --wires value or the names collide.
        const bool dirop = opt.direction != bfs::DirectionMode::kTopDown;
        spec.name = "rmat" + std::to_string(scale) + "_" + algo + "_" +
                    (dirop ? bfs::to_string(opt.direction) : wire) + "_c" +
                    std::to_string(opt.cores);
        spec.created_by = "bench_suite";
        spec.scale = scale;
        spec.edge_factor = 16;
        spec.sources = opt.sources;
        spec.repetitions = opt.reps;
        spec.paper_log2_edges = 33.0;  // the scale-29, ef-16 paper runs
        try {
          spec.engine.algorithm = parse_algo(algo);
          spec.engine.cores = opt.cores;
          spec.engine.machine = model::hopper();
          spec.engine.machine.beta_net *= opt.slow_beta;
          spec.engine.wire_format = comm::parse_wire_format(wire);
          spec.engine.direction = opt.direction;
          spec.engine.faults = faults;
          spec.engine.recover = opt.recover;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "%s\n", e.what());
          return 2;
        }

        if (opt.list_only) {
          std::printf("  %s\n", spec.name.c_str());
          continue;
        }
        try {
          const obs::BenchRecord record = run_bench_record(spec);
          const std::string path =
              opt.out_dir + "/" + obs::bench_record_filename(record.name);
          obs::save_bench_record(path, record);
          std::printf("  %s\n", describe_bench_record(record).c_str());
          if (dirop) {
            // Per-direction shipped-bytes ratios from the profile run's
            // dirop.wire.* counters (also stored in the record).
            const auto counter = [&record](const char* key) {
              const auto it = record.counters.find(key);
              return it == record.counters.end() ? 0.0
                                                 : static_cast<double>(
                                                       it->second);
            };
            const double td_raw = counter("dirop.wire.top_down_raw_bytes");
            const double bu_raw = counter("dirop.wire.bottom_up_raw_bytes");
            std::printf(
                "    dirop: %lld top-down / %lld bottom-up level(s), "
                "wire ratio td=%.3f bu=%.3f\n",
                static_cast<long long>(
                    counter("dirop.levels.top_down")),
                static_cast<long long>(
                    counter("dirop.levels.bottom_up")),
                td_raw > 0.0 ? counter("dirop.wire.top_down_bytes") / td_raw
                             : 0.0,
                bu_raw > 0.0
                    ? counter("dirop.wire.bottom_up_bytes") / bu_raw
                    : 0.0);
          }
          ++written;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bench_suite: %s failed: %s\n",
                       spec.name.c_str(), e.what());
          return 1;
        }
      }
    }
  }
  if (!opt.list_only) {
    std::printf("wrote %d BENCH_*.json record(s) to %s\n", written,
                opt.out_dir.c_str());
  }
  return 0;
}
