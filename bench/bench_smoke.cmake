# bench_smoke: end-to-end check of the continuous-benchmark loop.
#   1. The repo root must hold the committed BENCH_*.json baselines
#      (>= 6 records — the bench_suite matrix at scales 14-16).
#   2. A fresh scale-14 suite run must diff clean against them: the
#      simulator is virtual-time deterministic, so identical seeds give
#      identical numbers and any delta is a real code change.
#   3. A deliberately slowed run (--slow-beta=2 doubles the per-byte
#      network cost) must be flagged as a regression — proving the gate
#      actually fires and is not vacuously green.
# Invoked by ctest as
#   cmake -DBENCH_SUITE=<exe> -DBENCH_DIFF=<exe> -DBASELINE_DIR=<repo>
#         -DOUT_DIR=<scratch> -P bench_smoke.cmake
foreach(var BENCH_SUITE BENCH_DIFF BASELINE_DIR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke: -D${var}=... is required")
  endif()
endforeach()

file(GLOB baselines "${BASELINE_DIR}/BENCH_*.json")
list(LENGTH baselines nbaselines)
if(nbaselines LESS 6)
  message(FATAL_ERROR "bench_smoke: expected >= 6 committed BENCH_*.json "
                      "baselines at ${BASELINE_DIR}, found ${nbaselines}. "
                      "Refresh with bench_suite --out-dir=<repo root> "
                      "(see EXPERIMENTS.md)")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/current" "${OUT_DIR}/slowed")

# Fresh scale-14 run of the full {1d,2d} x {raw,auto} slice.
execute_process(
  COMMAND "${BENCH_SUITE}" --scales=14 "--out-dir=${OUT_DIR}/current"
  RESULT_VARIABLE suite_rc
  OUTPUT_VARIABLE suite_out
  ERROR_VARIABLE suite_err)
if(NOT suite_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: bench_suite failed (rc=${suite_rc})\n"
                      "stdout:\n${suite_out}\nstderr:\n${suite_err}")
endif()

# The direction-optimized trajectory is gated too: regenerate the
# scale-14 hybrid point into the same directory so the diff below covers
# BENCH_rmat14_2d_hybrid_c64.json alongside the top-down matrix.
execute_process(
  COMMAND "${BENCH_SUITE}" --scales=14 --algos=2d --wires=auto
          --direction=hybrid "--out-dir=${OUT_DIR}/current"
  RESULT_VARIABLE hybrid_rc
  OUTPUT_VARIABLE hybrid_out
  ERROR_VARIABLE hybrid_err)
if(NOT hybrid_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: hybrid bench_suite run failed "
                      "(rc=${hybrid_rc})\nstdout:\n${hybrid_out}\n"
                      "stderr:\n${hybrid_err}")
endif()

# Identical seeds => the diff against the committed baselines must be
# clean. (The baseline set also covers scales 15-16; the extra names are
# fine, bench_diff only compares common names.)
execute_process(
  COMMAND "${BENCH_DIFF}" "${BASELINE_DIR}" "${OUT_DIR}/current"
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: fresh identical-seed run did not diff "
                      "clean against the committed baselines "
                      "(rc=${diff_rc}). Either a perf change landed without "
                      "refreshing the baselines (see EXPERIMENTS.md) or the "
                      "records are unreadable.\n"
                      "stdout:\n${diff_out}\nstderr:\n${diff_err}")
endif()
if(NOT diff_out MATCHES "0 regression")
  message(FATAL_ERROR "bench_smoke: clean diff reported regressions?\n"
                      "${diff_out}")
endif()

# Doubling beta_net must trip the gate: comm time roughly doubles, far
# outside any noise band.
execute_process(
  COMMAND "${BENCH_SUITE}" --scales=14 --slow-beta=2
          "--out-dir=${OUT_DIR}/slowed"
  RESULT_VARIABLE slow_rc
  OUTPUT_VARIABLE slow_out
  ERROR_VARIABLE slow_err)
if(NOT slow_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: slowed bench_suite failed "
                      "(rc=${slow_rc})\nstderr:\n${slow_err}")
endif()

execute_process(
  COMMAND "${BENCH_DIFF}" "${BASELINE_DIR}" "${OUT_DIR}/slowed"
          "--doctor-out=${OUT_DIR}/doctor"
  RESULT_VARIABLE slow_diff_rc
  OUTPUT_VARIABLE slow_diff_out
  ERROR_VARIABLE slow_diff_err)
if(NOT slow_diff_rc EQUAL 1)
  message(FATAL_ERROR "bench_smoke: 2x beta_net run should exit 1 "
                      "(regressions found), got rc=${slow_diff_rc}\n"
                      "stdout:\n${slow_diff_out}\nstderr:\n${slow_diff_err}")
endif()
if(NOT slow_diff_out MATCHES "REGRESSION")
  message(FATAL_ERROR "bench_smoke: slowed diff exited 1 but printed no "
                      "REGRESSION line\n${slow_diff_out}")
endif()
# The gate trip must hand the developer a diagnosis, not just a red flag:
# bench_diff --doctor-out names the auto-generated DOCTOR_*.json reports.
if(NOT slow_diff_out MATCHES "doctor: wrote .*DOCTOR_")
  message(FATAL_ERROR "bench_smoke: gate tripped but no doctor report was "
                      "generated/referenced\n${slow_diff_out}")
endif()

message(STATUS "bench_smoke passed: ${nbaselines} baselines, identical-seed "
               "rerun clean, 2x beta_net flagged and diagnosed")
