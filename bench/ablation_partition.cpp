// Ablation: 1D partition strategies on natural-order (unshuffled) R-MAT.
// The paper balances load by randomly relabeling vertices (§4.4) and
// lists smarter partitioning as future work (§7). When relabeling is not
// an option (vertex ids carry meaning, or the reordering pass is too
// expensive), non-uniform block boundaries equalizing per-rank *edges*
// recover most of the balance deterministically — at the cost of keeping
// the natural order's locality-driven communication pattern.
#include "harness/harness.hpp"

#include "bfs/bfs1d.hpp"
#include "dist/local_graph1d.hpp"

int main() {
  using namespace dbfs;
  using namespace dbfs::bench;

  const int scale = util::bench_scale(14);
  const int ranks = 64;

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  graph::BuildOptions build;
  build.shuffle = false;  // the regime where partitioning must do the work
  Workload w;
  w.built = graph::build_graph(graph::generate_rmat(params), build);
  w.n = w.built.csr.num_vertices();
  const auto comps = graph::connected_components(w.built.csr);
  w.sources = graph::sample_sources(w.built.csr, comps, bench_sources(2), 5);
  const auto machine =
      scaled_machine(model::franklin(), w.built.directed_edge_count, 33.0);

  print_header("Ablation: 1D partition strategy on natural-order R-MAT",
               "§4.4 shuffle vs §7 smarter partitioning",
               "ours: scale " + std::to_string(scale) + ", " +
                   std::to_string(ranks) + " ranks, no vertex relabeling");

  std::printf("%-16s %16s %16s %16s\n", "partition", "edge imbalance",
              "BFS time (ms)", "GTEPS");
  for (auto mode : {bfs::PartitionMode::kUniform,
                    bfs::PartitionMode::kEdgeBalanced}) {
    bfs::Bfs1DOptions opts;
    opts.ranks = ranks;
    opts.machine = machine;
    opts.partition_mode = mode;
    opts.load_smoothing = 0.0;  // imbalance is the subject
    bfs::Bfs1D bfs{w.built.edges, w.n, opts};

    std::vector<double> loads;
    {
      // Rebuild the same partition's local graph to measure edge loads.
      const auto& part = bfs.partition();
      std::vector<eid_t> per_rank(static_cast<std::size_t>(ranks), 0);
      for (const graph::Edge& e : w.built.edges.edges()) {
        ++per_rank[static_cast<std::size_t>(part.owner(e.u))];
      }
      for (eid_t c : per_rank) loads.push_back(static_cast<double>(c));
    }

    double total = 0;
    for (vid_t source : w.sources) {
      total += bfs.run(source).report.total_seconds;
    }
    total /= static_cast<double>(w.sources.size());
    std::printf("%-16s %16.3f %16.3f %16.3f\n",
                mode == bfs::PartitionMode::kUniform ? "uniform"
                                                     : "edge-balanced",
                util::imbalance(loads), total * 1e3,
                static_cast<double>(w.built.directed_edge_count) / total /
                    1e9);
  }
  std::printf("\nexpected: edge-balanced boundaries remove most of the "
              "natural-order skew (R-MAT packs edges onto low vertex ids) "
              "and recover much of the shuffle's BFS-time benefit\n");
  return 0;
}
