// Quickstart: generate a Graph500-style R-MAT graph, run the 2D hybrid
// BFS on a simulated 1024-core Hopper-like machine, validate the output,
// and print the per-level breakdown.
//
//   ./examples/quickstart [scale] [cores]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/validator.hpp"

int main(int argc, char** argv) {
  using namespace dbfs;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 1024;

  // 1. Generate and prepare the graph (shuffle + symmetrize, §4.4).
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  auto built = graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();
  std::printf("graph: scale %d, n=%lld, m=%lld (directed input %lld)\n",
              scale, static_cast<long long>(n),
              static_cast<long long>(built.csr.num_edges()),
              static_cast<long long>(built.directed_edge_count));

  // 2. Configure the engine: 2D hybrid algorithm on a Hopper-like system.
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDHybrid;
  opts.cores = cores;
  opts.machine = model::hopper();
  core::Engine engine{built.edges, n, opts};
  std::printf("engine: %s on %s, %d cores used (%d ranks x %d threads)\n",
              core::to_string(opts.algorithm), opts.machine.name.c_str(),
              engine.cores_used(),
              engine.cores_used() / engine.options().threads_per_rank,
              engine.options().threads_per_rank);

  // 3. Pick a source in the largest component and run.
  const auto comps = graph::connected_components(engine.csr());
  const auto sources = graph::sample_sources(engine.csr(), comps, 1, 42);
  if (sources.empty()) {
    std::fprintf(stderr, "no usable source found\n");
    return 1;
  }
  const vid_t source = sources[0];
  const auto out = engine.run(source);

  // 4. Validate against the Graph500 rules.
  const auto validation =
      graph::validate_bfs_tree(engine.csr(), source, out.parent);
  std::printf("validation: %s (visited %lld vertices)\n",
              validation.ok ? "PASS" : validation.error.c_str(),
              static_cast<long long>(validation.visited_count));

  // 5. Report.
  std::printf("\n%-6s %12s %14s %14s\n", "level", "frontier", "edges",
              "sim-wall (ms)");
  for (const auto& l : out.report.levels) {
    std::printf("%-6lld %12lld %14lld %14.3f\n",
                static_cast<long long>(l.level),
                static_cast<long long>(l.frontier),
                static_cast<long long>(l.edges_scanned),
                l.wall_seconds * 1e3);
  }
  std::printf("\nsimulated BFS time: %.3f ms (comm %.3f ms mean/rank, "
              "comp %.3f ms mean/rank)\n",
              out.report.total_seconds * 1e3,
              out.report.comm_seconds_mean * 1e3,
              out.report.comp_seconds_mean * 1e3);
  std::printf("TEPS (Graph500 denominator): %.3f GTEPS\n",
              out.report.teps(built.directed_edge_count) / 1e9);
  return validation.ok ? 0 : 1;
}
