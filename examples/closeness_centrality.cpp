// Closeness-centrality estimation with the batched multi-source BFS:
// sample k pivot sources, run one msBFS traversal, and estimate each
// vertex's closeness as k / sum(distances to the pivots) — the standard
// pivot-sampling estimator. Another of the intro's "identify and rank
// important entities" workloads, and a showcase for the batched kernel.
//
//   ./examples/closeness_centrality [scale] [pivots]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bfs/multi_source.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dbfs;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const int pivots = std::min(argc > 2 ? std::atoi(argv[2]) : 32, 64);

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  auto built = graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();
  std::printf("graph: n=%lld, m=%lld; %d pivots\n",
              static_cast<long long>(n),
              static_cast<long long>(built.csr.num_edges()), pivots);

  const auto comps = graph::connected_components(built.csr);
  const auto sources = graph::sample_sources(built.csr, comps, pivots, 99);
  if (sources.empty()) {
    std::fprintf(stderr, "no usable pivots\n");
    return 1;
  }

  util::Timer timer;
  const auto ms = bfs::multi_source_bfs(built.csr, sources);
  const double traversal_ms = timer.elapsed() * 1e3;

  // Estimated closeness: pivots / sum of distances (0 when unreachable
  // from every pivot). Higher = more central.
  struct Scored {
    vid_t v;
    double closeness;
  };
  std::vector<Scored> scored;
  scored.reserve(static_cast<std::size_t>(n));
  const int k = static_cast<int>(sources.size());
  for (vid_t v = 0; v < n; ++v) {
    double sum = 0;
    int reached = 0;
    for (int s = 0; s < k; ++s) {
      const level_t d = ms.level(v, s);
      if (d >= 0) {
        sum += static_cast<double>(d);
        ++reached;
      }
    }
    if (reached == k && sum > 0) {
      scored.push_back({v, static_cast<double>(k) / sum});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.closeness > b.closeness;
            });

  std::printf("msBFS traversal: %.3f ms for all %d pivots (%zu levels)\n",
              traversal_ms, k, ms.report.levels.size());
  std::printf("\ntop 10 most central vertices (estimated closeness):\n");
  std::printf("%-6s %12s %14s %10s\n", "rank", "vertex", "closeness",
              "degree");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, scored.size()); ++i) {
    std::printf("%-6zu %12lld %14.4f %10lld\n", i + 1,
                static_cast<long long>(scored[i].v), scored[i].closeness,
                static_cast<long long>(built.csr.degree(scored[i].v)));
  }
  // Sanity: central vertices in skewed graphs are overwhelmingly hubs.
  if (!scored.empty()) {
    const auto top_degree = built.csr.degree(scored.front().v);
    std::printf("\n(top vertex degree %lld vs graph mean %.1f — centrality "
                "tracks hubs on skewed graphs)\n",
                static_cast<long long>(top_degree),
                static_cast<double>(built.csr.num_edges()) /
                    static_cast<double>(n));
  }
  return 0;
}
