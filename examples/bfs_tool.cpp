// bfs_tool: the full-featured command-line driver for the library —
// choose a graph (generator or file), an algorithm, a machine model, and
// a core count; run validated BFS and print the report. The "swiss army
// knife" a downstream user reaches for first.
//
//   bfs_tool --gen rmat --scale 16 --cores 1024 --algo 2d-hybrid
//     --machine hopper --sources 16
//   bfs_tool --input graph.mtx --algo 1d --cores 256 --triangular
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "bfs/report_json.hpp"
#include "core/teps.hpp"
#include "obs/comm_atlas.hpp"
#include "obs/critical_path.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/options.hpp"

namespace {

using namespace dbfs;

core::Algorithm parse_algorithm(const std::string& name) {
  if (name == "serial") return core::Algorithm::kSerial;
  if (name == "shared") return core::Algorithm::kShared;
  if (name == "1d") return core::Algorithm::kOneDFlat;
  if (name == "1d-hybrid") return core::Algorithm::kOneDHybrid;
  if (name == "2d") return core::Algorithm::kTwoDFlat;
  if (name == "2d-hybrid") return core::Algorithm::kTwoDHybrid;
  if (name == "graph500-ref") return core::Algorithm::kGraph500Ref;
  if (name == "pbgl") return core::Algorithm::kPbglLike;
  throw std::invalid_argument("unknown algorithm: " + name);
}

graph::EdgeList load_or_generate(const util::ArgParser& args) {
  const std::string input = args.get("input", "");
  if (!input.empty()) {
    if (input.size() > 4 && input.substr(input.size() - 4) == ".mtx") {
      return graph::read_matrix_market_file(input);
    }
    if (input.size() > 4 && input.substr(input.size() - 4) == ".bin") {
      return graph::read_edge_list_binary_file(input);
    }
    return graph::read_edge_list_text_file(input);
  }

  const std::string gen = args.get("gen", "rmat");
  const int scale = static_cast<int>(args.get_int("scale", 14));
  const int degree = static_cast<int>(args.get_int("degree", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (gen == "rmat") {
    graph::RmatParams p;
    p.scale = scale;
    p.edge_factor = degree;
    p.seed = seed;
    return graph::generate_rmat(p);
  }
  if (gen == "er") {
    graph::ErdosRenyiParams p;
    p.num_vertices = vid_t{1} << scale;
    p.edge_probability =
        static_cast<double>(degree) / static_cast<double>(p.num_vertices);
    p.seed = seed;
    return graph::generate_erdos_renyi(p);
  }
  if (gen == "webcrawl") {
    graph::WebcrawlParams p;
    p.num_vertices = vid_t{1} << scale;
    p.target_diameter = static_cast<int>(args.get_int("diameter", 140));
    p.seed = seed;
    return graph::generate_webcrawl(p);
  }
  throw std::invalid_argument("unknown generator: " + gen);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("input", "read graph from file (.txt/.bin/.mtx) instead of generating")
      .describe("gen", "generator: rmat | er | webcrawl", "rmat")
      .describe("scale", "log2 of vertex count for generators", "14")
      .describe("degree", "average degree / edge factor", "16")
      .describe("diameter", "webcrawl target diameter", "140")
      .describe("seed", "generator seed", "1")
      .describe("algo",
                "serial | shared | 1d | 1d-hybrid | 2d | 2d-hybrid | "
                "graph500-ref | pbgl",
                "2d-hybrid")
      .describe("cores", "simulated core count", "1024")
      .describe("threads", "threads per rank (0 = machine default)", "0")
      .describe("machine", "franklin | hopper | carver | generic", "hopper")
      .describe("backend", "spmsv back end: auto | spa | heap", "auto")
      .describe("triangular", "store only the upper triangle (2D only)")
      .describe("wire-format",
                "exchange payload encoding: raw | sieve | bitmap | varint "
                "| auto (sender-side visited sieve + compressed blocks)",
                "raw")
      .describe("direction",
                "2D traversal direction: topdown | bottomup | hybrid "
                "(hybrid prices the per-level Beamer switch on the "
                "machine model)",
                "topdown")
      .describe("alpha",
                "bottom-up engage threshold: switch when m_f > m_u/alpha "
                "(<= 0 derives it from the machine model)",
                "14")
      .describe("beta",
                "bottom-up disengage threshold: return when frontier < "
                "n/beta (<= 0 derives it from the machine model)",
                "24")
      .describe("sources", "number of BFS sources (Graph500 style)", "4")
      .describe("no-shuffle", "skip the random vertex relabeling")
      .describe("save", "write the prepared graph to this file and exit")
      .describe("json", "print the first run's full report as JSON")
      .describe("trace-out",
                "write a Chrome trace-event JSON (Perfetto-loadable) of "
                "the first source's run to this path")
      .describe("metrics",
                "collect the metrics registry; prints a summary and is "
                "embedded in --json output")
      .describe("metrics-format",
                "with --metrics, also dump the full registry to stdout "
                "as: openmetrics | json")
      .describe("atlas-out",
                "attach the communication atlas and write its per-rank-pair "
                "traffic matrix + skew analytics as JSON to this path")
      .describe("flight-out",
                "write the always-on flight recorder's event ring as "
                "JSON to this path after the run (written there "
                "automatically if the run dies)")
      .describe("fault-seed", "seed for deterministic fault injection", "0")
      .describe("straggler",
                "compute stragglers as rank:factor[,rank:factor...]")
      .describe("degrade-nic",
                "degraded links as rank:factor[,rank:factor...]")
      .describe("fail-rate",
                "transient collective failure probability (0..1)", "0")
      .describe("corrupt-rate",
                "payload corruption probability per exchange (0..1)", "0")
      .describe("corrupt-mode", "bitflip | drop | dup | mix", "mix")
      .describe("fault-plan",
                "kill:RANK@levelL[,RANK@tSECONDS...] for fail-stop rank "
                "kills, flip:RANK@levelL:target[,...] for at-rest memory "
                "corruption (target: parents | levels | visited | dirop | "
                "checkpoint), or a path to a fault-plan JSON file "
                "(replaces the other fault flags)")
      .describe("checkpoint-every",
                "checkpoint cadence in levels for fail-stop recovery "
                "(0 = source-only replay)",
                "0")
      .describe("audit-every",
                "SDC state-audit cadence in levels (0 = only audit when "
                "a fault plan injects memory flips)",
                "0")
      .describe("recover-policy",
                "what replaces a dead rank: shrink | spare", "shrink")
      .describe("spare-ranks", "hot spares available to the spare policy",
                "1")
      .describe("help", "print this message");

  if (args.get_flag("help")) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  for (const std::string& key : args.unknown_keys()) {
    std::fprintf(stderr, "warning: unknown option --%s\n", key.c_str());
  }

  try {
    graph::BuildOptions build;
    build.shuffle = !args.get_flag("no-shuffle");
    build.shuffle_seed = static_cast<std::uint64_t>(args.get_int("seed", 1)) +
                         0x5eed;
    auto built = graph::build_graph(load_or_generate(args), build);
    const vid_t n = built.csr.num_vertices();
    std::printf("graph: n=%lld m=%lld (directed input %lld)\n",
                static_cast<long long>(n),
                static_cast<long long>(built.csr.num_edges()),
                static_cast<long long>(built.directed_edge_count));

    const std::string save = args.get("save", "");
    if (!save.empty()) {
      if (save.size() > 4 && save.substr(save.size() - 4) == ".bin") {
        graph::write_edge_list_binary_file(save, built.edges);
      } else {
        graph::write_edge_list_text_file(save, built.edges);
      }
      std::printf("wrote prepared graph to %s\n", save.c_str());
      return 0;
    }

    core::EngineOptions opts;
    opts.algorithm = parse_algorithm(args.get("algo", "2d-hybrid"));
    opts.cores = static_cast<int>(args.get_int("cores", 1024));
    opts.threads_per_rank = static_cast<int>(args.get_int("threads", 0));
    opts.machine = model::preset(args.get("machine", "hopper"));
    opts.triangular_storage = args.get_flag("triangular");
    opts.wire_format = comm::parse_wire_format(args.get("wire-format", "raw"));
    opts.direction = bfs::parse_direction_mode(args.get("direction", "topdown"));
    opts.alpha = args.get_double("alpha", 14.0);
    opts.beta = args.get_double("beta", 24.0);
    const std::string backend = args.get("backend", "auto");
    opts.backend = backend == "spa"    ? sparse::SpmsvBackend::kSpa
                   : backend == "heap" ? sparse::SpmsvBackend::kHeap
                                       : sparse::SpmsvBackend::kAuto;

    simmpi::FaultPlan faults;
    faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
    faults.collective_fail_rate = args.get_double("fail-rate", 0.0);
    faults.corrupt_rate = args.get_double("corrupt-rate", 0.0);
    faults.corrupt_kind =
        simmpi::parse_corrupt_kind(args.get("corrupt-mode", "mix"));
    faults.compute_stragglers =
        util::parse_rank_factors(args.get("straggler", ""));
    faults.nic_stragglers =
        util::parse_rank_factors(args.get("degrade-nic", ""));
    const std::string fault_plan = args.get("fault-plan", "");
    if (!fault_plan.empty()) {
      if (fault_plan.rfind("kill:", 0) == 0) {
        faults.rank_kills = simmpi::parse_kill_specs(fault_plan.substr(5));
      } else if (fault_plan.rfind("flip:", 0) == 0) {
        faults.mem_flips = simmpi::parse_flip_specs(fault_plan.substr(5));
      } else {
        std::ifstream plan_file(fault_plan);
        if (!plan_file) {
          throw std::invalid_argument("cannot open fault plan: " +
                                      fault_plan);
        }
        std::ostringstream buffer;
        buffer << plan_file.rdbuf();
        faults = simmpi::fault_plan_from_json(buffer.str());
      }
    }
    opts.faults = faults;
    opts.recover.checkpoint_every =
        static_cast<int>(args.get_int("checkpoint-every", 0));
    opts.recover.policy =
        recover::parse_policy(args.get("recover-policy", "shrink"));
    opts.recover.spare_ranks =
        static_cast<int>(args.get_int("spare-ranks", 1));
    opts.recover.audit_every =
        static_cast<int>(args.get_int("audit-every", 0));

    const std::string trace_out = args.get("trace-out", "");
    opts.trace = !trace_out.empty();
    opts.metrics = args.get_flag("metrics");
    const std::string atlas_out = args.get("atlas-out", "");
    opts.atlas = !atlas_out.empty();

    core::Engine engine{built.edges, n, opts};
    std::printf("engine: %s on %s, %d cores used\n",
                core::to_string(opts.algorithm), opts.machine.name.c_str(),
                engine.cores_used());

    // Black-box dump: on demand via --flight-out, or forced to that path
    // (default FLIGHT_ERROR.json) when the run dies.
    const std::string flight_out = args.get("flight-out", "");
    const auto dump_flight = [&engine](const std::string& path) {
      const obs::FlightRecorder* flight = engine.flight_recorder();
      if (flight == nullptr || path.empty()) return;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write flight dump to %s\n",
                     path.c_str());
        return;
      }
      flight->write_json(out);
      std::printf("wrote flight recorder dump to %s (%zu events held, "
                  "%llu dropped)\n",
                  path.c_str(), flight->size(),
                  static_cast<unsigned long long>(flight->dropped()));
    };

    const auto comps = graph::connected_components(engine.csr());
    const auto sources = graph::sample_sources(
        engine.csr(), comps, static_cast<int>(args.get_int("sources", 4)),
        static_cast<std::uint64_t>(args.get_int("seed", 1)) + 99);
    if (sources.empty()) {
      std::fprintf(stderr, "no usable BFS source in the largest component\n");
      return 1;
    }

    core::BatchResult batch;
    try {
      batch = engine.run_batch(sources, built.directed_edge_count);
    } catch (const simmpi::FaultError&) {
      // An unrecovered fault (fail-stop kill or an SDC audit failure the
      // rollback path could not repair): dump the black box before dying
      // so the last collectives, codec decisions, and levels are on disk.
      dump_flight(flight_out.empty() ? "FLIGHT_ERROR.json" : flight_out);
      throw;
    }
    if (batch.failed > 0) {
      std::fprintf(stderr, "VALIDATION FAILED (%d/%zu sources): %s\n",
                   batch.failed, sources.size(), batch.first_error.c_str());
      if (!batch.first_error_check.empty()) {
        std::fprintf(stderr,
                     "  invariant: %s (sample vertex %lld)\n",
                     batch.first_error_check.c_str(),
                     static_cast<long long>(batch.first_error_vertex));
      }
      dump_flight(flight_out.empty() ? "FLIGHT_ERROR.json" : flight_out);
      return 1;
    }
    const auto teps =
        core::compute_teps(batch.reports, built.directed_edge_count);
    std::printf("validated %d/%zu BFS trees\n", batch.validated,
                sources.size());
    std::printf("mean search time: %.6f s (simulated)\n", teps.mean_seconds);
    std::printf("harmonic mean TEPS: %.4e (%.3f GTEPS)\n",
                teps.harmonic_mean, teps.gteps);
    const auto& r = batch.reports.front();
    std::printf("first run: %zu levels, comm %.1f%% of rank time\n",
                r.levels.size(), 100.0 * r.comm_fraction());
    if (r.faults.enabled) {
      std::printf(
          "faults (first run): %lld transient failures (%lld re-issues, "
          "%.2e s backoff), %lld corrupted payloads repaired in %lld "
          "retries\n",
          static_cast<long long>(r.faults.collective_failures),
          static_cast<long long>(r.faults.collective_retries),
          r.faults.backoff_seconds,
          static_cast<long long>(r.faults.payload_corruptions),
          static_cast<long long>(r.faults.payload_retries));
    }
    if (r.recover.rank_failures > 0) {
      std::printf(
          "recovery (first run): %lld rank failure(s) survived via %s "
          "(%lld level(s) replayed, %.2e s detect+restore, %lld "
          "checkpoint(s))\n",
          static_cast<long long>(r.recover.rank_failures),
          r.recover.policy.c_str(),
          static_cast<long long>(r.recover.replayed_levels),
          r.recover.recovery_seconds,
          static_cast<long long>(r.recover.checkpoints_taken));
    }
    if (r.sdc.enabled) {
      std::printf(
          "sdc (first run): %lld audit(s) (%lld failed, %.2e s), %lld "
          "flip(s) injected, %lld rollback(s) repairing %lld level(s), "
          "%lld checkpoint(s) rejected\n",
          static_cast<long long>(r.sdc.audits),
          static_cast<long long>(r.sdc.audit_failures), r.sdc.audit_seconds,
          static_cast<long long>(r.sdc.flips_injected),
          static_cast<long long>(r.sdc.rollbacks),
          static_cast<long long>(r.sdc.replayed_levels),
          static_cast<long long>(r.sdc.checkpoints_rejected));
    }
    if (engine.tracer() != nullptr || engine.metrics() != nullptr ||
        engine.comm_atlas() != nullptr) {
      // Each run overwrites the observers' recordings, so re-run the
      // first source: the run is deterministic, and afterwards the trace,
      // metrics, and atlas describe exactly the report printed below.
      (void)engine.run(sources.front());
    }
    obs::CriticalPathReport cp;
    bool have_cp = false;
    if (engine.tracer() != nullptr) {
      cp = obs::analyze_critical_path(*engine.tracer(), r.ranks);
      have_cp = true;
      std::printf("%s", obs::format_critical_path_table(cp).c_str());
      std::ofstream trace_file(trace_out);
      if (!trace_file) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     trace_out.c_str());
        return 2;
      }
      engine.tracer()->write_chrome_json(trace_file);
      std::printf(
          "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n",
          trace_out.c_str());
    }
    if (engine.metrics() != nullptr) {
      const auto& wait =
          engine.metrics()->histogram("comm.wait_seconds");
      std::printf(
          "collective waits (first run): %llu samples, mean %.3e s, "
          "p95 %.3e s, p99 %.3e s\n",
          static_cast<unsigned long long>(wait.count()), wait.mean(),
          wait.quantile(0.95), wait.quantile(0.99));
      const std::string metrics_format = args.get("metrics-format", "");
      if (metrics_format == "openmetrics") {
        std::ostringstream exposition;
        engine.metrics()->write_openmetrics(exposition);
        std::fputs(exposition.str().c_str(), stdout);
      } else if (metrics_format == "json") {
        std::printf("%s\n", engine.metrics()->to_json().c_str());
      } else if (!metrics_format.empty()) {
        std::fprintf(stderr, "error: unknown --metrics-format '%s'\n",
                     metrics_format.c_str());
        return 2;
      }
    }
    if (engine.comm_atlas() != nullptr) {
      std::ofstream atlas_file(atlas_out);
      if (!atlas_file) {
        std::fprintf(stderr, "error: cannot write atlas to %s\n",
                     atlas_out.c_str());
        return 2;
      }
      engine.comm_atlas()->write_json(atlas_file);
      const obs::AtlasSummary summary = engine.comm_atlas()->summary();
      std::printf(
          "atlas (first run): %llu bytes (%llu on the network), locality "
          "share %.4f, max pair %d->%d (%.1f%% of traffic), hotspot rank "
          "%d (%.2fx mean), incast rank %d\n",
          static_cast<unsigned long long>(summary.total_bytes),
          static_cast<unsigned long long>(summary.network_bytes),
          summary.locality_share, summary.max_pair_src, summary.max_pair_dst,
          100.0 * summary.max_pair_share, summary.hotspot_rank,
          summary.row_skew, summary.incast_rank);
      std::printf("wrote communication atlas to %s\n", atlas_out.c_str());
    }
    if (args.get_flag("json")) {
      bfs::ReportJsonOptions jopts;
      jopts.metrics = engine.metrics();
      jopts.critical_path = have_cp ? &cp : nullptr;
      std::printf("%s\n", bfs::report_to_json(r, jopts).c_str());
    }
    dump_flight(flight_out);  // on-demand dump of the last run's ring
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), args.usage().c_str());
    return 2;
  }
}
