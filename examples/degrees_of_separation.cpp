// Social-network analysis example (the paper's intro motivation): measure
// "degrees of separation" statistics on a skewed synthetic social graph
// by running BFS from a sample of people and aggregating the hop-distance
// distribution — the kind of multi-source traversal workload BFS
// libraries serve in practice.
//
// Distances are gathered twice: through the distributed engine (one
// simulated cluster traversal per source, as the Graph500 protocol does)
// and through the batched host-side msBFS (all sources in one traversal),
// cross-checking the two and showing the batching win.
//
//   ./examples/degrees_of_separation [scale] [nsamples]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bfs/multi_source.hpp"
#include "bfs/serial.hpp"
#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dbfs;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const int nsamples = argc > 2 ? std::atoi(argv[2]) : 8;

  // A social-like graph: R-MAT's skewed degrees mimic follower counts.
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  auto built = graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();
  std::printf("social graph: %lld people, %lld connections\n",
              static_cast<long long>(n),
              static_cast<long long>(built.csr.num_edges() / 2));

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDHybrid;
  opts.cores = 256;
  opts.machine = model::franklin();
  core::Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  const auto sources =
      graph::sample_sources(engine.csr(), comps, nsamples, 7);

  // Aggregate the hop-distance histogram across sampled sources.
  std::vector<std::int64_t> histogram;
  double sum_distance = 0.0;
  std::int64_t reachable_pairs = 0;
  double sim_seconds = 0.0;
  for (vid_t source : sources) {
    const auto out = engine.run(source);
    sim_seconds += out.report.total_seconds;
    for (vid_t v = 0; v < n; ++v) {
      const level_t d = out.level[v];
      if (d <= 0) continue;
      if (static_cast<std::size_t>(d) >= histogram.size()) {
        histogram.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++histogram[static_cast<std::size_t>(d)];
      sum_distance += static_cast<double>(d);
      ++reachable_pairs;
    }
  }

  // Cross-check with the batched host-side traversal (and time it).
  {
    util::Timer timer;
    const auto ms = bfs::multi_source_bfs(engine.csr(), sources);
    const double batched_ms = timer.elapsed() * 1e3;
    std::int64_t mismatches = 0;
    for (int s = 0; s < static_cast<int>(sources.size()); ++s) {
      const auto check = engine.run(sources[static_cast<std::size_t>(s)]);
      for (vid_t v = 0; v < n; ++v) {
        if (check.level[v] != ms.level(v, s)) ++mismatches;
      }
      break;  // one lane suffices as a spot check
    }
    std::printf("\nbatched msBFS over all %zu sources: %.3f ms host time, "
                "%lld spot-check mismatches\n",
                sources.size(), batched_ms,
                static_cast<long long>(mismatches));
  }

  std::printf("\nhop-distance distribution over %zu sources:\n",
              sources.size());
  std::int64_t cumulative = 0;
  for (std::size_t d = 1; d < histogram.size(); ++d) {
    cumulative += histogram[d];
    std::printf("  %2zu hops: %10lld people (%5.1f%% cumulative)\n", d,
                static_cast<long long>(histogram[d]),
                100.0 * static_cast<double>(cumulative) /
                    static_cast<double>(reachable_pairs));
  }
  std::printf("\naverage degrees of separation: %.3f\n",
              sum_distance / static_cast<double>(reachable_pairs));
  std::printf("diameter observed from samples: %zu hops\n",
              histogram.empty() ? 0 : histogram.size() - 1);
  std::printf("simulated traversal time (%d cores, %s): %.3f ms total\n",
              engine.cores_used(), engine.options().machine.name.c_str(),
              sim_seconds * 1e3);
  return 0;
}
