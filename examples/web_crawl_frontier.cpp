// Web-crawl exploration example: BFS over a high-diameter synthetic web
// graph (the uk-union stand-in), comparing how the 1D and 2D algorithms
// behave when the traversal takes ~140 latency-bound iterations instead
// of R-MAT's <10 — the regime of the paper's Figure 11.
//
//   ./examples/web_crawl_frontier [vertices_log2] [diameter] [cores]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace dbfs;

  const int log_n = argc > 1 ? std::atoi(argv[1]) : 16;
  const int diameter = argc > 2 ? std::atoi(argv[2]) : 140;
  const int cores = argc > 3 ? std::atoi(argv[3]) : 128;

  graph::WebcrawlParams params;
  params.num_vertices = vid_t{1} << log_n;
  params.target_diameter = diameter;
  auto built = graph::build_graph(graph::generate_webcrawl(params));
  const vid_t n = built.csr.num_vertices();
  std::printf("web crawl: %lld pages, %lld links, target diameter %d\n",
              static_cast<long long>(n),
              static_cast<long long>(built.csr.num_edges() / 2), diameter);

  for (core::Algorithm algorithm :
       {core::Algorithm::kOneDFlat, core::Algorithm::kTwoDFlat,
        core::Algorithm::kTwoDHybrid}) {
    core::EngineOptions opts;
    opts.algorithm = algorithm;
    opts.cores = cores;
    opts.machine = model::hopper();
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(0);

    // Frontier shape: high-diameter graphs never build large frontiers,
    // so per-level latency (not bandwidth) dominates.
    vid_t peak_frontier = 0;
    for (const auto& l : out.report.levels) {
      peak_frontier = std::max(peak_frontier, l.frontier);
    }
    std::printf(
        "\n%-12s levels=%3zu  peak frontier=%lld (%.2f%% of pages)\n",
        core::to_string(algorithm), out.report.levels.size(),
        static_cast<long long>(peak_frontier),
        100.0 * static_cast<double>(peak_frontier) / static_cast<double>(n));
    std::printf(
        "             sim time %.2f ms  (comm %.2f ms, comp %.2f ms, "
        "comm fraction %.1f%%)\n",
        out.report.total_seconds * 1e3, out.report.comm_seconds_mean * 1e3,
        out.report.comp_seconds_mean * 1e3,
        100.0 * out.report.comm_fraction());
  }
  std::printf(
      "\nNote how communication stays a small fraction on this graph\n"
      "(cf. paper Fig 11): with ~%d tiny frontiers the run is dominated\n"
      "by per-level overheads, which is why the hybrid variant loses its\n"
      "advantage here.\n",
      diameter);
  return 0;
}
