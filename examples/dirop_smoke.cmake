# dirop_smoke: exercise direction-optimized 2D traversal end to end —
# run bfs_tool with --direction hybrid on a scale-14 R-MAT instance and
# require (a) every BFS tree to validate and (b) at least one level to
# actually run bottom-up (the dirop JSON block reports the tally). Then
# prove the legacy path is untouched: a --direction topdown run must be
# byte-identical to a run that never mentions the flag. Invoked by ctest
# as
#   cmake -DBFS_TOOL=<exe> -P dirop_smoke.cmake
if(NOT DEFINED BFS_TOOL)
  message(FATAL_ERROR "dirop_smoke: -DBFS_TOOL=... is required")
endif()

# (a)+(b): hybrid validates and engages bottom-up on the dense R-MAT.
execute_process(
  COMMAND "${BFS_TOOL}" --gen rmat --scale 14 --cores 64 --algo 2d
          --sources 2 --direction hybrid --json
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE hybrid_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "dirop_smoke: hybrid run failed (rc=${run_rc})\n"
                      "stdout:\n${hybrid_out}\nstderr:\n${run_err}")
endif()
if(NOT hybrid_out MATCHES "validated 2/2 BFS trees")
  message(FATAL_ERROR "dirop_smoke: hybrid run did not validate both "
                      "trees\nstdout:\n${hybrid_out}")
endif()
if(NOT hybrid_out MATCHES "\"bottom_up_levels\":[1-9]")
  message(FATAL_ERROR "dirop_smoke: hybrid run never went bottom-up on "
                      "the scale-14 R-MAT\nstdout:\n${hybrid_out}")
endif()

# Byte-identity: --direction topdown is the default spelled out, so its
# whole output (banner, per-level table, report JSON) must match a run
# without the flag character for character.
execute_process(
  COMMAND "${BFS_TOOL}" --gen rmat --scale 12 --cores 64 --algo 2d
          --sources 2 --direction topdown --json
  RESULT_VARIABLE forced_rc
  OUTPUT_VARIABLE forced_out
  ERROR_VARIABLE forced_err)
execute_process(
  COMMAND "${BFS_TOOL}" --gen rmat --scale 12 --cores 64 --algo 2d
          --sources 2 --json
  RESULT_VARIABLE plain_rc
  OUTPUT_VARIABLE plain_out
  ERROR_VARIABLE plain_err)
if(NOT forced_rc EQUAL 0 OR NOT plain_rc EQUAL 0)
  message(FATAL_ERROR "dirop_smoke: topdown comparison runs failed "
                      "(rc=${forced_rc}/${plain_rc})\n"
                      "stderr:\n${forced_err}\n${plain_err}")
endif()
if(NOT forced_out STREQUAL plain_out)
  message(FATAL_ERROR "dirop_smoke: --direction topdown output differs "
                      "from the flagless run — the legacy path is no "
                      "longer byte-identical\n--- forced ---\n${forced_out}"
                      "\n--- plain ---\n${plain_out}")
endif()
if(forced_out MATCHES "\"dirop\"")
  message(FATAL_ERROR "dirop_smoke: topdown report JSON carries a dirop "
                      "block — it must only appear for bottomup/hybrid\n"
                      "stdout:\n${forced_out}")
endif()

message(STATUS "dirop_smoke passed: hybrid validates with bottom-up "
               "levels; --direction topdown is byte-identical to the "
               "flagless run")
