// trace_lint: validate an observability JSON file emitted by the tools —
// a Chrome trace-event file (`--trace-out`), a flight-recorder dump
// (`--flight-out`, recognized by its top-level "flight" key), or a
// communication-atlas dump (`--atlas-out`, top-level "atlas" key).
//
// Deliberately standalone (no library dependency, own ~150-line JSON
// parser): it is the independent half of the trace-smoke check, so a bug
// in the library's writer cannot hide inside a shared serializer.
//
// Chrome traces: the file parses as JSON, has the traceEvents array,
// every duration event has begin <= end (non-negative dur) and
// non-negative ts, and every category / span name / fault marker is one
// the simulator is documented to emit. Zero-duration spans are flagged
// as warnings (still exit 0) — except "checkpoint", whose begin == end
// is intentional (checkpoints are overlapped, so the span marks an
// unpriced transition).
//
// Flight dumps: the counters are consistent, timestamps are
// non-decreasing (they sample the cluster's max_now), every kind is a
// documented one, and ranks/levels are >= -1.
//
// Atlas dumps: the traffic matrix is square with the declared rank
// count, every cell is non-negative, the matrix total reconciles with
// the embedded summary and with the per-pattern / per-site / per-level
// totals, and the derived shares all lie in [0, 1].
//
//   trace_lint FILE          exits 0 and prints a summary, or exits 1
//                            with the first problem found
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---- Minimal JSON value + recursive-descent parser ----------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool has(const std::string& key) const { return members.count(key) > 0; }
  const JsonValue& at(const std::string& key) const {
    auto it = members.find(key);
    if (it == members.end()) {
      throw std::runtime_error("missing key '" + key + "'");
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      if (consume_literal("true")) {
        v.boolean = true;
      } else if (consume_literal("false")) {
        v.boolean = false;
      } else {
        fail("bad literal");
      }
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          // Keep it simple: the writer only emits \u00xx control bytes.
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---- Trace validation ---------------------------------------------------

// Everything the simulator is documented to emit. A new phase label or
// collective site must be added here (and to the docs) to pass the lint.
const std::set<std::string> kSpanCats = {"compute", "wait", "transfer"};
const std::set<std::string> kSpanNames = {
    // compute phases
    "compute", "1d-scan", "1d-update", "2d-spmsv", "2d-merge", "2d-tri-scan",
    "2d-bottomup", "wire-encode", "wire-decode",
    // collective sites
    "1d-exchange", "1d-chunked", "2d-expand", "2d-fold", "level-sync",
    "checksum", "alltoallv", "allgatherv", "allreduce", "broadcast",
    "gatherv", "transpose",
    // direction-optimized bottom-up exchanges (src/bfs/bfs2d.cpp)
    "2d-bu-frontier", "2d-bu-complete", "2d-bu-result", "dirop-sync",
    // fail-stop recovery (src/recover/)
    "checkpoint", "failure-detect", "recover-restore",
    // silent-data-corruption resilience (src/bfs/audit.*)
    "sdc-audit", "sdc-rollback",
};
const std::set<std::string> kInstantNames = {"collective-failure",
                                             "checksum-retry", "rank-killed"};

int lint(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "trace_lint: top level is not an object\n");
    return 1;
  }
  if (!root.has("traceEvents")) {
    std::fprintf(stderr, "trace_lint: no traceEvents array\n");
    return 1;
  }
  const JsonValue& events = root.at("traceEvents");
  if (events.kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "trace_lint: traceEvents is not an array\n");
    return 1;
  }

  std::size_t spans = 0, metas = 0, instants = 0, zero_spans = 0;
  for (std::size_t i = 0; i < events.items.size(); ++i) {
    const JsonValue& e = events.items[i];
    const auto complain = [&](const std::string& why) {
      std::fprintf(stderr, "trace_lint: event %zu: %s\n", i, why.c_str());
      return 1;
    };
    try {
      if (e.kind != JsonValue::Kind::kObject) return complain("not an object");
      const std::string ph = e.at("ph").text;
      const std::string name = e.at("name").text;
      if (ph == "M") {
        ++metas;
        if (name != "thread_name") {
          return complain("unknown metadata event '" + name + "'");
        }
        continue;
      }
      if (ph == "X") {
        ++spans;
        const double ts = e.at("ts").number;
        const double dur = e.at("dur").number;
        if (ts < 0.0) return complain("negative ts");
        if (dur < 0.0) return complain("span begins after it ends");
        if (dur == 0.0 && name != "checkpoint") {
          // Suspicious but not fatal: a span that opened and closed on
          // the same virtual instant usually means a lost clock update.
          ++zero_spans;
          std::fprintf(stderr,
                       "trace_lint: warning: event %zu: zero-duration "
                       "span '%s' at ts %g\n",
                       i, name.c_str(), ts);
        }
        if (kSpanCats.count(e.at("cat").text) == 0) {
          return complain("unknown span cat '" + e.at("cat").text + "'");
        }
        if (kSpanNames.count(name) == 0) {
          return complain("unknown span/phase tag '" + name + "'");
        }
        if (e.at("tid").number < 0) return complain("negative tid");
        continue;
      }
      if (ph == "i") {
        ++instants;
        if (e.at("cat").text != "fault") {
          return complain("instant with cat != fault");
        }
        if (kInstantNames.count(name) == 0) {
          return complain("unknown fault marker '" + name + "'");
        }
        if (e.at("ts").number < 0.0) return complain("negative ts");
        continue;
      }
      return complain("unknown event phase '" + ph + "'");
    } catch (const std::exception& ex) {
      return complain(ex.what());
    }
  }

  std::printf("trace OK: %zu events (%zu spans, %zu metadata, %zu faults",
              events.items.size(), spans, metas, instants);
  if (zero_spans > 0) {
    std::printf(", %zu zero-duration warnings", zero_spans);
  }
  std::printf(")\n");
  return 0;
}

// ---- Flight-recorder dump validation ------------------------------------

const std::set<std::string> kFlightKinds = {"collective", "wire", "checkpoint",
                                            "recover", "fault", "level",
                                            "dirop", "atlas", "audit"};

int lint_flight(const JsonValue& flight) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "trace_lint: flight: %s\n", why.c_str());
    return 1;
  };
  try {
    const double capacity = flight.at("capacity").number;
    const double recorded = flight.at("recorded").number;
    const double dropped = flight.at("dropped").number;
    const JsonValue& events = flight.at("events");
    if (events.kind != JsonValue::Kind::kArray) {
      return complain("events is not an array");
    }
    if (capacity < 1.0) return complain("capacity < 1");
    if (dropped < 0.0 || recorded < 0.0) {
      return complain("negative recorded/dropped counter");
    }
    // held = recorded - dropped, and the events array holds exactly that.
    if (recorded - dropped != static_cast<double>(events.items.size())) {
      return complain("recorded - dropped != events held (" +
                      std::to_string(events.items.size()) + ")");
    }
    double last_t = -1.0;
    std::map<std::string, std::size_t> by_kind;
    for (std::size_t i = 0; i < events.items.size(); ++i) {
      const JsonValue& e = events.items[i];
      const auto bad = [&](const std::string& why) {
        return complain("event " + std::to_string(i) + ": " + why);
      };
      if (e.kind != JsonValue::Kind::kObject) return bad("not an object");
      const double t = e.at("t").number;
      if (t < 0.0) return bad("negative t");
      if (t < last_t) {
        // Timestamps sample the cluster max_now, which never rewinds;
        // going backwards means events from two different runs got mixed.
        return bad("t goes backwards (" + std::to_string(t) + " after " +
                   std::to_string(last_t) + ")");
      }
      last_t = t;
      const std::string& kind = e.at("kind").text;
      if (kFlightKinds.count(kind) == 0) {
        return bad("unknown kind '" + kind + "'");
      }
      ++by_kind[kind];
      if (e.at("site").text.empty()) return bad("empty site");
      if (e.at("rank").number < -1.0) return bad("rank < -1");
      if (e.at("level").number < -1.0) return bad("level < -1");
      if (e.at("payload").kind != JsonValue::Kind::kObject) {
        return bad("payload is not an object");
      }
    }
    std::printf("flight OK: %zu events held (%g recorded, %g dropped)",
                events.items.size(), recorded, dropped);
    for (const auto& [kind, count] : by_kind) {
      std::printf(", %zu %s", count, kind.c_str());
    }
    std::printf("\n");
    return 0;
  } catch (const std::exception& ex) {
    return complain(ex.what());
  }
}

// ---- Communication-atlas dump validation --------------------------------

int lint_atlas(const JsonValue& atlas) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "trace_lint: atlas: %s\n", why.c_str());
    return 1;
  };
  try {
    const int ranks = static_cast<int>(atlas.at("ranks").number);
    if (ranks < 1) return complain("ranks < 1");
    const JsonValue& grid = atlas.at("grid");
    const int rows = static_cast<int>(grid.at("rows").number);
    const int cols = static_cast<int>(grid.at("cols").number);
    if (rows < 0 || cols < 0) return complain("negative grid dimension");
    // A shrink recovery can leave the live grid smaller than the matrix
    // (old pairs keep their slots), but never larger.
    if (rows > 0 && cols > 0 && rows * cols > ranks) {
      return complain("grid " + std::to_string(rows) + "x" +
                      std::to_string(cols) + " larger than " +
                      std::to_string(ranks) + " ranks");
    }

    const JsonValue& matrix = atlas.at("matrix");
    if (matrix.kind != JsonValue::Kind::kArray ||
        matrix.items.size() != static_cast<std::size_t>(ranks)) {
      return complain("matrix is not a " + std::to_string(ranks) + "x" +
                      std::to_string(ranks) + " array");
    }
    double matrix_total = 0.0, diagonal_total = 0.0;
    for (std::size_t i = 0; i < matrix.items.size(); ++i) {
      const JsonValue& row = matrix.items[i];
      if (row.kind != JsonValue::Kind::kArray ||
          row.items.size() != static_cast<std::size_t>(ranks)) {
        return complain("matrix row " + std::to_string(i) + " is not " +
                        std::to_string(ranks) + " cells");
      }
      for (std::size_t j = 0; j < row.items.size(); ++j) {
        const double cell = row.items[j].number;
        if (cell < 0.0) {
          return complain("negative cell at (" + std::to_string(i) + "," +
                          std::to_string(j) + ")");
        }
        matrix_total += cell;
        if (i == j) diagonal_total += cell;
      }
    }

    const JsonValue& summary = atlas.at("summary");
    const double total = summary.at("total_bytes").number;
    const double self_bytes = summary.at("self_bytes").number;
    const double network = summary.at("network_bytes").number;
    const double subcomm = summary.at("subcomm_bytes").number;
    if (matrix_total != total) {
      return complain("matrix sums to " + std::to_string(matrix_total) +
                      ", summary.total_bytes says " + std::to_string(total));
    }
    if (diagonal_total != self_bytes) {
      return complain("matrix diagonal != summary.self_bytes");
    }
    if (self_bytes + network != total) {
      return complain("self_bytes + network_bytes != total_bytes");
    }
    if (subcomm < 0.0 || subcomm > network) {
      return complain("subcomm_bytes outside [0, network_bytes]");
    }
    for (const char* share :
         {"max_pair_share", "locality_share", "self_share"}) {
      const double v = summary.at(share).number;
      if (v < 0.0 || v > 1.0) {
        return complain(std::string(share) + " outside [0, 1]");
      }
    }
    for (const char* who : {"hotspot_rank", "incast_rank", "max_pair_src",
                            "max_pair_dst"}) {
      const double v = summary.at(who).number;
      if (v < -1.0 || v >= static_cast<double>(ranks)) {
        return complain(std::string(who) + " outside [-1, ranks)");
      }
    }

    // The per-pattern / per-site / per-level cuts are three complete
    // decompositions of the same traffic — each must sum back to the
    // matrix total.
    double pattern_total = 0.0;
    for (const JsonValue& p : atlas.at("patterns").items) {
      const double bytes = p.at("bytes").number;
      const double local = p.at("local_bytes").number;
      if (bytes < 0.0 || local < 0.0) {
        return complain("negative pattern bytes for '" +
                        p.at("pattern").text + "'");
      }
      pattern_total += bytes + local;
    }
    if (pattern_total != total) {
      return complain("pattern totals sum to " +
                      std::to_string(pattern_total) + ", matrix holds " +
                      std::to_string(total));
    }
    double site_total = 0.0;
    for (const JsonValue& s : atlas.at("sites").items) {
      if (s.at("bytes").number < 0.0) {
        return complain("negative site bytes for '" + s.at("site").text +
                        "'");
      }
      site_total += s.at("bytes").number;
    }
    if (site_total != total) return complain("site totals != matrix total");
    double level_total = 0.0;
    for (const JsonValue& l : atlas.at("levels").items) {
      const double bytes = l.at("bytes").number;
      const double net = l.at("network_bytes").number;
      const double sub = l.at("subcomm_bytes").number;
      if (l.at("level").number < -1.0) return complain("level < -1");
      if (bytes < 0.0 || net < 0.0 || net > bytes || sub < 0.0 ||
          sub > net) {
        return complain("inconsistent per-level cut at level " +
                        std::to_string(l.at("level").number));
      }
      level_total += bytes;
    }
    if (level_total != total) return complain("level totals != matrix total");

    std::printf(
        "atlas OK: %dx%d matrix (%dx%d grid), %.0f bytes (%.0f network, "
        "%.0f subcomm-local), %zu patterns, %zu sites, %zu levels\n",
        ranks, ranks, rows, cols, total, network, subcomm,
        atlas.at("patterns").items.size(), atlas.at("sites").items.size(),
        atlas.at("levels").items.size());
    return 0;
  } catch (const std::exception& ex) {
    return complain(ex.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_lint TRACE.json\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    JsonParser parser(buffer.str());
    const JsonValue root = parser.parse();
    if (root.kind == JsonValue::Kind::kObject && root.has("flight")) {
      return lint_flight(root.at("flight"));
    }
    if (root.kind == JsonValue::Kind::kObject && root.has("atlas")) {
      return lint_atlas(root.at("atlas"));
    }
    return lint(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_lint: %s does not parse: %s\n", argv[1],
                 e.what());
    return 1;
  }
}
