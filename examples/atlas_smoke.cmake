# atlas_smoke: run bfs_tool with --atlas-out on the same tiny R-MAT
# instance in 1D and 2D, validate both communication-atlas dumps with the
# standalone trace_lint, and assert the paper's locality contrast: the 2D
# checkerboard confines a strictly larger share of its network bytes to
# row/column subcommunicators than 1D (whose 1xp grid confines exactly
# none). Invoked by ctest as
#   cmake -DBFS_TOOL=<exe> -DTRACE_LINT=<exe> -DOUT_DIR=<dir> -P atlas_smoke.cmake
foreach(var BFS_TOOL TRACE_LINT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "atlas_smoke: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

# One run per algorithm; capture the "atlas (first run): ... locality
# share X.XXXX ..." stdout line for the contrast assertion.
foreach(algo 1d 2d)
  set(atlas_file "${OUT_DIR}/atlas_smoke_${algo}.json")
  file(REMOVE "${atlas_file}")
  execute_process(
    COMMAND "${BFS_TOOL}" --gen rmat --scale 10 --cores 16 --algo ${algo}
            --sources 1 --atlas-out "${atlas_file}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "atlas_smoke: bfs_tool --algo ${algo} failed "
                        "(rc=${run_rc})\nstdout:\n${run_out}\n"
                        "stderr:\n${run_err}")
  endif()
  if(NOT EXISTS "${atlas_file}")
    message(FATAL_ERROR "atlas_smoke: bfs_tool --algo ${algo} exited 0 but "
                        "wrote no atlas dump\nstdout:\n${run_out}")
  endif()

  execute_process(
    COMMAND "${TRACE_LINT}" "${atlas_file}"
    RESULT_VARIABLE lint_rc
    OUTPUT_VARIABLE lint_out
    ERROR_VARIABLE lint_err)
  if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "atlas_smoke: trace_lint rejected ${atlas_file} "
                        "(rc=${lint_rc})\nstdout:\n${lint_out}\n"
                        "stderr:\n${lint_err}")
  endif()
  if(NOT lint_out MATCHES "atlas OK")
    message(FATAL_ERROR "atlas_smoke: dump was not linted as an atlas "
                        "dump\n${lint_out}")
  endif()

  if(NOT run_out MATCHES "locality share ([0-9]+\\.[0-9]+)")
    message(FATAL_ERROR "atlas_smoke: --algo ${algo} printed no locality "
                        "share\nstdout:\n${run_out}")
  endif()
  set(locality_${algo} "${CMAKE_MATCH_1}")
  message(STATUS "atlas_smoke: ${algo} locality share ${CMAKE_MATCH_1}; "
                 "${lint_out}")
endforeach()

if(NOT locality_2d GREATER locality_1d)
  message(FATAL_ERROR "atlas_smoke: expected the 2D decomposition to "
                      "confine more traffic to subcommunicators than 1D, "
                      "got 2d=${locality_2d} vs 1d=${locality_1d}")
endif()
message(STATUS "atlas_smoke passed: 2d locality ${locality_2d} > "
               "1d locality ${locality_1d}")
