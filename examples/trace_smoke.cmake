# trace_smoke: run bfs_tool with --trace-out and --flight-out on a tiny
# R-MAT instance, then validate the emitted Chrome trace and the
# flight-recorder dump with the standalone trace_lint.
# Invoked by ctest as
#   cmake -DBFS_TOOL=<exe> -DTRACE_LINT=<exe> -DOUT_DIR=<dir> -P trace_smoke.cmake
foreach(var BFS_TOOL TRACE_LINT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_smoke: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/trace_smoke.json")
set(flight_file "${OUT_DIR}/flight_smoke.json")
file(REMOVE "${trace_file}" "${flight_file}")

execute_process(
  COMMAND "${BFS_TOOL}" --gen rmat --scale 10 --cores 16 --algo 2d-hybrid
          --sources 1 --metrics --trace-out "${trace_file}"
          --flight-out "${flight_file}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "trace_smoke: bfs_tool failed (rc=${run_rc})\n"
                      "stdout:\n${run_out}\nstderr:\n${run_err}")
endif()
if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "trace_smoke: bfs_tool exited 0 but wrote no trace\n"
                      "stdout:\n${run_out}")
endif()
if(NOT EXISTS "${flight_file}")
  message(FATAL_ERROR "trace_smoke: bfs_tool exited 0 but wrote no flight "
                      "dump\nstdout:\n${run_out}")
endif()

execute_process(
  COMMAND "${TRACE_LINT}" "${trace_file}"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "trace_smoke: trace_lint rejected ${trace_file} "
                      "(rc=${lint_rc})\nstdout:\n${lint_out}\n"
                      "stderr:\n${lint_err}")
endif()

execute_process(
  COMMAND "${TRACE_LINT}" "${flight_file}"
  RESULT_VARIABLE flint_rc
  OUTPUT_VARIABLE flint_out
  ERROR_VARIABLE flint_err)
if(NOT flint_rc EQUAL 0)
  message(FATAL_ERROR "trace_smoke: trace_lint rejected ${flight_file} "
                      "(rc=${flint_rc})\nstdout:\n${flint_out}\n"
                      "stderr:\n${flint_err}")
endif()
if(NOT flint_out MATCHES "flight OK")
  message(FATAL_ERROR "trace_smoke: flight dump was not linted as a flight "
                      "dump\n${flint_out}")
endif()
message(STATUS "trace_smoke passed: ${lint_out}; ${flint_out}")
