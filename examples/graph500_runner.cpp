// Graph500-style benchmark run: generate the official R-MAT instance,
// sample 16 (by default) search keys from the big component, run the
// selected algorithm for every key, validate each BFS tree, and report
// the harmonic-mean TEPS with quartiles — the benchmark's output format.
//
//   ./examples/graph500_runner [scale] [cores] [algorithm] [nsources]
//             [--trace-out=PATH] [--bench-out=PATH] [--flight-out=PATH]
//             [--atlas-out=PATH] [--metrics-format=openmetrics|json]
//             [--wire-format=raw|sieve|bitmap|varint|auto]
//             [--direction=topdown|bottomup|hybrid] [--alpha=A] [--beta=B]
//             [--fault-plan=kill:RANK@levelL[,...] |
//              --fault-plan=flip:RANK@levelL:target[,...] |
//              --fault-plan=FILE.json]
//             [--checkpoint-every=K] [--recover-policy=shrink|spare]
//             [--audit-every=K]
//   algorithm in {1d, 1d-hybrid, 2d, 2d-hybrid}
//
// --bench-out writes the run as a BENCH_*.json-style BenchRecord (single
// repetition over all search keys) so ad-hoc runs can be diffed against
// the committed baselines with bench_diff.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/teps.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "obs/bench_record.hpp"
#include "obs/comm_atlas.hpp"
#include "obs/trace.hpp"

namespace {

dbfs::core::Algorithm parse_algorithm(const char* name) {
  using dbfs::core::Algorithm;
  if (std::strcmp(name, "1d") == 0) return Algorithm::kOneDFlat;
  if (std::strcmp(name, "1d-hybrid") == 0) return Algorithm::kOneDHybrid;
  if (std::strcmp(name, "2d") == 0) return Algorithm::kTwoDFlat;
  if (std::strcmp(name, "2d-hybrid") == 0) return Algorithm::kTwoDHybrid;
  std::fprintf(stderr, "unknown algorithm '%s', using 2d-hybrid\n", name);
  return Algorithm::kTwoDHybrid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfs;

  std::string trace_out;
  std::string bench_out;
  std::string flight_out;
  std::string atlas_out;
  std::string metrics_format;
  std::string fault_plan;
  comm::WireFormat wire_format = comm::WireFormat::kRaw;
  bfs::DirectionMode direction = bfs::DirectionMode::kTopDown;
  double alpha = 14.0;
  double beta = 24.0;
  recover::RecoverOptions recover_opts;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--bench-out=", 12) == 0) {
      bench_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--flight-out=", 13) == 0) {
      flight_out = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--atlas-out=", 12) == 0) {
      atlas_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-format=", 17) == 0) {
      metrics_format = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--wire-format=", 14) == 0) {
      wire_format = comm::parse_wire_format(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--direction=", 12) == 0) {
      direction = bfs::parse_direction_mode(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--alpha=", 8) == 0) {
      alpha = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--beta=", 7) == 0) {
      beta = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--fault-plan=", 13) == 0) {
      fault_plan = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--checkpoint-every=", 19) == 0) {
      recover_opts.checkpoint_every = std::atoi(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--recover-policy=", 17) == 0) {
      recover_opts.policy = recover::parse_policy(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--audit-every=", 14) == 0) {
      recover_opts.audit_every = std::atoi(argv[i] + 14);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int scale = positional.size() > 0 ? std::atoi(positional[0]) : 14;
  const int cores = positional.size() > 1 ? std::atoi(positional[1]) : 1024;
  const core::Algorithm algorithm = positional.size() > 2
                                        ? parse_algorithm(positional[2])
                                        : core::Algorithm::kTwoDHybrid;
  const int nsources =
      positional.size() > 3 ? std::atoi(positional[3]) : 16;

  std::printf("=== Graph500-style run ===\n");
  std::printf("SCALE: %d  edgefactor: 16  cores: %d  algorithm: %s  "
              "wire-format: %s  direction: %s\n",
              scale, cores, core::to_string(algorithm),
              comm::to_string(wire_format), bfs::to_string(direction));

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  auto built = graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();

  core::EngineOptions opts;
  opts.algorithm = algorithm;
  opts.cores = cores;
  opts.machine = model::hopper();
  opts.wire_format = wire_format;
  opts.direction = direction;
  opts.alpha = alpha;
  opts.beta = beta;
  if (!fault_plan.empty()) {
    if (fault_plan.rfind("kill:", 0) == 0) {
      opts.faults.rank_kills = simmpi::parse_kill_specs(fault_plan.substr(5));
    } else if (fault_plan.rfind("flip:", 0) == 0) {
      opts.faults.mem_flips = simmpi::parse_flip_specs(fault_plan.substr(5));
    } else {
      std::ifstream plan_file(fault_plan);
      if (!plan_file) {
        std::fprintf(stderr, "cannot open fault plan %s\n",
                     fault_plan.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << plan_file.rdbuf();
      opts.faults = simmpi::fault_plan_from_json(buffer.str());
    }
  }
  opts.recover = recover_opts;
  opts.trace = !trace_out.empty() || !bench_out.empty();
  opts.metrics = !bench_out.empty() || !metrics_format.empty();
  // The atlas rides along with any bench record (its summary is a
  // schema-additive block) or on explicit request.
  opts.atlas = !atlas_out.empty() || !bench_out.empty();
  core::Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  std::printf("largest component: %lld of %lld vertices\n",
              static_cast<long long>(comps.largest_size),
              static_cast<long long>(n));
  const auto sources =
      graph::sample_sources(engine.csr(), comps, nsources, 2023);

  const auto batch = engine.run_batch(sources, built.directed_edge_count);
  if (batch.failed > 0) {
    std::fprintf(stderr, "VALIDATION FAILED for %d sources: %s\n",
                 batch.failed, batch.first_error.c_str());
    if (!batch.first_error_check.empty()) {
      std::fprintf(stderr, "  invariant: %s (sample vertex %lld)\n",
                   batch.first_error_check.c_str(),
                   static_cast<long long>(batch.first_error_vertex));
    }
    return 1;
  }
  std::printf("validated BFS trees: %d/%zu\n", batch.validated,
              sources.size());
  if (!batch.reports.empty() &&
      batch.reports.front().recover.rank_failures > 0) {
    const bfs::RecoverReport& r = batch.reports.front().recover;
    std::printf(
        "recovery (first key): %lld rank failure(s) survived via %s, "
        "%lld level(s) replayed from %lld checkpoint(s)\n",
        static_cast<long long>(r.rank_failures), r.policy.c_str(),
        static_cast<long long>(r.replayed_levels),
        static_cast<long long>(r.checkpoints_taken));
  }
  if (!batch.reports.empty() && batch.reports.front().sdc.enabled) {
    const bfs::SdcReport& s = batch.reports.front().sdc;
    std::printf(
        "sdc (first key): %lld audit(s), %lld failure(s), %lld flip(s) "
        "injected, %lld rollback(s) repairing %lld level(s)\n",
        static_cast<long long>(s.audits),
        static_cast<long long>(s.audit_failures),
        static_cast<long long>(s.flips_injected),
        static_cast<long long>(s.rollbacks),
        static_cast<long long>(s.replayed_levels));
  }

  const auto teps = core::compute_teps(batch.reports,
                                       built.directed_edge_count);
  std::printf("\nconstruction_time-free results over %zu search keys:\n",
              sources.size());
  std::printf("  min_TEPS:      %.4e\n", teps.samples.min);
  std::printf("  q1_TEPS:       %.4e\n", teps.samples.p25);
  std::printf("  median_TEPS:   %.4e\n", teps.samples.median);
  std::printf("  q3_TEPS:       %.4e\n", teps.samples.p75);
  std::printf("  p95_TEPS:      %.4e\n", teps.samples.p95);
  std::printf("  p99_TEPS:      %.4e\n", teps.samples.p99);
  std::printf("  p999_TEPS:     %.4e\n", teps.samples.p999);
  std::printf("  max_TEPS:      %.4e\n", teps.samples.max);
  std::printf("  harmonic_mean_TEPS: %.4e  (%.3f GTEPS)\n",
              teps.harmonic_mean, teps.gteps);
  std::printf("  mean_search_time:   %.4f s (simulated)\n",
              teps.mean_seconds);

  if (engine.tracer() != nullptr || engine.comm_atlas() != nullptr) {
    // Observers hold the most recent run; re-run the first key so the
    // trace and atlas match a single deterministic search.
    const auto profile = engine.run(sources.front());

    if (!trace_out.empty() && engine.tracer() != nullptr) {
      std::ofstream trace_file(trace_out);
      if (!trace_file) {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
        return 1;
      }
      engine.tracer()->write_chrome_json(trace_file);
      std::printf(
          "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n",
          trace_out.c_str());
    }

    if (!bench_out.empty()) {
      const int threads = engine.options().threads_per_rank;
      const int ranks = engine.cores_used() / (threads > 0 ? threads : 1);
      obs::BenchRecordBuilder builder;
      obs::BenchRecord& record = builder.record();
      record.name = "graph500_s" + std::to_string(scale) + "_" +
                    core::to_string(algorithm) + "_c" +
                    std::to_string(engine.cores_used());
      record.created_by = "graph500_runner";
      record.config.generator = "rmat";
      record.config.scale = scale;
      record.config.edge_factor = 16;
      record.config.graph_seed = params.seed;
      record.config.algorithm = core::to_string(algorithm);
      record.config.machine = opts.machine.name;
      record.config.wire_format = comm::to_string(wire_format);
      record.config.cores = engine.cores_used();
      record.config.ranks = ranks;
      record.config.threads_per_rank = threads;
      record.config.source_seed = 2023;
      record.config.faults_enabled = opts.faults.enabled();
      builder.add_repetition(2023, batch.reports, built.directed_edge_count,
                             batch.validated, batch.failed);
      builder.attach_profile(engine.tracer(), engine.metrics(),
                             profile.report, ranks);
      builder.attach_atlas(engine.comm_atlas());
      obs::save_bench_record(bench_out, builder.finish());
      std::printf("wrote BenchRecord to %s (diff with bench_diff)\n",
                  bench_out.c_str());
    }

    if (!atlas_out.empty() && engine.comm_atlas() != nullptr) {
      std::ofstream atlas_file(atlas_out);
      if (!atlas_file) {
        std::fprintf(stderr, "cannot write atlas to %s\n", atlas_out.c_str());
        return 1;
      }
      engine.comm_atlas()->write_json(atlas_file);
      const obs::AtlasSummary summary = engine.comm_atlas()->summary();
      std::printf(
          "atlas (first key): %llu bytes on the network, locality share "
          "%.4f, hotspot rank %d, incast rank %d\n",
          static_cast<unsigned long long>(summary.network_bytes),
          summary.locality_share, summary.hotspot_rank, summary.incast_rank);
      std::printf("wrote communication atlas to %s\n", atlas_out.c_str());
    }
  }

  if (!metrics_format.empty() && engine.metrics() != nullptr) {
    if (metrics_format == "openmetrics") {
      std::ostringstream exposition;
      engine.metrics()->write_openmetrics(exposition);
      std::fputs(exposition.str().c_str(), stdout);
    } else if (metrics_format == "json") {
      std::printf("%s\n", engine.metrics()->to_json().c_str());
    } else {
      std::fprintf(stderr, "unknown --metrics-format '%s'\n",
                   metrics_format.c_str());
      return 1;
    }
  }

  if (!flight_out.empty() && engine.flight_recorder() != nullptr) {
    std::ofstream flight_file(flight_out);
    if (!flight_file) {
      std::fprintf(stderr, "cannot write flight dump to %s\n",
                   flight_out.c_str());
      return 1;
    }
    engine.flight_recorder()->write_json(flight_file);
    std::printf("wrote flight recorder dump to %s (%zu events held)\n",
                flight_out.c_str(), engine.flight_recorder()->size());
  }
  return 0;
}
