// Graph500-style benchmark run: generate the official R-MAT instance,
// sample 16 (by default) search keys from the big component, run the
// selected algorithm for every key, validate each BFS tree, and report
// the harmonic-mean TEPS with quartiles — the benchmark's output format.
//
//   ./examples/graph500_runner [scale] [cores] [algorithm] [nsources]
//             [--trace-out=PATH] [--wire-format=raw|sieve|bitmap|varint|auto]
//   algorithm in {1d, 1d-hybrid, 2d, 2d-hybrid}
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/teps.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"

namespace {

dbfs::core::Algorithm parse_algorithm(const char* name) {
  using dbfs::core::Algorithm;
  if (std::strcmp(name, "1d") == 0) return Algorithm::kOneDFlat;
  if (std::strcmp(name, "1d-hybrid") == 0) return Algorithm::kOneDHybrid;
  if (std::strcmp(name, "2d") == 0) return Algorithm::kTwoDFlat;
  if (std::strcmp(name, "2d-hybrid") == 0) return Algorithm::kTwoDHybrid;
  std::fprintf(stderr, "unknown algorithm '%s', using 2d-hybrid\n", name);
  return Algorithm::kTwoDHybrid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfs;

  std::string trace_out;
  comm::WireFormat wire_format = comm::WireFormat::kRaw;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--wire-format=", 14) == 0) {
      wire_format = comm::parse_wire_format(argv[i] + 14);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int scale = positional.size() > 0 ? std::atoi(positional[0]) : 14;
  const int cores = positional.size() > 1 ? std::atoi(positional[1]) : 1024;
  const core::Algorithm algorithm = positional.size() > 2
                                        ? parse_algorithm(positional[2])
                                        : core::Algorithm::kTwoDHybrid;
  const int nsources =
      positional.size() > 3 ? std::atoi(positional[3]) : 16;

  std::printf("=== Graph500-style run ===\n");
  std::printf("SCALE: %d  edgefactor: 16  cores: %d  algorithm: %s  "
              "wire-format: %s\n",
              scale, cores, core::to_string(algorithm),
              comm::to_string(wire_format));

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  auto built = graph::build_graph(graph::generate_rmat(params));
  const vid_t n = built.csr.num_vertices();

  core::EngineOptions opts;
  opts.algorithm = algorithm;
  opts.cores = cores;
  opts.machine = model::hopper();
  opts.wire_format = wire_format;
  opts.trace = !trace_out.empty();
  core::Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  std::printf("largest component: %lld of %lld vertices\n",
              static_cast<long long>(comps.largest_size),
              static_cast<long long>(n));
  const auto sources =
      graph::sample_sources(engine.csr(), comps, nsources, 2023);

  const auto batch = engine.run_batch(sources, built.directed_edge_count);
  if (batch.failed > 0) {
    std::fprintf(stderr, "VALIDATION FAILED for %d sources: %s\n",
                 batch.failed, batch.first_error.c_str());
    return 1;
  }
  std::printf("validated BFS trees: %d/%zu\n", batch.validated,
              sources.size());

  const auto teps = core::compute_teps(batch.reports,
                                       built.directed_edge_count);
  std::printf("\nconstruction_time-free results over %zu search keys:\n",
              sources.size());
  std::printf("  min_TEPS:      %.4e\n", teps.samples.min);
  std::printf("  q1_TEPS:       %.4e\n", teps.samples.p25);
  std::printf("  median_TEPS:   %.4e\n", teps.samples.median);
  std::printf("  q3_TEPS:       %.4e\n", teps.samples.p75);
  std::printf("  p95_TEPS:      %.4e\n", teps.samples.p95);
  std::printf("  p99_TEPS:      %.4e\n", teps.samples.p99);
  std::printf("  max_TEPS:      %.4e\n", teps.samples.max);
  std::printf("  harmonic_mean_TEPS: %.4e  (%.3f GTEPS)\n",
              teps.harmonic_mean, teps.gteps);
  std::printf("  mean_search_time:   %.4f s (simulated)\n",
              teps.mean_seconds);

  if (engine.tracer() != nullptr) {
    // Observers hold the most recent run; re-run the first key so the
    // trace matches a single deterministic search.
    (void)engine.run(sources.front());
    std::ofstream trace_file(trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
    engine.tracer()->write_chrome_json(trace_file);
    std::printf(
        "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n",
        trace_out.c_str());
  }
  return 0;
}
