// Pseudo-diameter estimation by the classic double-sweep heuristic: BFS
// from any vertex, jump to the farthest vertex found, repeat until the
// eccentricity stops growing. A textbook "BFS as a subroutine" workload
// (the paper's intro motivates exactly this class of analyses) that
// exercises repeated distributed traversals from data-dependent sources.
//
//   ./examples/pseudo_diameter [graph: rmat|webcrawl] [scale] [cores]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace dbfs;

  const char* family = argc > 1 ? argv[1] : "webcrawl";
  const int scale = argc > 2 ? std::atoi(argv[2]) : 15;
  const int cores = argc > 3 ? std::atoi(argv[3]) : 256;

  graph::EdgeList raw{0};
  if (std::strcmp(family, "rmat") == 0) {
    graph::RmatParams params;
    params.scale = scale;
    params.edge_factor = 16;
    raw = graph::generate_rmat(params);
  } else {
    graph::WebcrawlParams params;
    params.num_vertices = vid_t{1} << scale;
    params.target_diameter = 120;
    raw = graph::generate_webcrawl(params);
  }
  auto built = graph::build_graph(std::move(raw));
  const vid_t n = built.csr.num_vertices();
  std::printf("graph: %s, n=%lld, m=%lld\n", family,
              static_cast<long long>(n),
              static_cast<long long>(built.csr.num_edges()));

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = cores;
  opts.machine = model::hopper();
  core::Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  const auto seeds = graph::sample_sources(engine.csr(), comps, 1, 17);
  if (seeds.empty()) {
    std::fprintf(stderr, "no usable seed vertex\n");
    return 1;
  }

  vid_t current = seeds[0];
  level_t best_ecc = 0;
  double sim_seconds = 0.0;
  std::printf("\n%-6s %12s %14s %16s\n", "sweep", "source", "eccentricity",
              "sim time (ms)");
  for (int sweep = 0; sweep < 8; ++sweep) {
    const auto out = engine.run(current);
    sim_seconds += out.report.total_seconds;

    level_t ecc = 0;
    vid_t farthest = current;
    for (vid_t v = 0; v < n; ++v) {
      if (out.level[v] > ecc) {
        ecc = out.level[v];
        farthest = v;
      }
    }
    std::printf("%-6d %12lld %14lld %16.3f\n", sweep,
                static_cast<long long>(current), static_cast<long long>(ecc),
                out.report.total_seconds * 1e3);
    if (ecc <= best_ecc) break;  // converged: no farther pair found
    best_ecc = ecc;
    current = farthest;
  }
  std::printf("\npseudo-diameter >= %lld (lower bound from double sweeps)\n",
              static_cast<long long>(best_ecc));
  std::printf("total simulated traversal time: %.3f ms on %d cores (%s)\n",
              sim_seconds * 1e3, engine.cores_used(),
              opts.machine.name.c_str());
  return 0;
}
