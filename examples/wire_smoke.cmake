# wire_smoke: exercise the compressed exchange wire formats end to end —
# run bfs_tool with --wire-format auto (sender-side sieve + per-block
# bitmap/varint polyalgorithm) on a small R-MAT instance for both a 1D and
# a 2D algorithm, and require every BFS tree to validate; the raw run must
# validate too (same instance, legacy byte path). Invoked by ctest as
#   cmake -DBFS_TOOL=<exe> -P wire_smoke.cmake
if(NOT DEFINED BFS_TOOL)
  message(FATAL_ERROR "wire_smoke: -DBFS_TOOL=... is required")
endif()

foreach(algo 1d 2d-hybrid)
  foreach(format auto raw)
    execute_process(
      COMMAND "${BFS_TOOL}" --gen rmat --scale 10 --cores 16 --algo ${algo}
              --sources 2 --metrics --wire-format ${format}
      RESULT_VARIABLE run_rc
      OUTPUT_VARIABLE run_out
      ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
      message(FATAL_ERROR "wire_smoke: bfs_tool --algo ${algo} "
                          "--wire-format ${format} failed (rc=${run_rc})\n"
                          "stdout:\n${run_out}\nstderr:\n${run_err}")
    endif()
    if(NOT run_out MATCHES "validated 2/2 BFS trees")
      message(FATAL_ERROR "wire_smoke: --algo ${algo} --wire-format "
                          "${format} ran but did not validate both trees\n"
                          "stdout:\n${run_out}")
    endif()
  endforeach()
endforeach()
message(STATUS "wire_smoke passed: 1d and 2d-hybrid validate under "
               "--wire-format auto and raw")
