#include "sparse/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dbfs::sparse {
namespace {

TEST(SparseVector, EmptyByDefault) {
  SparseVector<vid_t> v{10};
  EXPECT_EQ(v.dim(), 10);
  EXPECT_EQ(v.nnz(), 0);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVector, FromSortedKeepsEntries) {
  auto v = SparseVector<vid_t>::from_sorted(10, {{1, 100}, {5, 500}});
  EXPECT_EQ(v.nnz(), 2);
  EXPECT_EQ(v.entries()[0].index, 1);
  EXPECT_EQ(v.entries()[1].value, 500);
  EXPECT_TRUE(v.invariants_hold());
}

TEST(SparseVector, FromUnsortedSortsAndCombines) {
  auto v = SparseVector<vid_t>::from_unsorted(
      10, {{5, 1}, {1, 2}, {5, 7}, {3, 3}},
      [](vid_t a, vid_t b) { return std::max(a, b); });
  ASSERT_EQ(v.nnz(), 3);
  EXPECT_EQ(v.entries()[0].index, 1);
  EXPECT_EQ(v.entries()[1].index, 3);
  EXPECT_EQ(v.entries()[2].index, 5);
  EXPECT_EQ(v.entries()[2].value, 7);  // max combine
  EXPECT_TRUE(v.invariants_hold());
}

TEST(SparseVector, PushBackMaintainsOrder) {
  SparseVector<vid_t> v{10};
  v.push_back(2, 20);
  v.push_back(7, 70);
  EXPECT_EQ(v.nnz(), 2);
  EXPECT_TRUE(v.invariants_hold());
}

TEST(SparseVector, FindLocatesValues) {
  auto v = SparseVector<vid_t>::from_sorted(10, {{1, 11}, {4, 44}, {9, 99}});
  ASSERT_NE(v.find(4), nullptr);
  EXPECT_EQ(*v.find(4), 44);
  EXPECT_EQ(v.find(5), nullptr);
  EXPECT_EQ(v.find(0), nullptr);
}

TEST(SparseVector, InvariantsCatchDisorder) {
  SparseVector<vid_t> v{10};
  v.entries().push_back({5, 1});
  v.entries().push_back({2, 1});
  EXPECT_FALSE(v.invariants_hold());
}

TEST(SparseVector, InvariantsCatchOutOfRange) {
  SparseVector<vid_t> v{3};
  v.entries().push_back({5, 1});
  EXPECT_FALSE(v.invariants_hold());
}

TEST(SparseVector, FilterInplaceDropsFlagged) {
  auto v = SparseVector<vid_t>::from_sorted(
      10, {{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  // Keep only even indices: the "t ⊙ complement(pi)" pattern.
  filter_inplace(v, [](vid_t i) { return i % 2 == 0; });
  ASSERT_EQ(v.nnz(), 2);
  EXPECT_EQ(v.entries()[0].index, 2);
  EXPECT_EQ(v.entries()[1].index, 4);
}

TEST(SparseVector, ClearResetsContent) {
  auto v = SparseVector<vid_t>::from_sorted(10, {{1, 1}});
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.dim(), 10);
}

}  // namespace
}  // namespace dbfs::sparse
