// Regression-gate tests: the four behaviors the bench-smoke loop depends
// on — identical sets diff clean, a genuine slowdown is flagged, jitter
// inside the records' own noise band is not, and a schema-version bump
// refuses to compare at all (BenchSchemaError at parse time).
#include "obs/bench_diff.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench_record.hpp"

namespace dbfs::obs {
namespace {

BenchRecord make_record(const std::string& name, double teps, double seconds,
                        double comm, double rel_noise) {
  BenchRecord r;
  r.name = name;
  r.config.generator = "rmat";
  r.config.scale = 14;
  r.config.edge_factor = 16;
  r.config.algorithm = "2d-flat";
  r.config.wire_format = "auto";
  r.config.cores = 64;
  r.harmonic_mean_teps = teps;
  r.teps.harmonic_mean = teps;
  r.mean_seconds = seconds;
  r.comm_seconds_mean = comm;
  r.comp_seconds_mean = seconds - comm;
  r.noise.teps_rel_stddev = rel_noise;
  r.noise.seconds_rel_stddev = rel_noise;
  r.noise.comm_rel_stddev = rel_noise;
  return r;
}

TEST(BenchDiff, IdenticalSetsDiffClean) {
  const std::vector<BenchRecord> base{
      make_record("a", 5e8, 1e-3, 3e-4, 0.02),
      make_record("b", 7e8, 8e-4, 1e-4, 0.01)};
  const auto report = diff_bench_records(base, base);
  EXPECT_EQ(report.compared, 2);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.ok());
}

TEST(BenchDiff, GenuineRegressionIsFlagged) {
  const std::vector<BenchRecord> base{make_record("a", 5e8, 1e-3, 3e-4, 0.02)};
  // 20% TEPS drop / 25% slower: far beyond both the 3-sigma band
  // (~8.5% pooled) and the 5% floor.
  const std::vector<BenchRecord> cur{
      make_record("a", 4e8, 1.25e-3, 6e-4, 0.02)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_GT(report.regressions, 0);
  EXPECT_FALSE(report.ok());
  bool teps_flagged = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "harmonic_mean_teps") {
      teps_flagged = d.regression;
      EXPECT_TRUE(d.higher_is_better);
      EXPECT_NEAR(d.rel_delta, -0.2, 1e-12);
    }
  }
  EXPECT_TRUE(teps_flagged);
  EXPECT_NE(format_bench_diff(report).find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, NoiseOnlyJitterIsNotFlagged) {
  // 3% worse, but both records carry 2% repetition noise: the pooled
  // 3-sigma band is ~8.5% and the 5% floor is not crossed either.
  const std::vector<BenchRecord> base{make_record("a", 5e8, 1e-3, 3e-4, 0.02)};
  const std::vector<BenchRecord> cur{
      make_record("a", 5e8 * 0.97, 1e-3 * 1.03, 3e-4 * 1.03, 0.02)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_TRUE(report.ok());
  for (const auto& d : report.deltas) {
    EXPECT_FALSE(d.regression) << d.metric;
    EXPECT_GT(d.noise_band, 0.05);
  }
}

TEST(BenchDiff, QuietConfigIsHeldToItsOwnBand) {
  // Same 3% delta, but the records are nearly noise-free: now it exceeds
  // the k-sigma band and is flagged even though it is under the 5% floor.
  const std::vector<BenchRecord> base{
      make_record("a", 5e8, 1e-3, 3e-4, 0.001)};
  const std::vector<BenchRecord> cur{
      make_record("a", 5e8 * 0.97, 1e-3 * 1.03, 3e-4, 0.001)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_GT(report.regressions, 0);
}

TEST(BenchDiff, ImprovementsNeverFail) {
  const std::vector<BenchRecord> base{make_record("a", 5e8, 1e-3, 3e-4, 0.02)};
  const std::vector<BenchRecord> cur{
      make_record("a", 6.5e8, 0.77e-3, 2e-4, 0.02)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_GT(report.improvements, 0);
  EXPECT_TRUE(report.ok());
}

TEST(BenchDiff, TinyDeltasIgnoredEntirely) {
  // Below min_rel (0.1%): not a regression, not an improvement — immune
  // to float-formatting jitter.
  const std::vector<BenchRecord> base{
      make_record("a", 5e8, 1e-3, 3e-4, 0.0)};
  const std::vector<BenchRecord> cur{
      make_record("a", 5e8 * (1 - 5e-4), 1e-3 * (1 + 5e-4), 3e-4, 0.0)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
}

TEST(BenchDiff, ConfigDriftUnderSameNameIsError) {
  const std::vector<BenchRecord> base{make_record("a", 5e8, 1e-3, 3e-4, 0.02)};
  std::vector<BenchRecord> cur{make_record("a", 5e8, 1e-3, 3e-4, 0.02)};
  cur[0].config.scale = 16;  // renamed/re-purposed point
  const auto report = diff_bench_records(base, cur);
  EXPECT_FALSE(report.errors.empty());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.compared, 0);
}

TEST(BenchDiff, UnmatchedNamesAreListedNotFatal) {
  const std::vector<BenchRecord> base{
      make_record("a", 5e8, 1e-3, 3e-4, 0.02),
      make_record("old", 1e8, 1e-3, 3e-4, 0.02)};
  const std::vector<BenchRecord> cur{
      make_record("a", 5e8, 1e-3, 3e-4, 0.02),
      make_record("new", 2e8, 1e-3, 3e-4, 0.02)};
  const auto report = diff_bench_records(base, cur);
  EXPECT_EQ(report.compared, 1);
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], "old");
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "new");
  EXPECT_TRUE(report.ok());
}

TEST(BenchDiff, SchemaVersionMismatchRefusesAtParse) {
  // The gate never sees a mismatched record as data: parsing throws
  // BenchSchemaError (bench_diff's CLI maps this to exit code 2).
  BenchRecord r = make_record("a", 5e8, 1e-3, 3e-4, 0.02);
  r.schema_version = kBenchRecordSchemaVersion + 1;
  EXPECT_THROW(parse_bench_record(bench_record_to_json(r)), BenchSchemaError);
}

}  // namespace
}  // namespace dbfs::obs
