#include "sparse/semirings.hpp"

#include <gtest/gtest.h>

#include "sparse/spmsv.hpp"

namespace dbfs::sparse {
namespace {

DcscMatrix tiny() {
  // columns: 0 -> rows {1,2}; 2 -> rows {1,3}.
  return DcscMatrix::from_triples(4, 4, {{1, 0}, {2, 0}, {1, 2}, {3, 2}});
}

TEST(Semirings, BfsParentSelectsMaxGlobalColumn) {
  const auto a = tiny();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 0}, {2, 2}});
  Spa<vid_t> spa{4};
  const BfsParentSemiring sr{100};  // block starts at global column 100
  const auto y = spmsv<vid_t>(a, x, sr.multiply(), sr.combine(),
                              SpmsvBackend::kAuto, &spa);
  EXPECT_EQ(*y.find(1), 102);  // columns 0 and 2 hit row 1; max wins
  EXPECT_EQ(*y.find(2), 100);
  EXPECT_EQ(*y.find(3), 102);
}

TEST(Semirings, CountingCountsContributions) {
  const auto a = tiny();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 1}, {2, 1}});
  Spa<vid_t> spa{4};
  const auto y = spmsv<vid_t>(a, x, CountingSemiring::multiply(),
                              CountingSemiring::combine(),
                              SpmsvBackend::kAuto, &spa);
  EXPECT_EQ(*y.find(1), 2);
  EXPECT_EQ(*y.find(2), 1);
  EXPECT_EQ(*y.find(3), 1);
}

TEST(Semirings, MinLabelPropagatesMinimum) {
  const auto a = tiny();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 50}, {2, 7}});
  Spa<vid_t> spa{4};
  const auto y = spmsv<vid_t>(a, x, MinLabelSemiring::multiply(),
                              MinLabelSemiring::combine(),
                              SpmsvBackend::kAuto, &spa);
  EXPECT_EQ(*y.find(1), 7);   // min(50, 7)
  EXPECT_EQ(*y.find(2), 50);
  EXPECT_EQ(*y.find(3), 7);
}

TEST(Semirings, BackendsAgreeUnderEverySemiring) {
  const auto a = tiny();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 3}, {2, 9}});
  Spa<vid_t> spa{4};
  const BfsParentSemiring sr{0};
  const auto spa_y = spmsv<vid_t>(a, x, sr.multiply(), sr.combine(),
                                  SpmsvBackend::kSpa, &spa);
  const auto heap_y = spmsv<vid_t>(a, x, sr.multiply(), sr.combine(),
                                   SpmsvBackend::kHeap, nullptr);
  EXPECT_EQ(spa_y.entries(), heap_y.entries());
  const auto spa_c = spmsv<vid_t>(a, x, CountingSemiring::multiply(),
                                  CountingSemiring::combine(),
                                  SpmsvBackend::kSpa, &spa);
  const auto heap_c = spmsv<vid_t>(a, x, CountingSemiring::multiply(),
                                   CountingSemiring::combine(),
                                   SpmsvBackend::kHeap, nullptr);
  EXPECT_EQ(spa_c.entries(), heap_c.entries());
}

}  // namespace
}  // namespace dbfs::sparse
