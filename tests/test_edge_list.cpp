#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

namespace dbfs::graph {
namespace {

TEST(EdgeList, StartsEmpty) {
  EdgeList e{10};
  EXPECT_EQ(e.num_vertices(), 10);
  EXPECT_EQ(e.num_edges(), 0);
}

TEST(EdgeList, AddAccumulates) {
  EdgeList e{4};
  e.add(0, 1);
  e.add(1, 2);
  EXPECT_EQ(e.num_edges(), 2);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 2}));
}

TEST(EdgeList, ConstructorRejectsOutOfRange) {
  EXPECT_THROW(EdgeList(3, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(EdgeList(3, {{-1, 0}}), std::invalid_argument);
}

TEST(EdgeList, SymmetrizeAddsReverses) {
  EdgeList e{4};
  e.add(0, 1);
  e.add(2, 3);
  e.symmetrize();
  EXPECT_EQ(e.num_edges(), 4);
  EXPECT_EQ(e.edges()[2], (Edge{1, 0}));
  EXPECT_EQ(e.edges()[3], (Edge{3, 2}));
}

TEST(EdgeList, SymmetrizeSkipsSelfLoopMirrors) {
  EdgeList e{4};
  e.add(1, 1);
  e.add(0, 2);
  e.symmetrize();
  EXPECT_EQ(e.num_edges(), 3);  // only (0,2) mirrored
}

TEST(EdgeList, SortAndDedupRemovesDuplicatesAndLoops) {
  EdgeList e{4};
  e.add(1, 2);
  e.add(0, 1);
  e.add(1, 2);
  e.add(3, 3);
  const eid_t removed = e.sort_and_dedup();
  EXPECT_EQ(removed, 2);
  ASSERT_EQ(e.num_edges(), 2);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 2}));
}

TEST(EdgeList, SortAndDedupCanKeepLoops) {
  EdgeList e{4};
  e.add(3, 3);
  e.add(3, 3);
  const eid_t removed = e.sort_and_dedup(/*drop_self_loops=*/false);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(e.num_edges(), 1);
  EXPECT_EQ(e.edges()[0], (Edge{3, 3}));
}

TEST(EdgeList, EndpointsInRange) {
  EdgeList e{4};
  e.add(0, 3);
  EXPECT_TRUE(e.endpoints_in_range());
  e.edges().push_back(Edge{0, 4});
  EXPECT_FALSE(e.endpoints_in_range());
}

}  // namespace
}  // namespace dbfs::graph
