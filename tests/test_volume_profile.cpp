#include "core/volume_profile.hpp"

#include <gtest/gtest.h>

#include "bfs/bfs1d.hpp"
#include "bfs/bfs2d.hpp"
#include "test_helpers.hpp"

namespace dbfs::core {
namespace {

TEST(VolumeProfile, MeasuresPathGraph) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(10));
  const auto profile = VolumeProfile::measure(g, 0);
  ASSERT_EQ(profile.levels.size(), 10u);
  EXPECT_EQ(profile.levels[0].frontier, 1);
  EXPECT_EQ(profile.levels[0].edges_scanned, 1);  // only 0->1
  EXPECT_EQ(profile.levels[5].edges_scanned, 2);  // 5->4 and 5->6
  EXPECT_EQ(profile.levels[5].touched, 2);
  EXPECT_EQ(profile.levels[5].newly_visited, 1);
}

TEST(VolumeProfile, TotalsMatchGraph) {
  const auto built = test::rmat_graph(10);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  eid_t scanned = 0;
  vid_t visited = 1;  // source
  for (const auto& l : profile.levels) {
    scanned += l.edges_scanned;
    visited += l.newly_visited;
    EXPECT_LE(l.newly_visited, l.touched);
    EXPECT_LE(l.touched, l.edges_scanned);
  }
  // Every adjacency of the reachable component is scanned exactly once.
  EXPECT_LE(scanned, built.csr.num_edges());
  EXPECT_GT(scanned, 0);
  EXPECT_LE(visited, built.csr.num_vertices());
}

TEST(Price1D, TracksFunctionalSimulatorShape) {
  // The pricing path and the functional simulator must agree on the
  // ordering and rough magnitude of configurations, since the benches mix
  // them across core counts.
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  const auto profile = VolumeProfile::measure(built.csr, source);
  const auto machine = model::franklin();

  for (int cores : {16, 64}) {
    bfs::Bfs1DOptions fopts;
    fopts.ranks = cores;
    fopts.machine = machine;
    bfs::Bfs1D functional{built.edges, n, fopts};
    const double functional_t = functional.run(source).report.total_seconds;

    Price1DOptions popts;
    popts.cores = cores;
    const auto priced = price_1d(profile, machine, popts);
    EXPECT_GT(priced.total_seconds, functional_t * 0.3) << cores;
    EXPECT_LT(priced.total_seconds, functional_t * 3.0) << cores;
  }
}

TEST(Price2D, TracksFunctionalSimulatorShape) {
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  const auto profile = VolumeProfile::measure(built.csr, source);
  const auto machine = model::franklin();

  for (int cores : {16, 64}) {
    bfs::Bfs2DOptions fopts;
    fopts.cores = cores;
    fopts.machine = machine;
    bfs::Bfs2D functional{built.edges, n, fopts};
    const double functional_t = functional.run(source).report.total_seconds;

    Price2DOptions popts;
    popts.cores = cores;
    const auto priced = price_2d(profile, machine, popts);
    EXPECT_GT(priced.total_seconds, functional_t * 0.3) << cores;
    EXPECT_LT(priced.total_seconds, functional_t * 3.0) << cores;
  }
}

TEST(Price1D, CompShrinksCommGrowsWithCores) {
  const auto built = test::rmat_graph(10, 16);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  const auto machine = model::franklin();
  Price1DOptions small;
  small.cores = 64;
  Price1DOptions large;
  large.cores = 4096;
  const auto a = price_1d(profile, machine, small);
  const auto b = price_1d(profile, machine, large);
  EXPECT_LT(b.comp_seconds, a.comp_seconds);
  EXPECT_GT(b.comm_seconds / b.total_seconds,
            a.comm_seconds / a.total_seconds);
}

TEST(Price2D, CollectiveGroupsAreSqrtP) {
  // 2D comm should scale better than 1D comm at high core counts: the
  // central claim of the paper.
  const auto built = test::rmat_graph(10, 16);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  const auto machine = model::hopper();
  Price1DOptions p1;
  p1.cores = 16384;
  Price2DOptions p2;
  p2.cores = 16384;
  const auto one_d = price_1d(profile, machine, p1);
  const auto two_d = price_2d(profile, machine, p2);
  EXPECT_LT(two_d.comm_seconds, one_d.comm_seconds);
}

TEST(Price1D, HybridCutsCommunication) {
  const auto built = test::rmat_graph(10, 16);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  const auto machine = model::hopper();
  Price1DOptions flat;
  flat.cores = 8192;
  Price1DOptions hybrid = flat;
  hybrid.threads_per_rank = 6;
  const auto f = price_1d(profile, machine, flat);
  const auto h = price_1d(profile, machine, hybrid);
  EXPECT_LT(h.comm_seconds, f.comm_seconds);
}

TEST(Price1D, ChunkedModeCostsMore) {
  const auto built = test::rmat_graph(10, 16);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  const auto machine = model::franklin();
  Price1DOptions agg;
  agg.cores = 1024;
  Price1DOptions chunked = agg;
  chunked.comm_mode = bfs::CommMode::kChunkedSends;
  chunked.chunk_bytes = 4096;
  EXPECT_GT(price_1d(profile, machine, chunked).total_seconds,
            price_1d(profile, machine, agg).total_seconds);
}

TEST(Price2D, CoresUsedRoundsToSquare) {
  const auto built = test::rmat_graph(8);
  const auto profile =
      VolumeProfile::measure(built.csr, test::hub_source(built.csr));
  Price2DOptions opts;
  opts.cores = 5040;
  const auto priced = price_2d(profile, model::hopper(), opts);
  EXPECT_EQ(priced.cores_used, 70 * 70);
}

}  // namespace
}  // namespace dbfs::core
