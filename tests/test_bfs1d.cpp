#include "bfs/bfs1d.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

Bfs1DOptions opts_with(int ranks, int threads = 1) {
  Bfs1DOptions o;
  o.ranks = ranks;
  o.threads_per_rank = threads;
  o.machine = model::franklin();
  return o;
}

class Bfs1DRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(Bfs1DRankSweep, MatchesSerialOnRmat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs1D bfs{built.edges, n, opts_with(GetParam())};
  const auto out = bfs.run(0);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(out.level, serial.level);
}

TEST_P(Bfs1DRankSweep, PassesValidation) {
  const auto built = test::rmat_graph(10, 8, 7);
  const vid_t n = built.csr.num_vertices();
  Bfs1D bfs{built.edges, n, opts_with(GetParam())};
  const auto out = bfs.run(3);
  const auto v = graph::validate_bfs_tree(
      built.csr, 3, out.parent, graph::reference_levels(built.csr, 3));
  EXPECT_TRUE(v.ok) << "ranks=" << GetParam() << ": " << v.error;
}

INSTANTIATE_TEST_SUITE_P(Ranks, Bfs1DRankSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(Bfs1D, PathGraphManyLevels) {
  const auto edges = test::path_edges(64);
  Bfs1D bfs{edges, 64, opts_with(4)};
  const auto out = bfs.run(0);
  for (vid_t v = 0; v < 64; ++v) EXPECT_EQ(out.level[v], v);
  EXPECT_EQ(out.report.levels.size(), 64u);
}

TEST(Bfs1D, DisconnectedComponentUnreached) {
  const auto edges = test::two_triangles();
  Bfs1D bfs{edges, 7, opts_with(3)};
  const auto out = bfs.run(0);
  EXPECT_EQ(out.level[3], kUnreached);
  EXPECT_EQ(out.parent[6], kNoVertex);
  EXPECT_EQ(out.level[1], 1);
}

TEST(Bfs1D, SourceOnNonZeroRank) {
  const auto edges = test::path_edges(40);
  Bfs1D bfs{edges, 40, opts_with(4)};
  const auto out = bfs.run(35);  // owned by the last rank
  EXPECT_EQ(out.level[35], 0);
  EXPECT_EQ(out.level[0], 35);
  EXPECT_EQ(out.parent[35], 35);
}

TEST(Bfs1D, HybridMatchesFlat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs1D flat{built.edges, n, opts_with(8, 1)};
  Bfs1D hybrid{built.edges, n, opts_with(2, 4)};
  EXPECT_EQ(flat.run(0).level, hybrid.run(0).level);
}

TEST(Bfs1D, HybridReducesCommTime) {
  // Same core count, fewer ranks: smaller collective groups => the hybrid
  // code's communication advantage (paper Fig 6/8).
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  Bfs1D flat{built.edges, n, opts_with(64, 1)};
  Bfs1D hybrid{built.edges, n, opts_with(16, 4)};
  const vid_t source = test::hub_source(built.csr);
  const auto flat_out = flat.run(source);
  const auto hybrid_out = hybrid.run(source);
  EXPECT_LT(hybrid_out.report.comm_seconds_mean,
            flat_out.report.comm_seconds_mean);
}

TEST(Bfs1D, ReportAccountingConsistent) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs1D bfs{built.edges, n, opts_with(8)};
  const auto out = bfs.run(test::hub_source(built.csr));
  const auto& r = out.report;
  EXPECT_EQ(r.ranks, 8);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.comm_seconds_mean, 0.0);
  EXPECT_GT(r.comp_seconds_mean, 0.0);
  EXPECT_GE(r.comm_seconds_max, r.comm_seconds_mean);
  EXPECT_EQ(r.per_rank_comm.size(), 8u);
  // Simulated wall clock bounds any single rank's busy+wait time.
  for (int rank = 0; rank < 8; ++rank) {
    EXPECT_LE(r.per_rank_comm[rank] + r.per_rank_comp[rank],
              r.total_seconds + 1e-12);
  }
  // Per-level walls sum to the total.
  double level_sum = 0.0;
  for (const auto& l : r.levels) level_sum += l.wall_seconds;
  EXPECT_NEAR(level_sum, r.total_seconds, 1e-9);
}

TEST(Bfs1D, EdgesScannedIsTwiceUndirectedEdges) {
  // Every adjacency of the connected component is scanned exactly once.
  const auto edges = test::path_edges(32);
  Bfs1D bfs{edges, 32, opts_with(4)};
  const auto out = bfs.run(0);
  EXPECT_EQ(out.report.edges_traversed, 2 * 31);
}

TEST(Bfs1D, MoreRanksShiftTimeTowardComm) {
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  Bfs1D small{built.edges, n, opts_with(4)};
  Bfs1D large{built.edges, n, opts_with(64)};
  const vid_t source = test::hub_source(built.csr);
  const double frac_small = small.run(source).report.comm_fraction();
  const double frac_large = large.run(source).report.comm_fraction();
  EXPECT_GT(frac_large, frac_small);
}

TEST(Bfs1D, ChunkedModeSameAnswerHigherCost) {
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  auto chunked_opts = opts_with(8);
  chunked_opts.comm_mode = CommMode::kChunkedSends;
  chunked_opts.chunk_bytes = 1024;
  Bfs1D aggregated{built.edges, n, opts_with(8)};
  Bfs1D chunked{built.edges, n, chunked_opts};
  const vid_t source = test::hub_source(built.csr);
  const auto agg_out = aggregated.run(source);
  const auto chk_out = chunked.run(source);
  EXPECT_EQ(agg_out.level, chk_out.level);
  EXPECT_GT(chk_out.report.comm_seconds_mean,
            agg_out.report.comm_seconds_mean);
}

TEST(Bfs1D, ChunkedPricingSurvivesMoreRanksThanMessages) {
  // Regression: the chunked/per-edge pricing used to average messages and
  // bytes over the ranks in integer arithmetic. On a high-diameter level
  // a rank ships fewer messages than there are ranks, so both means
  // truncated to zero and the entire exchange was priced as free. A path
  // graph on many ranks ships exactly one 16-byte candidate per level;
  // with alpha_net zeroed the only surviving term is the (truncatable)
  // byte term, which must still come out positive.
  const auto edges = test::path_edges(64);
  auto opts = opts_with(48);
  opts.comm_mode = CommMode::kChunkedSends;
  opts.machine.alpha_net = 0.0;
  Bfs1D bfs{edges, 64, opts};
  const auto out = bfs.run(0);
  EXPECT_GT(out.report.alltoall_seconds, 0.0);
}

TEST(Bfs1D, PerEdgeSendsCostMoreThanChunked) {
  // Regression: per-edge mode used to fall through to the chunked
  // max(sizeof(Candidate), chunk_bytes) coalescing, so with the default
  // 16 KiB chunks it priced one message per 16 KiB instead of one per
  // candidate and was indistinguishable from the chunked baseline.
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  auto chunked_opts = opts_with(8);
  chunked_opts.comm_mode = CommMode::kChunkedSends;
  auto per_edge_opts = opts_with(8);
  per_edge_opts.comm_mode = CommMode::kPerEdgeSends;
  Bfs1D chunked{built.edges, n, chunked_opts};
  Bfs1D per_edge{built.edges, n, per_edge_opts};
  const vid_t source = test::hub_source(built.csr);
  const auto chk_out = chunked.run(source);
  const auto pe_out = per_edge.run(source);
  EXPECT_EQ(chk_out.level, pe_out.level);
  EXPECT_GT(pe_out.report.alltoall_seconds,
            chk_out.report.alltoall_seconds);
}

TEST(Bfs1D, RepeatedRunsAreIndependent) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  Bfs1D bfs{built.edges, n, opts_with(4)};
  const auto first = bfs.run(0);
  const auto second = bfs.run(0);
  EXPECT_EQ(first.level, second.level);
  EXPECT_NEAR(first.report.total_seconds, second.report.total_seconds,
              1e-12);
}

TEST(Bfs1D, RejectsBadInput) {
  const auto edges = test::path_edges(4);
  Bfs1D bfs{edges, 4, opts_with(2)};
  EXPECT_THROW(bfs.run(-1), std::out_of_range);
  EXPECT_THROW(bfs.run(4), std::out_of_range);
}

}  // namespace
}  // namespace dbfs::bfs
