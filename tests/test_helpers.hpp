// Shared fixtures for the BFS correctness tests: small structured graphs
// with known answers, plus generated graphs validated against the serial
// reference.
#pragma once

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"

namespace dbfs::test {

/// Undirected path 0-1-2-...-(n-1).
inline graph::EdgeList path_edges(vid_t n) {
  graph::EdgeList e{n};
  for (vid_t v = 0; v + 1 < n; ++v) e.add(v, v + 1);
  e.symmetrize();
  return e;
}

/// Undirected star: center 0 with n-1 leaves.
inline graph::EdgeList star_edges(vid_t n) {
  graph::EdgeList e{n};
  for (vid_t v = 1; v < n; ++v) e.add(0, v);
  e.symmetrize();
  return e;
}

/// Two disconnected triangles: {0,1,2} and {3,4,5}, plus isolated 6.
inline graph::EdgeList two_triangles() {
  graph::EdgeList e{7};
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(3, 4);
  e.add(4, 5);
  e.add(5, 3);
  e.symmetrize();
  return e;
}

/// A guaranteed-useful BFS source: the maximum-degree vertex (a hub,
/// inside the giant component for any connected-enough instance). Tests
/// must not use vertex 0 on shuffled graphs — it may be isolated.
inline vid_t hub_source(const graph::CsrGraph& g) {
  vid_t best = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  return best;
}

/// Symmetrized, shuffled R-MAT test instance.
inline graph::BuiltGraph rmat_graph(int scale, int edge_factor = 8,
                                    std::uint64_t seed = 1) {
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  graph::BuildOptions build;
  build.shuffle_seed = seed + 1000;
  return graph::build_graph(graph::generate_rmat(params), build);
}

}  // namespace dbfs::test
