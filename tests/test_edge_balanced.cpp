// Tests for boundary-mode BlockPartition and the edge-balanced 1D
// partitioner (the deterministic alternative to the §4.4 shuffle).
#include <gtest/gtest.h>

#include "bfs/bfs1d.hpp"
#include "bfs/serial.hpp"
#include "dist/local_graph1d.hpp"
#include "dist/partition1d.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace dbfs::dist {
namespace {

TEST(BoundaryPartition, BasicOwnership) {
  const auto p = BlockPartition::from_boundaries({0, 3, 3, 10});
  EXPECT_EQ(p.parts(), 3);
  EXPECT_EQ(p.n(), 10);
  EXPECT_FALSE(p.uniform());
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(2), 0);
  EXPECT_EQ(p.owner(3), 2);  // rank 1 owns the empty range [3,3)
  EXPECT_EQ(p.owner(9), 2);
  EXPECT_EQ(p.size(1), 0);
  EXPECT_EQ(p.size(2), 7);
}

TEST(BoundaryPartition, OwnerMatchesRanges) {
  const auto p = BlockPartition::from_boundaries({0, 1, 4, 9, 20});
  for (vid_t v = 0; v < 20; ++v) {
    const int r = p.owner(v);
    EXPECT_GE(v, p.begin(r));
    EXPECT_LT(v, p.end(r));
    EXPECT_EQ(p.to_global(r, p.to_local(v)), v);
  }
}

TEST(BoundaryPartition, RejectsInvalidBoundaries) {
  EXPECT_THROW(BlockPartition::from_boundaries({0}), std::invalid_argument);
  EXPECT_THROW(BlockPartition::from_boundaries({1, 5}),
               std::invalid_argument);
  EXPECT_THROW(BlockPartition::from_boundaries({0, 5, 3}),
               std::invalid_argument);
}

TEST(EdgeBalanced, EqualDegreesGiveUniformBlocks) {
  const std::vector<eid_t> degrees(100, 4);
  const auto p = BlockPartition::edge_balanced(degrees, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.size(r), 25);
}

TEST(EdgeBalanced, HubsGetSmallBlocks) {
  // Vertex 0 holds half of all edges: its block should be nearly alone.
  std::vector<eid_t> degrees(100, 1);
  degrees[0] = 99;
  const auto p = BlockPartition::edge_balanced(degrees, 4);
  EXPECT_LT(p.size(0), 25);
  // The hub alone carries half the edges, so max/mean = 2 is the best any
  // partition can do; the balancer must reach that floor.
  std::vector<double> loads;
  for (int r = 0; r < 4; ++r) {
    double load = 0;
    for (vid_t v = p.begin(r); v < p.end(r); ++v) {
      load += static_cast<double>(degrees[static_cast<std::size_t>(v)]);
    }
    loads.push_back(load);
  }
  EXPECT_LE(util::imbalance(loads), 2.0 + 1e-9);
}

TEST(EdgeBalanced, BalancesNaturalOrderRmat) {
  graph::RmatParams params;
  params.scale = 12;
  params.edge_factor = 16;
  graph::BuildOptions build;
  build.shuffle = false;
  const auto built = graph::build_graph(graph::generate_rmat(params), build);
  const int ranks = 16;

  std::vector<eid_t> degrees(static_cast<std::size_t>(built.csr.num_vertices()));
  for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
    degrees[static_cast<std::size_t>(v)] = built.csr.degree(v);
  }
  auto imbalance_of = [&](const BlockPartition& p) {
    std::vector<double> loads(static_cast<std::size_t>(ranks), 0.0);
    for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
      loads[static_cast<std::size_t>(p.owner(v))] +=
          static_cast<double>(degrees[static_cast<std::size_t>(v)]);
    }
    return util::imbalance(loads);
  };

  const double uniform =
      imbalance_of(BlockPartition(built.csr.num_vertices(), ranks));
  const double balanced =
      imbalance_of(BlockPartition::edge_balanced(degrees, ranks));
  EXPECT_GT(uniform, 2.0);    // natural-order R-MAT is badly skewed
  EXPECT_LT(balanced, 1.5);   // boundaries fix it
}

TEST(EdgeBalanced, LocalGraphBuildsWithCustomPartition) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  std::vector<eid_t> degrees(static_cast<std::size_t>(n), 0);
  for (const graph::Edge& e : built.edges.edges()) {
    ++degrees[static_cast<std::size_t>(e.u)];
  }
  const auto lg = LocalGraph1D::build_with_partition(
      built.edges, BlockPartition::edge_balanced(degrees, 8));
  eid_t total = 0;
  for (int r = 0; r < 8; ++r) total += lg.local_edges(r);
  EXPECT_EQ(total, built.edges.num_edges());
}

TEST(EdgeBalanced, BfsStillCorrect) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  bfs::Bfs1DOptions opts;
  opts.ranks = 8;
  opts.partition_mode = bfs::PartitionMode::kEdgeBalanced;
  bfs::Bfs1D bfs{built.edges, n, opts};
  const vid_t source = test::hub_source(built.csr);
  const auto serial = bfs::serial_bfs(built.csr, source);
  const auto out = bfs.run(source);
  EXPECT_EQ(out.level, serial.level);
  EXPECT_FALSE(bfs.partition().uniform());
}

TEST(EdgeBalanced, CountsBothEndpointsOnUnsymmetrizedInput) {
  // Regression: the 1D partitioner's degree count used to look only at
  // edge sources, so on an unsymmetrized input a pure-sink hub (all
  // in-edges, no out-edges) was invisible and its rank received the same
  // uniform vertex block as everyone else despite absorbing every
  // candidate. In-star: every vertex points at 0, nothing points back.
  const vid_t n = 64;
  graph::EdgeList edges{n};
  for (vid_t v = 1; v < n; ++v) edges.add(v, 0);  // no symmetrize()
  bfs::Bfs1DOptions opts;
  opts.ranks = 4;
  opts.partition_mode = bfs::PartitionMode::kEdgeBalanced;
  bfs::Bfs1D bfs{edges, n, opts};
  const auto& p = bfs.partition();
  EXPECT_FALSE(p.uniform());
  // The hub carries half of all endpoint work (63 of 126), so its block
  // must be far below the uniform 16 vertices.
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_LT(p.size(0), 8);
}

TEST(EdgeBalanced, MoreRanksThanVertices) {
  const std::vector<eid_t> degrees{5, 5};
  const auto p = BlockPartition::edge_balanced(degrees, 8);
  EXPECT_EQ(p.parts(), 8);
  vid_t covered = 0;
  for (int r = 0; r < 8; ++r) covered += p.size(r);
  EXPECT_EQ(covered, 2);
}

}  // namespace
}  // namespace dbfs::dist
