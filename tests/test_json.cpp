#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dbfs::util {
namespace {

TEST(Json, ParsesScalarsAndNesting) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": "text", "c": true, "d": null,
          "e": [1, 2, 3], "f": {"g": -7}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  EXPECT_EQ(v.at("b").as_string(), "text");
  EXPECT_TRUE(v.at("c").as_bool());
  EXPECT_EQ(v.at("d").kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(v.at("e").is_array());
  ASSERT_EQ(v.at("e").items.size(), 3u);
  EXPECT_EQ(v.at("e").items[2].as_int(), 3);
  EXPECT_EQ(v.at("f").at("g").as_int(), -7);
}

TEST(Json, ParsesScientificNotationAndBigIntegers) {
  const JsonValue v = parse_json(R"({"teps": 7.17225e8, "n": 8589934592})");
  EXPECT_DOUBLE_EQ(v.at("teps").as_number(), 7.17225e8);
  EXPECT_EQ(v.at("n").as_int(), 8589934592ll);
}

TEST(Json, StringEscapes) {
  const JsonValue v =
      parse_json(R"({"s": "a\"b\\c\nd\tA"})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, FallbackAccessors) {
  const JsonValue v = parse_json(R"({"x": 2})");
  EXPECT_DOUBLE_EQ(v.number_or("x", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.int_or("missing", 4), 4);
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  // Present key of the wrong kind is a schema bug, not an optional field.
  EXPECT_THROW(v.string_or("x", "dflt"), JsonError);
}

TEST(Json, ErrorsNameTheProblem) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonError);
  EXPECT_THROW(parse_json("[1, 2,]"), JsonError);
  EXPECT_THROW(parse_json("{} trailing"), JsonError);
  EXPECT_THROW(parse_json("nul"), JsonError);
}

TEST(Json, TypedAccessMismatchThrows) {
  const JsonValue v = parse_json(R"({"a": "str"})");
  EXPECT_THROW(v.at("a").as_number(), JsonError);
  EXPECT_THROW(v.at("missing"), JsonError);
  EXPECT_THROW(v.at("a").at("b"), JsonError);
}

}  // namespace
}  // namespace dbfs::util
