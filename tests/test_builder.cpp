#include "graph/builder.hpp"

#include "graph/permutation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace dbfs::graph {
namespace {

TEST(BuildGraph, RecordsDirectedEdgeCountBeforeProcessing) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  const auto built = build_graph(generate_rmat(params));
  EXPECT_EQ(built.directed_edge_count, 8 * (1 << 8));
  // Post-pipeline CSR is symmetrized and deduped: between m and 2m.
  EXPECT_LE(built.csr.num_edges(), 2 * built.directed_edge_count);
  EXPECT_GT(built.csr.num_edges(), 0);
}

TEST(BuildGraph, SymmetrizeYieldsSymmetricCsr) {
  RmatParams params;
  params.scale = 7;
  params.edge_factor = 4;
  const auto built = build_graph(generate_rmat(params));
  EXPECT_TRUE(built.csr.is_symmetric());
}

TEST(BuildGraph, NoSymmetrizeKeepsDirection) {
  EdgeList e{4};
  e.add(0, 1);
  e.add(2, 3);
  BuildOptions opts;
  opts.symmetrize = false;
  opts.shuffle = false;
  const auto built = build_graph(std::move(e), opts);
  EXPECT_EQ(built.csr.num_edges(), 2);
  EXPECT_FALSE(built.csr.is_symmetric());
}

TEST(BuildGraph, DedupCollapsesMultiEdges) {
  EdgeList e{3};
  for (int i = 0; i < 10; ++i) e.add(0, 1);
  BuildOptions opts;
  opts.shuffle = false;
  const auto built = build_graph(std::move(e), opts);
  EXPECT_EQ(built.csr.num_edges(), 2);  // {0,1} both directions
  EXPECT_EQ(built.edges.num_edges(), 2);
}

TEST(BuildGraph, ShuffleMappingIsRecordedAndValid) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  BuildOptions opts;
  opts.shuffle = true;
  opts.shuffle_seed = 77;
  const auto built = build_graph(generate_rmat(params), opts);
  ASSERT_EQ(built.new_to_old.size(),
            static_cast<std::size_t>(built.csr.num_vertices()));
  const Permutation inverse{built.new_to_old};
  EXPECT_TRUE(inverse.is_valid());
}

TEST(BuildGraph, NoShuffleLeavesMappingEmpty) {
  EdgeList e{4};
  e.add(0, 1);
  BuildOptions opts;
  opts.shuffle = false;
  const auto built = build_graph(std::move(e), opts);
  EXPECT_TRUE(built.new_to_old.empty());
}

TEST(BuildGraph, DifferentShuffleSeedsDifferentLayouts) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  const auto raw = generate_rmat(params);
  BuildOptions a;
  a.shuffle_seed = 1;
  BuildOptions b;
  b.shuffle_seed = 2;
  EXPECT_NE(build_graph(raw, a).new_to_old, build_graph(raw, b).new_to_old);
}

TEST(DegreeStats, CountsCorrectly) {
  EdgeList e{5};
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  e.add(1, 2);
  const auto csr = CsrGraph::from_edges(e);
  const auto stats = degree_stats(csr);
  EXPECT_EQ(stats.max_degree, 3);
  // Out-degree view: 2 and 3 have only in-edges, 4 has none at all.
  EXPECT_EQ(stats.isolated, 3);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 4.0 / 5.0);
}

TEST(DegreeStats, EmptyGraph) {
  const auto csr = CsrGraph::from_edges(EdgeList{0});
  const auto stats = degree_stats(csr);
  EXPECT_EQ(stats.max_degree, 0);
  EXPECT_EQ(stats.isolated, 0);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

}  // namespace
}  // namespace dbfs::graph
