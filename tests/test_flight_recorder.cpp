// The always-on flight recorder (src/obs/flight_recorder.*): ring
// semantics, the JSON dump, the engine hooks that feed it, and — the
// contract that lets it stay on by default — proof that attaching it
// changes nothing about a run's observable output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bfs/bfs1d.hpp"
#include "bfs/report_json.hpp"
#include "core/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "simmpi/fault.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace dbfs {
namespace {

TEST(FlightRecorder, RingOverwritesOldestAndKeepsOrder) {
  obs::FlightRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.append("level", "test", static_cast<double>(i), -1, i);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.size(), 4u);

  const auto events = rec.chronological();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest surviving event is #2; order is preserved across the wrap.
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(i + 2));
  }

  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.chronological().empty());
}

TEST(FlightRecorder, PayloadSlotsCapAtFour) {
  obs::FlightRecorder rec(2);
  auto& ev = rec.append("wire", "test", 1.0, 0, 0)
                 .set("a", 1)
                 .set("b", 2)
                 .set("c", 3)
                 .set("d", 4)
                 .set("e", 5);  // silently dropped
  EXPECT_STREQ(ev.key[3], "d");
  std::ostringstream out;
  rec.write_json(out);
  EXPECT_NE(out.str().find("\"d\":4"), std::string::npos);
  EXPECT_EQ(out.str().find("\"e\""), std::string::npos);
}

TEST(FlightRecorder, JsonDumpParsesWithExpectedShape) {
  obs::FlightRecorder rec(8);
  rec.append("collective", "1d-exchange", 0.5, -1, 2)
      .set("cost_seconds", 1e-4)
      .set("bytes", 4096);
  std::ostringstream out;
  rec.write_json(out);

  const auto root = util::parse_json(out.str());
  const auto& flight = root.at("flight");
  EXPECT_EQ(flight.at("capacity").as_int(), 8);
  EXPECT_EQ(flight.at("recorded").as_int(), 1);
  EXPECT_EQ(flight.at("dropped").as_int(), 0);
  const auto& events = flight.at("events");
  ASSERT_EQ(events.items.size(), 1u);
  const auto& e = events.items.front();
  EXPECT_EQ(e.at("kind").as_string(), "collective");
  EXPECT_EQ(e.at("site").as_string(), "1d-exchange");
  EXPECT_EQ(e.at("rank").as_int(), -1);
  EXPECT_EQ(e.at("level").as_int(), 2);
  EXPECT_DOUBLE_EQ(e.at("payload").at("bytes").as_number(), 4096.0);
}

TEST(FlightRecorder, EngineRecordsCollectivesWireAndLevels) {
  const auto built = test::rmat_graph(9, 8);
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDFlat;
  opts.cores = 16;
  opts.machine = model::generic();
  opts.wire_format = comm::WireFormat::kAuto;
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  ASSERT_NE(engine.flight_recorder(), nullptr);

  (void)engine.run(test::hub_source(built.csr));
  const auto events = engine.flight_recorder()->chronological();
  ASSERT_FALSE(events.empty());

  bool saw_collective = false, saw_wire = false, saw_level = false;
  double last_t = 0.0;
  for (const auto& e : events) {
    saw_collective = saw_collective || std::string(e.kind) == "collective";
    saw_wire = saw_wire || std::string(e.kind) == "wire";
    saw_level = saw_level || std::string(e.kind) == "level";
    EXPECT_GE(e.t, last_t) << "timestamps must be non-decreasing";
    last_t = e.t;
  }
  EXPECT_TRUE(saw_collective);
  EXPECT_TRUE(saw_wire);
  EXPECT_TRUE(saw_level);
}

TEST(FlightRecorder, HostAlgorithmsHaveNoRecorder) {
  const auto built = test::rmat_graph(8, 8);
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kSerial;
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  EXPECT_EQ(engine.flight_recorder(), nullptr);
}

// Black-box-on-crash: an unrecovered rank kill must leave the fault
// event (and the history leading up to it) in the ring after the throw.
TEST(FlightRecorder, HoldsFaultEventAfterRankFailedError) {
  const auto built = test::rmat_graph(9, 8);
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDFlat;
  opts.cores = 16;
  opts.machine = model::generic();
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = 2;
  opts.faults.rank_kills = {kill};
  opts.recover.policy = recover::Policy::kSpare;
  opts.recover.spare_ranks = 0;  // unrecoverable: the error must escape
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};

  EXPECT_THROW((void)engine.run(test::hub_source(built.csr)),
               simmpi::RankFailedError);

  const auto events = engine.flight_recorder()->chronological();
  ASSERT_FALSE(events.empty());
  const auto& last = events.back();
  EXPECT_STREQ(last.kind, "fault");
  EXPECT_EQ(last.rank, 1);
  bool saw_history = false;
  for (const auto& e : events) {
    saw_history = saw_history || std::string(e.kind) == "level";
  }
  EXPECT_TRUE(saw_history) << "the dump should show what led to the crash";
}

// Recovery leaves its trail: a survived kill records fault, recover, and
// checkpoint events in one chronological story.
TEST(FlightRecorder, RecordsCheckpointAndRecoverTransitions) {
  const auto built = test::rmat_graph(9, 8);
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDFlat;
  opts.cores = 16;
  opts.machine = model::generic();
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = 2;
  opts.faults.rank_kills = {kill};
  opts.recover.policy = recover::Policy::kSpare;
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  (void)engine.run(test::hub_source(built.csr));

  bool saw_fault = false, saw_recover = false, saw_checkpoint = false;
  for (const auto& e : engine.flight_recorder()->chronological()) {
    saw_fault = saw_fault || std::string(e.kind) == "fault";
    saw_recover = saw_recover || std::string(e.kind) == "recover";
    saw_checkpoint = saw_checkpoint || std::string(e.kind) == "checkpoint";
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_recover);
  EXPECT_TRUE(saw_checkpoint);
}

// The always-on contract: a run with a recorder attached produces the
// exact same parents, levels, and report JSON as one without.
TEST(FlightRecorder, AttachingTheRecorderNeverPerturbsTheRun) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  bfs::Bfs1DOptions with;
  with.ranks = 16;
  with.machine = model::generic();
  with.wire_format = comm::WireFormat::kAuto;
  bfs::Bfs1DOptions without = with;

  obs::FlightRecorder recorder;
  with.flight = &recorder;
  bfs::Bfs1D observed{built.edges, n, with};
  bfs::Bfs1D blind{built.edges, n, without};

  const auto a = observed.run(source);
  const auto b = blind.run(source);
  EXPECT_GT(recorder.recorded(), 0u);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(bfs::report_to_json(a.report), bfs::report_to_json(b.report))
      << "report bytes must be identical whether or not the black box "
         "is attached";
}

}  // namespace
}  // namespace dbfs
