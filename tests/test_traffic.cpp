#include "simmpi/traffic.hpp"

#include <gtest/gtest.h>

namespace dbfs::simmpi {
namespace {

TEST(TrafficMeter, StartsEmpty) {
  TrafficMeter m;
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(m.total_seconds(), 0.0);
  EXPECT_EQ(m.totals(Pattern::kAlltoallv).calls, 0);
}

TEST(TrafficMeter, RecordAccumulatesPerPattern) {
  TrafficMeter m;
  m.record(Pattern::kAlltoallv, 100, 0.5, 4);
  m.record(Pattern::kAlltoallv, 50, 0.25, 4);
  m.record(Pattern::kAllgatherv, 10, 0.1, 8);
  const auto& a2a = m.totals(Pattern::kAlltoallv);
  EXPECT_EQ(a2a.calls, 2);
  EXPECT_EQ(a2a.bytes, 150u);
  EXPECT_DOUBLE_EQ(a2a.seconds, 0.75);
  EXPECT_DOUBLE_EQ(a2a.rank_seconds, 3.0);  // 4 participants each call
  EXPECT_EQ(m.totals(Pattern::kAllgatherv).calls, 1);
  EXPECT_EQ(m.total_bytes(), 160u);
  EXPECT_DOUBLE_EQ(m.total_seconds(), 0.85);
}

TEST(TrafficMeter, RankSecondsScaleWithParticipants) {
  TrafficMeter m;
  m.record(Pattern::kBroadcast, 8, 1.0, 2);
  m.record(Pattern::kBroadcast, 8, 1.0, 32);
  EXPECT_DOUBLE_EQ(m.totals(Pattern::kBroadcast).rank_seconds, 34.0);
}

TEST(TrafficMeter, ResetClearsEverything) {
  TrafficMeter m;
  m.record(Pattern::kTranspose, 99, 9.0, 2);
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_EQ(m.totals(Pattern::kTranspose).calls, 0);
  EXPECT_DOUBLE_EQ(m.totals(Pattern::kTranspose).rank_seconds, 0.0);
}

TEST(TrafficMeter, SummaryListsActivePatternsOnly) {
  TrafficMeter m;
  m.record(Pattern::kAllreduce, 8, 0.01, 16);
  const std::string s = m.summary();
  EXPECT_NE(s.find("Allreduce"), std::string::npos);
  EXPECT_EQ(s.find("Gatherv"), std::string::npos);
}

TEST(PatternNames, AllDistinct) {
  for (int i = 0; i < static_cast<int>(Pattern::kCount); ++i) {
    for (int j = i + 1; j < static_cast<int>(Pattern::kCount); ++j) {
      EXPECT_STRNE(to_string(static_cast<Pattern>(i)),
                   to_string(static_cast<Pattern>(j)));
    }
  }
}

}  // namespace
}  // namespace dbfs::simmpi
