#include <gtest/gtest.h>

#include "dist/local_graph1d.hpp"
#include "dist/partition1d.hpp"
#include "dist/partition2d.hpp"
#include "graph/generators.hpp"

namespace dbfs::dist {
namespace {

TEST(BlockPartition, EvenSplit) {
  const BlockPartition p{100, 4};
  EXPECT_EQ(p.block_size(), 25);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.size(r), 25);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(24), 0);
  EXPECT_EQ(p.owner(25), 1);
  EXPECT_EQ(p.owner(99), 3);
}

TEST(BlockPartition, RemainderGoesToLastRank) {
  const BlockPartition p{10, 3};  // floor(10/3)=3: sizes 3,3,4
  EXPECT_EQ(p.size(0), 3);
  EXPECT_EQ(p.size(1), 3);
  EXPECT_EQ(p.size(2), 4);
  EXPECT_EQ(p.owner(9), 2);
}

TEST(BlockPartition, OwnerMatchesRanges) {
  const BlockPartition p{1000, 7};
  for (vid_t v = 0; v < 1000; ++v) {
    const int r = p.owner(v);
    EXPECT_GE(v, p.begin(r));
    EXPECT_LT(v, p.end(r));
  }
}

TEST(BlockPartition, LocalGlobalRoundTrip) {
  const BlockPartition p{100, 8};
  for (vid_t v = 0; v < 100; ++v) {
    const int r = p.owner(v);
    EXPECT_EQ(p.to_global(r, p.to_local(v)), v);
  }
}

TEST(BlockPartition, MoreRanksThanVertices) {
  const BlockPartition p{3, 8};
  // Trailing ranks own empty ranges; every vertex still has an owner.
  vid_t covered = 0;
  for (int r = 0; r < 8; ++r) covered += p.size(r);
  EXPECT_EQ(covered, 3);
  EXPECT_EQ(p.owner(2), 2);
}

TEST(BlockPartition, RejectsInvalid) {
  EXPECT_THROW(BlockPartition(-1, 4), std::invalid_argument);
  EXPECT_THROW(BlockPartition(10, 0), std::invalid_argument);
}

TEST(LocalGraph1D, PreservesAllEdges) {
  graph::RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  const auto edges = graph::generate_rmat(params);
  const int ranks = 5;
  const auto lg = LocalGraph1D::build(edges, edges.num_vertices(), ranks);

  eid_t total = 0;
  for (int r = 0; r < ranks; ++r) total += lg.local_edges(r);
  EXPECT_EQ(total, edges.num_edges());
}

TEST(LocalGraph1D, NeighborsMatchEdgeList) {
  graph::EdgeList e{10};
  e.add(3, 7);
  e.add(3, 1);
  e.add(9, 0);
  const auto lg = LocalGraph1D::build(e, 10, 3);
  const auto& part = lg.partition();
  const int owner3 = part.owner(3);
  const auto nbrs = lg.neighbors(owner3, 3 - part.begin(owner3));
  ASSERT_EQ(nbrs.size(), 2u);
  // Insertion order preserved (no sorting required for the 1D scan).
  EXPECT_EQ(nbrs[0], 7);
  EXPECT_EQ(nbrs[1], 1);

  const int owner9 = part.owner(9);
  EXPECT_EQ(lg.neighbors(owner9, 9 - part.begin(owner9))[0], 0);
}

TEST(Partition2D, TotalNnzMatchesDedupedEdges) {
  graph::RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  auto edges = graph::generate_rmat(params);
  edges.sort_and_dedup();
  const simmpi::ProcessGrid grid{3};
  const Partition2D part{edges, edges.num_vertices(), grid};
  EXPECT_EQ(part.total_nnz(), edges.num_edges());
}

TEST(Partition2D, EntriesLandInCorrectBlocks) {
  graph::EdgeList e{12};
  e.add(1, 10);   // matrix entry (row 10, col 1) -> block (2, 0) on 3x3/4
  e.add(11, 2);   // entry (row 2, col 11) -> block (0, 2)
  const simmpi::ProcessGrid grid{3};
  const Partition2D part{e, 12, grid};
  const auto& blocks = part.blocks();
  EXPECT_EQ(blocks.block_size(), 4);

  // Edge u->v becomes entry (v, u): v=10 row-block 2, u=1 col-block 0.
  const auto& b20 = part.block(grid.rank_of(2, 0));
  EXPECT_EQ(b20.nnz(), 1);
  EXPECT_EQ(b20.column(1).size(), 1u);   // local col = 1 - 0
  EXPECT_EQ(b20.column(1)[0], 2);        // local row = 10 - 8

  const auto& b02 = part.block(grid.rank_of(0, 2));
  EXPECT_EQ(b02.nnz(), 1);
  EXPECT_EQ(b02.column(3)[0], 2);        // col 11-8, row 2-0
}

TEST(Partition2D, RequiresSquareGrid) {
  graph::EdgeList e{4};
  EXPECT_THROW(Partition2D(e, 4, simmpi::ProcessGrid(2, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::dist
