// Per-rank-pair communication atlas (src/obs/comm_atlas.cpp): unit
// coverage for the matrix/ledger/analytics, engine-level reconciliation
// against the TrafficMeter, the report byte totals, the comm.bytes.*
// counters and the wire codec accounting — across both distributed
// algorithms, every wire format, and a chaos fault plan with a mid-run
// rank kill (shrink recovery must neither lose nor double-count a
// byte) — plus the passivity guarantee (attaching an atlas leaves the
// report JSON byte-identical) and the doctor's traffic-skew /
// hotspot-rank golden scenario.
#include "obs/comm_atlas.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bfs/report_json.hpp"
#include "core/engine.hpp"
#include "obs/bench_record.hpp"
#include "obs/doctor.hpp"
#include "simmpi/traffic.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace dbfs {
namespace {

int pid(simmpi::Pattern p) { return static_cast<int>(p); }

// ---------------------------------------------------------------------
// Unit: slices, ledgers, analytics.

TEST(CommAtlas, SliceDualLedgerSplitsMeteredFromLocal) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(4);
  auto& sl = atlas.slice(pid(simmpi::Pattern::kAlltoallv), "Alltoallv",
                         "site", 0);
  sl.add(0, 1, 100);
  sl.add(1, 0, 40);
  sl.add_local(2, 60);
  EXPECT_EQ(sl.total_bytes, 200u);
  EXPECT_EQ(sl.local_bytes, 60u);
  EXPECT_EQ(sl.metered_bytes(), 140u);
  EXPECT_EQ(atlas.pattern_bytes(pid(simmpi::Pattern::kAlltoallv)), 140u);
  EXPECT_EQ(atlas.pattern_total_bytes(pid(simmpi::Pattern::kAlltoallv)),
            200u);
  EXPECT_EQ(atlas.site_total_bytes("site"), 200u);
}

TEST(CommAtlas, SummaryAnalyticsOnHandBuiltMatrix) {
  // 2x2 grid, row-major ranks: 0=(0,0) 1=(0,1) 2=(1,0) 3=(1,1).
  obs::CommAtlas atlas;
  atlas.ensure_ranks(4);
  atlas.set_grid(2, 2);
  auto& sl = atlas.slice(pid(simmpi::Pattern::kAlltoallv), "Alltoallv",
                         "site", 0);
  sl.add(0, 1, 100);      // same row -> subcommunicator-local
  sl.add(0, 2, 300);      // same column -> subcommunicator-local
  sl.add(0, 3, 600);      // straddles both groups -> grid-wide
  sl.add_local(2, 50);    // diagonal, unmetered

  const obs::AtlasSummary s = atlas.summary();
  EXPECT_EQ(s.ranks, 4);
  EXPECT_EQ(s.total_bytes, 1050u);
  EXPECT_EQ(s.self_bytes, 50u);
  EXPECT_EQ(s.network_bytes, 1000u);
  EXPECT_EQ(s.max_pair_bytes, 600u);
  EXPECT_EQ(s.max_pair_src, 0);
  EXPECT_EQ(s.max_pair_dst, 3);
  EXPECT_DOUBLE_EQ(s.max_pair_share, 0.6);
  EXPECT_EQ(s.hotspot_rank, 0);  // rank 0 sends all 1000 network bytes
  EXPECT_EQ(s.incast_rank, 3);   // rank 3 receives the most (600)
  // Sender volumes [1000,0,0,0]: max/mean = 1000/250.
  EXPECT_DOUBLE_EQ(s.row_skew, 4.0);
  // Receiver volumes [0,100,300,600]: max/mean = 600/250.
  EXPECT_DOUBLE_EQ(s.col_skew, 2.4);
  EXPECT_EQ(s.subcomm_bytes, 400u);
  EXPECT_DOUBLE_EQ(s.locality_share, 0.4);
  EXPECT_DOUBLE_EQ(s.self_share, 50.0 / 1050.0);
}

TEST(CommAtlas, PairSubcommClassification) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(4);
  atlas.set_grid(2, 2);
  EXPECT_TRUE(atlas.pair_is_subcomm(0, 1));   // row 0
  EXPECT_TRUE(atlas.pair_is_subcomm(2, 3));   // row 1
  EXPECT_TRUE(atlas.pair_is_subcomm(1, 3));   // column 1
  EXPECT_FALSE(atlas.pair_is_subcomm(0, 3));  // transpose partners
  EXPECT_FALSE(atlas.pair_is_subcomm(1, 2));

  // A 1xp grid's only row group IS the world: nothing is "local".
  atlas.set_grid(1, 4);
  EXPECT_FALSE(atlas.pair_is_subcomm(0, 1));
  EXPECT_FALSE(atlas.pair_is_subcomm(1, 3));
}

TEST(CommAtlas, EnsureRanksGrowthRelaysOutExistingCells) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(2);
  auto& sl = atlas.slice(pid(simmpi::Pattern::kTranspose), "Transpose",
                         "site", -1);
  sl.add(0, 1, 7);
  sl.add(1, 0, 9);
  atlas.ensure_ranks(4);
  EXPECT_EQ(atlas.ranks(), 4);
  const std::vector<std::uint64_t> m = atlas.matrix();
  ASSERT_EQ(m.size(), 16u);
  EXPECT_EQ(m[0 * 4 + 1], 7u);
  EXPECT_EQ(m[1 * 4 + 0], 9u);
  EXPECT_EQ(atlas.summary().total_bytes, 16u);

  // Shrinking is a no-op: pre-shrink pairs must stay addressable.
  atlas.ensure_ranks(2);
  EXPECT_EQ(atlas.ranks(), 4);
}

TEST(CommAtlas, ClearDropsSlicesButKeepsShape) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(8);
  atlas.set_grid(2, 4);
  atlas.slice(0, "Alltoallv", "site", 0).add(0, 1, 5);
  atlas.clear();
  EXPECT_TRUE(atlas.empty());
  EXPECT_EQ(atlas.ranks(), 8);
  EXPECT_EQ(atlas.grid_rows(), 2);
  EXPECT_EQ(atlas.grid_cols(), 4);
  EXPECT_EQ(atlas.summary().total_bytes, 0u);
}

TEST(CommAtlas, LevelCutIsolatesOneLevel) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(4);
  atlas.set_grid(2, 2);
  atlas.slice(0, "Alltoallv", "fold", 0).add(0, 1, 100);
  atlas.slice(0, "Alltoallv", "fold", 1).add(2, 0, 40);
  atlas.slice(0, "Alltoallv", "fold", 1).add_local(3, 8);

  const obs::AtlasLevelCut cut0 = atlas.level_cut(0);
  EXPECT_EQ(cut0.total_bytes, 100u);
  EXPECT_EQ(cut0.network_bytes, 100u);
  EXPECT_EQ(cut0.subcomm_bytes, 100u);
  EXPECT_EQ(cut0.hotspot_rank, 0);

  const obs::AtlasLevelCut cut1 = atlas.level_cut(1);
  EXPECT_EQ(cut1.total_bytes, 48u);
  EXPECT_EQ(cut1.network_bytes, 40u);
  EXPECT_EQ(cut1.subcomm_bytes, 40u);  // (2,0) share column 0
  EXPECT_EQ(cut1.hotspot_rank, 2);

  EXPECT_EQ(atlas.level_cut(7).total_bytes, 0u);
  EXPECT_EQ(atlas.level_cut(7).hotspot_rank, -1);
}

TEST(CommAtlas, WriteJsonParsesAndReconciles) {
  obs::CommAtlas atlas;
  atlas.ensure_ranks(4);
  atlas.set_grid(2, 2);
  atlas.slice(pid(simmpi::Pattern::kAlltoallv), "Alltoallv", "fold", 0)
      .add(0, 3, 600);
  atlas.slice(pid(simmpi::Pattern::kAllgatherv), "Allgatherv", "expand", 1)
      .add(1, 3, 250);
  atlas.slice(pid(simmpi::Pattern::kAlltoallv), "Alltoallv", "fold", 1)
      .add_local(2, 50);

  std::ostringstream out;
  atlas.write_json(out);
  const auto root = util::parse_json(out.str());
  const auto& a = root.at("atlas");
  EXPECT_EQ(a.at("ranks").as_int(), 4);
  EXPECT_EQ(a.at("grid").at("rows").as_int(), 2);
  EXPECT_EQ(a.at("summary").at("total_bytes").as_int(), 900);
  EXPECT_EQ(a.at("summary").at("self_bytes").as_int(), 50);
  ASSERT_EQ(a.at("matrix").items.size(), 4u);
  ASSERT_EQ(a.at("matrix").items[0].items.size(), 4u);
  EXPECT_EQ(a.at("matrix").items[0].items[3].as_int(), 600);
  // Patterns and sites each decompose the same total.
  long long pattern_sum = 0;
  for (const auto& p : a.at("patterns").items) {
    pattern_sum += p.at("bytes").as_int() + p.at("local_bytes").as_int();
  }
  EXPECT_EQ(pattern_sum, 900);
  long long site_sum = 0;
  for (const auto& s : a.at("sites").items) site_sum += s.at("bytes").as_int();
  EXPECT_EQ(site_sum, 900);
  ASSERT_EQ(a.at("levels").items.size(), 2u);
}

// ---------------------------------------------------------------------
// Engine-level reconciliation: the atlas's per-pattern pair sums must
// equal the TrafficMeter totals the report serializes, and the
// comm.bytes.<Pattern> counters, for every algorithm x wire format —
// with and without a chaos fault plan that kills a rank mid-run.

const graph::BuiltGraph& shared_graph() {
  static const graph::BuiltGraph built = test::rmat_graph(10, 8);
  return built;
}

simmpi::FaultPlan chaos_plan_with_kill() {
  simmpi::FaultPlan plan;
  plan.seed = 7;
  plan.collective_fail_rate = 0.02;
  plan.corrupt_rate = 0.01;
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = 2;
  plan.rank_kills = {kill};
  return plan;
}

std::int64_t counter_of(const core::Engine& engine, const char* name) {
  const auto& counters = engine.metrics()->counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

void expect_reconciled(const core::Engine& engine,
                       const bfs::RunReport& report, bool killed,
                       const std::string& label) {
  using simmpi::Pattern;
  const obs::CommAtlas* atlas = engine.comm_atlas();
  ASSERT_NE(atlas, nullptr) << label;

  // Atlas pair sums == TrafficMeter totals (as the report records them).
  EXPECT_EQ(atlas->pattern_bytes(pid(Pattern::kAlltoallv)),
            report.alltoall_bytes)
      << label;
  EXPECT_EQ(atlas->pattern_bytes(pid(Pattern::kAllgatherv)) +
                atlas->pattern_bytes(pid(Pattern::kBroadcast)) +
                atlas->pattern_bytes(pid(Pattern::kGatherv)),
            report.allgather_bytes)
      << label;
  EXPECT_EQ(atlas->pattern_bytes(pid(Pattern::kTranspose)),
            report.transpose_bytes)
      << label;
  EXPECT_EQ(atlas->pattern_bytes(pid(Pattern::kAllreduce)),
            report.allreduce_bytes)
      << label;

  // Atlas pair sums == the comm.bytes.<Pattern> registry counters. The
  // PointToPoint counter also counts the unmetered recover-restore
  // transfer, so its equality only holds for runs without a kill.
  for (int p = 0; p < static_cast<int>(Pattern::kCount); ++p) {
    const auto pattern = static_cast<Pattern>(p);
    if (pattern == Pattern::kPointToPoint && killed) continue;
    const std::string name =
        std::string("comm.bytes.") + simmpi::to_string(pattern);
    EXPECT_EQ(atlas->pattern_bytes(p),
              static_cast<std::uint64_t>(counter_of(engine, name.c_str())))
        << label << " " << name;
  }

  // The matrix grand total equals the sum over every decomposition.
  const obs::AtlasSummary s = atlas->summary();
  std::uint64_t pattern_total = 0;
  for (int p = 0; p < static_cast<int>(Pattern::kCount); ++p) {
    pattern_total += atlas->pattern_total_bytes(p);
  }
  EXPECT_EQ(pattern_total, s.total_bytes) << label;
  EXPECT_EQ(s.self_bytes + s.network_bytes, s.total_bytes) << label;
  EXPECT_LE(s.subcomm_bytes, s.network_bytes) << label;
  EXPECT_GT(s.network_bytes, 0u) << label;
}

TEST(CommAtlasEngine, ReconcilesAcrossAlgorithmsWireFormatsAndFaults) {
  const graph::BuiltGraph& built = shared_graph();
  const vid_t source = test::hub_source(built.csr);
  const core::Algorithm algos[] = {core::Algorithm::kOneDFlat,
                                   core::Algorithm::kTwoDFlat};
  const comm::WireFormat wires[] = {
      comm::WireFormat::kRaw, comm::WireFormat::kSieve,
      comm::WireFormat::kBitmap, comm::WireFormat::kVarint,
      comm::WireFormat::kAuto};

  for (core::Algorithm algo : algos) {
    for (comm::WireFormat wire : wires) {
      for (bool killed : {false, true}) {
        core::EngineOptions opts;
        opts.algorithm = algo;
        opts.cores = 16;
        opts.wire_format = wire;
        opts.atlas = true;
        opts.metrics = true;
        if (killed) {
          opts.faults = chaos_plan_with_kill();
          opts.recover.policy = recover::Policy::kShrink;
          opts.recover.checkpoint_every = 1;
        }
        const std::string label = std::string(core::to_string(algo)) + "/" +
                                  comm::to_string(wire) +
                                  (killed ? "/chaos-kill" : "/clean");

        core::Engine engine{built.edges, built.csr.num_vertices(), opts};
        const auto out = engine.run(source);
        if (killed) {
          ASSERT_GE(out.report.recover.rank_failures, 1) << label;
        }
        expect_reconciled(engine, out.report, killed, label);
      }
    }
  }
}

// The 1D codec path: every encoded byte the wire.* counters account for
// must appear in the atlas's "1d-exchange" bucket — including the
// self-addressed blocks the local ledger holds, which the meter skips.
// Payload corruption re-issues re-record the exchange (meter and atlas
// alike) but not the encode, so this runs on clean plans only.
TEST(CommAtlasEngine, OneDExchangeSiteMatchesWireBytesAfter) {
  const graph::BuiltGraph& built = shared_graph();
  const vid_t source = test::hub_source(built.csr);
  const comm::WireFormat wires[] = {
      comm::WireFormat::kSieve, comm::WireFormat::kBitmap,
      comm::WireFormat::kVarint, comm::WireFormat::kAuto};
  for (comm::WireFormat wire : wires) {
    core::EngineOptions opts;
    opts.algorithm = core::Algorithm::kOneDFlat;
    opts.cores = 16;
    opts.wire_format = wire;
    opts.atlas = true;
    opts.metrics = true;
    core::Engine engine{built.edges, built.csr.num_vertices(), opts};
    (void)engine.run(source);
    EXPECT_EQ(engine.comm_atlas()->site_total_bytes("1d-exchange"),
              static_cast<std::uint64_t>(
                  counter_of(engine, "wire.bytes_after")))
        << comm::to_string(wire);
  }
}

// 2D shrink recovery re-folds to a smaller grid while the matrix keeps
// its original dimension, so pre-shrink pairs stay attributed.
TEST(CommAtlasEngine, ShrinkKeepsMatrixDimensionAndShrinksGrid) {
  const graph::BuiltGraph& built = shared_graph();
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 16;
  opts.atlas = true;
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = 2;
  opts.faults.rank_kills = {kill};
  opts.recover.policy = recover::Policy::kShrink;
  opts.recover.checkpoint_every = 1;

  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  ASSERT_GE(out.report.recover.rank_failures, 1);

  const obs::CommAtlas* atlas = engine.comm_atlas();
  EXPECT_EQ(atlas->ranks(), 16);
  EXPECT_LE(atlas->grid_rows() * atlas->grid_cols(), atlas->ranks());
  EXPECT_LT(atlas->grid_rows() * atlas->grid_cols(), 16);
  EXPECT_GT(atlas->summary().network_bytes, 0u);
}

// Passivity: attaching the atlas must not change the run — the report
// JSON is byte-identical with and without it.
TEST(CommAtlasEngine, AttachingAtlasKeepsReportByteIdentical) {
  const graph::BuiltGraph& built = shared_graph();
  const vid_t source = test::hub_source(built.csr);
  for (core::Algorithm algo :
       {core::Algorithm::kOneDFlat, core::Algorithm::kTwoDFlat}) {
    core::EngineOptions plain;
    plain.algorithm = algo;
    plain.cores = 16;
    core::EngineOptions observed = plain;
    observed.atlas = true;

    core::Engine a{built.edges, built.csr.num_vertices(), plain};
    core::Engine b{built.edges, built.csr.num_vertices(), observed};
    const std::string ja = bfs::report_to_json(a.run(source).report, true);
    const std::string jb = bfs::report_to_json(b.run(source).report, true);
    EXPECT_EQ(ja, jb) << core::to_string(algo);
    EXPECT_EQ(a.comm_atlas(), nullptr);
    ASSERT_NE(b.comm_atlas(), nullptr);
    EXPECT_GT(b.comm_atlas()->summary().total_bytes, 0u);
  }
}

// And the same through the 2D hybrid direction: all three bottom-up
// exchanges must land in the atlas, with the completion/result traffic
// riding transpose partners (captured by the Transpose pattern).
TEST(CommAtlasEngine, HybridBottomUpExchangesAreAttributed) {
  const graph::BuiltGraph& built = shared_graph();
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 16;
  opts.direction = bfs::DirectionMode::kHybrid;
  opts.atlas = true;
  opts.metrics = true;  // expect_reconciled reads the comm.bytes.* counters
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  ASSERT_GT(out.report.dirop.bottom_up_levels, 0)
      << "hybrid must actually engage bottom-up on the R-MAT instance";

  const obs::CommAtlas* atlas = engine.comm_atlas();
  EXPECT_GT(atlas->site_total_bytes("2d-bu-frontier"), 0u);
  EXPECT_GT(atlas->site_total_bytes("2d-bu-result"), 0u);
  expect_reconciled(engine, out.report, false, "2d-hybrid");
}

// ---------------------------------------------------------------------
// Doctor golden scenario: a candidate whose atlas shows a skew jump and
// a concentrated pair must be diagnosed as traffic-skew, and the
// hotspot-rank finding must name the seeded rank.

obs::BenchRecord atlas_record(double row_skew, double max_pair_share,
                              int hotspot_rank, int incast_rank) {
  obs::BenchRecord r;
  r.name = "atlas-golden";
  r.config.algorithm = "1d";
  r.config.machine = "generic";
  r.config.wire_format = "raw";
  r.config.cores = 16;
  r.config.ranks = 16;
  r.harmonic_mean_teps = 1e8;
  r.mean_seconds = 1.0;
  r.comm_seconds_mean = 0.5;
  r.comp_seconds_mean = 0.5;
  for (int lv = 0; lv < 4; ++lv) {
    obs::BenchLevelSplit l;
    l.level = lv;
    l.compute_mean = 0.1;
    l.wait_mean = 0.05;
    l.transfer_mean = 0.1;
    r.levels.push_back(l);
  }
  r.atlas.present = true;
  r.atlas.grid_rows = 1;
  r.atlas.grid_cols = 16;
  r.atlas.total_bytes = 1000000;
  r.atlas.network_bytes = 900000;
  r.atlas.row_skew = row_skew;
  r.atlas.col_skew = 1.1;
  r.atlas.max_pair_share = max_pair_share;
  r.atlas.hotspot_rank = hotspot_rank;
  r.atlas.incast_rank = incast_rank;
  return r;
}

TEST(Doctor, AttributesSkewJumpToTrafficSkewAndNamesHotspotRank) {
  const auto baseline = atlas_record(1.2, 0.08, 3, 4);
  auto candidate = atlas_record(3.6, 0.45, 5, 9);
  candidate.harmonic_mean_teps = 7e7;  // a real slowdown to attribute
  for (auto& l : candidate.levels) l.transfer_mean *= 1.5;

  const auto report = obs::diagnose(baseline, candidate);
  bool skew = false, hotspot = false;
  std::string hotspot_detail;
  for (const auto& f : report.findings) {
    if (f.cause == "traffic-skew") skew = true;
    if (f.cause == "hotspot-rank") {
      hotspot = true;
      hotspot_detail = f.detail;
    }
  }
  EXPECT_TRUE(skew);
  ASSERT_TRUE(hotspot);
  EXPECT_NE(hotspot_detail.find("rank 5"), std::string::npos)
      << hotspot_detail;
}

TEST(Doctor, NoAtlasBlockMeansNoAtlasFindings) {
  auto baseline = atlas_record(1.2, 0.08, 3, 4);
  auto candidate = atlas_record(3.6, 0.45, 5, 9);
  baseline.atlas.present = false;  // schema-additive: older records
  const auto report = obs::diagnose(baseline, candidate);
  for (const auto& f : report.findings) {
    EXPECT_NE(f.cause, "traffic-skew");
    EXPECT_NE(f.cause, "hotspot-rank");
  }
}

}  // namespace
}  // namespace dbfs
