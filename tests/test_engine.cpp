#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace dbfs::core {
namespace {

class EngineAlgorithmSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EngineAlgorithmSweep, MatchesSerialReference) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  EngineOptions opts;
  opts.algorithm = GetParam();
  opts.cores = 16;
  opts.machine = model::franklin();
  Engine engine{built.edges, n, opts};
  const auto out = engine.run(0);
  const auto serial = bfs::serial_bfs(built.csr, 0);
  EXPECT_EQ(out.level, serial.level) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, EngineAlgorithmSweep,
    ::testing::Values(Algorithm::kSerial, Algorithm::kShared,
                      Algorithm::kOneDFlat, Algorithm::kOneDHybrid,
                      Algorithm::kTwoDFlat, Algorithm::kTwoDHybrid,
                      Algorithm::kGraph500Ref, Algorithm::kPbglLike),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Engine, HybridDefaultsToMachineThreading) {
  const auto built = test::rmat_graph(8);
  const vid_t n = built.csr.num_vertices();
  EngineOptions opts;
  opts.algorithm = Algorithm::kOneDHybrid;
  opts.cores = 24;
  opts.machine = model::hopper();
  Engine engine{built.edges, n, opts};
  EXPECT_EQ(engine.options().threads_per_rank, 6);

  opts.machine = model::franklin();
  Engine franklin_engine{built.edges, n, opts};
  EXPECT_EQ(franklin_engine.options().threads_per_rank, 4);
}

TEST(Engine, FlatForcesSingleThreading) {
  const auto built = test::rmat_graph(8);
  const vid_t n = built.csr.num_vertices();
  EngineOptions opts;
  opts.algorithm = Algorithm::kOneDFlat;
  opts.cores = 16;
  opts.threads_per_rank = 4;  // ignored for flat
  Engine engine{built.edges, n, opts};
  EXPECT_EQ(engine.options().threads_per_rank, 1);
}

TEST(Engine, CoresUsedReflectsSquareGrid) {
  const auto built = test::rmat_graph(8);
  const vid_t n = built.csr.num_vertices();
  EngineOptions opts;
  opts.algorithm = Algorithm::kTwoDFlat;
  opts.cores = 12;
  Engine engine{built.edges, n, opts};
  EXPECT_EQ(engine.cores_used(), 9);
}

TEST(Engine, BatchValidatesAndAggregates) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  EngineOptions opts;
  opts.algorithm = Algorithm::kTwoDFlat;
  opts.cores = 16;
  Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  const auto sources = graph::sample_sources(engine.csr(), comps, 4, 1);
  ASSERT_EQ(sources.size(), 4u);
  const auto batch = engine.run_batch(sources, built.directed_edge_count);
  EXPECT_EQ(batch.validated, 4);
  EXPECT_EQ(batch.failed, 0) << batch.first_error;
  EXPECT_EQ(batch.reports.size(), 4u);
  EXPECT_GT(batch.harmonic_mean_teps, 0.0);
  EXPECT_LE(batch.harmonic_mean_teps, batch.teps.mean);
  EXPECT_GT(batch.mean_seconds, 0.0);
}

TEST(Engine, AlgorithmNamesRoundTrip) {
  EXPECT_STREQ(to_string(Algorithm::kOneDFlat), "1d-flat");
  EXPECT_STREQ(to_string(Algorithm::kTwoDHybrid), "2d-hybrid");
  EXPECT_TRUE(is_distributed(Algorithm::kPbglLike));
  EXPECT_FALSE(is_distributed(Algorithm::kSerial));
  EXPECT_FALSE(is_distributed(Algorithm::kShared));
}

TEST(Engine, RejectsEmptyGraph) {
  graph::EdgeList empty{0};
  EXPECT_THROW(Engine(empty, 0, EngineOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::core
