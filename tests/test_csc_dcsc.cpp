#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sparse/csc_matrix.hpp"
#include "sparse/dcsc_matrix.hpp"
#include "util/prng.hpp"

namespace dbfs::sparse {
namespace {

std::vector<Triple> random_triples(vid_t nrows, vid_t ncols, int count,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<Triple> t;
  t.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    t.push_back(Triple{
        static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(nrows))),
        static_cast<vid_t>(
            rng.next_below(static_cast<std::uint64_t>(ncols)))});
  }
  return t;
}

TEST(CscMatrix, BuildsSortedDedupedColumns) {
  const auto m = CscMatrix::from_triples(
      4, 3, {{2, 1}, {0, 1}, {2, 1}, {3, 0}});
  EXPECT_EQ(m.nnz(), 3);
  const auto col1 = m.column(1);
  ASSERT_EQ(col1.size(), 2u);
  EXPECT_EQ(col1[0], 0);
  EXPECT_EQ(col1[1], 2);
  EXPECT_EQ(m.column(2).size(), 0u);
}

TEST(CscMatrix, RejectsOutOfRange) {
  EXPECT_THROW(CscMatrix::from_triples(2, 2, {{2, 0}}), std::invalid_argument);
  EXPECT_THROW(CscMatrix::from_triples(2, 2, {{0, -1}}),
               std::invalid_argument);
}

TEST(DcscMatrix, MatchesCscColumnwise) {
  const auto triples = random_triples(64, 48, 300, 3);
  const auto csc = CscMatrix::from_triples(64, 48, triples);
  const auto dcsc = DcscMatrix::from_triples(64, 48, triples);
  EXPECT_EQ(csc.nnz(), dcsc.nnz());
  for (vid_t c = 0; c < 48; ++c) {
    const auto a = csc.column(c);
    const auto b = dcsc.column(c);
    ASSERT_EQ(a.size(), b.size()) << "column " << c;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(DcscMatrix, EmptyMatrix) {
  const auto m = DcscMatrix::from_triples(10, 10, {});
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.nzc(), 0);
  EXPECT_EQ(m.column(5).size(), 0u);
}

TEST(DcscMatrix, NzcCountsOnlyOccupiedColumns) {
  const auto m = DcscMatrix::from_triples(4, 100, {{0, 3}, {1, 3}, {2, 97}});
  EXPECT_EQ(m.nzc(), 2);
  EXPECT_EQ(m.nonzero_column_id(0), 3);
  EXPECT_EQ(m.nonzero_column_id(1), 97);
  EXPECT_EQ(m.nonzero_column(0).size(), 2u);
}

TEST(DcscMatrix, HypersparseMemoryBeatsCsc) {
  // 2^16 columns, only 100 occupied: DCSC stores O(nnz + nzc), while CSC
  // pays O(ncols) for the pointer array — the §4.1 argument.
  const vid_t ncols = 1 << 16;
  std::vector<Triple> t;
  for (int i = 0; i < 100; ++i) {
    t.push_back(Triple{i % 50, i * 600});
  }
  const auto dcsc = DcscMatrix::from_triples(64, ncols, t);
  const auto csc = CscMatrix::from_triples(64, ncols, t);
  const std::size_t csc_bytes =
      csc.col_ptr().capacity() * sizeof(eid_t) +
      csc.row_ids().capacity() * sizeof(vid_t);
  EXPECT_LT(dcsc.memory_bytes(), csc_bytes / 10);
}

TEST(DcscMatrix, ColumnLookupAllColumns) {
  const auto triples = random_triples(32, 1024, 200, 9);
  const auto csc = CscMatrix::from_triples(32, 1024, triples);
  const auto dcsc = DcscMatrix::from_triples(32, 1024, triples);
  for (vid_t c = 0; c < 1024; ++c) {
    EXPECT_EQ(dcsc.column(c).size(), csc.column(c).size());
  }
}

TEST(DcscMatrix, ColumnLookupOutOfRangeIsEmpty) {
  const auto m = DcscMatrix::from_triples(4, 4, {{0, 0}});
  EXPECT_EQ(m.column(-1).size(), 0u);
  EXPECT_EQ(m.column(4).size(), 0u);
}

TEST(DcscMatrix, SplitRowwisePreservesEntries) {
  const auto triples = random_triples(100, 40, 500, 21);
  const auto whole = DcscMatrix::from_triples(100, 40, triples);
  const auto pieces = whole.split_rowwise(3);
  ASSERT_EQ(pieces.size(), 3u);
  // Piece row counts: 33, 33, 34.
  EXPECT_EQ(pieces[0].nrows(), 33);
  EXPECT_EQ(pieces[1].nrows(), 33);
  EXPECT_EQ(pieces[2].nrows(), 34);
  eid_t total = 0;
  for (const auto& piece : pieces) total += piece.nnz();
  EXPECT_EQ(total, whole.nnz());

  // Reassemble every column from the re-based pieces and compare.
  for (vid_t c = 0; c < 40; ++c) {
    std::vector<vid_t> reassembled;
    for (std::size_t piece = 0; piece < pieces.size(); ++piece) {
      const vid_t base = static_cast<vid_t>(piece) * 33;
      for (vid_t r : pieces[piece].column(c)) {
        reassembled.push_back(base + r);
      }
    }
    const auto original = whole.column(c);
    ASSERT_EQ(reassembled.size(), original.size()) << "column " << c;
    EXPECT_TRUE(
        std::equal(reassembled.begin(), reassembled.end(), original.begin()));
  }
}

TEST(DcscMatrix, SplitRowwiseSinglePieceIsIdentity) {
  const auto triples = random_triples(20, 20, 50, 4);
  const auto whole = DcscMatrix::from_triples(20, 20, triples);
  const auto pieces = whole.split_rowwise(1);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].nnz(), whole.nnz());
}

TEST(DcscMatrix, SplitRejectsBadCount) {
  const auto m = DcscMatrix::from_triples(4, 4, {});
  EXPECT_THROW(m.split_rowwise(0), std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::sparse
