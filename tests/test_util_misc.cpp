// Mop-up coverage: timers, logging plumbing, cluster argument checking.
#include <gtest/gtest.h>

#include <thread>

#include "simmpi/cluster.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dbfs {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  util::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double elapsed = t.elapsed();
  EXPECT_GE(elapsed, 0.005);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  util::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.elapsed(), 0.01);
}

TEST(AccumTimer, AccumulatesWindows) {
  util::AccumTimer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.stop();
  }
  EXPECT_GE(t.total(), 0.010);
  t.clear();
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Log, ThresholdIsStable) {
  // The threshold is latched once; calling twice returns the same value.
  EXPECT_EQ(util::log_threshold(), util::log_threshold());
}

TEST(Log, MessagesBelowThresholdAreDropped) {
  // Just exercise the path; output goes to stderr and must not crash.
  util::log_debug() << "debug " << 42;
  util::log_info() << "info " << 3.14;
  util::log_warn() << "warn";
  util::log_error() << "error";
  SUCCEED();
}

TEST(Cluster, RejectsInvalidConfiguration) {
  EXPECT_THROW(simmpi::Cluster(0, model::generic()), std::invalid_argument);
  EXPECT_THROW(simmpi::Cluster(4, model::generic(), 0),
               std::invalid_argument);
}

TEST(Cluster, AccessorsReflectConstruction) {
  simmpi::Cluster c{6, model::franklin(), 2};
  EXPECT_EQ(c.ranks(), 6);
  EXPECT_EQ(c.threads_per_rank(), 2);
  EXPECT_EQ(c.cores(), 12);
  EXPECT_EQ(c.machine().name, "franklin");
}

}  // namespace
}  // namespace dbfs
