// BenchRecord schema tests: exact JSON round-trip, schema versioning, the
// builder's pooling/noise math, and a record emitted by a real engine run
// validating against the parser (the unit-level half of bench_smoke).
#include "obs/bench_record.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dbfs::obs {
namespace {

BenchRecord sample_record() {
  BenchRecord r;
  r.name = "rmat10_2d_auto_c16";
  r.created_by = "test";
  r.config.generator = "rmat";
  r.config.scale = 10;
  r.config.edge_factor = 16;
  r.config.graph_seed = 7;
  r.config.algorithm = "2d-flat";
  r.config.machine = "hopper";
  r.config.wire_format = "auto";
  r.config.cores = 16;
  r.config.ranks = 16;
  r.config.threads_per_rank = 1;
  r.config.sources = 2;
  r.config.repetitions = 2;
  r.config.source_seed = 2023;
  r.config.faults_enabled = true;
  r.config.fault_plan = "seed=1 fail_rate=0.01";

  r.teps.count = 4;
  r.teps.min = 1.0e8;
  r.teps.max = 1.25e8;
  r.teps.mean = 1.1e8;
  r.teps.harmonic_mean = 1.09e8;
  r.teps.median = 1.08e8;
  r.teps.p25 = 1.02e8;
  r.teps.p75 = 1.2e8;
  r.teps.p95 = 1.24e8;
  r.teps.p99 = 1.249e8;
  r.teps.stddev = 0.9e7;
  r.harmonic_mean_teps = 1.09e8;
  r.mean_seconds = 0.00123456789012345;
  r.comm_seconds_mean = 0.0004;
  r.comp_seconds_mean = 0.0008;
  r.noise = {0.021, 0.02, 0.033};
  r.repetitions.push_back({2023, 2, 2, 0, 1.1e8, 0.00124, 0.0004, 0.0008});
  r.repetitions.push_back({2024, 2, 0, 0, 1.08e8, 0.00122, 0.0004, 0.0008});

  BenchLevelSplit lvl;
  lvl.level = 3;
  lvl.compute_mean = 2e-4;
  lvl.wait_mean = 3e-5;
  lvl.transfer_mean = 1.5e-5;
  lvl.wait_max = 9e-5;
  lvl.wait_p99 = 8.5e-5;
  lvl.straggler_rank = 11;
  lvl.straggler_phase = "2d-spmsv";
  r.levels.push_back(lvl);

  r.imbalance.ranks = 16;
  r.imbalance.comm_imbalance = 1.25;
  r.imbalance.comp_imbalance = 1.05;
  r.imbalance.busy_imbalance = 1.1;
  r.imbalance.wait_imbalance = 2.5;
  r.imbalance.wait_fraction = 0.08;
  r.imbalance.straggler_ranks = {11, 3};
  r.imbalance.level_ids = {0, 3};
  r.imbalance.wait_heatmap = {{0.25, 0.5}, {0.125, 1.0 / 3.0}};

  r.counters["wire.bytes_before"] = 123456;
  r.counters["fault.collective_failures"] = 2;
  return r;
}

TEST(BenchRecord, JsonRoundTripIsExact) {
  const BenchRecord r = sample_record();
  const BenchRecord back = parse_bench_record(bench_record_to_json(r));

  EXPECT_EQ(back.schema_version, kBenchRecordSchemaVersion);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.created_by, r.created_by);
  EXPECT_EQ(back.config.generator, r.config.generator);
  EXPECT_EQ(back.config.scale, r.config.scale);
  EXPECT_EQ(back.config.graph_seed, r.config.graph_seed);
  EXPECT_EQ(back.config.algorithm, r.config.algorithm);
  EXPECT_EQ(back.config.wire_format, r.config.wire_format);
  EXPECT_EQ(back.config.cores, r.config.cores);
  EXPECT_EQ(back.config.ranks, r.config.ranks);
  EXPECT_EQ(back.config.sources, r.config.sources);
  EXPECT_EQ(back.config.repetitions, r.config.repetitions);
  EXPECT_EQ(back.config.source_seed, r.config.source_seed);
  EXPECT_EQ(back.config.faults_enabled, r.config.faults_enabled);
  EXPECT_EQ(back.config.fault_plan, r.config.fault_plan);

  // max_digits10 serialization: doubles survive bit-exactly.
  EXPECT_EQ(back.teps.count, r.teps.count);
  EXPECT_EQ(back.teps.harmonic_mean, r.teps.harmonic_mean);
  EXPECT_EQ(back.teps.p99, r.teps.p99);
  EXPECT_EQ(back.teps.stddev, r.teps.stddev);
  EXPECT_EQ(back.mean_seconds, r.mean_seconds);
  EXPECT_EQ(back.noise.teps_rel_stddev, r.noise.teps_rel_stddev);
  EXPECT_EQ(back.noise.comm_rel_stddev, r.noise.comm_rel_stddev);

  ASSERT_EQ(back.repetitions.size(), 2u);
  EXPECT_EQ(back.repetitions[1].source_seed, 2024u);
  EXPECT_EQ(back.repetitions[1].harmonic_mean_teps, 1.08e8);
  EXPECT_EQ(back.repetitions[0].validated, 2);

  ASSERT_EQ(back.levels.size(), 1u);
  EXPECT_EQ(back.levels[0].level, 3);
  EXPECT_EQ(back.levels[0].wait_p99, r.levels[0].wait_p99);
  EXPECT_EQ(back.levels[0].straggler_rank, 11);
  EXPECT_EQ(back.levels[0].straggler_phase, "2d-spmsv");

  EXPECT_EQ(back.imbalance.ranks, 16);
  EXPECT_EQ(back.imbalance.wait_imbalance, r.imbalance.wait_imbalance);
  EXPECT_EQ(back.imbalance.straggler_ranks, r.imbalance.straggler_ranks);
  EXPECT_EQ(back.imbalance.level_ids, r.imbalance.level_ids);
  ASSERT_EQ(back.imbalance.wait_heatmap.size(), 2u);
  EXPECT_EQ(back.imbalance.wait_heatmap[1][1], 1.0 / 3.0);

  EXPECT_EQ(back.counters, r.counters);
}

TEST(BenchRecord, SchemaVersionMismatchThrows) {
  BenchRecord r = sample_record();
  r.schema_version = kBenchRecordSchemaVersion + 1;
  const std::string json = bench_record_to_json(r);
  EXPECT_THROW(parse_bench_record(json), BenchSchemaError);
  try {
    parse_bench_record(json);
  } catch (const BenchSchemaError& e) {
    EXPECT_NE(std::string(e.what()).find("schema_version"), std::string::npos);
  }
}

TEST(BenchRecord, MalformedInputThrows) {
  EXPECT_THROW(parse_bench_record("{ definitely not json"), BenchSchemaError);
  EXPECT_THROW(parse_bench_record("42"), BenchSchemaError);
  EXPECT_THROW(parse_bench_record("{\"name\":\"x\"}"), BenchSchemaError);
}

TEST(BenchRecord, FilenameConvention) {
  EXPECT_EQ(bench_record_filename("rmat14_1d_raw_c64"),
            "BENCH_rmat14_1d_raw_c64.json");
}

TEST(BenchRecord, LoadMissingFileThrows) {
  EXPECT_THROW(load_bench_record("/nonexistent/BENCH_x.json"),
               BenchSchemaError);
}

TEST(BenchRecord, SaveLoadRoundTrip) {
  const BenchRecord r = sample_record();
  const std::string path =
      ::testing::TempDir() + "/" + bench_record_filename(r.name);
  save_bench_record(path, r);
  const BenchRecord back = load_bench_record(path);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.harmonic_mean_teps, r.harmonic_mean_teps);
  std::remove(path.c_str());
}

bfs::RunReport fake_report(double total, double comm, double comp) {
  bfs::RunReport rep;
  rep.total_seconds = total;
  rep.comm_seconds_mean = comm;
  rep.comp_seconds_mean = comp;
  return rep;
}

TEST(BenchRecordBuilder, PoolsSamplesAndComputesNoise) {
  BenchRecordBuilder b;
  b.record().name = "builder_test";
  // Two repetitions, two sources each; denominator 1000 edges.
  const std::vector<bfs::RunReport> rep0{fake_report(0.5, 0.2, 0.3),
                                         fake_report(0.25, 0.1, 0.15)};
  const std::vector<bfs::RunReport> rep1{fake_report(0.5, 0.2, 0.3),
                                         fake_report(0.25, 0.1, 0.15)};
  b.add_repetition(100, rep0, 1000, 2, 0);
  b.add_repetition(101, rep1, 1000, 0, 0);
  const BenchRecord r = b.finish();

  EXPECT_EQ(r.teps.count, 4u);
  EXPECT_DOUBLE_EQ(r.teps.min, 2000.0);   // 1000 / 0.5
  EXPECT_DOUBLE_EQ(r.teps.max, 4000.0);   // 1000 / 0.25
  // Harmonic mean of {2000, 4000, 2000, 4000} = 4 / (3/2000).
  EXPECT_DOUBLE_EQ(r.harmonic_mean_teps, 4.0 / (3.0 / 2000.0));
  EXPECT_DOUBLE_EQ(r.mean_seconds, 0.375);
  EXPECT_DOUBLE_EQ(r.comm_seconds_mean, 0.15);
  EXPECT_DOUBLE_EQ(r.comp_seconds_mean, 0.225);

  ASSERT_EQ(r.repetitions.size(), 2u);
  EXPECT_EQ(r.repetitions[0].source_seed, 100u);
  EXPECT_EQ(r.repetitions[0].validated, 2);
  EXPECT_DOUBLE_EQ(r.repetitions[0].mean_seconds, 0.375);

  // Identical repetitions -> zero across-repetition noise.
  EXPECT_DOUBLE_EQ(r.noise.teps_rel_stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.noise.seconds_rel_stddev, 0.0);
  EXPECT_EQ(r.config.repetitions, 2);
  EXPECT_EQ(r.config.sources, 2);
}

TEST(BenchRecordBuilder, SingleRepetitionHasZeroNoise) {
  BenchRecordBuilder b;
  const std::vector<bfs::RunReport> rep{fake_report(0.5, 0.2, 0.3)};
  b.add_repetition(1, rep, 1000);
  const BenchRecord r = b.finish();
  EXPECT_DOUBLE_EQ(r.noise.teps_rel_stddev, 0.0);
  EXPECT_EQ(r.teps.count, 1u);
}

// End-to-end: a record produced from a real traced engine run must parse
// back under the current schema with all three layers populated.
TEST(BenchRecord, EngineEmittedRecordIsSchemaValid) {
  graph::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  const auto built = graph::build_graph(graph::generate_rmat(params));

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 16;
  opts.trace = true;
  opts.metrics = true;
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto comps = graph::connected_components(engine.csr());
  const auto sources = graph::sample_sources(engine.csr(), comps, 2, 42);

  BenchRecordBuilder b;
  b.record().name = "engine_smoke";
  b.record().config.scale = params.scale;
  b.record().config.cores = engine.cores_used();
  const auto batch = engine.run_batch(sources, built.directed_edge_count);
  ASSERT_EQ(batch.failed, 0) << batch.first_error;
  b.add_repetition(42, batch.reports, built.directed_edge_count,
                   batch.validated, batch.failed);
  const auto profile = engine.run(sources.front());
  const int ranks = engine.cores_used() / engine.options().threads_per_rank;
  b.attach_profile(engine.tracer(), engine.metrics(), profile.report, ranks);
  const BenchRecord r = b.finish();

  const BenchRecord back = parse_bench_record(bench_record_to_json(r));
  EXPECT_EQ(back.schema_version, kBenchRecordSchemaVersion);
  EXPECT_EQ(back.teps.count, 2u);
  EXPECT_GT(back.harmonic_mean_teps, 0.0);
  EXPECT_FALSE(back.levels.empty());
  EXPECT_EQ(back.imbalance.ranks, ranks);
  ASSERT_FALSE(back.imbalance.wait_heatmap.empty());
  EXPECT_EQ(back.imbalance.wait_heatmap.size(),
            back.imbalance.level_ids.size());
  for (const auto& row : back.imbalance.wait_heatmap) {
    EXPECT_EQ(row.size(), static_cast<std::size_t>(ranks));
  }
  EXPECT_FALSE(back.counters.empty());
}

}  // namespace
}  // namespace dbfs::obs
