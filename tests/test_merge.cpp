#include "sparse/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/prng.hpp"

namespace dbfs::sparse {
namespace {

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(KaryHeap, PopsInSortedOrder) {
  KaryHeap<int, IntLess> heap;
  for (int x : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) heap.push(x);
  std::vector<int> out;
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 10u);
}

TEST(KaryHeap, ReplaceTopKeepsOrder) {
  KaryHeap<int, IntLess> heap;
  for (int x : {2, 4, 6, 8}) heap.push(x);
  heap.replace_top(10);  // 2 -> 10
  std::vector<int> out;
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  EXPECT_EQ(out, (std::vector<int>{4, 6, 8, 10}));
}

TEST(KaryHeap, DuplicatesSupported) {
  KaryHeap<int, IntLess> heap;
  for (int x : {3, 3, 3, 1, 1}) heap.push(x);
  std::vector<int> out;
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  EXPECT_EQ(out, (std::vector<int>{1, 1, 3, 3, 3}));
}

TEST(KaryHeap, RandomizedSortsLikeStdSort) {
  util::Xoshiro256 rng{77};
  std::vector<int> values;
  KaryHeap<int, IntLess, 4> heap;
  for (int i = 0; i < 10000; ++i) {
    const int v = static_cast<int>(rng.next_below(1000));
    values.push_back(v);
    heap.push(v);
  }
  std::sort(values.begin(), values.end());
  for (int expected : values) {
    EXPECT_EQ(heap.top(), expected);
    heap.pop();
  }
}

vid_t self_value(std::uint32_t, vid_t key) { return key; }
vid_t max_combine(vid_t a, vid_t b) { return std::max(a, b); }

TEST(MultiwayMerge, MergesDisjointRuns) {
  const std::vector<vid_t> r1{1, 4, 7};
  const std::vector<vid_t> r2{2, 5, 8};
  const std::vector<std::span<const vid_t>> runs{r1, r2};
  const auto v = multiway_merge<vid_t>(10, runs, self_value, max_combine);
  ASSERT_EQ(v.nnz(), 6);
  EXPECT_TRUE(v.invariants_hold());
}

TEST(MultiwayMerge, CombinesAcrossRuns) {
  const std::vector<vid_t> r1{3, 5};
  const std::vector<vid_t> r2{3, 7};
  const std::vector<vid_t> r3{3};
  const std::vector<std::span<const vid_t>> runs{r1, r2, r3};
  int combines = 0;
  const auto v = multiway_merge<vid_t>(
      10, runs, [](std::uint32_t run, vid_t key) {
        return key * 10 + static_cast<vid_t>(run);
      },
      [&combines](vid_t a, vid_t b) {
        ++combines;
        return std::max(a, b);
      });
  ASSERT_EQ(v.nnz(), 3);
  EXPECT_EQ(v.entries()[0].index, 3);
  EXPECT_EQ(v.entries()[0].value, 32);  // max over runs 0,1,2
  EXPECT_EQ(combines, 2);
}

TEST(MultiwayMerge, EmptyRunsIgnored) {
  const std::vector<vid_t> r1{1};
  const std::vector<vid_t> empty;
  const std::vector<std::span<const vid_t>> runs{empty, r1, empty};
  const auto v = multiway_merge<vid_t>(10, runs, self_value, max_combine);
  EXPECT_EQ(v.nnz(), 1);
}

TEST(MultiwayMerge, NoRunsEmptyResult) {
  const std::vector<std::span<const vid_t>> runs;
  const auto v = multiway_merge<vid_t>(10, runs, self_value, max_combine);
  EXPECT_EQ(v.nnz(), 0);
}

TEST(MultiwayMerge, RandomizedAgainstMapUnion) {
  util::Xoshiro256 rng{13};
  std::vector<std::vector<vid_t>> storage(8);
  std::map<vid_t, vid_t> expected;
  for (std::size_t r = 0; r < storage.size(); ++r) {
    const auto len = static_cast<int>(rng.next_below(50));
    for (int i = 0; i < len; ++i) {
      storage[r].push_back(static_cast<vid_t>(rng.next_below(200)));
    }
    std::sort(storage[r].begin(), storage[r].end());
    storage[r].erase(std::unique(storage[r].begin(), storage[r].end()),
                     storage[r].end());
    for (vid_t key : storage[r]) {
      const vid_t val = key * 100 + static_cast<vid_t>(r);
      auto [it, inserted] = expected.emplace(key, val);
      if (!inserted) it->second = std::max(it->second, val);
    }
  }
  std::vector<std::span<const vid_t>> runs(storage.begin(), storage.end());
  const auto v = multiway_merge<vid_t>(
      200, runs,
      [](std::uint32_t run, vid_t key) {
        return key * 100 + static_cast<vid_t>(run);
      },
      max_combine);
  ASSERT_EQ(static_cast<std::size_t>(v.nnz()), expected.size());
  auto it = expected.begin();
  for (const auto& e : v.entries()) {
    EXPECT_EQ(e.index, it->first);
    EXPECT_EQ(e.value, it->second);
    ++it;
  }
}

}  // namespace
}  // namespace dbfs::sparse
