#include "model/clocks.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dbfs::model {
namespace {

TEST(VirtualClocks, StartAtZero) {
  VirtualClocks c{4};
  EXPECT_EQ(c.ranks(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(c.now(r), 0.0);
    EXPECT_DOUBLE_EQ(c.comm_time(r), 0.0);
    EXPECT_DOUBLE_EQ(c.compute_time(r), 0.0);
  }
}

TEST(VirtualClocks, ComputeAdvancesOneRank) {
  VirtualClocks c{2};
  c.advance_compute(0, 1.5);
  EXPECT_DOUBLE_EQ(c.now(0), 1.5);
  EXPECT_DOUBLE_EQ(c.compute_time(0), 1.5);
  EXPECT_DOUBLE_EQ(c.now(1), 0.0);
}

TEST(VirtualClocks, CollectiveSynchronizesToSlowest) {
  VirtualClocks c{3};
  c.advance_compute(0, 1.0);
  c.advance_compute(1, 3.0);
  // rank 2 did nothing.
  const std::vector<int> group{0, 1, 2};
  c.collective(group, 0.5);
  // All leave at max(3.0) + 0.5.
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(c.now(r), 3.5);
  // Waiting + transfer charged as comm: rank 0 waited 2.0 + 0.5 transfer.
  EXPECT_DOUBLE_EQ(c.comm_time(0), 2.5);
  EXPECT_DOUBLE_EQ(c.comm_time(1), 0.5);
  EXPECT_DOUBLE_EQ(c.comm_time(2), 3.5);
}

TEST(VirtualClocks, SubgroupCollectiveLeavesOthersUntouched) {
  VirtualClocks c{4};
  c.advance_compute(3, 9.0);
  const std::vector<int> group{0, 1};
  c.collective(group, 1.0);
  EXPECT_DOUBLE_EQ(c.now(0), 1.0);
  EXPECT_DOUBLE_EQ(c.now(1), 1.0);
  EXPECT_DOUBLE_EQ(c.now(2), 0.0);
  EXPECT_DOUBLE_EQ(c.now(3), 9.0);
}

TEST(VirtualClocks, VaryingCostsAllLeaveAtMax) {
  VirtualClocks c{3};
  const std::vector<int> group{0, 1, 2};
  const std::vector<double> costs{1.0, 5.0, 2.0};
  c.collective_varying(group, costs);
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(c.now(r), 5.0);
  EXPECT_DOUBLE_EQ(c.comm_time(0), 5.0);
}

TEST(VirtualClocks, MaxNow) {
  VirtualClocks c{3};
  c.advance_compute(1, 7.0);
  EXPECT_DOUBLE_EQ(c.max_now(), 7.0);
}

TEST(VirtualClocks, SplitsCommAndCompute) {
  VirtualClocks c{2};
  c.advance_compute(0, 2.0);
  c.advance_compute(1, 2.0);
  const std::vector<int> group{0, 1};
  c.collective(group, 1.0);
  c.advance_compute(0, 1.0);
  EXPECT_DOUBLE_EQ(c.compute_time(0), 3.0);
  EXPECT_DOUBLE_EQ(c.comm_time(0), 1.0);
  EXPECT_DOUBLE_EQ(c.now(0), 4.0);
}

TEST(VirtualClocks, ResetZeroesEverything) {
  VirtualClocks c{2};
  c.advance_compute(0, 2.0);
  const std::vector<int> group{0, 1};
  c.collective(group, 1.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.max_now(), 0.0);
  EXPECT_DOUBLE_EQ(c.comm_time(1), 0.0);
  EXPECT_DOUBLE_EQ(c.compute_time(0), 0.0);
}

TEST(VirtualClocks, RepeatedCollectivesAccumulateWaits) {
  VirtualClocks c{2};
  const std::vector<int> group{0, 1};
  for (int i = 0; i < 10; ++i) {
    c.advance_compute(0, 1.0);  // rank 1 always idles
    c.collective(group, 0.1);
  }
  EXPECT_NEAR(c.comm_time(1), 10.0 * 1.1, 1e-9);
  EXPECT_NEAR(c.comm_time(0), 10.0 * 0.1, 1e-9);
}

}  // namespace
}  // namespace dbfs::model
