#include "bfs/serial.hpp"

#include <gtest/gtest.h>

#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

TEST(SerialBfs, PathDistances) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(6));
  const auto out = serial_bfs(g, 0);
  for (vid_t v = 0; v < 6; ++v) {
    EXPECT_EQ(out.level[v], v);
  }
  EXPECT_EQ(out.parent[0], 0);
  EXPECT_EQ(out.parent[3], 2);
}

TEST(SerialBfs, PathFromMiddle) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(7));
  const auto out = serial_bfs(g, 3);
  EXPECT_EQ(out.level[0], 3);
  EXPECT_EQ(out.level[6], 3);
  EXPECT_EQ(out.level[3], 0);
}

TEST(SerialBfs, StarIsOneLevel) {
  const auto g = graph::CsrGraph::from_edges(test::star_edges(100));
  const auto out = serial_bfs(g, 0);
  for (vid_t v = 1; v < 100; ++v) {
    EXPECT_EQ(out.level[v], 1);
    EXPECT_EQ(out.parent[v], 0);
  }
  EXPECT_EQ(out.report.levels.size(), 2u);  // frontier levels 0 and 1
}

TEST(SerialBfs, DisconnectedUnreached) {
  const auto g = graph::CsrGraph::from_edges(test::two_triangles());
  const auto out = serial_bfs(g, 0);
  EXPECT_EQ(out.parent[3], kNoVertex);
  EXPECT_EQ(out.level[4], kUnreached);
  EXPECT_EQ(out.parent[6], kNoVertex);
  EXPECT_NE(out.level[2], kUnreached);
}

TEST(SerialBfs, MatchesReferenceLevels) {
  const auto built = test::rmat_graph(10);
  const auto out = serial_bfs(built.csr, 0);
  const auto ref = graph::reference_levels(built.csr, 0);
  EXPECT_EQ(out.level, ref);
}

TEST(SerialBfs, PassesGraph500Validation) {
  const auto built = test::rmat_graph(10);
  const auto out = serial_bfs(built.csr, 5);
  const auto v = graph::validate_bfs_tree(
      built.csr, 5, out.parent, graph::reference_levels(built.csr, 5));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(SerialBfs, LevelStatsConsistent) {
  const auto built = test::rmat_graph(9);
  const auto out = serial_bfs(built.csr, 0);
  vid_t visited = 0;
  for (const auto& l : out.report.levels) visited += l.newly_visited;
  vid_t expected = 0;
  for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
    if (out.level[v] > 0) ++expected;  // excludes source and unreached
  }
  EXPECT_EQ(visited, expected);
  EXPECT_GT(out.report.edges_traversed, 0);
}

TEST(SerialBfs, FrontierSizesTelescope) {
  const auto built = test::rmat_graph(9);
  const auto out = serial_bfs(built.csr, 0);
  const auto& levels = out.report.levels;
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_EQ(levels[i].frontier, levels[i - 1].newly_visited);
  }
  EXPECT_EQ(levels[0].frontier, 1);
}

TEST(SerialBfs, RejectsBadSource) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(4));
  EXPECT_THROW(serial_bfs(g, -1), std::out_of_range);
  EXPECT_THROW(serial_bfs(g, 4), std::out_of_range);
}

TEST(SerialBfs, SingleVertexGraph) {
  graph::EdgeList e{1};
  const auto g = graph::CsrGraph::from_edges(e);
  const auto out = serial_bfs(g, 0);
  EXPECT_EQ(out.parent[0], 0);
  EXPECT_EQ(out.level[0], 0);
}

}  // namespace
}  // namespace dbfs::bfs
