// Differential fuzzing: every distributed implementation must agree with
// the serial reference on randomized (generator, density, seed, source,
// core-count, option) combinations. Each case validates the Graph500
// invariants as well — the broadest correctness net in the suite.
#include <gtest/gtest.h>

#include "bfs/direction_optimizing.hpp"
#include "bfs/serial.hpp"
#include "comm/wire_format.hpp"
#include "core/engine.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/validator.hpp"
#include "simmpi/fault.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace dbfs {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, AllAlgorithmsAgreeWithSerial) {
  util::Xoshiro256 rng{GetParam().seed};

  // Random graph family and shape.
  graph::EdgeList raw{0};
  switch (rng.next_below(3)) {
    case 0: {
      graph::RmatParams p;
      p.scale = 7 + static_cast<int>(rng.next_below(3));
      p.edge_factor = 4 << rng.next_below(3);
      p.seed = rng();
      raw = graph::generate_rmat(p);
      break;
    }
    case 1: {
      graph::ErdosRenyiParams p;
      p.num_vertices = vid_t{1} << (7 + rng.next_below(3));
      p.edge_probability =
          static_cast<double>(4 + rng.next_below(20)) /
          static_cast<double>(p.num_vertices);
      p.seed = rng();
      raw = graph::generate_erdos_renyi(p);
      break;
    }
    default: {
      graph::WebcrawlParams p;
      p.num_vertices = vid_t{1} << (8 + rng.next_below(3));
      p.target_diameter = 10 + static_cast<int>(rng.next_below(40));
      p.seed = rng();
      raw = graph::generate_webcrawl(p);
      break;
    }
  }

  graph::BuildOptions build;
  build.shuffle = rng.next_below(2) == 0;
  build.shuffle_seed = rng();
  const auto built = graph::build_graph(std::move(raw), build);
  const vid_t n = built.csr.num_vertices();

  // Random source with at least one edge.
  vid_t source = test::hub_source(built.csr);
  for (int tries = 0; tries < 20; ++tries) {
    const auto candidate =
        static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (built.csr.degree(candidate) > 0) {
      source = candidate;
      break;
    }
  }

  const auto serial = bfs::serial_bfs(built.csr, source);
  const auto reference = graph::reference_levels(built.csr, source);

  const core::Algorithm algorithms[] = {
      core::Algorithm::kOneDFlat, core::Algorithm::kOneDHybrid,
      core::Algorithm::kTwoDFlat, core::Algorithm::kTwoDHybrid};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions opts;
    opts.algorithm = algorithm;
    opts.cores = 1 << (1 + rng.next_below(7));  // 2..128
    opts.machine = rng.next_below(2) == 0 ? model::franklin()
                                          : model::hopper();
    opts.backend = static_cast<sparse::SpmsvBackend>(rng.next_below(3));
    if ((algorithm == core::Algorithm::kTwoDFlat ||
         algorithm == core::Algorithm::kTwoDHybrid) &&
        rng.next_below(3) == 0) {
      opts.triangular_storage = true;
    }
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);

    EXPECT_EQ(out.level, serial.level)
        << core::to_string(algorithm) << " cores=" << opts.cores
        << " seed=" << GetParam().seed;
    const auto v =
        graph::validate_bfs_tree(built.csr, source, out.parent, reference);
    EXPECT_TRUE(v.ok) << core::to_string(algorithm)
                      << " seed=" << GetParam().seed << ": " << v.error;
  }

  // Hybrid direction-optimized 2D joins the same net: the per-level
  // alpha-beta decisions must never change the answer, across every
  // wire format and grid shape. Forced bottom-up rides along as the
  // harsher variant (pull on every level after the first).
  const comm::WireFormat wires[] = {
      comm::WireFormat::kRaw, comm::WireFormat::kSieve,
      comm::WireFormat::kBitmap, comm::WireFormat::kVarint,
      comm::WireFormat::kAuto};
  const core::Algorithm two_d[] = {core::Algorithm::kTwoDFlat,
                                   core::Algorithm::kTwoDHybrid};
  for (core::Algorithm algorithm : two_d) {
    core::EngineOptions opts;
    opts.algorithm = algorithm;
    opts.cores = 1 << (1 + rng.next_below(7));  // 2..128
    opts.wire_format = wires[rng.next_below(5)];
    opts.direction = rng.next_below(4) == 0 ? bfs::DirectionMode::kBottomUp
                                            : bfs::DirectionMode::kHybrid;
    // Sweep the switch thresholds too: they change *when* the direction
    // flips, never the level structure.
    opts.alpha = static_cast<double>(1 + rng.next_below(64));
    opts.beta = static_cast<double>(1 + rng.next_below(64));
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);

    EXPECT_EQ(out.level, serial.level)
        << core::to_string(algorithm) << " direction="
        << bfs::to_string(opts.direction) << " wire="
        << comm::to_string(opts.wire_format) << " cores=" << opts.cores
        << " seed=" << GetParam().seed;
    const auto v =
        graph::validate_bfs_tree(built.csr, source, out.parent, reference);
    EXPECT_TRUE(v.ok) << core::to_string(algorithm) << " direction="
                      << bfs::to_string(opts.direction)
                      << " seed=" << GetParam().seed << ": " << v.error;
  }

  // Direction-optimizing BFS is host-side but shares the differential
  // net: its hybrid top-down/bottom-up switching must never change the
  // level structure, and its parents must validate.
  const auto diropt = bfs::direction_optimizing_bfs(built.csr, source);
  EXPECT_EQ(diropt.out.level, serial.level)
      << "direction-optimizing seed=" << GetParam().seed;
  const auto dv = graph::validate_bfs_tree(built.csr, source,
                                           diropt.out.parent, reference);
  EXPECT_TRUE(dv.ok) << "direction-optimizing seed=" << GetParam().seed
                     << ": " << dv.error;
}

// Chaos mode: the same differential net, but each engine runs under a
// randomized fault plan — stragglers, transient collective failures, and
// payload corruption. The contract is all-or-nothing: a run either
// completes agreeing exactly with the serial reference, or aborts loudly
// with a structured FaultError. A silently wrong answer is the only
// failure mode.
TEST_P(DifferentialFuzz, ChaosRunsMatchSerialOrFailLoudly) {
  util::Xoshiro256 rng{GetParam().seed * 0x9e3779b9ULL + 17};

  graph::RmatParams p;
  p.scale = 8 + static_cast<int>(rng.next_below(2));
  p.edge_factor = 8;
  p.seed = rng();
  graph::BuildOptions build;
  build.shuffle_seed = rng();
  const auto built = graph::build_graph(graph::generate_rmat(p), build);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const auto serial = bfs::serial_bfs(built.csr, source);
  const auto reference = graph::reference_levels(built.csr, source);

  const core::Algorithm algorithms[] = {
      core::Algorithm::kOneDFlat, core::Algorithm::kOneDHybrid,
      core::Algorithm::kTwoDFlat, core::Algorithm::kTwoDHybrid};
  int completed = 0;
  int aborted = 0;
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions opts;
    opts.algorithm = algorithm;
    opts.cores = 1 << (2 + rng.next_below(5));  // 4..64
    opts.wire_format = static_cast<comm::WireFormat>(rng.next_below(5));
    if ((algorithm == core::Algorithm::kTwoDFlat ||
         algorithm == core::Algorithm::kTwoDHybrid) &&
        rng.next_below(2) == 0) {
      // Hybrid 2D under chaos: kills scheduled at levels 1..4 routinely
      // land mid-bottom-up-level, so recovery must replay the direction
      // decision trail — shrink and spare both appear via the policy
      // draw below.
      opts.direction = bfs::DirectionMode::kHybrid;
    }

    simmpi::FaultPlan& faults = opts.faults;
    faults.seed = rng();
    faults.collective_fail_rate =
        static_cast<double>(rng.next_below(30)) / 100.0;  // 0..0.29
    faults.corrupt_rate =
        static_cast<double>(rng.next_below(35)) / 100.0;  // 0..0.34
    const auto straggler_count = rng.next_below(3);
    for (std::uint64_t s = 0; s < straggler_count; ++s) {
      const int rank = static_cast<int>(rng.next_below(64));
      const double factor =
          1.5 + static_cast<double>(rng.next_below(40)) / 10.0;
      if (rng.next_below(2) == 0) {
        faults.compute_stragglers.emplace_back(rank, factor);
      } else {
        faults.nic_stragglers.emplace_back(rank, factor);
      }
    }
    // Fail-stop kills join the chaos mix: a recovered run must still
    // agree exactly; an unrecoverable one (spares exhausted) must abort
    // with the structured RankFailedError like any other fault.
    const auto kill_count = rng.next_below(3);
    for (std::uint64_t k = 0; k < kill_count; ++k) {
      simmpi::RankKill kill;
      kill.rank = static_cast<int>(rng.next_below(16));
      kill.at_level = 1 + static_cast<int>(rng.next_below(4));
      faults.rank_kills.push_back(kill);
    }
    if (!faults.rank_kills.empty()) {
      opts.recover.checkpoint_every = static_cast<int>(rng.next_below(3));
      opts.recover.policy = rng.next_below(2) == 0
                                ? recover::Policy::kShrink
                                : recover::Policy::kSpare;
      opts.recover.spare_ranks = 1;
    }
    // At-rest corruption joins the mix: random flips against every
    // resident-state target, always with auditing armed so each applied
    // flip is detected and rolled back — the completed-run contract
    // (exact agreement with serial) is unchanged.
    const auto flip_count = rng.next_below(3);
    for (std::uint64_t f = 0; f < flip_count; ++f) {
      simmpi::MemFlip flip;
      flip.rank = static_cast<int>(rng.next_below(16));
      flip.at_level = 1 + static_cast<int>(rng.next_below(4));
      flip.target = static_cast<simmpi::FlipTarget>(rng.next_below(5));
      faults.mem_flips.push_back(flip);
    }
    if (!faults.mem_flips.empty()) {
      opts.recover.audit_every = 1 + static_cast<int>(rng.next_below(2));
      if (opts.recover.checkpoint_every == 0) {
        opts.recover.checkpoint_every =
            1 + static_cast<int>(rng.next_below(2));
      }
    }

    core::Engine engine{built.edges, n, opts};
    try {
      const auto out = engine.run(source);
      ++completed;
      EXPECT_EQ(out.level, serial.level)
          << core::to_string(algorithm) << " chaos seed=" << faults.seed;
      const auto v =
          graph::validate_bfs_tree(built.csr, source, out.parent, reference);
      EXPECT_TRUE(v.ok) << core::to_string(algorithm)
                        << " chaos seed=" << faults.seed << ": " << v.error;
    } catch (const simmpi::FaultError& e) {
      // Loud structured abort: acceptable. Assert the error says enough
      // for a harness to triage it.
      ++aborted;
      EXPECT_FALSE(e.site().empty());
      EXPECT_FALSE(e.kind().empty());
      EXPECT_GT(e.attempts(), 0);
    }
  }
  EXPECT_EQ(completed + aborted, 4);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 12; ++s) cases.push_back({s * 7919});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace dbfs
