#include "core/teps.hpp"

#include <gtest/gtest.h>

namespace dbfs::core {
namespace {

bfs::RunReport report_with_seconds(double seconds) {
  bfs::RunReport r;
  r.total_seconds = seconds;
  return r;
}

TEST(Teps, SingleRun) {
  const std::vector<bfs::RunReport> reports{report_with_seconds(2.0)};
  const auto stats = compute_teps(reports, 1000);
  EXPECT_DOUBLE_EQ(stats.harmonic_mean, 500.0);
  EXPECT_DOUBLE_EQ(stats.mean_seconds, 2.0);
}

TEST(Teps, HarmonicMeanEqualsTotalOverTotal) {
  // Graph500 identity: harmonic mean of (m/t_i) == k*m / sum(t_i).
  const std::vector<bfs::RunReport> reports{
      report_with_seconds(1.0), report_with_seconds(2.0),
      report_with_seconds(4.0)};
  const eid_t m = 700;
  const auto stats = compute_teps(reports, m);
  const double expected = 3.0 * 700.0 / (1.0 + 2.0 + 4.0);
  EXPECT_NEAR(stats.harmonic_mean, expected, 1e-9);
}

TEST(Teps, HarmonicLeqMean) {
  const std::vector<bfs::RunReport> reports{
      report_with_seconds(0.5), report_with_seconds(5.0)};
  const auto stats = compute_teps(reports, 100);
  EXPECT_LE(stats.harmonic_mean, stats.samples.mean);
}

TEST(Teps, GtepsScaling) {
  const std::vector<bfs::RunReport> reports{report_with_seconds(1.0)};
  const auto stats = compute_teps(reports, 2'000'000'000);
  EXPECT_NEAR(stats.gteps, 2.0, 1e-9);
}

TEST(Teps, EmptyInput) {
  const auto stats = compute_teps({}, 100);
  EXPECT_EQ(stats.harmonic_mean, 0.0);
  EXPECT_EQ(stats.mean_seconds, 0.0);
}

TEST(Teps, ZeroTimeRunYieldsZeroSample) {
  const std::vector<bfs::RunReport> reports{report_with_seconds(0.0)};
  const auto stats = compute_teps(reports, 100);
  EXPECT_EQ(stats.harmonic_mean, 0.0);
}

}  // namespace
}  // namespace dbfs::core
