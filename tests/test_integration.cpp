// Cross-module integration tests: every distributed algorithm against
// every graph family, validated by the Graph500 checker, with property
// sweeps over (algorithm, cores, source).
#include <gtest/gtest.h>

#include <tuple>

#include "bfs/serial.hpp"
#include "core/engine.hpp"
#include "dist/local_graph1d.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs {
namespace {

using core::Algorithm;

struct IntegrationCase {
  Algorithm algorithm;
  int cores;
};

class AllAlgorithmsAllCores
    : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(AllAlgorithmsAllCores, RmatValidated) {
  const auto built = test::rmat_graph(9, 8, 42);
  const vid_t n = built.csr.num_vertices();
  core::EngineOptions opts;
  opts.algorithm = GetParam().algorithm;
  opts.cores = GetParam().cores;
  opts.machine = model::hopper();
  core::Engine engine{built.edges, n, opts};

  const auto comps = graph::connected_components(engine.csr());
  const auto sources = graph::sample_sources(engine.csr(), comps, 2, 7);
  for (vid_t source : sources) {
    const auto out = engine.run(source);
    const auto v = graph::validate_bfs_tree(
        engine.csr(), source, out.parent,
        graph::reference_levels(engine.csr(), source));
    EXPECT_TRUE(v.ok) << core::to_string(GetParam().algorithm) << " cores="
                      << GetParam().cores << ": " << v.error;
  }
}

std::vector<IntegrationCase> integration_cases() {
  std::vector<IntegrationCase> cases;
  for (Algorithm a :
       {Algorithm::kOneDFlat, Algorithm::kOneDHybrid, Algorithm::kTwoDFlat,
        Algorithm::kTwoDHybrid}) {
    for (int cores : {4, 16, 36}) {
      cases.push_back({a, cores});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithmsAllCores, ::testing::ValuesIn(integration_cases()),
    [](const auto& info) {
      std::string name = core::to_string(info.param.algorithm);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_c" + std::to_string(info.param.cores);
    });

TEST(Integration, ErdosRenyiAllAlgorithmsAgree) {
  graph::ErdosRenyiParams params;
  params.num_vertices = 1 << 9;
  params.edge_probability = 16.0 / (1 << 9);
  auto built = graph::build_graph(graph::generate_erdos_renyi(params));
  const vid_t n = built.csr.num_vertices();
  const auto serial = bfs::serial_bfs(built.csr, 0);
  for (Algorithm a : {Algorithm::kOneDFlat, Algorithm::kTwoDFlat}) {
    core::EngineOptions opts;
    opts.algorithm = a;
    opts.cores = 16;
    core::Engine engine{built.edges, n, opts};
    EXPECT_EQ(engine.run(0).level, serial.level) << core::to_string(a);
  }
}

TEST(Integration, WebcrawlHighDiameterAllAlgorithms) {
  graph::WebcrawlParams params;
  params.num_vertices = 1 << 12;
  params.target_diameter = 40;
  auto built = graph::build_graph(graph::generate_webcrawl(params));
  const vid_t n = built.csr.num_vertices();
  const auto serial = bfs::serial_bfs(built.csr, 0);
  ASSERT_GT(serial.report.levels.size(), 25u);  // genuinely high diameter
  for (Algorithm a : {Algorithm::kOneDFlat, Algorithm::kTwoDFlat,
                      Algorithm::kTwoDHybrid}) {
    core::EngineOptions opts;
    opts.algorithm = a;
    opts.cores = 16;
    core::Engine engine{built.edges, n, opts};
    EXPECT_EQ(engine.run(0).level, serial.level) << core::to_string(a);
  }
}

TEST(Integration, ShuffleDoesNotChangeDistances) {
  // Relabeling is a graph isomorphism: distances must transfer through
  // the permutation.
  graph::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  const auto raw = graph::generate_rmat(params);

  graph::BuildOptions no_shuffle;
  no_shuffle.shuffle = false;
  const auto plain = graph::build_graph(raw, no_shuffle);

  graph::BuildOptions with_shuffle;
  with_shuffle.shuffle = true;
  with_shuffle.shuffle_seed = 99;
  const auto shuffled = graph::build_graph(raw, with_shuffle);

  const vid_t source_old = 5;
  const auto plain_out = bfs::serial_bfs(plain.csr, source_old);
  // new_to_old[new] == old  =>  find the shuffled id of vertex 5.
  vid_t source_new = kNoVertex;
  for (vid_t v = 0; v < static_cast<vid_t>(shuffled.new_to_old.size()); ++v) {
    if (shuffled.new_to_old[v] == source_old) {
      source_new = v;
      break;
    }
  }
  ASSERT_NE(source_new, kNoVertex);
  const auto shuffled_out = bfs::serial_bfs(shuffled.csr, source_new);
  for (vid_t v = 0; v < plain.csr.num_vertices(); ++v) {
    EXPECT_EQ(plain_out.level[shuffled.new_to_old[v]], shuffled_out.level[v]);
  }
}

TEST(Integration, ShuffleBalancesEdgeLoad) {
  // §4.4: with the shuffle, per-rank edge counts are near-uniform even on
  // skewed R-MAT graphs.
  graph::RmatParams params;
  params.scale = 12;
  params.edge_factor = 16;
  const auto raw = graph::generate_rmat(params);
  const int ranks = 16;
  auto edge_imbalance = [&](bool shuffle) {
    graph::BuildOptions build;
    build.shuffle = shuffle;
    const auto built = graph::build_graph(raw, build);
    const auto lg = dist::LocalGraph1D::build(built.edges,
                                              built.csr.num_vertices(), ranks);
    std::vector<double> loads;
    for (int r = 0; r < ranks; ++r) {
      loads.push_back(static_cast<double>(lg.local_edges(r)));
    }
    return util::imbalance(loads);
  };
  const double shuffled = edge_imbalance(true);
  const double unshuffled = edge_imbalance(false);
  // R-MAT concentrates edges in the low-id quadrant; the shuffle must
  // repair most of that skew (hub degrees keep it from being perfect).
  EXPECT_LT(shuffled, 2.0);
  EXPECT_LT(shuffled, unshuffled);
}

TEST(Integration, TepsDenominatorIndependentOfAlgorithm) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  core::EngineOptions o1;
  o1.algorithm = Algorithm::kOneDFlat;
  o1.cores = 16;
  core::EngineOptions o2;
  o2.algorithm = Algorithm::kTwoDFlat;
  o2.cores = 16;
  core::Engine e1{built.edges, n, o1};
  core::Engine e2{built.edges, n, o2};
  // Both traverse the same component: identical edge counts.
  const vid_t source = test::hub_source(built.csr);
  EXPECT_EQ(e1.run(source).report.edges_traversed,
            e2.run(source).report.edges_traversed);
}

}  // namespace
}  // namespace dbfs
