// Tests for the §7 triangular-storage optimization: half the matrix
// memory, same BFS answers, via a scan-based transpose product per level.
#include <gtest/gtest.h>

#include "bfs/bfs2d.hpp"
#include "bfs/serial.hpp"
#include "dist/partition2d.hpp"
#include "graph/validator.hpp"
#include "sparse/spmsv.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace dbfs {
namespace {

TEST(TriangularPartition, StoresHalfTheEntries) {
  const auto built = test::rmat_graph(10);
  const simmpi::ProcessGrid grid{4};
  const dist::Partition2D full{built.edges, built.csr.num_vertices(), grid};
  const dist::Partition2D tri{built.edges, built.csr.num_vertices(), grid,
                              /*triangular=*/true};
  // Symmetric, loop-free input: exactly half the entries survive.
  EXPECT_EQ(tri.total_nnz() * 2, full.total_nnz());
  EXPECT_LT(tri.memory_bytes(), full.memory_bytes() * 2 / 3);
  EXPECT_TRUE(tri.triangular());
  EXPECT_FALSE(full.triangular());
}

TEST(TriangularPartition, KeepsOnlyUpperWedge) {
  const auto built = test::rmat_graph(8);
  const simmpi::ProcessGrid grid{3};
  const dist::Partition2D tri{built.edges, built.csr.num_vertices(), grid,
                              true};
  const auto& blocks = tri.blocks();
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    const int i = grid.row_of(rank);
    const int j = grid.col_of(rank);
    const auto& b = tri.block(rank);
    if (i > j) {
      EXPECT_EQ(b.nnz(), 0) << "lower-wedge block (" << i << "," << j
                            << ") must be empty";
    }
    if (i == j) {
      // Diagonal blocks: strictly upper local triangle (row < col).
      for (vid_t k = 0; k < b.nzc(); ++k) {
        const vid_t col = b.nonzero_column_id(k);
        for (vid_t row : b.nonzero_column(k)) {
          EXPECT_LT(row, col);
        }
      }
    }
    (void)blocks;
  }
}

TEST(SpmsvTranspose, MatchesExplicitTranspose) {
  // y = A^T x computed by the scan must equal the normal product with the
  // explicitly transposed matrix.
  util::Xoshiro256 rng{5};
  std::vector<sparse::Triple> triples;
  std::vector<sparse::Triple> transposed;
  for (int i = 0; i < 300; ++i) {
    const auto r = static_cast<vid_t>(rng.next_below(50));
    const auto c = static_cast<vid_t>(rng.next_below(50));
    triples.push_back(sparse::Triple{r, c});
    transposed.push_back(sparse::Triple{c, r});
  }
  const auto a = sparse::DcscMatrix::from_triples(50, 50, triples);
  const auto at = sparse::DcscMatrix::from_triples(50, 50, transposed);

  std::vector<vid_t> xval(50, kNoVertex);
  std::vector<sparse::SvEntry<vid_t>> xe;
  for (vid_t v = 0; v < 50; v += 3) {
    xval[static_cast<std::size_t>(v)] = v + 100;
    xe.push_back({v, v + 100});
  }
  const auto x = sparse::SparseVector<vid_t>::from_sorted(50, xe);

  auto mul = [](vid_t, vid_t, vid_t fv) { return fv; };
  auto comb = [](vid_t p, vid_t q) { return std::max(p, q); };

  const auto scan = sparse::spmsv_transpose<vid_t>(
      a,
      [&xval](vid_t row) -> const vid_t* {
        const vid_t* v = &xval[static_cast<std::size_t>(row)];
        return *v == kNoVertex ? nullptr : v;
      },
      mul, comb);
  sparse::Spa<vid_t> spa{50};
  const auto direct = sparse::spmsv<vid_t>(at, x, mul, comb,
                                           sparse::SpmsvBackend::kAuto, &spa);
  EXPECT_EQ(scan.entries(), direct.entries());
}

TEST(SpmsvTranspose, ScansEveryStoredNonzero) {
  const auto a = sparse::DcscMatrix::from_triples(
      8, 8, {{0, 1}, {2, 1}, {4, 6}, {5, 6}, {7, 7}});
  sparse::SpmsvStats st;
  const auto y = sparse::spmsv_transpose<vid_t>(
      a, [](vid_t) -> const vid_t* { return nullptr; },
      [](vid_t, vid_t, vid_t v) { return v; },
      [](vid_t p, vid_t q) { return std::max(p, q); }, &st);
  EXPECT_EQ(y.nnz(), 0);
  // The §7 tradeoff: the scan touches all nnz even with an empty frontier.
  EXPECT_EQ(st.flops, a.nnz());
}

class TriangularBfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(TriangularBfsSweep, MatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  bfs::Bfs2DOptions opts;
  opts.cores = GetParam();
  opts.machine = model::franklin();
  opts.triangular_storage = true;
  bfs::Bfs2D bfs{built.edges, n, opts};
  const vid_t source = test::hub_source(built.csr);
  const auto out = bfs.run(source);
  const auto serial = bfs::serial_bfs(built.csr, source);
  EXPECT_EQ(out.level, serial.level) << "cores=" << GetParam();
}

TEST_P(TriangularBfsSweep, PassesValidation) {
  const auto built = test::rmat_graph(9, 8, 13);
  const vid_t n = built.csr.num_vertices();
  bfs::Bfs2DOptions opts;
  opts.cores = GetParam();
  opts.machine = model::hopper();
  opts.triangular_storage = true;
  bfs::Bfs2D bfs{built.edges, n, opts};
  const vid_t source = test::hub_source(built.csr);
  const auto out = bfs.run(source);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
}

INSTANTIATE_TEST_SUITE_P(Cores, TriangularBfsSweep,
                         ::testing::Values(1, 4, 16, 64));

TEST(TriangularBfs, HighDiameterGraph) {
  const auto edges = test::path_edges(40);
  bfs::Bfs2DOptions opts;
  opts.cores = 9;
  opts.triangular_storage = true;
  bfs::Bfs2D bfs{edges, 40, opts};
  const auto out = bfs.run(0);
  for (vid_t v = 0; v < 40; ++v) EXPECT_EQ(out.level[v], v);
}

TEST(TriangularBfs, HybridMode) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  bfs::Bfs2DOptions opts;
  opts.cores = 64;
  opts.threads_per_rank = 4;
  opts.triangular_storage = true;
  bfs::Bfs2D bfs{built.edges, n, opts};
  const vid_t source = test::hub_source(built.csr);
  const auto serial = bfs::serial_bfs(built.csr, source);
  EXPECT_EQ(bfs.run(source).level, serial.level);
}

TEST(TriangularBfs, RejectsDiagonalDistribution) {
  const auto edges = test::path_edges(8);
  bfs::Bfs2DOptions opts;
  opts.cores = 4;
  opts.triangular_storage = true;
  opts.vector_dist = dist::VectorDistKind::kDiagonal;
  EXPECT_THROW(bfs::Bfs2D(edges, 8, opts), std::invalid_argument);
}

TEST(TriangularBfs, SlowerButSameTrafficOrder) {
  // The space optimization costs compute (the per-level scan), and adds
  // pairwise transpose traffic; it must not explode communication.
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  bfs::Bfs2DOptions full;
  full.cores = 64;
  full.machine = model::franklin();
  bfs::Bfs2DOptions tri = full;
  tri.triangular_storage = true;
  bfs::Bfs2D bf{built.edges, n, full};
  bfs::Bfs2D bt{built.edges, n, tri};
  const vid_t source = test::hub_source(built.csr);
  const auto rf = bf.run(source).report;
  const auto rt = bt.run(source).report;
  EXPECT_GT(rt.comp_seconds_mean, rf.comp_seconds_mean);
  EXPECT_LT(rt.total_seconds, rf.total_seconds * 10);
  EXPECT_NE(rt.algorithm.find("-tri"), std::string::npos);
}

}  // namespace
}  // namespace dbfs
