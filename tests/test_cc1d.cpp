#include "bfs/cc1d.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

// The distributed labels must induce the same partition of vertices as
// the host-side connected_components (labels themselves may differ —
// ours are minima, the host's are BFS roots).
void expect_same_partition(const std::vector<vid_t>& ours,
                           const std::vector<vid_t>& host) {
  ASSERT_EQ(ours.size(), host.size());
  std::map<vid_t, vid_t> forward;
  std::map<vid_t, vid_t> backward;
  for (std::size_t v = 0; v < ours.size(); ++v) {
    auto [fit, finserted] = forward.emplace(ours[v], host[v]);
    EXPECT_EQ(fit->second, host[v]) << "vertex " << v;
    auto [bit, binserted] = backward.emplace(host[v], ours[v]);
    EXPECT_EQ(bit->second, ours[v]) << "vertex " << v;
  }
}

TEST(Cc1D, TwoTriangles) {
  const auto edges = test::two_triangles();
  Cc1DOptions opts;
  opts.ranks = 3;
  const auto result = connected_components_1d(edges, 7, opts);
  EXPECT_EQ(result.num_components, 3);  // two triangles + isolated vertex
  EXPECT_EQ(result.label[0], result.label[2]);
  EXPECT_EQ(result.label[3], result.label[5]);
  EXPECT_NE(result.label[0], result.label[3]);
  EXPECT_EQ(result.label[6], 6);
  // Labels are component minima.
  EXPECT_EQ(result.label[2], 0);
  EXPECT_EQ(result.label[4], 3);
}

class Cc1DRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(Cc1DRankSweep, MatchesHostComponents) {
  const auto built = test::rmat_graph(10, 4, 31);  // sparse: many components
  Cc1DOptions opts;
  opts.ranks = GetParam();
  const auto result = connected_components_1d(
      built.edges, built.csr.num_vertices(), opts);
  const auto host = graph::connected_components(built.csr);
  expect_same_partition(result.label, host.label);
  EXPECT_EQ(result.num_components, host.count);
}

INSTANTIATE_TEST_SUITE_P(Ranks, Cc1DRankSweep,
                         ::testing::Values(1, 2, 4, 16, 64));

TEST(Cc1D, PathNeedsDiameterRounds) {
  const auto edges = test::path_edges(50);
  Cc1DOptions opts;
  opts.ranks = 4;
  const auto result = connected_components_1d(edges, 50, opts);
  EXPECT_EQ(result.num_components, 1);
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(result.label[v], 0);
  // Label 0 propagates one hop per round.
  EXPECT_GE(result.rounds, 49);
  EXPECT_LE(result.rounds, 51);
}

TEST(Cc1D, StarConvergesInTwoRounds) {
  const auto edges = test::star_edges(64);
  Cc1DOptions opts;
  opts.ranks = 8;
  const auto result = connected_components_1d(edges, 64, opts);
  EXPECT_EQ(result.num_components, 1);
  EXPECT_LE(result.rounds, 3);
}

TEST(Cc1D, ReportIsPopulated) {
  const auto built = test::rmat_graph(9);
  Cc1DOptions opts;
  opts.ranks = 8;
  opts.machine = model::franklin();
  const auto result = connected_components_1d(
      built.edges, built.csr.num_vertices(), opts);
  EXPECT_GT(result.report.total_seconds, 0.0);
  EXPECT_GT(result.report.alltoall_bytes, 0u);
  EXPECT_EQ(result.report.levels.size(),
            static_cast<std::size_t>(result.rounds));
  EXPECT_EQ(result.report.algorithm, "cc-1d");
}

TEST(Cc1D, HybridLabelMatchesFlat) {
  const auto built = test::rmat_graph(9, 4, 8);
  Cc1DOptions flat;
  flat.ranks = 16;
  Cc1DOptions hybrid;
  hybrid.ranks = 4;
  hybrid.threads_per_rank = 4;
  const auto a =
      connected_components_1d(built.edges, built.csr.num_vertices(), flat);
  const auto b =
      connected_components_1d(built.edges, built.csr.num_vertices(), hybrid);
  EXPECT_EQ(a.label, b.label);
}

TEST(Cc1D, RejectsEmptyGraph) {
  graph::EdgeList empty{0};
  EXPECT_THROW(connected_components_1d(empty, 0, Cc1DOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::bfs
