// Additional Engine / report edge-case coverage beyond test_engine.cpp.
#include <gtest/gtest.h>

#include "bfs/cc1d.hpp"
#include "core/engine.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace dbfs::core {
namespace {

TEST(EngineExtra, SerialReportHasHostTiming) {
  const auto built = test::rmat_graph(9);
  EngineOptions opts;
  opts.algorithm = Algorithm::kSerial;
  Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  EXPECT_EQ(out.report.algorithm, "serial");
  EXPECT_EQ(out.report.machine, "host");
  EXPECT_GT(out.report.total_seconds, 0.0);
  EXPECT_EQ(out.report.alltoall_bytes, 0u);  // no network
}

TEST(EngineExtra, SharedReportNamesThreadingMode) {
  const auto built = test::rmat_graph(9);
  EngineOptions opts;
  opts.algorithm = Algorithm::kShared;
  Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  EXPECT_EQ(out.report.algorithm, "shared-benign");
}

TEST(EngineExtra, IsolatedSourceVisitsOnlyItself) {
  // A degree-0 source is legal per Graph500: the tree is {source}.
  graph::EdgeList e{5};
  e.add(1, 2);
  e.symmetrize();
  EngineOptions opts;
  opts.algorithm = Algorithm::kTwoDFlat;
  opts.cores = 4;
  Engine engine{e, 5, opts};
  const auto out = engine.run(0);
  EXPECT_EQ(out.parent[0], 0);
  EXPECT_EQ(out.level[0], 0);
  for (vid_t v = 1; v < 5; ++v) EXPECT_EQ(out.parent[v], kNoVertex);
}

TEST(EngineExtra, BatchWithEmptySourceList) {
  const auto built = test::rmat_graph(8);
  EngineOptions opts;
  opts.algorithm = Algorithm::kOneDFlat;
  opts.cores = 4;
  Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto batch = engine.run_batch({}, built.directed_edge_count);
  EXPECT_EQ(batch.validated, 0);
  EXPECT_EQ(batch.failed, 0);
  EXPECT_EQ(batch.harmonic_mean_teps, 0.0);
}

TEST(EngineExtra, TriangularThroughEngineMatchesFull) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  EngineOptions full;
  full.algorithm = Algorithm::kTwoDFlat;
  full.cores = 16;
  EngineOptions tri = full;
  tri.triangular_storage = true;
  Engine ef{built.edges, n, full};
  Engine et{built.edges, n, tri};
  EXPECT_EQ(ef.run(source).level, et.run(source).level);
}

TEST(EngineExtra, LevelWallTimesSumToTotal2D) {
  const auto built = test::rmat_graph(10);
  EngineOptions opts;
  opts.algorithm = Algorithm::kTwoDHybrid;
  opts.cores = 64;
  opts.machine = model::hopper();
  Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  double sum = 0;
  for (const auto& l : out.report.levels) sum += l.wall_seconds;
  EXPECT_NEAR(sum, out.report.total_seconds, 1e-9);
}

TEST(EngineExtra, CommPlusCompBoundsTotalPerRank) {
  const auto built = test::rmat_graph(10);
  EngineOptions opts;
  opts.algorithm = Algorithm::kTwoDFlat;
  opts.cores = 25;
  Engine engine{built.edges, built.csr.num_vertices(), opts};
  const auto out = engine.run(test::hub_source(built.csr));
  for (int r = 0; r < out.report.ranks; ++r) {
    // Each rank's busy + waiting time can't exceed the makespan.
    EXPECT_LE(out.report.per_rank_comm[r] + out.report.per_rank_comp[r],
              out.report.total_seconds * (1 + 1e-9));
  }
}

TEST(EngineExtra, CcAndBfsAgreeOnReachability) {
  // The CC kernel and a BFS from vertex v must agree on which vertices
  // share v's component.
  const auto built = test::rmat_graph(9, 4, 77);  // sparse: multi-component
  const vid_t n = built.csr.num_vertices();
  bfs::Cc1DOptions cc_opts;
  cc_opts.ranks = 8;
  const auto cc = bfs::connected_components_1d(built.edges, n, cc_opts);

  EngineOptions opts;
  opts.algorithm = Algorithm::kOneDFlat;
  opts.cores = 8;
  Engine engine{built.edges, n, opts};
  const vid_t source = test::hub_source(built.csr);
  const auto out = engine.run(source);
  for (vid_t v = 0; v < n; ++v) {
    const bool same_component = cc.label[v] == cc.label[source];
    const bool reached = out.level[v] != kUnreached;
    EXPECT_EQ(same_component, reached) << "vertex " << v;
  }
}

}  // namespace
}  // namespace dbfs::core
