#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dbfs::util {
namespace {

TEST(Summarize, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.harmonic_mean, 0.0);
}

TEST(Summarize, SingleSample) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 3.0 / (1.0 + 0.5 + 0.25));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, HarmonicMeanZeroWhenSampleZero) {
  const std::vector<double> v{0.0, 1.0, 2.0};
  EXPECT_EQ(summarize(v).harmonic_mean, 0.0);
}

TEST(Summarize, HarmonicNeverExceedsArithmetic) {
  const std::vector<double> v{0.5, 1.5, 2.5, 9.0, 3.25};
  const Summary s = summarize(v);
  EXPECT_LE(s.harmonic_mean, s.mean);
}

TEST(Summarize, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summarize, TailPercentiles) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i + 1);  // 1..100
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);  // interpolated at q*(n-1)
  EXPECT_NEAR(s.p99, 99.01, 1e-12);
  // n*(1-q) < 1 for q=0.999 at n=100: the quantile is unresolvable, so
  // the small-sample contract pins it to the max instead of reporting an
  // interpolated value that is just max-minus-noise.
  EXPECT_DOUBLE_EQ(s.p999, 100.0);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  EXPECT_GE(s.p95, s.p75);
}

TEST(Summarize, SmallSampleTailClamp) {
  // The boundary of the resolvable region: a quantile q is honored only
  // when n*(1-q) >= 1 (at least one sample beyond the interpolation
  // point). Below that the summary returns the max exactly, so five-rep
  // bench records never carry pseudo-precise p999 jitter.
  std::vector<double> five{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s5 = summarize(five);
  EXPECT_DOUBLE_EQ(s5.p95, 5.0);   // n=5 resolves only up to q=0.8
  EXPECT_DOUBLE_EQ(s5.p99, 5.0);
  EXPECT_DOUBLE_EQ(s5.p999, 5.0);
  EXPECT_NEAR(s5.p75, 4.0, 1e-12);  // still resolvable: n*(1-q) = 1.25

  // p95 needs n >= 20; exactly 20 sits on the boundary and resolves.
  std::vector<double> twenty(20);
  for (std::size_t i = 0; i < twenty.size(); ++i) {
    twenty[i] = static_cast<double>(i + 1);
  }
  const Summary s20 = summarize(twenty);
  EXPECT_NEAR(s20.p95, 19.05, 1e-12);  // interpolated, not the max
  EXPECT_DOUBLE_EQ(s20.p99, 20.0);     // unresolvable until n >= 100
  EXPECT_DOUBLE_EQ(s20.p999, 20.0);

  std::vector<double> nineteen(twenty.begin(), twenty.begin() + 19);
  const Summary s19 = summarize(nineteen);
  EXPECT_DOUBLE_EQ(s19.p95, 19.0);  // one short of resolvable: the max
}

TEST(Percentile, SmallSampleClampMatchesSummarize) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.999), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.99), 5.0);
  // q=0 and the median are unaffected by the tail clamp.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5), 3.0);
}

TEST(Summarize, TailPercentilesDegenerate) {
  const std::vector<double> single{2.5};
  const Summary one = summarize(single);
  EXPECT_DOUBLE_EQ(one.p95, 2.5);
  EXPECT_DOUBLE_EQ(one.p99, 2.5);
  EXPECT_DOUBLE_EQ(one.p999, 2.5);
  const Summary none = summarize({});
  EXPECT_DOUBLE_EQ(none.p95, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);
  EXPECT_DOUBLE_EQ(none.p999, 0.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 2.0), 3.0);
}

TEST(Imbalance, BalancedIsOne) {
  const std::vector<double> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
}

TEST(Imbalance, MaxOverMean) {
  const std::vector<double> v{1.0, 3.0};  // mean 2, max 3
  EXPECT_DOUBLE_EQ(imbalance(v), 1.5);
}

TEST(Imbalance, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(imbalance({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(zeros), 1.0);
}

TEST(Imbalance, SingleSampleIsBalanced) {
  const std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
}

}  // namespace
}  // namespace dbfs::util
