#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dbfs::util {
namespace {

TEST(Summarize, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.harmonic_mean, 0.0);
}

TEST(Summarize, SingleSample) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 3.0 / (1.0 + 0.5 + 0.25));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, HarmonicMeanZeroWhenSampleZero) {
  const std::vector<double> v{0.0, 1.0, 2.0};
  EXPECT_EQ(summarize(v).harmonic_mean, 0.0);
}

TEST(Summarize, HarmonicNeverExceedsArithmetic) {
  const std::vector<double> v{0.5, 1.5, 2.5, 9.0, 3.25};
  const Summary s = summarize(v);
  EXPECT_LE(s.harmonic_mean, s.mean);
}

TEST(Summarize, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summarize, TailPercentiles) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i + 1);  // 1..100
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);  // interpolated at q*(n-1)
  EXPECT_NEAR(s.p99, 99.01, 1e-12);
  EXPECT_NEAR(s.p999, 99.901, 1e-12);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  EXPECT_GE(s.p95, s.p75);
}

TEST(Summarize, TailPercentilesDegenerate) {
  const std::vector<double> single{2.5};
  const Summary one = summarize(single);
  EXPECT_DOUBLE_EQ(one.p95, 2.5);
  EXPECT_DOUBLE_EQ(one.p99, 2.5);
  EXPECT_DOUBLE_EQ(one.p999, 2.5);
  const Summary none = summarize({});
  EXPECT_DOUBLE_EQ(none.p95, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);
  EXPECT_DOUBLE_EQ(none.p999, 0.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 2.0), 3.0);
}

TEST(Imbalance, BalancedIsOne) {
  const std::vector<double> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
}

TEST(Imbalance, MaxOverMean) {
  const std::vector<double> v{1.0, 3.0};  // mean 2, max 3
  EXPECT_DOUBLE_EQ(imbalance(v), 1.5);
}

TEST(Imbalance, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(imbalance({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(zeros), 1.0);
}

TEST(Imbalance, SingleSampleIsBalanced) {
  const std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(imbalance(v), 1.0);
}

}  // namespace
}  // namespace dbfs::util
