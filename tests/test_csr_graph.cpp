#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/edge_list.hpp"

namespace dbfs::graph {
namespace {

EdgeList path_graph(vid_t n) {
  EdgeList e{n};
  for (vid_t v = 0; v + 1 < n; ++v) e.add(v, v + 1);
  e.symmetrize();
  return e;
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList{0});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(CsrGraph, IsolatedVertices) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList{5});
  EXPECT_EQ(g.num_vertices(), 5);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0);
}

TEST(CsrGraph, PathDegrees) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.num_edges(), 8);
}

TEST(CsrGraph, AdjacenciesSorted) {
  EdgeList e{5};
  e.add(0, 4);
  e.add(0, 2);
  e.add(0, 3);
  e.add(0, 1);
  const CsrGraph g = CsrGraph::from_edges(e);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(CsrGraph, DedupCollapsesParallelEdges) {
  EdgeList e{3};
  e.add(0, 1);
  e.add(0, 1);
  e.add(0, 2);
  const CsrGraph g = CsrGraph::from_edges(e, /*dedup=*/true);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(CsrGraph, NoDedupKeepsParallelEdges) {
  EdgeList e{3};
  e.add(0, 1);
  e.add(0, 1);
  const CsrGraph g = CsrGraph::from_edges(e, /*dedup=*/false);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(CsrGraph, SelfLoopsDroppedByDefault) {
  EdgeList e{3};
  e.add(1, 1);
  e.add(1, 2);
  const CsrGraph g = CsrGraph::from_edges(e);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.neighbors(1)[0], 2);
}

TEST(CsrGraph, SelfLoopsKeptOnRequest) {
  EdgeList e{3};
  e.add(1, 1);
  const CsrGraph g =
      CsrGraph::from_edges(e, /*dedup=*/true, /*drop_loops=*/false);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.neighbors(1)[0], 1);
}

TEST(CsrGraph, SymmetryDetection) {
  const CsrGraph sym = CsrGraph::from_edges(path_graph(4));
  EXPECT_TRUE(sym.is_symmetric());

  EdgeList directed{3};
  directed.add(0, 1);
  const CsrGraph asym = CsrGraph::from_edges(directed);
  EXPECT_FALSE(asym.is_symmetric());
}

TEST(CsrGraph, MaxDegree) {
  EdgeList e{5};
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  e.add(1, 2);
  const CsrGraph g = CsrGraph::from_edges(e);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(CsrGraph, OffsetsAreConsistent) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(100));
  const auto& off = g.offsets();
  ASSERT_EQ(off.size(), 101u);
  EXPECT_EQ(off.front(), 0);
  EXPECT_EQ(off.back(), g.num_edges());
  EXPECT_TRUE(std::is_sorted(off.begin(), off.end()));
}

}  // namespace
}  // namespace dbfs::graph
