#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/validator.hpp"

namespace dbfs::graph {
namespace {

TEST(Rmat, ProducesRequestedCounts) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const EdgeList e = generate_rmat(p);
  EXPECT_EQ(e.num_vertices(), 1 << 10);
  EXPECT_EQ(e.num_edges(), 8 * (1 << 10));
  EXPECT_TRUE(e.endpoints_in_range());
}

TEST(Rmat, DeterministicPerSeed) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 33;
  const EdgeList a = generate_rmat(p);
  const EdgeList b = generate_rmat(p);
  EXPECT_EQ(a.edges(), b.edges());
  p.seed = 34;
  const EdgeList c = generate_rmat(p);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Rmat, SkewedDegreeDistribution) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(p), /*dedup=*/false);
  const DegreeStats stats = degree_stats(g);
  // Graph500 R-MAT parameters produce hub vertices with degree far above
  // the mean; a uniform graph of this density would top out near ~40.
  EXPECT_GT(stats.max_degree, 20 * static_cast<eid_t>(stats.mean_degree));
}

TEST(Rmat, RejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_THROW(generate_rmat(p), std::invalid_argument);
  p.scale = 10;
  p.a = 0.9;
  p.b = 0.9;
  EXPECT_THROW(generate_rmat(p), std::invalid_argument);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  ErdosRenyiParams p;
  p.num_vertices = 1 << 10;
  p.edge_probability = 0.01;
  const EdgeList e = generate_erdos_renyi(p);
  const double expected = 0.01 * 1024.0 * 1024.0;
  EXPECT_NEAR(static_cast<double>(e.num_edges()), expected, expected * 0.1);
  EXPECT_TRUE(e.endpoints_in_range());
}

TEST(ErdosRenyi, ZeroProbabilityEmpty) {
  ErdosRenyiParams p;
  p.num_vertices = 100;
  p.edge_probability = 0.0;
  EXPECT_EQ(generate_erdos_renyi(p).num_edges(), 0);
}

TEST(ErdosRenyi, NearUniformDegrees) {
  ErdosRenyiParams p;
  p.num_vertices = 1 << 12;
  p.edge_probability = 16.0 / (1 << 12);
  const CsrGraph g =
      CsrGraph::from_edges(generate_erdos_renyi(p), /*dedup=*/false);
  const DegreeStats stats = degree_stats(g);
  // Poisson(16): max degree stays within a small multiple of the mean —
  // the regular-degree contrast case to R-MAT.
  EXPECT_LT(stats.max_degree, 5 * static_cast<eid_t>(stats.mean_degree));
}

TEST(Uniform, ExactEdgeCount) {
  UniformParams p;
  p.num_vertices = 500;
  p.num_edges = 4321;
  const EdgeList e = generate_uniform(p);
  EXPECT_EQ(e.num_edges(), 4321);
  EXPECT_TRUE(e.endpoints_in_range());
}

TEST(Webcrawl, HitsTargetDiameterRegime) {
  WebcrawlParams p;
  p.num_vertices = 1 << 14;
  p.target_diameter = 60;
  BuildOptions build;
  build.shuffle = false;
  const BuiltGraph built = build_graph(generate_webcrawl(p), build);
  // BFS from the first hub: the level count must be in the neighborhood
  // of the requested diameter (long-backbone regime), unlike R-MAT's <10.
  const auto levels = reference_levels(built.csr, 0);
  level_t max_level = 0;
  for (level_t l : levels) max_level = std::max(max_level, l);
  EXPECT_GE(max_level, 40);
  EXPECT_LE(max_level, 90);
}

TEST(Webcrawl, ConnectedByConstruction) {
  WebcrawlParams p;
  p.num_vertices = 4096;
  p.target_diameter = 30;
  BuildOptions build;
  build.shuffle = false;
  const BuiltGraph built = build_graph(generate_webcrawl(p), build);
  const auto levels = reference_levels(built.csr, 0);
  for (level_t l : levels) EXPECT_NE(l, kUnreached);
}

/// Hill estimator of the degree-distribution tail exponent from the top
/// k order statistics: alpha = 1 + k / sum(ln(d_i / d_k)).
double hill_tail_exponent(const CsrGraph& g, std::size_t k) {
  std::vector<double> degrees;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(static_cast<double>(g.degree(v)));
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += std::log(degrees[i] / degrees[k]);
  return 1.0 + static_cast<double>(k) / sum;
}

TEST(Webcrawl, TailExponentTracksRequestedAlpha) {
  // Regression for the inverse-CDF mapping: gamma must be
  // (alpha-1)/(alpha-2), not alpha itself. The old mapping made every
  // requested exponent come out near 2 (heavier tail for a *larger* knob),
  // so the fitted exponent neither tracked the request nor ordered
  // correctly between two requests.
  auto fitted = [](double alpha) {
    WebcrawlParams p;
    p.num_vertices = 1 << 15;
    p.target_diameter = 1;  // single community: pure preferential picks
    p.power_law_exponent = alpha;
    p.seed = 5;
    const CsrGraph g =
        CsrGraph::from_edges(generate_webcrawl(p), /*dedup=*/false);
    return hill_tail_exponent(g, 512);
  };
  const double lo = fitted(2.2);
  const double hi = fitted(3.5);
  EXPECT_LT(lo, hi);  // heavier requested tail => smaller fitted exponent
  EXPECT_NEAR(lo, 2.2, 0.45);
  EXPECT_NEAR(hi, 3.5, 0.9);
}

TEST(Webcrawl, RejectsInfiniteMeanExponent) {
  WebcrawlParams p;
  p.num_vertices = 1024;
  p.power_law_exponent = 2.0;
  EXPECT_THROW(generate_webcrawl(p), std::invalid_argument);
}

TEST(Webcrawl, SkewedIntraCommunityDegrees) {
  WebcrawlParams p;
  p.num_vertices = 1 << 14;
  p.target_diameter = 20;
  const CsrGraph g =
      CsrGraph::from_edges(generate_webcrawl(p), /*dedup=*/false);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max_degree, 10 * static_cast<eid_t>(stats.mean_degree));
}

}  // namespace
}  // namespace dbfs::graph
