#include "bfs/direction_optimizing.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

TEST(DirectionOptimizing, MatchesSerialOnRmat) {
  const auto built = test::rmat_graph(11, 16);
  const vid_t source = test::hub_source(built.csr);
  const auto result = direction_optimizing_bfs(built.csr, source);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level);
}

TEST(DirectionOptimizing, PassesValidation) {
  const auto built = test::rmat_graph(10, 16, 5);
  const vid_t source = test::hub_source(built.csr);
  const auto result = direction_optimizing_bfs(built.csr, source);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, result.out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(DirectionOptimizing, UsesBottomUpOnLowDiameterGraphs) {
  // Dense R-MAT: the middle levels cover most of the graph, so the
  // heuristic must fire and skip a large share of edge examinations.
  const auto built = test::rmat_graph(12, 16);
  const vid_t source = test::hub_source(built.csr);
  const auto opt = direction_optimizing_bfs(built.csr, source);
  EXPECT_GT(opt.bottom_up_levels, 0);

  DirectionOptimizingOptions classic;
  classic.force_top_down = true;
  const auto baseline = direction_optimizing_bfs(built.csr, source, classic);
  EXPECT_EQ(baseline.bottom_up_levels, 0);
  // The headline property: strictly fewer edges examined.
  EXPECT_LT(opt.top_down_edges + opt.bottom_up_edges,
            baseline.top_down_edges);
  EXPECT_EQ(opt.out.level, baseline.out.level);
}

TEST(DirectionOptimizing, StaysTopDownOnHighDiameterGraphs) {
  // A path's frontier is a single vertex: bottom-up would scan the whole
  // graph every level; the heuristic must never engage.
  const auto g = graph::CsrGraph::from_edges(test::path_edges(512));
  const auto result = direction_optimizing_bfs(g, 0);
  EXPECT_EQ(result.bottom_up_levels, 0);
  EXPECT_EQ(result.out.level[511], 511);
}

TEST(DirectionOptimizing, ForceTopDownMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t source = test::hub_source(built.csr);
  DirectionOptimizingOptions opts;
  opts.force_top_down = true;
  const auto result = direction_optimizing_bfs(built.csr, source, opts);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level);
  // Classic top-down touches every adjacency of the component once.
  EXPECT_EQ(result.top_down_edges, serial.report.edges_traversed);
}

class DoAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DoAlphaSweep, CorrectAcrossSwitchThresholds) {
  // The heuristic parameters change *when* directions switch, never the
  // answer.
  const auto built = test::rmat_graph(10, 16, 9);
  const vid_t source = test::hub_source(built.csr);
  DirectionOptimizingOptions opts;
  opts.alpha = GetParam();
  const auto result = direction_optimizing_bfs(built.csr, source, opts);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level) << "alpha=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Alphas, DoAlphaSweep,
                         ::testing::Values(1.0, 4.0, 14.0, 100.0, 1e9),
                         [](const auto& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(
                                      std::min(info.param, 1e6)));
                         });

TEST(DirectionOptimizing, DisconnectedComponentsUntouched) {
  const auto g = graph::CsrGraph::from_edges(test::two_triangles());
  const auto result = direction_optimizing_bfs(g, 0);
  EXPECT_EQ(result.out.level[4], kUnreached);
  EXPECT_EQ(result.out.parent[6], kNoVertex);
}

TEST(DirectionOptimizing, RejectsBadSource) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(4));
  EXPECT_THROW(direction_optimizing_bfs(g, 9), std::out_of_range);
}

}  // namespace
}  // namespace dbfs::bfs
