#include "bfs/direction_optimizing.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

TEST(DirectionOptimizing, MatchesSerialOnRmat) {
  const auto built = test::rmat_graph(11, 16);
  const vid_t source = test::hub_source(built.csr);
  const auto result = direction_optimizing_bfs(built.csr, source);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level);
}

TEST(DirectionOptimizing, PassesValidation) {
  const auto built = test::rmat_graph(10, 16, 5);
  const vid_t source = test::hub_source(built.csr);
  const auto result = direction_optimizing_bfs(built.csr, source);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, result.out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(DirectionOptimizing, UsesBottomUpOnLowDiameterGraphs) {
  // Dense R-MAT: the middle levels cover most of the graph, so the
  // heuristic must fire and skip a large share of edge examinations.
  const auto built = test::rmat_graph(12, 16);
  const vid_t source = test::hub_source(built.csr);
  const auto opt = direction_optimizing_bfs(built.csr, source);
  EXPECT_GT(opt.bottom_up_levels, 0);

  DirectionOptimizingOptions classic;
  classic.force_top_down = true;
  const auto baseline = direction_optimizing_bfs(built.csr, source, classic);
  EXPECT_EQ(baseline.bottom_up_levels, 0);
  // The headline property: strictly fewer edges examined.
  EXPECT_LT(opt.top_down_edges + opt.bottom_up_edges,
            baseline.top_down_edges);
  EXPECT_EQ(opt.out.level, baseline.out.level);
}

TEST(DirectionOptimizing, StaysTopDownOnHighDiameterGraphs) {
  // A path's frontier is a single vertex: bottom-up would scan the whole
  // graph every level; the heuristic must never engage.
  const auto g = graph::CsrGraph::from_edges(test::path_edges(512));
  const auto result = direction_optimizing_bfs(g, 0);
  EXPECT_EQ(result.bottom_up_levels, 0);
  EXPECT_EQ(result.out.level[511], 511);
}

TEST(DirectionOptimizing, ForceTopDownMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t source = test::hub_source(built.csr);
  DirectionOptimizingOptions opts;
  opts.force_top_down = true;
  const auto result = direction_optimizing_bfs(built.csr, source, opts);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level);
  // Classic top-down touches every adjacency of the component once.
  EXPECT_EQ(result.top_down_edges, serial.report.edges_traversed);
}

class DoAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DoAlphaSweep, CorrectAcrossSwitchThresholds) {
  // The heuristic parameters change *when* directions switch, never the
  // answer.
  const auto built = test::rmat_graph(10, 16, 9);
  const vid_t source = test::hub_source(built.csr);
  DirectionOptimizingOptions opts;
  opts.alpha = GetParam();
  const auto result = direction_optimizing_bfs(built.csr, source, opts);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(result.out.level, serial.level) << "alpha=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Alphas, DoAlphaSweep,
                         ::testing::Values(1.0, 4.0, 14.0, 100.0, 1e9),
                         [](const auto& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(
                                      std::min(info.param, 1e6)));
                         });

TEST(DirectionOptimizing, DisconnectedComponentsUntouched) {
  const auto g = graph::CsrGraph::from_edges(test::two_triangles());
  const auto result = direction_optimizing_bfs(g, 0);
  EXPECT_EQ(result.out.level[4], kUnreached);
  EXPECT_EQ(result.out.parent[6], kNoVertex);
}

TEST(DirectionOptimizing, RejectsBadSource) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(4));
  EXPECT_THROW(direction_optimizing_bfs(g, 9), std::out_of_range);
}

TEST(DirectionOptimizing, PinnedEdgeAccountingOnFixedRmat) {
  // Regression pin on a fixed generator seed: the per-direction edge
  // counters after the single-degree-sum-per-level fix and the Beamer
  // m_u audit. A change to the heuristic inputs, the retirement pass, or
  // the switch points moves these numbers — update them only on an
  // *intentional* accounting change.
  const auto built = test::rmat_graph(12, 16);  // seed 1, fixed shuffle
  const vid_t source = test::hub_source(built.csr);
  const auto r = direction_optimizing_bfs(built.csr, source);

  EXPECT_EQ(r.top_down_edges, 1528u);
  EXPECT_EQ(r.bottom_up_edges, 1660u);
  EXPECT_EQ(r.bottom_up_levels, 2);

  eid_t scanned = 0;
  for (const LevelStats& l : r.out.report.levels) scanned += l.edges_scanned;
  EXPECT_EQ(scanned, r.top_down_edges + r.bottom_up_edges);
  EXPECT_EQ(r.out.report.edges_traversed, scanned);
}

TEST(DirectionOptimizing, HeuristicInputsMatchBruteForce) {
  // Audit the carried-over accounting against a per-level recompute from
  // the final level array:
  //   m_f = degree sum of the frontier entering the level;
  //   m_u = copies of edges incident to >= 1 vertex not yet visited at
  //         decision time (Beamer's definition on a symmetric graph).
  const auto built = test::rmat_graph(10, 16);
  const graph::CsrGraph& g = built.csr;
  const vid_t n = g.num_vertices();
  const vid_t source = test::hub_source(g);
  const auto r = direction_optimizing_bfs(g, source);
  const std::vector<level_t>& lv = r.out.level;

  const auto unvisited_at = [&](vid_t v, level_t at) {
    return lv[v] == kUnreached || lv[v] > at;
  };
  for (const LevelStats& l : r.out.report.levels) {
    const auto at = static_cast<level_t>(l.level);
    eid_t mf = 0;
    eid_t mu = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (lv[v] == at) mf += g.degree(v);
      for (vid_t w : g.neighbors(v)) {
        // The copy v->w is unexplored while either endpoint is still
        // unvisited when the level's direction decision is priced.
        if (unvisited_at(v, at) || unvisited_at(w, at)) ++mu;
      }
    }
    EXPECT_EQ(l.frontier_edges, mf) << "level " << l.level;
    EXPECT_EQ(l.unexplored_edges, mu) << "level " << l.level;
  }
}

TEST(DirectionOptimizing, RecordsBothSwitchRationales) {
  // Both switch directions must be exercised and labeled: the engage
  // level runs bottom-up, the disengage level is back to top-down, and
  // the rationale trail in LevelStats explains every level.
  const auto built = test::rmat_graph(12, 16);
  const vid_t source = test::hub_source(built.csr);
  const auto r = direction_optimizing_bfs(built.csr, source);

  bool saw_engage = false;
  bool saw_disengage = false;
  bool prev_bottom_up = false;
  for (const LevelStats& l : r.out.report.levels) {
    const auto why = static_cast<DiropRationale>(l.dirop_rationale);
    if (why == DiropRationale::kEngage) {
      saw_engage = true;
      EXPECT_TRUE(l.bottom_up);
      EXPECT_FALSE(prev_bottom_up);
    }
    if (why == DiropRationale::kDisengage) {
      saw_disengage = true;
      EXPECT_FALSE(l.bottom_up);
      EXPECT_TRUE(prev_bottom_up);
    }
    prev_bottom_up = l.bottom_up;
  }
  EXPECT_TRUE(saw_engage);
  EXPECT_TRUE(saw_disengage);
  EXPECT_GE(r.out.report.dirop.switches, 2);

  // Forced top-down never switches and says so.
  DirectionOptimizingOptions classic;
  classic.force_top_down = true;
  const auto base = direction_optimizing_bfs(built.csr, source, classic);
  for (const LevelStats& l : base.out.report.levels) {
    EXPECT_EQ(l.dirop_rationale, static_cast<int>(DiropRationale::kForced));
    EXPECT_FALSE(l.bottom_up);
  }
  EXPECT_EQ(base.out.report.dirop.switches, 0);
}

TEST(DirectionOptimizing, UnexploredEdgesDrainOnConnectedGraphs) {
  // On a connected graph the ledger must run dry: after the last level
  // every edge copy has both endpoints visited. The per-level sequence
  // is non-increasing along the way.
  const auto g = graph::CsrGraph::from_edges(test::star_edges(64));
  const auto r = direction_optimizing_bfs(g, 0);
  eid_t prev = g.num_edges();
  for (const LevelStats& l : r.out.report.levels) {
    EXPECT_LE(l.unexplored_edges, prev);
    prev = l.unexplored_edges;
  }
}

}  // namespace
}  // namespace dbfs::bfs
