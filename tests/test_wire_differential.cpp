// Differential property tests for the wire formats: every --wire-format
// must produce byte-identical BFS outputs (parents AND levels) and the
// same validator verdict as the raw path, across generators (R-MAT,
// webcrawl), algorithms (1D, 2D), and fault plans — while the sieving
// formats strictly reduce the metered alltoall traffic on R-MAT.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bfs/bfs1d.hpp"
#include "bfs/bfs2d.hpp"
#include "comm/wire_format.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

graph::BuiltGraph webcrawl_graph(int scale) {
  graph::WebcrawlParams params;
  params.num_vertices = vid_t{1} << scale;
  params.seed = 7;
  graph::BuildOptions build;
  build.shuffle_seed = 77;
  return graph::build_graph(graph::generate_webcrawl(params), build);
}

Bfs1DOptions opts_1d(comm::WireFormat format, int ranks = 8) {
  Bfs1DOptions o;
  o.ranks = ranks;
  o.machine = model::franklin();
  o.wire_format = format;
  return o;
}

Bfs2DOptions opts_2d(comm::WireFormat format, int cores = 16) {
  Bfs2DOptions o;
  o.cores = cores;
  o.machine = model::franklin();
  o.wire_format = format;
  return o;
}

const comm::WireFormat kNonRawFormats[] = {
    comm::WireFormat::kSieve, comm::WireFormat::kBitmap,
    comm::WireFormat::kVarint, comm::WireFormat::kAuto};

class WireDifferential
    : public ::testing::TestWithParam<comm::WireFormat> {};

TEST_P(WireDifferential, OneDMatchesRawOnRmat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  Bfs1D raw{built.edges, n, opts_1d(comm::WireFormat::kRaw)};
  Bfs1D wired{built.edges, n, opts_1d(GetParam())};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
  // A sieved exchange never ships more bytes than the raw one, and on a
  // multi-level R-MAT it must ship strictly fewer.
  EXPECT_LT(out.report.alltoall_bytes, raw_out.report.alltoall_bytes);
}

TEST_P(WireDifferential, OneDMatchesRawOnWebcrawl) {
  const auto built = webcrawl_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  Bfs1D raw{built.edges, n, opts_1d(comm::WireFormat::kRaw, 4)};
  Bfs1D wired{built.edges, n, opts_1d(GetParam(), 4)};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_P(WireDifferential, TwoDMatchesRawOnRmat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  Bfs2D raw{built.edges, n, opts_2d(comm::WireFormat::kRaw)};
  Bfs2D wired{built.edges, n, opts_2d(GetParam())};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_LT(out.report.alltoall_bytes, raw_out.report.alltoall_bytes);
}

TEST_P(WireDifferential, TwoDMatchesRawOnWebcrawl) {
  const auto built = webcrawl_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  Bfs2D raw{built.edges, n, opts_2d(comm::WireFormat::kRaw)};
  Bfs2D wired{built.edges, n, opts_2d(GetParam())};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  const auto v = graph::validate_bfs_tree(
      built.csr, source, out.parent,
      graph::reference_levels(built.csr, source));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_P(WireDifferential, OneDSurvivesFaultPlan) {
  // Corruption + transient failures hit the compressed payloads; the
  // checked collectives must repair them and the outputs must still match
  // the raw run under the identical plan.
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  simmpi::FaultPlan plan;
  plan.seed = 99;
  plan.collective_fail_rate = 0.05;
  plan.corrupt_rate = 0.05;
  auto raw_opts = opts_1d(comm::WireFormat::kRaw);
  raw_opts.faults = plan;
  auto wire_opts = opts_1d(GetParam());
  wire_opts.faults = plan;
  Bfs1D raw{built.edges, n, raw_opts};
  Bfs1D wired{built.edges, n, wire_opts};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  EXPECT_GT(out.report.faults.payload_corruptions +
                out.report.faults.collective_failures,
            0)
      << "fault plan injected nothing; test is vacuous";
}

TEST_P(WireDifferential, TwoDSurvivesFaultPlan) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  simmpi::FaultPlan plan;
  plan.seed = 123;
  plan.collective_fail_rate = 0.05;
  plan.corrupt_rate = 0.05;
  auto raw_opts = opts_2d(comm::WireFormat::kRaw);
  raw_opts.faults = plan;
  auto wire_opts = opts_2d(GetParam());
  wire_opts.faults = plan;
  Bfs2D raw{built.edges, n, raw_opts};
  Bfs2D wired{built.edges, n, wire_opts};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
}

INSTANTIATE_TEST_SUITE_P(Formats, WireDifferential,
                         ::testing::ValuesIn(kNonRawFormats),
                         [](const auto& info) {
                           return std::string(comm::to_string(info.param));
                         });

TEST(WireDifferential2D, TriangularHybridAutoMatchesRaw) {
  // The hardest configuration: triangular storage mirrors candidates
  // into the fold, hybrid threads the ranks, auto mixes encodings.
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  auto raw_opts = opts_2d(comm::WireFormat::kRaw, 36);
  raw_opts.threads_per_rank = 4;
  raw_opts.triangular_storage = true;
  auto wire_opts = opts_2d(comm::WireFormat::kAuto, 36);
  wire_opts.threads_per_rank = 4;
  wire_opts.triangular_storage = true;
  Bfs2D raw{built.edges, n, raw_opts};
  Bfs2D wired{built.edges, n, wire_opts};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  EXPECT_LT(out.report.alltoall_bytes, raw_out.report.alltoall_bytes);
}

TEST(WireDifferential1D, HybridAutoMatchesRaw) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  auto raw_opts = opts_1d(comm::WireFormat::kRaw, 4);
  raw_opts.threads_per_rank = 4;
  auto wire_opts = opts_1d(comm::WireFormat::kAuto, 4);
  wire_opts.threads_per_rank = 4;
  Bfs1D raw{built.edges, n, raw_opts};
  Bfs1D wired{built.edges, n, wire_opts};
  const auto raw_out = raw.run(source);
  const auto out = wired.run(source);
  EXPECT_EQ(out.parent, raw_out.parent);
  EXPECT_EQ(out.level, raw_out.level);
  EXPECT_LT(out.report.alltoall_bytes, raw_out.report.alltoall_bytes);
}

TEST(WireDifferential1D, RepeatedWireRunsAreDeterministic) {
  // The sieve must be fully reset between runs — a leaked bitmap would
  // drop first-level candidates on the second run.
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  Bfs1D bfs{built.edges, n, opts_1d(comm::WireFormat::kAuto, 4)};
  const auto first = bfs.run(source);
  const auto second = bfs.run(source);
  EXPECT_EQ(first.parent, second.parent);
  EXPECT_EQ(first.level, second.level);
  EXPECT_EQ(first.report.alltoall_bytes, second.report.alltoall_bytes);
}

TEST(WireDifferential1D, SieveOrderingIsByteMonotone) {
  // On the same instance the encodings order as expected: any compressed
  // format ships no more than plain sieve, which ships less than raw; and
  // auto is the per-block minimum so it lower-bounds bitmap and varint.
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  auto run_bytes = [&](comm::WireFormat f) {
    Bfs1D bfs{built.edges, n, opts_1d(f)};
    return bfs.run(source).report.alltoall_bytes;
  };
  const auto raw = run_bytes(comm::WireFormat::kRaw);
  const auto sieve = run_bytes(comm::WireFormat::kSieve);
  const auto bitmap = run_bytes(comm::WireFormat::kBitmap);
  const auto varint = run_bytes(comm::WireFormat::kVarint);
  const auto aut = run_bytes(comm::WireFormat::kAuto);
  EXPECT_LT(sieve, raw);
  EXPECT_LT(bitmap, raw);
  EXPECT_LE(varint, sieve);
  EXPECT_LE(aut, sieve);
  EXPECT_LE(aut, bitmap);
  EXPECT_LE(aut, varint);
}

}  // namespace
}  // namespace dbfs::bfs
