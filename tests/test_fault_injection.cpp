// Fault-injection subsystem tests: plans are deterministic per seed,
// stragglers and retries are priced into the virtual clocks, corrupted
// payloads are caught by the checked collectives, and recovered BFS runs
// still produce valid Graph500 trees.
#include "simmpi/fault.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.hpp"
#include "graph/validator.hpp"
#include "simmpi/comm.hpp"
#include "test_helpers.hpp"

namespace dbfs {
namespace {

using simmpi::Cluster;
using simmpi::CorruptKind;
using simmpi::FaultPlan;
using simmpi::FlatExchange;

std::vector<int> world(int ranks) {
  std::vector<int> w(static_cast<std::size_t>(ranks));
  std::iota(w.begin(), w.end(), 0);
  return w;
}

FlatExchange<int> ring_exchange(int ranks, int items_per_pair) {
  auto send = FlatExchange<int>::sized(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    const int dst = (i + 1) % ranks;
    for (int k = 0; k < items_per_pair; ++k) {
      send.data[static_cast<std::size_t>(i)].push_back(i * 100 + k);
    }
    send.counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(dst)] =
        items_per_pair;
  }
  return send;
}

TEST(FaultPlan, DrawsAreDeterministicPerSeed) {
  FaultPlan a;
  a.seed = 1234;
  a.collective_fail_rate = 0.4;
  a.corrupt_rate = 0.4;
  FaultPlan b = a;
  int differs_from_other_seed = 0;
  FaultPlan c = a;
  c.seed = 4321;
  for (std::uint64_t e = 0; e < 256; ++e) {
    EXPECT_EQ(a.collective_fails(e), b.collective_fails(e));
    EXPECT_EQ(a.corruption_at(e), b.corruption_at(e));
    EXPECT_EQ(a.shape_draw(e), b.shape_draw(e));
    if (a.collective_fails(e) != c.collective_fails(e)) {
      ++differs_from_other_seed;
    }
  }
  EXPECT_GT(differs_from_other_seed, 0);
}

TEST(FaultPlan, ZeroPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.payload_faults());
  EXPECT_FALSE(plan.collective_fails(0));
  EXPECT_EQ(plan.corruption_at(0), CorruptKind::kNone);
  EXPECT_DOUBLE_EQ(plan.compute_factor(3), 1.0);
  EXPECT_DOUBLE_EQ(plan.nic_slowdown(3), 1.0);
}

TEST(FaultPlan, BackoffIsCappedExponential) {
  FaultPlan plan;
  plan.backoff_base_seconds = 1e-4;
  plan.backoff_cap_seconds = 5e-4;
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(0), 1e-4);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(1), 2e-4);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(2), 4e-4);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(3), 5e-4);   // capped
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(60), 5e-4);  // no overflow
}

TEST(Cluster, ComputeStragglerScalesCharges) {
  Cluster c{4, model::generic()};
  FaultPlan plan;
  plan.compute_stragglers = {{2, 3.0}};
  c.set_fault_plan(plan);
  for (int r = 0; r < 4; ++r) c.charge_compute(r, 1.0);
  EXPECT_DOUBLE_EQ(c.clocks().compute_time(0), 1.0);
  EXPECT_DOUBLE_EQ(c.clocks().compute_time(2), 3.0);
}

TEST(Cluster, RejectsNonPositiveStragglerFactors) {
  Cluster c{4, model::generic()};
  FaultPlan plan;
  plan.compute_stragglers = {{1, 0.0}};
  EXPECT_THROW(c.set_fault_plan(plan), std::invalid_argument);
}

TEST(Cluster, OutOfClusterStragglersAreIgnored) {
  Cluster c{4, model::generic()};
  FaultPlan plan;
  plan.compute_stragglers = {{99, 5.0}};
  c.set_fault_plan(plan);
  c.charge_compute(0, 1.0);
  EXPECT_DOUBLE_EQ(c.clocks().compute_time(0), 1.0);
}

TEST(FaultedCollectives, DegradedNicScalesTransferCost) {
  Cluster clean{4, model::generic()};
  Cluster degraded{4, model::generic()};
  FaultPlan plan;
  plan.nic_stragglers = {{1, 2.5}};
  degraded.set_fault_plan(plan);

  const auto w = world(4);
  (void)simmpi::alltoallv(clean, w, ring_exchange(4, 64));
  (void)simmpi::alltoallv(degraded, w, ring_exchange(4, 64));
  EXPECT_DOUBLE_EQ(degraded.clocks().max_now(),
                   2.5 * clean.clocks().max_now());
}

TEST(FaultedCollectives, RetriesArePricedIntoCommunicationTime) {
  Cluster clean{4, model::generic()};
  Cluster flaky{4, model::generic()};
  FaultPlan plan;
  plan.seed = 99;
  plan.collective_fail_rate = 0.5;
  flaky.set_fault_plan(plan);

  const auto w = world(4);
  for (int i = 0; i < 16; ++i) {
    (void)simmpi::alltoallv(clean, w, ring_exchange(4, 16));
    (void)simmpi::alltoallv(flaky, w, ring_exchange(4, 16));
  }
  const auto& counters = flaky.fault_counters();
  ASSERT_GT(counters.collective_failures, 0);
  EXPECT_EQ(counters.collective_retries, counters.collective_failures);
  // Every failed issue re-pays the transfer and waits out the backoff,
  // and all of it lands on the clocks as communication time.
  const double extra = flaky.clocks().comm_time(0) - clean.clocks().comm_time(0);
  EXPECT_NEAR(extra, counters.reissue_seconds + counters.backoff_seconds,
              1e-12);
  // The wasted attempts are also metered in the traffic seconds.
  EXPECT_GT(flaky.traffic().totals(simmpi::Pattern::kAlltoallv).seconds,
            clean.traffic().totals(simmpi::Pattern::kAlltoallv).seconds);
}

TEST(FaultedCollectives, ExhaustedRetriesRaiseStructuredError) {
  Cluster c{4, model::generic()};
  FaultPlan plan;
  plan.seed = 5;
  plan.collective_fail_rate = 1.0;  // every issue fails
  plan.max_collective_retries = 3;
  c.set_fault_plan(plan);
  try {
    (void)simmpi::alltoallv(c, world(4), ring_exchange(4, 4));
    FAIL() << "expected FaultError";
  } catch (const simmpi::FaultError& e) {
    EXPECT_EQ(e.site(), "alltoallv");
    EXPECT_EQ(e.kind(), "collective-failure");
    EXPECT_EQ(e.attempts(), 4);
  }
}

TEST(CheckedAlltoallv, DetectsCorruptionAndRepairs) {
  // Scan seeds for a case where the first issue is corrupted but a retry
  // gets through — then the caller must see exactly the intact payload.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 32 && !exercised; ++seed) {
    Cluster c{4, model::generic()};
    FaultPlan plan;
    plan.seed = seed;
    plan.corrupt_rate = 0.7;
    c.set_fault_plan(plan);
    auto expected = ring_exchange(4, 8);
    Cluster clean{4, model::generic()};
    const auto intact =
        simmpi::alltoallv(clean, world(4), FlatExchange<int>(expected));
    try {
      const auto recv = simmpi::checked_alltoallv(
          c, world(4), std::move(expected), "test-exchange");
      const auto& counters = c.fault_counters();
      EXPECT_EQ(recv.data, intact.data);
      if (counters.payload_corruptions > 0) {
        EXPECT_GT(counters.payload_retries, 0);
        EXPECT_GT(counters.checksum_checks, 1);
        exercised = true;
      }
    } catch (const simmpi::FaultError&) {
      // unlucky seed: every retry corrupted — also a correct outcome
    }
  }
  EXPECT_TRUE(exercised) << "no seed produced a detected-and-repaired run";
}

TEST(CheckedAlltoallv, UnrecoverableCorruptionRaisesFaultError) {
  Cluster c{4, model::generic()};
  FaultPlan plan;
  plan.seed = 3;
  plan.corrupt_rate = 1.0;  // every issue corrupts
  plan.max_payload_retries = 2;
  c.set_fault_plan(plan);
  try {
    (void)simmpi::checked_alltoallv(c, world(4), ring_exchange(4, 8),
                                    "test-exchange");
    FAIL() << "expected FaultError";
  } catch (const simmpi::FaultError& e) {
    EXPECT_EQ(e.site(), "test-exchange");
    EXPECT_EQ(e.kind(), "payload-corruption");
    EXPECT_EQ(e.attempts(), 3);
  }
}

TEST(PayloadChecksum, FlagsEveryCorruptionKind) {
  const std::vector<std::int64_t> base{10, 20, 30, 40};
  const std::uint64_t sum = simmpi::payload_checksum(base);

  auto flipped = base;
  flipped[1] ^= 1;  // bit flip
  EXPECT_NE(simmpi::payload_checksum(flipped), sum);

  auto dropped = base;
  dropped.pop_back();  // drop
  EXPECT_NE(simmpi::payload_checksum(dropped), sum);

  auto duplicated = base;
  duplicated.push_back(base[0]);  // duplicate
  EXPECT_NE(simmpi::payload_checksum(duplicated), sum);

  // ...but re-partitioning the same multiset leaves the sum unchanged.
  auto reordered = base;
  std::swap(reordered[0], reordered[3]);
  EXPECT_EQ(simmpi::payload_checksum(reordered), sum);
}

TEST(EngineFaults, FixedSeedRunsAreIdentical) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 16;
  opts.faults.seed = 77;
  opts.faults.collective_fail_rate = 0.2;
  opts.faults.corrupt_rate = 0.2;
  opts.faults.compute_stragglers = {{1, 2.0}};
  opts.faults.nic_stragglers = {{2, 1.5}};

  core::Engine a{built.edges, built.csr.num_vertices(), opts};
  core::Engine b{built.edges, built.csr.num_vertices(), opts};
  const auto ra = a.run(source);
  const auto rb = b.run(source);

  EXPECT_EQ(ra.parent, rb.parent);
  EXPECT_EQ(ra.report.total_seconds, rb.report.total_seconds);
  EXPECT_EQ(ra.report.faults.collective_failures,
            rb.report.faults.collective_failures);
  EXPECT_EQ(ra.report.faults.payload_corruptions,
            rb.report.faults.payload_corruptions);
  EXPECT_EQ(ra.report.faults.payload_retries,
            rb.report.faults.payload_retries);
  EXPECT_EQ(ra.report.faults.backoff_seconds,
            rb.report.faults.backoff_seconds);
}

TEST(EngineFaults, RecoveredRunsStillProduceValidTrees) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);
  const auto reference = graph::reference_levels(built.csr, source);

  int recovered = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (core::Algorithm algorithm :
         {core::Algorithm::kOneDFlat, core::Algorithm::kTwoDFlat}) {
      core::EngineOptions opts;
      opts.algorithm = algorithm;
      opts.cores = 16;
      opts.faults.seed = seed;
      opts.faults.collective_fail_rate = 0.1;
      opts.faults.corrupt_rate = 0.3;
      core::Engine engine{built.edges, built.csr.num_vertices(), opts};
      try {
        const auto out = engine.run(source);
        const auto v = graph::validate_bfs_tree(built.csr, source,
                                                out.parent, reference);
        EXPECT_TRUE(v.ok) << core::to_string(algorithm)
                          << " seed=" << seed << ": " << v.error;
        if (out.report.faults.payload_retries > 0) ++recovered;
      } catch (const simmpi::FaultError&) {
        // loud abort is acceptable; silent corruption is not
      }
    }
  }
  EXPECT_GT(recovered, 0) << "no run actually exercised payload repair";
}

TEST(EngineFaults, StragglerSlowsTheWholeRun) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDFlat;
  opts.cores = 16;
  core::Engine clean{built.edges, built.csr.num_vertices(), opts};
  opts.faults.compute_stragglers = {{3, 8.0}};
  core::Engine straggling{built.edges, built.csr.num_vertices(), opts};

  const auto rc = clean.run(source);
  const auto rs = straggling.run(source);
  EXPECT_EQ(rc.parent, rs.parent);  // faults perturb time, never answers
  EXPECT_GT(rs.report.total_seconds, rc.report.total_seconds);
  // The straggler's delay shows up as the *other* ranks' waiting time.
  EXPECT_GT(rs.report.comm_seconds_mean, rc.report.comm_seconds_mean);
}

TEST(EngineFaults, ZeroPlanMatchesUnfaultedRunExactly) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kTwoDFlat;
  opts.cores = 16;
  core::Engine plain{built.edges, built.csr.num_vertices(), opts};
  opts.faults = simmpi::FaultPlan{};  // explicit zero plan
  opts.faults.seed = 123456;          // a bare seed enables nothing
  core::Engine zeroed{built.edges, built.csr.num_vertices(), opts};

  const auto ra = plain.run(source);
  const auto rb = zeroed.run(source);
  EXPECT_EQ(ra.parent, rb.parent);
  EXPECT_EQ(ra.report.total_seconds, rb.report.total_seconds);
  EXPECT_EQ(ra.report.alltoall_bytes, rb.report.alltoall_bytes);
  EXPECT_FALSE(rb.report.faults.enabled);
  EXPECT_EQ(rb.report.faults.payload_corruptions, 0);
}

}  // namespace
}  // namespace dbfs
