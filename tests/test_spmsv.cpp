#include "sparse/spmsv.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/prng.hpp"

namespace dbfs::sparse {
namespace {

vid_t col_id_mul(vid_t /*row*/, vid_t col, vid_t /*xval*/) { return col; }
vid_t max_combine(vid_t a, vid_t b) { return std::max(a, b); }

DcscMatrix tiny_matrix() {
  // 4x4, columns: 0 -> rows {1,2}; 2 -> rows {0,1}; 3 -> row {3}.
  return DcscMatrix::from_triples(
      4, 4, {{1, 0}, {2, 0}, {0, 2}, {1, 2}, {3, 3}});
}

TEST(Spmsv, EmptyVectorGivesEmptyResult) {
  const auto a = tiny_matrix();
  SparseVector<vid_t> x{4};
  Spa<vid_t> spa{4};
  SpmsvStats st;
  const auto y = spmsv<vid_t>(a, x, col_id_mul, max_combine,
                              SpmsvBackend::kAuto, &spa, &st);
  EXPECT_EQ(y.nnz(), 0);
  EXPECT_EQ(st.flops, 0);
}

TEST(Spmsv, SingleColumnSelection) {
  const auto a = tiny_matrix();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 0}});
  Spa<vid_t> spa{4};
  const auto y =
      spmsv<vid_t>(a, x, col_id_mul, max_combine, SpmsvBackend::kSpa, &spa);
  ASSERT_EQ(y.nnz(), 2);
  EXPECT_EQ(y.entries()[0].index, 1);
  EXPECT_EQ(y.entries()[1].index, 2);
  EXPECT_EQ(y.entries()[0].value, 0);  // parent = column id
}

TEST(Spmsv, MaxSemiringPicksLargestColumn) {
  const auto a = tiny_matrix();
  // Row 1 is hit by columns 0 and 2; (select, max) keeps 2.
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 0}, {2, 2}});
  for (auto backend : {SpmsvBackend::kSpa, SpmsvBackend::kHeap}) {
    Spa<vid_t> spa{4};
    const auto y = spmsv<vid_t>(a, x, col_id_mul, max_combine, backend, &spa);
    const vid_t* row1 = y.find(1);
    ASSERT_NE(row1, nullptr);
    EXPECT_EQ(*row1, 2);
  }
}

TEST(Spmsv, BackendsAgreeOnRandomInputs) {
  util::Xoshiro256 rng{31};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Triple> triples;
    const int nnz = 200;
    for (int i = 0; i < nnz; ++i) {
      triples.push_back(
          Triple{static_cast<vid_t>(rng.next_below(64)),
                 static_cast<vid_t>(rng.next_below(64))});
    }
    const auto a = DcscMatrix::from_triples(64, 64, triples);
    std::vector<SvEntry<vid_t>> xe;
    for (vid_t c = 0; c < 64; ++c) {
      if (rng.next_double() < 0.3) xe.push_back({c, c});
    }
    const auto x = SparseVector<vid_t>::from_sorted(64, xe);

    Spa<vid_t> spa{64};
    SpmsvStats st_spa;
    SpmsvStats st_heap;
    const auto y_spa = spmsv<vid_t>(a, x, col_id_mul, max_combine,
                                    SpmsvBackend::kSpa, &spa, &st_spa);
    const auto y_heap = spmsv<vid_t>(a, x, col_id_mul, max_combine,
                                     SpmsvBackend::kHeap, nullptr, &st_heap);
    ASSERT_EQ(y_spa.nnz(), y_heap.nnz()) << "trial " << trial;
    EXPECT_EQ(y_spa.entries(), y_heap.entries());
    EXPECT_EQ(st_spa.flops, st_heap.flops);
    EXPECT_EQ(st_spa.used, SpmsvBackend::kSpa);
    EXPECT_EQ(st_heap.used, SpmsvBackend::kHeap);
  }
}

TEST(Spmsv, MatchesDenseReference) {
  util::Xoshiro256 rng{47};
  std::vector<Triple> triples;
  for (int i = 0; i < 500; ++i) {
    triples.push_back(Triple{static_cast<vid_t>(rng.next_below(100)),
                             static_cast<vid_t>(rng.next_below(100))});
  }
  const auto a = DcscMatrix::from_triples(100, 100, triples);
  std::vector<SvEntry<vid_t>> xe;
  for (vid_t c = 0; c < 100; c += 3) xe.push_back({c, c});
  const auto x = SparseVector<vid_t>::from_sorted(100, xe);

  // Dense reference on the same semiring.
  std::map<vid_t, vid_t> expected;
  for (const auto& e : x.entries()) {
    for (vid_t row : a.column(e.index)) {
      auto [it, inserted] = expected.emplace(row, e.index);
      if (!inserted) it->second = std::max(it->second, e.index);
    }
  }

  Spa<vid_t> spa{100};
  const auto y =
      spmsv<vid_t>(a, x, col_id_mul, max_combine, SpmsvBackend::kAuto, &spa);
  ASSERT_EQ(static_cast<std::size_t>(y.nnz()), expected.size());
  for (const auto& e : y.entries()) {
    EXPECT_EQ(e.value, expected.at(e.index));
  }
}

TEST(Spmsv, AutoWithoutWorkspaceFallsBackToHeap) {
  const auto a = tiny_matrix();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 0}, {2, 2}, {3, 3}});
  SpmsvStats st;
  const auto y = spmsv<vid_t>(a, x, col_id_mul, max_combine,
                              SpmsvBackend::kSpa, nullptr, &st);
  EXPECT_EQ(st.used, SpmsvBackend::kHeap);
  EXPECT_EQ(y.nnz(), 4);
}

TEST(Spmsv, AlternativeSemiringCountsContributions) {
  const auto a = tiny_matrix();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 1}, {2, 1}});
  Spa<vid_t> spa{4};
  // (+, *1): counts how many selected columns hit each row.
  const auto y = spmsv<vid_t>(
      a, x, [](vid_t, vid_t, vid_t xval) { return xval; },
      [](vid_t p, vid_t q) { return p + q; }, SpmsvBackend::kSpa, &spa);
  EXPECT_EQ(*y.find(1), 2);  // columns 0 and 2 both hit row 1
  EXPECT_EQ(*y.find(0), 1);
  EXPECT_EQ(*y.find(2), 1);
}

TEST(ChooseBackend, DenseSelectsSpaSparsePicksHeap) {
  EXPECT_EQ(choose_backend(1000, 1000), SpmsvBackend::kSpa);
  EXPECT_EQ(choose_backend(10, 100000), SpmsvBackend::kHeap);
  EXPECT_EQ(choose_backend(0, 0), SpmsvBackend::kHeap);
}

TEST(Spmsv, WorkspaceGrowsOnDemand) {
  const auto a = tiny_matrix();
  auto x = SparseVector<vid_t>::from_sorted(4, {{0, 0}});
  Spa<vid_t> spa{1};  // smaller than a.nrows()
  const auto y =
      spmsv<vid_t>(a, x, col_id_mul, max_combine, SpmsvBackend::kSpa, &spa);
  EXPECT_EQ(y.nnz(), 2);
  EXPECT_GE(spa.dim(), 4);
}

}  // namespace
}  // namespace dbfs::sparse
