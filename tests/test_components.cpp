#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/edge_list.hpp"

namespace dbfs::graph {
namespace {

CsrGraph two_components() {
  // {0,1,2} triangle, {3,4} edge, {5} isolated.
  EdgeList e{6};
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(3, 4);
  e.symmetrize();
  return CsrGraph::from_edges(e);
}

TEST(Components, CountsAndLabels) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[0]);
}

TEST(Components, LargestIdentified) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  EXPECT_EQ(c.largest_size, 3);
  EXPECT_EQ(c.label[0], c.largest_label);
}

TEST(Components, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList{0});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 0);
  EXPECT_EQ(c.largest_size, 0);
}

TEST(SampleSources, AllFromLargestComponentWithEdges) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  const auto sources = sample_sources(g, c, 3, 1);
  EXPECT_EQ(sources.size(), 3u);
  for (vid_t s : sources) {
    EXPECT_EQ(c.label[s], c.largest_label);
    EXPECT_GT(g.degree(s), 0);
  }
}

TEST(SampleSources, Distinct) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  const auto sources = sample_sources(g, c, 3, 2);
  const std::set<vid_t> unique(sources.begin(), sources.end());
  EXPECT_EQ(unique.size(), sources.size());
}

TEST(SampleSources, CappedByComponentSize) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  const auto sources = sample_sources(g, c, 100, 3);
  EXPECT_EQ(sources.size(), 3u);  // largest component has 3 vertices
}

TEST(SampleSources, DeterministicPerSeed) {
  const CsrGraph g = two_components();
  const Components c = connected_components(g);
  EXPECT_EQ(sample_sources(g, c, 2, 9), sample_sources(g, c, 2, 9));
}

}  // namespace
}  // namespace dbfs::graph
