// Direction-optimizing traversal in the 2D SpMSV engine: correctness of
// the bottom-up pull step across grids and wire formats, the alpha-beta
// switch actually engaging (and disengaging) on R-MAT instances, the
// byte-identity guarantee of the default top-down mode, and replay
// determinism of the direction decisions under fail-stop recovery.
#include <gtest/gtest.h>

#include "bfs/bfs2d.hpp"
#include "bfs/report_json.hpp"
#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

Bfs2DOptions dirop_opts(int cores, DirectionMode mode, int threads = 1) {
  Bfs2DOptions o;
  o.cores = cores;
  o.threads_per_rank = threads;
  o.machine = model::franklin();
  o.direction = mode;
  return o;
}

class DiropCoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiropCoreSweep, HybridMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(GetParam(), DirectionMode::kHybrid)};
  const auto src = test::hub_source(built.csr);
  const auto out = bfs.run(src);
  const auto serial = serial_bfs(built.csr, src);
  EXPECT_EQ(out.level, serial.level) << "cores=" << GetParam();
}

TEST_P(DiropCoreSweep, ForcedBottomUpMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(GetParam(), DirectionMode::kBottomUp)};
  const auto src = test::hub_source(built.csr);
  const auto out = bfs.run(src);
  const auto serial = serial_bfs(built.csr, src);
  EXPECT_EQ(out.level, serial.level) << "cores=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cores, DiropCoreSweep,
                         ::testing::Values(1, 4, 16, 64));

TEST(Bfs2DDirop, HybridParentsPassValidation) {
  const auto built = test::rmat_graph(11, 8, 5);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(16, DirectionMode::kHybrid)};
  const auto src = test::hub_source(built.csr);
  const auto out = bfs.run(src);
  const auto v = graph::validate_bfs_tree(
      built.csr, src, out.parent, graph::reference_levels(built.csr, src));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Bfs2DDirop, HybridEngagesAndDisengages) {
  // A scale-12 R-MAT from a hub source has the Beamer shape: a couple of
  // narrow top-down levels, a broad middle where bottom-up wins, and a
  // narrow tail. Both switch directions must appear, with their
  // rationales recorded per level.
  const auto built = test::rmat_graph(12, 16);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(16, DirectionMode::kHybrid)};
  const auto src = test::hub_source(built.csr);
  const auto out = bfs.run(src);
  const auto serial = serial_bfs(built.csr, src);
  ASSERT_EQ(out.level, serial.level);

  const auto& d = out.report.dirop;
  EXPECT_TRUE(d.enabled);
  EXPECT_EQ(d.mode, "hybrid");
  EXPECT_GE(d.bottom_up_levels, 1);
  EXPECT_GE(d.top_down_levels, 1);
  EXPECT_GE(d.switches, 2);  // engaged and came back
  EXPECT_GT(d.bottom_up_edges, 0u);
  EXPECT_GT(d.top_down_edges, 0u);

  bool saw_engage = false;
  bool saw_disengage = false;
  for (const auto& l : out.report.levels) {
    if (l.dirop_rationale == static_cast<int>(DiropRationale::kEngage)) {
      saw_engage = true;
      EXPECT_TRUE(l.bottom_up);
    }
    if (l.dirop_rationale == static_cast<int>(DiropRationale::kDisengage)) {
      saw_disengage = true;
      EXPECT_FALSE(l.bottom_up);
    }
    // The heuristic inputs are always populated in dirop modes.
    if (l.level > 0) {
      EXPECT_GT(l.frontier_edges + l.unexplored_edges, 0u);
    }
  }
  EXPECT_TRUE(saw_engage);
  EXPECT_TRUE(saw_disengage);
}

TEST(Bfs2DDirop, HybridExaminesFewerEdgesThanTopDown) {
  const auto built = test::rmat_graph(12, 16);
  const vid_t n = built.csr.num_vertices();
  const auto src = test::hub_source(built.csr);
  Bfs2D td{built.edges, n, dirop_opts(16, DirectionMode::kTopDown)};
  Bfs2D hy{built.edges, n, dirop_opts(16, DirectionMode::kHybrid)};
  const auto td_out = td.run(src);
  const auto hy_out = hy.run(src);
  ASSERT_EQ(td_out.level, hy_out.level);
  EXPECT_LT(hy_out.report.edges_traversed, td_out.report.edges_traversed);
}

class DiropWireSweep : public ::testing::TestWithParam<comm::WireFormat> {};

TEST_P(DiropWireSweep, HybridAgreesAcrossWireFormats) {
  const auto built = test::rmat_graph(11);
  const vid_t n = built.csr.num_vertices();
  auto opts = dirop_opts(16, DirectionMode::kHybrid);
  opts.wire_format = GetParam();
  Bfs2D bfs{built.edges, n, opts};
  const auto src = test::hub_source(built.csr);
  const auto out = bfs.run(src);
  const auto serial = serial_bfs(built.csr, src);
  EXPECT_EQ(out.level, serial.level)
      << "wire=" << comm::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Wire, DiropWireSweep,
                         ::testing::Values(comm::WireFormat::kRaw,
                                           comm::WireFormat::kSieve,
                                           comm::WireFormat::kBitmap,
                                           comm::WireFormat::kVarint,
                                           comm::WireFormat::kAuto),
                         [](const auto& info) {
                           return comm::to_string(info.param);
                         });

TEST(Bfs2DDirop, BottomUpWireCompressesAtLeastAsWellAsTopDown) {
  // Acceptance criterion: under the auto codec, the dense bottom-up
  // frontier/completeness exchanges must ship at a bytes-per-raw-byte
  // ratio no worse than the top-down levels of the same run.
  const auto built = test::rmat_graph(12, 16);
  const vid_t n = built.csr.num_vertices();
  auto opts = dirop_opts(16, DirectionMode::kHybrid);
  opts.wire_format = comm::WireFormat::kAuto;
  Bfs2D bfs{built.edges, n, opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  const auto& d = out.report.dirop;
  ASSERT_GT(d.bottom_up_wire_raw_bytes, 0u);
  ASSERT_GT(d.top_down_wire_raw_bytes, 0u);
  const double bu = static_cast<double>(d.bottom_up_wire_bytes) /
                    static_cast<double>(d.bottom_up_wire_raw_bytes);
  const double td = static_cast<double>(d.top_down_wire_bytes) /
                    static_cast<double>(d.top_down_wire_raw_bytes);
  EXPECT_LE(bu, td);
}

TEST(Bfs2DDirop, TopDownReportHasNoDiropBlock) {
  // The default mode's JSON must stay byte-identical to the pre-hybrid
  // engine: no dirop key, no per-level direction fields.
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(16, DirectionMode::kTopDown)};
  const auto out = bfs.run(test::hub_source(built.csr));
  EXPECT_FALSE(out.report.dirop.enabled);
  const std::string json = report_to_json(out.report);
  EXPECT_EQ(json.find("dirop"), std::string::npos);
  EXPECT_EQ(json.find("bottom_up"), std::string::npos);
}

TEST(Bfs2DDirop, HybridReportCarriesDiropJson) {
  const auto built = test::rmat_graph(12, 16);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, dirop_opts(16, DirectionMode::kHybrid)};
  const auto out = bfs.run(test::hub_source(built.csr));
  const std::string json = report_to_json(out.report);
  EXPECT_NE(json.find("\"dirop\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"hybrid\""), std::string::npos);
  EXPECT_NE(json.find("\"rationale\""), std::string::npos);
}

TEST(Bfs2DDirop, ThreadedHybridMatchesFlat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  const auto src = test::hub_source(built.csr);
  Bfs2D flat{built.edges, n, dirop_opts(16, DirectionMode::kHybrid, 1)};
  Bfs2D hybrid{built.edges, n, dirop_opts(64, DirectionMode::kHybrid, 4)};
  EXPECT_EQ(flat.run(src).level, hybrid.run(src).level);
}

TEST(Bfs2DDirop, AlphaBetaExtremesPinTheDirection) {
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  const auto src = test::hub_source(built.csr);
  // Tiny alpha: m_u / alpha is astronomically large, so the engage
  // condition m_f > m_u / alpha never fires (Beamer's rule — larger
  // alpha engages *earlier*).
  auto never = dirop_opts(16, DirectionMode::kHybrid);
  never.alpha = 1e-9;
  Bfs2D bfs_never{built.edges, n, never};
  const auto out_never = bfs_never.run(src);
  EXPECT_EQ(out_never.report.dirop.bottom_up_levels, 0);
  // Huge alpha and beta: engages as soon as there is any frontier and
  // never disengages on frontier width.
  auto eager = dirop_opts(16, DirectionMode::kHybrid);
  eager.alpha = 1e18;
  eager.beta = 1e18;
  Bfs2D bfs_eager{built.edges, n, eager};
  const auto out_eager = bfs_eager.run(src);
  EXPECT_GE(out_eager.report.dirop.bottom_up_levels, 1);
  const auto serial = serial_bfs(built.csr, src);
  EXPECT_EQ(out_never.level, serial.level);
  EXPECT_EQ(out_eager.level, serial.level);
}

TEST(Bfs2DDirop, ModelDerivedThresholdsWhenNonPositive) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  auto opts = dirop_opts(16, DirectionMode::kHybrid);
  opts.alpha = 0.0;
  opts.beta = -1.0;
  Bfs2D bfs{built.edges, n, opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  EXPECT_GT(out.report.dirop.alpha, 0.0);
  EXPECT_GT(out.report.dirop.beta, 0.0);
  EXPECT_EQ(out.report.dirop.alpha, model::dirop_alpha(model::franklin()));
  EXPECT_EQ(out.report.dirop.beta, model::dirop_beta(model::franklin()));
}

TEST(Bfs2DDirop, RejectsTriangularStorage) {
  const auto edges = test::path_edges(16);
  auto opts = dirop_opts(16, DirectionMode::kHybrid);
  opts.triangular_storage = true;
  EXPECT_THROW((Bfs2D{edges, 16, opts}), std::invalid_argument);
}

TEST(Bfs2DDirop, RejectsDiagonalVectorDistribution) {
  const auto edges = test::path_edges(16);
  auto opts = dirop_opts(16, DirectionMode::kBottomUp);
  opts.vector_dist = dist::VectorDistKind::kDiagonal;
  EXPECT_THROW((Bfs2D{edges, 16, opts}), std::invalid_argument);
}

TEST(Bfs2DDirop, ParseAndPrintDirectionModes) {
  EXPECT_EQ(parse_direction_mode("topdown"), DirectionMode::kTopDown);
  EXPECT_EQ(parse_direction_mode("bottomup"), DirectionMode::kBottomUp);
  EXPECT_EQ(parse_direction_mode("hybrid"), DirectionMode::kHybrid);
  EXPECT_THROW(parse_direction_mode("sideways"), std::invalid_argument);
  EXPECT_STREQ(to_string(DirectionMode::kHybrid), "hybrid");
  EXPECT_STREQ(to_string(DiropRationale::kEngage), "engage");
}

// Replay determinism: kill a rank mid-bottom-up level; the recovered run
// must take the same per-level directions and produce identical output.
class DiropRecoverSweep : public ::testing::TestWithParam<recover::Policy> {};

TEST_P(DiropRecoverSweep, KillMidBottomUpReplaysSameDirections) {
  const auto built = test::rmat_graph(12, 16);
  const vid_t n = built.csr.num_vertices();
  const auto src = test::hub_source(built.csr);

  auto base = dirop_opts(16, DirectionMode::kHybrid);
  Bfs2D ref{built.edges, n, base};
  const auto expected = ref.run(src);

  // Find a level that actually ran bottom-up and kill inside it.
  int bu_level = -1;
  for (const auto& l : expected.report.levels) {
    if (l.bottom_up) {
      bu_level = l.level;
      break;
    }
  }
  ASSERT_GE(bu_level, 1) << "hybrid run never engaged bottom-up";

  auto opts = base;
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = bu_level;
  opts.faults.rank_kills = {kill};
  opts.recover.policy = GetParam();
  opts.recover.checkpoint_every = 1;
  Bfs2D bfs{built.edges, n, opts};
  const auto out = bfs.run(src);

  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_GE(out.report.recover.rank_failures, 1);
  ASSERT_EQ(out.report.levels.size(), expected.report.levels.size());
  for (std::size_t i = 0; i < out.report.levels.size(); ++i) {
    EXPECT_EQ(out.report.levels[i].bottom_up,
              expected.report.levels[i].bottom_up)
        << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DiropRecoverSweep,
                         ::testing::Values(recover::Policy::kShrink,
                                           recover::Policy::kSpare),
                         [](const auto& info) {
                           return recover::to_string(info.param);
                         });

}  // namespace
}  // namespace dbfs::bfs
