#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace dbfs::graph {
namespace {

EdgeList sample_edges() {
  EdgeList e{6};
  e.add(0, 1);
  e.add(1, 2);
  e.add(5, 0);
  e.add(3, 3);
  return e;
}

TEST(TextIo, RoundTrip) {
  std::stringstream buffer;
  write_edge_list_text(buffer, sample_edges());
  const EdgeList back = read_edge_list_text(buffer);
  EXPECT_EQ(back.num_vertices(), 6);
  EXPECT_EQ(back.edges(), sample_edges().edges());
}

TEST(TextIo, InfersVertexCountWithoutHeader) {
  std::stringstream in("0 1\n4 2\n");
  const EdgeList e = read_edge_list_text(in);
  EXPECT_EQ(e.num_vertices(), 5);
  EXPECT_EQ(e.num_edges(), 2);
}

TEST(TextIo, HonorsHeaderAndComments) {
  std::stringstream in("# vertices 100\n% a comment\n# another\n3 7\n");
  const EdgeList e = read_edge_list_text(in);
  EXPECT_EQ(e.num_vertices(), 100);
  EXPECT_EQ(e.edges()[0], (Edge{3, 7}));
}

TEST(TextIo, RejectsGarbage) {
  std::stringstream in("0 1\nfoo bar\n");
  EXPECT_THROW(read_edge_list_text(in), std::runtime_error);
}

TEST(TextIo, RejectsNegativeIds) {
  std::stringstream in("0 -1\n");
  EXPECT_THROW(read_edge_list_text(in), std::runtime_error);
}

TEST(TextIo, RejectsIdBeyondDeclaredCount) {
  std::stringstream in("# vertices 3\n0 5\n");
  EXPECT_THROW(read_edge_list_text(in), std::runtime_error);
}

TEST(TextIo, EmptyInputGivesEmptyGraph) {
  std::stringstream in("");
  const EdgeList e = read_edge_list_text(in);
  EXPECT_EQ(e.num_vertices(), 0);
  EXPECT_EQ(e.num_edges(), 0);
}

TEST(BinaryIo, RoundTrip) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_edge_list_binary(buffer, sample_edges());
  const EdgeList back = read_edge_list_binary(buffer);
  EXPECT_EQ(back.num_vertices(), 6);
  EXPECT_EQ(back.edges(), sample_edges().edges());
}

TEST(BinaryIo, RoundTripLargeGenerated) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  const EdgeList original = generate_rmat(params);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_edge_list_binary(buffer, original);
  const EdgeList back = read_edge_list_binary(buffer);
  EXPECT_EQ(back.num_vertices(), original.num_vertices());
  EXPECT_EQ(back.edges(), original.edges());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer("NOTMAGIC........");
  EXPECT_THROW(read_edge_list_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_edge_list_binary(buffer, sample_edges());
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 8),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_edge_list_binary(cut), std::runtime_error);
}

TEST(FileIo, RoundTripsThroughDisk) {
  const std::string base = ::testing::TempDir() + "/distbfs_io_test";
  write_edge_list_text_file(base + ".txt", sample_edges());
  write_edge_list_binary_file(base + ".bin", sample_edges());
  EXPECT_EQ(read_edge_list_text_file(base + ".txt").edges(),
            sample_edges().edges());
  EXPECT_EQ(read_edge_list_binary_file(base + ".bin").edges(),
            sample_edges().edges());
  EXPECT_THROW(read_edge_list_text_file(base + ".missing"),
               std::runtime_error);
}

TEST(MatrixMarket, ReadsGeneralPattern) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "4 4 3\n"
      "1 2\n"
      "3 1\n"
      "4 4\n");
  const EdgeList e = read_matrix_market(in);
  EXPECT_EQ(e.num_vertices(), 4);
  ASSERT_EQ(e.num_edges(), 3);
  // Entry (r,c) -> edge c-1 -> r-1.
  EXPECT_EQ(e.edges()[0], (Edge{1, 0}));
  EXPECT_EQ(e.edges()[1], (Edge{0, 2}));
  EXPECT_EQ(e.edges()[2], (Edge{3, 3}));
}

TEST(MatrixMarket, SymmetricMirrorsOffDiagonal) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 1.5\n"
      "3 2 -2.0\n"
      "2 2 7.0\n");
  const EdgeList e = read_matrix_market(in);
  EXPECT_EQ(e.num_vertices(), 3);
  // Two off-diagonal entries mirrored + one diagonal kept once = 5.
  EXPECT_EQ(e.num_edges(), 5);
}

TEST(MatrixMarket, RectangularUsesMaxDimension) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 5 1\n"
      "1 5\n");
  const EdgeList e = read_matrix_market(in);
  EXPECT_EQ(e.num_vertices(), 5);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream in("%%NotMatrixMarket nope\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsNonCoordinate) {
  std::stringstream in("%%MatrixMarket matrix array real general\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntry) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedEntryList) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4 4 3\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

}  // namespace
}  // namespace dbfs::graph
