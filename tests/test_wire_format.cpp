// Unit tests for the wire-format codecs (comm/wire_format.hpp) and the
// sender-side visited sieve (comm/sieve.hpp).
#include "comm/wire_format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bfs/frontier.hpp"
#include "comm/sieve.hpp"
#include "util/prng.hpp"

namespace dbfs::comm {
namespace {

using bfs::Candidate;

bool operator_eq(const Candidate& a, const Candidate& b) {
  return a.vertex == b.vertex && a.parent == b.parent;
}

std::vector<Candidate> roundtrip(const std::vector<Candidate>& block,
                                 WireFormat format,
                                 WireStats* stats = nullptr) {
  std::vector<std::uint8_t> bytes;
  encode_candidates<Candidate>(block, format, bytes, stats);
  std::vector<Candidate> out;
  decode_candidate_stream<Candidate>(bytes.data(), bytes.size(), out);
  return out;
}

void expect_equal(const std::vector<Candidate>& a,
                  const std::vector<Candidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(operator_eq(a[i], b[i]))
        << "i=" << i << " (" << a[i].vertex << "," << a[i].parent << ") vs ("
        << b[i].vertex << "," << b[i].parent << ")";
  }
}

TEST(Uvarint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,     1,        127,        128,
                                  16383, 16384,    (1u << 21) - 1,
                                  1u << 21,        0x00FF00FF00FF00FFull,
                                  ~std::uint64_t{0}};
  for (std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, v);
    EXPECT_EQ(buf.size(), uvarint_size(v)) << v;
    std::uint64_t back = 0;
    const std::size_t used = get_uvarint(buf.data(), buf.size(), &back);
    EXPECT_EQ(used, buf.size()) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(Uvarint, ThrowsOnTruncation) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 300);  // two bytes
  std::uint64_t v = 0;
  EXPECT_THROW(get_uvarint(buf.data(), 1, &v), WireDecodeError);
  EXPECT_THROW(get_uvarint(buf.data(), 0, &v), WireDecodeError);
}

TEST(ParseWireFormat, NamesRoundTrip) {
  for (WireFormat f : {WireFormat::kRaw, WireFormat::kSieve,
                       WireFormat::kBitmap, WireFormat::kVarint,
                       WireFormat::kAuto}) {
    EXPECT_EQ(parse_wire_format(to_string(f)), f);
  }
  EXPECT_THROW(parse_wire_format("zstd"), std::invalid_argument);
}

TEST(WireStats, RatioHelpersHandleEmptyAndTypicalCounts) {
  WireStats empty;
  EXPECT_DOUBLE_EQ(empty.compression_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(empty.raw_block_share(), 0.0);

  WireStats s;
  s.raw_bytes = 1000;
  s.encoded_bytes = 250;
  s.blocks_items = 1;
  s.blocks_bitmap = 2;
  s.blocks_varint = 1;
  EXPECT_DOUBLE_EQ(s.compression_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(s.raw_block_share(), 0.25);
}

TEST(WireFormat, PredicatesMatchSemantics) {
  EXPECT_FALSE(wire_sieves(WireFormat::kRaw));
  EXPECT_TRUE(wire_sieves(WireFormat::kSieve));
  EXPECT_FALSE(wire_compresses(WireFormat::kSieve));
  EXPECT_TRUE(wire_compresses(WireFormat::kBitmap));
  EXPECT_TRUE(wire_compresses(WireFormat::kVarint));
  EXPECT_TRUE(wire_compresses(WireFormat::kAuto));
}

TEST(CandidateCodec, EmptyBlockEncodesToNothing) {
  std::vector<std::uint8_t> bytes;
  WireStats stats;
  encode_candidates<Candidate>(std::vector<Candidate>{}, WireFormat::kAuto,
                               bytes, &stats);
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(stats.items, 0u);
  std::vector<Candidate> out;
  decode_candidate_stream<Candidate>(bytes.data(), bytes.size(), out);
  EXPECT_TRUE(out.empty());
}

TEST(CandidateCodec, RoundTripsEveryFormat) {
  // Sorted, unique targets — the shape sieve_and_dedup produces.
  const std::vector<Candidate> block = {
      {0, 7}, {1, 0}, {5, 900000}, {6, 6}, {1000, 3}, {1000000, 999999}};
  for (WireFormat f : {WireFormat::kRaw, WireFormat::kSieve,
                       WireFormat::kBitmap, WireFormat::kVarint,
                       WireFormat::kAuto}) {
    expect_equal(roundtrip(block, f), block);
  }
}

TEST(CandidateCodec, DenseBlockPrefersBitmap) {
  // 64 consecutive targets with small parents: the presence bitmap (8
  // bytes) plus one-byte parents beats both raw items and varints.
  std::vector<Candidate> block;
  for (vid_t v = 0; v < 64; ++v) block.push_back({v, 1});
  WireStats stats;
  const auto out = roundtrip(block, WireFormat::kAuto, &stats);
  expect_equal(out, block);
  EXPECT_EQ(stats.blocks_bitmap, 1u);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);
}

TEST(CandidateCodec, SparseBlockPrefersVarint) {
  // Widely-spaced targets: a bitmap over the range would dwarf the items.
  std::vector<Candidate> block;
  for (vid_t v = 0; v < 32; ++v) block.push_back({v * 1000003, 2});
  WireStats stats;
  const auto out = roundtrip(block, WireFormat::kAuto, &stats);
  expect_equal(out, block);
  EXPECT_EQ(stats.blocks_varint, 1u);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);
}

TEST(CandidateCodec, AutoNeverExceedsRawPlusFrame) {
  util::Xoshiro256 rng{42};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Candidate> block;
    vid_t v = 0;
    const int len = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < len; ++i) {
      v += 1 + static_cast<vid_t>(rng.next_below(1u << 16));
      block.push_back(
          {v, static_cast<vid_t>(rng.next_below(1u << 20))});
    }
    WireStats stats;
    expect_equal(roundtrip(block, WireFormat::kAuto, &stats), block);
    // Frame overhead: tag + count + payload length (few bytes).
    EXPECT_LE(stats.encoded_bytes, stats.raw_bytes + 12);
  }
}

TEST(CandidateCodec, BitmapFallsBackToVarintOnDuplicates) {
  // Duplicate targets cannot be expressed by a presence bitmap; the
  // kBitmap policy must fall back per block, not corrupt the stream.
  const std::vector<Candidate> block = {{3, 9}, {3, 5}, {4, 1}};
  WireStats stats;
  const auto out = roundtrip(block, WireFormat::kBitmap, &stats);
  expect_equal(out, block);
  EXPECT_EQ(stats.blocks_bitmap, 0u);
  EXPECT_EQ(stats.blocks_varint, 1u);
}

TEST(CandidateCodec, ConcatenatedBlocksDecodeInOrder) {
  const std::vector<Candidate> a = {{1, 2}, {3, 4}};
  const std::vector<Candidate> b = {{2, 8}, {100, 1}};
  std::vector<std::uint8_t> bytes;
  encode_candidates<Candidate>(a, WireFormat::kVarint, bytes, nullptr);
  encode_candidates<Candidate>(b, WireFormat::kBitmap, bytes, nullptr);
  encode_candidates<Candidate>(std::vector<Candidate>{}, WireFormat::kAuto,
                               bytes, nullptr);
  std::vector<Candidate> out;
  decode_candidate_stream<Candidate>(bytes.data(), bytes.size(), out);
  std::vector<Candidate> expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  expect_equal(out, expected);
}

TEST(CandidateCodec, TruncatedStreamThrows) {
  const std::vector<Candidate> block = {{1, 2}, {3, 4}, {5, 6}};
  for (WireFormat f :
       {WireFormat::kSieve, WireFormat::kBitmap, WireFormat::kVarint}) {
    std::vector<std::uint8_t> bytes;
    encode_candidates<Candidate>(block, f, bytes, nullptr);
    std::vector<Candidate> out;
    EXPECT_THROW(
        decode_candidate_stream<Candidate>(bytes.data(), bytes.size() - 1,
                                           out),
        WireDecodeError)
        << to_string(f);
  }
}

TEST(CandidateCodec, GarbageTagThrows) {
  std::vector<std::uint8_t> bytes = {0xEE, 0x01, 0x01, 0x00};
  std::vector<Candidate> out;
  EXPECT_THROW(decode_candidate_stream<Candidate>(bytes.data(), bytes.size(),
                                                  out),
               WireDecodeError);
}

TEST(VertexListCodec, RoundTripsEveryFormat) {
  const std::vector<vid_t> list = {0, 1, 2, 3, 900, 901, 5000000};
  for (WireFormat f : {WireFormat::kRaw, WireFormat::kSieve,
                       WireFormat::kBitmap, WireFormat::kVarint,
                       WireFormat::kAuto}) {
    std::vector<std::uint8_t> bytes;
    WireStats stats;
    encode_vertex_list(list, f, bytes, &stats);
    std::vector<vid_t> out;
    decode_vertex_stream(bytes.data(), bytes.size(), out);
    EXPECT_EQ(out, list) << to_string(f);
    EXPECT_EQ(stats.items, list.size());
  }
}

TEST(VertexListCodec, DenseRangeCompressesHard) {
  std::vector<vid_t> list;
  for (vid_t v = 1000; v < 1512; ++v) list.push_back(v);
  std::vector<std::uint8_t> bytes;
  WireStats stats;
  encode_vertex_list(list, WireFormat::kAuto, bytes, &stats);
  std::vector<vid_t> out;
  decode_vertex_stream(bytes.data(), bytes.size(), out);
  EXPECT_EQ(out, list);
  // 512 consecutive ids: 64 presence bytes + header vs 4096 raw bytes.
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes / 10);
}

TEST(Sieve, MarkTestAndMarkAll) {
  Sieve sieve;
  sieve.reset(3, 200);
  EXPECT_FALSE(sieve.test(0, 150));
  sieve.mark(0, 150);
  EXPECT_TRUE(sieve.test(0, 150));
  EXPECT_FALSE(sieve.test(1, 150));  // rank-private bitmaps
  sieve.mark_all(7);
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(sieve.test(r, 7));
  sieve.reset(3, 200);
  EXPECT_FALSE(sieve.test(0, 150));  // reset clears
}

TEST(Sieve, SieveAndDedupDropsVisitedAndMarksSurvivors) {
  Sieve sieve;
  sieve.reset(2, 100);
  sieve.mark(0, 10);
  std::vector<Candidate> block = {{10, 1}, {20, 2}, {30, 3}};
  const auto dropped = sieve_and_dedup(sieve, 0, block, false);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0].vertex, 20);
  EXPECT_EQ(block[1].vertex, 30);
  EXPECT_TRUE(sieve.test(0, 20));
  EXPECT_TRUE(sieve.test(0, 30));
  // A later level re-sending the survivors drops them entirely.
  std::vector<Candidate> again = {{20, 9}, {30, 9}};
  EXPECT_EQ(sieve_and_dedup(sieve, 0, again, false), 2u);
  EXPECT_TRUE(again.empty());
}

TEST(Sieve, DedupKeepsFirstOccurrenceFor1D) {
  // 1D owners take the first candidate in receive order, so the sender
  // must keep the first duplicate.
  Sieve sieve;
  sieve.reset(1, 100);
  std::vector<Candidate> block = {{5, 40}, {2, 7}, {5, 99}, {2, 1}};
  const auto dropped = sieve_and_dedup(sieve, 0, block, false);
  EXPECT_EQ(dropped, 2u);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0].vertex, 2);
  EXPECT_EQ(block[0].parent, 7);  // first occurrence of 2
  EXPECT_EQ(block[1].vertex, 5);
  EXPECT_EQ(block[1].parent, 40);  // first occurrence of 5
}

TEST(Sieve, DedupKeepsMaxParentFor2D) {
  // 2D owners combine duplicates by max parent.
  Sieve sieve;
  sieve.reset(1, 100);
  std::vector<Candidate> block = {{5, 40}, {2, 7}, {5, 99}, {2, 1}};
  const auto dropped = sieve_and_dedup(sieve, 0, block, true);
  EXPECT_EQ(dropped, 2u);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0].vertex, 2);
  EXPECT_EQ(block[0].parent, 7);
  EXPECT_EQ(block[1].vertex, 5);
  EXPECT_EQ(block[1].parent, 99);  // max parent kept
}

TEST(Sieve, OutputSortedForCompressingCodecs) {
  Sieve sieve;
  sieve.reset(1, 1000);
  std::vector<Candidate> block = {{500, 1}, {3, 2}, {77, 3}, {3, 9}};
  sieve_and_dedup(sieve, 0, block, true);
  for (std::size_t i = 1; i < block.size(); ++i) {
    EXPECT_LT(block[i - 1].vertex, block[i].vertex);
  }
  // Sorted + unique means the block is bitmap-encodable.
  WireStats stats;
  std::vector<std::uint8_t> bytes;
  encode_candidates<Candidate>(block, WireFormat::kBitmap, bytes, &stats);
  EXPECT_EQ(stats.blocks_bitmap, 1u);
}

}  // namespace
}  // namespace dbfs::comm
