#include "bfs/bfs2d.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

Bfs2DOptions opts_with(int cores, int threads = 1) {
  Bfs2DOptions o;
  o.cores = cores;
  o.threads_per_rank = threads;
  o.machine = model::franklin();
  return o;
}

class Bfs2DCoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(Bfs2DCoreSweep, MatchesSerialOnRmat) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(GetParam())};
  const auto out = bfs.run(0);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(out.level, serial.level) << "cores=" << GetParam();
}

TEST_P(Bfs2DCoreSweep, PassesValidation) {
  const auto built = test::rmat_graph(10, 8, 5);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(GetParam())};
  const auto out = bfs.run(11);
  const auto v = graph::validate_bfs_tree(
      built.csr, 11, out.parent, graph::reference_levels(built.csr, 11));
  EXPECT_TRUE(v.ok) << "cores=" << GetParam() << ": " << v.error;
}

INSTANTIATE_TEST_SUITE_P(Cores, Bfs2DCoreSweep,
                         ::testing::Values(1, 4, 9, 16, 64, 121, 256));

class Bfs2DBackendSweep
    : public ::testing::TestWithParam<sparse::SpmsvBackend> {};

TEST_P(Bfs2DBackendSweep, BackendsAgree) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  auto opts = opts_with(16);
  opts.backend = GetParam();
  Bfs2D bfs{built.edges, n, opts};
  const auto out = bfs.run(0);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(out.level, serial.level);
}

INSTANTIATE_TEST_SUITE_P(Backends, Bfs2DBackendSweep,
                         ::testing::Values(sparse::SpmsvBackend::kAuto,
                                           sparse::SpmsvBackend::kSpa,
                                           sparse::SpmsvBackend::kHeap),
                         [](const auto& info) {
                           return sparse::to_string(info.param);
                         });

TEST(Bfs2D, PathGraphManyLevels) {
  const auto edges = test::path_edges(50);
  Bfs2D bfs{edges, 50, opts_with(9)};
  const auto out = bfs.run(0);
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(out.level[v], v);
}

TEST(Bfs2D, DisconnectedComponentUnreached) {
  const auto edges = test::two_triangles();
  Bfs2D bfs{edges, 7, opts_with(4)};
  const auto out = bfs.run(3);
  EXPECT_EQ(out.level[0], kUnreached);
  EXPECT_EQ(out.level[4], 1);
  EXPECT_EQ(out.parent[3], 3);
}

TEST(Bfs2D, SourceAnywhereOnGrid) {
  const auto built = test::rmat_graph(8);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(9)};
  for (vid_t source : {vid_t{0}, n / 2, n - 1}) {
    const auto out = bfs.run(source);
    const auto serial = serial_bfs(built.csr, source);
    EXPECT_EQ(out.level, serial.level) << "source=" << source;
  }
}

TEST(Bfs2D, GridRoundsDownToSquare) {
  const auto edges = test::path_edges(32);
  Bfs2D bfs{edges, 32, opts_with(12)};  // 3x3 grid, 9 cores used
  EXPECT_EQ(bfs.grid().pr(), 3);
  EXPECT_EQ(bfs.cores_used(), 9);
}

TEST(Bfs2D, HybridMatchesFlat) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  Bfs2D flat{built.edges, n, opts_with(16, 1)};
  Bfs2D hybrid{built.edges, n, opts_with(64, 4)};  // same 4x4 grid
  EXPECT_EQ(flat.run(0).level, hybrid.run(0).level);
}

TEST(Bfs2D, DiagonalVectorDistributionSameAnswer) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  auto opts = opts_with(16);
  opts.vector_dist = dist::VectorDistKind::kDiagonal;
  Bfs2D diag{built.edges, n, opts};
  const auto out = diag.run(0);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(out.level, serial.level);
}

TEST(Bfs2D, DiagonalDistributionIdlesOffDiagonalRanks) {
  // The Figure 4 mechanism: off-diagonal ranks wait while diagonals merge.
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  auto opts = opts_with(16);
  opts.vector_dist = dist::VectorDistKind::kDiagonal;
  Bfs2D diag{built.edges, n, opts};
  const auto out = diag.run(test::hub_source(built.csr));
  const auto& grid = diag.grid();
  double diag_comm = 0.0;
  double off_comm = 0.0;
  int off_count = 0;
  for (int r = 0; r < grid.ranks(); ++r) {
    if (grid.row_of(r) == grid.col_of(r)) {
      diag_comm += out.report.per_rank_comm[r];
    } else {
      off_comm += out.report.per_rank_comm[r];
      ++off_count;
    }
  }
  diag_comm /= grid.pr();
  off_comm /= off_count;
  EXPECT_GT(off_comm, diag_comm);
}

TEST(Bfs2D, TwoDVectorDistributionIsBalanced) {
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(16)};
  const auto out = bfs.run(test::hub_source(built.csr));
  // §4.3: "almost no load imbalance" — bounded MPI-time spread.
  double min_comm = 1e30;
  double max_comm = 0.0;
  for (double c : out.report.per_rank_comm) {
    min_comm = std::min(min_comm, c);
    max_comm = std::max(max_comm, c);
  }
  EXPECT_LT(max_comm / std::max(min_comm, 1e-30), 2.0);
}

TEST(Bfs2D, ReportHasExpandAndFoldTraffic) {
  const auto built = test::rmat_graph(10);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(16)};
  const auto out = bfs.run(test::hub_source(built.csr));
  EXPECT_GT(out.report.allgather_bytes, 0u);
  EXPECT_GT(out.report.alltoall_bytes, 0u);
  EXPECT_GT(out.report.transpose_bytes, 0u);
  EXPECT_GT(out.report.total_seconds, 0.0);
}

TEST(Bfs2D, BackendCountersPopulated) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  auto opts = opts_with(16);
  opts.backend = sparse::SpmsvBackend::kSpa;
  Bfs2D bfs{built.edges, n, opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  EXPECT_GT(out.report.spmsv_spa_calls, 0);
  EXPECT_EQ(out.report.spmsv_heap_calls, 0);
}

TEST(Bfs2D, SingleRankDegenerateGrid) {
  const auto built = test::rmat_graph(8);
  const vid_t n = built.csr.num_vertices();
  Bfs2D bfs{built.edges, n, opts_with(1)};
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(bfs.run(0).level, serial.level);
}

TEST(Bfs2D, RejectsBadSource) {
  const auto edges = test::path_edges(4);
  Bfs2D bfs{edges, 4, opts_with(4)};
  EXPECT_THROW(bfs.run(99), std::out_of_range);
}

}  // namespace
}  // namespace dbfs::bfs
