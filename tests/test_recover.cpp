// Fail-stop recovery (src/recover/): kill ranks mid-traversal and demand
// the survivors finish with the exact fault-free answer. The contract
// under test is the strongest one the subsystem makes — parents and
// levels bit-identical to an unfaulted run, for both distributions, both
// threading modes, and both recovery policies — plus the inertness
// guarantees (checkpointing without kills changes nothing) and the
// FaultPlan serialization that carries kill schedules.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/report_json.hpp"
#include "bfs/serial.hpp"
#include "core/engine.hpp"
#include "graph/validator.hpp"
#include "recover/checkpoint.hpp"
#include "simmpi/fault.hpp"
#include "test_helpers.hpp"

namespace dbfs {
namespace {

core::EngineOptions base_options(core::Algorithm algorithm, int cores) {
  core::EngineOptions opts;
  opts.algorithm = algorithm;
  opts.cores = cores;
  opts.machine = model::generic();
  return opts;
}

simmpi::RankKill level_kill(int rank, int level) {
  simmpi::RankKill kill;
  kill.rank = rank;
  kill.at_level = level;
  return kill;
}

simmpi::RankKill time_kill(int rank, double at) {
  simmpi::RankKill kill;
  kill.rank = rank;
  kill.at_time = at;
  return kill;
}

// The acceptance matrix: a mid-traversal kill for every distributed
// algorithm x {shrink, spare} x checkpoint cadence must complete, pass
// the Graph500 validator, and reproduce the fault-free parents and
// levels bit-for-bit.
TEST(RecoverChaos, KilledRunsMatchFaultFreeBitForBit) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  const auto reference = graph::reference_levels(built.csr, source);

  const core::Algorithm algorithms[] = {
      core::Algorithm::kOneDFlat, core::Algorithm::kOneDHybrid,
      core::Algorithm::kTwoDFlat, core::Algorithm::kTwoDHybrid};
  const recover::Policy policies[] = {recover::Policy::kShrink,
                                      recover::Policy::kSpare};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions clean = base_options(algorithm, 16);
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    for (recover::Policy policy : policies) {
      for (int cadence : {1, 2}) {
        core::EngineOptions opts = base_options(algorithm, 16);
        opts.faults.rank_kills = {level_kill(1, 2)};
        opts.recover.policy = policy;
        opts.recover.checkpoint_every = cadence;
        core::Engine engine{built.edges, n, opts};
        const auto out = engine.run(source);

        const std::string label = std::string(core::to_string(algorithm)) +
                                  "/" + recover::to_string(policy) +
                                  "/every=" + std::to_string(cadence);
        EXPECT_EQ(out.parent, expected.parent) << label;
        EXPECT_EQ(out.level, expected.level) << label;
        EXPECT_GE(out.report.recover.rank_failures, 1) << label;
        const auto v = graph::validate_bfs_tree(built.csr, source,
                                                out.parent, reference);
        EXPECT_TRUE(v.ok) << label << ": " << v.error;
      }
    }
  }
}

// The sieved/compressed wire paths rebuild their visited bitmaps from
// the snapshot; a replay through them must still be exact.
TEST(RecoverChaos, WireFormatsSurviveKills) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const core::Algorithm algorithms[] = {core::Algorithm::kOneDFlat,
                                        core::Algorithm::kTwoDFlat};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions clean = base_options(algorithm, 16);
    clean.wire_format = comm::WireFormat::kAuto;
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    core::EngineOptions opts = clean;
    opts.faults.rank_kills = {level_kill(2, 2)};
    opts.recover.checkpoint_every = 1;
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);
    EXPECT_EQ(out.parent, expected.parent) << core::to_string(algorithm);
    EXPECT_EQ(out.level, expected.level) << core::to_string(algorithm);
  }
}

TEST(RecoverChaos, TimeTriggeredKillRecovers) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 8);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);
  ASSERT_GT(expected.report.total_seconds, 0.0);

  core::EngineOptions opts = clean;
  opts.faults.rank_kills = {
      time_kill(3, 0.4 * expected.report.total_seconds)};
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.report.recover.rank_failures, 1);
  // The makespan keeps running through the failure: detection and
  // restore are paid on the virtual clocks.
  EXPECT_GT(out.report.total_seconds, expected.report.total_seconds);
}

// Cadence 0 keeps only the implicit source snapshot: every recovery is
// a full replay from level 0, even when a second kill lands on the
// already-shrunken communicator mid-replay.
TEST(RecoverChaos, SourceOnlyReplaySurvivesDoubleKills) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 8);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  core::EngineOptions opts = clean;
  opts.faults.rank_kills = {level_kill(2, 1), level_kill(1, 3)};
  opts.recover.checkpoint_every = 0;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.report.recover.rank_failures, 2);
  // Cadence 0 means no level-barrier snapshots — only the implicit
  // level-0 (source) snapshot every armed run takes.
  EXPECT_EQ(out.report.recover.checkpoints_taken, 1);
  // The second kill fires at level 3 after a replay from the source, so
  // at least levels 1..3 run more than once.
  EXPECT_GE(out.report.recover.replayed_levels, 3);
}

// Two ranks scheduled to die at the same level: the second failure is
// detected during the replay the first one triggered, so both restores
// come from the same snapshot — restore-after-restore must be
// idempotent.
TEST(RecoverChaos, RestoreAfterRestoreFromTheSameSnapshotIsIdempotent) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const core::Algorithm algorithms[] = {core::Algorithm::kOneDFlat,
                                        core::Algorithm::kTwoDFlat};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions clean = base_options(algorithm, 16);
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    core::EngineOptions opts = clean;
    opts.faults.rank_kills = {level_kill(1, 2), level_kill(3, 2)};
    opts.recover.checkpoint_every = 1;
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);
    EXPECT_EQ(out.parent, expected.parent) << core::to_string(algorithm);
    EXPECT_EQ(out.level, expected.level) << core::to_string(algorithm);
    EXPECT_EQ(out.report.recover.rank_failures, 2)
        << core::to_string(algorithm);
  }
}

// A kill early in the traversal re-partitions the survivors; the
// snapshots taken afterwards describe the *shrunken* layout, and a
// second kill must restore exactly from one of them (cadence 1 bounds
// the replay to one level per failure — a restore from the source would
// blow that bound).
TEST(RecoverChaos, PostShrinkSnapshotsRestoreExactly) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const core::Algorithm algorithms[] = {core::Algorithm::kOneDFlat,
                                        core::Algorithm::kTwoDFlat};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions clean = base_options(algorithm, 16);
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    core::EngineOptions opts = clean;
    opts.faults.rank_kills = {level_kill(1, 1), level_kill(2, 3)};
    opts.recover.policy = recover::Policy::kShrink;
    opts.recover.checkpoint_every = 1;
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);
    EXPECT_EQ(out.parent, expected.parent) << core::to_string(algorithm);
    EXPECT_EQ(out.level, expected.level) << core::to_string(algorithm);
    EXPECT_EQ(out.report.recover.rank_failures, 2)
        << core::to_string(algorithm);
    EXPECT_GE(out.report.recover.checkpoints_taken, 2)
        << core::to_string(algorithm);
    EXPECT_LE(out.report.recover.replayed_levels, 2)
        << core::to_string(algorithm);
  }
}

TEST(RecoverChaos, DoubleKillShrinksTwice) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 8);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  core::EngineOptions opts = clean;
  opts.faults.rank_kills = {level_kill(2, 1), level_kill(1, 3)};
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.report.recover.rank_failures, 2);
  EXPECT_EQ(out.report.recover.ranks_lost, 2);
}

TEST(Recover, PayloadByteHelpersPriceRestores) {
  recover::Checkpoint ckpt;
  ckpt.level = {0, 1, kUnreached, 2};  // 3 visited vertices
  ckpt.frontier = {3};
  EXPECT_EQ(recover::restore_payload_bytes(ckpt),
            3u * (sizeof(vid_t) + sizeof(level_t)) + sizeof(vid_t));
  EXPECT_EQ(recover::shard_payload_bytes(10),
            10u * (sizeof(vid_t) + sizeof(level_t)));
  EXPECT_EQ(recover::restore_payload_bytes(recover::Checkpoint{}), 0u);
}

TEST(Recover, SpareExhaustionFailsLoudly) {
  const auto built = test::rmat_graph(8, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts = base_options(core::Algorithm::kOneDFlat, 8);
  opts.faults.rank_kills = {level_kill(1, 1), level_kill(2, 2)};
  opts.recover.policy = recover::Policy::kSpare;
  opts.recover.spare_ranks = 1;
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  EXPECT_THROW(engine.run(source), simmpi::RankFailedError);
}

TEST(Recover, RankFailedErrorNamesRankLevelAndSite) {
  const auto built = test::rmat_graph(8, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts = base_options(core::Algorithm::kOneDFlat, 8);
  opts.faults.rank_kills = {level_kill(3, 2)};
  opts.recover.policy = recover::Policy::kSpare;
  opts.recover.spare_ranks = 0;  // unrecoverable: the error must escape
  core::Engine engine{built.edges, n, opts};
  try {
    engine.run(source);
    FAIL() << "expected RankFailedError";
  } catch (const simmpi::RankFailedError& e) {
    EXPECT_EQ(e.rank(), 3);
    EXPECT_EQ(e.level(), 2);
    EXPECT_EQ(e.kind(), "rank-failure");
    EXPECT_FALSE(e.site().empty());
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
    EXPECT_NE(what.find("level 2"), std::string::npos) << what;
    EXPECT_NE(what.find(e.site()), std::string::npos) << what;
    EXPECT_GE(e.virtual_time(), 0.0);
  }
}

// The inertness guarantee: arming checkpoints without scheduling kills
// must leave the raw report JSON byte-identical (checkpoints are modeled
// as overlapped replication and never touch the clocks).
TEST(Recover, CheckpointingWithoutKillsIsByteIdentical) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const core::Algorithm algorithms[] = {core::Algorithm::kOneDFlat,
                                        core::Algorithm::kTwoDFlat};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions plain = base_options(algorithm, 16);
    core::Engine plain_engine{built.edges, n, plain};
    const auto expected = plain_engine.run(source);

    core::EngineOptions armed = plain;
    armed.recover.checkpoint_every = 2;
    core::Engine armed_engine{built.edges, n, armed};
    const auto out = armed_engine.run(source);

    EXPECT_EQ(out.parent, expected.parent);
    EXPECT_EQ(out.level, expected.level);
    EXPECT_EQ(bfs::report_to_json(out.report, false),
              bfs::report_to_json(expected.report, false))
        << core::to_string(algorithm);
  }
}

TEST(Recover, ReportAndMetricsDescribeTheRecovery) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts = base_options(core::Algorithm::kTwoDFlat, 16);
  opts.faults.rank_kills = {level_kill(1, 2)};
  opts.recover.policy = recover::Policy::kShrink;
  opts.recover.checkpoint_every = 1;
  opts.metrics = true;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);

  const bfs::RecoverReport& r = out.report.recover;
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.policy, "shrink");
  EXPECT_EQ(r.checkpoint_every, 1);
  EXPECT_EQ(r.rank_failures, 1);
  EXPECT_GE(r.checkpoints_taken, 1);
  EXPECT_GT(r.checkpoint_bytes, 0u);
  EXPECT_GE(r.replayed_levels, 0);
  EXPECT_GT(r.recovery_seconds, 0.0);
  // A 4x4 grid folds to 3x3: one death retires the square remainder.
  EXPECT_EQ(r.ranks_lost, 7);
  EXPECT_EQ(r.spares_used, 0);

  ASSERT_NE(engine.metrics(), nullptr);
  EXPECT_EQ(engine.metrics()->counter("recover.rank_failures"), 1);
  EXPECT_EQ(engine.metrics()->counter("recover.shrinks"), 1);
  EXPECT_GE(engine.metrics()->counter("recover.checkpoints"), 1);

  const std::string json = bfs::report_to_json(out.report, false);
  EXPECT_NE(json.find("\"recover\":{\"policy\":\"shrink\""),
            std::string::npos)
      << json;
}

TEST(Recover, SparePromotionKeepsTheGrid) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts = base_options(core::Algorithm::kTwoDFlat, 16);
  opts.faults.rank_kills = {level_kill(5, 2)};
  opts.recover.policy = recover::Policy::kSpare;
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.report.recover.spares_used, 1);
  EXPECT_EQ(out.report.recover.ranks_lost, 0);
  EXPECT_EQ(engine.cores_used(), 16);
}

// ---- FaultPlan serialization (kill schedules ride the plan JSON) ------

TEST(RecoverFaultPlan, JsonRoundTripPreservesEveryField) {
  simmpi::FaultPlan plan;
  plan.seed = 42;
  plan.collective_fail_rate = 0.125;
  plan.max_collective_retries = 9;
  plan.backoff_base_seconds = 2e-4;
  plan.backoff_cap_seconds = 3e-3;
  plan.corrupt_rate = 0.0625;
  plan.corrupt_kind = simmpi::CorruptKind::kDrop;
  plan.max_payload_retries = 5;
  plan.compute_stragglers = {{0, 2.5}, {3, 1.75}};
  plan.nic_stragglers = {{1, 4.0}};
  plan.rank_kills = {level_kill(2, 3), time_kill(0, 0.875)};

  const simmpi::FaultPlan back =
      simmpi::fault_plan_from_json(simmpi::to_json(plan));
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.collective_fail_rate, plan.collective_fail_rate);
  EXPECT_EQ(back.max_collective_retries, plan.max_collective_retries);
  EXPECT_EQ(back.backoff_base_seconds, plan.backoff_base_seconds);
  EXPECT_EQ(back.backoff_cap_seconds, plan.backoff_cap_seconds);
  EXPECT_EQ(back.corrupt_rate, plan.corrupt_rate);
  EXPECT_EQ(back.corrupt_kind, plan.corrupt_kind);
  EXPECT_EQ(back.max_payload_retries, plan.max_payload_retries);
  EXPECT_EQ(back.compute_stragglers, plan.compute_stragglers);
  EXPECT_EQ(back.nic_stragglers, plan.nic_stragglers);
  ASSERT_EQ(back.rank_kills.size(), 2u);
  EXPECT_EQ(back.rank_kills[0].rank, 2);
  EXPECT_EQ(back.rank_kills[0].at_level, 3);
  EXPECT_EQ(back.rank_kills[0].at_time, -1.0);
  EXPECT_EQ(back.rank_kills[1].rank, 0);
  EXPECT_EQ(back.rank_kills[1].at_level, -1);
  EXPECT_EQ(back.rank_kills[1].at_time, 0.875);
  // Round-tripping again is byte-stable.
  EXPECT_EQ(simmpi::to_json(back), simmpi::to_json(plan));
}

TEST(RecoverFaultPlan, PreKillJsonLoadsInert) {
  // A plan written before the fail-stop class existed has no
  // "rank_kills" key; it must load with an empty kill schedule, and a
  // kill-free plan must not emit the key.
  const std::string old_json =
      "{\"seed\":7,\"collective_fail_rate\":0.25,"
      "\"max_collective_retries\":6,\"backoff_base_seconds\":0.0001,"
      "\"backoff_cap_seconds\":0.002,\"corrupt_rate\":0,"
      "\"corrupt_kind\":\"mix\",\"max_payload_retries\":3,"
      "\"compute_stragglers\":[],\"nic_stragglers\":[]}";
  const simmpi::FaultPlan plan = simmpi::fault_plan_from_json(old_json);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.collective_fail_rate, 0.25);
  EXPECT_TRUE(plan.rank_kills.empty());

  simmpi::FaultPlan no_kills;
  no_kills.seed = 3;
  EXPECT_EQ(simmpi::to_json(no_kills).find("rank_kills"),
            std::string::npos);
  EXPECT_FALSE(no_kills.enabled());
}

TEST(RecoverFaultPlan, KillSpecParsing) {
  const auto kills = simmpi::parse_kill_specs("2@level3,0@t0.05");
  ASSERT_EQ(kills.size(), 2u);
  EXPECT_EQ(kills[0].rank, 2);
  EXPECT_EQ(kills[0].at_level, 3);
  EXPECT_EQ(kills[1].rank, 0);
  EXPECT_EQ(kills[1].at_time, 0.05);

  EXPECT_THROW(simmpi::parse_kill_specs(""), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_kill_specs("x@level1"), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_kill_specs("1@"), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_kill_specs("1@lvl3"), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_kill_specs("1@level-2"),
               std::invalid_argument);
  EXPECT_THROW(simmpi::parse_kill_specs("1@t-0.5"), std::invalid_argument);
}

TEST(RecoverFaultPlan, KillsForAbsentRanksAreIgnored) {
  const auto built = test::rmat_graph(8, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 4);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  // Rank 50 does not exist on 4 ranks; like the straggler lists, the
  // entry is ignored and the run completes kill-free.
  core::EngineOptions opts = clean;
  opts.faults.rank_kills = {level_kill(50, 1)};
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.report.recover.rank_failures, 0);
}

TEST(RecoverFaultPlan, PolicyParsing) {
  EXPECT_EQ(recover::parse_policy("shrink"), recover::Policy::kShrink);
  EXPECT_EQ(recover::parse_policy("spare"), recover::Policy::kSpare);
  EXPECT_THROW(recover::parse_policy("clone"), std::invalid_argument);
  EXPECT_STREQ(recover::to_string(recover::Policy::kShrink), "shrink");
  EXPECT_STREQ(recover::to_string(recover::Policy::kSpare), "spare");
}

}  // namespace
}  // namespace dbfs
