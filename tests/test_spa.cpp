#include "sparse/spa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/prng.hpp"

namespace dbfs::sparse {
namespace {

auto max_combine = [](vid_t a, vid_t b) { return std::max(a, b); };

TEST(Spa, AccumulateAndExtractSorted) {
  Spa<vid_t> spa{10};
  spa.accumulate(7, 70, max_combine);
  spa.accumulate(2, 20, max_combine);
  spa.accumulate(5, 50, max_combine);
  const auto v = spa.extract_and_clear();
  ASSERT_EQ(v.nnz(), 3);
  EXPECT_EQ(v.entries()[0].index, 2);
  EXPECT_EQ(v.entries()[1].index, 5);
  EXPECT_EQ(v.entries()[2].index, 7);
  EXPECT_TRUE(v.invariants_hold());
}

TEST(Spa, CombinesDuplicates) {
  Spa<vid_t> spa{10};
  spa.accumulate(3, 5, max_combine);
  spa.accumulate(3, 9, max_combine);
  spa.accumulate(3, 1, max_combine);
  const auto v = spa.extract_and_clear();
  ASSERT_EQ(v.nnz(), 1);
  EXPECT_EQ(v.entries()[0].value, 9);
}

TEST(Spa, OccupiedTracking) {
  Spa<vid_t> spa{10};
  EXPECT_FALSE(spa.occupied(4));
  spa.accumulate(4, 1, max_combine);
  EXPECT_TRUE(spa.occupied(4));
  EXPECT_FALSE(spa.occupied(5));
}

TEST(Spa, ExtractClearsForReuse) {
  Spa<vid_t> spa{10};
  spa.accumulate(1, 1, max_combine);
  (void)spa.extract_and_clear();
  EXPECT_EQ(spa.touched_count(), 0);
  EXPECT_FALSE(spa.occupied(1));
  spa.accumulate(2, 2, max_combine);
  const auto v = spa.extract_and_clear();
  ASSERT_EQ(v.nnz(), 1);
  EXPECT_EQ(v.entries()[0].index, 2);
}

TEST(Spa, ClearWithoutExtract) {
  Spa<vid_t> spa{10};
  spa.accumulate(1, 1, max_combine);
  spa.clear();
  EXPECT_FALSE(spa.occupied(1));
  EXPECT_EQ(spa.extract_and_clear().nnz(), 0);
}

TEST(Spa, ResizeGrowsAndClears) {
  Spa<vid_t> spa{4};
  spa.accumulate(3, 1, max_combine);
  spa.resize(100);
  EXPECT_EQ(spa.dim(), 100);
  EXPECT_FALSE(spa.occupied(3));
  spa.accumulate(99, 5, max_combine);
  EXPECT_TRUE(spa.occupied(99));
}

TEST(Spa, ResizeSmallerJustClears) {
  Spa<vid_t> spa{100};
  spa.accumulate(50, 1, max_combine);
  spa.resize(10);
  EXPECT_EQ(spa.dim(), 100);  // capacity kept
  EXPECT_FALSE(spa.occupied(50));
}

TEST(Spa, MemoryBytesGrowsWithDim) {
  Spa<vid_t> small{64};
  Spa<vid_t> big{1 << 16};
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
  // The O(dim) footprint the paper cites: at least dim values.
  EXPECT_GE(big.memory_bytes(), (1u << 16) * sizeof(vid_t));
}

TEST(Spa, RandomizedAgainstReferenceMap) {
  util::Xoshiro256 rng{5};
  Spa<vid_t> spa{1000};
  std::vector<vid_t> reference(1000, -1);
  for (int i = 0; i < 5000; ++i) {
    const auto idx = static_cast<vid_t>(rng.next_below(1000));
    const auto val = static_cast<vid_t>(rng.next_below(1 << 20));
    spa.accumulate(idx, val, max_combine);
    reference[static_cast<std::size_t>(idx)] =
        std::max(reference[static_cast<std::size_t>(idx)], val);
  }
  const auto v = spa.extract_and_clear();
  for (const auto& e : v.entries()) {
    EXPECT_EQ(e.value, reference[static_cast<std::size_t>(e.index)]);
  }
  vid_t expected_nnz = 0;
  for (vid_t r : reference) {
    if (r >= 0) ++expected_nnz;
  }
  EXPECT_EQ(v.nnz(), expected_nnz);
}

}  // namespace
}  // namespace dbfs::sparse
