#include "model/cost.hpp"

#include <gtest/gtest.h>

namespace dbfs::model {
namespace {

TEST(NetworkCost, AlltoallvLatencyPlusBandwidth) {
  const MachineModel m = generic();
  const double zero_bytes = cost_alltoallv(m, 64, 0);
  EXPECT_DOUBLE_EQ(zero_bytes, 64 * m.alpha_net);
  const double with_data = cost_alltoallv(m, 64, 1 << 20);
  EXPECT_GT(with_data, zero_bytes);
}

TEST(NetworkCost, AlltoallvGrowsWithGroup) {
  const MachineModel m = franklin();
  EXPECT_LT(cost_alltoallv(m, 64, 1 << 20), cost_alltoallv(m, 4096, 1 << 20));
}

TEST(NetworkCost, AllgatherCheaperThanAlltoallAtScale) {
  // βN,ag grows more slowly with participants than βN,a2a on the torus
  // presets — the structural reason 2D's expand outlives its fold.
  const MachineModel m = franklin();
  EXPECT_LT(m.ag_beta(4096) / m.ag_beta(64),
            m.a2a_beta(4096) / m.a2a_beta(64));
}

TEST(NetworkCost, AllreduceLogarithmicLatency) {
  const MachineModel m = generic();
  const double g64 = cost_allreduce(m, 64, 8);
  const double g4096 = cost_allreduce(m, 4096, 8);
  EXPECT_NEAR(g4096 / g64, 2.0, 0.1);  // log2: 12/6
}

TEST(NetworkCost, BroadcastScalesWithTreeDepth) {
  const MachineModel m = generic();
  EXPECT_LT(cost_broadcast(m, 2, 4096), cost_broadcast(m, 1024, 4096));
}

TEST(NetworkCost, P2pIsCheapest) {
  const MachineModel m = generic();
  const std::size_t bytes = 1 << 16;
  EXPECT_LT(cost_p2p(m, bytes), cost_alltoallv(m, 64, bytes));
}

TEST(NetworkCost, ChunkedSendsPayPerMessage) {
  const MachineModel m = generic();
  const double few = cost_chunked_sends(m, 10, 1 << 20, 64);
  const double many = cost_chunked_sends(m, 10000, 1 << 20, 64);
  EXPECT_GT(many, few);
  // Per-message cost includes the matching factor 1 + 0.25*ceil(log2(64)).
  EXPECT_NEAR(many - few, 9990 * m.alpha_net * 2.5, 1e-12);
}

TEST(NetworkCost, ChunkedSendsMatchingGrowsWithPeers) {
  const MachineModel m = generic();
  EXPECT_GT(cost_chunked_sends(m, 1000, 0, 4096),
            cost_chunked_sends(m, 1000, 0, 16));
}

TEST(LocalCost1D, ZeroWorkZeroCost) {
  const MachineModel m = franklin();
  EXPECT_DOUBLE_EQ(cost_1d_local(m, Work1D{}), 0.0);
}

TEST(LocalCost1D, ScalesWithEdges) {
  const MachineModel m = franklin();
  Work1D w;
  w.n_local = 1 << 16;
  w.edges_scanned = 1000;
  w.words_packed = 2000;
  const double c1 = cost_1d_local(m, w);
  w.edges_scanned = 2000;
  w.words_packed = 4000;
  const double c2 = cost_1d_local(m, w);
  EXPECT_NEAR(c2 / c1, 2.0, 1e-9);
}

TEST(LocalCost1D, ThreadingDividesWork) {
  const MachineModel m = franklin();
  Work1D w;
  w.n_local = 1 << 16;
  w.edges_scanned = 100000;
  w.candidates_received = 100000;
  const double flat = cost_1d_local(m, w);
  w.threads = 4;
  const double threaded = cost_1d_local(m, w);
  EXPECT_LT(threaded, flat);
  // Not perfectly: efficiency < 1.
  EXPECT_GT(threaded, flat / 4.0);
}

TEST(LocalCost1D, SmallerWorkingSetCheaperChecks) {
  // The §5.1 benefit of distribution: distance checks against n/p-sized
  // arrays get cheaper as p grows (cache-resident).
  const MachineModel m = franklin();
  Work1D big;
  big.n_local = 1 << 26;
  big.candidates_received = 1 << 20;
  Work1D small = big;
  small.n_local = 1 << 12;
  EXPECT_GT(cost_1d_local(m, big), cost_1d_local(m, small));
}

TEST(LocalCost2D, SpaPaysWorkingSetHeapPaysLogFactor) {
  const MachineModel m = franklin();
  // Hypersparse regime (Fig 3's high-p side): output nnz ~ flops, so the
  // SPA pays a full irregular reference per flop into a DRAM-sized
  // accumulator and loses to the heap.
  Work2D w;
  w.spmsv_flops = 1 << 12;
  w.x_nnz = 1 << 6;
  w.output_nnz = 1 << 12;
  w.x_dim = 1 << 22;
  w.out_dim = 1 << 22;
  w.n_local = 1 << 14;
  w.heap_backend = false;
  const double spa_sparse = cost_2d_local(m, w);
  w.heap_backend = true;
  const double heap_sparse = cost_2d_local(m, w);
  EXPECT_GT(spa_sparse, heap_sparse);

  // Dense regime (low-p side): many accumulations per distinct output
  // row amortize the SPA's first-touch misses; the heap pays its log
  // factor on every flop and loses.
  w.spmsv_flops = 1 << 18;
  w.x_nnz = 1 << 14;
  w.output_nnz = 1 << 12;
  w.heap_backend = false;
  const double spa_dense = cost_2d_local(m, w);
  w.heap_backend = true;
  const double heap_dense = cost_2d_local(m, w);
  EXPECT_LT(spa_dense, heap_dense);
}

TEST(LocalCost2D, BiggerBlocksCostMore) {
  // §5.2: the 2D algorithm's n/pr, n/pc working sets exceed 1D's n/p —
  // same flops, more expensive references.
  const MachineModel m = franklin();
  Work2D w;
  w.spmsv_flops = 1 << 18;
  w.x_nnz = 1 << 12;
  w.x_dim = 1 << 24;
  w.out_dim = 1 << 24;
  w.n_local = 1 << 16;
  const double big_blocks = cost_2d_local(m, w);
  w.x_dim = 1 << 14;
  w.out_dim = 1 << 14;
  const double small_blocks = cost_2d_local(m, w);
  EXPECT_GT(big_blocks, small_blocks);
}

TEST(ThreadBarriers, FlatIsFree) {
  const MachineModel m = hopper();
  EXPECT_DOUBLE_EQ(cost_thread_barriers(m, 1, 4), 0.0);
  EXPECT_GT(cost_thread_barriers(m, 6, 4), 0.0);
  EXPECT_GT(cost_thread_barriers(m, 6, 8), cost_thread_barriers(m, 6, 4));
}

}  // namespace
}  // namespace dbfs::model
