#include <gtest/gtest.h>

#include <cmath>

#include "bfs/baseline_graph500.hpp"
#include "bfs/baseline_pbgl.hpp"
#include "bfs/serial.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

TEST(Graph500Ref, ProducesCorrectBfs) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  Graph500RefOptions opts;
  opts.ranks = 8;
  opts.machine = model::franklin();
  Bfs1D baseline{built.edges, n, graph500_reference_options(opts)};
  const vid_t source = test::hub_source(built.csr);
  const auto out = baseline.run(source);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(out.level, serial.level);
}

TEST(Graph500Ref, SlowerThanTunedFlat1D) {
  const auto built = test::rmat_graph(11, 16);
  const vid_t n = built.csr.num_vertices();
  const auto machine = model::franklin();

  Bfs1DOptions tuned;
  tuned.ranks = 64;
  tuned.machine = machine;
  Bfs1D ours{built.edges, n, tuned};

  Graph500RefOptions ref_opts;
  ref_opts.ranks = 64;
  ref_opts.machine = machine;
  Bfs1D reference{built.edges, n, graph500_reference_options(ref_opts)};

  const vid_t source = test::hub_source(built.csr);
  const double ours_t = ours.run(source).report.total_seconds;
  const double ref_t = reference.run(source).report.total_seconds;
  // The paper reports 2.7-4.1x; require a clear gap in the right
  // direction without pinning the exact constant.
  EXPECT_GT(ref_t / ours_t, 1.5);
}

TEST(Graph500Ref, GapGrowsWithConcurrency) {
  // §6: 2.72x at 512, 3.43x at 1024, 4.13x at 2048 cores. The paper's
  // runs keep per-rank volume substantial at every core count (scale 32),
  // so we test the progression under the same regime: fixed edges per
  // rank (weak scaling), where the reference's per-message overheads
  // degrade with the peer count.
  std::vector<double> gaps;
  // The growth regime matches the paper's core counts (hundreds to
  // thousands); at tens of ranks both codes are compute-bound and the
  // ratio is noisy, so the sweep starts at 256.
  const int ranks_list[] = {512, 1024, 2048};
  const int scale_list[] = {13, 14, 15};
  for (int i = 0; i < 3; ++i) {
    const int ranks = ranks_list[i];
    const auto built = test::rmat_graph(scale_list[i], 16);
    const vid_t n = built.csr.num_vertices();
    // Miniaturized machine, like the bench harness: fixed latencies are
    // scaled by the problem-size ratio so the compute:latency balance
    // matches the paper's operating point.
    const auto machine = model::miniaturized(
        model::franklin(), static_cast<double>(built.directed_edge_count) /
                               std::pow(2.0, 33.0));
    Bfs1DOptions tuned;
    tuned.ranks = ranks;
    tuned.machine = machine;
    Bfs1D ours{built.edges, n, tuned};
    Graph500RefOptions ref_opts;
    ref_opts.ranks = ranks;
    ref_opts.machine = machine;
    Bfs1D reference{built.edges, n, graph500_reference_options(ref_opts)};
    const vid_t source = test::hub_source(built.csr);
    gaps.push_back(reference.run(source).report.total_seconds /
                   ours.run(source).report.total_seconds);
  }
  // The gap is multi-x at every concurrency and larger at the top of the
  // sweep than at the bottom (the paper's 2.72x -> 4.13x direction);
  // strict level-by-level monotonicity is noise-sensitive at miniature
  // scale, so only the endpoints are pinned.
  for (double gap : gaps) EXPECT_GT(gap, 1.5);
  EXPECT_GT(gaps.back(), gaps.front());
}

TEST(PbglLike, ProducesCorrectBfs) {
  const auto built = test::rmat_graph(9);
  const vid_t n = built.csr.num_vertices();
  PbglLikeOptions opts;
  opts.ranks = 8;
  opts.machine = model::carver();
  Bfs1D baseline{built.edges, n, pbgl_like_options(opts)};
  const vid_t source = test::hub_source(built.csr);
  const auto out = baseline.run(source);
  const auto serial = serial_bfs(built.csr, source);
  EXPECT_EQ(out.level, serial.level);
}

TEST(PbglLike, MuchSlowerThanGraph500Ref) {
  // Table 2's ordering: PBGL is the slowest implementation by a wide
  // margin (10x+ behind the tuned codes).
  const auto built = test::rmat_graph(10, 16);
  const vid_t n = built.csr.num_vertices();
  const auto machine = model::carver();

  PbglLikeOptions pbgl_opts;
  pbgl_opts.ranks = 64;
  pbgl_opts.machine = machine;
  Bfs1D pbgl{built.edges, n, pbgl_like_options(pbgl_opts)};

  Graph500RefOptions ref_opts;
  ref_opts.ranks = 64;
  ref_opts.machine = machine;
  Bfs1D reference{built.edges, n, graph500_reference_options(ref_opts)};

  const vid_t source = test::hub_source(built.csr);
  EXPECT_GT(pbgl.run(source).report.total_seconds,
            reference.run(source).report.total_seconds);
}

TEST(Baselines, OptionLabelsDistinguishAlgorithms) {
  EXPECT_EQ(graph500_reference_options({}).label, "graph500-ref");
  EXPECT_EQ(pbgl_like_options({}).label, "pbgl-like");
  EXPECT_EQ(graph500_reference_options({}).comm_mode,
            CommMode::kChunkedSends);
  EXPECT_EQ(pbgl_like_options({}).comm_mode, CommMode::kPerEdgeSends);
  EXPECT_GT(pbgl_like_options({}).extra_per_edge_seconds,
            graph500_reference_options({}).extra_per_edge_seconds);
}

}  // namespace
}  // namespace dbfs::bfs
