#include "util/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dbfs::util {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    set_.push_back(name);
  }

  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }

  std::vector<const char*> set_;
};

TEST_F(OptionsTest, EnvIntFallsBackWhenUnset) {
  ::unsetenv("DISTBFS_TEST_INT");
  EXPECT_EQ(env_int("DISTBFS_TEST_INT", 7), 7);
}

TEST_F(OptionsTest, EnvIntParsesValue) {
  SetEnv("DISTBFS_TEST_INT", "42");
  EXPECT_EQ(env_int("DISTBFS_TEST_INT", 7), 42);
}

TEST_F(OptionsTest, EnvIntNegative) {
  SetEnv("DISTBFS_TEST_INT", "-13");
  EXPECT_EQ(env_int("DISTBFS_TEST_INT", 7), -13);
}

TEST_F(OptionsTest, EnvIntGarbageFallsBack) {
  SetEnv("DISTBFS_TEST_INT", "zebra");
  EXPECT_EQ(env_int("DISTBFS_TEST_INT", 7), 7);
}

TEST_F(OptionsTest, EnvDoubleParsesValue) {
  SetEnv("DISTBFS_TEST_DBL", "2.5");
  EXPECT_DOUBLE_EQ(env_double("DISTBFS_TEST_DBL", 1.0), 2.5);
}

TEST_F(OptionsTest, EnvFlagSemantics) {
  ::unsetenv("DISTBFS_TEST_FLAG");
  EXPECT_FALSE(env_flag("DISTBFS_TEST_FLAG"));
  SetEnv("DISTBFS_TEST_FLAG", "1");
  EXPECT_TRUE(env_flag("DISTBFS_TEST_FLAG"));
  SetEnv("DISTBFS_TEST_FLAG", "0");
  EXPECT_FALSE(env_flag("DISTBFS_TEST_FLAG"));
  SetEnv("DISTBFS_TEST_FLAG", "false");
  EXPECT_FALSE(env_flag("DISTBFS_TEST_FLAG"));
  SetEnv("DISTBFS_TEST_FLAG", "yes");
  EXPECT_TRUE(env_flag("DISTBFS_TEST_FLAG"));
}

TEST_F(OptionsTest, EnvStrFallback) {
  ::unsetenv("DISTBFS_TEST_STR");
  EXPECT_EQ(env_str("DISTBFS_TEST_STR", "dflt"), "dflt");
  SetEnv("DISTBFS_TEST_STR", "hopper");
  EXPECT_EQ(env_str("DISTBFS_TEST_STR", "dflt"), "hopper");
}

TEST_F(OptionsTest, ProjectEnvPrefersNewPrefix) {
  SetEnv("DISTBFS_TESTKNOB", "new");
  SetEnv("BFSSIM_TESTKNOB", "old");
  EXPECT_STREQ(project_env("TESTKNOB"), "new");
}

TEST_F(OptionsTest, ProjectEnvHonorsLegacyAlias) {
  ::unsetenv("DISTBFS_TESTKNOB");
  SetEnv("BFSSIM_TESTKNOB", "old");
  EXPECT_STREQ(project_env("TESTKNOB"), "old");
}

TEST_F(OptionsTest, ProjectEnvNullWhenNeitherSet) {
  ::unsetenv("DISTBFS_TESTKNOB");
  ::unsetenv("BFSSIM_TESTKNOB");
  EXPECT_EQ(project_env("TESTKNOB"), nullptr);
  EXPECT_EQ(project_env_int("TESTKNOB", 9), 9);
  EXPECT_FALSE(project_env_flag("TESTKNOB"));
}

TEST_F(OptionsTest, ProjectEnvIntParsesEitherSpelling) {
  ::unsetenv("DISTBFS_TESTKNOB");
  SetEnv("BFSSIM_TESTKNOB", "21");
  EXPECT_EQ(project_env_int("TESTKNOB", 9), 21);
  SetEnv("DISTBFS_TESTKNOB", "33");
  EXPECT_EQ(project_env_int("TESTKNOB", 9), 33);
}

TEST_F(OptionsTest, BenchScaleHonorsOverride) {
  ::unsetenv("DISTBFS_FAST");
  ::unsetenv("BFSSIM_FAST");
  ::unsetenv("DISTBFS_SCALE");
  SetEnv("BFSSIM_SCALE", "20");  // legacy alias keeps working
  EXPECT_EQ(bench_scale(14), 20);
  SetEnv("DISTBFS_SCALE", "18");
  EXPECT_EQ(bench_scale(14), 18);
}

TEST_F(OptionsTest, BenchScaleFastShrinks) {
  ::unsetenv("DISTBFS_SCALE");
  ::unsetenv("BFSSIM_SCALE");
  ::unsetenv("BFSSIM_FAST");
  SetEnv("DISTBFS_FAST", "1");
  EXPECT_EQ(bench_scale(16), 12);
  EXPECT_EQ(bench_scale(12), 10);  // floor at 10
}

}  // namespace
}  // namespace dbfs::util
