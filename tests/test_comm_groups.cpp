// Subgroup-scoped collective semantics: the 2D algorithm's correctness
// hinges on collectives over processor rows/columns leaving the rest of
// the cluster untouched, and on the miniaturization/NIC plumbing.
#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "simmpi/comm.hpp"

namespace dbfs::simmpi {
namespace {

TEST(GroupComm, AlltoallvOverSubgroupOnly) {
  Cluster c{6, model::generic()};
  const std::vector<int> group{1, 3, 5};
  auto send = FlatExchange<int>::sized(3);
  send.data[0] = {42};
  send.counts[0] = {0, 1, 0};  // slot 0 (rank 1) -> slot 1 (rank 3)
  send.counts[1] = {0, 0, 0};
  send.counts[2] = {0, 0, 0};
  const auto recv = alltoallv(c, group, std::move(send));
  EXPECT_EQ(recv.data[1], (std::vector<int>{42}));
  // Non-members' clocks untouched.
  EXPECT_DOUBLE_EQ(c.clocks().now(0), 0.0);
  EXPECT_DOUBLE_EQ(c.clocks().now(2), 0.0);
  EXPECT_DOUBLE_EQ(c.clocks().now(4), 0.0);
  EXPECT_GT(c.clocks().now(1), 0.0);
  EXPECT_DOUBLE_EQ(c.clocks().now(1), c.clocks().now(3));
}

TEST(GroupComm, DisjointGroupsAdvanceIndependently) {
  Cluster c{4, model::generic()};
  const std::vector<int> g1{0, 1};
  const std::vector<int> g2{2, 3};
  (void)allgatherv(c, g1, std::vector<std::vector<int>>{{1, 2, 3}, {4}});
  (void)allgatherv(c, g2, std::vector<std::vector<int>>{{9}, {}});
  // Different payload sizes => different costs; groups don't synchronize
  // with each other.
  EXPECT_GT(c.clocks().now(0), c.clocks().now(2));
}

TEST(GroupComm, AllgathervWithEmptyPieces) {
  Cluster c{3, model::generic()};
  const std::vector<int> group{0, 1, 2};
  const auto result =
      allgatherv(c, group, std::vector<std::vector<int>>{{}, {7}, {}});
  EXPECT_EQ(result, (std::vector<int>{7}));
}

TEST(GroupComm, TransposeWithUnequalPieces) {
  Cluster c{4, model::generic()};
  const ProcessGrid grid{2};
  std::vector<std::vector<int>> pieces{{1, 2, 3}, {}, {4, 5, 6, 7, 8}, {9}};
  const auto out = transpose_exchange(c, grid, std::move(pieces));
  EXPECT_EQ(out[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(out[2], (std::vector<int>{}));
  EXPECT_EQ(out[1], (std::vector<int>{4, 5, 6, 7, 8}));
  EXPECT_EQ(out[3], (std::vector<int>{9}));
}

TEST(GroupComm, SingleRankCollectivesAreCheap) {
  Cluster c{1, model::generic()};
  const std::vector<int> group{0};
  auto send = FlatExchange<int>::sized(1);
  send.data[0] = {1, 2};
  send.counts[0] = {2};
  const auto recv = alltoallv(c, group, std::move(send));
  EXPECT_EQ(recv.data[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(c.traffic().total_bytes(), 0u);  // self-send, nothing metered
}

TEST(NicFactor, FlatPaysContentionHybridOwnsBandwidth) {
  auto machine = model::hopper();  // 24 cores/node, nic_contention > 0
  Cluster flat{48, machine, 1};
  Cluster hybrid{8, machine, 6};
  // Flat: 24 ranks share a node -> heavy contention multiplier.
  EXPECT_GT(flat.nic_factor(), 1.0);
  // Hybrid: 6-thread ranks own 6 cores' bandwidth; factor well below 1.
  EXPECT_LT(hybrid.nic_factor(), 0.5);
  EXPECT_GT(flat.nic_factor() / hybrid.nic_factor(), 3.0);
}

TEST(NicFactor, NoContentionMachineIsPureBandwidthShare) {
  auto machine = model::generic();
  machine.nic_contention = 0.0;
  Cluster flat{16, machine, 1};
  Cluster hybrid{4, machine, 4};
  EXPECT_DOUBLE_EQ(flat.nic_factor(), 1.0);
  EXPECT_DOUBLE_EQ(hybrid.nic_factor(), 0.25);
}

TEST(Miniaturized, ScalesLatenciesAndCachesOnly) {
  const auto full = model::franklin();
  const auto mini = model::miniaturized(full, 1e-3);
  EXPECT_DOUBLE_EQ(mini.alpha_net, full.alpha_net * 1e-3);
  EXPECT_DOUBLE_EQ(mini.thread_barrier_seconds,
                   full.thread_barrier_seconds * 1e-3);
  ASSERT_EQ(mini.caches.size(), full.caches.size());
  for (std::size_t i = 0; i < full.caches.size(); ++i) {
    EXPECT_DOUBLE_EQ(mini.caches[i].capacity_bytes,
                     full.caches[i].capacity_bytes * 1e-3);
    EXPECT_DOUBLE_EQ(mini.caches[i].latency_seconds,
                     full.caches[i].latency_seconds);
  }
  EXPECT_DOUBLE_EQ(mini.beta_net, full.beta_net);
  EXPECT_DOUBLE_EQ(mini.beta_local, full.beta_local);
}

TEST(Miniaturized, PreservesWorkingSetRelationships) {
  // If a working set is DRAM-bound on the full machine, the same set
  // scaled by the factor must be DRAM-bound on the mini machine.
  const auto full = model::franklin();
  const auto mini = model::miniaturized(full, 1e-4);
  const double full_ws = 64.0 * 1024 * 1024;  // 64 MB: deep DRAM
  EXPECT_NEAR(mini.alpha_local(full_ws * 1e-4), full.alpha_local(full_ws),
              full.alpha_local(full_ws) * 1e-9);
}

TEST(Miniaturized, RejectsNonPositiveFactor) {
  EXPECT_THROW(model::miniaturized(model::generic(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(model::miniaturized(model::generic(), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::simmpi
