#include "simmpi/process_grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dbfs::simmpi {
namespace {

TEST(ProcessGrid, SquareBasics) {
  const ProcessGrid g{4};
  EXPECT_EQ(g.pr(), 4);
  EXPECT_EQ(g.pc(), 4);
  EXPECT_EQ(g.ranks(), 16);
  EXPECT_TRUE(g.is_square());
}

TEST(ProcessGrid, RankRoundTrip) {
  const ProcessGrid g{3, 5};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      const int r = g.rank_of(i, j);
      EXPECT_EQ(g.row_of(r), i);
      EXPECT_EQ(g.col_of(r), j);
    }
  }
}

TEST(ProcessGrid, RowGroupMembers) {
  const ProcessGrid g{3};
  const auto row1 = g.row_group(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[0], g.rank_of(1, 0));
  EXPECT_EQ(row1[2], g.rank_of(1, 2));
}

TEST(ProcessGrid, ColGroupMembers) {
  const ProcessGrid g{3};
  const auto col2 = g.col_group(2);
  ASSERT_EQ(col2.size(), 3u);
  EXPECT_EQ(col2[0], g.rank_of(0, 2));
  EXPECT_EQ(col2[2], g.rank_of(2, 2));
}

TEST(ProcessGrid, GroupsPartitionWorld) {
  const ProcessGrid g{4};
  std::set<int> seen;
  for (int i = 0; i < 4; ++i) {
    for (int r : g.row_group(i)) {
      EXPECT_TRUE(seen.insert(r).second);
    }
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(g.world().size(), 16u);
}

TEST(ProcessGrid, TransposePartnerInvolution) {
  const ProcessGrid g{5};
  for (int r = 0; r < g.ranks(); ++r) {
    EXPECT_EQ(g.transpose_partner(g.transpose_partner(r)), r);
  }
  EXPECT_EQ(g.transpose_partner(g.rank_of(2, 2)), g.rank_of(2, 2));
  EXPECT_EQ(g.transpose_partner(g.rank_of(1, 3)), g.rank_of(3, 1));
}

TEST(ProcessGrid, ClosestSquareMatchesPaperConfigs) {
  // §6: "the closest square processor grid".
  EXPECT_EQ(ProcessGrid::closest_square(1024).pr(), 32);
  EXPECT_EQ(ProcessGrid::closest_square(2025).pr(), 45);
  EXPECT_EQ(ProcessGrid::closest_square(4096).pr(), 64);
  // 5040 cores -> 70^2 = 4900 ranks used.
  EXPECT_EQ(ProcessGrid::closest_square(5040).pr(), 70);
  // Hybrid: 40000 cores at 6 threads -> 6666 ranks -> 81x81.
  EXPECT_EQ(ProcessGrid::closest_square(40000, 6).pr(), 81);
}

TEST(ProcessGrid, ClosestSquareDegenerate) {
  EXPECT_EQ(ProcessGrid::closest_square(1).ranks(), 1);
  EXPECT_EQ(ProcessGrid::closest_square(3).pr(), 1);
  EXPECT_THROW(ProcessGrid::closest_square(0), std::invalid_argument);
}

TEST(ProcessGrid, RejectsBadDimensions) {
  EXPECT_THROW(ProcessGrid(0, 4), std::invalid_argument);
  EXPECT_THROW(ProcessGrid(4, -1), std::invalid_argument);
}

}  // namespace
}  // namespace dbfs::simmpi
