#include "model/machine.hpp"

#include <gtest/gtest.h>

namespace dbfs::model {
namespace {

TEST(MachineModel, PresetsResolve) {
  EXPECT_EQ(preset("franklin").name, "franklin");
  EXPECT_EQ(preset("hopper").name, "hopper");
  EXPECT_EQ(preset("carver").name, "carver");
  EXPECT_EQ(preset("generic").name, "generic");
  EXPECT_THROW(preset("roadrunner"), std::invalid_argument);
}

TEST(MachineModel, AlphaLocalMonotoneInWorkingSet) {
  const MachineModel m = franklin();
  double prev = 0.0;
  for (double bytes = 1024; bytes < 1e10; bytes *= 4) {
    const double a = m.alpha_local(bytes);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(MachineModel, AlphaLocalHitsCacheLatencies) {
  const MachineModel m = franklin();
  // Inside L1, latency equals the L1 figure.
  EXPECT_DOUBLE_EQ(m.alpha_local(1024), m.caches.front().latency_seconds);
  // At exactly the last level's capacity, latency equals the DRAM figure;
  // beyond it the TLB-growth term takes over (gently, not a cliff).
  const double cap = m.caches.back().capacity_bytes;
  EXPECT_DOUBLE_EQ(m.alpha_local(cap), m.caches.back().latency_seconds);
  EXPECT_GT(m.alpha_local(64 * cap), m.caches.back().latency_seconds);
  EXPECT_LT(m.alpha_local(64 * cap), 3 * m.caches.back().latency_seconds);
}

TEST(MachineModel, TlbGrowthIsMonotoneBeyondDram) {
  const MachineModel m = hopper();
  const double cap = m.caches.back().capacity_bytes;
  EXPECT_LT(m.alpha_local(2 * cap), m.alpha_local(16 * cap));
  EXPECT_LT(m.alpha_local(16 * cap), m.alpha_local(256 * cap));
}

TEST(MachineModel, AlphaLocalInterpolatesBetweenLevels) {
  const MachineModel m = franklin();
  const double l2 = m.caches[1].capacity_bytes;
  const double l3 = m.caches[2].capacity_bytes;
  const double mid = m.alpha_local((l2 + l3) / 2);
  EXPECT_GT(mid, m.caches[1].latency_seconds);
  EXPECT_LT(mid, m.caches[2].latency_seconds);
}

TEST(MachineModel, A2aBetaGrowsWithParticipants) {
  const MachineModel m = franklin();
  EXPECT_LT(m.a2a_beta(64), m.a2a_beta(4096));
  // Allgather's effective beta is calibrated to Table 1: higher than a2a
  // per byte at these group sizes, growing no faster than a2a.
  EXPECT_GE(m.ag_beta(512), m.ag_beta(8));
  EXPECT_GT(m.ag_beta(32), m.a2a_beta(32));
}

TEST(MachineModel, A2aBetaTorusExponent) {
  const MachineModel m = franklin();
  // p^(1/3) scaling: 8x participants -> 2x beta.
  EXPECT_NEAR(m.a2a_beta(4096) / m.a2a_beta(512), 2.0, 0.01);
}

TEST(MachineModel, ThreadEfficiencyDecreasing) {
  const MachineModel m = hopper();
  EXPECT_DOUBLE_EQ(m.thread_efficiency(1), 1.0);
  EXPECT_GT(m.thread_efficiency(2), m.thread_efficiency(6));
  EXPECT_GT(m.thread_efficiency(6), 0.5);
}

TEST(MachineModel, HopperFasterCoresSlowerNetworkThanFranklin) {
  const MachineModel f = franklin();
  const MachineModel h = hopper();
  // The paper's §6 observation that drives the Fig 5 vs Fig 7 reversal.
  EXPECT_LT(h.compute_scale, f.compute_scale);
  EXPECT_GT(h.beta_net, f.beta_net);
  EXPECT_LT(h.alpha_net, f.alpha_net);
}

TEST(MachineModel, HandlesDegenerateGroupSizes) {
  const MachineModel m = generic();
  EXPECT_GT(m.a2a_beta(0), 0.0);
  EXPECT_GT(m.a2a_beta(1), 0.0);
}

}  // namespace
}  // namespace dbfs::model
