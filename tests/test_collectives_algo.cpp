// Tests for the §7 collective-algorithm exploration: allgather
// implementation selection.
#include <gtest/gtest.h>

#include "bfs/bfs2d.hpp"
#include "bfs/serial.hpp"
#include "model/cost.hpp"
#include "test_helpers.hpp"

namespace dbfs::model {
namespace {

TEST(AllgatherAlgo, SmallPayloadsFavorLogLatency) {
  const auto m = franklin();
  // 8 bytes over 1024 ranks: latency-dominated.
  EXPECT_LT(cost_allgatherv(m, 1024, 8, AllgatherAlgo::kRecursiveDoubling),
            cost_allgatherv(m, 1024, 8, AllgatherAlgo::kRing));
}

TEST(AllgatherAlgo, LargePayloadsFavorRing) {
  const auto m = franklin();
  // 64 MB over 16 ranks: bandwidth-dominated; ring's 1.0x beta wins.
  EXPECT_LT(cost_allgatherv(m, 16, 64 << 20, AllgatherAlgo::kRing),
            cost_allgatherv(m, 16, 64 << 20,
                            AllgatherAlgo::kRecursiveDoubling));
}

TEST(AllgatherAlgo, AutoIsMinimumEverywhere) {
  const auto m = hopper();
  for (int g : {4, 64, 1024}) {
    for (std::size_t bytes : {8ul, 4096ul, 1ul << 22}) {
      const double autoc = cost_allgatherv(m, g, bytes, AllgatherAlgo::kAuto);
      for (auto algo : {AllgatherAlgo::kRing,
                        AllgatherAlgo::kRecursiveDoubling,
                        AllgatherAlgo::kBruck}) {
        EXPECT_LE(autoc, cost_allgatherv(m, g, bytes, algo))
            << "g=" << g << " bytes=" << bytes;
      }
    }
  }
}

TEST(AllgatherAlgo, CrossoverExists) {
  // There must be a payload size where the preferred algorithm flips —
  // the tradeoff the §7 bullet asks about.
  const auto m = franklin();
  const int g = 256;
  bool small_prefers_log = false;
  bool large_prefers_ring = false;
  for (std::size_t bytes = 8; bytes <= (1ull << 26); bytes *= 4) {
    const double ring = cost_allgatherv(m, g, bytes, AllgatherAlgo::kRing);
    const double rd = cost_allgatherv(m, g, bytes,
                                      AllgatherAlgo::kRecursiveDoubling);
    if (rd < ring) small_prefers_log = true;
    if (ring < rd && small_prefers_log) large_prefers_ring = true;
  }
  EXPECT_TRUE(small_prefers_log);
  EXPECT_TRUE(large_prefers_ring);
}

TEST(AllgatherAlgo, NamesDistinct) {
  EXPECT_STREQ(to_string(AllgatherAlgo::kRing), "ring");
  EXPECT_STREQ(to_string(AllgatherAlgo::kAuto), "auto");
  EXPECT_STRNE(to_string(AllgatherAlgo::kBruck),
               to_string(AllgatherAlgo::kRecursiveDoubling));
}

class AlgoSweep : public ::testing::TestWithParam<AllgatherAlgo> {};

TEST_P(AlgoSweep, Bfs2DAnswerUnchanged) {
  const auto built = test::rmat_graph(9);
  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  opts.allgather_algo = GetParam();
  bfs::Bfs2D run{built.edges, built.csr.num_vertices(), opts};
  const vid_t source = test::hub_source(built.csr);
  const auto serial = bfs::serial_bfs(built.csr, source);
  EXPECT_EQ(run.run(source).level, serial.level);
}

INSTANTIATE_TEST_SUITE_P(All, AlgoSweep,
                         ::testing::Values(AllgatherAlgo::kRing,
                                           AllgatherAlgo::kRecursiveDoubling,
                                           AllgatherAlgo::kBruck,
                                           AllgatherAlgo::kAuto),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AllgatherAlgo, AutoNeverSlowerEndToEnd) {
  // High-diameter graph: many tiny expands, where the switcher helps.
  const auto edges = test::path_edges(300);
  bfs::Bfs2DOptions ring;
  ring.cores = 64;
  ring.machine = model::hopper();
  bfs::Bfs2DOptions autoalgo = ring;
  autoalgo.allgather_algo = AllgatherAlgo::kAuto;
  bfs::Bfs2D a{edges, 300, ring};
  bfs::Bfs2D b{edges, 300, autoalgo};
  const double ring_t = a.run(0).report.total_seconds;
  const double auto_t = b.run(0).report.total_seconds;
  EXPECT_LE(auto_t, ring_t * (1 + 1e-9));
}

}  // namespace
}  // namespace dbfs::model
