#include "bfs/report_json.hpp"

#include <gtest/gtest.h>

#include "bfs/bfs2d.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

RunReport sample_report() {
  RunReport r;
  r.algorithm = "2d-flat";
  r.machine = "hopper";
  r.ranks = 16;
  r.threads_per_rank = 1;
  r.cores = 16;
  r.total_seconds = 0.5;
  r.comm_seconds_mean = 0.2;
  r.comp_seconds_mean = 0.25;
  r.edges_traversed = 1234;
  LevelStats l;
  l.level = 0;
  l.frontier = 1;
  l.edges_scanned = 42;
  r.levels.push_back(l);
  r.per_rank_comm = {0.1, 0.2};
  r.per_rank_comp = {0.3, 0.4};
  return r;
}

TEST(ReportJson, ContainsCoreFields) {
  const std::string json = report_to_json(sample_report());
  EXPECT_NE(json.find("\"algorithm\":\"2d-flat\""), std::string::npos);
  EXPECT_NE(json.find("\"machine\":\"hopper\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":16"), std::string::npos);
  EXPECT_NE(json.find("\"edges_traversed\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"levels\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"edges\":42"), std::string::npos);
}

TEST(ReportJson, PerRankArraysOptIn) {
  const std::string without = report_to_json(sample_report(), false);
  EXPECT_EQ(without.find("per_rank_comm"), std::string::npos);
  const std::string with = report_to_json(sample_report(), true);
  EXPECT_NE(with.find("\"per_rank_comm\":[0.1,0.2]"), std::string::npos);
}

TEST(ReportJson, LevelBreakdownKeysAreGated) {
  RunReport r = sample_report();
  r.levels.front().comm_seconds = 0.01;
  r.levels.front().comm_seconds_max = 0.02;
  r.levels.front().comp_seconds = 0.03;
  r.levels.front().comp_seconds_max = 0.04;

  // Unobserved runs keep the pre-observability schema: no per-level
  // comm/comp keys, even if the fields were (wrongly) populated.
  r.has_level_breakdown = false;
  const std::string without = report_to_json(r);
  // (The _mean/_max whole-run keys always exist at the top level; the
  // bare per-level spellings below cannot match those.)
  EXPECT_EQ(without.find("\"comm_seconds\":"), std::string::npos);
  EXPECT_EQ(without.find("\"comp_seconds\":"), std::string::npos);

  r.has_level_breakdown = true;
  const std::string with = report_to_json(r);
  EXPECT_NE(with.find("\"comm_seconds\":0.01"), std::string::npos);
  EXPECT_NE(with.find("\"comm_seconds_max\":0.02"), std::string::npos);
  EXPECT_NE(with.find("\"comp_seconds\":0.03"), std::string::npos);
  EXPECT_NE(with.find("\"comp_seconds_max\":0.04"), std::string::npos);
}

TEST(ReportJson, DefaultObserverOptionsChangeNothing) {
  const RunReport r = sample_report();
  const ReportJsonOptions defaults;
  EXPECT_EQ(report_to_json(r, defaults), report_to_json(r));
  ReportJsonOptions with_ranks;
  with_ranks.include_per_rank = true;
  EXPECT_EQ(report_to_json(r, with_ranks), report_to_json(r, true));
}

TEST(ReportJson, EscapesStrings) {
  RunReport r = sample_report();
  r.algorithm = "we\"ird\\name\n";
  const std::string json = report_to_json(r);
  EXPECT_NE(json.find("we\\\"ird\\\\name\\n"), std::string::npos);
}

TEST(ReportJson, BalancedBracesAndBrackets) {
  // A structural smoke test standing in for a full JSON parser: every
  // opener has a closer and the object starts/ends correctly.
  const auto built = test::rmat_graph(9);
  Bfs2DOptions opts;
  opts.cores = 16;
  Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  const std::string json = report_to_json(out.report, true);

  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, LevelsArrayMatchesReport) {
  const auto built = test::rmat_graph(9);
  Bfs2DOptions opts;
  opts.cores = 16;
  Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  const std::string json = report_to_json(out.report);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"level\":"); pos != std::string::npos;
       pos = json.find("\"level\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, out.report.levels.size());
}

}  // namespace
}  // namespace dbfs::bfs
