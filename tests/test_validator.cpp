#include "graph/validator.hpp"

#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace dbfs::graph {
namespace {

// Path 0-1-2-3 plus a chord 0-2.
CsrGraph small_graph() {
  EdgeList e{5};
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  e.add(0, 2);
  e.symmetrize();
  return CsrGraph::from_edges(e);
}

TEST(ReferenceLevels, ShortestDistances) {
  const CsrGraph g = small_graph();
  const auto levels = reference_levels(g, 0);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);  // via the chord
  EXPECT_EQ(levels[3], 2);
  EXPECT_EQ(levels[4], kUnreached);
}

TEST(Validator, AcceptsCorrectTree) {
  const CsrGraph g = small_graph();
  const std::vector<vid_t> parent{0, 0, 0, 2, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent, reference_levels(g, 0));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.visited_count, 4);
  EXPECT_EQ(r.levels[3], 2);
}

TEST(Validator, RejectsWrongSourceParent) {
  const CsrGraph g = small_graph();
  const std::vector<vid_t> parent{1, 0, 0, 2, kNoVertex};
  EXPECT_FALSE(validate_bfs_tree(g, 0, parent).ok);
}

TEST(Validator, RejectsParentCycle) {
  const CsrGraph g = small_graph();
  // 1 and 2 point at each other; both claim reachability.
  const std::vector<vid_t> parent{0, 2, 1, 2, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cycle"), std::string::npos);
}

TEST(Validator, RejectsNonEdgeTreeEdge) {
  const CsrGraph g = small_graph();
  // 3's parent claimed to be 0, but {0,3} is not an edge.
  const std::vector<vid_t> parent{0, 0, 0, 0, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("check 3"), std::string::npos);
}

TEST(Validator, RejectsUnvisitedReachable) {
  const CsrGraph g = small_graph();
  // 3 is reachable but left unvisited: edge {2,3} spans visited/unvisited.
  const std::vector<vid_t> parent{0, 0, 0, kNoVertex, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("check 4"), std::string::npos);
}

TEST(Validator, RejectsNonShortestTree) {
  const CsrGraph g = small_graph();
  // 2 hung off 1 (level 2) instead of 0 (level 1): a valid tree, but not
  // a breadth-first one. Caught by check 4 or check 5.
  const std::vector<vid_t> parent{0, 0, 1, 2, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent, reference_levels(g, 0));
  EXPECT_FALSE(r.ok);
}

TEST(Validator, RejectsSizeMismatch) {
  const CsrGraph g = small_graph();
  EXPECT_FALSE(validate_bfs_tree(g, 0, {0, 0}).ok);
}

TEST(Validator, RejectsOutOfRangeParent) {
  const CsrGraph g = small_graph();
  const std::vector<vid_t> parent{0, 99, kNoVertex, kNoVertex, kNoVertex};
  EXPECT_FALSE(validate_bfs_tree(g, 0, parent).ok);
}

TEST(Validator, CountsTraversedEdges) {
  const CsrGraph g = small_graph();
  const std::vector<vid_t> parent{0, 0, 0, 2, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent);
  ASSERT_TRUE(r.ok);
  // All 8 directed adjacencies are within the visited set.
  EXPECT_EQ(r.traversed_edges, 8);
}

TEST(Validator, SingletonSourceOk) {
  EdgeList e{3};
  e.add(1, 2);
  e.symmetrize();
  const CsrGraph g = CsrGraph::from_edges(e);
  // BFS from isolated vertex 0 visits only itself.
  const std::vector<vid_t> parent{0, kNoVertex, kNoVertex};
  const auto r = validate_bfs_tree(g, 0, parent);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.visited_count, 1);
}

}  // namespace
}  // namespace dbfs::graph
