#include "dist/vector_dist.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dbfs::dist {
namespace {

TEST(VectorDist, TwoDSpreadsOverAllRanks) {
  const simmpi::ProcessGrid grid{4};
  const VectorDist vd{64, grid, VectorDistKind::kTwoD};
  std::map<int, vid_t> owned;
  for (vid_t v = 0; v < 64; ++v) ++owned[vd.owner_rank(v)];
  EXPECT_EQ(owned.size(), 16u);
  for (const auto& [rank, count] : owned) EXPECT_EQ(count, 4);
}

TEST(VectorDist, TwoDPieceRangesTileRowBlocks) {
  const simmpi::ProcessGrid grid{3};
  const VectorDist vd{30, grid, VectorDistKind::kTwoD};
  for (int i = 0; i < 3; ++i) {
    vid_t cursor = vd.row_blocks().begin(i);
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(vd.piece_begin(i, j), cursor);
      cursor = vd.piece_end(i, j);
    }
    EXPECT_EQ(cursor, vd.row_blocks().end(i));
  }
}

TEST(VectorDist, TwoDOwnerMatchesPieceRange) {
  const simmpi::ProcessGrid grid{3};
  const VectorDist vd{100, grid, VectorDistKind::kTwoD};
  for (vid_t v = 0; v < 100; ++v) {
    const int rank = vd.owner_rank(v);
    const int i = grid.row_of(rank);
    const int j = grid.col_of(rank);
    EXPECT_GE(v, vd.piece_begin(i, j));
    EXPECT_LT(v, vd.piece_end(i, j));
  }
}

TEST(VectorDist, TwoDOwnerColConsistent) {
  const simmpi::ProcessGrid grid{4};
  const VectorDist vd{128, grid, VectorDistKind::kTwoD};
  for (vid_t v = 0; v < 128; ++v) {
    const int i = vd.row_blocks().owner(v);
    const int j = vd.owner_col(i, v - vd.row_blocks().begin(i));
    EXPECT_EQ(vd.owner_rank(v), grid.rank_of(i, j));
  }
}

TEST(VectorDist, DiagonalOwnsWholeRowBlocks) {
  const simmpi::ProcessGrid grid{4};
  const VectorDist vd{64, grid, VectorDistKind::kDiagonal};
  for (vid_t v = 0; v < 64; ++v) {
    const int i = vd.row_blocks().owner(v);
    EXPECT_EQ(vd.owner_rank(v), grid.rank_of(i, i));
    EXPECT_EQ(vd.owner_col(i, v - vd.row_blocks().begin(i)), i);
  }
}

TEST(VectorDist, DiagonalOffDiagonalPiecesEmpty) {
  const simmpi::ProcessGrid grid{3};
  const VectorDist vd{27, grid, VectorDistKind::kDiagonal};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) {
        EXPECT_EQ(vd.piece_size(i, j), vd.row_blocks().size(i));
      } else {
        EXPECT_EQ(vd.piece_size(i, j), 0);
      }
    }
  }
}

TEST(VectorDist, RequiresSquareGrid) {
  EXPECT_THROW(VectorDist(16, simmpi::ProcessGrid(2, 4),
                          VectorDistKind::kTwoD),
               std::invalid_argument);
}

TEST(VectorDist, ToStringNames) {
  EXPECT_STREQ(to_string(VectorDistKind::kTwoD), "2d");
  EXPECT_STREQ(to_string(VectorDistKind::kDiagonal), "diagonal");
}

}  // namespace
}  // namespace dbfs::dist
