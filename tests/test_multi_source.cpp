#include "bfs/multi_source.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace dbfs::bfs {
namespace {

TEST(MultiSource, SingleSourceMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const vid_t source = test::hub_source(built.csr);
  const std::vector<vid_t> sources{source};
  const auto ms = multi_source_bfs(built.csr, sources);
  const auto serial = serial_bfs(built.csr, source);
  for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
    EXPECT_EQ(ms.level(v, 0), serial.level[v]) << "v=" << v;
  }
}

TEST(MultiSource, BatchMatchesPerSourceSerial) {
  const auto built = test::rmat_graph(10, 8, 21);
  const auto comps = graph::connected_components(built.csr);
  const auto sources = graph::sample_sources(built.csr, comps, 16, 4);
  ASSERT_EQ(sources.size(), 16u);
  const auto ms = multi_source_bfs(built.csr, sources);
  for (int s = 0; s < 16; ++s) {
    const auto serial = serial_bfs(built.csr, sources[static_cast<std::size_t>(s)]);
    for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
      ASSERT_EQ(ms.level(v, s), serial.level[v])
          << "source " << s << " vertex " << v;
    }
  }
}

TEST(MultiSource, FullBatchOf64) {
  const auto built = test::rmat_graph(9, 16, 3);
  const auto comps = graph::connected_components(built.csr);
  auto sources = graph::sample_sources(built.csr, comps, 64, 9);
  // Pad with repeats if the component is small: duplicates are legal.
  while (sources.size() < 64) sources.push_back(sources.front());
  const auto ms = multi_source_bfs(built.csr, sources);
  // Spot-check three lanes against serial.
  for (int s : {0, 31, 63}) {
    const auto serial = serial_bfs(built.csr, sources[static_cast<std::size_t>(s)]);
    for (vid_t v = 0; v < built.csr.num_vertices(); v += 7) {
      ASSERT_EQ(ms.level(v, s), serial.level[v]);
    }
  }
}

TEST(MultiSource, DuplicateSourcesGetIdenticalLanes) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);
  const std::vector<vid_t> sources{source, source, source};
  const auto ms = multi_source_bfs(built.csr, sources);
  for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
    EXPECT_EQ(ms.level(v, 0), ms.level(v, 1));
    EXPECT_EQ(ms.level(v, 1), ms.level(v, 2));
  }
  EXPECT_EQ(ms.visited_counts[0], ms.visited_counts[1]);
}

TEST(MultiSource, VisitedCountsMatchLevels) {
  const auto built = test::rmat_graph(10);
  const auto comps = graph::connected_components(built.csr);
  const auto sources = graph::sample_sources(built.csr, comps, 8, 2);
  const auto ms = multi_source_bfs(built.csr, sources);
  for (int s = 0; s < static_cast<int>(sources.size()); ++s) {
    vid_t reached = 0;
    for (vid_t v = 0; v < built.csr.num_vertices(); ++v) {
      if (ms.level(v, s) != kUnreached) ++reached;
    }
    EXPECT_EQ(ms.visited_counts[static_cast<std::size_t>(s)], reached);
  }
}

TEST(MultiSource, DisconnectedSourcesStayInTheirComponents) {
  const auto edges = test::two_triangles();
  const auto g = graph::CsrGraph::from_edges(edges);
  const std::vector<vid_t> sources{0, 3};
  const auto ms = multi_source_bfs(g, sources);
  EXPECT_EQ(ms.level(1, 0), 1);
  EXPECT_EQ(ms.level(4, 0), kUnreached);  // source 0 can't reach triangle 2
  EXPECT_EQ(ms.level(4, 1), 1);
  EXPECT_EQ(ms.level(1, 1), kUnreached);
  EXPECT_EQ(ms.level(6, 0), kUnreached);  // isolated vertex
  EXPECT_EQ(ms.level(6, 1), kUnreached);
}

TEST(MultiSource, PathGraphDistances) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(20));
  const std::vector<vid_t> sources{0, 19, 10};
  const auto ms = multi_source_bfs(g, sources);
  for (vid_t v = 0; v < 20; ++v) {
    EXPECT_EQ(ms.level(v, 0), v);
    EXPECT_EQ(ms.level(v, 1), 19 - v);
    EXPECT_EQ(ms.level(v, 2), std::abs(v - 10));
  }
}

TEST(MultiSource, SharedTraversalScansFewerEdges) {
  // The point of batching: k lanes share adjacency scans, so the batched
  // edge count is far below k independent traversals'.
  const auto built = test::rmat_graph(11, 16);
  const auto comps = graph::connected_components(built.csr);
  const auto sources = graph::sample_sources(built.csr, comps, 32, 6);
  const auto ms = multi_source_bfs(built.csr, sources);
  eid_t independent = 0;
  for (vid_t s : sources) {
    independent += serial_bfs(built.csr, s).report.edges_traversed;
  }
  EXPECT_LT(ms.report.edges_traversed, independent / 4);
}

TEST(MultiSource, RejectsBadInput) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(4));
  const std::vector<vid_t> none;
  EXPECT_THROW(multi_source_bfs(g, none), std::invalid_argument);
  const std::vector<vid_t> too_many(65, 0);
  EXPECT_THROW(multi_source_bfs(g, too_many), std::invalid_argument);
  const std::vector<vid_t> out_of_range{99};
  EXPECT_THROW(multi_source_bfs(g, out_of_range), std::out_of_range);
}

TEST(MultiSource, RandomizedAgainstSerial) {
  util::Xoshiro256 rng{123};
  for (int trial = 0; trial < 5; ++trial) {
    const auto built = test::rmat_graph(8, 8, 100 + trial);
    const vid_t n = built.csr.num_vertices();
    std::vector<vid_t> sources;
    const int k = 1 + static_cast<int>(rng.next_below(12));
    for (int s = 0; s < k; ++s) {
      sources.push_back(
          static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n))));
    }
    const auto ms = multi_source_bfs(built.csr, sources);
    for (int s = 0; s < k; ++s) {
      const auto serial =
          serial_bfs(built.csr, sources[static_cast<std::size_t>(s)]);
      for (vid_t v = 0; v < n; ++v) {
        ASSERT_EQ(ms.level(v, s), serial.level[v])
            << "trial " << trial << " source " << s << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace dbfs::bfs
