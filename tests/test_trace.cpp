// Observability-layer tests: the tracer and metrics primitives, the
// invariant that attaching observers never perturbs a simulated run, and
// the reconciliation of trace spans against the RunReport the same run
// produced (the clocks and the trace are two views of one virtual
// timeline — they must agree to float tolerance).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "bfs/bfs1d.hpp"
#include "bfs/bfs2d.hpp"
#include "bfs/report_json.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace dbfs {
namespace {

constexpr double kTol = 1e-9;

TEST(Tracer, RecordsSpansPerRankWithLevelTags) {
  obs::Tracer tracer(2);
  EXPECT_EQ(tracer.ranks(), 2);
  EXPECT_EQ(tracer.level(), -1);

  tracer.set_level(3);
  tracer.record(0, obs::SpanKind::kCompute, "2d-spmsv", "", 0.5, 1.5);
  tracer.record(1, obs::SpanKind::kWait, "2d-fold", "Alltoallv", 1.0, 2.0);
  tracer.record(7, obs::SpanKind::kCompute, "dropped", "", 0.0, 1.0);
  tracer.instant(1, "collective-failure", 2.5, 0.125);

  EXPECT_EQ(tracer.total_spans(), 2u);
  ASSERT_EQ(tracer.spans(0).size(), 1u);
  const obs::Span& s = tracer.spans(0).front();
  EXPECT_STREQ(s.name, "2d-spmsv");
  EXPECT_EQ(s.kind, obs::SpanKind::kCompute);
  EXPECT_EQ(s.level, 3);
  EXPECT_DOUBLE_EQ(s.begin, 0.5);
  EXPECT_DOUBLE_EQ(s.end, 1.5);
  ASSERT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.instants().front().level, 3);
  EXPECT_DOUBLE_EQ(tracer.instants().front().seconds, 0.125);

  tracer.clear();
  EXPECT_EQ(tracer.total_spans(), 0u);
  EXPECT_TRUE(tracer.instants().empty());
  EXPECT_EQ(tracer.level(), -1);
  EXPECT_EQ(tracer.ranks(), 2);  // rank table survives a clear
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  obs::Tracer tracer(2);
  tracer.set_level(0);
  tracer.record(0, obs::SpanKind::kCompute, "1d-scan", "", 0.0, 1e-6);
  tracer.record(1, obs::SpanKind::kTransfer, "1d-exchange", "Alltoallv",
                1e-6, 3e-6);
  tracer.instant(0, "checksum-retry", 2e-6);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"Alltoallv\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Metrics, LogHistogramCountsAndMoments) {
  obs::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(0.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.zeros(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.75);
  // The zero mass is exact; positive quantiles interpolate inside their
  // log-2 bucket, so they stay within one bucket of the true value.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.99), 8.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(Metrics, RegistrySerializationIsDeterministic) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  EXPECT_TRUE(a.empty());

  // Populate in different orders; the ordered maps must serialize the
  // same either way, or run-to-run report diffs become noise.
  a.counter("x.calls") = 3;
  a.gauge("y.ratio") = 0.5;
  a.histogram("z.bytes").observe(1024.0);
  b.histogram("z.bytes").observe(1024.0);
  b.gauge("y.ratio") = 0.5;
  b.counter("x.calls") = 3;
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.to_json(), b.to_json());

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"counters\":{\"x.calls\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"y.ratio\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"z.bytes\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[10,1]]"), std::string::npos);

  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Trace, AttachingObserversDoesNotPerturbTheRun) {
  const auto built = test::rmat_graph(9);
  const vid_t source = test::hub_source(built.csr);

  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  bfs::Bfs2D plain{built.edges, built.csr.num_vertices(), opts};
  const auto base = plain.run(source);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  bfs::Bfs2D observed{built.edges, built.csr.num_vertices(), opts};
  const auto traced = observed.run(source);

  EXPECT_EQ(base.parent, traced.parent);
  EXPECT_EQ(base.level, traced.level);
  EXPECT_DOUBLE_EQ(base.report.total_seconds, traced.report.total_seconds);
  EXPECT_DOUBLE_EQ(base.report.comm_seconds_mean,
                   traced.report.comm_seconds_mean);
  EXPECT_DOUBLE_EQ(base.report.comp_seconds_mean,
                   traced.report.comp_seconds_mean);
  EXPECT_EQ(base.report.per_rank_comm, traced.report.per_rank_comm);
  EXPECT_EQ(base.report.per_rank_comp, traced.report.per_rank_comp);

  // The breakdown flag is the only report difference, and it gates the
  // extra JSON keys: an unobserved report keeps the pre-observability
  // schema byte-for-byte.
  EXPECT_FALSE(base.report.has_level_breakdown);
  EXPECT_TRUE(traced.report.has_level_breakdown);
  const std::string base_json = bfs::report_to_json(base.report);
  EXPECT_EQ(base_json.find("\"comm_seconds\":"), std::string::npos);
  EXPECT_EQ(base_json.find("\"comp_seconds\":"), std::string::npos);
  const std::string traced_json = bfs::report_to_json(traced.report);
  EXPECT_NE(traced_json.find("\"comm_seconds\":"), std::string::npos);
  EXPECT_NE(traced_json.find("\"comp_seconds_max\":"), std::string::npos);

  EXPECT_GT(tracer.total_spans(), 0u);
  EXPECT_GT(metrics.histogram("comm.wait_seconds").count(), 0u);
}

TEST(Trace, SpansReconcileWithRunReportClocks) {
  const auto built = test::rmat_graph(9);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  bfs::Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  const bfs::RunReport& r = out.report;

  ASSERT_EQ(tracer.ranks(), r.ranks);
  double latest_end = 0.0;
  for (int rank = 0; rank < r.ranks; ++rank) {
    double compute = 0.0;
    double wait = 0.0;
    double transfer = 0.0;
    for (const obs::Span& s : tracer.spans(rank)) {
      ASSERT_GE(s.end, s.begin);
      latest_end = std::max(latest_end, s.end);
      switch (s.kind) {
        case obs::SpanKind::kCompute:
          compute += s.end - s.begin;
          break;
        case obs::SpanKind::kWait:
          wait += s.end - s.begin;
          break;
        case obs::SpanKind::kTransfer:
          transfer += s.end - s.begin;
          break;
      }
    }
    // Per rank: compute spans are exactly the compute clock, and the
    // wait + transfer spans are exactly the comm clock.
    const auto ri = static_cast<std::size_t>(rank);
    EXPECT_NEAR(compute, r.per_rank_comp[ri], kTol);
    EXPECT_NEAR(wait + transfer, r.per_rank_comm[ri], kTol);
  }
  EXPECT_NEAR(latest_end, r.total_seconds, kTol);
}

TEST(CriticalPath, DecompositionMatchesReportCollectiveSeconds) {
  const auto built = test::rmat_graph(9);
  obs::Tracer tracer;
  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  opts.tracer = &tracer;
  bfs::Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));
  const bfs::RunReport& r = out.report;

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(tracer, r.ranks);
  EXPECT_EQ(cp.ranks, r.ranks);
  EXPECT_NEAR(cp.total_seconds, r.total_seconds, kTol);
  EXPECT_EQ(cp.levels.size(), r.levels.size());

  // Table 1: the per-pattern transfer means recomputed from trace events
  // alone must equal the report's per-collective seconds, which the
  // simulator accounted independently through the traffic meter.
  const auto mean_of = [&](const std::string& pattern) {
    for (const obs::PatternDecomposition& d : cp.decomposition) {
      if (d.pattern == pattern) return d.transfer_mean;
    }
    return 0.0;
  };
  EXPECT_NEAR(mean_of("Alltoallv"), r.alltoall_seconds, kTol);
  EXPECT_NEAR(mean_of("Allgatherv"), r.allgather_seconds, kTol);
  EXPECT_NEAR(mean_of("Transpose"), r.transpose_seconds, kTol);
  EXPECT_NEAR(mean_of("Allreduce"), r.allreduce_seconds, kTol);
  EXPECT_GT(cp.transfer_total(), 0.0);

  // Whole-run comm split: transfer + wait means equal the report's mean
  // per-rank comm seconds.
  EXPECT_NEAR(cp.transfer_mean + cp.wait_mean, r.comm_seconds_mean, kTol);
}

TEST(CriticalPath, FindsThePlantedStraggler) {
  const auto built = test::rmat_graph(9);
  obs::Tracer tracer;
  bfs::Bfs1DOptions opts;
  opts.ranks = 8;
  opts.load_smoothing = 0.0;  // price real volumes so the slowdown shows
  opts.faults.compute_stragglers = {{3, 16.0}};
  opts.tracer = &tracer;
  bfs::Bfs1D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(tracer, out.report.ranks);
  ASSERT_FALSE(cp.levels.empty());

  // A rank slowed 16x arrives last at the collectives, so it accumulates
  // the least wait time over the run — exactly how the pass attributes
  // stragglers (Fig 4's idle-time reading).
  std::vector<double> total_wait(static_cast<std::size_t>(cp.ranks), 0.0);
  for (const obs::LevelAttribution& level : cp.levels) {
    ASSERT_EQ(level.wait_by_rank.size(), total_wait.size());
    EXPECT_GE(level.makespan(), 0.0);
    EXPECT_GE(level.wait_p99, level.wait_mean - kTol);
    for (std::size_t rank = 0; rank < total_wait.size(); ++rank) {
      total_wait[rank] += level.wait_by_rank[rank];
    }
  }
  for (std::size_t rank = 0; rank < total_wait.size(); ++rank) {
    if (rank != 3) {
      EXPECT_LT(total_wait[3], total_wait[rank] + kTol);
    }
  }

  // And the busiest level must blame rank 3 and a 1D compute phase.
  const obs::LevelAttribution* busiest = &cp.levels.front();
  for (const obs::LevelAttribution& level : cp.levels) {
    if (level.wait_mean > busiest->wait_mean) busiest = &level;
  }
  EXPECT_EQ(busiest->straggler_rank, 3);
  EXPECT_TRUE(busiest->straggler_phase == "1d-scan" ||
              busiest->straggler_phase == "1d-update")
      << busiest->straggler_phase;
}

TEST(Trace, FaultEventsAreRecorded) {
  const auto built = test::rmat_graph(9);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  opts.faults.seed = 7;
  opts.faults.collective_fail_rate = 0.05;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  bfs::Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));

  ASSERT_GT(out.report.faults.collective_failures, 0)
      << "fault plan injected nothing; pick a different seed/rate";
  EXPECT_EQ(static_cast<std::int64_t>(tracer.instants().size()),
            out.report.faults.collective_failures);
  for (const obs::Instant& e : tracer.instants()) {
    EXPECT_STREQ(e.name, "collective-failure");
    EXPECT_GE(e.at, 0.0);
    EXPECT_GT(e.seconds, 0.0);
  }
  EXPECT_EQ(metrics.counter("fault.collective_failures"),
            out.report.faults.collective_failures);
  EXPECT_EQ(
      static_cast<std::int64_t>(
          metrics.histogram("fault.backoff_seconds").count()),
      out.report.faults.collective_failures);
}

TEST(Trace, ReportJsonEmbedsObserverSections) {
  const auto built = test::rmat_graph(9);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  bfs::Bfs2DOptions opts;
  opts.cores = 16;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  bfs::Bfs2D bfs{built.edges, built.csr.num_vertices(), opts};
  const auto out = bfs.run(test::hub_source(built.csr));

  const obs::CriticalPathReport cp =
      obs::analyze_critical_path(tracer, out.report.ranks);
  bfs::ReportJsonOptions jopts;
  jopts.metrics = &metrics;
  jopts.critical_path = &cp;
  const std::string json = bfs::report_to_json(out.report, jopts);

  EXPECT_NE(json.find("\"metrics\":{\"counters\":"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\":{\"ranks\":"), std::string::npos);
  EXPECT_NE(json.find("\"comm.calls.Alltoallv\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_by_rank\":["), std::string::npos);
  EXPECT_EQ(json.back(), '}');

  // Default options embed nothing and match the two-arg overload exactly.
  const bfs::ReportJsonOptions plain;
  EXPECT_EQ(bfs::report_to_json(out.report, plain),
            bfs::report_to_json(out.report));
}

}  // namespace
}  // namespace dbfs
