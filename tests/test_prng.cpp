#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dbfs::util {
namespace {

TEST(Splitmix64, DeterministicSequence) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Mix64, StatelessAndInjectiveOnSmallSet) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    outputs.insert(mix64(x));
  }
  EXPECT_EQ(outputs.size(), 1000u);
  EXPECT_EQ(mix64(7), mix64(7));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleRoughlyUniform) {
  Xoshiro256 rng{11};
  const int buckets = 10;
  std::vector<int> histogram(buckets, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    ++histogram[static_cast<int>(rng.next_double() * buckets)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, samples / buckets, samples / buckets / 5);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng{13};
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a{99};
  Xoshiro256 b{99};
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace dbfs::util
