// Cross-module property sweeps (parameterized): invariants that must hold
// for every configuration in a family, not just hand-picked examples.
#include <gtest/gtest.h>

#include "core/volume_profile.hpp"
#include "dist/partition2d.hpp"
#include "graph/generators.hpp"
#include "model/cost.hpp"
#include "sparse/csc_matrix.hpp"
#include "sparse/dcsc_matrix.hpp"
#include "sparse/merge.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace dbfs {
namespace {

// ---- Partition2D conserves nonzeros for every grid size ----

class GridSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridSweep, Partition2DConservesNnz) {
  auto built = test::rmat_graph(9, 8, 17);
  const simmpi::ProcessGrid grid{GetParam()};
  const dist::Partition2D part{built.edges, built.csr.num_vertices(), grid};
  EXPECT_EQ(part.total_nnz(), built.edges.num_edges());
}

TEST_P(GridSweep, Partition2DBlocksCoverDisjointRanges) {
  auto built = test::rmat_graph(8, 4, 3);
  const simmpi::ProcessGrid grid{GetParam()};
  const dist::Partition2D part{built.edges, built.csr.num_vertices(), grid};
  const auto& blocks = part.blocks();
  // Every block's dimensions match its (row, col) ranges.
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    const int i = grid.row_of(rank);
    const int j = grid.col_of(rank);
    EXPECT_EQ(part.block(rank).nrows(), blocks.size(i));
    EXPECT_EQ(part.block(rank).ncols(), blocks.size(j));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

// ---- DCSC equals CSC on random matrices across densities ----

class DensitySweep : public ::testing::TestWithParam<int> {};

TEST_P(DensitySweep, DcscMatchesCscEverywhere) {
  util::Xoshiro256 rng{static_cast<std::uint64_t>(GetParam())};
  const vid_t dim = 96;
  std::vector<sparse::Triple> triples;
  const int nnz = GetParam() * 37;
  for (int i = 0; i < nnz; ++i) {
    triples.push_back(sparse::Triple{
        static_cast<vid_t>(rng.next_below(dim)),
        static_cast<vid_t>(rng.next_below(dim))});
  }
  const auto csc = sparse::CscMatrix::from_triples(dim, dim, triples);
  const auto dcsc = sparse::DcscMatrix::from_triples(dim, dim, triples);
  EXPECT_EQ(csc.nnz(), dcsc.nnz());
  for (vid_t c = 0; c < dim; ++c) {
    const auto a = csc.column(c);
    const auto b = dcsc.column(c);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(Nnz, DensitySweep,
                         ::testing::Values(1, 4, 16, 64, 128));

// ---- Cost-model monotonicity on every machine preset ----

class MachineSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MachineSweep, AlltoallvMonotoneInGroupAndBytes) {
  const auto m = model::preset(GetParam());
  double prev = 0.0;
  for (int g : {2, 8, 64, 512, 4096}) {
    const double c = model::cost_alltoallv(m, g, 1 << 16);
    EXPECT_GT(c, prev) << GetParam() << " g=" << g;
    prev = c;
  }
  EXPECT_LT(model::cost_alltoallv(m, 64, 1 << 10),
            model::cost_alltoallv(m, 64, 1 << 20));
}

TEST_P(MachineSweep, AlphaLocalMonotone) {
  const auto m = model::preset(GetParam());
  double prev = 0.0;
  for (double bytes = 256; bytes < 1e12; bytes *= 8) {
    const double a = m.alpha_local(bytes);
    EXPECT_GE(a, prev) << GetParam() << " bytes=" << bytes;
    prev = a;
  }
}

TEST_P(MachineSweep, ThreadEfficiencyWithinBounds) {
  const auto m = model::preset(GetParam());
  for (int t : {1, 2, 4, 6, 8, 16}) {
    const double e = m.thread_efficiency(t);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST_P(MachineSweep, Price1DMonotoneCompInCores) {
  const auto built = test::rmat_graph(9, 16);
  const auto profile = core::VolumeProfile::measure(
      built.csr, test::hub_source(built.csr));
  const auto machine = model::preset(GetParam());
  double prev = 1e30;
  for (int cores : {16, 64, 256, 1024}) {
    core::Price1DOptions o;
    o.cores = cores;
    const auto priced = core::price_1d(profile, machine, o);
    EXPECT_LT(priced.comp_seconds, prev) << GetParam() << " p=" << cores;
    prev = priced.comp_seconds;
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, MachineSweep,
                         ::testing::Values("franklin", "hopper", "carver",
                                           "generic"));

// ---- KaryHeap arity sweep ----

template <int Arity>
struct ArityTag {
  static constexpr int value = Arity;
};

template <typename Tag>
class HeapAritySweep : public ::testing::Test {};

using Arities = ::testing::Types<ArityTag<2>, ArityTag<3>, ArityTag<4>,
                                 ArityTag<8>>;
TYPED_TEST_SUITE(HeapAritySweep, Arities);

TYPED_TEST(HeapAritySweep, SortsRandomInput) {
  struct Less {
    bool operator()(int a, int b) const { return a < b; }
  };
  sparse::KaryHeap<int, Less, TypeParam::value> heap;
  util::Xoshiro256 rng{42};
  std::vector<int> values;
  for (int i = 0; i < 2000; ++i) {
    const int v = static_cast<int>(rng.next_below(500));
    values.push_back(v);
    heap.push(v);
  }
  std::sort(values.begin(), values.end());
  for (int expected : values) {
    ASSERT_EQ(heap.top(), expected);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace dbfs
