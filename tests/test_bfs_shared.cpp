#include "bfs/shared.hpp"

#include <gtest/gtest.h>

#include "bfs/serial.hpp"
#include "graph/validator.hpp"
#include "test_helpers.hpp"

namespace dbfs::bfs {
namespace {

class SharedBfsModes : public ::testing::TestWithParam<bool> {};

TEST_P(SharedBfsModes, MatchesSerialLevels) {
  const auto built = test::rmat_graph(10);
  SharedBfsOptions opts;
  opts.use_atomics = GetParam();
  const auto shared = shared_bfs(built.csr, 0, opts);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(shared.out.level, serial.level);
}

TEST_P(SharedBfsModes, PassesValidation) {
  const auto built = test::rmat_graph(10, 16, 3);
  SharedBfsOptions opts;
  opts.use_atomics = GetParam();
  const auto result = shared_bfs(built.csr, 7, opts);
  const auto v = graph::validate_bfs_tree(
      built.csr, 7, result.out.parent,
      graph::reference_levels(built.csr, 7));
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_P(SharedBfsModes, HandlesDisconnectedGraph) {
  const auto g = graph::CsrGraph::from_edges(test::two_triangles());
  SharedBfsOptions opts;
  opts.use_atomics = GetParam();
  const auto result = shared_bfs(g, 3, opts);
  EXPECT_EQ(result.out.level[4], 1);
  EXPECT_EQ(result.out.level[0], kUnreached);
}

TEST_P(SharedBfsModes, HighDiameterGraph) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(200));
  SharedBfsOptions opts;
  opts.use_atomics = GetParam();
  const auto result = shared_bfs(g, 0, opts);
  EXPECT_EQ(result.out.level[199], 199);
  EXPECT_EQ(result.out.report.levels.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(AtomicsAndBenign, SharedBfsModes,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "atomics" : "benign";
                         });

TEST(SharedBfs, AtomicModeHasNoDuplicates) {
  const auto built = test::rmat_graph(11);
  SharedBfsOptions opts;
  opts.use_atomics = true;
  const auto result = shared_bfs(built.csr, 0, opts);
  EXPECT_EQ(result.duplicate_insertions, 0);
}

TEST(SharedBfs, BenignRaceDuplicateRateIsTiny) {
  // The paper's §4.2 measurement: extra insertions < 0.5% of vertices.
  // Single-threaded CI can't produce real races; the invariant still
  // holds (trivially 0) and the bound is what the ablation bench reports.
  const auto built = test::rmat_graph(12);
  const auto result = shared_bfs(built.csr, 0, SharedBfsOptions{});
  const auto visited = static_cast<double>(built.csr.num_vertices());
  EXPECT_LT(static_cast<double>(result.duplicate_insertions),
            0.005 * visited + 1.0);
}

TEST(SharedBfs, ExplicitThreadCount) {
  const auto built = test::rmat_graph(9);
  SharedBfsOptions opts;
  opts.num_threads = 3;
  const auto result = shared_bfs(built.csr, 0, opts);
  EXPECT_EQ(result.out.report.threads_per_rank, 3);
  const auto serial = serial_bfs(built.csr, 0);
  EXPECT_EQ(result.out.level, serial.level);
}

TEST(SharedBfs, EdgeCountMatchesSerial) {
  const auto built = test::rmat_graph(10);
  const auto shared = shared_bfs(built.csr, 2, SharedBfsOptions{});
  const auto serial = serial_bfs(built.csr, 2);
  EXPECT_EQ(shared.out.report.edges_traversed,
            serial.report.edges_traversed);
}

TEST(SharedBfs, RejectsBadSource) {
  const auto g = graph::CsrGraph::from_edges(test::path_edges(4));
  EXPECT_THROW(shared_bfs(g, 99, SharedBfsOptions{}), std::out_of_range);
}

}  // namespace
}  // namespace dbfs::bfs
