#include "simmpi/comm.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dbfs::simmpi {
namespace {

Cluster make_cluster(int ranks) {
  return Cluster{ranks, model::generic()};
}

std::vector<int> world(int ranks) {
  std::vector<int> w(static_cast<std::size_t>(ranks));
  std::iota(w.begin(), w.end(), 0);
  return w;
}

TEST(Alltoallv, RoutesDataToDestinations) {
  Cluster c = make_cluster(3);
  const auto w = world(3);
  auto send = FlatExchange<int>::sized(3);
  // Rank 0 sends {10} to 1 and {20, 21} to 2; rank 1 sends {30} to 0.
  send.data[0] = {10, 20, 21};
  send.counts[0] = {0, 1, 2};
  send.data[1] = {30};
  send.counts[1] = {1, 0, 0};
  send.counts[2] = {0, 0, 0};

  const auto recv = alltoallv(c, w, std::move(send));
  EXPECT_EQ(recv.data[0], (std::vector<int>{30}));
  EXPECT_EQ(recv.data[1], (std::vector<int>{10}));
  EXPECT_EQ(recv.data[2], (std::vector<int>{20, 21}));
  EXPECT_EQ(recv.counts[2][0], 2);
  EXPECT_EQ(recv.counts[0][1], 1);
}

TEST(Alltoallv, SelfSendsStayLocalAndUnmetered) {
  Cluster c = make_cluster(2);
  auto send = FlatExchange<int>::sized(2);
  send.data[0] = {1, 2, 3};
  send.counts[0] = {3, 0};
  send.counts[1] = {0, 0};
  const auto recv = alltoallv(c, world(2), std::move(send));
  EXPECT_EQ(recv.data[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(c.traffic().totals(Pattern::kAlltoallv).bytes, 0u);
}

TEST(Alltoallv, MetersNetworkBytes) {
  Cluster c = make_cluster(2);
  auto send = FlatExchange<int>::sized(2);
  send.data[0] = {1, 2};
  send.counts[0] = {0, 2};
  send.counts[1] = {0, 0};
  (void)alltoallv(c, world(2), std::move(send));
  EXPECT_EQ(c.traffic().totals(Pattern::kAlltoallv).bytes, 2 * sizeof(int));
  EXPECT_EQ(c.traffic().totals(Pattern::kAlltoallv).calls, 1);
}

TEST(Alltoallv, AdvancesAllClocks) {
  Cluster c = make_cluster(2);
  auto send = FlatExchange<int>::sized(2);
  send.data[0] = {1};
  send.counts[0] = {0, 1};
  send.counts[1] = {0, 0};
  (void)alltoallv(c, world(2), std::move(send));
  EXPECT_GT(c.clocks().now(0), 0.0);
  EXPECT_DOUBLE_EQ(c.clocks().now(0), c.clocks().now(1));
}

TEST(Allgatherv, ConcatenatesInGroupOrder) {
  Cluster c = make_cluster(3);
  std::vector<std::vector<int>> pieces{{1, 2}, {}, {3}};
  const auto result = allgatherv(c, world(3), std::move(pieces));
  EXPECT_EQ(result, (std::vector<int>{1, 2, 3}));
}

TEST(Allgatherv, MetersReplicatedTraffic) {
  Cluster c = make_cluster(3);
  std::vector<std::vector<int>> pieces{{1}, {2}, {3}};
  (void)allgatherv(c, world(3), std::move(pieces));
  // Each piece crosses to the other two ranks.
  EXPECT_EQ(c.traffic().totals(Pattern::kAllgatherv).bytes,
            3u * 2u * sizeof(int));
}

TEST(AllreduceSum, ReducesContributions) {
  Cluster c = make_cluster(4);
  const std::vector<std::int64_t> contributions{1, 2, 3, 4};
  EXPECT_EQ(allreduce_sum<std::int64_t>(c, world(4), contributions), 10);
  EXPECT_GT(c.clocks().now(0), 0.0);
}

TEST(Allreduce, GenericOp) {
  Cluster c = make_cluster(3);
  const std::vector<std::int64_t> contributions{5, 9, 2};
  const auto result = allreduce<std::int64_t>(
      c, world(3), contributions, std::int64_t{0},
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(result, 9);
}

TEST(TransposeExchange, SwapsAcrossDiagonal) {
  Cluster c = make_cluster(4);
  const ProcessGrid grid{2};
  std::vector<std::vector<int>> pieces{{0}, {1}, {2}, {3}};
  const auto out = transpose_exchange(c, grid, std::move(pieces));
  // (0,1)=rank1 <-> (1,0)=rank2; diagonals stay.
  EXPECT_EQ(out[0], (std::vector<int>{0}));
  EXPECT_EQ(out[1], (std::vector<int>{2}));
  EXPECT_EQ(out[2], (std::vector<int>{1}));
  EXPECT_EQ(out[3], (std::vector<int>{3}));
}

TEST(TransposeExchange, DiagonalIsFree) {
  Cluster c = make_cluster(1);
  const ProcessGrid grid{1};
  std::vector<std::vector<int>> pieces{{42}};
  const auto out = transpose_exchange(c, grid, std::move(pieces));
  EXPECT_EQ(out[0], (std::vector<int>{42}));
  EXPECT_DOUBLE_EQ(c.clocks().now(0), 0.0);
}

TEST(TransposeExchange, OnlyPartnersSynchronize) {
  Cluster c = make_cluster(9);
  const ProcessGrid grid{3};
  std::vector<std::vector<int>> pieces(9, std::vector<int>{7});
  (void)transpose_exchange(c, grid, std::move(pieces));
  // Diagonal ranks (0,4,8) exchanged nothing.
  EXPECT_DOUBLE_EQ(c.clocks().now(0), 0.0);
  EXPECT_GT(c.clocks().now(1), 0.0);
}

TEST(Gatherv, CollectsAtRoot) {
  Cluster c = make_cluster(3);
  std::vector<std::vector<int>> pieces{{1}, {2, 3}, {4}};
  const auto result = gatherv(c, world(3), 1, std::move(pieces));
  EXPECT_EQ(result, (std::vector<int>{1, 2, 3, 4}));
  // Root's own piece stays local: 2 ints cross.
  EXPECT_EQ(c.traffic().totals(Pattern::kGatherv).bytes, 2 * sizeof(int));
}

TEST(Broadcast, DeliversPayloadAndMeters) {
  Cluster c = make_cluster(4);
  const auto result = broadcast(c, world(4), 0, std::vector<int>{9, 9});
  EXPECT_EQ(result, (std::vector<int>{9, 9}));
  EXPECT_EQ(c.traffic().totals(Pattern::kBroadcast).bytes,
            3u * 2u * sizeof(int));
}

TEST(Broadcast, RejectsRootSlotOutsideGroup) {
  Cluster c = make_cluster(3);
  EXPECT_THROW((void)broadcast(c, world(3), 3, std::vector<int>{1}),
               std::out_of_range);
}

TEST(Gatherv, RejectsRootSlotOutsideGroup) {
  Cluster c = make_cluster(3);
  std::vector<std::vector<int>> pieces{{1}, {2}, {3}};
  EXPECT_THROW((void)gatherv(c, world(3), 7, std::move(pieces)),
               std::out_of_range);
}

// Regression: broadcast used to ignore root_slot entirely, which became
// observable once per-rank fault factors existed — a broadcast tree is
// driven by the *root's* link, so a degraded root must slow the whole
// operation while a degraded leaf must not change the modelled transfer.
TEST(Broadcast, DegradedRootSlowsTheTreeDegradedLeafDoesNot) {
  FaultPlan plan;
  plan.nic_stragglers = {{2, 4.0}};

  Cluster baseline = make_cluster(4);
  Cluster rooted_at_leaf = make_cluster(4);
  rooted_at_leaf.set_fault_plan(plan);
  Cluster rooted_at_degraded = make_cluster(4);
  rooted_at_degraded.set_fault_plan(plan);

  const std::vector<int> payload{1, 2, 3, 4};
  (void)broadcast(baseline, world(4), 0, std::vector<int>(payload));
  (void)broadcast(rooted_at_leaf, world(4), 0, std::vector<int>(payload));
  (void)broadcast(rooted_at_degraded, world(4), 2,
                  std::vector<int>(payload));

  EXPECT_DOUBLE_EQ(rooted_at_leaf.clocks().max_now(),
                   baseline.clocks().max_now());
  EXPECT_DOUBLE_EQ(rooted_at_degraded.clocks().max_now(),
                   4.0 * baseline.clocks().max_now());
}

TEST(Gatherv, DegradedRootSlowsTheGather) {
  FaultPlan plan;
  plan.nic_stragglers = {{1, 3.0}};

  Cluster clean_root = make_cluster(3);
  clean_root.set_fault_plan(plan);
  Cluster degraded_root = make_cluster(3);
  degraded_root.set_fault_plan(plan);

  // Equal-sized pieces: either root keeps one piece local and pulls two
  // across the network, so the byte volume is identical...
  std::vector<std::vector<int>> pieces{{1}, {2}, {3}};
  (void)gatherv(clean_root, world(3), 0,
                std::vector<std::vector<int>>(pieces));
  (void)gatherv(degraded_root, world(3), 1,
                std::vector<std::vector<int>>(pieces));

  EXPECT_GT(degraded_root.clocks().max_now(), 0.0);
  // ...but routing through the degraded rank-1 root costs 3x.
  EXPECT_DOUBLE_EQ(degraded_root.clocks().max_now(),
                   3.0 * clean_root.clocks().max_now());
}

TEST(Cluster, ResetAccountingClearsState) {
  Cluster c = make_cluster(2);
  c.charge_compute(0, 1.0);
  (void)broadcast(c, world(2), 0, std::vector<int>{1});
  c.reset_accounting();
  EXPECT_DOUBLE_EQ(c.clocks().max_now(), 0.0);
  EXPECT_EQ(c.traffic().total_bytes(), 0u);
}

TEST(Cluster, CoresAccountsThreads) {
  Cluster c{8, model::generic(), 4};
  EXPECT_EQ(c.ranks(), 8);
  EXPECT_EQ(c.cores(), 32);
}

TEST(Cluster, ForEachRankVisitsAll) {
  Cluster c = make_cluster(16);
  std::vector<int> visited(16, 0);
  c.for_each_rank([&](int r) { visited[static_cast<std::size_t>(r)] = 1; });
  for (int v : visited) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace dbfs::simmpi
