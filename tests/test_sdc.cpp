// Silent-data-corruption resilience: at-rest memory flips (the MemFlip
// fault class), the ABFT state auditor (src/bfs/audit.*), and the
// self-verifying CheckpointStore. The contract under test mirrors the
// fail-stop one in test_recover.cpp but is strictly harder — nothing on
// the wire notices an at-rest flip, so detection must come from the
// audits or from checkpoint verification, and every detected corruption
// must roll back and converge to parents/levels bit-identical to a
// fault-free run. Plus the inertness guarantees (auditing off and no
// flip plan = byte-identical reports) and the FaultPlan serialization
// that carries corruption schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/report_json.hpp"
#include "bfs/serial.hpp"
#include "core/engine.hpp"
#include "graph/validator.hpp"
#include "recover/checkpoint.hpp"
#include "simmpi/fault.hpp"
#include "test_helpers.hpp"

namespace dbfs {
namespace {

core::EngineOptions base_options(core::Algorithm algorithm, int cores) {
  core::EngineOptions opts;
  opts.algorithm = algorithm;
  opts.cores = cores;
  opts.machine = model::generic();
  return opts;
}

simmpi::MemFlip level_flip(int rank, int level, simmpi::FlipTarget target) {
  simmpi::MemFlip flip;
  flip.rank = rank;
  flip.at_level = level;
  flip.target = target;
  return flip;
}

// ---- flip-spec and plan serialization ---------------------------------

TEST(SdcFaultPlan, FlipSpecParsing) {
  const auto flips =
      simmpi::parse_flip_specs("2@level3:parents,0@level1:dirop");
  ASSERT_EQ(flips.size(), 2u);
  EXPECT_EQ(flips[0].rank, 2);
  EXPECT_EQ(flips[0].at_level, 3);
  EXPECT_EQ(flips[0].target, simmpi::FlipTarget::kParents);
  EXPECT_EQ(flips[1].rank, 0);
  EXPECT_EQ(flips[1].at_level, 1);
  EXPECT_EQ(flips[1].target, simmpi::FlipTarget::kDirop);

  EXPECT_THROW(simmpi::parse_flip_specs(""), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_flip_specs("1@level2"), std::invalid_argument);
  EXPECT_THROW(simmpi::parse_flip_specs("1@level2:bogus"),
               std::invalid_argument);
  EXPECT_THROW(simmpi::parse_flip_specs("x@level2:parents"),
               std::invalid_argument);
  EXPECT_THROW(simmpi::parse_flip_specs("1@t0.5:parents"),
               std::invalid_argument);
  EXPECT_THROW(simmpi::parse_flip_specs("1@level-2:parents"),
               std::invalid_argument);
}

TEST(SdcFaultPlan, FlipTargetNamesRoundTrip) {
  const simmpi::FlipTarget targets[] = {
      simmpi::FlipTarget::kParents, simmpi::FlipTarget::kLevels,
      simmpi::FlipTarget::kVisited, simmpi::FlipTarget::kDirop,
      simmpi::FlipTarget::kCheckpoint};
  for (simmpi::FlipTarget t : targets) {
    EXPECT_EQ(simmpi::parse_flip_target(simmpi::to_string(t)), t);
  }
  EXPECT_THROW(simmpi::parse_flip_target("rowptr"), std::invalid_argument);
}

TEST(SdcFaultPlan, JsonRoundTripPreservesMemFlips) {
  simmpi::FaultPlan plan;
  plan.seed = 11;
  plan.mem_flips = {
      level_flip(2, 3, simmpi::FlipTarget::kLevels),
      level_flip(0, 1, simmpi::FlipTarget::kCheckpoint)};

  const simmpi::FaultPlan back =
      simmpi::fault_plan_from_json(simmpi::to_json(plan));
  ASSERT_EQ(back.mem_flips.size(), 2u);
  EXPECT_EQ(back.mem_flips[0].rank, 2);
  EXPECT_EQ(back.mem_flips[0].at_level, 3);
  EXPECT_EQ(back.mem_flips[0].target, simmpi::FlipTarget::kLevels);
  EXPECT_EQ(back.mem_flips[1].rank, 0);
  EXPECT_EQ(back.mem_flips[1].at_level, 1);
  EXPECT_EQ(back.mem_flips[1].target, simmpi::FlipTarget::kCheckpoint);
  EXPECT_EQ(simmpi::to_json(back), simmpi::to_json(plan));

  // A flip-only plan counts as enabled; a flip-free plan omits the key
  // so pre-SDC readers keep working.
  EXPECT_TRUE(plan.enabled());
  simmpi::FaultPlan no_flips;
  EXPECT_EQ(simmpi::to_json(no_flips).find("mem_flips"), std::string::npos);
}

TEST(SdcFaultPlan, FlipShapeIsKeyedByFlipIdentity) {
  simmpi::FaultPlan plan;
  plan.seed = 5;
  const auto a = level_flip(1, 2, simmpi::FlipTarget::kParents);
  const auto b = level_flip(1, 2, simmpi::FlipTarget::kLevels);
  // Same flip, same draw — replays after a recovery re-inject identical
  // damage. Different flips draw differently.
  EXPECT_EQ(plan.flip_shape(a), plan.flip_shape(a));
  EXPECT_NE(plan.flip_shape(a), plan.flip_shape(b));
}

TEST(SdcFaultPlan, UnknownPlanKeysWarnOnceToStderr) {
  // Unique key name: the warned set is process-wide, so reusing a key
  // from another test would swallow the first warning.
  const std::string json =
      "{\"seed\":1,\"sdc_test_future_knob\":true,"
      "\"mem_flips\":[{\"rank\":1,\"at_level\":2,\"target\":\"parents\"}]}";

  testing::internal::CaptureStderr();
  const simmpi::FaultPlan plan = simmpi::fault_plan_from_json(json);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("sdc_test_future_knob"), std::string::npos) << first;
  EXPECT_NE(first.find("not understood"), std::string::npos) << first;
  // The understood keys parsed despite the stranger.
  ASSERT_EQ(plan.mem_flips.size(), 1u);
  EXPECT_EQ(plan.mem_flips[0].target, simmpi::FlipTarget::kParents);

  testing::internal::CaptureStderr();
  (void)simmpi::fault_plan_from_json(json);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(SdcFaultPlan, AuditFailedErrorCarriesStructuredFields) {
  const simmpi::AuditFailedError e("sdc-audit", "shard-checksum", 3, 2, 77,
                                   1.5);
  EXPECT_EQ(e.site(), "sdc-audit");
  EXPECT_EQ(e.kind(), "audit-failure");
  EXPECT_EQ(e.check(), "shard-checksum");
  EXPECT_EQ(e.rank(), 3);
  EXPECT_EQ(e.level(), 2);
  EXPECT_EQ(e.sample_vertex(), 77);
  EXPECT_EQ(e.virtual_time(), 1.5);
  const std::string what = e.what();
  EXPECT_NE(what.find("shard-checksum"), std::string::npos) << what;
}

// ---- self-verifying CheckpointStore -----------------------------------

// A consistent 4-vertex snapshot rooted at 0 (0 -> 1 at level 1).
recover::Checkpoint small_snapshot() {
  recover::Checkpoint ckpt;
  ckpt.levels_completed = 1;
  ckpt.global_frontier = 1;
  ckpt.parent = {0, 0, kNoVertex, kNoVertex};
  ckpt.level = {0, 1, kUnreached, kUnreached};
  ckpt.frontier = {1};
  return ckpt;
}

// The same traversal one barrier later (1 -> 2 at level 2).
recover::Checkpoint small_snapshot_next() {
  recover::Checkpoint ckpt = small_snapshot();
  ckpt.levels_completed = 2;
  ckpt.parent[2] = 1;
  ckpt.level[2] = 2;
  ckpt.frontier = {2};
  return ckpt;
}

TEST(SdcCheckpointStore, ChecksumCoversEveryField) {
  const recover::Checkpoint base = small_snapshot();
  const std::uint64_t digest = recover::checkpoint_checksum(base);
  EXPECT_EQ(recover::checkpoint_checksum(small_snapshot()), digest);

  recover::Checkpoint mutated = base;
  mutated.parent[1] = 2;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.level[1] = 2;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.frontier = {0};
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.levels_completed = 2;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.global_frontier = 2;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.dirop_unexplored_edges = 9;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
  mutated = base;
  mutated.dirop_bottom_up = true;
  EXPECT_NE(recover::checkpoint_checksum(mutated), digest);
}

TEST(SdcCheckpointStore, DefectCatchesCorruptAtTakeSnapshots) {
  EXPECT_EQ(recover::checkpoint_defect(small_snapshot(), 0), nullptr);
  EXPECT_EQ(recover::checkpoint_defect(small_snapshot_next(), 0), nullptr);
  // The implicit replay-from-source snapshot is always clean.
  EXPECT_EQ(recover::checkpoint_defect(recover::Checkpoint{}, 0), nullptr);

  recover::Checkpoint bad = small_snapshot();
  bad.parent[0] = 1;  // the root must be its own parent
  EXPECT_STREQ(recover::checkpoint_defect(bad, 0), "source-parent");

  bad = small_snapshot();
  bad.level[1] = 3;  // breaks parent/level tree consistency
  EXPECT_NE(recover::checkpoint_defect(bad, 0), nullptr);

  bad = small_snapshot();
  bad.frontier = {2};  // frontier vertex is unvisited
  EXPECT_NE(recover::checkpoint_defect(bad, 0), nullptr);

  bad = small_snapshot();
  bad.global_frontier = 5;  // disagrees with the frontier list
  EXPECT_NE(recover::checkpoint_defect(bad, 0), nullptr);
}

TEST(SdcCheckpointStore, CorruptReplicasAreSkippedAndScrubbed) {
  recover::CheckpointStore store;
  recover::RecoverOptions options;
  options.checkpoint_every = 1;
  store.arm(options);
  store.take(small_snapshot());
  store.take(small_snapshot_next());
  ASSERT_EQ(store.stored(), 2u);
  EXPECT_EQ(store.latest().levels_completed, 2);
  EXPECT_EQ(store.newest_clean(0).levels_completed, 2);

  // An at-rest flip in the newest replica: rollback must skip past it to
  // the older clean snapshot, and the audit-time scrub must drop it.
  ASSERT_TRUE(store.corrupt_latest(0x9e3779b97f4a7c15ULL));
  EXPECT_EQ(store.newest_clean(0).levels_completed, 1);
  EXPECT_EQ(store.scrub(), 1);
  EXPECT_EQ(store.stored(), 1u);
  EXPECT_EQ(store.scrub(), 0);

  // Both replicas corrupt -> the implicit empty snapshot: recovery never
  // dead-ends, it replays from the source.
  ASSERT_TRUE(store.corrupt_latest(0x123456789abcdefULL));
  const recover::Checkpoint& fallback = store.newest_clean(0);
  EXPECT_EQ(fallback.levels_completed, 0);
  EXPECT_TRUE(fallback.parent.empty());
}

TEST(SdcCheckpointStore, RollbackToTruncatesHistory) {
  recover::CheckpointStore store;
  recover::RecoverOptions options;
  options.checkpoint_every = 1;
  store.arm(options);
  EXPECT_FALSE(store.corrupt_latest(1));  // nothing stored yet

  store.take(small_snapshot());
  store.take(small_snapshot_next());
  ASSERT_TRUE(store.corrupt_latest(0x5bd1e995ULL));
  const recover::Checkpoint& clean = store.newest_clean(0);
  store.rollback_to(clean);
  EXPECT_EQ(store.stored(), 1u);
  EXPECT_EQ(store.latest().levels_completed, 1);

  // No stored snapshot is rooted at vertex 2, so newest_clean falls back
  // to the implicit empty snapshot; rolling back to it clears the
  // history, and the store keeps working afterwards.
  const recover::Checkpoint& fallback = store.newest_clean(2);
  EXPECT_TRUE(fallback.parent.empty());
  store.rollback_to(fallback);
  EXPECT_EQ(store.stored(), 0u);
  store.take(small_snapshot());
  EXPECT_EQ(store.stored(), 1u);
}

// ---- the differential matrix ------------------------------------------

// Flips against live (parent, level) shards for every distributed
// algorithm x audit cadence must be detected, rolled back, and repaired
// to the exact fault-free answer.
TEST(SdcChaos, FlippedRunsMatchFaultFreeBitForBit) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);
  const auto reference = graph::reference_levels(built.csr, source);

  const core::Algorithm algorithms[] = {
      core::Algorithm::kOneDFlat, core::Algorithm::kOneDHybrid,
      core::Algorithm::kTwoDFlat, core::Algorithm::kTwoDHybrid};
  const simmpi::FlipTarget targets[] = {simmpi::FlipTarget::kParents,
                                        simmpi::FlipTarget::kLevels};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions clean = base_options(algorithm, 16);
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    for (simmpi::FlipTarget target : targets) {
      for (int cadence : {1, 2}) {
        core::EngineOptions opts = base_options(algorithm, 16);
        opts.faults.mem_flips = {level_flip(1, 2, target)};
        opts.recover.checkpoint_every = 1;
        opts.recover.audit_every = cadence;
        core::Engine engine{built.edges, n, opts};
        const auto out = engine.run(source);

        const std::string label = std::string(core::to_string(algorithm)) +
                                  "/" + simmpi::to_string(target) +
                                  "/audit=" + std::to_string(cadence);
        EXPECT_EQ(out.parent, expected.parent) << label;
        EXPECT_EQ(out.level, expected.level) << label;
        EXPECT_TRUE(out.report.sdc.enabled) << label;
        EXPECT_GE(out.report.sdc.flips_injected, 1) << label;
        EXPECT_GE(out.report.sdc.audit_failures, 1) << label;
        EXPECT_GE(out.report.sdc.rollbacks, 1) << label;
        const auto v = graph::validate_bfs_tree(built.csr, source,
                                                out.parent, reference);
        EXPECT_TRUE(v.ok) << label << ": " << v.error;
      }
    }
  }
}

// A spurious bit in the sender-side visited sieve would silently starve
// the victim vertex of its parent; the sieve's internal mark checksums
// must catch it even after the vertex becomes legitimately visited.
TEST(SdcChaos, VisitedFlipDetectedInWireMode) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 16);
  clean.wire_format = comm::WireFormat::kSieve;
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  for (int cadence : {1, 2}) {
    core::EngineOptions opts = clean;
    opts.faults.mem_flips = {
        level_flip(1, 2, simmpi::FlipTarget::kVisited)};
    opts.recover.checkpoint_every = 1;
    opts.recover.audit_every = cadence;
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);
    EXPECT_EQ(out.parent, expected.parent) << "audit=" << cadence;
    EXPECT_EQ(out.level, expected.level) << "audit=" << cadence;
    EXPECT_GE(out.report.sdc.flips_injected, 1) << "audit=" << cadence;
    EXPECT_GE(out.report.sdc.rollbacks, 1) << "audit=" << cadence;
  }
}

// A flipped bit in the direction-optimization m_u scalar must be caught
// by the replica comparison before the heuristic diverges the replay.
TEST(SdcChaos, DiropFlipRepairedInHybrid2D) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kTwoDFlat, 16);
  clean.direction = bfs::DirectionMode::kHybrid;
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  core::EngineOptions opts = clean;
  opts.faults.mem_flips = {level_flip(1, 2, simmpi::FlipTarget::kDirop)};
  opts.recover.checkpoint_every = 1;
  opts.recover.audit_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_GE(out.report.sdc.flips_injected, 1);
  EXPECT_GE(out.report.sdc.rollbacks, 1);
}

// A flip in a stored replica (not live state) must be rejected by the
// audit-time scrub and must never be restored from; the live traversal
// is unharmed, so no rollback fires.
TEST(SdcChaos, CorruptedCheckpointReplicaIsRejectedNotRestored) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 16);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  core::EngineOptions opts = clean;
  opts.faults.mem_flips = {
      level_flip(1, 2, simmpi::FlipTarget::kCheckpoint)};
  opts.recover.checkpoint_every = 1;
  opts.recover.audit_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_GE(out.report.sdc.flips_injected, 1);
  EXPECT_GE(out.report.sdc.checkpoints_rejected, 1);
  EXPECT_EQ(out.report.sdc.rollbacks, 0);
  EXPECT_EQ(out.report.sdc.audit_failures, 0);
}

// Fail-stop and silent corruption compose: a kill and a flip in the same
// run exercise recover_from and rollback_from back to back, and the
// answer must still be exact.
TEST(SdcChaos, KillAndFlipComposeToTheExactAnswer) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const recover::Policy policies[] = {recover::Policy::kShrink,
                                      recover::Policy::kSpare};
  for (recover::Policy policy : policies) {
    core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 16);
    core::Engine clean_engine{built.edges, n, clean};
    const auto expected = clean_engine.run(source);

    core::EngineOptions opts = clean;
    simmpi::RankKill kill;
    kill.rank = 2;
    kill.at_level = 2;
    opts.faults.rank_kills = {kill};
    opts.faults.mem_flips = {
        level_flip(1, 3, simmpi::FlipTarget::kParents)};
    opts.recover.policy = policy;
    opts.recover.checkpoint_every = 1;
    opts.recover.audit_every = 1;
    core::Engine engine{built.edges, n, opts};
    const auto out = engine.run(source);

    const std::string label = recover::to_string(policy);
    EXPECT_EQ(out.parent, expected.parent) << label;
    EXPECT_EQ(out.level, expected.level) << label;
    EXPECT_GE(out.report.recover.rank_failures, 1) << label;
    EXPECT_GE(out.report.sdc.flips_injected, 1) << label;
    EXPECT_GE(out.report.sdc.rollbacks, 1) << label;
  }
}

// Flips naming ranks the cluster does not have are ignored, like kills
// and straggler entries — the run completes flip-free and exact.
TEST(SdcChaos, FlipsForAbsentRanksAreIgnored) {
  const auto built = test::rmat_graph(8, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions clean = base_options(core::Algorithm::kOneDFlat, 4);
  core::Engine clean_engine{built.edges, n, clean};
  const auto expected = clean_engine.run(source);

  core::EngineOptions opts = clean;
  opts.faults.mem_flips = {
      level_flip(50, 1, simmpi::FlipTarget::kParents)};
  opts.recover.checkpoint_every = 1;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.level, expected.level);
  EXPECT_EQ(out.report.sdc.flips_injected, 0);
  EXPECT_EQ(out.report.sdc.rollbacks, 0);
}

// ---- inertness and observability --------------------------------------

// Auditing a clean run costs virtual time but must never change the
// answer; with auditing off and no flip plan the report JSON is
// byte-identical to a build without the subsystem.
TEST(Sdc, AuditOnlyRunsKeepTheAnswerAndPlainRunsStayByteIdentical) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  const core::Algorithm algorithms[] = {core::Algorithm::kOneDFlat,
                                        core::Algorithm::kTwoDFlat};
  for (core::Algorithm algorithm : algorithms) {
    core::EngineOptions plain = base_options(algorithm, 16);
    core::Engine plain_engine{built.edges, n, plain};
    const auto expected = plain_engine.run(source);
    const std::string plain_json =
        bfs::report_to_json(expected.report, false);
    EXPECT_EQ(plain_json.find("\"sdc\""), std::string::npos);

    // Two plain runs are byte-identical (determinism of the baseline the
    // inertness claim is made against).
    core::Engine plain_again{built.edges, n, plain};
    EXPECT_EQ(bfs::report_to_json(plain_again.run(source).report, false),
              plain_json)
        << core::to_string(algorithm);

    core::EngineOptions audited = plain;
    audited.recover.audit_every = 2;
    core::Engine audited_engine{built.edges, n, audited};
    const auto out = audited_engine.run(source);
    EXPECT_EQ(out.parent, expected.parent) << core::to_string(algorithm);
    EXPECT_EQ(out.level, expected.level) << core::to_string(algorithm);
    EXPECT_TRUE(out.report.sdc.enabled);
    EXPECT_EQ(out.report.sdc.audit_every, 2);
    EXPECT_GE(out.report.sdc.audits, 1);
    EXPECT_EQ(out.report.sdc.audit_failures, 0);
    EXPECT_EQ(out.report.sdc.rollbacks, 0);
    EXPECT_GT(out.report.sdc.audit_seconds, 0.0);
    // Audit-only arming must not make the run look recovery-armed.
    EXPECT_FALSE(out.report.recover.enabled);
    EXPECT_NE(bfs::report_to_json(out.report, false).find("\"sdc\":{"),
              std::string::npos);
  }
}

TEST(Sdc, ReportMetricsAndJsonDescribeTheRepair) {
  const auto built = test::rmat_graph(9, 8);
  const vid_t n = built.csr.num_vertices();
  const vid_t source = test::hub_source(built.csr);

  core::EngineOptions opts = base_options(core::Algorithm::kTwoDFlat, 16);
  opts.faults.mem_flips = {level_flip(1, 2, simmpi::FlipTarget::kParents)};
  opts.recover.checkpoint_every = 1;
  opts.recover.audit_every = 1;
  opts.metrics = true;
  core::Engine engine{built.edges, n, opts};
  const auto out = engine.run(source);

  const bfs::SdcReport& s = out.report.sdc;
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.audit_every, 1);
  EXPECT_GE(s.audits, 2);
  EXPECT_GE(s.audit_failures, 1);
  EXPECT_EQ(s.flips_injected, 1);
  EXPECT_GE(s.rollbacks, 1);
  EXPECT_GE(s.replayed_levels, 1);
  EXPECT_GT(s.audit_seconds, 0.0);
  EXPECT_GT(s.rollback_seconds, 0.0);

  ASSERT_NE(engine.metrics(), nullptr);
  EXPECT_GE(engine.metrics()->counter("sdc.audits"), 2);
  EXPECT_GE(engine.metrics()->counter("sdc.audit_failures"), 1);
  EXPECT_EQ(engine.metrics()->counter("sdc.flips_injected"), 1);
  EXPECT_GE(engine.metrics()->counter("sdc.rollbacks"), 1);
  EXPECT_GE(engine.metrics()->counter("sdc.replayed_levels"), 1);

  const std::string json = bfs::report_to_json(out.report, false);
  EXPECT_NE(json.find("\"sdc\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"audits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rollbacks\":"), std::string::npos) << json;
}

// ---- structured validation errors -------------------------------------

TEST(SdcValidator, StructuredFailureNamesInvariantAndVertex) {
  const auto built = test::rmat_graph(8, 8);
  const vid_t source = test::hub_source(built.csr);
  const auto serial = bfs::serial_bfs(built.csr, source);

  const auto ok = graph::validate_bfs_tree(built.csr, source, serial.parent);
  EXPECT_TRUE(ok.ok);
  EXPECT_TRUE(ok.failed_check.empty());
  EXPECT_EQ(ok.sample_vertex, -1);

  // Rewire one visited vertex straight to the source when no edge joins
  // them (re-rooting can never create a parent cycle): the tree-edge
  // check must name both the invariant and the offending vertex.
  const vid_t n = built.csr.num_vertices();
  std::vector<vid_t> tampered = serial.parent;
  vid_t victim = -1;
  for (vid_t v = 0; v < n; ++v) {
    if (v == source || tampered[v] == kNoVertex) continue;
    const auto nbrs = built.csr.neighbors(v);
    if (!std::binary_search(nbrs.begin(), nbrs.end(), source)) {
      tampered[v] = source;
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0) << "graph too dense to plant a missing tree edge";
  const auto bad = graph::validate_bfs_tree(built.csr, source, tampered);
  ASSERT_FALSE(bad.ok);
  EXPECT_EQ(bad.failed_check, "tree-edge-missing");
  EXPECT_EQ(bad.sample_vertex, victim);
  EXPECT_NE(bad.error.find("check 3"), std::string::npos) << bad.error;
}

}  // namespace
}  // namespace dbfs
