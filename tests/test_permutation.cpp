#include "graph/permutation.hpp"

#include <gtest/gtest.h>

namespace dbfs::graph {
namespace {

TEST(Permutation, IdentityMapsToSelf) {
  const Permutation p = Permutation::identity(5);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(p(v), v);
  EXPECT_TRUE(p.is_valid());
}

TEST(Permutation, RandomIsBijection) {
  const Permutation p = Permutation::random(1000, 7);
  EXPECT_TRUE(p.is_valid());
}

TEST(Permutation, RandomIsDeterministicPerSeed) {
  const Permutation a = Permutation::random(100, 7);
  const Permutation b = Permutation::random(100, 7);
  EXPECT_EQ(a.mapping(), b.mapping());
  const Permutation c = Permutation::random(100, 8);
  EXPECT_NE(a.mapping(), c.mapping());
}

TEST(Permutation, RandomActuallyShuffles) {
  const Permutation p = Permutation::random(1000, 3);
  int fixed = 0;
  for (vid_t v = 0; v < 1000; ++v) {
    if (p(v) == v) ++fixed;
  }
  // Expected number of fixed points of a random permutation is 1.
  EXPECT_LT(fixed, 10);
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p = Permutation::random(200, 11);
  const Permutation inv = p.inverse();
  for (vid_t v = 0; v < 200; ++v) {
    EXPECT_EQ(inv(p(v)), v);
    EXPECT_EQ(p(inv(v)), v);
  }
}

TEST(Permutation, ValidityRejectsDuplicates) {
  const Permutation p{{0, 0, 2}};
  EXPECT_FALSE(p.is_valid());
}

TEST(Permutation, ValidityRejectsOutOfRange) {
  const Permutation p{{0, 3, 1}};
  EXPECT_FALSE(p.is_valid());
}

TEST(ApplyPermutation, RelabelsEndpoints) {
  EdgeList e{3};
  e.add(0, 1);
  e.add(1, 2);
  const Permutation p{{2, 0, 1}};
  apply_permutation(e, p);
  EXPECT_EQ(e.edges()[0], (Edge{2, 0}));
  EXPECT_EQ(e.edges()[1], (Edge{0, 1}));
}

TEST(ApplyPermutation, PreservesDegreeMultiset) {
  EdgeList e{4};
  e.add(0, 1);
  e.add(0, 2);
  e.add(0, 3);
  const Permutation p = Permutation::random(4, 5);
  apply_permutation(e, p);
  // Vertex p(0) must now have out-degree 3.
  int count = 0;
  for (const Edge& edge : e.edges()) {
    if (edge.u == p(0)) ++count;
  }
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace dbfs::graph
