#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dbfs::util {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, KeyValuePairs) {
  const auto args = parse({"prog", "--scale", "16", "--machine", "hopper"});
  EXPECT_EQ(args.get_int("scale", 0), 16);
  EXPECT_EQ(args.get("machine", ""), "hopper");
  EXPECT_EQ(args.program(), "prog");
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = parse({"prog", "--scale=20", "--ratio=2.5"});
  EXPECT_EQ(args.get_int("scale", 0), 20);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
}

TEST(ArgParser, BareFlags) {
  const auto args = parse({"prog", "--verbose", "--scale", "8"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  EXPECT_EQ(args.get_int("scale", 0), 8);
}

TEST(ArgParser, FlagFollowedByFlag) {
  const auto args = parse({"prog", "--a", "--b"});
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_TRUE(args.get_flag("b"));
}

TEST(ArgParser, ExplicitFalseFlag) {
  const auto args = parse({"prog", "--check=0", "--other=false"});
  EXPECT_FALSE(args.get_flag("check"));
  EXPECT_FALSE(args.get_flag("other"));
}

TEST(ArgParser, Fallbacks) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, GarbageNumbersFallBack) {
  const auto args = parse({"prog", "--scale", "zebra"});
  EXPECT_EQ(args.get_int("scale", 3), 3);
}

TEST(ArgParser, Positional) {
  const auto args = parse({"prog", "input.txt", "--scale", "8", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(ArgParser, UnknownKeysDetected) {
  auto args = parse({"prog", "--scale", "8", "--typo", "x"});
  args.describe("scale", "the scale");
  const auto unknown = args.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ArgParser, UsageMentionsDescribedOptions) {
  auto args = parse({"prog"});
  args.describe("scale", "log2 vertices", "14");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("log2 vertices"), std::string::npos);
  EXPECT_NE(usage.find("default: 14"), std::string::npos);
}

}  // namespace
}  // namespace dbfs::util
