// Golden scenarios for the regression-attribution doctor (src/obs/
// doctor.cpp): seed a known cause into a candidate run, diagnose it
// against a clean baseline, and demand the seeded cause is ranked first.
// The records come from real Engine runs through BenchRecordBuilder —
// the same pipeline bench_suite uses — so these tests pin the whole
// chain: hooks -> metrics/trace -> record -> classifier.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/bench_record.hpp"
#include "obs/doctor.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace dbfs {
namespace {

const graph::BuiltGraph& shared_graph() {
  static const graph::BuiltGraph built = test::rmat_graph(10, 8);
  return built;
}

/// One Engine run -> BenchRecord, the way bench_suite builds them but
/// with a single source and repetition so any fault fires in the
/// profiled run itself (kills are consumed by the first search, and the
/// observers are cleared per run).
obs::BenchRecord make_record(const std::string& name,
                             core::EngineOptions opts) {
  const graph::BuiltGraph& built = shared_graph();
  opts.trace = true;
  opts.metrics = true;
  core::Engine engine{built.edges, built.csr.num_vertices(), opts};
  const vid_t source = test::hub_source(built.csr);
  const auto out = engine.run(source);

  const int threads = engine.options().threads_per_rank;
  const int ranks = engine.cores_used() / (threads > 0 ? threads : 1);
  obs::BenchRecordBuilder builder;
  obs::BenchRecord& record = builder.record();
  record.name = name;
  record.created_by = "test_doctor";
  record.config.generator = "rmat";
  record.config.scale = 10;
  record.config.edge_factor = 8;
  record.config.graph_seed = 1;
  record.config.algorithm = core::to_string(opts.algorithm);
  record.config.machine = opts.machine.name;
  record.config.wire_format = comm::to_string(opts.wire_format);
  record.config.cores = engine.cores_used();
  record.config.ranks = ranks;
  record.config.threads_per_rank = threads;
  record.config.sources = 1;
  record.config.repetitions = 1;
  record.config.source_seed = 1;
  record.config.faults_enabled = opts.faults.enabled();
  const std::vector<bfs::RunReport> reports = {out.report};
  builder.add_repetition(1, reports, built.directed_edge_count, 1, 0);
  builder.attach_profile(engine.tracer(), engine.metrics(), out.report,
                         ranks);
  return builder.finish();
}

core::EngineOptions clean_options() {
  core::EngineOptions opts;
  opts.algorithm = core::Algorithm::kOneDFlat;
  opts.cores = 16;
  opts.machine = model::generic();
  return opts;
}

std::string causes_of(const obs::DoctorReport& report) {
  std::string out;
  for (const auto& f : report.findings) {
    out += f.cause + "(" + std::to_string(f.confidence) + ") ";
  }
  return out;
}

// Seeded beta_net drift (pure machine-model bandwidth slowdown, the
// bench_smoke slow-beta scenario): transfer grows uniformly while
// compute and balance stay flat. 4x rather than 2x because the tiny
// scale-10 exchanges are latency(alpha)-dominated — 2x beta only moves
// transfer ~1.17x here, under the classifier's 1.2x threshold (the
// scale-14 smoke run trips it at 2x).
TEST(Doctor, AttributesBetaDriftToNetworkBetaDrift) {
  const auto baseline = make_record("golden", clean_options());
  core::EngineOptions slowed = clean_options();
  slowed.machine.beta_net *= 4.0;  // same machine *name*: a drift, not a
                                   // config change
  const auto candidate = make_record("golden", slowed);

  const auto report = obs::diagnose(baseline, candidate);
  EXPECT_EQ(report.top_cause(), "network-beta-drift") << causes_of(report);
  EXPECT_LT(report.teps_ratio, 1.0);
  // The blame lands on transfer rows, not compute.
  ASSERT_FALSE(report.contributions.empty());
  EXPECT_NE(report.contributions.front().phase, "compute");
}

// Seeded compute straggler on rank 1: the diagnosis must name the rank.
TEST(Doctor, AttributesStragglerToTheSeededRank) {
  const auto baseline = make_record("golden", clean_options());
  core::EngineOptions straggling = clean_options();
  straggling.faults.compute_stragglers = {{1, 8.0}};
  const auto candidate = make_record("golden", straggling);

  const auto report = obs::diagnose(baseline, candidate);
  EXPECT_EQ(report.top_cause(), "straggler-rank") << causes_of(report);
  EXPECT_NE(report.findings.front().detail.find("rank 1"), std::string::npos)
      << report.findings.front().detail;
}

// Explicit wire-format switch (raw -> auto): the config change itself is
// the diagnosis, and it must outrank any secondary byte/time signatures.
TEST(Doctor, AttributesWireFormatSwitchToConfig) {
  const auto baseline = make_record("golden", clean_options());
  core::EngineOptions switched = clean_options();
  switched.wire_format = comm::WireFormat::kAuto;
  const auto candidate = make_record("golden", switched);

  const auto report = obs::diagnose(baseline, candidate);
  EXPECT_EQ(report.top_cause(), "wire-format-change") << causes_of(report);
  ASSERT_EQ(report.config_drift.size(), 1u);
  EXPECT_EQ(report.config_drift.front(), "wire_format");
}

// Seeded mid-run kill survived via spare + every-level checkpoints: the
// recovery overhead classifier must win, and a fault experiment against
// a clean baseline must NOT be dismissed as config drift.
TEST(Doctor, AttributesSurvivedKillToRecoveryOverhead) {
  const auto baseline = make_record("golden", clean_options());
  core::EngineOptions killed = clean_options();
  simmpi::RankKill kill;
  kill.rank = 1;
  kill.at_level = 2;
  killed.faults.rank_kills = {kill};
  killed.recover.policy = recover::Policy::kSpare;
  killed.recover.checkpoint_every = 1;
  const auto candidate = make_record("golden", killed);
  ASSERT_GT(candidate.counters.count("recover.rank_failures"), 0u)
      << "the kill must fire in the profiled run";

  const auto report = obs::diagnose(baseline, candidate);
  EXPECT_EQ(report.top_cause(), "checkpoint-recovery-overhead")
      << causes_of(report);
  EXPECT_TRUE(report.config_drift.empty());
}

// Identical records: nothing to attribute, and the doctor says so
// instead of inventing a cause.
TEST(Doctor, IdenticalRecordsAreUnattributed) {
  const auto record = make_record("golden", clean_options());
  const auto report = obs::diagnose(record, record);
  EXPECT_EQ(report.top_cause(), "unattributed") << causes_of(report);
  EXPECT_DOUBLE_EQ(report.teps_ratio, 1.0);
}

// Synthetic classifier coverage for signatures that are awkward to seed
// through a real run: codec fallback and frontier-shape change.
obs::BenchRecord synthetic_record() {
  obs::BenchRecord r;
  r.name = "synthetic";
  r.config.algorithm = "1d";
  r.config.machine = "generic";
  r.config.wire_format = "auto";
  r.config.cores = 16;
  r.config.ranks = 16;
  r.harmonic_mean_teps = 1e8;
  r.mean_seconds = 1.0;
  r.comm_seconds_mean = 0.5;
  r.comp_seconds_mean = 0.5;
  for (int lv = 0; lv < 4; ++lv) {
    obs::BenchLevelSplit l;
    l.level = lv;
    l.compute_mean = 0.1;
    l.wait_mean = 0.05;
    l.transfer_mean = 0.1;
    r.levels.push_back(l);
  }
  r.counters["wire.bytes_before"] = 1000000;
  r.counters["wire.bytes_after"] = 300000;
  r.counters["wire.blocks.bitmap"] = 90;
  r.counters["wire.blocks.varint"] = 0;
  r.counters["wire.blocks.items"] = 10;
  return r;
}

TEST(Doctor, DetectsCodecRawFallback) {
  const auto baseline = synthetic_record();
  auto candidate = synthetic_record();
  // Same "auto" policy, but the blocks stopped compressing.
  candidate.counters["wire.bytes_after"] = 950000;
  candidate.counters["wire.blocks.bitmap"] = 5;
  candidate.counters["wire.blocks.items"] = 95;
  candidate.harmonic_mean_teps = 8e7;

  const auto report = obs::diagnose(baseline, candidate);
  EXPECT_EQ(report.top_cause(), "codec-raw-fallback") << causes_of(report);
}

TEST(Doctor, DetectsFrontierShapeChange) {
  const auto baseline = synthetic_record();
  auto candidate = synthetic_record();
  obs::BenchLevelSplit extra;
  extra.level = 4;
  extra.compute_mean = 0.1;
  candidate.levels.push_back(extra);

  const auto report = obs::diagnose(baseline, candidate);
  bool found = false;
  for (const auto& f : report.findings) {
    found = found || f.cause == "frontier-shape-change";
  }
  EXPECT_TRUE(found) << causes_of(report);
}

// Contribution rows: shares sum to 1 and per-site rows replace (not
// duplicate) the aggregate transfer row when the split exists.
TEST(Doctor, ContributionSharesSumToOne) {
  const auto baseline = synthetic_record();
  auto candidate = synthetic_record();
  for (auto& l : candidate.levels) {
    l.transfer_mean *= 2.0;
    l.sites["1d-exchange"] = l.transfer_mean;
  }
  const auto report = obs::diagnose(baseline, candidate);
  double total = 0.0;
  for (const auto& c : report.contributions) {
    EXPECT_TRUE(c.phase != "transfer" || c.level < 0)
        << "aggregate transfer row should be replaced by the site split";
    total += c.share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// The machine JSON parses and round-trips the ranked causes.
TEST(Doctor, JsonReportParsesAndNamesTheCause) {
  const auto baseline = synthetic_record();
  auto candidate = synthetic_record();
  candidate.config.wire_format = "raw";
  const auto report = obs::diagnose(baseline, candidate);

  std::ostringstream out;
  obs::write_doctor_json(out, report);
  const auto root = util::parse_json(out.str());
  const auto& doctor = root.at("doctor");
  EXPECT_EQ(doctor.at("baseline").as_string(), "synthetic");
  const auto& findings = doctor.at("findings");
  ASSERT_FALSE(findings.items.empty());
  EXPECT_EQ(findings.items.front().at("cause").as_string(),
            "wire-format-change");
}

}  // namespace
}  // namespace dbfs
