// Per-rank/per-level imbalance profiler over a hand-built trace with
// known wait/busy seconds — the Fig 4-style heatmap layer of BENCH_*.json.
#include "obs/imbalance.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace dbfs::obs {
namespace {

// rank 0: level 0 = 1.0s compute + 0.5s wait; level 1 = 2.0s compute +
//         1.0s transfer.
// rank 1: level 0 = 0.5s compute + 1.0s wait; level 1 = 1.0s compute.
// Plus a level -1 setup span that the profiler must ignore.
Tracer make_trace() {
  Tracer t{2};
  t.set_level(-1);
  t.record(0, SpanKind::kCompute, "setup", "", 0.0, 10.0);
  t.set_level(0);
  t.record(0, SpanKind::kCompute, "scan", "", 0.0, 1.0);
  t.record(0, SpanKind::kWait, "fold", "alltoallv", 1.0, 1.5);
  t.record(1, SpanKind::kCompute, "scan", "", 0.0, 0.5);
  t.record(1, SpanKind::kWait, "fold", "alltoallv", 0.5, 1.5);
  t.set_level(1);
  t.record(0, SpanKind::kCompute, "scan", "", 1.5, 3.5);
  t.record(0, SpanKind::kTransfer, "fold", "alltoallv", 3.5, 4.5);
  t.record(1, SpanKind::kCompute, "scan", "", 1.5, 2.5);
  return t;
}

TEST(ImbalanceProfile, PerLevelMatricesAndTotals) {
  const Tracer t = make_trace();
  const ImbalanceProfile p = profile_imbalance(t, 2);

  EXPECT_EQ(p.ranks, 2);
  ASSERT_EQ(p.level_ids, (std::vector<int>{0, 1}));
  ASSERT_EQ(p.wait_seconds.size(), 2u);
  ASSERT_EQ(p.wait_seconds[0].size(), 2u);

  EXPECT_DOUBLE_EQ(p.wait_seconds[0][0], 0.5);
  EXPECT_DOUBLE_EQ(p.wait_seconds[0][1], 1.0);
  EXPECT_DOUBLE_EQ(p.wait_seconds[1][0], 0.0);
  EXPECT_DOUBLE_EQ(p.busy_seconds[0][0], 1.0);
  EXPECT_DOUBLE_EQ(p.busy_seconds[0][1], 0.5);
  EXPECT_DOUBLE_EQ(p.busy_seconds[1][0], 3.0);  // compute + transfer
  EXPECT_DOUBLE_EQ(p.busy_seconds[1][1], 1.0);

  // The level -1 setup span contributes nowhere.
  EXPECT_DOUBLE_EQ(p.rank_busy_total[0], 4.0);
  EXPECT_DOUBLE_EQ(p.rank_busy_total[1], 1.5);
  EXPECT_DOUBLE_EQ(p.rank_wait_total[0], 0.5);
  EXPECT_DOUBLE_EQ(p.rank_wait_total[1], 1.0);
}

TEST(ImbalanceProfile, ImbalanceStatisticsAndStragglers) {
  const ImbalanceProfile p = profile_imbalance(make_trace(), 2);

  // util::imbalance convention: max over mean.
  EXPECT_DOUBLE_EQ(p.busy_imbalance, 4.0 / 2.75);
  EXPECT_DOUBLE_EQ(p.wait_imbalance, 1.0 / 0.75);
  EXPECT_DOUBLE_EQ(p.wait_fraction, 1.5 / 7.0);
  EXPECT_DOUBLE_EQ(p.level_busy_imbalance[0], 1.0 / 0.75);
  EXPECT_DOUBLE_EQ(p.level_busy_imbalance[1], 1.5);

  // Rank 0 does the most work at both levels.
  ASSERT_EQ(p.straggler_rank.size(), 2u);
  EXPECT_EQ(p.straggler_rank[0], 0);
  EXPECT_EQ(p.straggler_rank[1], 0);
  ASSERT_EQ(p.straggler_ranks.size(), 1u);
  EXPECT_EQ(p.straggler_ranks[0], 0);
}

TEST(ImbalanceProfile, EmptyTraceIsBalanced) {
  Tracer t{4};
  const ImbalanceProfile p = profile_imbalance(t, 4);
  EXPECT_EQ(p.ranks, 4);
  EXPECT_TRUE(p.level_ids.empty());
  EXPECT_DOUBLE_EQ(p.busy_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(p.wait_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(p.wait_fraction, 0.0);
  EXPECT_TRUE(p.straggler_ranks.empty());
}

TEST(ImbalanceProfile, HeatmapFormatter) {
  const ImbalanceProfile p = profile_imbalance(make_trace(), 2);
  const std::string art = format_imbalance_heatmap(p.wait_seconds);
  EXPECT_FALSE(art.empty());
  // One row per level.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'),
            static_cast<long>(p.wait_seconds.size()));
}

}  // namespace
}  // namespace dbfs::obs
