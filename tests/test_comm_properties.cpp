// Property tests for the simulated collectives: whatever a fault plan
// does to *time*, the data movement itself must conserve items and counts
// — send totals equal recv totals, per-pair counts are symmetric, and the
// order-independent checksum of the moved multiset is unchanged. Only
// payload corruption may break these, and then the checked_* wrappers
// must catch it.
#include "simmpi/comm.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/prng.hpp"

namespace dbfs::simmpi {
namespace {

std::vector<int> world(int ranks) {
  std::vector<int> w(static_cast<std::size_t>(ranks));
  std::iota(w.begin(), w.end(), 0);
  return w;
}

/// Random exchange: every (src,dst) pair carries 0..6 random items.
FlatExchange<std::int64_t> random_exchange(int ranks,
                                           util::Xoshiro256& rng) {
  auto send = FlatExchange<std::int64_t>::sized(
      static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    for (int j = 0; j < ranks; ++j) {
      const auto count = rng.next_below(7);
      send.counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          static_cast<std::int64_t>(count);
      for (std::uint64_t k = 0; k < count; ++k) {
        send.data[static_cast<std::size_t>(i)].push_back(
            static_cast<std::int64_t>(rng()));
      }
    }
  }
  return send;
}

std::vector<std::vector<std::int64_t>> random_pieces(int ranks,
                                                     util::Xoshiro256& rng) {
  std::vector<std::vector<std::int64_t>> pieces(
      static_cast<std::size_t>(ranks));
  for (auto& piece : pieces) {
    const auto count = rng.next_below(9);
    for (std::uint64_t k = 0; k < count; ++k) {
      piece.push_back(static_cast<std::int64_t>(rng()));
    }
  }
  return pieces;
}

std::uint64_t exchange_checksum(const FlatExchange<std::int64_t>& fe) {
  std::uint64_t sum = 0;
  for (const auto& buffer : fe.data) sum += payload_checksum(buffer);
  return sum;
}

std::int64_t exchange_items(const FlatExchange<std::int64_t>& fe) {
  std::int64_t total = 0;
  for (const auto& buffer : fe.data) {
    total += static_cast<std::int64_t>(buffer.size());
  }
  return total;
}

/// A time-only fault plan: stragglers and transient failures but no
/// payload corruption, so data invariants must hold exactly.
FaultPlan time_faults(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.collective_fail_rate = 0.25;
  plan.compute_stragglers = {{0, 2.0}};
  plan.nic_stragglers = {{1, 3.0}};
  return plan;
}

class CommProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommProperties, AlltoallvConservesItemsAndCounts) {
  for (const bool faulted : {false, true}) {
    util::Xoshiro256 rng{GetParam()};
    const int ranks = 2 + static_cast<int>(rng.next_below(7));
    Cluster c{ranks, model::generic()};
    if (faulted) c.set_fault_plan(time_faults(GetParam()));

    auto send = random_exchange(ranks, rng);
    const auto counts = send.counts;
    const auto items = exchange_items(send);
    const auto checksum = exchange_checksum(send);

    const auto recv = alltoallv(c, world(ranks), std::move(send));

    EXPECT_EQ(exchange_items(recv), items) << "faulted=" << faulted;
    EXPECT_EQ(exchange_checksum(recv), checksum) << "faulted=" << faulted;
    for (int i = 0; i < ranks; ++i) {
      std::int64_t sent_by_i = 0;
      std::int64_t recv_from_i = 0;
      for (int j = 0; j < ranks; ++j) {
        // Per-pair symmetry: what j receives from i is what i sent to j.
        EXPECT_EQ(recv.counts[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(i)],
                  counts[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]);
        sent_by_i += counts[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j)];
        recv_from_i += recv.counts[static_cast<std::size_t>(j)]
                                  [static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(sent_by_i, recv_from_i);
    }
  }
}

TEST_P(CommProperties, AllgathervEqualsConcatenation) {
  for (const bool faulted : {false, true}) {
    util::Xoshiro256 rng{GetParam()};
    const int ranks = 2 + static_cast<int>(rng.next_below(7));
    Cluster c{ranks, model::generic()};
    if (faulted) c.set_fault_plan(time_faults(GetParam()));

    auto pieces = random_pieces(ranks, rng);
    std::vector<std::int64_t> expected;
    for (const auto& piece : pieces) {
      expected.insert(expected.end(), piece.begin(), piece.end());
    }
    const auto result = allgatherv(c, world(ranks), std::move(pieces));
    EXPECT_EQ(result, expected) << "faulted=" << faulted;
  }
}

TEST_P(CommProperties, TransposeExchangeConservesItems) {
  for (const bool faulted : {false, true}) {
    util::Xoshiro256 rng{GetParam()};
    const int side = 2 + static_cast<int>(rng.next_below(3));
    const ProcessGrid grid{side};
    Cluster c{grid.ranks(), model::generic()};
    if (faulted) c.set_fault_plan(time_faults(GetParam()));

    auto pieces = random_pieces(grid.ranks(), rng);
    const auto original = pieces;
    const auto out = transpose_exchange(c, grid, std::move(pieces));

    ASSERT_EQ(out.size(), original.size());
    std::uint64_t sum_before = 0;
    std::uint64_t sum_after = 0;
    for (int rank = 0; rank < grid.ranks(); ++rank) {
      // Pairwise routing: P(i,j)'s payload lands at P(j,i), exactly.
      EXPECT_EQ(out[static_cast<std::size_t>(grid.transpose_partner(rank))],
                original[static_cast<std::size_t>(rank)]);
      sum_before += payload_checksum(original[static_cast<std::size_t>(rank)]);
      sum_after += payload_checksum(out[static_cast<std::size_t>(rank)]);
    }
    EXPECT_EQ(sum_after, sum_before) << "faulted=" << faulted;
  }
}

TEST_P(CommProperties, TimeFaultsOnlyEverSlowThingsDown) {
  util::Xoshiro256 rng{GetParam()};
  const int ranks = 2 + static_cast<int>(rng.next_below(7));
  auto send = random_exchange(ranks, rng);
  auto copy = send;

  Cluster clean{ranks, model::generic()};
  (void)alltoallv(clean, world(ranks), std::move(send));
  Cluster faulted{ranks, model::generic()};
  faulted.set_fault_plan(time_faults(GetParam()));
  (void)alltoallv(faulted, world(ranks), std::move(copy));

  EXPECT_GE(faulted.clocks().max_now(), clean.clocks().max_now());
  // Bytes on the wire are the payload's, however many re-issues happened.
  EXPECT_EQ(faulted.traffic().totals(Pattern::kAlltoallv).bytes,
            clean.traffic().totals(Pattern::kAlltoallv).bytes);
}

TEST_P(CommProperties, CorruptionDetectablyBreaksTheChecksum) {
  util::Xoshiro256 rng{GetParam()};
  const int ranks = 2 + static_cast<int>(rng.next_below(7));
  Cluster c{ranks, model::generic()};
  FaultPlan plan;
  plan.seed = GetParam();
  plan.corrupt_rate = 1.0;  // corrupt every exchange
  c.set_fault_plan(plan);

  auto send = random_exchange(ranks, rng);
  if (exchange_items(send) == 0) {
    send.data[0].push_back(42);
    send.counts[0][ranks > 1 ? 1 : 0] = 1;
  }
  const auto checksum = exchange_checksum(send);

  // The *raw* collective delivers the mangled payload — and the checksum
  // flags it. This is exactly the signal checked_alltoallv acts on.
  const auto recv = alltoallv(c, world(ranks), std::move(send));
  EXPECT_EQ(c.fault_counters().payload_corruptions, 1);
  EXPECT_NE(exchange_checksum(recv), checksum);
}

TEST_P(CommProperties, CheckedAlltoallvNeverReturnsCorruptedData) {
  util::Xoshiro256 rng{GetParam()};
  const int ranks = 2 + static_cast<int>(rng.next_below(7));
  Cluster c{ranks, model::generic()};
  FaultPlan plan;
  plan.seed = GetParam();
  plan.corrupt_rate = 0.5;
  c.set_fault_plan(plan);

  auto send = random_exchange(ranks, rng);
  const auto items = exchange_items(send);
  const auto checksum = exchange_checksum(send);
  try {
    const auto recv =
        checked_alltoallv(c, world(ranks), std::move(send), "property");
    EXPECT_EQ(exchange_items(recv), items);
    EXPECT_EQ(exchange_checksum(recv), checksum);
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), "payload-corruption");  // loud, structured abort
  }
}

TEST_P(CommProperties, CheckedAllgathervNeverReturnsCorruptedData) {
  util::Xoshiro256 rng{GetParam()};
  const int ranks = 2 + static_cast<int>(rng.next_below(7));
  Cluster c{ranks, model::generic()};
  FaultPlan plan;
  plan.seed = GetParam();
  plan.corrupt_rate = 0.5;
  c.set_fault_plan(plan);

  auto pieces = random_pieces(ranks, rng);
  std::vector<std::int64_t> expected;
  for (const auto& piece : pieces) {
    expected.insert(expected.end(), piece.begin(), piece.end());
  }
  try {
    const auto result =
        checked_allgatherv(c, world(ranks), std::move(pieces), "property");
    EXPECT_EQ(result, expected);
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), "payload-corruption");
  }
}

std::vector<std::uint64_t> property_seeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 10; ++s) seeds.push_back(s * 104729);
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommProperties,
                         ::testing::ValuesIn(property_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dbfs::simmpi
