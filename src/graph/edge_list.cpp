#include "graph/edge_list.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dbfs::graph {

EdgeList::EdgeList(vid_t num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  if (!endpoints_in_range()) {
    throw std::invalid_argument("EdgeList: endpoint out of range");
  }
}

void EdgeList::symmetrize() {
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    const Edge e = edges_[i];
    if (e.u != e.v) edges_.push_back(Edge{e.v, e.u});
  }
}

eid_t EdgeList::sort_and_dedup(bool drop_self_loops) {
  const auto before = static_cast<eid_t>(edges_.size());
  if (drop_self_loops) {
    std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return before - static_cast<eid_t>(edges_.size());
}

bool EdgeList::endpoints_in_range() const noexcept {
  for (const Edge& e : edges_) {
    if (e.u < 0 || e.u >= num_vertices_ || e.v < 0 || e.v >= num_vertices_) {
      return false;
    }
  }
  return true;
}

}  // namespace dbfs::graph
