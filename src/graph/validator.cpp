#include "graph/validator.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace dbfs::graph {

namespace {

ValidationResult fail(std::string message, std::string check,
                      vid_t sample = -1) {
  ValidationResult r;
  r.ok = false;
  r.error = std::move(message);
  r.failed_check = std::move(check);
  r.sample_vertex = sample;
  return r;
}

}  // namespace

std::vector<level_t> reference_levels(const CsrGraph& g, vid_t source) {
  std::vector<level_t> level(static_cast<std::size_t>(g.num_vertices()),
                             kUnreached);
  std::deque<vid_t> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    for (vid_t v : g.neighbors(u)) {
      if (level[v] == kUnreached) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

ValidationResult validate_bfs_tree(
    const CsrGraph& g, vid_t source, const std::vector<vid_t>& parent,
    const std::vector<level_t>& ref_levels) {
  const vid_t n = g.num_vertices();
  if (static_cast<vid_t>(parent.size()) != n) {
    return fail("parent array size mismatch", "array-size");
  }
  if (source < 0 || source >= n) {
    return fail("source out of range", "source-range", source);
  }
  if (parent[source] != source) {
    return fail("parent[source] != source (check 1)", "source-parent",
                source);
  }

  ValidationResult out;
  out.levels.assign(static_cast<std::size_t>(n), kUnreached);

  // Check 2: resolve levels by chasing parents with memoization; a chain
  // longer than n vertices means a cycle.
  std::vector<vid_t> chain;
  for (vid_t v = 0; v < n; ++v) {
    if (parent[v] == kNoVertex || out.levels[v] != kUnreached) continue;
    chain.clear();
    vid_t cur = v;
    while (out.levels[cur] == kUnreached && cur != source) {
      chain.push_back(cur);
      const vid_t p = parent[cur];
      if (p < 0 || p >= n) {
        std::ostringstream msg;
        msg << "vertex " << cur << " has out-of-range parent (check 2)";
        return fail(msg.str(), "parent-range", cur);
      }
      if (static_cast<vid_t>(chain.size()) > n) {
        return fail("parent pointers contain a cycle (check 2)",
                    "parent-cycle", v);
      }
      cur = p;
    }
    level_t base = (cur == source) ? 0 : out.levels[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      out.levels[*it] = ++base;
    }
  }
  out.levels[source] = 0;

  for (vid_t v = 0; v < n; ++v) {
    if (parent[v] == kNoVertex) continue;
    ++out.visited_count;
    // Check 3: tree edges exist (trivially true for the source self-loop).
    if (v != source) {
      const auto nbrs = g.neighbors(v);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), parent[v])) {
        std::ostringstream msg;
        msg << "tree edge (" << v << ", " << parent[v]
            << ") not in graph (check 3)";
        return fail(msg.str(), "tree-edge-missing", v);
      }
    }
  }

  // Check 4: every edge spans at most one level, and visited status agrees
  // across each edge.
  for (vid_t u = 0; u < n; ++u) {
    const bool u_visited = parent[u] != kNoVertex;
    for (vid_t v : g.neighbors(u)) {
      const bool v_visited = parent[v] != kNoVertex;
      if (u_visited != v_visited) {
        std::ostringstream msg;
        msg << "edge {" << u << "," << v
            << "} has exactly one visited endpoint (check 4)";
        return fail(msg.str(), "edge-visited-mismatch", u_visited ? v : u);
      }
      if (u_visited) {
        ++out.traversed_edges;
        if (std::abs(out.levels[u] - out.levels[v]) > 1) {
          std::ostringstream msg;
          msg << "edge {" << u << "," << v << "} spans levels "
              << out.levels[u] << " and " << out.levels[v] << " (check 4)";
          return fail(msg.str(), "edge-level-span", v);
        }
      }
    }
  }

  // Check 5: shortest-path optimality against the reference.
  if (!ref_levels.empty()) {
    if (ref_levels.size() != out.levels.size()) {
      return fail("reference level array size mismatch (check 5)",
                  "reference-size");
    }
    for (vid_t v = 0; v < n; ++v) {
      if (out.levels[v] != ref_levels[v]) {
        std::ostringstream msg;
        msg << "vertex " << v << " at level " << out.levels[v]
            << ", reference says " << ref_levels[v] << " (check 5)";
        return fail(msg.str(), "level-not-shortest", v);
      }
    }
  }
  return out;
}

}  // namespace dbfs::graph
