// Synthetic graph generators.
//
// * R-MAT with the Graph500 parameters (a,b,c,d) = (.59,.19,.19,.05) is
//   the paper's primary workload (§6).
// * Erdős–Rényi / uniform-random give the regular-degree contrast case
//   (the regime Yoo et al.'s BlueGene/L code assumed).
// * `webcrawl` is our stand-in for the uk-union crawl: a long chain of
//   power-law communities producing diameter ≈ `target_diameter` with a
//   low average degree, exercising the many-iterations regime of Fig 11.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace dbfs::graph {

struct RmatParams {
  int scale = 16;             ///< n = 2^scale vertices
  int edge_factor = 16;       ///< m = edge_factor * n directed edges
  double a = 0.59;            ///< Graph500 defaults
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  std::uint64_t seed = 1;
  bool noise = true;          ///< Graph500-style per-level parameter jitter
};

/// Generate an R-MAT edge list (directed; callers typically symmetrize).
EdgeList generate_rmat(const RmatParams& params);

struct ErdosRenyiParams {
  vid_t num_vertices = 1 << 16;
  double edge_probability = 1e-4;
  std::uint64_t seed = 1;
};

/// G(n, p) via geometric skipping, O(m) expected time.
EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

struct UniformParams {
  vid_t num_vertices = 1 << 16;
  eid_t num_edges = 1 << 20;
  std::uint64_t seed = 1;
};

/// Exactly num_edges directed edges with independently uniform endpoints.
EdgeList generate_uniform(const UniformParams& params);

struct WebcrawlParams {
  vid_t num_vertices = 1 << 18;
  int target_diameter = 140;     ///< uk-union's observed diameter (§6)
  double intra_edge_factor = 6;  ///< avg intra-community degree
  double power_law_exponent = 2.1;
  std::uint64_t seed = 1;
};

/// High-diameter synthetic web crawl: communities strung along a backbone.
EdgeList generate_webcrawl(const WebcrawlParams& params);

}  // namespace dbfs::graph
