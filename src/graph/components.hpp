// Connected components over the (assumed symmetric) CSR graph.
//
// Used to pick BFS source vertices inside the largest component, as the
// paper's TEPS methodology requires ("we only consider traversal execution
// times from vertices that appear in the large component", §6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace dbfs::graph {

struct Components {
  std::vector<vid_t> label;  ///< component id per vertex (root vertex id)
  vid_t count = 0;           ///< number of components
  vid_t largest_label = kNoVertex;
  vid_t largest_size = 0;
};

/// Label components by repeated BFS. Requires a symmetric graph for the
/// labels to be true connected components.
Components connected_components(const CsrGraph& g);

/// Sample `count` distinct vertices from the largest component, each with
/// at least one edge. Returns fewer if the component is too small.
std::vector<vid_t> sample_sources(const CsrGraph& g, const Components& comps,
                                  int count, std::uint64_t seed);

}  // namespace dbfs::graph
