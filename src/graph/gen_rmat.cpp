#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace dbfs::graph {

namespace {

// One R-MAT edge: descend `scale` levels of the recursive quadrant
// subdivision. With `noise` enabled the quadrant probabilities are
// jittered multiplicatively per level (as the Graph500 generator does) to
// avoid the exact self-similarity artifacts of pure R-MAT.
Edge rmat_edge(const RmatParams& p, util::Xoshiro256& rng) {
  double a = p.a;
  double b = p.b;
  double c = p.c;
  double d = 1.0 - a - b - c;
  vid_t row = 0;
  vid_t col = 0;
  for (int level = 0; level < p.scale; ++level) {
    const double r = rng.next_double();
    row <<= 1;
    col <<= 1;
    if (r < a) {
      // top-left quadrant: no bits set
    } else if (r < a + b) {
      col |= 1;
    } else if (r < a + b + c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
    if (p.noise) {
      // +-5% multiplicative jitter, renormalized.
      auto jitter = [&rng](double x) {
        return x * (0.95 + 0.1 * rng.next_double());
      };
      a = jitter(a);
      b = jitter(b);
      c = jitter(c);
      d = jitter(d);
      const double norm = a + b + c + d;
      a /= norm;
      b /= norm;
      c /= norm;
      d /= norm;
    }
  }
  return Edge{row, col};
}

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 40) {
    throw std::invalid_argument("generate_rmat: scale out of range");
  }
  const double sum = params.a + params.b + params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || sum > 1.0 + 1e-12) {
    throw std::invalid_argument("generate_rmat: invalid probabilities");
  }

  const vid_t n = vid_t{1} << params.scale;
  const eid_t m = static_cast<eid_t>(params.edge_factor) * n;
  EdgeList edges{n};
  edges.reserve(static_cast<std::size_t>(m));

  util::Xoshiro256 rng{params.seed};
  for (eid_t i = 0; i < m; ++i) {
    edges.edges().push_back(rmat_edge(params, rng));
  }
  return edges;
}

}  // namespace dbfs::graph
