#include "graph/components.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/prng.hpp"

namespace dbfs::graph {

Components connected_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  Components out;
  out.label.assign(static_cast<std::size_t>(n), kNoVertex);

  std::vector<vid_t> queue;
  std::unordered_map<vid_t, vid_t> sizes;
  for (vid_t root = 0; root < n; ++root) {
    if (out.label[root] != kNoVertex) continue;
    ++out.count;
    vid_t size = 0;
    queue.clear();
    queue.push_back(root);
    out.label[root] = root;
    while (!queue.empty()) {
      const vid_t u = queue.back();
      queue.pop_back();
      ++size;
      for (vid_t v : g.neighbors(u)) {
        if (out.label[v] == kNoVertex) {
          out.label[v] = root;
          queue.push_back(v);
        }
      }
    }
    sizes[root] = size;
    if (size > out.largest_size) {
      out.largest_size = size;
      out.largest_label = root;
    }
  }
  return out;
}

std::vector<vid_t> sample_sources(const CsrGraph& g, const Components& comps,
                                  int count, std::uint64_t seed) {
  std::vector<vid_t> candidates;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    if (comps.label[v] == comps.largest_label && g.degree(v) > 0) {
      candidates.push_back(v);
    }
  }
  util::Xoshiro256 rng{seed};
  std::vector<vid_t> sources;
  const int want = std::min<int>(count, static_cast<int>(candidates.size()));
  for (int i = 0; i < want; ++i) {
    // Partial Fisher-Yates: draw without replacement.
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.next_below(
                       candidates.size() - static_cast<std::size_t>(i)));
    std::swap(candidates[static_cast<std::size_t>(i)], candidates[j]);
    sources.push_back(candidates[static_cast<std::size_t>(i)]);
  }
  return sources;
}

}  // namespace dbfs::graph
