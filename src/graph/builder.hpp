// High-level graph construction pipeline: generator output -> (optional
// vertex shuffle) -> (optional symmetrization) -> CSR. This mirrors the
// Graph500 "kernel 1" construction step and the paper's §4.4 load
// balancing practice (random relabeling before partitioning).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace dbfs::graph {

struct BuildOptions {
  bool symmetrize = true;    ///< model undirected input (Graph500 practice)
  bool shuffle = true;       ///< random vertex relabeling (§4.4)
  std::uint64_t shuffle_seed = 0x5eedULL;
};

struct BuiltGraph {
  CsrGraph csr;                     ///< the traversal structure
  EdgeList edges;                   ///< post-shuffle, post-symmetrize edges
  std::vector<vid_t> new_to_old;    ///< relabeling applied (empty if none)
  eid_t directed_edge_count = 0;    ///< edges before symmetrization; the
                                    ///< TEPS denominator per Graph500 rules
};

/// Run the full pipeline. The input edge list is consumed.
BuiltGraph build_graph(EdgeList input, const BuildOptions& opts = {});

struct DegreeStats {
  eid_t max_degree = 0;
  double mean_degree = 0.0;
  vid_t isolated = 0;  ///< vertices with degree 0
};

DegreeStats degree_stats(const CsrGraph& g);

}  // namespace dbfs::graph
