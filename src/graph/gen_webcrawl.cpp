#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace dbfs::graph {

// Stand-in for the uk-union web crawl (see DESIGN.md substitution table).
// The graph is a chain of `target_diameter` communities. Each community
// has a hub (its first vertex); hubs of consecutive communities are
// linked, so the hub backbone fixes the diameter at ≈ target_diameter
// (+ a small constant for intra-community hops). Within a community,
// edges attach preferentially toward low member indices, yielding the
// skewed (power-law-ish) degree distribution of real crawls.
EdgeList generate_webcrawl(const WebcrawlParams& params) {
  const vid_t n = params.num_vertices;
  const int chain = std::max(1, params.target_diameter);
  if (n < chain) {
    throw std::invalid_argument(
        "generate_webcrawl: need at least target_diameter vertices");
  }
  if (params.power_law_exponent <= 2.0) {
    throw std::invalid_argument(
        "generate_webcrawl: power_law_exponent must exceed 2");
  }

  EdgeList edges{n};
  util::Xoshiro256 rng{params.seed};

  const vid_t community_size = n / chain;
  // Map community c to its vertex range [start, start+size).
  auto community_start = [&](int c) {
    return static_cast<vid_t>(c) * community_size;
  };
  auto community_count = [&](int c) {
    return c == chain - 1 ? n - community_start(c) : community_size;
  };

  // Preferential member pick: idx = size * u^gamma concentrates mass near
  // index 0 (the hub). Inverse-CDF derivation: picking probability per
  // draw at index x is proportional to x^(1/gamma - 1), i.e. expected
  // degree(x) ~ x^-(1 - 1/gamma), a Zipf law whose degree-distribution
  // pdf exponent is alpha = (2*gamma - 1)/(gamma - 1). Inverting gives
  // gamma = (alpha - 1)/(alpha - 2) — NOT gamma = alpha, which produced
  // far heavier tails than requested (alpha -> 2 from above as the knob
  // grew). Requires alpha > 2, i.e. a finite-mean tail, like real crawls.
  const double a = params.power_law_exponent;
  const double gamma = (a - 1.0) / (a - 2.0);
  auto pick_member = [&](int c) {
    const auto size = static_cast<double>(community_count(c));
    const double u = rng.next_double();
    const auto idx = static_cast<vid_t>(std::pow(u, gamma) * size);
    return community_start(c) + std::min(idx, community_count(c) - 1);
  };

  // Intra-community edges.
  for (int c = 0; c < chain; ++c) {
    const auto intra = static_cast<eid_t>(
        params.intra_edge_factor * static_cast<double>(community_count(c)));
    const vid_t start = community_start(c);
    const vid_t size = community_count(c);
    for (eid_t i = 0; i < intra; ++i) {
      vid_t u = pick_member(c);
      vid_t v = pick_member(c);
      if (u == v) {
        v = start + static_cast<vid_t>(
                        rng.next_below(static_cast<std::uint64_t>(size)));
      }
      edges.add(u, v);
    }
    // Every member reaches its hub: guarantees the community is connected
    // and at distance <= 1 from the backbone.
    for (vid_t off = 1; off < size; ++off) {
      edges.add(start + off, start);
    }
  }

  // Hub backbone plus a sprinkle of long-range leaf bridges (real crawls
  // have a few cross-site links; too many would destroy the diameter, so
  // keep them between adjacent communities only).
  for (int c = 0; c + 1 < chain; ++c) {
    edges.add(community_start(c), community_start(c + 1));
    edges.add(pick_member(c), pick_member(c + 1));
  }
  return edges;
}

}  // namespace dbfs::graph
