#include "graph/builder.hpp"

#include <utility>

#include "graph/permutation.hpp"

namespace dbfs::graph {

BuiltGraph build_graph(EdgeList input, const BuildOptions& opts) {
  BuiltGraph out;
  out.directed_edge_count = input.num_edges();

  if (opts.shuffle) {
    Permutation perm =
        Permutation::random(input.num_vertices(), opts.shuffle_seed);
    apply_permutation(input, perm);
    out.new_to_old = perm.inverse().mapping();
  }
  if (opts.symmetrize) {
    input.symmetrize();
  }
  // Deduplicate once here so every downstream structure (serial CSR, 1D
  // local CSRs, 2D DCSC blocks) sees the identical edge multiset — edge
  // counts and TEPS denominators then agree across algorithms.
  input.sort_and_dedup();
  out.csr = CsrGraph::from_edges(input, /*dedup=*/true, /*drop_loops=*/true);
  out.edges = std::move(input);
  return out;
}

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = g.degree(v);
    if (d == 0) ++s.isolated;
    if (d > s.max_degree) s.max_degree = d;
  }
  s.mean_degree =
      n == 0 ? 0.0
             : static_cast<double>(g.num_edges()) / static_cast<double>(n);
  return s;
}

}  // namespace dbfs::graph
