#include "graph/permutation.hpp"

#include <numeric>
#include <utility>

#include "util/prng.hpp"

namespace dbfs::graph {

Permutation::Permutation(std::vector<vid_t> old_to_new)
    : map_(std::move(old_to_new)) {}

Permutation Permutation::identity(vid_t n) {
  std::vector<vid_t> map(static_cast<std::size_t>(n));
  std::iota(map.begin(), map.end(), vid_t{0});
  return Permutation{std::move(map)};
}

Permutation Permutation::random(vid_t n, std::uint64_t seed) {
  Permutation p = identity(n);
  util::Xoshiro256 rng{seed};
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(p.map_[i], p.map_[j]);
  }
  return p;
}

Permutation Permutation::inverse() const {
  std::vector<vid_t> inv(map_.size());
  for (std::size_t old_id = 0; old_id < map_.size(); ++old_id) {
    inv[static_cast<std::size_t>(map_[old_id])] = static_cast<vid_t>(old_id);
  }
  return Permutation{std::move(inv)};
}

bool Permutation::is_valid() const {
  std::vector<bool> seen(map_.size(), false);
  for (vid_t v : map_) {
    if (v < 0 || v >= size() || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

void apply_permutation(EdgeList& edges, const Permutation& perm) {
  for (Edge& e : edges.edges()) {
    e.u = perm(e.u);
    e.v = perm(e.v);
  }
}

}  // namespace dbfs::graph
