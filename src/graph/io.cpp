#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dbfs::graph {

namespace {

constexpr char kBinaryMagic[8] = {'D', 'B', 'F', 'S', 'E', 'D', 'G', '1'};

std::ifstream open_input(const std::string& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

std::ofstream open_output(const std::string& path, bool binary) {
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

EdgeList read_edge_list_text(std::istream& in) {
  std::vector<Edge> edges;
  vid_t declared_n = -1;
  vid_t max_id = -1;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      std::istringstream header(line.substr(1));
      std::string key;
      long long value = 0;
      if (header >> key >> value && key == "vertices") {
        declared_n = static_cast<vid_t>(value);
      }
      continue;
    }
    std::istringstream fields(line);
    long long u = 0;
    long long v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("edge list parse error at line " +
                               std::to_string(lineno));
    }
    if (u < 0 || v < 0) {
      throw std::runtime_error("negative vertex id at line " +
                               std::to_string(lineno));
    }
    edges.push_back(Edge{static_cast<vid_t>(u), static_cast<vid_t>(v)});
    max_id = std::max({max_id, static_cast<vid_t>(u), static_cast<vid_t>(v)});
  }
  const vid_t n = declared_n >= 0 ? declared_n : max_id + 1;
  if (max_id >= n) {
    throw std::runtime_error("edge id exceeds declared vertex count");
  }
  return EdgeList{std::max<vid_t>(n, 0), std::move(edges)};
}

EdgeList read_edge_list_text_file(const std::string& path) {
  auto in = open_input(path, false);
  return read_edge_list_text(in);
}

void write_edge_list_text(std::ostream& out, const EdgeList& edges) {
  out << "# vertices " << edges.num_vertices() << "\n";
  for (const Edge& e : edges.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

void write_edge_list_text_file(const std::string& path,
                               const EdgeList& edges) {
  auto out = open_output(path, false);
  write_edge_list_text(out, edges);
}

EdgeList read_edge_list_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(std::begin(magic), std::end(magic),
                         std::begin(kBinaryMagic))) {
    throw std::runtime_error("bad binary edge-list magic");
  }
  std::int64_t n = 0;
  std::int64_t m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || n < 0 || m < 0) {
    throw std::runtime_error("bad binary edge-list header");
  }
  std::vector<Edge> edges(static_cast<std::size_t>(m));
  static_assert(sizeof(Edge) == 2 * sizeof(std::int64_t));
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(edges.size() * sizeof(Edge)));
  if (!in) throw std::runtime_error("truncated binary edge list");
  return EdgeList{static_cast<vid_t>(n), std::move(edges)};
}

EdgeList read_edge_list_binary_file(const std::string& path) {
  auto in = open_input(path, true);
  return read_edge_list_binary(in);
}

void write_edge_list_binary(std::ostream& out, const EdgeList& edges) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::int64_t n = edges.num_vertices();
  const std::int64_t m = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(edges.edges().size() * sizeof(Edge)));
}

void write_edge_list_binary_file(const std::string& path,
                                 const EdgeList& edges) {
  auto out = open_output(path, true);
  write_edge_list_binary(out, edges);
}

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("empty MatrixMarket file");
  }
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (mm != "%%MatrixMarket" || object != "matrix") {
    throw std::runtime_error("not a MatrixMarket matrix file");
  }
  if (format != "coordinate") {
    throw std::runtime_error("only coordinate MatrixMarket is supported");
  }
  const bool has_value = field != "pattern";
  const bool symmetric = symmetry == "symmetric" || symmetry == "skew-symmetric";
  if (symmetry == "hermitian") {
    throw std::runtime_error("hermitian matrices are not supported");
  }

  // Skip comments; read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long rows = 0;
  long long cols = 0;
  long long nnz = 0;
  if (!(sizes >> rows >> cols >> nnz)) {
    throw std::runtime_error("bad MatrixMarket size line");
  }
  const vid_t n = static_cast<vid_t>(std::max(rows, cols));

  EdgeList edges{n};
  edges.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream fields(line);
    long long r = 0;
    long long c = 0;
    if (!(fields >> r >> c)) {
      throw std::runtime_error("bad MatrixMarket entry: " + line);
    }
    if (has_value) {
      double value;
      fields >> value;  // discarded: BFS is structural
    }
    if (r < 1 || c < 1 || r > rows || c > cols) {
      throw std::runtime_error("MatrixMarket entry out of range: " + line);
    }
    // Entry (r, c) = edge c -> r in the pre-transposed convention; for
    // BFS interchange we emit it as an edge both ways when symmetric.
    edges.add(static_cast<vid_t>(c - 1), static_cast<vid_t>(r - 1));
    if (symmetric && r != c) {
      edges.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1));
    }
    ++seen;
  }
  if (seen != nnz) {
    throw std::runtime_error("MatrixMarket file truncated: expected " +
                             std::to_string(nnz) + " entries, got " +
                             std::to_string(seen));
  }
  return edges;
}

EdgeList read_matrix_market_file(const std::string& path) {
  auto in = open_input(path, false);
  return read_matrix_market(in);
}

}  // namespace dbfs::graph
