// Graph file I/O: plain edge-list text, a compact binary format, and
// MatrixMarket coordinate files (the format most public sparse-graph
// collections — SuiteSparse, SNAP mirrors — distribute), so the library
// runs on real datasets, not just its generators.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace dbfs::graph {

/// Text format: optional comment lines starting with '#' or '%', then one
/// "u v" pair per line. Vertex count = max id + 1 unless a
/// "# vertices N" header is present.
EdgeList read_edge_list_text(std::istream& in);
EdgeList read_edge_list_text_file(const std::string& path);
void write_edge_list_text(std::ostream& out, const EdgeList& edges);
void write_edge_list_text_file(const std::string& path,
                               const EdgeList& edges);

/// Binary format: magic "DBFSEDG1", little-endian int64 n, int64 m, then
/// m (u,v) int64 pairs. Round-trips exactly.
EdgeList read_edge_list_binary(std::istream& in);
EdgeList read_edge_list_binary_file(const std::string& path);
void write_edge_list_binary(std::ostream& out, const EdgeList& edges);
void write_edge_list_binary_file(const std::string& path,
                                 const EdgeList& edges);

/// MatrixMarket "coordinate" reader. Supports pattern/integer/real
/// fields (values are discarded — BFS is structural), "general" and
/// "symmetric" symmetry (symmetric entries are mirrored). 1-based ids
/// are converted to 0-based. Throws std::runtime_error on malformed
/// input.
EdgeList read_matrix_market(std::istream& in);
EdgeList read_matrix_market_file(const std::string& path);

}  // namespace dbfs::graph
