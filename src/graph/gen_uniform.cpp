#include <stdexcept>

#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace dbfs::graph {

EdgeList generate_uniform(const UniformParams& params) {
  if (params.num_vertices <= 0 || params.num_edges < 0) {
    throw std::invalid_argument("generate_uniform: invalid parameters");
  }
  EdgeList edges{params.num_vertices};
  edges.reserve(static_cast<std::size_t>(params.num_edges));
  util::Xoshiro256 rng{params.seed};
  const auto n = static_cast<std::uint64_t>(params.num_vertices);
  for (eid_t i = 0; i < params.num_edges; ++i) {
    edges.add(static_cast<vid_t>(rng.next_below(n)),
              static_cast<vid_t>(rng.next_below(n)));
  }
  return edges;
}

}  // namespace dbfs::graph
