// Graph500-style BFS output validation (the benchmark's "kernel 2
// validation" step). Every distributed BFS variant in this repo is run
// through these checks in tests and in the graph500_runner example.
//
// Checks, per the Graph500 specification:
//  1. parent[source] == source.
//  2. The parent array encodes a tree: following parents from any visited
//     vertex reaches the source without cycles.
//  3. Every tree edge (v, parent[v]) exists in the graph.
//  4. For every graph edge {u,v}: if one endpoint is visited both are, and
//     their BFS levels differ by at most one.
//  5. If reference distances are supplied, levels derived from the parent
//     tree must equal them exactly (parents give *shortest* paths).
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace dbfs::graph {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< empty when ok

  /// Structured failure report: which invariant broke (a stable
  /// identifier like "tree-edge-missing") and one offending vertex, so
  /// drivers and post-mortem tooling don't have to parse `error`.
  std::string failed_check;  ///< empty when ok
  vid_t sample_vertex = -1;  ///< -1 when ok or no single vertex applies

  /// Levels derived from the parent tree (kUnreached for unvisited).
  std::vector<level_t> levels;
  vid_t visited_count = 0;
  eid_t traversed_edges = 0;  ///< edges with at least one visited endpoint
};

/// Validate a BFS parent array against a symmetric graph.
/// `reference_levels` may be empty to skip check 5.
ValidationResult validate_bfs_tree(
    const CsrGraph& g, vid_t source, const std::vector<vid_t>& parent,
    const std::vector<level_t>& reference_levels = {});

/// Serial reference distances (levels) used as ground truth in tests.
std::vector<level_t> reference_levels(const CsrGraph& g, vid_t source);

}  // namespace dbfs::graph
