#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace dbfs::graph {

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params) {
  const vid_t n = params.num_vertices;
  const double p = params.edge_probability;
  if (n < 0 || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("generate_erdos_renyi: invalid parameters");
  }

  EdgeList edges{n};
  if (n == 0 || p == 0.0) return edges;
  edges.reserve(static_cast<std::size_t>(p * static_cast<double>(n) *
                                         static_cast<double>(n)));

  util::Xoshiro256 rng{params.seed};
  if (p >= 1.0) {
    for (vid_t u = 0; u < n; ++u)
      for (vid_t v = 0; v < n; ++v) edges.add(u, v);
    return edges;
  }

  // Geometric skipping over the linearized n*n adjacency matrix: the gap
  // to the next present edge is geometric with parameter p, giving O(m)
  // expected work instead of O(n^2) Bernoulli trials.
  const double log1mp = std::log1p(-p);
  const unsigned __int128 total =
      static_cast<unsigned __int128>(n) * static_cast<unsigned __int128>(n);
  unsigned __int128 index = 0;
  while (true) {
    const double r = rng.next_double();
    const double skip_f = std::floor(std::log1p(-r) / log1mp);
    index += static_cast<unsigned __int128>(skip_f) + 1;
    if (index > total) break;
    const auto linear = static_cast<std::uint64_t>(index - 1);
    edges.add(static_cast<vid_t>(linear / static_cast<std::uint64_t>(n)),
              static_cast<vid_t>(linear % static_cast<std::uint64_t>(n)));
  }
  return edges;
}

}  // namespace dbfs::graph
