// Compressed-sparse-row adjacency structure (paper §4.1).
//
// All adjacencies of a vertex are sorted and stored contiguously; an
// (n+1)-entry offset array indexes the start of each vertex's block.
// Vertex ids are 64-bit. The structure is immutable after construction.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dbfs::graph {

class EdgeList;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an edge list interpreted as *directed* adjacencies
  /// (call EdgeList::symmetrize first for undirected graphs). Duplicate
  /// edges are kept unless `dedup`; self-loops kept unless `drop_loops`.
  static CsrGraph from_edges(const EdgeList& edges, bool dedup = true,
                             bool drop_loops = true);

  vid_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size()) - 1;
  }
  eid_t num_edges() const noexcept {
    return static_cast<eid_t>(adjacency_.size());
  }

  eid_t degree(vid_t v) const noexcept { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted adjacency block of vertex v.
  std::span<const vid_t> neighbors(vid_t v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  const std::vector<eid_t>& offsets() const noexcept { return offsets_; }
  const std::vector<vid_t>& adjacency() const noexcept { return adjacency_; }

  /// True if for every edge (u,v) the reverse (v,u) exists too.
  bool is_symmetric() const;

  eid_t max_degree() const noexcept;

 private:
  std::vector<eid_t> offsets_;   // size n+1
  std::vector<vid_t> adjacency_; // size m, sorted per block
};

}  // namespace dbfs::graph
