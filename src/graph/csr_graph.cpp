#include "graph/csr_graph.hpp"

#include <algorithm>

#include "graph/edge_list.hpp"

namespace dbfs::graph {

CsrGraph CsrGraph::from_edges(const EdgeList& edges, bool dedup,
                              bool drop_loops) {
  CsrGraph g;
  const vid_t n = edges.num_vertices();
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Counting pass (offsets_[v+1] = degree of v), then prefix sum, then a
  // placement pass: the standard two-pass CSR build, O(n + m).
  for (const Edge& e : edges.edges()) {
    if (drop_loops && e.u == e.v) continue;
    ++g.offsets_[e.u + 1];
  }
  for (vid_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.adjacency_.resize(static_cast<std::size_t>(g.offsets_[n]));
  std::vector<eid_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    if (drop_loops && e.u == e.v) continue;
    g.adjacency_[cursor[e.u]++] = e.v;
  }

  for (vid_t v = 0; v < n; ++v) {
    auto* begin = g.adjacency_.data() + g.offsets_[v];
    auto* end = g.adjacency_.data() + g.offsets_[v + 1];
    std::sort(begin, end);
  }

  if (dedup) {
    // In-place per-block unique, compacting the adjacency array.
    eid_t write = 0;
    eid_t block_start = 0;
    for (vid_t v = 0; v < n; ++v) {
      const eid_t begin = g.offsets_[v];
      const eid_t end = g.offsets_[v + 1];
      g.offsets_[v] = block_start;
      vid_t prev = kNoVertex;
      for (eid_t i = begin; i < end; ++i) {
        if (g.adjacency_[i] != prev) {
          prev = g.adjacency_[i];
          g.adjacency_[write++] = prev;
        }
      }
      block_start = write;
    }
    g.offsets_[n] = write;
    g.adjacency_.resize(static_cast<std::size_t>(write));
  }
  return g;
}

bool CsrGraph::is_symmetric() const {
  const vid_t n = num_vertices();
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : neighbors(u)) {
      const auto block = neighbors(v);
      if (!std::binary_search(block.begin(), block.end(), u)) return false;
    }
  }
  return true;
}

eid_t CsrGraph::max_degree() const noexcept {
  eid_t best = 0;
  for (vid_t v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace dbfs::graph
