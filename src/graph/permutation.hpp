// Vertex relabeling (paper §4.4): a random permutation of vertex ids is
// applied before partitioning so that every process receives roughly the
// same number of vertices and edges regardless of degree skew — the same
// strategy the Graph500 benchmark uses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace dbfs::graph {

/// A bijection old-id -> new-id over [0, n).
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::vector<vid_t> old_to_new);

  /// Identity permutation of size n.
  static Permutation identity(vid_t n);

  /// Fisher–Yates shuffle seeded deterministically.
  static Permutation random(vid_t n, std::uint64_t seed);

  vid_t size() const noexcept { return static_cast<vid_t>(map_.size()); }
  vid_t operator()(vid_t old_id) const noexcept { return map_[old_id]; }

  Permutation inverse() const;

  const std::vector<vid_t>& mapping() const noexcept { return map_; }

  /// True iff the mapping is a bijection over [0, n).
  bool is_valid() const;

 private:
  std::vector<vid_t> map_;
};

/// Relabel both endpoints of every edge in place.
void apply_permutation(EdgeList& edges, const Permutation& perm);

}  // namespace dbfs::graph
