// Edge-list container: the canonical interchange format between the
// generators, the partitioners, and the CSR builder (mirroring the
// Graph500 flow of generator -> edge tuples -> benchmark kernel 1).
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace dbfs::graph {

struct Edge {
  vid_t u;
  vid_t v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A bag of directed edges over the vertex set [0, num_vertices).
/// Self-loops and duplicates are permitted here; builders deal with them.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(vid_t num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(vid_t num_vertices, std::vector<Edge> edges);

  vid_t num_vertices() const noexcept { return num_vertices_; }
  eid_t num_edges() const noexcept { return static_cast<eid_t>(edges_.size()); }

  void reserve(std::size_t n) { edges_.reserve(n); }
  void add(vid_t u, vid_t v) { edges_.push_back(Edge{u, v}); }

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  std::vector<Edge>& edges() noexcept { return edges_; }

  /// Append every edge reversed: (u,v) -> additionally (v,u). Skips
  /// self-loops' mirror (it would be an exact duplicate).
  void symmetrize();

  /// Sort lexicographically and drop duplicate edges and self-loops.
  /// Returns the number of edges removed.
  eid_t sort_and_dedup(bool drop_self_loops = true);

  /// Validate that all endpoints lie in [0, num_vertices).
  bool endpoints_in_range() const noexcept;

 private:
  vid_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace dbfs::graph
