#include "bfs/baseline_graph500.hpp"

namespace dbfs::bfs {

Bfs1DOptions graph500_reference_options(const Graph500RefOptions& opts) {
  Bfs1DOptions o;
  o.ranks = opts.ranks;
  o.threads_per_rank = 1;  // the reference code is flat MPI
  o.machine = opts.machine;
  o.comm_mode = CommMode::kChunkedSends;
  // The reference code flushes per-destination coalescing buffers of a
  // few KB as soon as they fill, paying a message latency each time.
  o.chunk_bytes = 4 * 1024;
  // Its inner loop re-derives owners with division/modulo and maintains
  // an oversized queue; roughly two extra DRAM-class operations per edge.
  o.extra_per_edge_seconds = 2.0 * opts.machine.alpha_local(1e9);
  // Lean per-destination coalescing buffers still get checked per level.
  o.per_peer_level_seconds = 5.0e-8;
  o.label = "graph500-ref";
  return o;
}

}  // namespace dbfs::bfs
