// Shared by the distributed BFS implementations: fold the cluster's
// clock/traffic accounting into a RunReport after a run completes.
#pragma once

#include "bfs/report.hpp"

namespace dbfs::simmpi {
class Cluster;
}

namespace dbfs::bfs {

void finalize_report(RunReport& report, const simmpi::Cluster& cluster);

}  // namespace dbfs::bfs
