#include "bfs/bfs1d.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "bfs/audit.hpp"
#include "bfs/finalize.hpp"
#include "bfs/frontier.hpp"
#include "comm/sieve.hpp"
#include "model/cost.hpp"
#include "obs/comm_atlas.hpp"
#include "simmpi/comm.hpp"

namespace dbfs::bfs {

namespace {

const char* mode_name(CommMode mode) {
  switch (mode) {
    case CommMode::kAlltoallv:
      return "alltoallv";
    case CommMode::kChunkedSends:
      return "chunked";
    case CommMode::kPerEdgeSends:
      return "per-edge";
  }
  return "?";
}

}  // namespace

struct Bfs1D::Impl {
  Bfs1DOptions opts;
  vid_t n;
  dist::LocalGraph1D local;
  simmpi::Cluster cluster;
  std::vector<int> world;
  comm::Sieve sieve;
  /// Retained only while shrink recovery is armed: rebuilding a
  /// (p-1)-rank partition needs the original edges.
  graph::EdgeList edges_keep;
  recover::CheckpointStore store;
  RecoverReport rec;  ///< per-run recovery accounting; reset by run()
  SdcShadow shadow;   ///< write-time ABFT shard checksums (audit.hpp)
  SdcReport sdc;      ///< per-run SDC accounting; reset by run()
  bool sdc_on = false;  ///< audits armed or at-rest flips scheduled
  vid_t source_ = 0;    ///< the run's source (rollback re-roots from it)

  static dist::LocalGraph1D make_local(const graph::EdgeList& edges,
                                       vid_t n, const Bfs1DOptions& opts) {
    if (opts.partition_mode == PartitionMode::kEdgeBalanced) {
      // A rank's per-level work is its out-edges scanned *plus* the
      // candidates arriving for its owned vertices, so balance on both
      // endpoints. On a symmetrized input this doubles every count
      // uniformly (the greedy sweep is scale-invariant, boundaries are
      // unchanged); on an unsymmetrized input it stops a high in-degree
      // hub's receive volume from being invisible to the partitioner.
      std::vector<eid_t> degrees(static_cast<std::size_t>(n), 0);
      for (const graph::Edge& e : edges.edges()) {
        ++degrees[static_cast<std::size_t>(e.u)];
        ++degrees[static_cast<std::size_t>(e.v)];
      }
      return dist::LocalGraph1D::build_with_partition(
          edges, dist::BlockPartition::edge_balanced(degrees, opts.ranks));
    }
    return dist::LocalGraph1D::build(edges, n, opts.ranks);
  }

  Impl(const graph::EdgeList& edges, vid_t num_vertices, Bfs1DOptions options)
      : opts(std::move(options)),
        n(num_vertices),
        local(make_local(edges, num_vertices, opts)),
        cluster(opts.ranks, opts.machine, opts.threads_per_rank),
        world(static_cast<std::size_t>(opts.ranks)) {
    std::iota(world.begin(), world.end(), 0);
    cluster.set_fault_plan(opts.faults);
    cluster.set_observers(opts.tracer, opts.metrics);
    cluster.set_flight(opts.flight);
    if (opts.atlas != nullptr) {
      opts.atlas->ensure_ranks(opts.ranks);
      // 1D = a degenerate 1×p grid: the single row group is the world,
      // so no off-diagonal pair ever classifies as subcommunicator-local.
      opts.atlas->set_grid(1, opts.ranks);
      cluster.set_atlas(opts.atlas);
    }
    if (!opts.faults.rank_kills.empty() &&
        opts.recover.policy == recover::Policy::kShrink) {
      edges_keep = edges;
    }
  }

  bool wire_mode() const {
    return opts.comm_mode == CommMode::kAlltoallv &&
           comm::wire_sieves(opts.wire_format);
  }

  /// Charge per-rank compute costs, blended toward the group mean by
  /// opts.load_smoothing (see Bfs1DOptions::load_smoothing).
  void charge_smoothed(const std::vector<double>& costs) {
    double mean = 0.0;
    for (double c : costs) mean += c;
    mean /= static_cast<double>(costs.size());
    const double w = opts.load_smoothing;
    for (std::size_t r = 0; r < costs.size(); ++r) {
      cluster.charge_compute(static_cast<int>(r),
                             w * mean + (1.0 - w) * costs[r]);
    }
  }

  /// Sieved/compressed variant of the aggregated exchange: each sender
  /// filters its destination blocks through its visited sieve, encodes
  /// them per opts.wire_format, and the encoded bytes travel through the
  /// same checked alltoallv (metered and checksummed post-compression).
  /// Both codec passes are priced at the local streaming bandwidth
  /// (model::cost_wire_codec) — compression buys network bytes with CPU
  /// time, never free time.
  std::vector<std::vector<Candidate>> wire_exchange(
      simmpi::FlatExchange<Candidate> send) {
    const auto p = static_cast<std::size_t>(opts.ranks);
    const int t = opts.threads_per_rank;
    auto wire = simmpi::FlatExchange<std::uint8_t>::sized(p);
    comm::WireStats stats;
    std::uint64_t pre_items = 0;
    std::uint64_t dropped = 0;
    std::vector<double> codec_costs(p, 0.0);
    std::vector<Candidate> block;
    for (std::size_t i = 0; i < p; ++i) {
      comm::WireStats rank_stats;
      std::size_t offset = 0;
      for (std::size_t j = 0; j < p; ++j) {
        const auto c = static_cast<std::size_t>(send.counts[i][j]);
        block.assign(
            send.data[i].begin() + static_cast<std::ptrdiff_t>(offset),
            send.data[i].begin() + static_cast<std::ptrdiff_t>(offset + c));
        offset += c;
        pre_items += c;
        // 1D owners keep the numerically largest parent at the reach
        // level (partition- and order-independent, like 2D), so the
        // in-level dedup keeps the max parent per vertex.
        dropped += comm::sieve_and_dedup(sieve, static_cast<int>(i), block,
                                         /*keep_max_parent=*/true);
        const std::size_t at = wire.data[i].size();
        comm::encode_candidates<Candidate>(block, opts.wire_format,
                                           wire.data[i], &rank_stats);
        wire.counts[i][j] =
            static_cast<std::int64_t>(wire.data[i].size() - at);
      }
      send.data[i].clear();
      send.data[i].shrink_to_fit();
      codec_costs[i] = model::cost_wire_codec(
          cluster.machine(), static_cast<std::size_t>(rank_stats.raw_bytes),
          static_cast<std::size_t>(rank_stats.encoded_bytes), t);
      stats.merge(rank_stats);
    }
    cluster.set_compute_phase("wire-encode");
    charge_smoothed(codec_costs);

    auto recv_wire = simmpi::checked_alltoallv(cluster, world,
                                               std::move(wire),
                                               "1d-exchange");

    std::vector<std::vector<Candidate>> recv(p);
    for (std::size_t j = 0; j < p; ++j) {
      comm::decode_candidate_stream<Candidate>(recv_wire.data[j].data(),
                                               recv_wire.data[j].size(),
                                               recv[j]);
      codec_costs[j] = model::cost_wire_codec(
          cluster.machine(), recv[j].size() * sizeof(Candidate),
          recv_wire.data[j].size(), t);
    }
    cluster.set_compute_phase("wire-decode");
    charge_smoothed(codec_costs);

    if (opts.metrics != nullptr) {
      const std::uint64_t before = pre_items * sizeof(Candidate);
      opts.metrics->counter("wire.bytes_before") +=
          static_cast<std::int64_t>(before);
      opts.metrics->counter("wire.bytes_after") +=
          static_cast<std::int64_t>(stats.encoded_bytes);
      opts.metrics->counter("wire.candidates_dropped") +=
          static_cast<std::int64_t>(dropped);
      opts.metrics->counter("wire.blocks.items") +=
          static_cast<std::int64_t>(stats.blocks_items);
      opts.metrics->counter("wire.blocks.bitmap") +=
          static_cast<std::int64_t>(stats.blocks_bitmap);
      opts.metrics->counter("wire.blocks.varint") +=
          static_cast<std::int64_t>(stats.blocks_varint);
      opts.metrics->histogram("wire.level_bytes_saved")
          .observe(static_cast<double>(before) -
                   static_cast<double>(stats.encoded_bytes));
    }
    if (opts.flight != nullptr) {
      opts.flight
          ->append("wire", "1d-exchange", cluster.clocks().max_now(), -1,
                   cluster.current_level())
          .set("raw_bytes", static_cast<double>(pre_items) *
                                static_cast<double>(sizeof(Candidate)))
          .set("encoded_bytes", static_cast<double>(stats.encoded_bytes))
          .set("sieved", static_cast<double>(dropped))
          .set("items", static_cast<double>(stats.items));
    }
    return recv;
  }

  /// Move candidates between ranks and price the exchange according to
  /// the configured CommMode. Returns per-rank received candidates.
  std::vector<std::vector<Candidate>> exchange(
      simmpi::FlatExchange<Candidate> send) {
    const auto p = static_cast<std::size_t>(opts.ranks);

    if (opts.comm_mode == CommMode::kAlltoallv) {
      if (comm::wire_sieves(opts.wire_format)) {
        return wire_exchange(std::move(send));
      }
      // The checked wrapper verifies a per-level checksum over the
      // exchanged candidates and re-issues the exchange when the fault
      // plan corrupted the payload; without payload faults it is a plain
      // alltoallv.
      auto recv = simmpi::checked_alltoallv(cluster, world, std::move(send),
                                            "1d-exchange");
      return std::move(recv.data);
    }

    // Unaggregated modes: identical data movement, but priced as many
    // individually-latencied messages per rank (the baselines' behavior).
    // Each rank still pays the level's p-way synchronization floor (the
    // reference code posts per-peer receives and barriers every level),
    // *plus* a message latency per chunk on both the send and the
    // receive side — the overhead an aggregated Alltoallv amortizes away.
    std::vector<std::vector<Candidate>> recv(p);
    std::vector<std::uint64_t> sent_bytes(p, 0), recv_bytes(p, 0);
    std::vector<std::uint64_t> sent_msgs(p, 0), recv_msgs(p, 0);
    std::uint64_t network_bytes = 0;
    // Per-edge mode must pay one message per candidate — that is the
    // PBGL-style behavior it models — so it ignores chunk_bytes instead
    // of falling through to the chunked coalescing below.
    const std::size_t chunk =
        opts.comm_mode == CommMode::kPerEdgeSends
            ? sizeof(Candidate)
            : std::max<std::size_t>(sizeof(Candidate), opts.chunk_bytes);
    for (std::size_t i = 0; i < p; ++i) {
      std::size_t offset = 0;
      for (std::size_t j = 0; j < p; ++j) {
        const auto c = static_cast<std::size_t>(send.counts[i][j]);
        recv[j].insert(
            recv[j].end(),
            send.data[i].begin() + static_cast<std::ptrdiff_t>(offset),
            send.data[i].begin() + static_cast<std::ptrdiff_t>(offset + c));
        offset += c;
        if (i == j || c == 0) continue;
        const std::uint64_t bytes = c * sizeof(Candidate);
        const std::uint64_t messages = (bytes + chunk - 1) / chunk;
        sent_bytes[i] += bytes;
        recv_bytes[j] += bytes;
        sent_msgs[i] += messages;
        recv_msgs[j] += messages;
        network_bytes += bytes;
      }
      send.data[i].clear();
      send.data[i].shrink_to_fit();
    }
    // Priced on mean per-rank volumes for the same reason as the
    // aggregated alltoallv (see comm.hpp): the baselines should not be
    // additionally penalized by small-instance hub skew. The means stay
    // in double: on high-diameter levels a rank ships fewer messages
    // than there are ranks, and integer division would truncate the
    // whole level's traffic to zero.
    double mean_msgs = 0.0;
    double mean_bytes = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      mean_msgs += static_cast<double>(sent_msgs[i] + recv_msgs[i]);
      mean_bytes += static_cast<double>(sent_bytes[i]);
    }
    mean_msgs /= static_cast<double>(p);
    mean_bytes /= static_cast<double>(p);
    const double max_cost = simmpi::faulted_cost(
        cluster, world,
        static_cast<double>(opts.ranks) * cluster.machine().alpha_net +
            model::cost_chunked_sends(cluster.machine(), mean_msgs,
                                      mean_bytes * cluster.nic_factor(),
                                      opts.ranks),
        "1d-chunked");
    simmpi::sync_collective(cluster, world, max_cost, "1d-chunked",
                            simmpi::Pattern::kPointToPoint, network_bytes);
    cluster.traffic().record(simmpi::Pattern::kPointToPoint, network_bytes,
                             max_cost, opts.ranks);
    if (obs::CommAtlas* atlas = cluster.atlas()) {
      // Real per-pair volumes, recorded after the collective (mirroring
      // the meter) so a kill at the barrier leaves nothing half-counted.
      auto& sl = atlas->slice(
          static_cast<int>(simmpi::Pattern::kPointToPoint),
          simmpi::to_string(simmpi::Pattern::kPointToPoint), "1d-chunked",
          cluster.current_level());
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
          if (i == j || send.counts[i][j] == 0) continue;
          sl.add(static_cast<int>(i), static_cast<int>(j),
                 static_cast<std::uint64_t>(send.counts[i][j]) *
                     sizeof(Candidate));
        }
      }
    }
    return recv;
  }

  /// Snapshot (parents, levels, frontier) into the replicated store.
  /// Modeled as overlapped diskless replication: metered in bytes and
  /// recover.* metrics, never charged to the clocks — a checkpointing
  /// run with no failures stays bit-identical to a plain one.
  void take_checkpoint(const BfsOutput& out,
                       const std::vector<std::vector<vid_t>>& fs,
                       vid_t global_frontier) {
    recover::Checkpoint snap;
    snap.levels_completed = static_cast<int>(out.report.levels.size());
    snap.global_frontier = global_frontier;
    snap.level = out.level;
    snap.parent = out.parent;
    for (const auto& f : fs) {
      snap.frontier.insert(snap.frontier.end(), f.begin(), f.end());
    }
    std::sort(snap.frontier.begin(), snap.frontier.end());
    const std::uint64_t bytes = store.take(std::move(snap));
    rec.checkpoints_taken = store.checkpoints_taken();
    rec.checkpoint_bytes = store.bytes_shipped();
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("recover.checkpoints");
      opts.metrics->counter("recover.checkpoint_bytes") +=
          static_cast<std::int64_t>(bytes);
    }
    if (opts.tracer != nullptr) {
      const double at = cluster.clocks().max_now();
      opts.tracer->record(0, obs::SpanKind::kCompute, "checkpoint", "", at,
                          at);
    }
    if (opts.flight != nullptr) {
      opts.flight
          ->append("checkpoint", "checkpoint", cluster.clocks().max_now(), -1,
                   cluster.current_level())
          .set("levels_completed",
               static_cast<double>(out.report.levels.size()))
          .set("bytes", static_cast<double>(bytes));
    }
  }

  /// Roll the live traversal state back to `ckpt` — or, for the implicit
  /// empty snapshot, back to just the source. Rebuilds the frontier
  /// buckets, the sender-side sieve (conservatively: every rank knows
  /// every checkpointed-visited vertex — a superset of what each rank
  /// had learned is safe, such candidates can never win a distance
  /// check), and the ABFT shadow sums. Shared by the fail-stop and the
  /// SDC-rollback paths.
  void restore_state(const recover::Checkpoint& ckpt, BfsOutput& out,
                     std::vector<std::vector<vid_t>>& fs,
                     vid_t& global_frontier, level_t& level) {
    const auto p = static_cast<std::size_t>(opts.ranks);
    const auto& part = local.partition();
    fs.assign(p, {});
    if (ckpt.level.empty()) {
      // Replay from the source: every stored replica was corrupt (or
      // none was ever taken under this arm).
      out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
      out.level.assign(static_cast<std::size_t>(n), kUnreached);
      out.parent[static_cast<std::size_t>(source_)] = source_;
      out.level[static_cast<std::size_t>(source_)] = 0;
      global_frontier = 1;
      fs[static_cast<std::size_t>(part.owner(source_))].push_back(source_);
    } else {
      out.parent = ckpt.parent;
      out.level = ckpt.level;
      global_frontier = static_cast<vid_t>(ckpt.global_frontier);
      for (vid_t v : ckpt.frontier) {
        fs[static_cast<std::size_t>(part.owner(v))].push_back(v);
      }
    }
    level = static_cast<level_t>(ckpt.levels_completed) + 1;
    out.report.levels.resize(static_cast<std::size_t>(ckpt.levels_completed));
    if (wire_mode()) {
      sieve.reset(opts.ranks, n);
      for (vid_t v = 0; v < n; ++v) {
        if (out.level[static_cast<std::size_t>(v)] != kUnreached) {
          sieve.mark_all(v);
        }
      }
    }
    if (sdc_on) {
      shadow.reset(opts.ranks);
      shadow.rebuild(out.parent, out.level,
                     [&part](vid_t v) { return part.owner(v); });
    }
  }

  /// Handle one fail-stop death: shrink or promote, restore the newest
  /// *clean* snapshot (verify-on-restore: stored replicas failing their
  /// content checksum or the structural audit are skipped), and leave
  /// the loop state positioned to replay from the checkpointed level.
  /// Throws the original error onward when recovery is impossible
  /// (spares exhausted or nothing to shrink to).
  void recover_from(const simmpi::RankFailedError& dead, BfsOutput& out,
                    std::vector<std::vector<vid_t>>& fs,
                    vid_t& global_frontier, level_t& level) {
    if (!store.armed()) throw dead;
    const recover::Checkpoint& ckpt = store.newest_clean(source_);
    const simmpi::FaultPlan& plan = cluster.faults();
    const double detect_seconds = model::cost_failure_detection(
        cluster.machine(), plan.max_collective_retries,
        plan.backoff_base_seconds, plan.backoff_cap_seconds);
    const int lost_levels =
        static_cast<int>(out.report.levels.size()) - ckpt.levels_completed;
    double restore_seconds = 0.0;
    std::uint64_t restore_bytes = 0;

    if (opts.recover.policy == recover::Policy::kSpare) {
      if (rec.spares_used >= opts.recover.spare_ranks) throw dead;
      ++rec.spares_used;
      cluster.consume_kill(dead.rank());
      cluster.revive_rank(dead.rank());
      // The promoted spare restores just the dead rank's shard from the
      // replica; the grid and partition are untouched.
      restore_bytes = recover::shard_payload_bytes(
          static_cast<std::uint64_t>(local.partition().size(dead.rank())));
      cluster.clocks().seed(dead.virtual_time());
    } else {
      const int p_new = opts.ranks - 1;
      if (p_new < 1) throw dead;
      ++rec.ranks_lost;
      cluster.consume_kill(dead.rank());
      // Remaining kill entries apply to the rebuilt communicator's rank
      // numbering (the plan names logical slots, not physical hosts).
      simmpi::FaultPlan remaining = cluster.faults();
      opts.ranks = p_new;
      local = make_local(edges_keep, n, opts);
      simmpi::Cluster fresh(p_new, opts.machine, opts.threads_per_rank);
      fresh.set_fault_plan(std::move(remaining));
      fresh.fault_counters() = cluster.fault_counters();
      fresh.set_observers(opts.tracer, opts.metrics);
      fresh.set_flight(opts.flight);
      // The atlas carries across the rebuild like the meter: pair bytes
      // recorded before the kill stay put (its matrix keeps the original
      // dimension), so the reconciliation with the carried meter holds.
      fresh.set_atlas(cluster.atlas());
      if (cluster.atlas() != nullptr) cluster.atlas()->set_grid(1, p_new);
      // Carry history forward: the meter keeps everything that ever
      // moved (including the lost window, which will move again), and
      // the seeded clocks keep the makespan continuous across the
      // rebuild. Per-rank compute/comm splits restart here — the rank
      // numbering of the survivors is new.
      fresh.traffic() = cluster.traffic();
      fresh.clocks().seed(dead.virtual_time());
      fresh.set_trace_level(ckpt.levels_completed);
      cluster = std::move(fresh);
      world.assign(static_cast<std::size_t>(p_new), 0);
      std::iota(world.begin(), world.end(), 0);
      // Every survivor re-ingests its (re-partitioned) share of the
      // snapshot.
      restore_bytes = recover::restore_payload_bytes(ckpt);
    }

    // Roll the traversal state back to the snapshot, dropping any newer
    // (possibly corrupt) replicas from the store so the replay can't
    // restore past its own restart point.
    store.rollback_to(ckpt);
    restore_state(ckpt, out, fs, global_frontier, level);

    ++rec.rank_failures;
    rec.replayed_levels += lost_levels;
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("recover.rank_failures");
      opts.metrics->counter("recover.replayed_levels") += lost_levels;
      if (opts.recover.policy == recover::Policy::kSpare) {
        ++opts.metrics->counter("recover.spare_promotions");
      } else {
        ++opts.metrics->counter("recover.shrinks");
      }
    }

    // The restore itself is a priced collective over the survivors; it
    // goes last so a second due kill fires here and unwinds to the same
    // handler with this recovery's state already consistent.
    const int divisor = std::max(1, opts.ranks);
    restore_seconds = model::cost_p2p(
        cluster.machine(),
        static_cast<std::size_t>(restore_bytes /
                                 static_cast<std::uint64_t>(divisor)));
    rec.recovery_seconds += detect_seconds + restore_seconds;
    if (opts.metrics != nullptr) {
      opts.metrics->histogram("recover.recovery_seconds")
          .observe(detect_seconds + restore_seconds);
    }
    simmpi::sync_collective(cluster, world, restore_seconds,
                            "recover-restore", simmpi::Pattern::kPointToPoint,
                            restore_bytes);
    if (opts.flight != nullptr) {
      opts.flight
          ->append("recover",
                   opts.recover.policy == recover::Policy::kSpare
                       ? "spare-promote"
                       : "shrink-rebuild",
                   cluster.clocks().max_now(), dead.rank(),
                   ckpt.levels_completed)
          .set("replayed_levels", static_cast<double>(lost_levels))
          .set("restore_bytes", static_cast<double>(restore_bytes))
          .set("restore_seconds", detect_seconds + restore_seconds);
    }
  }

  /// Apply one deterministic at-rest corruption event to this engine's
  /// live state. The victim entry and the flipped bit are drawn from the
  /// plan's flip_shape so a rollback-replay re-injects the exact same
  /// damage (and the audit catches it the exact same way) — mirrors the
  /// in-flight corrupt_buffer idiom in simmpi/comm.cpp.
  void apply_flip(const simmpi::MemFlip& flip, BfsOutput& out) {
    if (flip.rank < 0 || flip.rank >= opts.ranks) return;
    const std::uint64_t shape = cluster.faults().flip_shape(flip);
    const auto& part = local.partition();
    bool applied = false;
    switch (flip.target) {
      case simmpi::FlipTarget::kParents:
      case simmpi::FlipTarget::kLevels: {
        // Pick the k-th visited vertex in the victim rank's shard and
        // flip one bit of its parent (or level) entry.
        const vid_t lo = part.begin(flip.rank);
        const vid_t hi = part.end(flip.rank);
        vid_t count = 0;
        for (vid_t v = lo; v < hi; ++v) {
          if (out.level[static_cast<std::size_t>(v)] != kUnreached) ++count;
        }
        if (count == 0) break;
        vid_t pick = static_cast<vid_t>((shape >> 16) %
                                        static_cast<std::uint64_t>(count));
        vid_t victim = lo;
        for (vid_t v = lo; v < hi; ++v) {
          if (out.level[static_cast<std::size_t>(v)] == kUnreached) continue;
          if (pick == 0) {
            victim = v;
            break;
          }
          --pick;
        }
        if (flip.target == simmpi::FlipTarget::kParents) {
          auto& slot = out.parent[static_cast<std::size_t>(victim)];
          const std::size_t byte = (shape >> 40) % sizeof(slot);
          reinterpret_cast<unsigned char*>(&slot)[byte] ^=
              static_cast<unsigned char>(1u << ((shape >> 50) % 8));
        } else {
          auto& slot = out.level[static_cast<std::size_t>(victim)];
          const std::size_t byte = (shape >> 40) % sizeof(slot);
          reinterpret_cast<unsigned char*>(&slot)[byte] ^=
              static_cast<unsigned char>(1u << ((shape >> 50) % 8));
        }
        applied = true;
        break;
      }
      case simmpi::FlipTarget::kVisited: {
        // Set a spurious bit in the victim rank's sender-side sieve —
        // the bitmap corruption that can change the answer (it would
        // suppress future sends of an unvisited vertex). corrupt()
        // bypasses the sieve's mark checksum, so the auditor detects it
        // even after the victim vertex is legitimately visited.
        if (!wire_mode() || !sieve.active()) break;
        vid_t count = 0;
        for (vid_t v = 0; v < n; ++v) {
          if (out.level[static_cast<std::size_t>(v)] == kUnreached &&
              !sieve.test(flip.rank, v)) {
            ++count;
          }
        }
        if (count == 0) break;
        vid_t pick = static_cast<vid_t>((shape >> 16) %
                                        static_cast<std::uint64_t>(count));
        for (vid_t v = 0; v < n; ++v) {
          if (out.level[static_cast<std::size_t>(v)] != kUnreached ||
              sieve.test(flip.rank, v)) {
            continue;
          }
          if (pick == 0) {
            sieve.corrupt(flip.rank, v);
            applied = true;
            break;
          }
          --pick;
        }
        break;
      }
      case simmpi::FlipTarget::kDirop:
        // The 1D engine carries no direction-heuristic state; the event
        // is a no-op here (the 2D hybrid engine honours it).
        break;
      case simmpi::FlipTarget::kCheckpoint:
        applied = store.corrupt_latest(shape);
        break;
    }
    if (!applied) return;
    ++sdc.flips_injected;
    if (opts.metrics != nullptr) ++opts.metrics->counter("sdc.flips_injected");
    if (opts.flight != nullptr) {
      opts.flight
          ->append("fault", "mem-flip", cluster.clocks().max_now(), flip.rank,
                   cluster.current_level())
          .set("target", static_cast<double>(static_cast<int>(flip.target)))
          .set("at_level", static_cast<double>(flip.at_level));
    }
  }

  /// Consume and apply every scheduled flip that is due after
  /// `completed` levels (the simulated hardware fault firing between two
  /// level barriers).
  void inject_due_flips(BfsOutput& out, int completed) {
    for (const simmpi::MemFlip& flip : cluster.take_due_flips(completed)) {
      apply_flip(flip, out);
    }
  }

  /// One audit barrier: scrub the checkpoint store (rejecting replicas
  /// whose content checksum no longer matches), then run the priced ABFT
  /// state audit. Throws AuditFailedError on any detected corruption.
  void audit_now(BfsOutput& out) {
    if (store.armed()) {
      const int rejected = store.scrub();
      if (rejected > 0) {
        sdc.checkpoints_rejected += rejected;
        if (opts.metrics != nullptr) {
          opts.metrics->counter("sdc.checkpoints_rejected") += rejected;
        }
      }
    }
    const auto& part = local.partition();
    SdcAuditInputs in;
    in.parent = out.parent;
    in.level = out.level;
    in.shadow = &shadow;
    in.owner = [&part](vid_t v) { return part.owner(v); };
    in.source = source_;
    in.sieve = wire_mode() ? &sieve : nullptr;
    ++sdc.audits;
    try {
      const SdcAuditResult res =
          run_sdc_audit(cluster, world, in, "sdc-audit");
      sdc.audit_seconds += res.audit_seconds;
    } catch (const simmpi::AuditFailedError&) {
      ++sdc.audit_failures;
      throw;
    }
  }

  /// Recover from a failed audit: roll back to the newest clean snapshot
  /// (implicit level-0 fallback = replay from the source) and leave the
  /// loop positioned to replay. The priced restore goes last, mirroring
  /// recover_from, so a kill due during the rollback unwinds cleanly.
  void rollback_from(const simmpi::AuditFailedError& bad, BfsOutput& out,
                     std::vector<std::vector<vid_t>>& fs,
                     vid_t& global_frontier, level_t& level) {
    if (!store.armed()) throw bad;
    // Runaway guard: a shadow-bookkeeping bug would otherwise loop
    // rollback→replay→fail forever. Real injected flips are consumed on
    // first application, so legitimate runs never get near this.
    if (sdc.rollbacks >= 32) throw bad;
    const int completed = static_cast<int>(out.report.levels.size());
    const recover::Checkpoint& ckpt = store.newest_clean(source_);
    const int lost_levels = completed - ckpt.levels_completed;
    store.rollback_to(ckpt);
    restore_state(ckpt, out, fs, global_frontier, level);
    ++sdc.rollbacks;
    sdc.replayed_levels += lost_levels;
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("sdc.rollbacks");
      opts.metrics->counter("sdc.replayed_levels") += lost_levels;
    }
    const std::uint64_t restore_bytes = recover::restore_payload_bytes(ckpt);
    const int divisor = std::max(1, opts.ranks);
    const double restore_seconds = model::cost_p2p(
        cluster.machine(),
        static_cast<std::size_t>(restore_bytes /
                                 static_cast<std::uint64_t>(divisor)));
    sdc.rollback_seconds += restore_seconds;
    simmpi::sync_collective(cluster, world, restore_seconds, "sdc-rollback",
                            simmpi::Pattern::kPointToPoint, restore_bytes);
    if (opts.flight != nullptr) {
      opts.flight
          ->append("recover", "sdc-rollback", cluster.clocks().max_now(),
                   bad.rank(), ckpt.levels_completed)
          .set("replayed_levels", static_cast<double>(lost_levels))
          .set("restore_bytes", static_cast<double>(restore_bytes))
          .set("restore_seconds", restore_seconds);
    }
  }

  /// The level-synchronous loop (Algorithm 2), resumable: runs from the
  /// current (fs, global_frontier, level) state to termination.
  void traverse(BfsOutput& out, std::vector<std::vector<vid_t>>& fs,
                vid_t& global_frontier, level_t& level, bool armed);
};

Bfs1D::Bfs1D(const graph::EdgeList& edges, vid_t n, Bfs1DOptions opts)
    : impl_(std::make_unique<Impl>(edges, n, std::move(opts))) {
  if (n < 1) throw std::invalid_argument("Bfs1D: empty graph");
}

Bfs1D::~Bfs1D() = default;

const dist::BlockPartition& Bfs1D::partition() const {
  return impl_->local.partition();
}

int Bfs1D::ranks() const { return impl_->opts.ranks; }

BfsOutput Bfs1D::run(vid_t source) {
  Impl& im = *impl_;
  const vid_t n = im.n;
  if (source < 0 || source >= n) {
    throw std::out_of_range("Bfs1D: source out of range");
  }
  im.cluster.reset_accounting();
  im.rec = RecoverReport{};
  im.sdc = SdcReport{};
  im.source_ = source;

  // SDC machinery armed = an audit cadence was requested or at-rest
  // flips are scheduled. Everything it does (shadow sums, audits, final
  // sweep) is gated on this so a plain run stays bit-identical.
  const bool sdc_on = im.opts.recover.audit_every > 0 ||
                      !im.cluster.faults().mem_flips.empty();
  im.sdc_on = sdc_on;
  if (sdc_on) {
    im.sdc.enabled = true;
    im.sdc.audit_every = im.opts.recover.audit_every;
    im.shadow.reset(im.opts.ranks);
  }

  // Recovery armed = kills still scheduled on this communicator, an
  // explicit checkpoint cadence, or SDC resilience (audits need clean
  // snapshots to roll back to). Armed-but-unkilled runs snapshot for
  // free (overlapped replication), so they stay bit-identical.
  const bool recover_armed = !im.cluster.faults().rank_kills.empty() ||
                             im.opts.recover.checkpoint_every > 0;
  const bool armed = recover_armed || sdc_on;
  if (armed) im.store.arm(im.opts.recover);
  if (recover_armed) {
    im.rec.enabled = true;
    im.rec.checkpoint_every = im.opts.recover.checkpoint_every;
    im.rec.policy = recover::to_string(im.opts.recover.policy);
  }

  if (im.wire_mode()) {
    im.sieve.enable_checksums(sdc_on);
    im.sieve.reset(im.opts.ranks, n);
    // Every rank knows the source is visited before the first exchange.
    im.sieve.mark_all(source);
  }

  BfsOutput out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm = std::string(im.opts.label) + "-" +
                         mode_name(im.opts.comm_mode) +
                         (im.opts.threads_per_rank > 1 ? "-hybrid" : "-flat");

  // Per-rank frontier of owned vertices (global ids).
  std::vector<std::vector<vid_t>> fs(static_cast<std::size_t>(im.opts.ranks));
  out.parent[source] = source;
  out.level[source] = 0;
  fs[static_cast<std::size_t>(im.local.partition().owner(source))].push_back(
      source);
  if (sdc_on) {
    im.shadow.add(im.local.partition().owner(source), source, source, 0);
  }

  out.report.has_level_breakdown = im.cluster.observing();

  vid_t global_frontier = 1;
  level_t level = 1;
  // Implicit level-0 snapshot: with cadence 0 ("never"), recovery still
  // has the source to replay from.
  if (armed) im.take_checkpoint(out, fs, global_frontier);

  while (true) {
    try {
      im.traverse(out, fs, global_frontier, level, armed);
      break;
    } catch (const simmpi::AuditFailedError& bad) {
      im.rollback_from(bad, out, fs, global_frontier, level);
    } catch (const simmpi::RankFailedError& dead) {
      // A second death detected during the restore collective unwinds
      // out of recover_from; keep recovering as long as each attempt
      // consumed its kill from the plan. An unrecoverable rethrow
      // (spares exhausted, nothing to shrink to) throws before
      // consuming, leaves the plan untouched, and escapes here.
      simmpi::RankFailedError cur = dead;
      while (true) {
        const std::size_t kills_before =
            im.cluster.faults().rank_kills.size();
        try {
          im.recover_from(cur, out, fs, global_frontier, level);
          break;
        } catch (const simmpi::RankFailedError& next) {
          if (im.cluster.faults().rank_kills.size() >= kills_before) throw;
          cur = next;
        }
      }
    }
  }
  im.cluster.set_trace_level(-1);

  finalize_report(out.report, im.cluster);
  out.report.recover = im.rec;
  out.report.sdc = im.sdc;
  return out;
}

void Bfs1D::Impl::traverse(BfsOutput& out,
                           std::vector<std::vector<vid_t>>& fs,
                           vid_t& global_frontier, level_t& level,
                           bool armed) {
  Impl& im = *this;
  const int p = im.opts.ranks;
  const int t = im.opts.threads_per_rank;
  const auto& part = im.local.partition();
  const bool wire = im.wire_mode();
  const bool sdc = im.sdc_on;
  const bool observing = im.cluster.observing();
  std::vector<double> comm_before, comp_before;
  while (global_frontier > 0) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = global_frontier;
    im.cluster.set_trace_level(static_cast<int>(stats.level));
    if (observing) {
      comm_before = im.cluster.clocks().all_comm();
      comp_before = im.cluster.clocks().all_compute();
    }
    const double wall_before = im.cluster.clocks().max_now();
    const auto a2a_bytes_before =
        im.cluster.traffic().totals(simmpi::Pattern::kAlltoallv).bytes +
        im.cluster.traffic().totals(simmpi::Pattern::kPointToPoint).bytes;

    // --- Phase A (Algorithm 2 lines 13-19): scan the local frontier and
    // bucket (neighbor, parent) candidates by owner. In hybrid mode the
    // frontier is split among t thread slots, each filling its own
    // per-destination buffer tBuf[i][j], and the thread buffers are then
    // merged destination-major into SendBuf — exactly the layout of
    // Algorithm 2 lines 8-19 (the simulator runs the slots sequentially;
    // threading is priced by the model).
    std::vector<double> phase_costs(static_cast<std::size_t>(p), 0.0);
    auto send = simmpi::FlatExchange<Candidate>::sized(
        static_cast<std::size_t>(p));
    std::vector<eid_t> edges_scanned(static_cast<std::size_t>(p), 0);
    im.cluster.for_each_rank([&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      auto& counts = send.counts[ri];
      eid_t scanned = 0;

      if (t > 1) {
        // tbuf[slot][dst]: thread-local per-destination stacks.
        std::vector<std::vector<std::vector<Candidate>>> tbuf(
            static_cast<std::size_t>(t));
        for (auto& slot : tbuf) {
          slot.resize(static_cast<std::size_t>(p));
        }
        const std::size_t per_slot =
            (fs[ri].size() + static_cast<std::size_t>(t) - 1) /
            static_cast<std::size_t>(t);
        for (std::size_t i = 0; i < fs[ri].size(); ++i) {
          auto& slot = tbuf[per_slot == 0 ? 0 : i / per_slot];
          const vid_t u = fs[ri][i];
          const vid_t local_u = u - part.begin(r);
          for (vid_t v : im.local.neighbors(r, local_u)) {
            slot[static_cast<std::size_t>(part.owner(v))].push_back(
                Candidate{v, u});
            ++scanned;
          }
        }

        // Merge: SendBuf_j = concat over slots of tBuf[i][j] (lines
        // 18-19).
        for (int dst = 0; dst < p; ++dst) {
          for (const auto& slot : tbuf) {
            counts[static_cast<std::size_t>(dst)] +=
                static_cast<std::int64_t>(
                    slot[static_cast<std::size_t>(dst)].size());
          }
        }
        send.data[ri].reserve(static_cast<std::size_t>(scanned));
        for (int dst = 0; dst < p; ++dst) {
          for (const auto& slot : tbuf) {
            const auto& bucket = slot[static_cast<std::size_t>(dst)];
            send.data[ri].insert(send.data[ri].end(), bucket.begin(),
                                 bucket.end());
          }
        }
      } else {
        // Flat mode: two-pass counting sort straight into SendBuf (no
        // thread buffers to merge; avoids t*p transient allocations).
        for (vid_t u : fs[ri]) {
          const vid_t local_u = u - part.begin(r);
          for (vid_t v : im.local.neighbors(r, local_u)) {
            ++counts[static_cast<std::size_t>(part.owner(v))];
            ++scanned;
          }
        }
        std::vector<std::int64_t> cursor(static_cast<std::size_t>(p), 0);
        std::partial_sum(counts.begin(), counts.end() - 1,
                         cursor.begin() + 1);
        send.data[ri].resize(static_cast<std::size_t>(scanned));
        for (vid_t u : fs[ri]) {
          const vid_t local_u = u - part.begin(r);
          for (vid_t v : im.local.neighbors(r, local_u)) {
            auto& cur = cursor[static_cast<std::size_t>(part.owner(v))];
            send.data[ri][static_cast<std::size_t>(cur++)] = Candidate{v, u};
          }
        }
      }
      edges_scanned[ri] = scanned;

      model::Work1D work;
      work.frontier_vertices = static_cast<eid_t>(fs[ri].size());
      work.edges_scanned = scanned;
      work.words_packed = 2 * scanned;  // Candidate = 2 words
      work.n_local = part.size(r);
      work.threads = t;
      work.extra_per_edge_seconds = im.opts.extra_per_edge_seconds;
      phase_costs[ri] = model::cost_1d_local(im.cluster.machine(), work) +
                        model::cost_thread_barriers(im.cluster.machine(), t, 2) +
                        static_cast<double>(p) * im.opts.per_peer_level_seconds;
    });
    im.cluster.set_compute_phase("1d-scan");
    im.charge_smoothed(phase_costs);

    // --- All-to-all exchange (line 21).
    auto recv = im.exchange(std::move(send));

    // --- Phase B (lines 23-28): owners apply distance checks.
    std::vector<std::int64_t> next_sizes(static_cast<std::size_t>(p), 0);
    im.cluster.for_each_rank([&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      fs[ri].clear();
      if (wire) {
        // Every received candidate's target is visited by the end of
        // this level (it either wins now or lost earlier), so the owner
        // can sieve any later re-send of it. Rank-private bitmap row —
        // safe inside for_each_rank.
        for (const Candidate& c : recv[ri]) im.sieve.mark(r, c.vertex);
      }
      for (const Candidate& c : recv[ri]) {
        if (out.level[c.vertex] == kUnreached) {
          out.level[c.vertex] = level;
          out.parent[c.vertex] = c.parent;
          // The write-time shadow mirrors every owner-side mutation
          // (rank-private slot ri — safe inside for_each_rank).
          if (sdc) im.shadow.add(r, c.vertex, c.parent, level);
          fs[ri].push_back(c.vertex);
        } else if (out.level[c.vertex] == level &&
                   c.parent > out.parent[c.vertex]) {
          // Max-parent tie-break at the reach level (same rule as 2D):
          // the winner is a property of the level's candidate multiset,
          // independent of partition shape and arrival order — which is
          // what lets a replay after a shrink reproduce the fault-free
          // parents bit-for-bit.
          if (sdc) {
            im.shadow.replace(r, c.vertex, out.parent[c.vertex], level,
                              c.parent, level);
          }
          out.parent[c.vertex] = c.parent;
        }
      }
      next_sizes[ri] = static_cast<std::int64_t>(fs[ri].size());

      model::Work1D work;
      work.candidates_received = static_cast<eid_t>(recv[ri].size()) * 2;
      work.newly_visited = static_cast<vid_t>(fs[ri].size());
      work.n_local = part.size(r);
      work.threads = t;
      phase_costs[ri] = model::cost_1d_local(im.cluster.machine(), work) +
                        model::cost_thread_barriers(im.cluster.machine(), t, 2);
      recv[ri].clear();
      recv[ri].shrink_to_fit();
    });
    im.cluster.set_compute_phase("1d-update");
    im.charge_smoothed(phase_costs);

    // --- Level synchronization / termination test.
    global_frontier = static_cast<vid_t>(simmpi::allreduce_sum<std::int64_t>(
        im.cluster, im.world, next_sizes, "level-sync"));

    stats.edges_scanned =
        std::accumulate(edges_scanned.begin(), edges_scanned.end(), eid_t{0});
    stats.newly_visited = global_frontier;
    stats.a2a_bytes =
        im.cluster.traffic().totals(simmpi::Pattern::kAlltoallv).bytes +
        im.cluster.traffic().totals(simmpi::Pattern::kPointToPoint).bytes -
        a2a_bytes_before;
    stats.wall_seconds = im.cluster.clocks().max_now() - wall_before;
    if (observing) {
      double comm_sum = 0.0, comp_sum = 0.0;
      for (std::size_t r = 0; r < static_cast<std::size_t>(p); ++r) {
        const double dcomm =
            im.cluster.clocks().comm_time(static_cast<int>(r)) -
            comm_before[r];
        const double dcomp =
            im.cluster.clocks().compute_time(static_cast<int>(r)) -
            comp_before[r];
        comm_sum += dcomm;
        comp_sum += dcomp;
        stats.comm_seconds_max = std::max(stats.comm_seconds_max, dcomm);
        stats.comp_seconds_max = std::max(stats.comp_seconds_max, dcomp);
      }
      stats.comm_seconds = comm_sum / static_cast<double>(p);
      stats.comp_seconds = comp_sum / static_cast<double>(p);
    }
    if (im.opts.flight != nullptr) {
      im.opts.flight
          ->append("level", "1d-level", im.cluster.clocks().max_now(), -1,
                   static_cast<int>(level) - 1)
          .set("frontier", static_cast<double>(stats.frontier))
          .set("newly_visited", static_cast<double>(stats.newly_visited))
          .set("edges_scanned", static_cast<double>(stats.edges_scanned))
          .set("wall_seconds", stats.wall_seconds);
    }
    if (im.opts.flight != nullptr && im.cluster.atlas() != nullptr) {
      const obs::AtlasLevelCut cut =
          im.cluster.atlas()->level_cut(static_cast<int>(level) - 1);
      im.opts.flight
          ->append("atlas", "1d-level", im.cluster.clocks().max_now(),
                   cut.hotspot_rank, static_cast<int>(level) - 1)
          .set("bytes", static_cast<double>(cut.total_bytes))
          .set("network_bytes", static_cast<double>(cut.network_bytes))
          .set("subcomm_bytes", static_cast<double>(cut.subcomm_bytes));
    }
    out.report.levels.push_back(stats);
    ++level;
    // Level barrier, in hazard order: (1) scheduled at-rest flips fire,
    // (2) the audit (if due) sees them, (3) only then may a checkpoint
    // snapshot the (now audited) state.
    const int completed = static_cast<int>(out.report.levels.size());
    if (sdc) {
      im.inject_due_flips(out, completed);
      if (im.opts.recover.audit_every > 0 && global_frontier > 0 &&
          completed % im.opts.recover.audit_every == 0) {
        im.audit_now(out);
      }
    }
    if (armed && global_frontier > 0 && im.store.due(completed)) {
      im.take_checkpoint(out, fs, global_frontier);
    }
  }
  if (sdc) {
    // Final sweep: flips scheduled at or past the last level still fire,
    // and a closing audit guarantees every injected corruption is either
    // detected here or was already repaired — even with auditing off
    // (audit_every == 0), a flip-carrying run never returns unchecked.
    im.inject_due_flips(out, static_cast<int>(out.report.levels.size()));
    im.audit_now(out);
  }
}

}  // namespace dbfs::bfs
