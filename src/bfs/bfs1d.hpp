// Distributed BFS with 1D vertex partitioning (paper Algorithm 2).
//
// Each simulated rank owns a contiguous vertex range and the out-edges of
// those vertices. A level proceeds as: scan the local frontier's
// adjacencies, bucket each (neighbor, parent) candidate by owner rank,
// exchange everything in one Alltoallv, then let owners apply distance
// checks and build the next local frontier. The hybrid variant models
// t-way intra-node threading (thread-local buffers merged before the
// exchange; four thread barriers per level as in Algorithm 2).
//
// CommMode selects how the exchange is *priced* (the data movement is
// identical): kAlltoallv is the paper's aggregated collective; the other
// modes reproduce the per-message behavior of the baseline codes the
// paper compares against (Graph500 reference, PBGL).
#pragma once

#include <cstdint>
#include <memory>

#include "bfs/report.hpp"
#include "comm/wire_format.hpp"
#include "dist/local_graph1d.hpp"
#include "graph/edge_list.hpp"
#include "model/machine.hpp"
#include "recover/checkpoint.hpp"
#include "simmpi/cluster.hpp"

namespace dbfs::bfs {

enum class PartitionMode {
  kUniform,       ///< the paper's floor(n/p) blocks (default)
  kEdgeBalanced,  ///< non-uniform boundaries equalizing per-rank edges —
                  ///< a deterministic alternative to the §4.4 shuffle
};

enum class CommMode {
  kAlltoallv,      ///< aggregated collective exchange (our 1D codes)
  kChunkedSends,   ///< per-destination bounded buffers (reference code)
  kPerEdgeSends,   ///< tiny coalescing buffers (PBGL-style)
};

struct Bfs1DOptions {
  int ranks = 4;
  int threads_per_rank = 1;
  model::MachineModel machine = model::generic();
  PartitionMode partition_mode = PartitionMode::kUniform;
  CommMode comm_mode = CommMode::kAlltoallv;
  /// Bytes per message for the chunked mode (per-edge always pays one
  /// message per candidate — that is what makes it the PBGL-style
  /// worst case).
  std::size_t chunk_bytes = 16 * 1024;
  /// Wire format for the aggregated exchange payload (kAlltoallv mode
  /// only; the unaggregated baselines model codes that ship raw structs).
  /// kRaw preserves the legacy byte-for-byte code path and reports; see
  /// comm/wire_format.hpp for the sieve/compression variants.
  comm::WireFormat wire_format = comm::WireFormat::kRaw;
  /// Additional per-edge local cost (baseline implementations' heavier
  /// inner loops: allocation, property-map lookups).
  double extra_per_edge_seconds = 0.0;
  /// Per-peer, per-level host overhead: generic message-buffer frameworks
  /// (PBGL's message buffers, termination detection bookkeeping) touch a
  /// per-destination structure every level, costing CPU time proportional
  /// to the rank count regardless of data volume — the reason PBGL gains
  /// little from added cores (Table 2).
  double per_peer_level_seconds = 0.0;
  /// Statistical load smoothing in [0,1] for compute pricing. 1 prices
  /// every rank at the level's mean volume — the balanced regime of §5's
  /// model, which holds at the paper's per-rank volumes (~1M edges/rank)
  /// but not at a miniaturized instance where a single hub's adjacency
  /// dwarfs a rank's mean level volume. 0 prices each rank on its exact
  /// volumes (used by the shuffle ablation to expose real imbalance).
  double load_smoothing = 1.0;
  /// Deterministic perturbations (stragglers, transient collective
  /// failures, payload corruption); see simmpi/fault.hpp. A zero plan
  /// leaves the run bit-identical to an unfaulted build.
  simmpi::FaultPlan faults;
  /// Fail-stop recovery: checkpoint cadence and shrink-vs-spare policy
  /// (see recover/checkpoint.hpp). Checkpoints are modeled as overlapped
  /// replication, so arming this without scheduling kills leaves the run
  /// and its report bit-identical.
  recover::RecoverOptions recover;
  /// Passive observers (non-owning; see src/obs/). Null = off; attaching
  /// them never perturbs the simulated run, it only records it and
  /// enables the per-level comm/comp breakdown in the report.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Always-on black-box event ring (see obs/flight_recorder.hpp); like
  /// the observers it is passive, non-owning, and null = off.
  obs::FlightRecorder* flight = nullptr;
  /// Per-rank-pair communication atlas (see obs/comm_atlas.hpp); passive,
  /// non-owning, null = off. The driver installs the 1×p grid, so the
  /// atlas's subcommunicator-locality share is 0 by construction (the
  /// only row group IS the world — the paper's 1D contrast).
  obs::CommAtlas* atlas = nullptr;
  std::string label = "1d";
};

class Bfs1D {
 public:
  /// Partition `edges` (already shuffled/symmetrized as desired) over the
  /// configured number of ranks.
  Bfs1D(const graph::EdgeList& edges, vid_t n, Bfs1DOptions opts);
  ~Bfs1D();

  Bfs1D(const Bfs1D&) = delete;
  Bfs1D& operator=(const Bfs1D&) = delete;

  /// Run one BFS; returns global parent/level arrays plus the report.
  BfsOutput run(vid_t source);

  const dist::BlockPartition& partition() const;
  int ranks() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dbfs::bfs
