#include "bfs/frontier.hpp"

#include <bit>

namespace dbfs::bfs {

vid_t Bitmap::count() const noexcept {
  vid_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<vid_t>(std::popcount(w));
  }
  return total;
}

}  // namespace dbfs::bfs
