// Batched multi-source BFS (msBFS, after Then et al., VLDB'14): run up
// to 64 traversals simultaneously, one bit per source. Frontier/visited
// state is a 64-bit mask per vertex, so one adjacency scan advances every
// traversal that currently touches the vertex — the shared-frontier
// effect that makes all-pairs-ish analytics (degrees of separation,
// closeness centrality, pseudo-diameter sweeps) far cheaper than k
// independent BFS runs on low-diameter graphs.
//
// Beyond-the-paper extension: the paper's multi-source TEPS protocol runs
// its ≥16 sources sequentially; this is the batched alternative a
// production library offers for analytics workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/report.hpp"
#include "graph/csr_graph.hpp"

namespace dbfs::bfs {

inline constexpr int kMaxBatchedSources = 64;

struct MultiSourceResult {
  std::vector<vid_t> sources;

  /// Flattened n x k distance matrix: distance(v, s) =
  /// levels[v * k + s]; kUnreached when source s does not reach v.
  std::vector<level_t> levels;
  int num_sources = 0;

  level_t level(vid_t v, int source_index) const {
    return levels[static_cast<std::size_t>(v) *
                      static_cast<std::size_t>(num_sources) +
                  static_cast<std::size_t>(source_index)];
  }

  /// Vertices reached per source.
  std::vector<vid_t> visited_counts;

  RunReport report;  ///< per-level stats of the *batched* traversal
};

/// Run one batched traversal from up to 64 sources (throws on more, or on
/// out-of-range sources). Duplicate sources are allowed (each keeps its
/// own bit lane).
MultiSourceResult multi_source_bfs(const graph::CsrGraph& g,
                                   std::span<const vid_t> sources);

}  // namespace dbfs::bfs
