// Shared-memory multithreaded BFS (the intra-node kernel of the hybrid
// codes, paper §4.2): level-synchronous, with thread-local next-frontier
// stacks merged at each level's end, and — by default — non-atomic
// ("benign race") distance updates. A vertex may then be appended to NS
// more than once; correctness is preserved because the distance value is
// settled by the barrier at the level boundary, and the duplicate rate is
// tiny (<0.5% in the paper; measured by the ablation bench here).
#pragma once

#include "bfs/report.hpp"
#include "graph/csr_graph.hpp"

namespace dbfs::bfs {

struct SharedBfsOptions {
  int num_threads = 0;      ///< 0 = OpenMP default
  bool use_atomics = false; ///< compare-and-swap dedup instead of races
};

struct SharedBfsResult {
  BfsOutput out;
  /// Vertices that entered a thread-local NS more than once (the benign-
  /// race duplicates); always 0 with use_atomics.
  eid_t duplicate_insertions = 0;
};

SharedBfsResult shared_bfs(const graph::CsrGraph& g, vid_t source,
                           const SharedBfsOptions& opts = {});

}  // namespace dbfs::bfs
