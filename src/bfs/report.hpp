// Instrumented outputs of every BFS variant: the parent/level arrays
// (validated against the Graph500 rules in tests), plus a per-level and
// per-rank breakdown of simulated computation and communication time —
// the raw material for every table and figure harness in bench/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dbfs::bfs {

struct LevelStats {
  level_t level = 0;
  vid_t frontier = 0;          ///< global frontier size entering this level
  eid_t edges_scanned = 0;     ///< adjacencies enumerated / SpMSV flops
  vid_t newly_visited = 0;
  std::uint64_t a2a_bytes = 0;       ///< fold / 1D exchange traffic
  std::uint64_t expand_bytes = 0;    ///< allgather-or-broadcast traffic
  std::uint64_t other_bytes = 0;     ///< transpose + allreduce + misc
  double wall_seconds = 0.0;         ///< simulated level makespan
  double comm_seconds = 0.0;         ///< mean per-rank comm delta
  double comp_seconds = 0.0;         ///< mean per-rank compute delta
  /// Slowest rank's deltas for this level (straggler view). Populated —
  /// along with the means above — only when observers are attached (see
  /// RunReport::has_level_breakdown), so unobserved reports stay
  /// byte-identical.
  double comm_seconds_max = 0.0;
  double comp_seconds_max = 0.0;

  /// Direction-optimization heuristic state for this level. Filled only
  /// by direction-aware drivers (the hybrid 2D engine and the host
  /// direction_optimizing extension); emitted in the JSON `dirop` block,
  /// never in the plain `levels` array, so top-down reports stay
  /// byte-identical.
  bool bottom_up = false;          ///< direction this level actually ran in
  eid_t frontier_edges = 0;        ///< m_f: deg-sum of the entering frontier
  eid_t unexplored_edges = 0;      ///< m_u at decision time (Beamer's count)
  int dirop_rationale = 0;         ///< DiropRationale the decision followed
};

/// Why a level ran in the direction it did (one per LevelStats).
enum class DiropRationale : int {
  kTopDownStay = 0,   ///< heuristic kept top-down
  kEngage = 1,        ///< m_f > m_u / alpha and frontier >= n / beta
  kBottomUpStay = 2,  ///< stayed bottom-up (frontier still broad)
  kDisengage = 3,     ///< frontier fell below n / beta, back to top-down
  kForced = 4,        ///< direction pinned by options (no heuristic)
};

const char* to_string(DiropRationale r);

/// Fault-injection outcome of one run (plain fields so this header stays
/// free of simulator dependencies; finalize_report copies them from the
/// cluster's FaultCounters). All-zero when no fault plan was configured.
struct FaultReport {
  bool enabled = false;
  std::uint64_t seed = 0;
  std::int64_t collective_failures = 0;  ///< transient failures injected
  std::int64_t collective_retries = 0;   ///< re-issues that went through
  double backoff_seconds = 0.0;          ///< total backoff waited
  double reissue_seconds = 0.0;          ///< transfer time paid again
  std::int64_t payload_corruptions = 0;  ///< items mangled in flight
  std::int64_t checksum_checks = 0;      ///< verification rounds run
  std::int64_t payload_retries = 0;      ///< exchanges re-issued on mismatch
  int compute_stragglers = 0;            ///< plan entries, not cluster hits
  int nic_stragglers = 0;
};

/// Fail-stop recovery outcome of one run (see src/recover/). All-zero
/// until a rank actually dies; checkpoint accounting with no failures
/// lives only in the recover.* metrics so the plain report stays
/// byte-identical to pre-recovery output.
struct RecoverReport {
  bool enabled = false;          ///< a recovery-armed run (kills scheduled)
  int checkpoint_every = 0;
  std::string policy;            ///< "shrink" | "spare"; empty when off
  std::int64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;   ///< incremental replicated bytes
  std::int64_t rank_failures = 0;
  std::int64_t replayed_levels = 0;     ///< levels recomputed after restores
  double recovery_seconds = 0.0;        ///< detection + restore virtual time
  int ranks_lost = 0;                   ///< shrink: ranks retired for good
  int spares_used = 0;
};

/// Silent-data-corruption resilience outcome of one run (see
/// src/bfs/audit.*). `enabled` gates the JSON `sdc` block like
/// RecoverReport gates `recover`: a run with auditing off and no at-rest
/// fault plan emits nothing and stays byte-identical to the pre-SDC
/// engine.
struct SdcReport {
  bool enabled = false;        ///< audits armed or at-rest flips scheduled
  int audit_every = 0;
  std::int64_t audits = 0;             ///< audit barriers executed
  std::int64_t audit_failures = 0;     ///< audits that detected corruption
  std::int64_t flips_injected = 0;     ///< at-rest flips actually applied
  std::int64_t rollbacks = 0;          ///< clean-checkpoint restores taken
  std::int64_t replayed_levels = 0;    ///< levels recomputed after rollbacks
  std::int64_t checkpoints_rejected = 0;  ///< stored replicas failing scrub
  double audit_seconds = 0.0;          ///< virtual time spent auditing
  double rollback_seconds = 0.0;       ///< virtual time spent rolling back
};

/// Direction-optimization outcome of one run. `enabled` gates the JSON
/// `dirop` block the same way RecoverReport gates `recover`: a pure
/// top-down run (the default) emits nothing and stays byte-identical to
/// the pre-hybrid engine.
struct DiropReport {
  bool enabled = false;
  std::string mode;           ///< "topdown" | "bottomup" | "hybrid"
  double alpha = 0.0;
  double beta = 0.0;
  std::int64_t top_down_levels = 0;
  std::int64_t bottom_up_levels = 0;
  eid_t top_down_edges = 0;   ///< adjacencies examined while top-down
  eid_t bottom_up_edges = 0;  ///< adjacencies examined while bottom-up
  std::int64_t switches = 0;  ///< direction changes after level 0

  /// Per-direction wire accounting (2D engine only; zero on host runs):
  /// pre-codec vs shipped bytes of the frontier/candidate exchanges,
  /// split by the direction the level ran in. The acceptance check
  /// "bottom-up shipped-bytes ratio <= top-down ratio" reads these.
  std::uint64_t top_down_wire_raw_bytes = 0;
  std::uint64_t top_down_wire_bytes = 0;
  std::uint64_t bottom_up_wire_raw_bytes = 0;
  std::uint64_t bottom_up_wire_bytes = 0;
};

struct RunReport {
  std::string algorithm;
  std::string machine;
  int ranks = 1;
  int threads_per_rank = 1;
  int cores = 1;

  std::vector<LevelStats> levels;

  /// True when the run was observed (tracer/metrics attached) and the
  /// per-level comm/comp means and maxima above were captured. Gates the
  /// extra per-level JSON keys so a plain run's report is byte-identical
  /// to one produced before the observability layer existed.
  bool has_level_breakdown = false;

  double total_seconds = 0.0;       ///< simulated BFS makespan
  double comm_seconds_mean = 0.0;   ///< per-rank communication (incl. waits)
  double comm_seconds_max = 0.0;
  double comp_seconds_mean = 0.0;
  double comp_seconds_max = 0.0;

  /// Per-rank splits for the Figure 4 heatmap.
  std::vector<double> per_rank_comm;
  std::vector<double> per_rank_comp;

  std::uint64_t alltoall_bytes = 0;
  std::uint64_t allgather_bytes = 0;
  std::uint64_t transpose_bytes = 0;
  std::uint64_t allreduce_bytes = 0;

  /// Modelled transfer seconds per collective pattern (excl. waiting) —
  /// the quantities behind the paper's Table 1 percentages.
  double alltoall_seconds = 0.0;
  double allgather_seconds = 0.0;
  double transpose_seconds = 0.0;
  double allreduce_seconds = 0.0;

  eid_t edges_traversed = 0;  ///< total adjacencies touched during the run

  /// SpMSV back-end usage over the run (2D algorithms; ablation C).
  std::int64_t spmsv_spa_calls = 0;
  std::int64_t spmsv_heap_calls = 0;

  /// Fault injection outcome (zero when no plan was configured).
  FaultReport faults;

  /// Fail-stop recovery outcome (zero when no rank died).
  RecoverReport recover;

  /// SDC audit/rollback outcome (disabled unless audits or flips armed).
  SdcReport sdc;

  /// Direction-optimization outcome (disabled for pure top-down runs).
  DiropReport dirop;

  /// TEPS for a given edge denominator (Graph500 counts the input's
  /// directed edges): edges / total_seconds.
  double teps(eid_t edge_count) const {
    return total_seconds > 0.0
               ? static_cast<double>(edge_count) / total_seconds
               : 0.0;
  }

  /// Fraction of the makespan attributable to communication (mean).
  double comm_fraction() const {
    const double denom = comm_seconds_mean + comp_seconds_mean;
    return denom > 0.0 ? comm_seconds_mean / denom : 0.0;
  }
};

struct BfsOutput {
  std::vector<vid_t> parent;    ///< size n; kNoVertex when unreachable
  std::vector<level_t> level;   ///< size n; kUnreached when unreachable
  RunReport report;
};

}  // namespace dbfs::bfs
