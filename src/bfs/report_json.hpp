// JSON serialization of RunReport: lets downstream tooling (plotters,
// dashboards, regression trackers) consume the per-level and per-pattern
// breakdowns without linking the library. No external JSON dependency —
// the schema is flat and the writer is 100 lines.
#pragma once

#include <iosfwd>
#include <string>

#include "bfs/report.hpp"

namespace dbfs::bfs {

/// Serialize a report as a single JSON object. Stable schema:
/// {algorithm, machine, ranks, threads_per_rank, cores, total_seconds,
///  comm_seconds_{mean,max}, comp_seconds_{mean,max}, comm_fraction,
///  edges_traversed, traffic:{...bytes,...seconds}, spmsv:{spa,heap},
///  faults:{enabled, seed, collective_failures, collective_retries,
///          backoff_seconds, reissue_seconds, payload_corruptions,
///          checksum_checks, payload_retries, compute_stragglers,
///          nic_stragglers},
///  levels:[{level, frontier, edges, newly_visited, wall_seconds,
///           a2a_bytes, expand_bytes, other_bytes}, ...]}
/// `include_per_rank` appends per_rank_comm / per_rank_comp arrays.
void write_report_json(std::ostream& out, const RunReport& report,
                       bool include_per_rank = false);

std::string report_to_json(const RunReport& report,
                           bool include_per_rank = false);

}  // namespace dbfs::bfs
