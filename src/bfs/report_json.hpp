// JSON serialization of RunReport: lets downstream tooling (plotters,
// dashboards, regression trackers) consume the per-level and per-pattern
// breakdowns without linking the library. No external JSON dependency —
// the schema is flat and the writer is 100 lines.
#pragma once

#include <iosfwd>
#include <string>

#include "bfs/report.hpp"

namespace dbfs::obs {
class MetricsRegistry;
struct CriticalPathReport;
}  // namespace dbfs::obs

namespace dbfs::bfs {

/// Serialize a report as a single JSON object. Stable schema:
/// {algorithm, machine, ranks, threads_per_rank, cores, total_seconds,
///  comm_seconds_{mean,max}, comp_seconds_{mean,max}, comm_fraction,
///  edges_traversed, traffic:{...bytes,...seconds}, spmsv:{spa,heap},
///  faults:{enabled, seed, collective_failures, collective_retries,
///          backoff_seconds, reissue_seconds, payload_corruptions,
///          checksum_checks, payload_retries, compute_stragglers,
///          nic_stragglers},
///  levels:[{level, frontier, edges, newly_visited, wall_seconds,
///           a2a_bytes, expand_bytes, other_bytes}, ...]}
/// When the run was observed (report.has_level_breakdown), each level
/// additionally carries comm_seconds{,_max} and comp_seconds{,_max};
/// unobserved reports serialize byte-identically to the historical
/// schema. `include_per_rank` appends per_rank_comm / per_rank_comp.
void write_report_json(std::ostream& out, const RunReport& report,
                       bool include_per_rank = false);

std::string report_to_json(const RunReport& report,
                           bool include_per_rank = false);

/// Optional attachments for the richer serialization below.
struct ReportJsonOptions {
  bool include_per_rank = false;
  /// When non-null and non-empty, embedded as a top-level "metrics" key.
  const obs::MetricsRegistry* metrics = nullptr;
  /// When non-null, embedded as a top-level "critical_path" key.
  const obs::CriticalPathReport* critical_path = nullptr;
};

/// Like the two-argument overload, plus the optional embedded observer
/// sections. With default options the output is byte-identical to
/// write_report_json(out, report).
void write_report_json(std::ostream& out, const RunReport& report,
                       const ReportJsonOptions& options);

std::string report_to_json(const RunReport& report,
                           const ReportJsonOptions& options);

}  // namespace dbfs::bfs
