// Baseline: Parallel Boost Graph Library-style BFS (paper Table 2, where
// the paper's Flat 2D is up to 16× faster on Carver).
//
// PBGL lifts the sequential BGL visitor algorithm onto distributed
// adjacency lists: every cross-rank edge triggers a small "discover"
// message through a generic message buffer, and vertex properties live in
// allocation-heavy distributed property maps. We reproduce those costs
// structurally: tiny coalescing buffers priced per message, plus a large
// per-edge constant for the property-map machinery.
#pragma once

#include "bfs/bfs1d.hpp"

namespace dbfs::bfs {

struct PbglLikeOptions {
  int ranks = 4;
  model::MachineModel machine = model::generic();
};

/// Configure a Bfs1D instance that behaves like PBGL's distributed BFS.
Bfs1DOptions pbgl_like_options(const PbglLikeOptions& opts);

}  // namespace dbfs::bfs
