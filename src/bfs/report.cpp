// RunReport helpers that need the simulator types (kept out of report.hpp
// so that header stays dependency-light for downstream users).
#include "bfs/report.hpp"

#include "bfs/finalize.hpp"
#include "simmpi/cluster.hpp"
#include "util/stats.hpp"

namespace dbfs::bfs {

const char* to_string(DiropRationale r) {
  switch (r) {
    case DiropRationale::kTopDownStay: return "topdown-stay";
    case DiropRationale::kEngage: return "engage";
    case DiropRationale::kBottomUpStay: return "bottomup-stay";
    case DiropRationale::kDisengage: return "disengage";
    case DiropRationale::kForced: return "forced";
  }
  return "unknown";
}

void finalize_report(RunReport& report, const simmpi::Cluster& cluster) {
  const auto& clocks = cluster.clocks();
  report.ranks = cluster.ranks();
  report.threads_per_rank = cluster.threads_per_rank();
  report.cores = cluster.cores();
  report.machine = cluster.machine().name;

  report.total_seconds = clocks.max_now();
  report.per_rank_comm = clocks.all_comm();
  report.per_rank_comp = clocks.all_compute();

  const auto comm = util::summarize(report.per_rank_comm);
  const auto comp = util::summarize(report.per_rank_comp);
  report.comm_seconds_mean = comm.mean;
  report.comm_seconds_max = comm.max;
  report.comp_seconds_mean = comp.mean;
  report.comp_seconds_max = comp.max;

  const auto& traffic = cluster.traffic();
  report.alltoall_bytes =
      traffic.totals(simmpi::Pattern::kAlltoallv).bytes;
  report.allgather_bytes =
      traffic.totals(simmpi::Pattern::kAllgatherv).bytes +
      traffic.totals(simmpi::Pattern::kBroadcast).bytes +
      traffic.totals(simmpi::Pattern::kGatherv).bytes;
  report.transpose_bytes =
      traffic.totals(simmpi::Pattern::kTranspose).bytes;
  report.allreduce_bytes =
      traffic.totals(simmpi::Pattern::kAllreduce).bytes;

  const double ranks = static_cast<double>(cluster.ranks());
  report.alltoall_seconds =
      (traffic.totals(simmpi::Pattern::kAlltoallv).rank_seconds +
       traffic.totals(simmpi::Pattern::kPointToPoint).rank_seconds) /
      ranks;
  report.allgather_seconds =
      (traffic.totals(simmpi::Pattern::kAllgatherv).rank_seconds +
       traffic.totals(simmpi::Pattern::kBroadcast).rank_seconds +
       traffic.totals(simmpi::Pattern::kGatherv).rank_seconds) /
      ranks;
  report.transpose_seconds =
      traffic.totals(simmpi::Pattern::kTranspose).rank_seconds / ranks;
  report.allreduce_seconds =
      traffic.totals(simmpi::Pattern::kAllreduce).rank_seconds / ranks;

  eid_t scanned = 0;
  for (const LevelStats& l : report.levels) scanned += l.edges_scanned;
  report.edges_traversed = scanned;

  const simmpi::FaultPlan& plan = cluster.faults();
  const simmpi::FaultCounters& fc = cluster.fault_counters();
  report.faults.enabled = cluster.faults_enabled();
  report.faults.seed = plan.seed;
  report.faults.collective_failures = fc.collective_failures;
  report.faults.collective_retries = fc.collective_retries;
  report.faults.backoff_seconds = fc.backoff_seconds;
  report.faults.reissue_seconds = fc.reissue_seconds;
  report.faults.payload_corruptions = fc.payload_corruptions;
  report.faults.checksum_checks = fc.checksum_checks;
  report.faults.payload_retries = fc.payload_retries;
  report.faults.compute_stragglers =
      static_cast<int>(plan.compute_stragglers.size());
  report.faults.nic_stragglers = static_cast<int>(plan.nic_stragglers.size());
}

}  // namespace dbfs::bfs
