#include "bfs/baseline_pbgl.hpp"

namespace dbfs::bfs {

Bfs1DOptions pbgl_like_options(const PbglLikeOptions& opts) {
  Bfs1DOptions o;
  o.ranks = opts.ranks;
  o.threads_per_rank = 1;
  o.machine = opts.machine;
  o.comm_mode = CommMode::kPerEdgeSends;
  // PBGL's message buffers coalesce only a handful of discover messages.
  o.chunk_bytes = 512;
  // Distributed property maps: hash lookups + shared_ptr machinery on
  // every visit — several DRAM-class operations per edge.
  o.extra_per_edge_seconds = 6.0 * opts.machine.alpha_local(1e9);
  // Each level flushes p per-destination message buffers through the
  // generic buffer machinery (~microseconds of host CPU per peer): the
  // p-proportional overhead that stops PBGL from scaling (Table 2).
  o.per_peer_level_seconds = 1.5e-6;
  o.label = "pbgl-like";
  return o;
}

}  // namespace dbfs::bfs
