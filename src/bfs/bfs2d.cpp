#include "bfs/bfs2d.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "bfs/audit.hpp"
#include "bfs/finalize.hpp"
#include "bfs/frontier.hpp"
#include "comm/sieve.hpp"
#include "dist/partition2d.hpp"
#include "model/cost.hpp"
#include "obs/comm_atlas.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"
#include "sparse/semirings.hpp"

namespace dbfs::bfs {

struct Bfs2D::Impl {
  Bfs2DOptions opts;
  vid_t n;
  simmpi::ProcessGrid grid;
  dist::Partition2D part;
  dist::VectorDist vdist;
  simmpi::Cluster cluster;
  std::vector<int> world;
  std::vector<sparse::Spa<vid_t>> spa;  // per-rank persistent workspace
  // Hybrid mode: each rank's block split row-wise into t thread-local
  // DCSC pieces, exactly as the paper's Fig 2 describes. The simulator
  // executes the pieces sequentially (threading is priced by the model),
  // but the data structure and merge path are the real ones.
  std::vector<std::vector<sparse::DcscMatrix>> thread_pieces;
  // Sender-side visited sieve for the fold exchanges (kRaw leaves every
  // exchange on the legacy path).
  comm::Sieve sieve;
  /// Retained only while shrink recovery is armed: re-folding the grid
  /// needs the original edges to rebuild the checkerboard partition.
  graph::EdgeList edges_keep;
  recover::CheckpointStore store;
  RecoverReport rec;  ///< per-run recovery accounting; reset by run()
  SdcShadow shadow;   ///< write-time ABFT shard checksums (audit.hpp)
  SdcReport sdc;      ///< per-run SDC accounting; reset by run()
  bool sdc_on = false;  ///< audits armed or at-rest flips scheduled
  vid_t source_ = 0;    ///< the run's source (rollback re-roots from it)
  /// Independent replica of the direction-heuristic scalars, updated by
  /// the same legitimate operations as the live ones (never blind-copied
  /// from them), so the auditor's dirop-state comparison catches an
  /// at-rest flip of the live scalars. [m_u, m_f, bottom_up].
  std::array<std::uint64_t, 3> dirop_shadow{};

  /// Direction optimization (opts.direction != kTopDown). `deg` holds
  /// per-vertex stored-nonzero counts summed over the blocks — exactly
  /// the adjacencies top-down would scan for that vertex — so the m_f
  /// allreduce and the m_u ledger below price the same work the engine
  /// actually does. Degrees are partition-independent, so a shrink
  /// rebuild keeps them as-is. The m_u/m_f/direction scalars are the
  /// heuristic's carried state: snapshotted with every checkpoint and
  /// restored on recovery, so a replay re-takes identical decisions.
  std::vector<eid_t> deg;
  eid_t dirop_m_u = 0;           ///< m_u: degree-sum not yet frontier-charged
  eid_t dirop_m_f = 0;           ///< m_f of the frontier entering this level
  bool dirop_bottom_up = false;  ///< direction the previous level ran in
  double dirop_alpha_eff = 0.0;  ///< resolved threshold (option or model)
  double dirop_beta_eff = 0.0;

  /// Per-level wire accounting, summed over the level's expand and fold
  /// rounds and recorded into the metrics registry once per level.
  struct WireLevel {
    comm::WireStats stats;
    std::uint64_t pre_bytes = 0;
    std::uint64_t dropped = 0;
  };

  /// Sieved/compressed fold round over one processor row: filter each
  /// (sender, destination) block through the sender's sieve, encode per
  /// opts.wire_format, ship the bytes through the same checked alltoallv
  /// (metered and checksummed post-compression), decode per receiver.
  /// Codec passes are priced at beta_local via model::cost_wire_codec.
  std::vector<std::vector<Candidate>> wire_fold(
      std::span<const int> row_group, simmpi::FlatExchange<Candidate> send,
      WireLevel& wl) {
    const std::size_t s = row_group.size();
    const int t = opts.threads_per_rank;
    auto wire = simmpi::FlatExchange<std::uint8_t>::sized(s);
    std::vector<double> codec_costs(s, 0.0);
    std::vector<Candidate> block;
    for (std::size_t gj = 0; gj < s; ++gj) {
      comm::WireStats rank_stats;
      std::size_t offset = 0;
      for (std::size_t gk = 0; gk < s; ++gk) {
        const auto c = static_cast<std::size_t>(send.counts[gj][gk]);
        block.assign(
            send.data[gj].begin() + static_cast<std::ptrdiff_t>(offset),
            send.data[gj].begin() + static_cast<std::ptrdiff_t>(offset + c));
        offset += c;
        wl.pre_bytes += c * sizeof(Candidate);
        // 2D owners combine duplicates by max parent, so the in-level
        // dedup keeps the max-parent occurrence (keep_max_parent=true).
        wl.dropped += comm::sieve_and_dedup(sieve, row_group[gj], block,
                                            /*keep_max_parent=*/true);
        const std::size_t at = wire.data[gj].size();
        comm::encode_candidates<Candidate>(block, opts.wire_format,
                                           wire.data[gj], &rank_stats);
        wire.counts[gj][gk] =
            static_cast<std::int64_t>(wire.data[gj].size() - at);
      }
      codec_costs[gj] = model::cost_wire_codec(
          cluster.machine(), static_cast<std::size_t>(rank_stats.raw_bytes),
          static_cast<std::size_t>(rank_stats.encoded_bytes), t);
      wl.stats.merge(rank_stats);
    }
    cluster.set_compute_phase("wire-encode");
    charge_smoothed(row_group, codec_costs);

    auto recv_wire = simmpi::checked_alltoallv(cluster, row_group,
                                               std::move(wire), "2d-fold");

    std::vector<std::vector<Candidate>> recv(s);
    for (std::size_t gk = 0; gk < s; ++gk) {
      comm::decode_candidate_stream<Candidate>(recv_wire.data[gk].data(),
                                               recv_wire.data[gk].size(),
                                               recv[gk]);
      codec_costs[gk] = model::cost_wire_codec(
          cluster.machine(), recv[gk].size() * sizeof(Candidate),
          recv_wire.data[gk].size(), t);
    }
    cluster.set_compute_phase("wire-decode");
    charge_smoothed(row_group, codec_costs);
    return recv;
  }

  /// Compressed expand round over one processor column: each rank's
  /// sorted frontier piece ships as an encoded block; the concatenation
  /// of blocks decodes back to f_{C_j} in the same order the raw
  /// allgatherv would produce. (The sieve does not apply here — the
  /// expand payload is the deduplicated new frontier by construction.)
  std::vector<vid_t> wire_expand(std::span<const int> col_group,
                                 std::vector<std::vector<vid_t>> pieces,
                                 WireLevel& wl) {
    const std::size_t g = col_group.size();
    const int t = opts.threads_per_rank;
    std::vector<std::vector<std::uint8_t>> enc(g);
    std::vector<double> codec_costs(g, 0.0);
    for (std::size_t i = 0; i < g; ++i) {
      comm::WireStats piece_stats;
      wl.pre_bytes += pieces[i].size() * sizeof(vid_t);
      comm::encode_vertex_list(pieces[i], opts.wire_format, enc[i],
                               &piece_stats);
      codec_costs[i] = model::cost_wire_codec(
          cluster.machine(), static_cast<std::size_t>(piece_stats.raw_bytes),
          static_cast<std::size_t>(piece_stats.encoded_bytes), t);
      wl.stats.merge(piece_stats);
    }
    cluster.set_compute_phase("wire-encode");
    charge_smoothed(col_group, codec_costs);

    auto bytes = simmpi::checked_allgatherv(cluster, col_group,
                                            std::move(enc), "2d-expand",
                                            opts.allgather_algo);

    std::vector<vid_t> gathered;
    comm::decode_vertex_stream(bytes.data(), bytes.size(), gathered);
    // Every rank in the column decodes the same concatenated result.
    const double decode_cost = model::cost_wire_codec(
        cluster.machine(), gathered.size() * sizeof(vid_t), bytes.size(), t);
    std::fill(codec_costs.begin(), codec_costs.end(), decode_cost);
    cluster.set_compute_phase("wire-decode");
    charge_smoothed(col_group, codec_costs);
    return gathered;
  }

  /// Charge per-group compute costs, blended toward the group mean by
  /// opts.load_smoothing (see Bfs2DOptions::load_smoothing).
  void charge_smoothed(std::span<const int> group,
                       const std::vector<double>& costs) {
    double mean = 0.0;
    for (double c : costs) mean += c;
    mean /= static_cast<double>(costs.size());
    const double w = opts.load_smoothing;
    for (std::size_t k = 0; k < group.size(); ++k) {
      cluster.charge_compute(group[k], w * mean + (1.0 - w) * costs[k]);
    }
  }

  Impl(const graph::EdgeList& edges, vid_t num_vertices, Bfs2DOptions options)
      : opts(std::move(options)),
        n(num_vertices),
        grid(simmpi::ProcessGrid::closest_square(opts.cores,
                                                 opts.threads_per_rank)),
        part(edges, num_vertices, grid, opts.triangular_storage),
        vdist(num_vertices, grid, opts.vector_dist),
        cluster(grid.ranks(), opts.machine, opts.threads_per_rank),
        world(static_cast<std::size_t>(grid.ranks())),
        spa(static_cast<std::size_t>(grid.ranks())) {
    std::iota(world.begin(), world.end(), 0);
    cluster.set_fault_plan(opts.faults);
    cluster.set_observers(opts.tracer, opts.metrics);
    cluster.set_flight(opts.flight);
    if (opts.atlas != nullptr) {
      opts.atlas->ensure_ranks(grid.ranks());
      // The pr×pc grid lets the atlas classify expand/fold bytes as
      // row/column-subcommunicator traffic (the 2D locality split).
      opts.atlas->set_grid(grid.pr(), grid.pc());
      cluster.set_atlas(opts.atlas);
    }
    if (!opts.faults.rank_kills.empty() &&
        opts.recover.policy == recover::Policy::kShrink) {
      edges_keep = edges;
    }
    rebuild_thread_pieces();
    if (opts.direction != DirectionMode::kTopDown) build_degrees();
  }

  /// Per-vertex stored-nonzero counts, summed over the blocks (duplicates
  /// and self-loops already resolved by the partitioner, so this matches
  /// the SpMSV flop accounting exactly).
  void build_degrees() {
    deg.assign(static_cast<std::size_t>(n), 0);
    const auto& bl = part.blocks();
    for (int r = 0; r < grid.ranks(); ++r) {
      const vid_t col_base = bl.begin(grid.col_of(r));
      const auto& a = part.block(r);
      for (vid_t k = 0; k < a.nzc(); ++k) {
        deg[static_cast<std::size_t>(col_base + a.nonzero_column_id(k))] +=
            static_cast<eid_t>(a.nonzero_column(k).size());
      }
    }
  }

  void rebuild_thread_pieces() {
    if (opts.threads_per_rank <= 1) return;
    thread_pieces.assign(static_cast<std::size_t>(grid.ranks()), {});
    for (int r = 0; r < grid.ranks(); ++r) {
      thread_pieces[static_cast<std::size_t>(r)] =
          part.block(r).split_rowwise(opts.threads_per_rank);
    }
  }

  bool wire_fold_on() const {
    return opts.vector_dist != dist::VectorDistKind::kDiagonal &&
           comm::wire_sieves(opts.wire_format);
  }

  /// Snapshot (parents, levels, frontier) into the replicated store.
  /// Modeled as overlapped diskless replication: metered in bytes and
  /// recover.* metrics, never charged to the clocks — a checkpointing
  /// run with no failures stays bit-identical to a plain one.
  void take_checkpoint(const BfsOutput& out,
                       const std::vector<std::vector<vid_t>>& fs,
                       vid_t global_frontier) {
    recover::Checkpoint snap;
    snap.levels_completed = static_cast<int>(out.report.levels.size());
    snap.global_frontier = global_frontier;
    snap.level = out.level;
    snap.parent = out.parent;
    for (const auto& f : fs) {
      snap.frontier.insert(snap.frontier.end(), f.begin(), f.end());
    }
    std::sort(snap.frontier.begin(), snap.frontier.end());
    snap.dirop_frontier_edges = dirop_m_f;
    snap.dirop_unexplored_edges = dirop_m_u;
    snap.dirop_bottom_up = dirop_bottom_up;
    const std::uint64_t bytes = store.take(std::move(snap));
    rec.checkpoints_taken = store.checkpoints_taken();
    rec.checkpoint_bytes = store.bytes_shipped();
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("recover.checkpoints");
      opts.metrics->counter("recover.checkpoint_bytes") +=
          static_cast<std::int64_t>(bytes);
    }
    if (opts.tracer != nullptr) {
      const double at = cluster.clocks().max_now();
      opts.tracer->record(0, obs::SpanKind::kCompute, "checkpoint", "", at,
                          at);
    }
    if (opts.flight != nullptr) {
      opts.flight
          ->append("checkpoint", "checkpoint", cluster.clocks().max_now(), -1,
                   cluster.current_level())
          .set("levels_completed",
               static_cast<double>(out.report.levels.size()))
          .set("bytes", static_cast<double>(bytes));
    }
  }

  /// Roll the live traversal state back to `ckpt` — or, for the implicit
  /// empty snapshot, back to just the source. Rebuilds the frontier
  /// pieces, the direction-heuristic scalars (live and replica), the
  /// sender-side sieve (conservatively: every rank knows every
  /// checkpointed-visited vertex), and the ABFT shadow sums. Shared by
  /// the fail-stop and the SDC-rollback paths.
  void restore_state(const recover::Checkpoint& ckpt, BfsOutput& out,
                     std::vector<std::vector<vid_t>>& fs,
                     vid_t& global_frontier, level_t& level) {
    fs.assign(static_cast<std::size_t>(grid.ranks()), {});
    if (ckpt.level.empty()) {
      // Replay from the source: every stored replica was corrupt (or
      // none was ever taken under this arm).
      out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
      out.level.assign(static_cast<std::size_t>(n), kUnreached);
      out.parent[static_cast<std::size_t>(source_)] = source_;
      out.level[static_cast<std::size_t>(source_)] = 0;
      global_frontier = 1;
      fs[static_cast<std::size_t>(vdist.owner_rank(source_))].push_back(
          source_);
      if (opts.direction != DirectionMode::kTopDown) {
        dirop_m_u = part.total_nnz();
        dirop_m_f = deg[static_cast<std::size_t>(source_)];
        dirop_bottom_up = false;
      }
    } else {
      out.parent = ckpt.parent;
      out.level = ckpt.level;
      global_frontier = static_cast<vid_t>(ckpt.global_frontier);
      for (vid_t v : ckpt.frontier) {
        fs[static_cast<std::size_t>(vdist.owner_rank(v))].push_back(v);
      }
      // Direction-heuristic state rolls back with the traversal state, so
      // the replayed levels re-evaluate the same switch predicate on the
      // same inputs and take the same directions as the lost window.
      dirop_m_f = ckpt.dirop_frontier_edges;
      dirop_m_u = ckpt.dirop_unexplored_edges;
      dirop_bottom_up = ckpt.dirop_bottom_up;
    }
    level = static_cast<level_t>(ckpt.levels_completed) + 1;
    out.report.levels.resize(static_cast<std::size_t>(ckpt.levels_completed));
    if (wire_fold_on()) {
      sieve.reset(grid.ranks(), n);
      for (vid_t v = 0; v < n; ++v) {
        if (out.level[static_cast<std::size_t>(v)] != kUnreached) {
          sieve.mark_all(v);
        }
      }
    }
    if (sdc_on) {
      shadow.reset(grid.ranks());
      shadow.rebuild(out.parent, out.level,
                     [this](vid_t v) { return vdist.owner_rank(v); });
      sync_dirop_shadow();
    }
  }

  /// Re-seed the heuristic replica from the restored scalars (the one
  /// place the replica may copy the live values: both were just loaded
  /// from a verified checkpoint or the run's initial conditions).
  void sync_dirop_shadow() {
    dirop_shadow = {static_cast<std::uint64_t>(dirop_m_u),
                    static_cast<std::uint64_t>(dirop_m_f),
                    dirop_bottom_up ? std::uint64_t{1} : std::uint64_t{0}};
  }

  /// Handle one fail-stop death: shrink the grid or promote a spare,
  /// restore the newest *clean* snapshot (verify-on-restore: stored
  /// replicas failing their content checksum or the structural audit are
  /// skipped), and leave the loop state positioned to replay from the
  /// checkpointed level. Throws the original error onward when recovery
  /// is impossible (spares exhausted or no smaller square grid to fold
  /// to).
  void recover_from(const simmpi::RankFailedError& dead, BfsOutput& out,
                    std::vector<std::vector<vid_t>>& fs,
                    vid_t& global_frontier, level_t& level) {
    if (!store.armed()) throw dead;
    const recover::Checkpoint& ckpt = store.newest_clean(source_);
    const simmpi::FaultPlan& plan = cluster.faults();
    const double detect_seconds = model::cost_failure_detection(
        cluster.machine(), plan.max_collective_retries,
        plan.backoff_base_seconds, plan.backoff_cap_seconds);
    const int lost_levels =
        static_cast<int>(out.report.levels.size()) - ckpt.levels_completed;
    std::uint64_t restore_bytes = 0;

    if (opts.recover.policy == recover::Policy::kSpare) {
      if (rec.spares_used >= opts.recover.spare_ranks) throw dead;
      ++rec.spares_used;
      cluster.consume_kill(dead.rank());
      cluster.revive_rank(dead.rank());
      // The promoted spare restores just the dead rank's vector piece
      // from the replica; the grid and partition are untouched.
      restore_bytes = recover::shard_payload_bytes(
          static_cast<std::uint64_t>(vdist.piece_size(
              grid.row_of(dead.rank()), grid.col_of(dead.rank()))));
      cluster.clocks().seed(dead.virtual_time());
    } else {
      // Fold to the largest square grid fitting in the surviving ranks
      // (the transpose exchanges require a square grid, so a single
      // death can retire a whole grid remainder, e.g. 4x4 -> 3x3).
      const int survivors = grid.ranks() - 1;
      simmpi::ProcessGrid next = simmpi::ProcessGrid::closest_square(
          survivors * opts.threads_per_rank, opts.threads_per_rank);
      if (survivors < 1 || next.ranks() < 1) throw dead;
      rec.ranks_lost += grid.ranks() - next.ranks();
      cluster.consume_kill(dead.rank());
      // Remaining kill entries apply to the rebuilt communicator's rank
      // numbering (the plan names logical slots, not physical hosts).
      simmpi::FaultPlan remaining = cluster.faults();
      opts.cores = next.ranks() * opts.threads_per_rank;
      grid = next;
      part = dist::Partition2D(edges_keep, n, grid,
                               opts.triangular_storage);
      vdist = dist::VectorDist(n, grid, opts.vector_dist);
      simmpi::Cluster fresh(grid.ranks(), opts.machine,
                            opts.threads_per_rank);
      fresh.set_fault_plan(std::move(remaining));
      fresh.fault_counters() = cluster.fault_counters();
      fresh.set_observers(opts.tracer, opts.metrics);
      fresh.set_flight(opts.flight);
      // The atlas rides across the rebuild like the meter; its matrix
      // keeps the original dimension (old pairs stay attributed) while
      // the locality split follows the re-folded, smaller grid.
      fresh.set_atlas(cluster.atlas());
      if (cluster.atlas() != nullptr) {
        cluster.atlas()->set_grid(grid.pr(), grid.pc());
      }
      // Carry history forward: the meter keeps everything that ever
      // moved (including the lost window, which will move again), and
      // the seeded clocks keep the makespan continuous across the
      // rebuild. Per-rank compute/comm splits restart here — the rank
      // numbering of the survivors is new.
      fresh.traffic() = cluster.traffic();
      fresh.clocks().seed(dead.virtual_time());
      fresh.set_trace_level(ckpt.levels_completed);
      cluster = std::move(fresh);
      world.assign(static_cast<std::size_t>(grid.ranks()), 0);
      std::iota(world.begin(), world.end(), 0);
      spa.assign(static_cast<std::size_t>(grid.ranks()), {});
      rebuild_thread_pieces();
      // Every survivor re-ingests its (re-folded) share of the snapshot.
      restore_bytes = recover::restore_payload_bytes(ckpt);
    }

    // Roll the traversal state back to the snapshot, dropping any newer
    // (possibly corrupt) replicas from the store so the replay can't
    // restore past its own restart point.
    store.rollback_to(ckpt);
    restore_state(ckpt, out, fs, global_frontier, level);

    ++rec.rank_failures;
    rec.replayed_levels += lost_levels;
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("recover.rank_failures");
      opts.metrics->counter("recover.replayed_levels") += lost_levels;
      if (opts.recover.policy == recover::Policy::kSpare) {
        ++opts.metrics->counter("recover.spare_promotions");
      } else {
        ++opts.metrics->counter("recover.shrinks");
      }
    }

    // The restore itself is a priced collective over the survivors; it
    // goes last so a second due kill fires here and unwinds to the same
    // handler with this recovery's state already consistent.
    const int divisor = std::max(1, grid.ranks());
    const double restore_seconds = model::cost_p2p(
        cluster.machine(),
        static_cast<std::size_t>(restore_bytes /
                                 static_cast<std::uint64_t>(divisor)));
    rec.recovery_seconds += detect_seconds + restore_seconds;
    if (opts.metrics != nullptr) {
      opts.metrics->histogram("recover.recovery_seconds")
          .observe(detect_seconds + restore_seconds);
    }
    simmpi::sync_collective(cluster, world, restore_seconds,
                            "recover-restore", simmpi::Pattern::kPointToPoint,
                            restore_bytes);
    if (opts.flight != nullptr) {
      opts.flight
          ->append("recover",
                   opts.recover.policy == recover::Policy::kSpare
                       ? "spare-promote"
                       : "shrink-rebuild",
                   cluster.clocks().max_now(), dead.rank(),
                   ckpt.levels_completed)
          .set("replayed_levels", static_cast<double>(lost_levels))
          .set("restore_bytes", static_cast<double>(restore_bytes))
          .set("restore_seconds", detect_seconds + restore_seconds);
    }
  }

  /// Apply one deterministic at-rest corruption event to this engine's
  /// live state. The victim entry and the flipped bit are drawn from the
  /// plan's flip_shape so a rollback-replay re-injects the exact same
  /// damage (and the audit catches it the exact same way) — mirrors the
  /// in-flight corrupt_buffer idiom in simmpi/comm.cpp.
  void apply_flip(const simmpi::MemFlip& flip, BfsOutput& out) {
    if (flip.rank < 0 || flip.rank >= grid.ranks()) return;
    const std::uint64_t shape = cluster.faults().flip_shape(flip);
    bool applied = false;
    switch (flip.target) {
      case simmpi::FlipTarget::kParents:
      case simmpi::FlipTarget::kLevels: {
        // Pick the k-th visited vertex in the victim rank's vector piece
        // and flip one bit of its parent (or level) entry.
        vid_t count = 0;
        for (vid_t v = 0; v < n; ++v) {
          if (vdist.owner_rank(v) == flip.rank &&
              out.level[static_cast<std::size_t>(v)] != kUnreached) {
            ++count;
          }
        }
        if (count == 0) break;
        vid_t pick = static_cast<vid_t>((shape >> 16) %
                                        static_cast<std::uint64_t>(count));
        vid_t victim = 0;
        for (vid_t v = 0; v < n; ++v) {
          if (vdist.owner_rank(v) != flip.rank ||
              out.level[static_cast<std::size_t>(v)] == kUnreached) {
            continue;
          }
          if (pick == 0) {
            victim = v;
            break;
          }
          --pick;
        }
        if (flip.target == simmpi::FlipTarget::kParents) {
          auto& slot = out.parent[static_cast<std::size_t>(victim)];
          const std::size_t byte = (shape >> 40) % sizeof(slot);
          reinterpret_cast<unsigned char*>(&slot)[byte] ^=
              static_cast<unsigned char>(1u << ((shape >> 50) % 8));
        } else {
          auto& slot = out.level[static_cast<std::size_t>(victim)];
          const std::size_t byte = (shape >> 40) % sizeof(slot);
          reinterpret_cast<unsigned char*>(&slot)[byte] ^=
              static_cast<unsigned char>(1u << ((shape >> 50) % 8));
        }
        applied = true;
        break;
      }
      case simmpi::FlipTarget::kVisited: {
        // Set a spurious bit in the victim rank's sender-side sieve —
        // corrupt() bypasses the sieve's mark checksum, so the auditor
        // detects it even after the victim vertex is legitimately
        // visited.
        if (!wire_fold_on() || !sieve.active()) break;
        vid_t count = 0;
        for (vid_t v = 0; v < n; ++v) {
          if (out.level[static_cast<std::size_t>(v)] == kUnreached &&
              !sieve.test(flip.rank, v)) {
            ++count;
          }
        }
        if (count == 0) break;
        vid_t pick = static_cast<vid_t>((shape >> 16) %
                                        static_cast<std::uint64_t>(count));
        for (vid_t v = 0; v < n; ++v) {
          if (out.level[static_cast<std::size_t>(v)] != kUnreached ||
              sieve.test(flip.rank, v)) {
            continue;
          }
          if (pick == 0) {
            sieve.corrupt(flip.rank, v);
            applied = true;
            break;
          }
          --pick;
        }
        break;
      }
      case simmpi::FlipTarget::kDirop:
        // Flip one low bit of the live m_u ledger; the independent
        // replica keeps the true value, so the next audit's dirop-state
        // comparison catches the drift. A no-op unless the heuristic is
        // actually carrying state.
        if (opts.direction == DirectionMode::kTopDown) break;
        dirop_m_u ^= static_cast<eid_t>(1) << ((shape >> 50) % 8);
        applied = true;
        break;
      case simmpi::FlipTarget::kCheckpoint:
        applied = store.corrupt_latest(shape);
        break;
    }
    if (!applied) return;
    ++sdc.flips_injected;
    if (opts.metrics != nullptr) ++opts.metrics->counter("sdc.flips_injected");
    if (opts.flight != nullptr) {
      opts.flight
          ->append("fault", "mem-flip", cluster.clocks().max_now(), flip.rank,
                   cluster.current_level())
          .set("target", static_cast<double>(static_cast<int>(flip.target)))
          .set("at_level", static_cast<double>(flip.at_level));
    }
  }

  /// Consume and apply every scheduled flip that is due after
  /// `completed` levels (the simulated hardware fault firing between two
  /// level barriers).
  void inject_due_flips(BfsOutput& out, int completed) {
    for (const simmpi::MemFlip& flip : cluster.take_due_flips(completed)) {
      apply_flip(flip, out);
    }
  }

  /// One audit barrier: scrub the checkpoint store (rejecting replicas
  /// whose content checksum no longer matches), then run the priced ABFT
  /// state audit. Throws AuditFailedError on any detected corruption.
  void audit_now(BfsOutput& out) {
    if (store.armed()) {
      const int rejected = store.scrub();
      if (rejected > 0) {
        sdc.checkpoints_rejected += rejected;
        if (opts.metrics != nullptr) {
          opts.metrics->counter("sdc.checkpoints_rejected") += rejected;
        }
      }
    }
    std::array<std::uint64_t, 3> live{};
    SdcAuditInputs in;
    in.parent = out.parent;
    in.level = out.level;
    in.shadow = &shadow;
    in.owner = [this](vid_t v) { return vdist.owner_rank(v); };
    in.source = source_;
    in.sieve = wire_fold_on() ? &sieve : nullptr;
    if (opts.direction != DirectionMode::kTopDown) {
      live = {static_cast<std::uint64_t>(dirop_m_u),
              static_cast<std::uint64_t>(dirop_m_f),
              dirop_bottom_up ? std::uint64_t{1} : std::uint64_t{0}};
      in.dirop_state = live;
      in.dirop_shadow = dirop_shadow;
    }
    ++sdc.audits;
    try {
      const SdcAuditResult res =
          run_sdc_audit(cluster, world, in, "sdc-audit");
      sdc.audit_seconds += res.audit_seconds;
    } catch (const simmpi::AuditFailedError&) {
      ++sdc.audit_failures;
      throw;
    }
  }

  /// Recover from a failed audit: roll back to the newest clean snapshot
  /// (implicit level-0 fallback = replay from the source) and leave the
  /// loop positioned to replay. The priced restore goes last, mirroring
  /// recover_from, so a kill due during the rollback unwinds cleanly.
  void rollback_from(const simmpi::AuditFailedError& bad, BfsOutput& out,
                     std::vector<std::vector<vid_t>>& fs,
                     vid_t& global_frontier, level_t& level) {
    if (!store.armed()) throw bad;
    // Runaway guard: a shadow-bookkeeping bug would otherwise loop
    // rollback→replay→fail forever. Real injected flips are consumed on
    // first application, so legitimate runs never get near this.
    if (sdc.rollbacks >= 32) throw bad;
    const int completed = static_cast<int>(out.report.levels.size());
    const recover::Checkpoint& ckpt = store.newest_clean(source_);
    const int lost_levels = completed - ckpt.levels_completed;
    store.rollback_to(ckpt);
    restore_state(ckpt, out, fs, global_frontier, level);
    ++sdc.rollbacks;
    sdc.replayed_levels += lost_levels;
    if (opts.metrics != nullptr) {
      ++opts.metrics->counter("sdc.rollbacks");
      opts.metrics->counter("sdc.replayed_levels") += lost_levels;
    }
    const std::uint64_t restore_bytes = recover::restore_payload_bytes(ckpt);
    const int divisor = std::max(1, grid.ranks());
    const double restore_seconds = model::cost_p2p(
        cluster.machine(),
        static_cast<std::size_t>(restore_bytes /
                                 static_cast<std::uint64_t>(divisor)));
    sdc.rollback_seconds += restore_seconds;
    simmpi::sync_collective(cluster, world, restore_seconds, "sdc-rollback",
                            simmpi::Pattern::kPointToPoint, restore_bytes);
    if (opts.flight != nullptr) {
      opts.flight
          ->append("recover", "sdc-rollback", cluster.clocks().max_now(),
                   bad.rank(), ckpt.levels_completed)
          .set("replayed_levels", static_cast<double>(lost_levels))
          .set("restore_bytes", static_cast<double>(restore_bytes))
          .set("restore_seconds", restore_seconds);
    }
  }

  /// One bottom-up level's exchanges and local scan (the direction-
  /// optimized pull step): row-group frontier/visited allgather, pairwise
  /// completeness swap, early-exit probe scan over the stored blocks.
  /// Discovered parents land in `mirrored` — the transpose partner's row
  /// range — so the shared fold path finishes the level unchanged.
  void bottom_up_level(const BfsOutput& out,
                       std::vector<std::vector<vid_t>>& fs,
                       std::vector<std::vector<Candidate>>& mirrored,
                       std::vector<eid_t>& flops, WireLevel& wl);

  /// The level-synchronous loop (Algorithm 3), resumable: runs from the
  /// current (fs, global_frontier, level) state to termination.
  void traverse(BfsOutput& out, std::vector<std::vector<vid_t>>& fs,
                vid_t& global_frontier, level_t& level, bool armed);
};

const char* to_string(DirectionMode mode) {
  switch (mode) {
    case DirectionMode::kTopDown:
      return "topdown";
    case DirectionMode::kBottomUp:
      return "bottomup";
    case DirectionMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

DirectionMode parse_direction_mode(const std::string& name) {
  if (name == "topdown") return DirectionMode::kTopDown;
  if (name == "bottomup") return DirectionMode::kBottomUp;
  if (name == "hybrid") return DirectionMode::kHybrid;
  throw std::invalid_argument("unknown direction mode: " + name);
}

Bfs2D::Bfs2D(const graph::EdgeList& edges, vid_t n, Bfs2DOptions opts)
    : impl_(std::make_unique<Impl>(edges, n, std::move(opts))) {
  if (n < 1) throw std::invalid_argument("Bfs2D: empty graph");
  if (impl_->opts.triangular_storage &&
      impl_->opts.vector_dist == dist::VectorDistKind::kDiagonal) {
    throw std::invalid_argument(
        "Bfs2D: triangular storage requires the 2D vector distribution");
  }
  if (impl_->opts.direction != DirectionMode::kTopDown) {
    // The bottom-up probe scan needs every stored adjacency direction in
    // the blocks (the wedge alone cannot answer "does any frontier vertex
    // neighbor me"), and the diagonal baseline exists only to reproduce
    // the Fig 4 bottleneck on the legacy path.
    if (impl_->opts.triangular_storage) {
      throw std::invalid_argument(
          "Bfs2D: direction optimization requires full (non-triangular) "
          "storage");
    }
    if (impl_->opts.vector_dist == dist::VectorDistKind::kDiagonal) {
      throw std::invalid_argument(
          "Bfs2D: direction optimization requires a non-diagonal vector "
          "distribution");
    }
  }
}

Bfs2D::~Bfs2D() = default;

const simmpi::ProcessGrid& Bfs2D::grid() const { return impl_->grid; }

int Bfs2D::cores_used() const {
  return impl_->grid.ranks() * impl_->opts.threads_per_rank;
}

BfsOutput Bfs2D::run(vid_t source) {
  Impl& im = *impl_;
  const vid_t n = im.n;
  if (source < 0 || source >= n) {
    throw std::out_of_range("Bfs2D: source out of range");
  }
  im.cluster.reset_accounting();
  im.rec = RecoverReport{};
  im.sdc = SdcReport{};
  im.source_ = source;

  // SDC machinery armed = an audit cadence was requested or at-rest
  // flips are scheduled. Everything it does (shadow sums, audits, final
  // sweep) is gated on this so a plain run stays bit-identical.
  const bool sdc_on = im.opts.recover.audit_every > 0 ||
                      !im.cluster.faults().mem_flips.empty();
  im.sdc_on = sdc_on;
  if (sdc_on) {
    im.sdc.enabled = true;
    im.sdc.audit_every = im.opts.recover.audit_every;
    im.shadow.reset(im.grid.ranks());
  }

  // Recovery armed = kills still scheduled on this communicator, an
  // explicit checkpoint cadence, or SDC resilience (audits need clean
  // snapshots to roll back to). Armed-but-unkilled runs snapshot for
  // free (overlapped replication), so they stay bit-identical.
  const bool recover_armed = !im.cluster.faults().rank_kills.empty() ||
                             im.opts.recover.checkpoint_every > 0;
  const bool armed = recover_armed || sdc_on;
  if (armed) im.store.arm(im.opts.recover);
  if (recover_armed) {
    im.rec.enabled = true;
    im.rec.checkpoint_every = im.opts.recover.checkpoint_every;
    im.rec.policy = recover::to_string(im.opts.recover.policy);
  }

  if (im.wire_fold_on()) {
    im.sieve.enable_checksums(sdc_on);
    im.sieve.reset(im.grid.ranks(), n);
    // Every rank knows the source is visited before the first fold.
    im.sieve.mark_all(source);
  }

  const bool diagonal =
      im.opts.vector_dist == dist::VectorDistKind::kDiagonal;
  BfsOutput out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm =
      std::string(im.opts.label) +
      (im.opts.threads_per_rank > 1 ? "-hybrid" : "-flat") +
      (diagonal ? "-diagvec" : "") +
      (im.opts.triangular_storage ? "-tri" : "") +
      (im.opts.direction == DirectionMode::kHybrid ? "-dirop" : "") +
      (im.opts.direction == DirectionMode::kBottomUp ? "-bottomup" : "");

  const bool dirop_on = im.opts.direction != DirectionMode::kTopDown;
  if (dirop_on) {
    im.dirop_alpha_eff = im.opts.alpha > 0.0
                             ? im.opts.alpha
                             : model::dirop_alpha(im.cluster.machine());
    im.dirop_beta_eff = im.opts.beta > 0.0
                            ? im.opts.beta
                            : model::dirop_beta(im.cluster.machine());
    im.dirop_m_u = im.part.total_nnz();
    im.dirop_m_f = im.deg[static_cast<std::size_t>(source)];
    im.dirop_bottom_up = false;
    out.report.dirop.enabled = true;
    out.report.dirop.mode = to_string(im.opts.direction);
    out.report.dirop.alpha = im.dirop_alpha_eff;
    out.report.dirop.beta = im.dirop_beta_eff;
  }

  // Frontier pieces: per rank, sorted global ids within its vector piece.
  std::vector<std::vector<vid_t>> fs(
      static_cast<std::size_t>(im.grid.ranks()));
  out.parent[source] = source;
  out.level[source] = 0;
  fs[static_cast<std::size_t>(im.vdist.owner_rank(source))].push_back(source);
  if (sdc_on) {
    im.shadow.add(im.vdist.owner_rank(source), source, source, 0);
    im.sync_dirop_shadow();
  }

  out.report.has_level_breakdown = im.cluster.observing();

  vid_t global_frontier = 1;
  level_t level = 1;
  // Implicit level-0 snapshot: with cadence 0 ("never"), recovery still
  // has the source to replay from.
  if (armed) im.take_checkpoint(out, fs, global_frontier);

  while (true) {
    try {
      im.traverse(out, fs, global_frontier, level, armed);
      break;
    } catch (const simmpi::AuditFailedError& bad) {
      im.rollback_from(bad, out, fs, global_frontier, level);
    } catch (const simmpi::RankFailedError& dead) {
      // A second death detected during the restore collective unwinds
      // out of recover_from; keep recovering as long as each attempt
      // consumed its kill from the plan. An unrecoverable rethrow
      // (spares exhausted, nothing to shrink to) throws before
      // consuming, leaves the plan untouched, and escapes here.
      simmpi::RankFailedError cur = dead;
      while (true) {
        const std::size_t kills_before =
            im.cluster.faults().rank_kills.size();
        try {
          im.recover_from(cur, out, fs, global_frontier, level);
          break;
        } catch (const simmpi::RankFailedError& next) {
          if (im.cluster.faults().rank_kills.size() >= kills_before) throw;
          cur = next;
        }
      }
    }
  }
  im.cluster.set_trace_level(-1);

  finalize_report(out.report, im.cluster);
  out.report.recover = im.rec;
  out.report.sdc = im.sdc;
  if (dirop_on) {
    // Tally from the surviving per-level stats (recovery rollbacks trim
    // report.levels, so replayed windows are counted exactly once here;
    // the wire-byte fields follow the traffic meter's keep-everything
    // convention instead and accumulate during traverse).
    DiropReport& d = out.report.dirop;
    bool prev = false;
    for (const LevelStats& l : out.report.levels) {
      if (l.bottom_up) {
        ++d.bottom_up_levels;
        d.bottom_up_edges += l.edges_scanned;
      } else {
        ++d.top_down_levels;
        d.top_down_edges += l.edges_scanned;
      }
      if (l.level > 0 && l.bottom_up != prev) ++d.switches;
      prev = l.bottom_up;
    }
  }
  return out;
}

void Bfs2D::Impl::traverse(BfsOutput& out,
                           std::vector<std::vector<vid_t>>& fs,
                           vid_t& global_frontier, level_t& level,
                           bool armed) {
  // Grid-shaped locals are re-derived on every (re)entry: a shrink
  // recovery replaces the grid, partition, and cluster between calls.
  Impl& im = *this;
  const int s = im.grid.pr();
  const int p = im.grid.ranks();
  const int t = im.opts.threads_per_rank;
  const bool diagonal =
      im.opts.vector_dist == dist::VectorDistKind::kDiagonal;
  const auto& blocks = im.part.blocks();

  // The diagonal-vector baseline keeps its legacy broadcast/gatherv path
  // (it exists to reproduce Fig 4's bottleneck, not to be optimized).
  const bool wire_fold_on = im.wire_fold_on();
  const bool wire_expand_on =
      !diagonal && comm::wire_compresses(im.opts.wire_format);
  const bool dirop_on = im.opts.direction != DirectionMode::kTopDown;

  const bool observing = im.cluster.observing();
  std::vector<double> comm_before, comp_before;
  while (global_frontier > 0) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = global_frontier;
    im.cluster.set_trace_level(static_cast<int>(stats.level));
    if (observing) {
      comm_before = im.cluster.clocks().all_comm();
      comp_before = im.cluster.clocks().all_compute();
    }
    const double wall_before = im.cluster.clocks().max_now();
    auto& traffic = im.cluster.traffic();
    const auto ag_before =
        traffic.totals(simmpi::Pattern::kAllgatherv).bytes +
        traffic.totals(simmpi::Pattern::kBroadcast).bytes;
    const auto a2a_before =
        traffic.totals(simmpi::Pattern::kAlltoallv).bytes +
        traffic.totals(simmpi::Pattern::kGatherv).bytes;
    const auto tr_before = traffic.totals(simmpi::Pattern::kTranspose).bytes;

    // ---- Direction decision (Beamer's alpha-beta rule, priced per the
    // machine model's thresholds when none were given). Every input is
    // globally identical: global_frontier comes from the "level-sync"
    // allreduce, m_f from the "dirop-sync" allreduce of the owners'
    // degree sums below, and m_u from the same subtraction replayed on
    // every rank — so all ranks evaluate the same predicate and switch
    // in lockstep, and a recovery replay (which restores m_u and the
    // previous direction from the checkpoint) re-takes the same branch.
    bool bottom_up = false;
    if (dirop_on) {
      std::vector<std::int64_t> contrib(static_cast<std::size_t>(p), 0);
      for (int r = 0; r < p; ++r) {
        for (vid_t v : fs[static_cast<std::size_t>(r)]) {
          contrib[static_cast<std::size_t>(r)] += static_cast<std::int64_t>(
              im.deg[static_cast<std::size_t>(v)]);
        }
      }
      im.dirop_m_f = static_cast<eid_t>(simmpi::allreduce_sum<std::int64_t>(
          im.cluster, im.world, contrib, "dirop-sync"));

      DiropRationale rationale = DiropRationale::kTopDownStay;
      if (im.opts.direction == DirectionMode::kBottomUp) {
        bottom_up = true;
        rationale = DiropRationale::kForced;
      } else {
        // Engage only when the frontier is both edge-heavy and broad; a
        // narrow frontier late in the traversal can trip the edge ratio
        // while bottom-up would still probe every unvisited vertex.
        const bool broad = static_cast<double>(global_frontier) >=
                           static_cast<double>(n) / im.dirop_beta_eff;
        if (!im.dirop_bottom_up && broad &&
            static_cast<double>(im.dirop_m_f) >
                static_cast<double>(im.dirop_m_u) / im.dirop_alpha_eff) {
          bottom_up = true;
          rationale = DiropRationale::kEngage;
        } else if (im.dirop_bottom_up && !broad) {
          rationale = DiropRationale::kDisengage;
        } else if (im.dirop_bottom_up) {
          bottom_up = true;
          rationale = DiropRationale::kBottomUpStay;
        }
      }
      stats.bottom_up = bottom_up;
      stats.frontier_edges = im.dirop_m_f;
      stats.unexplored_edges = im.dirop_m_u;
      stats.dirop_rationale = static_cast<int>(rationale);
      im.dirop_bottom_up = bottom_up;
      im.dirop_m_u -= std::min(im.dirop_m_u, im.dirop_m_f);
      if (im.sdc_on) {
        // The replica applies the same operations on its own ledger
        // (never copying the live m_u), so an at-rest flip of the live
        // scalar keeps the two apart for the next audit to catch.
        im.dirop_shadow[1] = static_cast<std::uint64_t>(im.dirop_m_f);
        im.dirop_shadow[2] = bottom_up ? 1 : 0;
        im.dirop_shadow[0] -=
            std::min(im.dirop_shadow[0], im.dirop_shadow[1]);
      }
      if (im.opts.flight != nullptr) {
        im.opts.flight
            ->append("dirop", to_string(rationale),
                     im.cluster.clocks().max_now(), -1,
                     static_cast<int>(stats.level))
            .set("frontier", static_cast<double>(global_frontier))
            .set("frontier_edges", static_cast<double>(stats.frontier_edges))
            .set("unexplored_edges",
                 static_cast<double>(stats.unexplored_edges))
            .set("bottom_up", bottom_up ? 1.0 : 0.0);
      }
    }

    // ---- Expand / local step. A bottom-up level replaces the expand
    // and the forward SpMSV with the pull formulation; its discovered
    // parents land in `mirrored` and ride the shared fold path below.
    Impl::WireLevel wire_level;
    std::vector<sparse::SparseVector<vid_t>> partials(
        static_cast<std::size_t>(p));
    std::vector<double> spmsv_costs(static_cast<std::size_t>(p), 0.0);
    std::vector<eid_t> flops(static_cast<std::size_t>(p), 0);
    std::vector<std::int64_t> spa_calls(static_cast<std::size_t>(p), 0);
    std::vector<std::int64_t> heap_calls(static_cast<std::size_t>(p), 0);
    std::vector<std::vector<Candidate>> mirrored(static_cast<std::size_t>(p));
    std::vector<std::vector<vid_t>> gathered(static_cast<std::size_t>(s));
    if (bottom_up) {
      im.bottom_up_level(out, fs, mirrored, flops, wire_level);
    } else if (!diagonal) {
      // TransposeVector (line 5), then Allgatherv over columns (line 6).
      auto transposed =
          simmpi::transpose_exchange(im.cluster, im.grid, std::move(fs));
      for (int j = 0; j < s; ++j) {
        std::vector<std::vector<vid_t>> pieces;
        pieces.reserve(static_cast<std::size_t>(s));
        for (int i = 0; i < s; ++i) {
          // After the transpose, P(i,j) holds sub-piece i of range R_j;
          // concatenating in i order yields f_{C_j} sorted.
          pieces.push_back(std::move(
              transposed[static_cast<std::size_t>(im.grid.rank_of(i, j))]));
        }
        // Checksum-verified when the fault plan corrupts payloads: a
        // mangled frontier piece is detected and re-gathered before any
        // rank consumes it.
        gathered[static_cast<std::size_t>(j)] =
            wire_expand_on
                ? im.wire_expand(im.grid.col_group(j), std::move(pieces),
                                 wire_level)
                : simmpi::checked_allgatherv(
                      im.cluster, im.grid.col_group(j), std::move(pieces),
                      "2d-expand", im.opts.allgather_algo);
      }
      fs.assign(static_cast<std::size_t>(p), {});
    } else {
      // Diagonal distribution: P(j,j) owns all of R_j; broadcast it down
      // processor column j.
      for (int j = 0; j < s; ++j) {
        gathered[static_cast<std::size_t>(j)] = simmpi::broadcast(
            im.cluster, im.grid.col_group(j), static_cast<std::size_t>(j),
            fs[static_cast<std::size_t>(im.grid.rank_of(j, j))],
            "2d-expand");
      }
      for (auto& piece : fs) piece.clear();
    }

    // ---- Local SpMSV (line 7): t_i = A_ij ⊗ f_{C_j} on (select, max).
    // Skipped wholesale on bottom-up levels: running it on the empty
    // gathered frontier would still pay thread barriers and skew the
    // spmsv.* back-end counters.
    if (!bottom_up) {
      im.cluster.for_each_rank([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const int i = im.grid.row_of(r);
        const int j = im.grid.col_of(r);
        const vid_t col_base = blocks.begin(j);
        const auto& column_frontier = gathered[static_cast<std::size_t>(j)];

        std::vector<sparse::SvEntry<vid_t>> x_entries;
        x_entries.reserve(column_frontier.size());
        for (vid_t gv : column_frontier) {
          x_entries.push_back(sparse::SvEntry<vid_t>{gv - col_base, gv});
        }
        auto x = sparse::SparseVector<vid_t>::from_sorted(
            blocks.size(j), std::move(x_entries));

        auto mul = sparse::BfsParentSemiring{col_base}.multiply();
        auto comb = sparse::BfsParentSemiring::combine();
        sparse::SpmsvStats st;
        if (t > 1) {
          // Fig 2: one SpMSV per thread-local row piece; the pieces cover
          // disjoint ascending row ranges, so concatenation (with re-based
          // row ids) reassembles the rank's sorted output.
          const auto& pieces = im.thread_pieces[ri];
          const vid_t rows_per =
              std::max<vid_t>(1, im.part.block(r).nrows() / t);
          std::vector<sparse::SvEntry<vid_t>> merged;
          st.flops = 0;
          for (std::size_t piece = 0; piece < pieces.size(); ++piece) {
            sparse::SpmsvStats piece_st;
            auto y = sparse::spmsv<vid_t>(pieces[piece], x, mul, comb,
                                          im.opts.backend, &im.spa[ri],
                                          &piece_st);
            const vid_t base = static_cast<vid_t>(piece) * rows_per;
            for (const auto& e : y.entries()) {
              merged.push_back(
                  sparse::SvEntry<vid_t>{base + e.index, e.value});
            }
            st.flops += piece_st.flops;
            if (piece_st.used == sparse::SpmsvBackend::kSpa) {
              ++spa_calls[ri];
            } else {
              ++heap_calls[ri];
            }
          }
          st.output_nnz = static_cast<vid_t>(merged.size());
          partials[ri] = sparse::SparseVector<vid_t>::from_sorted(
              im.part.block(r).nrows(), std::move(merged));
        } else {
          partials[ri] = sparse::spmsv<vid_t>(im.part.block(r), x, mul,
                                              comb, im.opts.backend,
                                              &im.spa[ri], &st);
          if (st.used == sparse::SpmsvBackend::kSpa) {
            ++spa_calls[ri];
          } else {
            ++heap_calls[ri];
          }
        }
        flops[ri] = st.flops;

        model::Work2D work;
        work.spmsv_flops = st.flops;
        work.x_nnz = x.nnz();
        work.output_nnz = st.output_nnz;
        work.x_dim = blocks.size(j);
        work.out_dim = blocks.size(i);
        work.heap_backend = st.used == sparse::SpmsvBackend::kHeap;
        work.threads = t;
        spmsv_costs[ri] =
            model::cost_2d_local(im.cluster.machine(), work) +
            model::cost_thread_barriers(im.cluster.machine(), t, 2);
      });
      im.cluster.set_compute_phase("2d-spmsv");
      im.charge_smoothed(im.world, spmsv_costs);
      if (obs::MetricsRegistry* m = im.cluster.metrics()) {
        // SpMSV workload distributions (per rank per level) for the kernel
        // ablations: flop counts, output sizes, and back-end selection.
        auto& flops_hist = m->histogram("spmsv.flops");
        auto& nnz_hist = m->histogram("spmsv.output_nnz");
        for (int r = 0; r < p; ++r) {
          const auto ri = static_cast<std::size_t>(r);
          flops_hist.observe(static_cast<double>(flops[ri]));
          nnz_hist.observe(static_cast<double>(partials[ri].nnz()));
          m->counter("spmsv.spa_calls") += spa_calls[ri];
          m->counter("spmsv.heap_calls") += heap_calls[ri];
        }
      }
    }

    // ---- Triangular storage (§7): the stored wedge only covers edge
    // directions c -> r with r <= c; the mirrored directions are applied
    // with a scan-based transpose product. Rank (i,j) needs f_{C_i}
    // (held post-expand by its transpose partner) and its z output lives
    // in C_j's range = its partner's row block, so both the frontier and
    // the result take one pairwise exchange each.
    if (im.opts.triangular_storage) {
      // Pairwise frontier swap: rank (i,j) receives f_{C_i}.
      std::vector<std::vector<vid_t>> f_for_partner(
          static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        f_for_partner[static_cast<std::size_t>(r)] =
            gathered[static_cast<std::size_t>(im.grid.col_of(r))];
      }
      auto partner_frontier = simmpi::transpose_exchange(
          im.cluster, im.grid, std::move(f_for_partner));

      std::vector<std::vector<Candidate>> z(static_cast<std::size_t>(p));
      std::vector<double> scan_costs(static_cast<std::size_t>(p), 0.0);
      im.cluster.for_each_rank([&](int r) {
        const auto ri = static_cast<std::size_t>(r);
        const int i = im.grid.row_of(r);
        const int j = im.grid.col_of(r);
        const vid_t row_base_i = blocks.begin(i);
        const vid_t col_base_j = blocks.begin(j);

        // Dense per-row frontier values over R_i (value = global id, the
        // parent the mirrored edge contributes).
        std::vector<vid_t> xval(static_cast<std::size_t>(blocks.size(i)),
                                kNoVertex);
        for (vid_t gv : partner_frontier[ri]) {
          xval[static_cast<std::size_t>(gv - row_base_i)] = gv;
        }

        sparse::SpmsvStats st;
        auto zt = sparse::spmsv_transpose<vid_t>(
            im.part.block(r),
            [&xval](vid_t row) -> const vid_t* {
              const vid_t* v = &xval[static_cast<std::size_t>(row)];
              return *v == kNoVertex ? nullptr : v;
            },
            [](vid_t, vid_t, vid_t fv) { return fv; },
            [](vid_t a, vid_t b) { return std::max(a, b); }, &st);
        z[ri].reserve(static_cast<std::size_t>(zt.nnz()));
        for (const auto& e : zt.entries()) {
          z[ri].push_back(Candidate{col_base_j + e.index, e.value});
        }
        flops[ri] += st.flops;

        model::WorkTranspose2D work;
        work.nnz_scanned = st.flops;
        work.output_nnz = st.output_nnz;
        work.x_dim = blocks.size(i);
        work.threads = t;
        scan_costs[ri] =
            model::cost_2d_transpose_scan(im.cluster.machine(), work);
      });
      im.cluster.set_compute_phase("2d-tri-scan");
      im.charge_smoothed(im.world, scan_costs);
      // Results travel to the transpose partner, whose row block owns
      // them; the partner folds them with its own partial output.
      mirrored = simmpi::transpose_exchange(im.cluster, im.grid,
                                            std::move(z));
    }

    // ---- Fold (line 8): scatter partial results along processor rows to
    // the vector-piece owners, then merge, filter, and update parents
    // (lines 9-11).
    std::vector<std::int64_t> next_sizes(static_cast<std::size_t>(p), 0);
    im.cluster.set_compute_phase("2d-merge");
    for (int i = 0; i < s; ++i) {
      const vid_t row_base = blocks.begin(i);
      const auto row_group = im.grid.row_group(i);

      std::vector<std::vector<Candidate>> received;
      if (!diagonal) {
        auto send =
            simmpi::FlatExchange<Candidate>::sized(static_cast<std::size_t>(s));
        for (int gj = 0; gj < s; ++gj) {
          const int rank = im.grid.rank_of(i, gj);
          const auto& partial = partials[static_cast<std::size_t>(rank)];
          const auto& extra = mirrored[static_cast<std::size_t>(rank)];
          auto& counts = send.counts[static_cast<std::size_t>(gj)];
          for (const auto& e : partial.entries()) {
            ++counts[static_cast<std::size_t>(im.vdist.owner_col(i, e.index))];
          }
          for (const Candidate& c : extra) {
            ++counts[static_cast<std::size_t>(
                im.vdist.owner_col(i, c.vertex - row_base))];
          }
          std::vector<std::int64_t> cursor(static_cast<std::size_t>(s), 0);
          std::partial_sum(counts.begin(), counts.end() - 1,
                           cursor.begin() + 1);
          auto& data = send.data[static_cast<std::size_t>(gj)];
          data.resize(partial.entries().size() + extra.size());
          for (const auto& e : partial.entries()) {
            auto& cur =
                cursor[static_cast<std::size_t>(im.vdist.owner_col(i, e.index))];
            data[static_cast<std::size_t>(cur++)] =
                Candidate{row_base + e.index, e.value};
          }
          for (const Candidate& c : extra) {
            auto& cur = cursor[static_cast<std::size_t>(
                im.vdist.owner_col(i, c.vertex - row_base))];
            data[static_cast<std::size_t>(cur++)] = c;
          }
        }
        if (wire_fold_on) {
          received = im.wire_fold(row_group, std::move(send), wire_level);
          im.cluster.set_compute_phase("2d-merge");
        } else {
          auto recv = simmpi::checked_alltoallv(im.cluster, row_group,
                                                std::move(send), "2d-fold");
          received = std::move(recv.data);
        }
      } else {
        // Diagonal distribution: everything gathers at P(i,i), which then
        // merges alone while the rest of the row idles (Fig 4).
        std::vector<std::vector<Candidate>> pieces(
            static_cast<std::size_t>(s));
        for (int gj = 0; gj < s; ++gj) {
          const int rank = im.grid.rank_of(i, gj);
          auto& piece = pieces[static_cast<std::size_t>(gj)];
          const auto& partial = partials[static_cast<std::size_t>(rank)];
          piece.reserve(partial.entries().size());
          for (const auto& e : partial.entries()) {
            piece.push_back(Candidate{row_base + e.index, e.value});
          }
        }
        received.assign(static_cast<std::size_t>(s), {});
        received[static_cast<std::size_t>(i)] = simmpi::gatherv(
            im.cluster, row_group, static_cast<std::size_t>(i),
            std::move(pieces), "2d-fold");
      }

      // Owners merge received candidates: sort, combine by max parent,
      // filter against the parents array, update, and emit the new piece.
      // Merge costs are smoothed across the row's receivers; in diagonal
      // mode the root is the only receiver, so its serial merge stays
      // fully concentrated (the Fig 4 mechanism).
      std::vector<double> merge_costs(static_cast<std::size_t>(s), 0.0);
      for (int gj = 0; gj < s; ++gj) {
        const int rank = im.grid.rank_of(i, gj);
        const auto ri = static_cast<std::size_t>(rank);
        auto& cand = received[static_cast<std::size_t>(gj)];
        if (diagonal && gj != i) continue;

        if (wire_fold_on) {
          // Every received candidate's target is visited by the end of
          // this level (it either wins now or lost earlier), so the
          // owner can sieve any later re-send of it.
          for (const Candidate& c : cand) im.sieve.mark(rank, c.vertex);
        }
        std::sort(cand.begin(), cand.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return a.vertex != b.vertex ? a.vertex < b.vertex
                                                : a.parent > b.parent;
                  });
        vid_t merged = 0;
        vid_t newly = 0;
        vid_t prev = kNoVertex;
        for (const Candidate& c : cand) {
          ++merged;
          if (c.vertex == prev) continue;  // max parent kept (sort order)
          prev = c.vertex;
          if (out.parent[c.vertex] == kNoVertex) {
            out.parent[c.vertex] = c.parent;
            out.level[c.vertex] = level;
            // Write-once merge: the shadow mirrors the single mutation
            // (host-sequential loop, no race on the shard slot).
            if (im.sdc_on) im.shadow.add(rank, c.vertex, c.parent, level);
            fs[ri].push_back(c.vertex);
            ++newly;
          }
        }
        next_sizes[ri] = static_cast<std::int64_t>(fs[ri].size());

        model::Work2D work;
        work.fold_received = merged;
        work.n_local = im.vdist.piece_size(i, gj);
        work.threads = t;
        merge_costs[static_cast<std::size_t>(gj)] =
            model::cost_2d_local(im.cluster.machine(), work) +
            model::cost_thread_barriers(im.cluster.machine(), t, 2);
        (void)newly;
      }
      if (diagonal) {
        im.cluster.charge_compute(im.grid.rank_of(i, i),
                                  merge_costs[static_cast<std::size_t>(i)]);
      } else {
        im.charge_smoothed(row_group, merge_costs);
      }
    }

    if ((wire_fold_on || wire_expand_on || bottom_up) &&
        im.opts.metrics != nullptr) {
      obs::MetricsRegistry& m = *im.opts.metrics;
      m.counter("wire.bytes_before") +=
          static_cast<std::int64_t>(wire_level.pre_bytes);
      m.counter("wire.bytes_after") +=
          static_cast<std::int64_t>(wire_level.stats.encoded_bytes);
      m.counter("wire.candidates_dropped") +=
          static_cast<std::int64_t>(wire_level.dropped);
      m.counter("wire.blocks.items") +=
          static_cast<std::int64_t>(wire_level.stats.blocks_items);
      m.counter("wire.blocks.bitmap") +=
          static_cast<std::int64_t>(wire_level.stats.blocks_bitmap);
      m.counter("wire.blocks.varint") +=
          static_cast<std::int64_t>(wire_level.stats.blocks_varint);
      m.histogram("wire.level_bytes_saved")
          .observe(static_cast<double>(wire_level.pre_bytes) -
                   static_cast<double>(wire_level.stats.encoded_bytes));
    }
    if ((wire_fold_on || wire_expand_on || bottom_up) &&
        im.opts.flight != nullptr) {
      im.opts.flight
          ->append("wire", "2d-exchange", im.cluster.clocks().max_now(), -1,
                   im.cluster.current_level())
          .set("raw_bytes", static_cast<double>(wire_level.pre_bytes))
          .set("encoded_bytes",
               static_cast<double>(wire_level.stats.encoded_bytes))
          .set("sieved", static_cast<double>(wire_level.dropped))
          .set("items", static_cast<double>(wire_level.stats.items));
    }

    // ---- Termination (implicit in Algorithm 3's while f != ∅).
    global_frontier = static_cast<vid_t>(simmpi::allreduce_sum<std::int64_t>(
        im.cluster, im.world, next_sizes, "level-sync"));

    stats.edges_scanned =
        std::accumulate(flops.begin(), flops.end(), eid_t{0});
    stats.newly_visited = global_frontier;
    if (dirop_on) {
      // Per-direction wire and edge accounting. Like the traffic meter,
      // these keep everything that ever moved — a recovery replay counts
      // its window again, matching the wire.* counters' convention.
      DiropReport& d = out.report.dirop;
      if (bottom_up) {
        d.bottom_up_wire_raw_bytes += wire_level.pre_bytes;
        d.bottom_up_wire_bytes += wire_level.stats.encoded_bytes;
      } else {
        d.top_down_wire_raw_bytes += wire_level.pre_bytes;
        d.top_down_wire_bytes += wire_level.stats.encoded_bytes;
      }
      if (im.opts.metrics != nullptr) {
        obs::MetricsRegistry& m = *im.opts.metrics;
        ++m.counter(bottom_up ? "dirop.levels.bottom_up"
                              : "dirop.levels.top_down");
        m.counter(bottom_up ? "dirop.edges.bottom_up"
                            : "dirop.edges.top_down") +=
            static_cast<std::int64_t>(stats.edges_scanned);
        m.counter(bottom_up ? "dirop.wire.bottom_up_raw_bytes"
                            : "dirop.wire.top_down_raw_bytes") +=
            static_cast<std::int64_t>(wire_level.pre_bytes);
        m.counter(bottom_up ? "dirop.wire.bottom_up_bytes"
                            : "dirop.wire.top_down_bytes") +=
            static_cast<std::int64_t>(wire_level.stats.encoded_bytes);
      }
    }
    stats.expand_bytes = traffic.totals(simmpi::Pattern::kAllgatherv).bytes +
                         traffic.totals(simmpi::Pattern::kBroadcast).bytes -
                         ag_before;
    stats.a2a_bytes = traffic.totals(simmpi::Pattern::kAlltoallv).bytes +
                      traffic.totals(simmpi::Pattern::kGatherv).bytes -
                      a2a_before;
    stats.other_bytes =
        traffic.totals(simmpi::Pattern::kTranspose).bytes - tr_before;
    stats.wall_seconds = im.cluster.clocks().max_now() - wall_before;
    if (observing) {
      double comm_sum = 0.0, comp_sum = 0.0;
      for (std::size_t r = 0; r < static_cast<std::size_t>(p); ++r) {
        const double dcomm =
            im.cluster.clocks().comm_time(static_cast<int>(r)) -
            comm_before[r];
        const double dcomp =
            im.cluster.clocks().compute_time(static_cast<int>(r)) -
            comp_before[r];
        comm_sum += dcomm;
        comp_sum += dcomp;
        stats.comm_seconds_max = std::max(stats.comm_seconds_max, dcomm);
        stats.comp_seconds_max = std::max(stats.comp_seconds_max, dcomp);
      }
      stats.comm_seconds = comm_sum / static_cast<double>(p);
      stats.comp_seconds = comp_sum / static_cast<double>(p);
    }
    if (im.opts.flight != nullptr) {
      im.opts.flight
          ->append("level", "2d-level", im.cluster.clocks().max_now(), -1,
                   static_cast<int>(level) - 1)
          .set("frontier", static_cast<double>(stats.frontier))
          .set("newly_visited", static_cast<double>(stats.newly_visited))
          .set("edges_scanned", static_cast<double>(stats.edges_scanned))
          .set("wall_seconds", stats.wall_seconds);
    }
    if (im.opts.flight != nullptr && im.cluster.atlas() != nullptr) {
      const obs::AtlasLevelCut cut =
          im.cluster.atlas()->level_cut(static_cast<int>(level) - 1);
      im.opts.flight
          ->append("atlas", "2d-level", im.cluster.clocks().max_now(),
                   cut.hotspot_rank, static_cast<int>(level) - 1)
          .set("bytes", static_cast<double>(cut.total_bytes))
          .set("network_bytes", static_cast<double>(cut.network_bytes))
          .set("subcomm_bytes", static_cast<double>(cut.subcomm_bytes));
    }
    out.report.levels.push_back(stats);
    out.report.spmsv_spa_calls +=
        std::accumulate(spa_calls.begin(), spa_calls.end(), std::int64_t{0});
    out.report.spmsv_heap_calls +=
        std::accumulate(heap_calls.begin(), heap_calls.end(), std::int64_t{0});
    ++level;
    // Level barrier, in hazard order: (1) scheduled at-rest flips fire,
    // (2) the audit (if due) sees them, (3) only then may a checkpoint
    // snapshot the (now audited) state.
    const int completed = static_cast<int>(out.report.levels.size());
    if (im.sdc_on) {
      im.inject_due_flips(out, completed);
      if (im.opts.recover.audit_every > 0 && global_frontier > 0 &&
          completed % im.opts.recover.audit_every == 0) {
        im.audit_now(out);
      }
    }
    if (armed && global_frontier > 0 && im.store.due(completed)) {
      im.take_checkpoint(out, fs, global_frontier);
    }
  }
  if (im.sdc_on) {
    // Final sweep: flips scheduled at or past the last level still fire,
    // and a closing audit guarantees every injected corruption is either
    // detected here or was already repaired — even with auditing off
    // (audit_every == 0), a flip-carrying run never returns unchecked.
    im.inject_due_flips(out, static_cast<int>(out.report.levels.size()));
    im.audit_now(out);
  }
}

void Bfs2D::Impl::bottom_up_level(const BfsOutput& out,
                                  std::vector<std::vector<vid_t>>& fs,
                                  std::vector<std::vector<Candidate>>& mirrored,
                                  std::vector<eid_t>& flops, WireLevel& wl) {
  const int s = grid.pr();
  const int p = grid.ranks();
  const int t = opts.threads_per_rank;
  const auto& bl = part.blocks();

  // Owned visited lists: one ascending pass over the distance array, so
  // each owner's list comes out sorted without a per-rank sort.
  std::vector<std::vector<vid_t>> visited(static_cast<std::size_t>(p));
  for (vid_t v = 0; v < n; ++v) {
    if (out.level[static_cast<std::size_t>(v)] != kUnreached) {
      visited[static_cast<std::size_t>(vdist.owner_rank(v))].push_back(v);
    }
  }

  // ---- (a) Frontier/completeness gather over each processor row: every
  // rank of row i ends up holding f_{R_i} (the probe targets) and
  // visited_{R_i} (the basis of the unvisited masks). Each contribution
  // is two wire-coded segments — both dense-bitmap candidates over the
  // row range — length-framed so the concatenated allgatherv stream
  // splits back per contributor:
  //   [uvarint frontier_bytes][uvarint visited_bytes][frontier][visited]
  std::vector<std::vector<vid_t>> row_frontier(static_cast<std::size_t>(s));
  std::vector<std::vector<vid_t>> row_visited(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const auto group = grid.row_group(i);
    const vid_t row_begin = bl.begin(i);
    const vid_t row_end = row_begin + bl.size(i);
    std::vector<std::vector<std::uint8_t>> enc(group.size());
    std::vector<double> codec_costs(group.size(), 0.0);
    for (std::size_t g = 0; g < group.size(); ++g) {
      const auto r = static_cast<std::size_t>(group[g]);
      comm::WireStats st;
      std::vector<std::uint8_t> fenc;
      std::vector<std::uint8_t> venc;
      comm::encode_vertex_bitmap(fs[r], row_begin, row_end, opts.wire_format,
                                 fenc, &st);
      comm::encode_vertex_bitmap(visited[r], row_begin, row_end,
                                 opts.wire_format, venc, &st);
      wl.pre_bytes += (fs[r].size() + visited[r].size()) * sizeof(vid_t);
      auto& dst = enc[g];
      comm::put_uvarint(dst, fenc.size());
      comm::put_uvarint(dst, venc.size());
      dst.insert(dst.end(), fenc.begin(), fenc.end());
      dst.insert(dst.end(), venc.begin(), venc.end());
      codec_costs[g] = model::cost_wire_codec(
          cluster.machine(), static_cast<std::size_t>(st.raw_bytes),
          static_cast<std::size_t>(st.encoded_bytes), t);
      wl.stats.merge(st);
    }
    cluster.set_compute_phase("wire-encode");
    charge_smoothed(group, codec_costs);

    auto bytes = simmpi::checked_allgatherv(cluster, group, std::move(enc),
                                            "2d-bu-frontier",
                                            opts.allgather_algo);
    std::size_t off = 0;
    while (off < bytes.size()) {
      std::uint64_t fbytes = 0;
      std::uint64_t vbytes = 0;
      off += comm::get_uvarint(bytes.data() + off, bytes.size() - off,
                               &fbytes);
      off += comm::get_uvarint(bytes.data() + off, bytes.size() - off,
                               &vbytes);
      if (off + fbytes + vbytes > bytes.size()) {
        throw comm::WireDecodeError("wire: bottom-up contribution overrun");
      }
      comm::decode_vertex_stream(bytes.data() + off,
                                 static_cast<std::size_t>(fbytes),
                                 row_frontier[static_cast<std::size_t>(i)]);
      off += static_cast<std::size_t>(fbytes);
      comm::decode_vertex_stream(bytes.data() + off,
                                 static_cast<std::size_t>(vbytes),
                                 row_visited[static_cast<std::size_t>(i)]);
      off += static_cast<std::size_t>(vbytes);
    }
    const double decode_cost = model::cost_wire_codec(
        cluster.machine(),
        (row_frontier[static_cast<std::size_t>(i)].size() +
         row_visited[static_cast<std::size_t>(i)].size()) *
            sizeof(vid_t),
        bytes.size(), t);
    std::vector<double> decode_costs(group.size(), decode_cost);
    cluster.set_compute_phase("wire-decode");
    charge_smoothed(group, decode_costs);
  }
  // The frontier pieces are consumed; the fold below rebuilds them.
  fs.assign(static_cast<std::size_t>(p), {});

  // ---- (b) Completeness swap: rank (i,j)'s probe scan filters on the
  // visited status of its *column* range C_j, which is the transpose
  // partner's row range — one pairwise exchange of the assembled
  // visited_{R_i}, again through the dense-bitmap wire path. Diagonal
  // ranks keep their own copy for free.
  std::vector<std::vector<vid_t>> col_visited(static_cast<std::size_t>(p));
  {
    std::vector<std::vector<std::uint8_t>> venc(static_cast<std::size_t>(p));
    std::vector<double> codec_costs(static_cast<std::size_t>(p), 0.0);
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(grid.row_of(r));
      comm::WireStats st;
      comm::encode_vertex_bitmap(
          row_visited[i], bl.begin(grid.row_of(r)),
          bl.begin(grid.row_of(r)) + bl.size(grid.row_of(r)),
          opts.wire_format, venc[static_cast<std::size_t>(r)], &st);
      wl.pre_bytes += row_visited[i].size() * sizeof(vid_t);
      codec_costs[static_cast<std::size_t>(r)] = model::cost_wire_codec(
          cluster.machine(), static_cast<std::size_t>(st.raw_bytes),
          static_cast<std::size_t>(st.encoded_bytes), t);
      wl.stats.merge(st);
    }
    cluster.set_compute_phase("wire-encode");
    charge_smoothed(world, codec_costs);

    auto swapped = simmpi::transpose_exchange(cluster, grid, std::move(venc),
                                              "2d-bu-complete");
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      comm::decode_vertex_stream(swapped[ri].data(), swapped[ri].size(),
                                 col_visited[ri]);
      codec_costs[ri] = model::cost_wire_codec(
          cluster.machine(), col_visited[ri].size() * sizeof(vid_t),
          swapped[ri].size(), t);
    }
    cluster.set_compute_phase("wire-decode");
    charge_smoothed(world, codec_costs);
  }

  // ---- (c) Local pull step: every stored column still unvisited probes
  // its rows (descending) against the frontier support and stops at the
  // first hit — the per-block max, which the fold's max-parent merge
  // combines into exactly the parent top-down would have produced.
  std::vector<std::vector<Candidate>> z(static_cast<std::size_t>(p));
  std::vector<double> scan_costs(static_cast<std::size_t>(p), 0.0);
  cluster.for_each_rank([&](int r) {
    const auto ri = static_cast<std::size_t>(r);
    const int i = grid.row_of(r);
    const int j = grid.col_of(r);
    const vid_t row_base = bl.begin(i);
    const vid_t col_base = bl.begin(j);

    // Dense frontier support over R_i (value = parent global id).
    std::vector<vid_t> xval(static_cast<std::size_t>(bl.size(i)), kNoVertex);
    for (vid_t gv : row_frontier[static_cast<std::size_t>(i)]) {
      xval[static_cast<std::size_t>(gv - row_base)] = gv;
    }
    // Visited mask over C_j from the completeness swap.
    std::vector<std::uint8_t> done(static_cast<std::size_t>(bl.size(j)), 0);
    for (vid_t gv : col_visited[ri]) {
      done[static_cast<std::size_t>(gv - col_base)] = 1;
    }

    vid_t candidates = 0;
    sparse::SpmsvStats st;
    auto zt = sparse::spmsv_bottom_up<vid_t>(
        part.block(r),
        [&done, &candidates](vid_t c) {
          if (done[static_cast<std::size_t>(c)] != 0) return false;
          ++candidates;
          return true;
        },
        [&xval](vid_t row) -> const vid_t* {
          const vid_t* v = &xval[static_cast<std::size_t>(row)];
          return *v == kNoVertex ? nullptr : v;
        },
        [](vid_t, vid_t, vid_t fv) { return fv; }, &st);
    z[ri].reserve(static_cast<std::size_t>(zt.nnz()));
    for (const auto& e : zt.entries()) {
      z[ri].push_back(Candidate{col_base + e.index, e.value});
    }
    flops[ri] = st.flops;

    model::WorkBottomUp work;
    work.probes = st.flops;
    work.candidates = candidates;
    work.output_nnz = st.output_nnz;
    work.x_dim = bl.size(i);
    work.threads = t;
    scan_costs[ri] = model::cost_2d_bottom_up(cluster.machine(), work) +
                     model::cost_thread_barriers(cluster.machine(), t, 2);
  });
  cluster.set_compute_phase("2d-bottomup");
  charge_smoothed(world, scan_costs);

  // ---- (d) Discovered parents live in C_j's range = the partner's row
  // block: ship them there so the shared fold path (scatter to owners,
  // max-parent merge, parents update) finishes the level unchanged.
  mirrored = simmpi::transpose_exchange(cluster, grid, std::move(z),
                                        "2d-bu-result");
}

}  // namespace dbfs::bfs
