// Frontier-side helper containers shared by the BFS variants.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dbfs::bfs {

/// Flat bitset over vertex ids; the "visited" checks of the shared-memory
/// code and the per-level dedup structures use this.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(vid_t bits)
      : bits_(bits), words_((static_cast<std::size_t>(bits) + 63) / 64, 0) {}

  vid_t size() const noexcept { return bits_; }

  bool test(vid_t i) const noexcept {
    return (words_[static_cast<std::size_t>(i) >> 6] >>
            (static_cast<std::size_t>(i) & 63)) &
           1u;
  }

  void set(vid_t i) noexcept {
    words_[static_cast<std::size_t>(i) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(i) & 63);
  }

  /// Returns the previous value (non-atomic).
  bool test_and_set(vid_t i) noexcept {
    const bool was = test(i);
    if (!was) set(i);
    return was;
  }

  void clear_all() noexcept {
    std::fill(words_.begin(), words_.end(), 0);
  }

  vid_t count() const noexcept;

 private:
  vid_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A (vertex, parent) message exchanged between ranks; two 64-bit words,
/// matching the Graph500 reference code's wire format.
struct Candidate {
  vid_t vertex;
  vid_t parent;
};

}  // namespace dbfs::bfs
