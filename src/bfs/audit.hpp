// ABFT-style state auditor for the distributed BFS drivers.
//
// Wire corruption is caught by the checked collectives (simmpi/comm.hpp)
// and fail-stop deaths by the failure detector — but a bit that rots *at
// rest* in a rank's resident parents/levels shard, sender-side visited
// bitmap, direction-heuristic scalars, or stored checkpoint replica
// never crosses a checksum boundary. The auditor closes that gap with
// algorithm-based fault tolerance: every legitimate write to the BFS
// state also updates a cheap per-shard shadow checksum (SdcShadow), and
// at a configurable level cadence (RecoverOptions::audit_every) every
// rank re-derives its shard sum from the arrays and the cluster agrees
// on the global mismatch count via one priced allreduce. A disagreement
// — or a broken tree property, a visited-superset violation, or drifted
// dirop state — raises simmpi::AuditFailedError, and the drivers roll
// back to the newest *clean* checkpoint (recover::CheckpointStore
// verifies stored replicas against their content checksums) and replay,
// converging to bit-identical parents/levels exactly like the fail-stop
// path.
//
// Audits are priced in the α–β model (model::cost_sdc_audit plus the
// allreduce), so audited runs are honestly costed; a run with
// audit_every == 0 and no at-rest fault plan never reaches this file.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace dbfs::simmpi {
class Cluster;
}
namespace dbfs::comm {
class Sieve;
}

namespace dbfs::bfs {

/// Digest of one (vertex, parent, level) entry. The shadow keeps the
/// *wrapping sum* of these per shard, so it is order-independent and
/// supports incremental overwrite (subtract old, add new) — the same
/// trick comm::payload_checksum uses for in-flight payloads.
std::uint64_t sdc_entry_hash(vid_t v, vid_t parent, level_t level) noexcept;

/// Per-shard running checksums of the (parent, level) arrays, maintained
/// by the BFS update loops at every legitimate write. Rank-private in
/// the for_each_rank sense: each shard's sum is only touched by its
/// owner's phase, so parallel per-rank updates are race-free.
class SdcShadow {
 public:
  /// Size for `shards` ranks and zero every sum. Called once per run.
  void reset(int shards);

  bool active() const noexcept { return !sums_.empty(); }
  int shards() const noexcept { return static_cast<int>(sums_.size()); }

  /// Record a fresh write of a previously-unvisited vertex.
  void add(int shard, vid_t v, vid_t parent, level_t level) noexcept {
    sums_[static_cast<std::size_t>(shard)] += sdc_entry_hash(v, parent, level);
  }

  /// Record an overwrite (the 1D max-parent tie-break re-parents a
  /// vertex inside a level): subtract the old entry, add the new.
  void replace(int shard, vid_t v, vid_t old_parent, level_t old_level,
               vid_t parent, level_t level) noexcept {
    sums_[static_cast<std::size_t>(shard)] -=
        sdc_entry_hash(v, old_parent, old_level);
    sums_[static_cast<std::size_t>(shard)] += sdc_entry_hash(v, parent, level);
  }

  /// Re-derive every shard sum from the arrays. Used after a checkpoint
  /// restore or rollback, when the arrays were just overwritten
  /// wholesale (and, after a shrink, re-sharded under a new owner map).
  void rebuild(std::span<const vid_t> parent, std::span<const level_t> level,
               const std::function<int(vid_t)>& owner);

  std::uint64_t sum(int shard) const noexcept {
    return sums_[static_cast<std::size_t>(shard)];
  }

 private:
  std::vector<std::uint64_t> sums_;  ///< wrapping per-shard entry-hash sums
};

/// Everything one audit inspects. Spans refer to the caller's live run
/// state; nothing is copied.
struct SdcAuditInputs {
  std::span<const vid_t> parent;
  std::span<const level_t> level;
  const SdcShadow* shadow = nullptr;  ///< required
  /// Global vertex id -> shard index in [0, world.size()) — the 1D owner
  /// map or the 2D vector-block owner, post-shrink numbering included.
  std::function<int(vid_t)> owner;
  vid_t source = 0;
  /// Sender-side visited sieve, when the wire path maintains one; the
  /// auditor checks marked ⊆ globally-visited (a spuriously-set bit
  /// suppresses sends and silently truncates the traversal).
  const comm::Sieve* sieve = nullptr;
  /// Direction-heuristic state vs its shadow copy (2D hybrid runs):
  /// equal-length spans compared elementwise.
  std::span<const std::uint64_t> dirop_state;
  std::span<const std::uint64_t> dirop_shadow;
};

struct SdcAuditResult {
  std::int64_t mismatches = 0;  ///< cluster-agreed count (0 = clean)
  double audit_seconds = 0.0;   ///< virtual makespan the audit added
};

/// Run one audit across `world`: per-rank shard re-checksum + invariant
/// scans priced via model::cost_sdc_audit, then one priced allreduce of
/// the per-rank mismatch counts at `site` so every rank agrees on the
/// verdict. Emits sdc.* metrics and an "audit" flight event; throws
/// simmpi::AuditFailedError naming the first broken invariant (and a
/// sample vertex when one is known) on an agreed mismatch.
SdcAuditResult run_sdc_audit(simmpi::Cluster& cluster,
                             std::span<const int> world,
                             const SdcAuditInputs& in,
                             const char* site = "sdc-audit");

}  // namespace dbfs::bfs
