#include "bfs/direction_optimizing.hpp"

#include <stdexcept>
#include <utility>

#include "bfs/frontier.hpp"
#include "util/timer.hpp"

namespace dbfs::bfs {

namespace {

/// Sum of degrees of the frontier (the edges a top-down step would scan).
eid_t frontier_out_edges(const graph::CsrGraph& g,
                         const std::vector<vid_t>& frontier) {
  eid_t sum = 0;
  for (vid_t u : frontier) sum += g.degree(u);
  return sum;
}

}  // namespace

DirectionOptimizingResult direction_optimizing_bfs(
    const graph::CsrGraph& g, vid_t source,
    const DirectionOptimizingOptions& opts) {
  const vid_t n = g.num_vertices();
  if (source < 0 || source >= n) {
    throw std::out_of_range("direction_optimizing_bfs: source out of range");
  }

  DirectionOptimizingResult result;
  BfsOutput& out = result.out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm =
      opts.force_top_down ? "shared-top-down" : "direction-optimizing";
  out.report.machine = "host";

  util::Timer timer;
  std::vector<vid_t> frontier{source};
  Bitmap in_frontier(n);
  out.parent[source] = source;
  out.level[source] = 0;

  eid_t unexplored_edges = g.num_edges() - g.degree(source);
  level_t level = 1;
  bool bottom_up = false;

  while (!frontier.empty()) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = static_cast<vid_t>(frontier.size());

    // Direction heuristic (Beamer's alpha/beta rules).
    const eid_t frontier_edges = frontier_out_edges(g, frontier);
    if (!opts.force_top_down) {
      // Engage bottom-up only when the frontier is both edge-heavy AND
      // broad: a tiny frontier late in a traversal can trip the edge
      // ratio (unexplored_edges is nearly exhausted) but bottom-up would
      // still rescan every unvisited vertex for nothing.
      const bool broad = static_cast<double>(frontier.size()) >=
                         static_cast<double>(n) / opts.beta;
      if (!bottom_up && broad &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(unexplored_edges) / opts.alpha) {
        bottom_up = true;
      } else if (bottom_up && !broad) {
        bottom_up = false;
      }
    }

    std::vector<vid_t> next;
    if (bottom_up) {
      ++result.bottom_up_levels;
      // Membership bitmap of the current frontier for O(1) parent tests.
      in_frontier.clear_all();
      for (vid_t u : frontier) in_frontier.set(u);

      for (vid_t v = 0; v < n; ++v) {
        if (out.level[v] != kUnreached) continue;
        for (vid_t u : g.neighbors(v)) {
          ++stats.edges_scanned;
          ++result.bottom_up_edges;
          if (in_frontier.test(u)) {
            out.level[v] = level;
            out.parent[v] = u;
            next.push_back(v);
            break;  // the early exit that makes bottom-up cheap
          }
        }
      }
    } else {
      for (vid_t u : frontier) {
        for (vid_t v : g.neighbors(u)) {
          ++stats.edges_scanned;
          ++result.top_down_edges;
          if (out.level[v] == kUnreached) {
            out.level[v] = level;
            out.parent[v] = u;
            next.push_back(v);
          }
        }
      }
    }

    unexplored_edges -= frontier_out_edges(g, next);
    stats.newly_visited = static_cast<vid_t>(next.size());
    out.report.levels.push_back(stats);
    frontier = std::move(next);
    ++level;
  }

  out.report.total_seconds = timer.elapsed();
  out.report.comp_seconds_mean = out.report.total_seconds;
  out.report.comp_seconds_max = out.report.total_seconds;
  eid_t scanned = 0;
  for (const LevelStats& l : out.report.levels) scanned += l.edges_scanned;
  out.report.edges_traversed = scanned;
  return result;
}

}  // namespace dbfs::bfs
