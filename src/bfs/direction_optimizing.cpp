#include "bfs/direction_optimizing.hpp"

#include <stdexcept>
#include <utility>

#include "bfs/frontier.hpp"
#include "util/timer.hpp"

namespace dbfs::bfs {

namespace {

/// One pass over the adjacencies of the vertices visited this level:
/// their degree sum (next level's m_f, computed once here and carried
/// over — never recomputed when the vector becomes the frontier) and the
/// number of unexplored-edge copies they retire. Under Beamer's
/// definition m_u counts every copy of an edge incident to at least one
/// *unvisited* vertex, so a copy is retired only once BOTH endpoints are
/// visited: a copy v->w with w still unreached stays (the edge is still
/// incident to w), while visiting v also retires the mirror copy w->v of
/// every already-visited neighbour w — the source-side copies the old
/// accounting left in m_u forever.
struct VisitRetirement {
  eid_t degree_sum = 0;  ///< m_f of `just_visited` as the next frontier
  eid_t retired = 0;     ///< copies m_u loses now these are visited
};

VisitRetirement retire_visited(const graph::CsrGraph& g,
                               const std::vector<level_t>& level,
                               const std::vector<vid_t>& just_visited,
                               level_t this_level) {
  VisitRetirement r;
  for (vid_t v : just_visited) {
    const eid_t deg = g.degree(v);
    r.degree_sum += deg;
    r.retired += deg;
    for (vid_t w : g.neighbors(v)) {
      if (level[w] == kUnreached) {
        --r.retired;  // edge still incident to unvisited w: copy survives
      } else if (level[w] != this_level) {
        ++r.retired;  // mirror copy at w was consumed when w was visited
      }
      // w visited this same level: both copies retired via the two
      // degree terms, no correction needed.
    }
  }
  return r;
}

}  // namespace

DirectionOptimizingResult direction_optimizing_bfs(
    const graph::CsrGraph& g, vid_t source,
    const DirectionOptimizingOptions& opts) {
  const vid_t n = g.num_vertices();
  if (source < 0 || source >= n) {
    throw std::out_of_range("direction_optimizing_bfs: source out of range");
  }

  DirectionOptimizingResult result;
  BfsOutput& out = result.out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm =
      opts.force_top_down ? "shared-top-down" : "direction-optimizing";
  out.report.machine = "host";
  out.report.dirop.enabled = !opts.force_top_down;
  out.report.dirop.mode = opts.force_top_down ? "topdown" : "hybrid";
  out.report.dirop.alpha = opts.alpha;
  out.report.dirop.beta = opts.beta;

  util::Timer timer;
  std::vector<vid_t> frontier{source};
  Bitmap in_frontier(n);
  out.parent[source] = source;
  out.level[source] = 0;

  // m_u: copies of edges incident to >= 1 unvisited vertex. Visiting the
  // source retires only copies of its self-loops (every other incident
  // edge still touches an unvisited endpoint), so high-degree roots no
  // longer start with an artificially deflated count.
  const VisitRetirement init = retire_visited(g, out.level, frontier, 0);
  eid_t unexplored_edges = g.num_edges() - init.retired;
  // m_f of the current frontier, computed once per vector (for `next` at
  // the loop bottom) and carried over instead of being re-derived when
  // the same vector comes back around as `frontier`.
  eid_t frontier_edges = init.degree_sum;
  level_t level = 1;
  bool bottom_up = false;

  while (!frontier.empty()) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = static_cast<vid_t>(frontier.size());
    stats.frontier_edges = frontier_edges;
    stats.unexplored_edges = unexplored_edges;

    // Direction heuristic (Beamer's alpha/beta rules).
    DiropRationale rationale = DiropRationale::kTopDownStay;
    if (opts.force_top_down) {
      rationale = DiropRationale::kForced;
    } else {
      // Engage bottom-up only when the frontier is both edge-heavy AND
      // broad: a tiny frontier late in a traversal can trip the edge
      // ratio (unexplored_edges is nearly exhausted) but bottom-up would
      // still rescan every unvisited vertex for nothing.
      const bool broad = static_cast<double>(frontier.size()) >=
                         static_cast<double>(n) / opts.beta;
      if (!bottom_up && broad &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(unexplored_edges) / opts.alpha) {
        bottom_up = true;
        rationale = DiropRationale::kEngage;
      } else if (bottom_up && !broad) {
        bottom_up = false;
        rationale = DiropRationale::kDisengage;
      } else if (bottom_up) {
        rationale = DiropRationale::kBottomUpStay;
      }
    }
    stats.bottom_up = bottom_up;
    stats.dirop_rationale = static_cast<int>(rationale);

    std::vector<vid_t> next;
    if (bottom_up) {
      ++result.bottom_up_levels;
      // Membership bitmap of the current frontier for O(1) parent tests.
      in_frontier.clear_all();
      for (vid_t u : frontier) in_frontier.set(u);

      for (vid_t v = 0; v < n; ++v) {
        if (out.level[v] != kUnreached) continue;
        for (vid_t u : g.neighbors(v)) {
          ++stats.edges_scanned;
          ++result.bottom_up_edges;
          if (in_frontier.test(u)) {
            out.level[v] = level;
            out.parent[v] = u;
            next.push_back(v);
            break;  // the early exit that makes bottom-up cheap
          }
        }
      }
    } else {
      for (vid_t u : frontier) {
        for (vid_t v : g.neighbors(u)) {
          ++stats.edges_scanned;
          ++result.top_down_edges;
          if (out.level[v] == kUnreached) {
            out.level[v] = level;
            out.parent[v] = u;
            next.push_back(v);
          }
        }
      }
    }

    const VisitRetirement visit = retire_visited(g, out.level, next, level);
    unexplored_edges -= visit.retired;
    frontier_edges = visit.degree_sum;
    stats.newly_visited = static_cast<vid_t>(next.size());
    out.report.levels.push_back(stats);
    frontier = std::move(next);
    ++level;
  }

  out.report.total_seconds = timer.elapsed();
  out.report.comp_seconds_mean = out.report.total_seconds;
  out.report.comp_seconds_max = out.report.total_seconds;
  eid_t scanned = 0;
  for (const LevelStats& l : out.report.levels) scanned += l.edges_scanned;
  out.report.edges_traversed = scanned;
  out.report.dirop.top_down_edges = result.top_down_edges;
  out.report.dirop.bottom_up_edges = result.bottom_up_edges;
  out.report.dirop.bottom_up_levels = result.bottom_up_levels;
  out.report.dirop.top_down_levels =
      static_cast<std::int64_t>(out.report.levels.size()) -
      result.bottom_up_levels;
  bool prev = false;
  for (const LevelStats& l : out.report.levels) {
    if (l.level > 0 && l.bottom_up != prev) ++out.report.dirop.switches;
    prev = l.bottom_up;
  }
  return result;
}

}  // namespace dbfs::bfs
