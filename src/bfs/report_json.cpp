#include "bfs/report_json.hpp"

#include <ostream>
#include <sstream>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"

namespace dbfs::bfs {

namespace {

// Minimal JSON string escaping; algorithm/machine names are ASCII but a
// writer that silently emits invalid JSON on odd input is a trap.
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& values) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  out << ']';
}

}  // namespace

void write_report_json(std::ostream& out, const RunReport& report,
                       bool include_per_rank) {
  out << "{";
  out << "\"algorithm\":";
  write_escaped(out, report.algorithm);
  out << ",\"machine\":";
  write_escaped(out, report.machine);
  out << ",\"ranks\":" << report.ranks
      << ",\"threads_per_rank\":" << report.threads_per_rank
      << ",\"cores\":" << report.cores
      << ",\"total_seconds\":" << report.total_seconds
      << ",\"comm_seconds_mean\":" << report.comm_seconds_mean
      << ",\"comm_seconds_max\":" << report.comm_seconds_max
      << ",\"comp_seconds_mean\":" << report.comp_seconds_mean
      << ",\"comp_seconds_max\":" << report.comp_seconds_max
      << ",\"comm_fraction\":" << report.comm_fraction()
      << ",\"edges_traversed\":" << report.edges_traversed;

  out << ",\"traffic\":{"
      << "\"alltoall_bytes\":" << report.alltoall_bytes
      << ",\"allgather_bytes\":" << report.allgather_bytes
      << ",\"transpose_bytes\":" << report.transpose_bytes
      << ",\"allreduce_bytes\":" << report.allreduce_bytes
      << ",\"alltoall_seconds\":" << report.alltoall_seconds
      << ",\"allgather_seconds\":" << report.allgather_seconds
      << ",\"transpose_seconds\":" << report.transpose_seconds
      << ",\"allreduce_seconds\":" << report.allreduce_seconds << "}";

  out << ",\"spmsv\":{\"spa_calls\":" << report.spmsv_spa_calls
      << ",\"heap_calls\":" << report.spmsv_heap_calls << "}";

  const FaultReport& f = report.faults;
  out << ",\"faults\":{"
      << "\"enabled\":" << (f.enabled ? "true" : "false")
      << ",\"seed\":" << f.seed
      << ",\"collective_failures\":" << f.collective_failures
      << ",\"collective_retries\":" << f.collective_retries
      << ",\"backoff_seconds\":" << f.backoff_seconds
      << ",\"reissue_seconds\":" << f.reissue_seconds
      << ",\"payload_corruptions\":" << f.payload_corruptions
      << ",\"checksum_checks\":" << f.checksum_checks
      << ",\"payload_retries\":" << f.payload_retries
      << ",\"compute_stragglers\":" << f.compute_stragglers
      << ",\"nic_stragglers\":" << f.nic_stragglers << "}";

  if (report.recover.rank_failures > 0) {
    // Emitted only when a rank actually died: a recovery-armed run with
    // no failures keeps its report byte-identical to pre-recovery output
    // (checkpoint accounting then lives only in the recover.* metrics).
    const RecoverReport& r = report.recover;
    out << ",\"recover\":{"
        << "\"policy\":";
    write_escaped(out, r.policy);
    out << ",\"checkpoint_every\":" << r.checkpoint_every
        << ",\"checkpoints_taken\":" << r.checkpoints_taken
        << ",\"checkpoint_bytes\":" << r.checkpoint_bytes
        << ",\"rank_failures\":" << r.rank_failures
        << ",\"replayed_levels\":" << r.replayed_levels
        << ",\"recovery_seconds\":" << r.recovery_seconds
        << ",\"ranks_lost\":" << r.ranks_lost
        << ",\"spares_used\":" << r.spares_used << "}";
  }

  if (report.sdc.enabled) {
    // Emitted only when audits or at-rest flips were armed: a plain run
    // keeps its report byte-identical to the pre-SDC engine.
    const SdcReport& s = report.sdc;
    out << ",\"sdc\":{"
        << "\"audit_every\":" << s.audit_every
        << ",\"audits\":" << s.audits
        << ",\"audit_failures\":" << s.audit_failures
        << ",\"flips_injected\":" << s.flips_injected
        << ",\"rollbacks\":" << s.rollbacks
        << ",\"replayed_levels\":" << s.replayed_levels
        << ",\"checkpoints_rejected\":" << s.checkpoints_rejected
        << ",\"audit_seconds\":" << s.audit_seconds
        << ",\"rollback_seconds\":" << s.rollback_seconds << "}";
  }

  if (report.dirop.enabled) {
    // Direction-aware runs only: a pure top-down run (the default) emits
    // nothing here and its per-level objects below stay untouched, so
    // the legacy report is byte-identical to the pre-hybrid engine.
    const DiropReport& d = report.dirop;
    out << ",\"dirop\":{"
        << "\"mode\":";
    write_escaped(out, d.mode);
    out << ",\"alpha\":" << d.alpha << ",\"beta\":" << d.beta
        << ",\"top_down_levels\":" << d.top_down_levels
        << ",\"bottom_up_levels\":" << d.bottom_up_levels
        << ",\"top_down_edges\":" << d.top_down_edges
        << ",\"bottom_up_edges\":" << d.bottom_up_edges
        << ",\"switches\":" << d.switches
        << ",\"top_down_wire_raw_bytes\":" << d.top_down_wire_raw_bytes
        << ",\"top_down_wire_bytes\":" << d.top_down_wire_bytes
        << ",\"bottom_up_wire_raw_bytes\":" << d.bottom_up_wire_raw_bytes
        << ",\"bottom_up_wire_bytes\":" << d.bottom_up_wire_bytes
        << ",\"levels\":[";
    for (std::size_t i = 0; i < report.levels.size(); ++i) {
      const LevelStats& l = report.levels[i];
      if (i > 0) out << ',';
      out << "{\"level\":" << l.level << ",\"direction\":"
          << (l.bottom_up ? "\"bottomup\"" : "\"topdown\"")
          << ",\"rationale\":";
      write_escaped(out, to_string(static_cast<DiropRationale>(
                             l.dirop_rationale)));
      out << ",\"frontier_edges\":" << l.frontier_edges
          << ",\"unexplored_edges\":" << l.unexplored_edges
          << ",\"edges\":" << l.edges_scanned << "}";
    }
    out << "]}";
  }

  out << ",\"levels\":[";
  for (std::size_t i = 0; i < report.levels.size(); ++i) {
    const LevelStats& l = report.levels[i];
    if (i > 0) out << ',';
    out << "{\"level\":" << l.level << ",\"frontier\":" << l.frontier
        << ",\"edges\":" << l.edges_scanned
        << ",\"newly_visited\":" << l.newly_visited
        << ",\"wall_seconds\":" << l.wall_seconds
        << ",\"a2a_bytes\":" << l.a2a_bytes
        << ",\"expand_bytes\":" << l.expand_bytes
        << ",\"other_bytes\":" << l.other_bytes;
    if (report.has_level_breakdown) {
      // Only observed runs captured the per-level clock deltas; gating
      // the keys keeps unobserved reports byte-identical to the
      // pre-observability schema.
      out << ",\"comm_seconds\":" << l.comm_seconds
          << ",\"comm_seconds_max\":" << l.comm_seconds_max
          << ",\"comp_seconds\":" << l.comp_seconds
          << ",\"comp_seconds_max\":" << l.comp_seconds_max;
    }
    out << "}";
  }
  out << "]";

  if (include_per_rank) {
    out << ",\"per_rank_comm\":";
    write_array(out, report.per_rank_comm);
    out << ",\"per_rank_comp\":";
    write_array(out, report.per_rank_comp);
  }
  out << "}";
}

std::string report_to_json(const RunReport& report, bool include_per_rank) {
  std::ostringstream out;
  write_report_json(out, report, include_per_rank);
  return out.str();
}

void write_report_json(std::ostream& out, const RunReport& report,
                       const ReportJsonOptions& options) {
  std::ostringstream base;
  write_report_json(base, report, options.include_per_rank);
  std::string text = base.str();
  const bool embed_metrics =
      options.metrics != nullptr && !options.metrics->empty();
  const bool embed_cp = options.critical_path != nullptr;
  if (!embed_metrics && !embed_cp) {
    out << text;
    return;
  }
  // Splice the observer sections in before the closing brace.
  text.pop_back();
  out << text;
  if (embed_metrics) {
    out << ",\"metrics\":";
    options.metrics->write_json(out);
  }
  if (embed_cp) {
    out << ",\"critical_path\":";
    obs::write_critical_path_json(out, *options.critical_path);
  }
  out << "}";
}

std::string report_to_json(const RunReport& report,
                           const ReportJsonOptions& options) {
  std::ostringstream out;
  write_report_json(out, report, options);
  return out.str();
}

}  // namespace dbfs::bfs
