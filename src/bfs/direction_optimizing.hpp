// Direction-optimizing BFS (Beamer/Asanović/Patterson, SC'12): a
// beyond-the-paper extension every production Graph500 code adopted soon
// after Buluç & Madduri's study. On low-diameter skewed graphs the middle
// levels contain most of the graph; instead of scanning every frontier
// edge top-down, the traversal switches to a *bottom-up* step — each
// unvisited vertex scans its own adjacency for any visited parent and
// stops at the first hit — skipping the bulk of edge examinations.
//
// Heuristic (as in the original paper): switch top-down -> bottom-up when
// the frontier's outgoing edge count exceeds |unexplored edges| / alpha;
// switch back when the frontier shrinks below n / beta.
#pragma once

#include "bfs/report.hpp"
#include "graph/csr_graph.hpp"

namespace dbfs::bfs {

struct DirectionOptimizingOptions {
  double alpha = 14.0;  ///< top-down -> bottom-up switch aggressiveness
  double beta = 24.0;   ///< bottom-up -> top-down switch-back threshold
  bool force_top_down = false;  ///< classic level-synchronous (baseline)
};

struct DirectionOptimizingResult {
  BfsOutput out;
  eid_t top_down_edges = 0;   ///< edges examined in top-down steps
  eid_t bottom_up_edges = 0;  ///< edges examined in bottom-up steps
  int bottom_up_levels = 0;
};

/// Requires a symmetric graph (bottom-up scans in-edges via out-edges).
DirectionOptimizingResult direction_optimizing_bfs(
    const graph::CsrGraph& g, vid_t source,
    const DirectionOptimizingOptions& opts = {});

}  // namespace dbfs::bfs
