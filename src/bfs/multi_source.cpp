#include "bfs/multi_source.hpp"

#include <bit>
#include <stdexcept>

#include "util/timer.hpp"

namespace dbfs::bfs {

MultiSourceResult multi_source_bfs(const graph::CsrGraph& g,
                                   std::span<const vid_t> sources) {
  const vid_t n = g.num_vertices();
  const int k = static_cast<int>(sources.size());
  if (k == 0 || k > kMaxBatchedSources) {
    throw std::invalid_argument("multi_source_bfs: need 1..64 sources");
  }
  for (vid_t s : sources) {
    if (s < 0 || s >= n) {
      throw std::out_of_range("multi_source_bfs: source out of range");
    }
  }

  MultiSourceResult result;
  result.sources.assign(sources.begin(), sources.end());
  result.num_sources = k;
  result.levels.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k), kUnreached);
  result.visited_counts.assign(static_cast<std::size_t>(k), 0);
  result.report.algorithm = "multi-source";
  result.report.machine = "host";

  util::Timer timer;
  std::vector<std::uint64_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> frontier(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n), 0);
  // Active list avoids an O(n) sweep per level once frontiers go sparse.
  std::vector<vid_t> active;
  std::vector<vid_t> next_active;

  for (int s = 0; s < k; ++s) {
    const vid_t v = sources[static_cast<std::size_t>(s)];
    const std::uint64_t bit = std::uint64_t{1} << s;
    if ((seen[static_cast<std::size_t>(v)] & bit) == 0) {
      if (seen[static_cast<std::size_t>(v)] == 0) active.push_back(v);
    }
    seen[static_cast<std::size_t>(v)] |= bit;
    frontier[static_cast<std::size_t>(v)] |= bit;
    result.levels[static_cast<std::size_t>(v) * k + s] = 0;
    ++result.visited_counts[static_cast<std::size_t>(s)];
  }

  level_t level = 1;
  while (!active.empty()) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = static_cast<vid_t>(active.size());

    next_active.clear();
    for (vid_t u : active) {
      const std::uint64_t mask = frontier[static_cast<std::size_t>(u)];
      for (vid_t v : g.neighbors(u)) {
        ++stats.edges_scanned;
        const std::uint64_t fresh =
            mask & ~seen[static_cast<std::size_t>(v)];
        if (fresh == 0) continue;
        if (next[static_cast<std::size_t>(v)] == 0) next_active.push_back(v);
        next[static_cast<std::size_t>(v)] |= fresh;
        seen[static_cast<std::size_t>(v)] |= fresh;
      }
    }

    // Retire the old frontier *before* installing the new one: a vertex
    // can appear in both (reached by additional sources while still in
    // the current frontier).
    for (vid_t u : active) frontier[static_cast<std::size_t>(u)] = 0;

    // Commit the level for every (vertex, source) pair discovered.
    vid_t newly = 0;
    for (vid_t v : next_active) {
      std::uint64_t bits = next[static_cast<std::size_t>(v)];
      frontier[static_cast<std::size_t>(v)] = bits;
      next[static_cast<std::size_t>(v)] = 0;
      ++newly;
      while (bits != 0) {
        const int s = std::countr_zero(bits);
        bits &= bits - 1;
        result.levels[static_cast<std::size_t>(v) * k + s] = level;
        ++result.visited_counts[static_cast<std::size_t>(s)];
      }
    }

    stats.newly_visited = newly;
    result.report.levels.push_back(stats);
    active.swap(next_active);
    ++level;
  }

  result.report.total_seconds = timer.elapsed();
  result.report.comp_seconds_mean = result.report.total_seconds;
  eid_t scanned = 0;
  for (const LevelStats& l : result.report.levels) scanned += l.edges_scanned;
  result.report.edges_traversed = scanned;
  return result;
}

}  // namespace dbfs::bfs
