#include "bfs/serial.hpp"

#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace dbfs::bfs {

BfsOutput serial_bfs(const graph::CsrGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  if (source < 0 || source >= n) {
    throw std::out_of_range("serial_bfs: source out of range");
  }

  BfsOutput out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm = "serial";
  out.report.machine = "host";

  util::Timer timer;
  std::vector<vid_t> fs;
  std::vector<vid_t> ns;
  out.parent[source] = source;
  out.level[source] = 0;
  fs.push_back(source);

  level_t level = 1;
  while (!fs.empty()) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = static_cast<vid_t>(fs.size());
    for (vid_t u : fs) {
      for (vid_t v : g.neighbors(u)) {
        ++stats.edges_scanned;
        if (out.level[v] == kUnreached) {
          out.level[v] = level;
          out.parent[v] = u;
          ns.push_back(v);
        }
      }
    }
    stats.newly_visited = static_cast<vid_t>(ns.size());
    out.report.levels.push_back(stats);
    fs = std::move(ns);
    ns.clear();
    ++level;
  }

  out.report.total_seconds = timer.elapsed();
  out.report.comp_seconds_mean = out.report.total_seconds;
  out.report.comp_seconds_max = out.report.total_seconds;
  eid_t scanned = 0;
  for (const LevelStats& l : out.report.levels) scanned += l.edges_scanned;
  out.report.edges_traversed = scanned;
  return out;
}

}  // namespace dbfs::bfs
