#include "bfs/shared.hpp"

#include <stdexcept>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/frontier.hpp"
#include "util/timer.hpp"

namespace dbfs::bfs {

namespace {

int thread_count(int requested) {
#ifdef _OPENMP
  return requested > 0 ? requested : omp_get_max_threads();
#else
  (void)requested;
  return 1;
#endif
}

}  // namespace

SharedBfsResult shared_bfs(const graph::CsrGraph& g, vid_t source,
                           const SharedBfsOptions& opts) {
  const vid_t n = g.num_vertices();
  if (source < 0 || source >= n) {
    throw std::out_of_range("shared_bfs: source out of range");
  }

  SharedBfsResult result;
  BfsOutput& out = result.out;
  out.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  out.level.assign(static_cast<std::size_t>(n), kUnreached);
  out.report.algorithm = opts.use_atomics ? "shared-atomic" : "shared-benign";
  out.report.machine = "host";

  const int threads = thread_count(opts.num_threads);
  out.report.threads_per_rank = threads;
  out.report.cores = threads;

  util::Timer timer;
  std::vector<vid_t> fs;
  out.parent[source] = source;
  out.level[source] = 0;
  fs.push_back(source);
  // Persistent dedup bitmap: a vertex enters NS in exactly one level, so
  // the bitmap never needs clearing; a second set() in the merge step is
  // a benign-race duplicate.
  Bitmap merged(n);
  merged.set(source);

  std::vector<std::vector<vid_t>> ns_per_thread(
      static_cast<std::size_t>(threads));

  level_t level = 1;
  while (!fs.empty()) {
    LevelStats stats;
    stats.level = level - 1;
    stats.frontier = static_cast<vid_t>(fs.size());

    eid_t edges_scanned = 0;
#ifdef _OPENMP
#pragma omp parallel num_threads(threads) reduction(+ : edges_scanned)
#endif
    {
#ifdef _OPENMP
      const int tid = omp_get_thread_num();
#else
      const int tid = 0;
#endif
      auto& ns = ns_per_thread[static_cast<std::size_t>(tid)];
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 64)
#endif
      for (std::size_t fi = 0; fi < fs.size(); ++fi) {
        const vid_t u = fs[fi];
        for (vid_t v : g.neighbors(u)) {
          ++edges_scanned;
          if (opts.use_atomics) {
            level_t expected = kUnreached;
            if (__atomic_compare_exchange_n(&out.level[v], &expected, level,
                                            false, __ATOMIC_RELAXED,
                                            __ATOMIC_RELAXED)) {
              out.parent[v] = u;
              ns.push_back(v);
            }
          } else {
            // Benign race (paper §4.2): read-then-write without atomics.
            // Multiple threads may pass the check; all write the same
            // level value and a valid parent, and the level-boundary
            // barrier publishes a settled value.
            if (out.level[v] == kUnreached) {
              out.level[v] = level;
              out.parent[v] = u;
              ns.push_back(v);
            }
          }
        }
      }
    }
    stats.edges_scanned = edges_scanned;

    // Merge thread-local stacks into the next frontier; duplicates from
    // benign races are counted and dropped here.
    fs.clear();
    for (auto& ns : ns_per_thread) {
      for (vid_t v : ns) {
        if (merged.test_and_set(v)) {
          ++result.duplicate_insertions;
        } else {
          fs.push_back(v);
        }
      }
      ns.clear();
    }
    stats.newly_visited = static_cast<vid_t>(fs.size());
    out.report.levels.push_back(stats);
    ++level;
  }

  out.report.total_seconds = timer.elapsed();
  out.report.comp_seconds_mean = out.report.total_seconds;
  out.report.comp_seconds_max = out.report.total_seconds;
  eid_t scanned = 0;
  for (const LevelStats& l : out.report.levels) scanned += l.edges_scanned;
  out.report.edges_traversed = scanned;
  return result;
}

}  // namespace dbfs::bfs
