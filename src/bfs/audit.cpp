#include "bfs/audit.hpp"

#include <algorithm>
#include <string>

#include "comm/sieve.hpp"
#include "model/cost.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"
#include "util/prng.hpp"

namespace dbfs::bfs {

std::uint64_t sdc_entry_hash(vid_t v, vid_t parent, level_t level) noexcept {
  std::uint64_t h = 0x41424654ULL;  // "ABFT"
  h = util::mix64(h ^ static_cast<std::uint64_t>(v));
  h = util::mix64(h ^ static_cast<std::uint64_t>(parent));
  h = util::mix64(h ^ static_cast<std::uint64_t>(level));
  return h;
}

void SdcShadow::reset(int shards) {
  sums_.assign(static_cast<std::size_t>(shards), 0);
}

void SdcShadow::rebuild(std::span<const vid_t> parent,
                        std::span<const level_t> level,
                        const std::function<int(vid_t)>& owner) {
  std::fill(sums_.begin(), sums_.end(), 0);
  for (std::size_t v = 0; v < level.size(); ++v) {
    if (level[v] == kUnreached) continue;
    const auto gv = static_cast<vid_t>(v);
    sums_[static_cast<std::size_t>(owner(gv))] +=
        sdc_entry_hash(gv, parent[v], level[v]);
  }
}

SdcAuditResult run_sdc_audit(simmpi::Cluster& cluster,
                             std::span<const int> world,
                             const SdcAuditInputs& in, const char* site) {
  const std::size_t g = world.size();
  const std::size_t n = in.level.size();

  // Per-shard recomputation: shard sums from the live arrays, visited
  // counts for the cost model, and the cheap per-vertex invariants. The
  // first offender found names the failed check and its witness vertex.
  std::vector<std::uint64_t> recomputed(g, 0);
  std::vector<std::int64_t> owned(g, 0);
  std::vector<std::int64_t> visited(g, 0);
  std::vector<std::int64_t> mismatches(g, 0);
  const char* first_check = nullptr;
  int first_rank = -1;
  std::int64_t first_vertex = -1;
  const auto flag = [&](std::size_t shard, const char* check,
                        std::int64_t vertex) {
    ++mismatches[shard];
    if (first_check == nullptr) {
      first_check = check;
      first_rank = world[shard];
      first_vertex = vertex;
    }
  };

  for (std::size_t v = 0; v < n; ++v) {
    const auto gv = static_cast<vid_t>(v);
    const auto shard = static_cast<std::size_t>(in.owner(gv));
    ++owned[shard];
    const level_t lv = in.level[v];
    const vid_t pv = in.parent[v];
    if (lv == kUnreached) {
      if (pv != kNoVertex) {
        flag(shard, "unreached-with-parent", static_cast<std::int64_t>(v));
      }
      continue;
    }
    ++visited[shard];
    recomputed[shard] += sdc_entry_hash(gv, pv, lv);
    if (gv == in.source) {
      if (pv != gv || lv != 0) {
        flag(shard, "tree-property", static_cast<std::int64_t>(v));
      }
      continue;
    }
    if (pv < 0 || static_cast<std::size_t>(pv) >= n ||
        in.level[static_cast<std::size_t>(pv)] != lv - 1) {
      flag(shard, "tree-property", static_cast<std::int64_t>(v));
    }
  }

  // Shard checksums vs the write-time shadows: the guaranteed detector —
  // any at-rest change to a (parent, level) entry shifts the wrapping
  // sum, whether or not it broke a tree property.
  for (std::size_t ri = 0; ri < g; ++ri) {
    if (recomputed[ri] != in.shadow->sum(static_cast<int>(ri))) {
      flag(ri, "shard-checksum", -1);
    }
  }

  // Sender-side sieve, two detectors per rank bitmap: the write-time
  // mark checksum (guaranteed — an at-rest bit flip bypasses the running
  // sum, so recomputing it from the words always disagrees), and the
  // structural marked ⊆ visited rule (names a witness vertex while the
  // spurious bit is still suppressing sends of an unvisited target).
  std::uint64_t sieve_words = 0;
  if (in.sieve != nullptr && in.sieve->active()) {
    sieve_words = (static_cast<std::uint64_t>(n) + 63) / 64;
    for (std::size_t ri = 0; ri < g; ++ri) {
      std::uint64_t recomputed_marks = 0;
      std::int64_t witness = -1;
      in.sieve->for_each_marked(world[ri], [&](vid_t v) {
        recomputed_marks += comm::Sieve::mark_hash(v);
        if (static_cast<std::size_t>(v) >= n ||
            in.level[static_cast<std::size_t>(v)] == kUnreached) {
          if (witness < 0) witness = static_cast<std::int64_t>(v);
          flag(ri, "visited-superset", static_cast<std::int64_t>(v));
        }
      });
      if (in.sieve->checksums() &&
          recomputed_marks != in.sieve->sum(world[ri])) {
        flag(ri, "sieve-checksum", witness);
      }
    }
  }

  // Direction-heuristic scalars vs their shadow copies (2D hybrid). The
  // state is logically replicated, so drift is charged to the diagonal.
  for (std::size_t i = 0;
       i < in.dirop_state.size() && i < in.dirop_shadow.size(); ++i) {
    if (in.dirop_state[i] != in.dirop_shadow[i]) {
      flag(0, "dirop-state", -1);
    }
  }

  // Price the scans, then agree on the verdict with one checked-size
  // allreduce so every rank reaches the same conclusion at the same
  // barrier — the cross-rank agreement step of the ABFT scheme.
  const double before = cluster.clocks().max_now();
  cluster.set_compute_phase("sdc-audit");
  for (std::size_t ri = 0; ri < g; ++ri) {
    model::WorkAudit w;
    w.shard_vertices = static_cast<vid_t>(owned[ri]);
    w.visited_vertices = static_cast<vid_t>(visited[ri]);
    w.sieve_words = sieve_words;
    w.n_global = static_cast<vid_t>(n);
    w.threads = cluster.threads_per_rank();
    cluster.charge_compute(world[ri], model::cost_sdc_audit(cluster.machine(), w));
  }
  const std::int64_t total = simmpi::allreduce_sum<std::int64_t>(
      cluster, world, mismatches, site);

  SdcAuditResult result;
  result.mismatches = total;
  result.audit_seconds = cluster.clocks().max_now() - before;

  if (obs::MetricsRegistry* m = cluster.metrics()) {
    ++m->counter("sdc.audits");
    m->histogram("sdc.audit_seconds").observe(result.audit_seconds);
    if (total != 0) ++m->counter("sdc.audit_failures");
  }
  if (obs::FlightRecorder* flight = cluster.flight()) {
    flight
        ->append("audit", site, cluster.clocks().max_now(), first_rank,
                 cluster.current_level())
        .set("mismatches", static_cast<double>(total))
        .set("audit_seconds", result.audit_seconds)
        .set("shards", static_cast<double>(g));
  }
  if (total != 0) {
    throw simmpi::AuditFailedError(
        site, first_check != nullptr ? first_check : "shard-checksum",
        first_rank, cluster.current_level(), first_vertex,
        cluster.clocks().max_now());
  }
  return result;
}

}  // namespace dbfs::bfs
