// Distributed BFS with 2D matrix partitioning (paper Algorithm 3).
//
// The adjacency matrix is checkerboard-partitioned over a square process
// grid; each BFS level is one sparse matrix–sparse vector multiply on the
// (select, max) semiring, realized as:
//   TransposeVector  -> pairwise exchange of frontier pieces
//   Allgatherv       -> "expand" over processor columns (pr participants)
//   local SpMSV      -> DCSC blocks, SPA or heap back end (§4.2)
//   Alltoallv        -> "fold" over processor rows (pc participants)
// followed by element-wise filtering against the parents array and the
// parents update (lines 9-10).
//
// The vector distribution is selectable: the scalable 2D distribution, or
// the diagonal-only ("1D") distribution whose fold-side serialization
// produces the idle-time imbalance of Figure 4.
#pragma once

#include <memory>

#include "bfs/report.hpp"
#include "comm/wire_format.hpp"
#include "dist/vector_dist.hpp"
#include "graph/edge_list.hpp"
#include "model/cost.hpp"
#include "model/machine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recover/checkpoint.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/process_grid.hpp"
#include "sparse/spmsv.hpp"

namespace dbfs::obs {
class CommAtlas;
}

namespace dbfs::bfs {

/// Traversal direction policy for the 2D engine (Beamer et al. SC'12
/// brought into the 2D SpMSV formulation, after Buluç et al. 2017).
enum class DirectionMode {
  kTopDown,   ///< classic Algorithm 3 only — the byte-identical legacy path
  kBottomUp,  ///< transposed-SpMSV pull on every level after the first
  kHybrid,    ///< per-level alpha-beta switch, agreed globally per level
};

const char* to_string(DirectionMode mode);
/// Parse "topdown" | "bottomup" | "hybrid"; throws std::invalid_argument.
DirectionMode parse_direction_mode(const std::string& name);

struct Bfs2DOptions {
  /// Total simulated cores; the grid is the closest square over
  /// cores/threads_per_rank ranks (paper §6).
  int cores = 16;
  int threads_per_rank = 1;
  model::MachineModel machine = model::generic();
  sparse::SpmsvBackend backend = sparse::SpmsvBackend::kAuto;
  dist::VectorDistKind vector_dist = dist::VectorDistKind::kTwoD;
  /// Expand-phase allgather implementation (§7 exploration). kRing is the
  /// calibrated default; kAuto switches per call like a tuned MPI would.
  model::AllgatherAlgo allgather_algo = model::AllgatherAlgo::kRing;
  /// Paper §7 space optimization: store only the upper wedge of the
  /// symmetric adjacency matrix (half the memory). Each level then also
  /// runs a scan-based transpose product to cover the mirrored edge
  /// directions, plus a pairwise frontier/result exchange with the
  /// transpose partner. Requires symmetric input; incompatible with the
  /// diagonal vector distribution.
  bool triangular_storage = false;
  /// Wire format for the fold alltoallv (sieve + optional compression)
  /// and the expand allgatherv (compression only — the expand payload is
  /// already deduplicated). kRaw preserves the legacy byte-for-byte code
  /// path and reports; the diagonal vector distribution always stays raw.
  comm::WireFormat wire_format = comm::WireFormat::kRaw;
  /// See Bfs1DOptions::load_smoothing. Smoothing applies within each
  /// phase's participant group, so *structural* concentration (e.g. the
  /// diagonal-only merge of the 1D vector distribution, Fig 4) is never
  /// smoothed away.
  double load_smoothing = 1.0;
  /// Deterministic perturbations (stragglers, transient collective
  /// failures, payload corruption); see simmpi/fault.hpp. A zero plan
  /// leaves the run bit-identical to an unfaulted build.
  simmpi::FaultPlan faults;
  /// Fail-stop recovery: checkpoint cadence and shrink-vs-spare policy
  /// (see recover/checkpoint.hpp). The shrink path re-folds the process
  /// grid to the largest square fitting in the surviving ranks (the grid
  /// must stay square for the transpose exchanges). Arming this without
  /// scheduling kills leaves the run and its report bit-identical.
  recover::RecoverOptions recover;
  /// Passive observers (non-owning; see src/obs/). Null = off; attaching
  /// them never perturbs the simulated run, it only records it and
  /// enables the per-level comm/comp breakdown in the report.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Always-on black-box event ring (see obs/flight_recorder.hpp); like
  /// the observers it is passive, non-owning, and null = off.
  obs::FlightRecorder* flight = nullptr;
  /// Per-rank-pair communication atlas (see obs/comm_atlas.hpp); passive,
  /// non-owning, null = off. The driver installs the pr×pc grid so the
  /// atlas can split bytes into row/column subcommunicator traffic
  /// (expand, fold) versus grid-wide traffic (transpose, allreduces) —
  /// the 2D locality contrast the paper's §6 breakdown is built on.
  obs::CommAtlas* atlas = nullptr;
  /// Direction optimization. kTopDown (the default) keeps every code path
  /// and report byte-identical to the pre-hybrid engine; kHybrid prices
  /// the per-level switch with Beamer's alpha-beta rule on globally
  /// agreed (allreduced) frontier statistics, so every rank changes
  /// direction in lockstep and the decision replays deterministically
  /// under recovery. Requires full (non-triangular) storage and a
  /// non-diagonal vector distribution. alpha/beta <= 0 derive the
  /// thresholds from the machine model (model::dirop_alpha/dirop_beta).
  DirectionMode direction = DirectionMode::kTopDown;
  double alpha = 14.0;
  double beta = 24.0;
  std::string label = "2d";
};

class Bfs2D {
 public:
  Bfs2D(const graph::EdgeList& edges, vid_t n, Bfs2DOptions opts);
  ~Bfs2D();

  Bfs2D(const Bfs2D&) = delete;
  Bfs2D& operator=(const Bfs2D&) = delete;

  BfsOutput run(vid_t source);

  const simmpi::ProcessGrid& grid() const;
  /// Cores actually used: ranks()*threads (<= opts.cores when the square
  /// grid doesn't divide the request evenly).
  int cores_used() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dbfs::bfs
