// Algorithm 1 of the paper: serial level-synchronous BFS with explicit
// frontier (FS) and next (NS) stacks. The correctness reference for every
// parallel variant, and the single-node baseline of the TEPS comparisons.
#pragma once

#include "bfs/report.hpp"
#include "graph/csr_graph.hpp"

namespace dbfs::bfs {

/// Runs serial BFS from `source`; fills parents and levels. The report
/// carries level-by-level frontier/edge counts and the *measured* host
/// wall time (serial execution is real, not simulated).
BfsOutput serial_bfs(const graph::CsrGraph& g, vid_t source);

}  // namespace dbfs::bfs
