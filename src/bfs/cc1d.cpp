#include "bfs/cc1d.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "bfs/finalize.hpp"
#include "bfs/frontier.hpp"
#include "dist/local_graph1d.hpp"
#include "model/cost.hpp"
#include "simmpi/comm.hpp"

namespace dbfs::bfs {

Cc1DResult connected_components_1d(const graph::EdgeList& edges, vid_t n,
                                   const Cc1DOptions& opts) {
  if (n < 1) {
    throw std::invalid_argument("connected_components_1d: empty graph");
  }
  const int p = opts.ranks;
  const int t = opts.threads_per_rank;
  const auto local = dist::LocalGraph1D::build(edges, n, p);
  const auto& part = local.partition();
  simmpi::Cluster cluster{p, opts.machine, t};
  std::vector<int> world(static_cast<std::size_t>(p));
  std::iota(world.begin(), world.end(), 0);

  Cc1DResult result;
  result.label.resize(static_cast<std::size_t>(n));
  std::iota(result.label.begin(), result.label.end(), vid_t{0});
  result.report.algorithm = std::string("cc-1d") + (t > 1 ? "-hybrid" : "");

  // Active frontier per rank (local vertices whose label just changed).
  std::vector<std::vector<vid_t>> active(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& mine = active[static_cast<std::size_t>(r)];
    mine.resize(static_cast<std::size_t>(part.size(r)));
    std::iota(mine.begin(), mine.end(), part.begin(r));
  }

  vid_t global_active = n;
  while (global_active > 0) {
    ++result.rounds;
    LevelStats stats;
    stats.level = result.rounds - 1;
    stats.frontier = global_active;
    const double wall_before = cluster.clocks().max_now();

    // Push phase: active vertices send their label to every neighbor's
    // owner. (Like 1D BFS phase A, with (target, label) candidates.)
    auto send =
        simmpi::FlatExchange<Candidate>::sized(static_cast<std::size_t>(p));
    std::vector<double> phase_costs(static_cast<std::size_t>(p), 0.0);
    std::vector<eid_t> scanned(static_cast<std::size_t>(p), 0);
    cluster.for_each_rank([&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      auto& counts = send.counts[ri];
      eid_t edges_scanned = 0;
      for (vid_t u : active[ri]) {
        for (vid_t v : local.neighbors(r, u - part.begin(r))) {
          ++counts[static_cast<std::size_t>(part.owner(v))];
          ++edges_scanned;
        }
      }
      std::vector<std::int64_t> cursor(static_cast<std::size_t>(p), 0);
      std::partial_sum(counts.begin(), counts.end() - 1, cursor.begin() + 1);
      send.data[ri].resize(static_cast<std::size_t>(edges_scanned));
      for (vid_t u : active[ri]) {
        const vid_t label_u = result.label[static_cast<std::size_t>(u)];
        for (vid_t v : local.neighbors(r, u - part.begin(r))) {
          auto& cur = cursor[static_cast<std::size_t>(part.owner(v))];
          send.data[ri][static_cast<std::size_t>(cur++)] =
              Candidate{v, label_u};
        }
      }
      scanned[ri] = edges_scanned;

      model::Work1D work;
      work.frontier_vertices = static_cast<eid_t>(active[ri].size());
      work.edges_scanned = edges_scanned;
      work.words_packed = 2 * edges_scanned;
      work.n_local = part.size(r);
      work.threads = t;
      phase_costs[ri] = model::cost_1d_local(opts.machine, work);
    });
    {
      double mean = 0;
      for (double c : phase_costs) mean += c;
      mean /= static_cast<double>(p);
      const double w = opts.load_smoothing;
      for (int r = 0; r < p; ++r) {
        cluster.charge_compute(
            r, w * mean + (1.0 - w) * phase_costs[static_cast<std::size_t>(r)]);
      }
    }

    auto recv = simmpi::alltoallv(cluster, world, std::move(send));

    // Apply phase: owners keep the minimum label; shrunken labels
    // reactivate the vertex.
    std::vector<std::int64_t> next_counts(static_cast<std::size_t>(p), 0);
    cluster.for_each_rank([&](int r) {
      const auto ri = static_cast<std::size_t>(r);
      active[ri].clear();
      // A vertex can receive many candidates; dedup via "was activated".
      std::unordered_set<vid_t> activated;
      for (const Candidate& c : recv.data[ri]) {
        auto& label = result.label[static_cast<std::size_t>(c.vertex)];
        if (c.parent < label) {
          label = c.parent;
          activated.insert(c.vertex);
        }
      }
      active[ri].assign(activated.begin(), activated.end());
      std::sort(active[ri].begin(), active[ri].end());
      next_counts[ri] = static_cast<std::int64_t>(active[ri].size());

      model::Work1D work;
      work.candidates_received =
          static_cast<eid_t>(recv.data[ri].size()) * 2;
      work.newly_visited = static_cast<vid_t>(active[ri].size());
      work.n_local = part.size(r);
      work.threads = t;
      phase_costs[ri] = model::cost_1d_local(opts.machine, work);
      recv.data[ri].clear();
      recv.data[ri].shrink_to_fit();
    });
    {
      double mean = 0;
      for (double c : phase_costs) mean += c;
      mean /= static_cast<double>(p);
      const double w = opts.load_smoothing;
      for (int r = 0; r < p; ++r) {
        cluster.charge_compute(
            r, w * mean + (1.0 - w) * phase_costs[static_cast<std::size_t>(r)]);
      }
    }

    global_active = static_cast<vid_t>(
        simmpi::allreduce_sum<std::int64_t>(cluster, world, next_counts));
    stats.edges_scanned =
        std::accumulate(scanned.begin(), scanned.end(), eid_t{0});
    stats.newly_visited = global_active;
    stats.wall_seconds = cluster.clocks().max_now() - wall_before;
    result.report.levels.push_back(stats);
  }

  std::unordered_set<vid_t> distinct(result.label.begin(),
                                     result.label.end());
  result.num_components = static_cast<vid_t>(distinct.size());
  finalize_report(result.report, cluster);
  return result;
}

}  // namespace dbfs::bfs
