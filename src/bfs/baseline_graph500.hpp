// Baseline: the non-replicated Graph 500 reference MPI code (v2.1
// "simple"), which the paper's Flat 1D implementation beats by
// 2.72×/3.43×/4.13× at 512/1024/2048 cores (§6).
//
// Algorithmically it is the same 1D level-synchronous BFS; the measured
// gap comes from implementation quality, which we reproduce structurally:
// bounded per-destination send buffers flushed as individual messages
// (latency-heavy, priced per message instead of as one aggregated
// all-to-all) and a heavier per-edge inner loop.
#pragma once

#include "bfs/bfs1d.hpp"

namespace dbfs::bfs {

struct Graph500RefOptions {
  int ranks = 4;
  model::MachineModel machine = model::generic();
};

/// Configure a Bfs1D instance that behaves like the reference code.
Bfs1DOptions graph500_reference_options(const Graph500RefOptions& opts);

}  // namespace dbfs::bfs
