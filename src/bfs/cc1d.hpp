// Distributed connected components by label propagation over the same 1D
// substrate as Algorithm 2 — a second graph kernel on the simulator,
// demonstrating that the partition/collective/cost machinery is a general
// distributed-graph base and not BFS-specific. (CC is one of the intro's
// motivating "classical algorithms", and label propagation is the
// standard level-synchronous formulation for it.)
//
// Each vertex starts with its own id as label; every round, active
// vertices push their label to neighbors, owners keep the minimum, and a
// vertex whose label shrank becomes active for the next round. Rounds
// needed ~ the largest component's diameter.
#pragma once

#include <vector>

#include "bfs/report.hpp"
#include "graph/edge_list.hpp"
#include "model/machine.hpp"

namespace dbfs::bfs {

struct Cc1DOptions {
  int ranks = 4;
  int threads_per_rank = 1;
  model::MachineModel machine = model::generic();
  double load_smoothing = 1.0;
};

struct Cc1DResult {
  /// Component label per vertex: the smallest vertex id in its component.
  std::vector<vid_t> label;
  int rounds = 0;
  vid_t num_components = 0;
  RunReport report;
};

/// Requires symmetric input (labels flow both ways across each edge).
Cc1DResult connected_components_1d(const graph::EdgeList& edges, vid_t n,
                                   const Cc1DOptions& opts = {});

}  // namespace dbfs::bfs
