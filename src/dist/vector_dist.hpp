// Frontier/parent vector distributions for the 2D algorithm (paper §3.2
// and §4.3).
//
// kTwoD ("2D vector distribution"): vector entries are spread over *all*
// ranks, matching the matrix distribution — each processor row owns its
// row-block R_i, subdivided among the row's pc ranks. This is the paper's
// scalable choice.
//
// kDiagonal ("1D vector distribution"): each row-block R_i is wholly
// owned by the diagonal rank P(i,i). Classical for SpMV, but for SpMSV it
// serializes the fold-side merge on the diagonal while the rest of the
// processor row idles — the severe imbalance of Figure 4.
#pragma once

#include <stdexcept>
#include <vector>

#include "dist/partition1d.hpp"
#include "simmpi/process_grid.hpp"
#include "util/types.hpp"

namespace dbfs::dist {

enum class VectorDistKind { kTwoD, kDiagonal };

const char* to_string(VectorDistKind kind);

class VectorDist {
 public:
  VectorDist() = default;
  VectorDist(vid_t n, const simmpi::ProcessGrid& grid, VectorDistKind kind);

  VectorDistKind kind() const noexcept { return kind_; }

  /// Row-block boundaries (shared with the matrix distribution).
  const BlockPartition& row_blocks() const noexcept { return row_blocks_; }

  /// Owner rank of global vector index v.
  int owner_rank(vid_t v) const noexcept {
    const int i = row_blocks_.owner(v);
    if (kind_ == VectorDistKind::kDiagonal) return grid_rank(i, i);
    const int j = sub_[static_cast<std::size_t>(i)].owner(
        v - row_blocks_.begin(i));
    return grid_rank(i, j);
  }

  /// Owner column within processor row i for an offset into R_i (used to
  /// scatter fold-phase results along the row).
  int owner_col(int i, vid_t offset_in_block) const noexcept {
    if (kind_ == VectorDistKind::kDiagonal) return i;
    return sub_[static_cast<std::size_t>(i)].owner(offset_in_block);
  }

  /// Global range [begin, end) of the piece owned by rank (i,j).
  vid_t piece_begin(int i, int j) const noexcept {
    if (kind_ == VectorDistKind::kDiagonal) {
      return j == i ? row_blocks_.begin(i) : row_blocks_.end(i);
    }
    return row_blocks_.begin(i) + sub_[static_cast<std::size_t>(i)].begin(j);
  }

  vid_t piece_end(int i, int j) const noexcept {
    if (kind_ == VectorDistKind::kDiagonal) {
      return j == i ? row_blocks_.end(i) : row_blocks_.end(i);
    }
    return row_blocks_.begin(i) + sub_[static_cast<std::size_t>(i)].end(j);
  }

  vid_t piece_size(int i, int j) const noexcept {
    return piece_end(i, j) - piece_begin(i, j);
  }

 private:
  int grid_rank(int i, int j) const noexcept { return i * pc_ + j; }

  VectorDistKind kind_ = VectorDistKind::kTwoD;
  int pc_ = 1;
  BlockPartition row_blocks_;
  std::vector<BlockPartition> sub_;  // per row-block: split over pc ranks
};

}  // namespace dbfs::dist
