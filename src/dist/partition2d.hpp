// 2D checkerboard decomposition of the adjacency matrix (paper §3.2,
// Eq. 1): on an s×s grid, block (i,j) holds the sub-matrix with rows in
// row-block R_i and columns in column-block C_j, stored hypersparse
// (DCSC). Entry (r, c) is nonzero iff the graph has edge c -> r, i.e. the
// matrix is stored pre-transposed exactly as §3.2 assumes, so one BFS
// level is y = A ⊗ x with x indexed by frontier vertices (columns).
#pragma once

#include <vector>

#include "dist/partition1d.hpp"
#include "graph/edge_list.hpp"
#include "simmpi/process_grid.hpp"
#include "sparse/dcsc_matrix.hpp"

namespace dbfs::dist {

class Partition2D {
 public:
  Partition2D() = default;

  /// Decompose the edge list over a square grid. Row and column blocks
  /// share the same boundaries (BlockPartition of n over s).
  ///
  /// With `triangular` set (requires a symmetric input), only the upper
  /// wedge is stored: entry {u,v} lands once, in block
  /// (min(bi,bj), max(bi,bj)) — and within diagonal blocks only the local
  /// upper triangle is kept. This is the paper's §7 space optimization
  /// ("one can save 50% space by storing only the upper triangle"); the
  /// BFS must then run a transpose product per level to cover the
  /// mirrored direction (see Bfs2DOptions::triangular_storage).
  Partition2D(const graph::EdgeList& edges, vid_t n,
              const simmpi::ProcessGrid& grid, bool triangular = false);

  const BlockPartition& blocks() const noexcept { return blocks_; }

  bool triangular() const noexcept { return triangular_; }

  /// Total resident bytes across all local blocks — the quantity the §7
  /// optimization halves (see bench/ablation_triangular).
  std::size_t memory_bytes() const noexcept;

  /// Local hypersparse block of rank (i,j); row/col ids are local to
  /// (R_i, C_j).
  const sparse::DcscMatrix& block(int rank) const noexcept {
    return blocks_dcsc_[static_cast<std::size_t>(rank)];
  }

  /// Aggregate nonzeros across blocks (= edge count after dedup).
  eid_t total_nnz() const noexcept;

 private:
  BlockPartition blocks_;
  std::vector<sparse::DcscMatrix> blocks_dcsc_;
  bool triangular_ = false;
};

}  // namespace dbfs::dist
