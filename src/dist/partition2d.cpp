#include "dist/partition2d.hpp"

#include <stdexcept>

namespace dbfs::dist {

Partition2D::Partition2D(const graph::EdgeList& edges, vid_t n,
                         const simmpi::ProcessGrid& grid, bool triangular) {
  if (!grid.is_square()) {
    throw std::invalid_argument(
        "Partition2D: the 2D BFS uses square grids (paper §6)");
  }
  const int s = grid.pr();
  blocks_ = BlockPartition(n, s);
  triangular_ = triangular;

  std::vector<std::vector<sparse::Triple>> triples(
      static_cast<std::size_t>(grid.ranks()));
  for (const graph::Edge& e : edges.edges()) {
    // Edge u -> v lands at matrix entry (row v, col u): pre-transposed.
    vid_t row = e.v;
    vid_t col = e.u;
    if (triangular) {
      // Keep only the upper wedge: a symmetric input carries both {u,v}
      // and {v,u}; the one whose entry falls strictly below the diagonal
      // is dropped (its mirror is kept by the other orientation).
      if (row > col) continue;
    }
    const int i = blocks_.owner(row);
    const int j = blocks_.owner(col);
    triples[static_cast<std::size_t>(grid.rank_of(i, j))].push_back(
        sparse::Triple{row - blocks_.begin(i), col - blocks_.begin(j)});
  }

  blocks_dcsc_.reserve(static_cast<std::size_t>(grid.ranks()));
  for (int rank = 0; rank < grid.ranks(); ++rank) {
    const int i = grid.row_of(rank);
    const int j = grid.col_of(rank);
    blocks_dcsc_.push_back(sparse::DcscMatrix::from_triples(
        blocks_.size(i), blocks_.size(j),
        std::move(triples[static_cast<std::size_t>(rank)])));
  }
}

eid_t Partition2D::total_nnz() const noexcept {
  eid_t sum = 0;
  for (const auto& b : blocks_dcsc_) sum += b.nnz();
  return sum;
}

std::size_t Partition2D::memory_bytes() const noexcept {
  std::size_t sum = 0;
  for (const auto& b : blocks_dcsc_) sum += b.memory_bytes();
  return sum;
}

}  // namespace dbfs::dist
