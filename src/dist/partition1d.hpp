// 1D block partition of the vertex set (paper §3.1): rank r owns a
// contiguous range of ~n/p vertices and all edges out of them. Combined
// with the random vertex shuffle (§4.4) this balances vertices and edges
// regardless of degree skew.
//
// Block size follows the paper's floor-based scheme: every rank but the
// last owns floor(n/p) vertices; the last takes the remainder. When
// n < p the block size is clamped to 1 (trailing ranks own nothing) —
// a robustness extension for degenerate configurations.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace dbfs::dist {

class BlockPartition {
 public:
  BlockPartition() = default;

  /// Uniform mode: every rank but the last owns floor(n/parts) vertices.
  BlockPartition(vid_t n, int parts) : n_(n), parts_(parts) {
    if (n < 0 || parts < 1) {
      throw std::invalid_argument("BlockPartition: invalid arguments");
    }
    block_ = std::max<vid_t>(1, n / parts);
  }

  /// Boundary mode: rank r owns [boundaries[r], boundaries[r+1]).
  /// `boundaries` must be non-decreasing, start at 0, end at n.
  static BlockPartition from_boundaries(std::vector<vid_t> boundaries);

  /// Non-uniform boundaries chosen so each rank owns ~equal *edges*
  /// (prefix sums over out-degrees): the deterministic alternative to the
  /// §4.4 random relabeling when the vertex order cannot be changed —
  /// it fixes R-MAT's natural-order skew without touching vertex ids
  /// (see bench/ablation_partition).
  static BlockPartition edge_balanced(std::span<const eid_t> out_degrees,
                                      int parts);

  vid_t n() const noexcept { return n_; }
  int parts() const noexcept { return parts_; }
  vid_t block_size() const noexcept { return block_; }

  int owner(vid_t v) const noexcept {
    if (!boundaries_.empty()) {
      const auto it = std::upper_bound(boundaries_.begin() + 1,
                                       boundaries_.end() - 1, v);
      return static_cast<int>(it - boundaries_.begin()) - 1;
    }
    const auto r = static_cast<int>(v / block_);
    return r < parts_ ? r : parts_ - 1;
  }

  vid_t begin(int r) const noexcept {
    if (!boundaries_.empty()) return boundaries_[static_cast<std::size_t>(r)];
    return std::min<vid_t>(static_cast<vid_t>(r) * block_, n_);
  }

  vid_t end(int r) const noexcept {
    if (!boundaries_.empty()) {
      return boundaries_[static_cast<std::size_t>(r) + 1];
    }
    return r == parts_ - 1
               ? n_
               : std::min<vid_t>(static_cast<vid_t>(r + 1) * block_, n_);
  }

  bool uniform() const noexcept { return boundaries_.empty(); }

  vid_t size(int r) const noexcept { return end(r) - begin(r); }

  vid_t to_local(vid_t global) const noexcept {
    return global - begin(owner(global));
  }

  vid_t to_global(int r, vid_t local) const noexcept {
    return begin(r) + local;
  }

 private:
  vid_t n_ = 0;
  int parts_ = 1;
  vid_t block_ = 1;
  std::vector<vid_t> boundaries_;  // empty = uniform mode
};

}  // namespace dbfs::dist
