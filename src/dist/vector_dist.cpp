#include "dist/vector_dist.hpp"

namespace dbfs::dist {

const char* to_string(VectorDistKind kind) {
  switch (kind) {
    case VectorDistKind::kTwoD:
      return "2d";
    case VectorDistKind::kDiagonal:
      return "diagonal";
  }
  return "?";
}

VectorDist::VectorDist(vid_t n, const simmpi::ProcessGrid& grid,
                       VectorDistKind kind)
    : kind_(kind), pc_(grid.pc()), row_blocks_(n, grid.pr()) {
  if (!grid.is_square()) {
    throw std::invalid_argument("VectorDist: requires a square grid");
  }
  if (kind_ == VectorDistKind::kTwoD) {
    sub_.reserve(static_cast<std::size_t>(grid.pr()));
    for (int i = 0; i < grid.pr(); ++i) {
      sub_.emplace_back(row_blocks_.size(i), grid.pc());
    }
  }
}

}  // namespace dbfs::dist
