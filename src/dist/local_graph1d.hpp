// Per-rank CSR adjacency under the 1D partition: rank r stores the sorted
// out-adjacencies (as *global* vertex ids) of its owned vertex range —
// the "distributed adjacency arrays" of the paper's 1D approach.
#pragma once

#include <span>
#include <vector>

#include "dist/partition1d.hpp"
#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace dbfs::dist {

class LocalGraph1D {
 public:
  /// Build with the uniform block partition.
  static LocalGraph1D build(const graph::EdgeList& edges, vid_t n, int ranks);

  /// Build with an explicit partition (e.g. BlockPartition::edge_balanced).
  static LocalGraph1D build_with_partition(const graph::EdgeList& edges,
                                           BlockPartition partition);

  const BlockPartition& partition() const noexcept { return partition_; }

  /// Adjacency of vertex `local` (0-based within rank r's owned range).
  std::span<const vid_t> neighbors(int r, vid_t local) const noexcept {
    const auto& off = offsets_[static_cast<std::size_t>(r)];
    const auto& adj = adjacency_[static_cast<std::size_t>(r)];
    return {adj.data() + off[static_cast<std::size_t>(local)],
            static_cast<std::size_t>(off[static_cast<std::size_t>(local) + 1] -
                                     off[static_cast<std::size_t>(local)])};
  }

  eid_t local_edges(int r) const noexcept {
    return static_cast<eid_t>(adjacency_[static_cast<std::size_t>(r)].size());
  }

  vid_t local_vertices(int r) const noexcept { return partition_.size(r); }

 private:
  BlockPartition partition_;
  std::vector<std::vector<eid_t>> offsets_;     // per rank: size local_n+1
  std::vector<std::vector<vid_t>> adjacency_;   // per rank: global ids
};

}  // namespace dbfs::dist
