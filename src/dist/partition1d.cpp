// BlockPartition is header-only; this file anchors the dist target and
// hosts the 1D local-graph builder.
#include "dist/partition1d.hpp"

#include <numeric>

#include "dist/local_graph1d.hpp"

namespace dbfs::dist {

BlockPartition BlockPartition::from_boundaries(std::vector<vid_t> boundaries) {
  if (boundaries.size() < 2 || boundaries.front() != 0 ||
      !std::is_sorted(boundaries.begin(), boundaries.end())) {
    throw std::invalid_argument("BlockPartition: invalid boundaries");
  }
  BlockPartition p;
  p.n_ = boundaries.back();
  p.parts_ = static_cast<int>(boundaries.size()) - 1;
  p.boundaries_ = std::move(boundaries);
  return p;
}

BlockPartition BlockPartition::edge_balanced(
    std::span<const eid_t> out_degrees, int parts) {
  if (parts < 1) {
    throw std::invalid_argument("edge_balanced: parts must be positive");
  }
  const auto n = static_cast<vid_t>(out_degrees.size());
  eid_t total = 0;
  for (eid_t d : out_degrees) total += d;

  // Greedy sweep: close a block once it reaches the remaining-average
  // edge load, so trailing ranks are never starved by early hubs.
  std::vector<vid_t> boundaries{0};
  eid_t accumulated = 0;
  eid_t consumed = 0;
  for (vid_t v = 0; v < n && static_cast<int>(boundaries.size()) < parts;
       ++v) {
    accumulated += out_degrees[static_cast<std::size_t>(v)];
    const int blocks_left =
        parts - static_cast<int>(boundaries.size()) + 1;
    const double target = static_cast<double>(total - consumed) /
                          static_cast<double>(blocks_left);
    if (static_cast<double>(accumulated) >= target) {
      boundaries.push_back(v + 1);
      consumed += accumulated;
      accumulated = 0;
    }
  }
  while (static_cast<int>(boundaries.size()) < parts) {
    boundaries.push_back(n);
  }
  boundaries.push_back(n);
  return from_boundaries(std::move(boundaries));
}

LocalGraph1D LocalGraph1D::build(const graph::EdgeList& edges, vid_t n,
                                 int ranks) {
  return build_with_partition(edges, BlockPartition(n, ranks));
}

LocalGraph1D LocalGraph1D::build_with_partition(const graph::EdgeList& edges,
                                                BlockPartition partition) {
  LocalGraph1D lg;
  const int ranks = partition.parts();
  lg.partition_ = std::move(partition);
  lg.offsets_.resize(static_cast<std::size_t>(ranks));
  lg.adjacency_.resize(static_cast<std::size_t>(ranks));

  // Two-pass CSR build per rank, done globally: count, prefix, place.
  for (int r = 0; r < ranks; ++r) {
    lg.offsets_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(lg.partition_.size(r)) + 1, 0);
  }
  for (const graph::Edge& e : edges.edges()) {
    const int r = lg.partition_.owner(e.u);
    const vid_t local = e.u - lg.partition_.begin(r);
    ++lg.offsets_[static_cast<std::size_t>(r)][static_cast<std::size_t>(local) + 1];
  }
  for (int r = 0; r < ranks; ++r) {
    auto& off = lg.offsets_[static_cast<std::size_t>(r)];
    for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
    lg.adjacency_[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(off.back()));
  }
  std::vector<std::vector<eid_t>> cursor(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const auto& off = lg.offsets_[static_cast<std::size_t>(r)];
    cursor[static_cast<std::size_t>(r)].assign(off.begin(), off.end() - 1);
  }
  for (const graph::Edge& e : edges.edges()) {
    const int r = lg.partition_.owner(e.u);
    const vid_t local = e.u - lg.partition_.begin(r);
    auto& cur = cursor[static_cast<std::size_t>(r)][static_cast<std::size_t>(local)];
    lg.adjacency_[static_cast<std::size_t>(r)][static_cast<std::size_t>(cur++)] =
        e.v;
  }
  return lg;
}

}  // namespace dbfs::dist
