#include "util/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string_view>

namespace dbfs::util {

namespace {

bool flag_value(const char* raw) {
  if (raw == nullptr) return false;
  const std::string_view v{raw};
  return !v.empty() && v != "0" && v != "false" && v != "FALSE";
}

}  // namespace

const char* project_env(const char* suffix) {
  const std::string preferred = std::string("DISTBFS_") + suffix;
  if (const char* raw = std::getenv(preferred.c_str())) return raw;
  const std::string legacy = std::string("BFSSIM_") + suffix;
  const char* raw = std::getenv(legacy.c_str());
  if (raw != nullptr) {
    // One warning per suffix per process. Deliberately plain fprintf, not
    // log_message: log_threshold()'s static initializer resolves QUIET /
    // VERBOSE through this function, and routing the warning back through
    // the logger would re-enter that initialization.
    static std::mutex mu;
    static std::set<std::string>* warned = nullptr;
    const std::lock_guard<std::mutex> lock(mu);
    if (warned == nullptr) warned = new std::set<std::string>();
    if (warned->insert(legacy).second) {
      std::fprintf(stderr,
                   "[distbfs WARN] %s is deprecated; use %s instead\n",
                   legacy.c_str(), preferred.c_str());
    }
  }
  return raw;
}

std::int64_t project_env_int(const char* suffix, std::int64_t fallback) {
  const char* raw = project_env(suffix);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

bool project_env_flag(const char* suffix) {
  return flag_value(project_env(suffix));
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

bool env_flag(const char* name) {
  return flag_value(std::getenv(name));
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string{raw};
}

int bench_scale(int dflt) {
  if (project_env_flag("FAST")) dflt = std::max(10, dflt - 4);
  return static_cast<int>(project_env_int("SCALE", dflt));
}

std::vector<std::pair<int, double>> parse_rank_factors(
    const std::string& spec) {
  std::vector<std::pair<int, double>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      throw std::invalid_argument("expected rank:factor, got '" + item + "'");
    }
    char* end = nullptr;
    const std::string rank_text = item.substr(0, colon);
    const long rank = std::strtol(rank_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      throw std::invalid_argument("bad rank in '" + item + "'");
    }
    const std::string factor_text = item.substr(colon + 1);
    end = nullptr;
    const double factor = std::strtod(factor_text.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw std::invalid_argument("bad factor in '" + item + "'");
    }
    out.emplace_back(static_cast<int>(rank), factor);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace dbfs::util
