#include "util/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace dbfs::util {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  const std::string_view v{raw};
  return !v.empty() && v != "0" && v != "false" && v != "FALSE";
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string{raw};
}

int bench_scale(int dflt) {
  if (env_flag("BFSSIM_FAST")) dflt = std::max(10, dflt - 4);
  return static_cast<int>(env_int("BFSSIM_SCALE", dflt));
}

}  // namespace dbfs::util
