// Minimal JSON document model + recursive-descent parser for the
// machine-readable artifacts the project itself emits (BENCH_*.json
// records, report JSON). This is a reader for our own well-formed,
// flat-ish schemas — not a general-purpose JSON library: numbers are
// doubles, objects are ordered maps, and errors throw JsonError naming
// the byte offset. The writers stay hand-rolled (report_json.cpp,
// bench_record.cpp) so the serialization remains dependency-free and
// byte-stable.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dbfs::util {

struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;               ///< kArray
  std::map<std::string, JsonValue> members;   ///< kObject

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  bool has(const std::string& key) const {
    return members.find(key) != members.end();
  }
  /// Member access; throws JsonError when the key is absent or this is
  /// not an object.
  const JsonValue& at(const std::string& key) const;

  /// Typed accessors; throw JsonError on kind mismatch.
  double as_number() const;
  std::int64_t as_int() const;  ///< number, truncated toward zero
  bool as_bool() const;
  const std::string& as_string() const;

  /// at(key) with a fallback when the key is absent (kind mismatch on a
  /// present key still throws — a wrong type is a schema bug, not an
  /// optional field).
  double number_or(const std::string& key, double fallback) const;
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
};

/// Parse one JSON document; trailing non-whitespace content is an error.
JsonValue parse_json(const std::string& text);

}  // namespace dbfs::util
