#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace dbfs::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

ArgParser& ArgParser::describe(const std::string& key, const std::string& help,
                               const std::string& default_text) {
  descriptions_.push_back({key, help, default_text});
  return *this;
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : static_cast<std::int64_t>(v);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

bool ArgParser::get_flag(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second.empty() || (it->second != "0" && it->second != "false");
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    const bool described =
        std::any_of(descriptions_.begin(), descriptions_.end(),
                    [&](const Description& d) { return d.key == key; });
    if (!described) unknown.push_back(key);
  }
  return unknown;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [options]\n";
  for (const auto& d : descriptions_) {
    out << "  --" << d.key;
    if (!d.default_text.empty()) out << " (default: " << d.default_text << ")";
    out << "\n      " << d.help << "\n";
  }
  return out.str();
}

}  // namespace dbfs::util
