// Deterministic, fast pseudo-random number generation for graph
// generation and experiment seeding.
//
// We avoid <random> engines for the hot generator paths: R-MAT generation
// draws billions of variates and mersenne twister state is needlessly
// large. xoshiro256** is the generator used by several Graph500
// implementations' generators and has good statistical quality for this
// purpose. splitmix64 is used to expand a single user seed into full
// generator state (the construction recommended by the xoshiro authors).
#pragma once

#include <cstdint>

namespace dbfs::util {

/// Single-pass seed expander; also usable as a cheap hash of 64-bit keys.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (e.g. for hashing vertex ids).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to the rejection-free 128-bit multiply).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Jump the stream by a fixed large stride so parallel generators drawing
  /// from the same seed never overlap (per-rank streams in the simulator).
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        operator()();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dbfs::util
