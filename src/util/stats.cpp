#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dbfs::util {

namespace {

double interp_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  // Small-sample tail contract (see stats.hpp): n samples cannot resolve
  // a quantile beyond rank n-1, i.e. whenever n < 1/(1-q) the
  // interpolation point q*(n-1) already sits inside the top interval and
  // the "percentile" is really the max plus interpolation noise from the
  // second-largest sample. Return the max exactly instead, so p999 on a
  // 5-rep BENCH sample is deterministic and bench_doctor never blames a
  // regression on tail jitter the sample cannot express.
  const double n = static_cast<double>(sorted.size());
  if (q > 0.0 && n * (1.0 - q) < 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  if (samples.size() == 1) {
    // Explicit degenerate case (see header contract): one sample IS every
    // order statistic, with zero spread.
    const double x = samples.front();
    s.count = 1;
    s.min = s.max = s.mean = s.median = s.p25 = s.p75 = s.p95 = s.p99 =
        s.p999 = x;
    s.harmonic_mean = x == 0.0 ? 0.0 : x;
    s.stddev = 0.0;
    return s;
  }
  s.count = samples.size();

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = interp_sorted(sorted, 0.5);
  s.p25 = interp_sorted(sorted, 0.25);
  s.p75 = interp_sorted(sorted, 0.75);
  s.p95 = interp_sorted(sorted, 0.95);
  s.p99 = interp_sorted(sorted, 0.99);
  s.p999 = interp_sorted(sorted, 0.999);

  double sum = 0.0;
  double recip_sum = 0.0;
  bool has_zero = false;
  for (double x : sorted) {
    sum += x;
    if (x == 0.0) {
      has_zero = true;
    } else {
      recip_sum += 1.0 / x;
    }
  }
  const auto n = static_cast<double>(s.count);
  s.mean = sum / n;
  s.harmonic_mean = (has_zero || recip_sum == 0.0) ? 0.0 : n / recip_sum;

  double sq = 0.0;
  for (double x : sorted) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / n);
  return s;
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return interp_sorted(samples, std::clamp(q, 0.0, 1.0));
}

double imbalance(std::span<const double> samples) {
  if (samples.empty()) return 1.0;
  double sum = 0.0;
  double max = 0.0;
  for (double x : samples) {
    sum += x;
    max = std::max(max, x);
  }
  if (sum <= 0.0) return 1.0;
  return max * static_cast<double>(samples.size()) / sum;
}

}  // namespace dbfs::util
