// Minimal command-line flag parser for the example tools: supports
// "--key value", "--key=value", "--flag" booleans, and positional
// arguments, with typed accessors and generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbfs::util {

class ArgParser {
 public:
  /// `argv`-style input; argv[0] is taken as the program name.
  ArgParser(int argc, const char* const* argv);

  /// Declare an option (for usage text); returns *this for chaining.
  ArgParser& describe(const std::string& key, const std::string& help,
                      const std::string& default_text = "");

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were passed but never `describe`d (likely typos).
  std::vector<std::string> unknown_keys() const;

  std::string usage() const;
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;

  struct Description {
    std::string key;
    std::string help;
    std::string default_text;
  };
  std::vector<Description> descriptions_;
};

}  // namespace dbfs::util
