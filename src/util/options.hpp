// Environment-variable driven knobs shared by benches and examples, so a
// single binary can be re-run at larger scale without a rebuild:
//
//   BFSSIM_SCALE=20 ./bench/fig5_strong_scaling_franklin
//   BFSSIM_FAST=1   ctest          (shrinks everything for smoke runs)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dbfs::util {

/// Read an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a floating-point environment variable with a fallback.
double env_double(const char* name, double fallback);

/// True when the variable is set to anything other than "", "0", "false".
bool env_flag(const char* name);

/// Read a string environment variable with a fallback.
std::string env_str(const char* name, const std::string& fallback);

/// Problem scale for benches: log2 of the vertex count. Honors
/// BFSSIM_SCALE; `dflt` applies otherwise, halved-ish under BFSSIM_FAST.
int bench_scale(int dflt);

/// Parse "rank:factor[,rank:factor...]" lists — the spelling of the
/// --straggler / --degrade-nic CLI flags. Empty input yields an empty
/// list; malformed entries throw std::invalid_argument naming the
/// offending piece.
std::vector<std::pair<int, double>> parse_rank_factors(
    const std::string& spec);

}  // namespace dbfs::util
