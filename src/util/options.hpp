// Environment-variable driven knobs shared by benches and examples, so a
// single binary can be re-run at larger scale without a rebuild:
//
//   DISTBFS_SCALE=20 ./bench/fig5_strong_scaling_franklin
//   DISTBFS_FAST=1   ctest          (shrinks everything for smoke runs)
//
// The project prefix is DISTBFS_ (matching the DISTBFS_SANITIZE CMake
// option); the historical BFSSIM_ spellings are accepted as deprecated
// aliases with a one-time warning.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dbfs::util {

/// Read an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a floating-point environment variable with a fallback.
double env_double(const char* name, double fallback);

/// True when the variable is set to anything other than "", "0", "false".
bool env_flag(const char* name);

/// Read a string environment variable with a fallback.
std::string env_str(const char* name, const std::string& fallback);

/// Resolve a project knob by suffix: DISTBFS_<suffix> wins; the
/// deprecated BFSSIM_<suffix> alias is honored with a one-time stderr
/// warning per suffix. Returns nullptr when neither is set. The pointer
/// comes from getenv and follows its lifetime rules.
const char* project_env(const char* suffix);

/// project_env + the env_int/env_flag parsing rules.
std::int64_t project_env_int(const char* suffix, std::int64_t fallback);
bool project_env_flag(const char* suffix);

/// Problem scale for benches: log2 of the vertex count. Honors
/// DISTBFS_SCALE; `dflt` applies otherwise, halved-ish under
/// DISTBFS_FAST.
int bench_scale(int dflt);

/// Parse "rank:factor[,rank:factor...]" lists — the spelling of the
/// --straggler / --degrade-nic CLI flags. Empty input yields an empty
/// list; malformed entries throw std::invalid_argument naming the
/// offending piece.
std::vector<std::pair<int, double>> parse_rank_factors(
    const std::string& spec);

}  // namespace dbfs::util
