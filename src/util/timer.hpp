// Wall-clock timing helpers used by benchmarks and the real (host-side)
// kernels. Simulated time lives in model/clocks.hpp, not here.
#pragma once

#include <chrono>

namespace dbfs::util {

/// Monotonic stopwatch returning seconds as double.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (per-phase totals).
class AccumTimer {
 public:
  void start() noexcept { timer_.reset(); }
  void stop() noexcept { total_ += timer_.elapsed(); }
  double total() const noexcept { return total_; }
  void clear() noexcept { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace dbfs::util
