// Minimal leveled logging to stderr. Benches keep stdout clean for table
// rows; diagnostics go through here and can be silenced with
// DISTBFS_QUIET=1 or amplified with DISTBFS_VERBOSE=1 (the BFSSIM_
// spellings remain as deprecated aliases).
#pragma once

#include <sstream>
#include <string>

namespace dbfs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Current threshold; messages below it are dropped.
LogLevel log_threshold();

void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace dbfs::util
