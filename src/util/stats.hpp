// Small descriptive-statistics helpers for benchmark reporting.
//
// The Graph500 rules report the harmonic mean of TEPS over the sampled
// sources (equivalently: total edges / total time), plus quartiles; we
// provide those here so every bench prints consistent summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dbfs::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;          ///< arithmetic mean
  double harmonic_mean = 0.0; ///< 0 when any sample is 0
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;           ///< tail percentiles for skew/straggler
  double p99 = 0.0;           ///< reporting (wait-time distributions)
  double p999 = 0.0;          ///< extreme tail (SLO-style reporting)
  double stddev = 0.0;        ///< population standard deviation
};

/// Full summary of a sample set. Input need not be sorted.
///
/// Degenerate inputs are well-defined (relied on by the bench harness and
/// covered by tests/test_stats.cpp):
///  * empty input  -> all-zero Summary (count 0);
///  * single value -> every order statistic (min/max/median/p25..p999)
///    equals that value, mean == harmonic_mean == the value (0 input
///    gives harmonic_mean 0, per the any-zero rule), stddev == 0;
///  * small-sample tails: a quantile q is resolvable only when
///    n >= 1/(1-q). Below that (p95 under 20 samples, p99 under 100,
///    p999 under 1000 — including the >=5-rep BENCH records) the
///    interpolation point lies inside the top interval, so the percentile
///    is clamped to exactly the max rather than "max plus interpolation
///    noise from the second-largest sample". This keeps small-n tail
///    statistics deterministic for the bench_diff / bench_doctor gates.
Summary summarize(std::span<const double> samples);

/// Interpolated percentile (q in [0,1]) of an unsorted sample set.
/// Empty input yields 0; a single sample is returned for every q; tail
/// quantiles unresolvable at the sample size (n < 1/(1-q)) return the
/// max exactly — see the summarize() small-sample contract above.
double percentile(std::vector<double> samples, double q);

/// Load-imbalance factor: max over arithmetic mean, the convention used
/// throughout the bench harness and BENCH_*.json records (1.0 = perfectly
/// balanced; the paper's Fig 4 "idle ~3-4x transfer" ratios are this
/// statistic over per-rank MPI seconds). Degenerate inputs — empty set,
/// single sample, or non-positive sum (all-zero loads) — define a
/// balanced system and return exactly 1.0.
double imbalance(std::span<const double> samples);

}  // namespace dbfs::util
