// Small descriptive-statistics helpers for benchmark reporting.
//
// The Graph500 rules report the harmonic mean of TEPS over the sampled
// sources (equivalently: total edges / total time), plus quartiles; we
// provide those here so every bench prints consistent summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dbfs::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;          ///< arithmetic mean
  double harmonic_mean = 0.0; ///< 0 when any sample is 0
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;           ///< tail percentiles for skew/straggler
  double p99 = 0.0;           ///< reporting (wait-time distributions)
  double stddev = 0.0;        ///< population standard deviation
};

/// Full summary of a sample set. Input need not be sorted; empty input
/// yields a zeroed Summary.
Summary summarize(std::span<const double> samples);

/// Interpolated percentile (q in [0,1]) of an unsorted sample set.
double percentile(std::vector<double> samples, double q);

/// max/mean ratio, the load-imbalance factor used throughout the bench
/// harness (1.0 = perfectly balanced). Returns 1.0 for empty/zero input.
double imbalance(std::span<const double> samples);

}  // namespace dbfs::util
