#include "util/log.hpp"

#include <cstdio>
#include <mutex>

#include "util/options.hpp"

namespace dbfs::util {

LogLevel log_threshold() {
  // project_env resolves DISTBFS_QUIET / DISTBFS_VERBOSE with the
  // deprecated BFSSIM_ aliases; it warns via plain fprintf, never through
  // log_message, so this static initialization cannot re-enter itself.
  static const LogLevel threshold = [] {
    if (project_env_flag("QUIET")) return LogLevel::kError;
    if (project_env_flag("VERBOSE")) return LogLevel::kDebug;
    return LogLevel::kInfo;
  }();
  return threshold;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  static std::mutex mu;
  static const char* const kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[distbfs %s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace dbfs::util
