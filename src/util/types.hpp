// Project-wide scalar type aliases.
//
// The paper uses 64-bit vertex identifiers throughout (§4.1); we do the
// same so the code would actually scale to the billions-of-vertices
// instances the paper runs, even though the bundled experiments are
// smaller.
#pragma once

#include <cstdint>

namespace dbfs {

/// Vertex identifier. Signed so that -1 can mean "unreachable / no parent"
/// exactly as the Graph500 specification's parent array does.
using vid_t = std::int64_t;

/// Edge count / offset type.
using eid_t = std::int64_t;

/// Sentinel parent/distance for unvisited vertices.
inline constexpr vid_t kNoVertex = -1;

/// BFS level type; -1 means unreachable.
using level_t = std::int64_t;
inline constexpr level_t kUnreached = -1;

}  // namespace dbfs
