#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace dbfs::util {

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::kObject) {
    throw JsonError("json: member lookup '" + key + "' on a non-object");
  }
  auto it = members.find(key);
  if (it == members.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) throw JsonError("json: expected a number");
  return number;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw JsonError("json: expected a bool");
  return boolean;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw JsonError("json: expected a string");
  return text;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_number() : fallback;
}

std::int64_t JsonValue::int_or(const std::string& key,
                               std::int64_t fallback) const {
  return has(key) ? at(key).as_int() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return JsonValue{};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Our writers only escape control characters; anything in the
            // BMP below 0x80 maps straight to one byte, the rest is kept
            // as a replacement '?' (we never emit it).
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members[std::move(key)] = value();
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace dbfs::util
