// Volume-profile pricing: the large-concurrency extrapolation path.
//
// The per-level traversal volumes of a BFS — frontier sizes, edges
// scanned, distinct vertices touched — are properties of (graph, source)
// and do not depend on the process count. We measure them once with a
// host-side sweep, then price any (algorithm, machine, core count)
// configuration with the paper's §5 cost model, assuming the random
// shuffle's balance (a measured imbalance factor λ is applied).
//
// This is how the benches reach the paper's 10K-40K core operating
// points (Figs 7, 8) that the functional simulator cannot hold in
// memory for the 1D algorithm; functional and priced paths are
// cross-checked against each other in tests at small core counts.
#pragma once

#include <vector>

#include "bfs/bfs1d.hpp"
#include "graph/csr_graph.hpp"
#include "model/machine.hpp"
#include "sparse/spmsv.hpp"
#include "util/types.hpp"

namespace dbfs::core {

struct LevelVolume {
  vid_t frontier = 0;       ///< |FS| entering the level
  eid_t edges_scanned = 0;  ///< adjacencies out of the frontier
  vid_t touched = 0;        ///< distinct vertices adjacent to the frontier
  vid_t newly_visited = 0;
};

struct VolumeProfile {
  vid_t n = 0;
  eid_t m = 0;              ///< symmetrized adjacency count (CSR edges)
  std::vector<LevelVolume> levels;
  /// max/mean per-rank load factor under the shuffle; applied to every
  /// per-rank quantity when pricing.
  double imbalance = 1.1;

  /// Measure the profile with one host-side BFS from `source`.
  static VolumeProfile measure(const graph::CsrGraph& g, vid_t source);
};

struct PricedRun {
  double total_seconds = 0;
  double comp_seconds = 0;
  double comm_seconds = 0;
  double a2a_seconds = 0;        ///< fold / 1D exchange
  double ag_seconds = 0;         ///< expand (allgather)
  double transpose_seconds = 0;
  double allreduce_seconds = 0;
  int cores_used = 0;
};

struct Price1DOptions {
  int cores = 1024;
  int threads_per_rank = 1;
  bfs::CommMode comm_mode = bfs::CommMode::kAlltoallv;
  std::size_t chunk_bytes = 16 * 1024;
  double extra_per_edge_seconds = 0.0;
  double per_peer_level_seconds = 0.0;  ///< see Bfs1DOptions
};

PricedRun price_1d(const VolumeProfile& profile,
                   const model::MachineModel& machine,
                   const Price1DOptions& opts);

struct Price2DOptions {
  int cores = 1024;
  int threads_per_rank = 1;
  sparse::SpmsvBackend backend = sparse::SpmsvBackend::kAuto;
};

PricedRun price_2d(const VolumeProfile& profile,
                   const model::MachineModel& machine,
                   const Price2DOptions& opts);

}  // namespace dbfs::core
