#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

#include "bfs/baseline_graph500.hpp"
#include "bfs/baseline_pbgl.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/bfs2d.hpp"
#include "bfs/serial.hpp"
#include "bfs/shared.hpp"
#include "graph/validator.hpp"
#include "obs/comm_atlas.hpp"

namespace dbfs::core {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kSerial:
      return "serial";
    case Algorithm::kShared:
      return "shared";
    case Algorithm::kOneDFlat:
      return "1d-flat";
    case Algorithm::kOneDHybrid:
      return "1d-hybrid";
    case Algorithm::kTwoDFlat:
      return "2d-flat";
    case Algorithm::kTwoDHybrid:
      return "2d-hybrid";
    case Algorithm::kGraph500Ref:
      return "graph500-ref";
    case Algorithm::kPbglLike:
      return "pbgl-like";
  }
  return "?";
}

bool is_distributed(Algorithm a) {
  return a != Algorithm::kSerial && a != Algorithm::kShared;
}

int default_threads_per_rank(const model::MachineModel& machine) {
  // One NUMA domain per rank: 6-way on 24-core Hopper nodes, 4-way on
  // quad-core Franklin nodes, and likewise for other machines.
  return machine.cores_per_node >= 24 ? 6
         : machine.cores_per_node >= 4 ? 4
                                       : machine.cores_per_node;
}

struct Engine::Impl {
  EngineOptions opts;
  vid_t n;
  graph::EdgeList edges;  // kept for validation-side CSR build
  std::unique_ptr<bfs::Bfs1D> one_d;
  std::unique_ptr<bfs::Bfs2D> two_d;
  std::unique_ptr<graph::CsrGraph> csr;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::FlightRecorder> flight;
  std::unique_ptr<obs::CommAtlas> atlas;

  Impl(const graph::EdgeList& input, vid_t num_vertices, EngineOptions options)
      : opts(std::move(options)), n(num_vertices), edges(input) {
    int threads = opts.threads_per_rank;
    const bool hybrid = opts.algorithm == Algorithm::kOneDHybrid ||
                        opts.algorithm == Algorithm::kTwoDHybrid;
    if (threads <= 0) {
      threads = hybrid ? default_threads_per_rank(opts.machine) : 1;
    }
    if (!hybrid && is_distributed(opts.algorithm)) threads = 1;
    opts.threads_per_rank = threads;

    if (is_distributed(opts.algorithm)) {
      if (opts.trace) tracer = std::make_unique<obs::Tracer>();
      if (opts.metrics) metrics = std::make_unique<obs::MetricsRegistry>();
      if (opts.atlas) atlas = std::make_unique<obs::CommAtlas>();
      // The flight recorder is always on for distributed runs: a bounded
      // ring the error paths can dump post mortem. It is passive, so the
      // run and its report are byte-identical with or without it.
      flight = std::make_unique<obs::FlightRecorder>();
    }

    switch (opts.algorithm) {
      case Algorithm::kSerial:
      case Algorithm::kShared:
        ensure_csr();
        break;
      case Algorithm::kOneDFlat:
      case Algorithm::kOneDHybrid: {
        bfs::Bfs1DOptions o;
        o.ranks = std::max(1, opts.cores / threads);
        o.threads_per_rank = threads;
        o.machine = opts.machine;
        o.wire_format = opts.wire_format;
        o.load_smoothing = opts.load_smoothing;
        o.faults = opts.faults;
        o.recover = opts.recover;
        o.tracer = tracer.get();
        o.metrics = metrics.get();
        o.flight = flight.get();
        o.atlas = atlas.get();
        one_d = std::make_unique<bfs::Bfs1D>(edges, n, std::move(o));
        break;
      }
      case Algorithm::kTwoDFlat:
      case Algorithm::kTwoDHybrid: {
        bfs::Bfs2DOptions o;
        o.cores = opts.cores;
        o.threads_per_rank = threads;
        o.machine = opts.machine;
        o.backend = opts.backend;
        o.vector_dist = opts.vector_dist;
        o.triangular_storage = opts.triangular_storage;
        o.wire_format = opts.wire_format;
        o.load_smoothing = opts.load_smoothing;
        o.faults = opts.faults;
        o.recover = opts.recover;
        o.tracer = tracer.get();
        o.metrics = metrics.get();
        o.flight = flight.get();
        o.atlas = atlas.get();
        o.direction = opts.direction;
        o.alpha = opts.alpha;
        o.beta = opts.beta;
        two_d = std::make_unique<bfs::Bfs2D>(edges, n, std::move(o));
        break;
      }
      case Algorithm::kGraph500Ref: {
        bfs::Graph500RefOptions g;
        g.ranks = opts.cores;
        g.machine = opts.machine;
        auto o = bfs::graph500_reference_options(g);
        o.faults = opts.faults;
        o.tracer = tracer.get();
        o.metrics = metrics.get();
        o.flight = flight.get();
        o.atlas = atlas.get();
        one_d = std::make_unique<bfs::Bfs1D>(edges, n, std::move(o));
        break;
      }
      case Algorithm::kPbglLike: {
        bfs::PbglLikeOptions g;
        g.ranks = opts.cores;
        g.machine = opts.machine;
        auto o = bfs::pbgl_like_options(g);
        o.faults = opts.faults;
        o.tracer = tracer.get();
        o.metrics = metrics.get();
        o.flight = flight.get();
        o.atlas = atlas.get();
        one_d = std::make_unique<bfs::Bfs1D>(edges, n, std::move(o));
        break;
      }
    }
  }

  void ensure_csr() {
    if (!csr) {
      csr = std::make_unique<graph::CsrGraph>(
          graph::CsrGraph::from_edges(edges));
    }
  }
};

Engine::Engine(const graph::EdgeList& edges, vid_t n, EngineOptions opts)
    : impl_(std::make_unique<Impl>(edges, n, std::move(opts))) {
  if (n < 1) throw std::invalid_argument("Engine: empty graph");
}

Engine::~Engine() = default;

const EngineOptions& Engine::options() const { return impl_->opts; }

int Engine::cores_used() const {
  if (impl_->two_d) return impl_->two_d->cores_used();
  if (impl_->one_d) {
    return impl_->one_d->ranks() * impl_->opts.threads_per_rank;
  }
  return 1;
}

obs::Tracer* Engine::tracer() const { return impl_->tracer.get(); }

obs::MetricsRegistry* Engine::metrics() const { return impl_->metrics.get(); }

obs::CommAtlas* Engine::comm_atlas() const { return impl_->atlas.get(); }

obs::FlightRecorder* Engine::flight_recorder() const {
  return impl_->flight.get();
}

const graph::CsrGraph& Engine::csr() const {
  impl_->ensure_csr();
  return *impl_->csr;
}

bfs::BfsOutput Engine::run(vid_t source) {
  Impl& im = *impl_;
  switch (im.opts.algorithm) {
    case Algorithm::kSerial:
      im.ensure_csr();
      return bfs::serial_bfs(*im.csr, source);
    case Algorithm::kShared: {
      im.ensure_csr();
      return bfs::shared_bfs(*im.csr, source).out;
    }
    default:
      break;
  }
  if (im.one_d) return im.one_d->run(source);
  return im.two_d->run(source);
}

BatchResult Engine::run_batch(std::span<const vid_t> sources,
                              eid_t edge_denominator,
                              const BatchOptions& batch_options) {
  BatchResult batch;
  std::vector<double> teps_samples;
  double time_sum = 0.0;
  for (vid_t source : sources) {
    bfs::BfsOutput out = run(source);
    if (batch_options.validate) {
      const auto validation =
          graph::validate_bfs_tree(csr(), source, out.parent);
      if (validation.ok) {
        ++batch.validated;
      } else {
        ++batch.failed;
        if (batch.first_error.empty()) {
          batch.first_error = validation.error;
          batch.first_error_check = validation.failed_check;
          batch.first_error_vertex = validation.sample_vertex;
        }
      }
    }
    teps_samples.push_back(out.report.teps(edge_denominator));
    time_sum += out.report.total_seconds;
    batch.reports.push_back(std::move(out.report));
  }
  batch.teps = util::summarize(teps_samples);
  batch.harmonic_mean_teps = batch.teps.harmonic_mean;
  batch.mean_seconds =
      sources.empty() ? 0.0 : time_sum / static_cast<double>(sources.size());
  return batch;
}

}  // namespace dbfs::core
