// TEPS ("traversed edges per second") accounting per the Graph 500 rules
// and paper §6: times are normalized by the *directed* edge count of the
// input graph; per-source rates are aggregated with the harmonic mean
// (equivalently, total edges over total time).
#pragma once

#include <span>

#include "bfs/report.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace dbfs::core {

struct TepsStats {
  util::Summary samples;     ///< per-source TEPS distribution
  double harmonic_mean = 0;  ///< the Graph500 headline number
  double gteps = 0;          ///< harmonic mean / 1e9
  double mean_seconds = 0;   ///< mean per-source search time
};

TepsStats compute_teps(std::span<const bfs::RunReport> reports,
                       eid_t edge_denominator);

}  // namespace dbfs::core
