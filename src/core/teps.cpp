#include "core/teps.hpp"

#include <vector>

namespace dbfs::core {

TepsStats compute_teps(std::span<const bfs::RunReport> reports,
                       eid_t edge_denominator) {
  TepsStats stats;
  std::vector<double> samples;
  double seconds = 0.0;
  for (const auto& r : reports) {
    samples.push_back(r.teps(edge_denominator));
    seconds += r.total_seconds;
  }
  stats.samples = util::summarize(samples);
  stats.harmonic_mean = stats.samples.harmonic_mean;
  stats.gteps = stats.harmonic_mean / 1e9;
  stats.mean_seconds =
      reports.empty() ? 0.0 : seconds / static_cast<double>(reports.size());
  return stats;
}

}  // namespace dbfs::core
