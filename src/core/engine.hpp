// Public facade of the library: pick an algorithm, a simulated machine,
// and a core count; run validated BFS with full per-level instrumentation.
//
//   using namespace dbfs;
//   auto built = graph::build_graph(graph::generate_rmat({.scale = 16}));
//   core::Engine engine(built.edges, built.csr.num_vertices(),
//                       {.algorithm = core::Algorithm::kTwoDHybrid,
//                        .cores = 1024,
//                        .machine = model::hopper()});
//   auto run = engine.run(source);
//   auto batch = engine.run_batch(sources, built.directed_edge_count);
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bfs/bfs2d.hpp"
#include "bfs/report.hpp"
#include "comm/wire_format.hpp"
#include "dist/vector_dist.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "model/machine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recover/checkpoint.hpp"
#include "simmpi/fault.hpp"
#include "sparse/spmsv.hpp"
#include "util/stats.hpp"

namespace dbfs::core {

enum class Algorithm {
  kSerial,       ///< Algorithm 1, host execution
  kShared,       ///< intra-node OpenMP BFS, host execution
  kOneDFlat,     ///< Algorithm 2, flat MPI (one rank per core)
  kOneDHybrid,   ///< Algorithm 2 + t-way threading per rank
  kTwoDFlat,     ///< Algorithm 3, flat MPI
  kTwoDHybrid,   ///< Algorithm 3 + t-way threading per rank
  kGraph500Ref,  ///< baseline: reference MPI code behavior
  kPbglLike,     ///< baseline: PBGL behavior
};

const char* to_string(Algorithm a);
bool is_distributed(Algorithm a);

struct EngineOptions {
  Algorithm algorithm = Algorithm::kTwoDFlat;
  /// Total simulated cores. Flat algorithms use one rank per core; hybrid
  /// ones use cores/threads_per_rank ranks.
  int cores = 16;
  /// 0 = pick the machine's natural threading degree for hybrid
  /// algorithms (4 on Franklin, 6 on Hopper, per §6), 1 forced for flat.
  int threads_per_rank = 0;
  model::MachineModel machine = model::generic();
  sparse::SpmsvBackend backend = sparse::SpmsvBackend::kAuto;
  dist::VectorDistKind vector_dist = dist::VectorDistKind::kTwoD;
  /// §7 triangular storage for the 2D algorithms (see
  /// bfs::Bfs2DOptions::triangular_storage).
  bool triangular_storage = false;
  /// Wire format for the distributed exchanges (sender-side visited sieve
  /// + bitmap/varint payload compression; see comm/wire_format.hpp).
  /// Applies to the 1D alltoallv and the 2D fold/expand; kRaw (default)
  /// preserves the legacy byte-for-byte paths and reports. The baselines
  /// (kGraph500Ref, kPbglLike) always ship raw structs — that is the
  /// behavior they model.
  comm::WireFormat wire_format = comm::WireFormat::kRaw;
  /// Statistical load smoothing for compute pricing (see
  /// bfs::Bfs1DOptions::load_smoothing); 1 = the balanced regime of the
  /// paper's §5 model, 0 = exact per-rank volumes.
  double load_smoothing = 1.0;
  /// Deterministic fault injection for the distributed algorithms
  /// (stragglers, degraded NICs, transient collective failures, payload
  /// corruption); see simmpi/fault.hpp. Ignored by kSerial/kShared. A
  /// run whose corruption cannot be repaired within the retry budget
  /// throws simmpi::FaultError rather than returning a wrong tree.
  simmpi::FaultPlan faults;
  /// Fail-stop recovery for the 1D/2D algorithms: checkpoint cadence and
  /// shrink-vs-spare policy (see recover/checkpoint.hpp). Ignored by
  /// kSerial/kShared and the baselines (the codes they model have no
  /// recovery story). With no rank kills scheduled this is inert: the
  /// run and its report stay bit-identical.
  recover::RecoverOptions recover;
  /// Attach the virtual-time tracer / metrics registry (src/obs/) to the
  /// distributed algorithms. Observers are passive — a traced run's
  /// outputs and report are identical to an untraced one — but each run
  /// overwrites the previous run's recordings (the cluster clears them
  /// with its accounting), so read tracer()/metrics() after the run you
  /// care about. Ignored by kSerial/kShared.
  bool trace = false;
  bool metrics = false;
  /// Attach the per-rank-pair communication atlas (obs/comm_atlas.hpp) to
  /// the distributed algorithms. Passive like the other observers — the
  /// run and its report stay byte-identical — and each run overwrites the
  /// previous run's matrix, so read comm_atlas() after the run you care
  /// about. Ignored by kSerial/kShared.
  bool atlas = false;
  /// Traversal direction for the 2D algorithms (see
  /// bfs::Bfs2DOptions::direction). kTopDown — the default — keeps the
  /// run and its report byte-identical to the pre-hybrid engine; kHybrid
  /// enables the Beamer-style alpha-beta switch. Ignored by every other
  /// algorithm. alpha/beta <= 0 derive the thresholds from the machine
  /// model.
  bfs::DirectionMode direction = bfs::DirectionMode::kTopDown;
  double alpha = 14.0;
  double beta = 24.0;
};

/// Knobs for Engine::run_batch.
struct BatchOptions {
  /// Validate every BFS tree against the graph (Graph500 rules). The
  /// bench harness disables this on repeat noise-model repetitions —
  /// validation is host-side work that does not change the simulated
  /// clocks, so skipping it only saves wall time.
  bool validate = true;
};

/// Graph500-style batch statistics over multiple sources.
struct BatchResult {
  std::vector<bfs::RunReport> reports;
  util::Summary teps;          ///< per-source TEPS sample summary
  double harmonic_mean_teps = 0.0;
  double mean_seconds = 0.0;
  int validated = 0;           ///< sources whose output passed validation
  int failed = 0;
  std::string first_error;     ///< first validation failure, if any
  /// Structured view of the first failure: the invariant identifier and
  /// one offending vertex (see graph::ValidationResult); empty / -1 when
  /// every source validated.
  std::string first_error_check;
  vid_t first_error_vertex = -1;
};

/// The machine's natural hybrid threading degree (paper §6: 4-way on
/// Franklin, 6-way on Hopper = one NUMA die).
int default_threads_per_rank(const model::MachineModel& machine);

class Engine {
 public:
  /// `edges` must already be prepared (shuffled + symmetrized — use
  /// graph::build_graph); `n` is the vertex count.
  Engine(const graph::EdgeList& edges, vid_t n, EngineOptions opts);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  bfs::BfsOutput run(vid_t source);

  /// Run every source, validate each output against the graph (unless
  /// batch_options.validate is off), and aggregate TEPS using
  /// `edge_denominator` (Graph500 counts the original directed edges).
  BatchResult run_batch(std::span<const vid_t> sources,
                        eid_t edge_denominator,
                        const BatchOptions& batch_options = {});

  const EngineOptions& options() const;
  /// Cores actually simulated (2D grids round down to a square).
  int cores_used() const;
  /// The attached observers (null unless the matching EngineOptions flag
  /// was set and the algorithm is distributed). Contents describe the
  /// most recent run().
  obs::Tracer* tracer() const;
  obs::MetricsRegistry* metrics() const;
  /// The attached communication atlas (null unless EngineOptions::atlas
  /// was set and the algorithm is distributed). Holds the most recent
  /// run's per-rank-pair traffic matrix and skew analytics.
  obs::CommAtlas* comm_atlas() const;
  /// The always-on flight recorder (null for kSerial/kShared). Holds the
  /// most recent run's black-box events; dump with
  /// FlightRecorder::write_json on error or on demand.
  obs::FlightRecorder* flight_recorder() const;
  /// CSR view of the prepared graph (built lazily; used for validation).
  const graph::CsrGraph& csr() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dbfs::core
