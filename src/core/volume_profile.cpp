#include "core/volume_profile.hpp"

#include <algorithm>
#include <cmath>

#include "model/cost.hpp"

namespace dbfs::core {

VolumeProfile VolumeProfile::measure(const graph::CsrGraph& g, vid_t source) {
  VolumeProfile profile;
  profile.n = g.num_vertices();
  profile.m = g.num_edges();

  std::vector<level_t> level(static_cast<std::size_t>(profile.n), kUnreached);
  // Stamp array: which level last touched this vertex (for distinct-touch
  // counting without per-level clearing).
  std::vector<level_t> touched_at(static_cast<std::size_t>(profile.n), -1);

  std::vector<vid_t> fs{source};
  std::vector<vid_t> ns;
  level[source] = 0;
  level_t cur = 0;
  while (!fs.empty()) {
    LevelVolume lv;
    lv.frontier = static_cast<vid_t>(fs.size());
    for (vid_t u : fs) {
      for (vid_t v : g.neighbors(u)) {
        ++lv.edges_scanned;
        if (touched_at[v] != cur) {
          touched_at[v] = cur;
          ++lv.touched;
        }
        if (level[v] == kUnreached) {
          level[v] = cur + 1;
          ns.push_back(v);
        }
      }
    }
    lv.newly_visited = static_cast<vid_t>(ns.size());
    profile.levels.push_back(lv);
    fs = std::move(ns);
    ns.clear();
    ++cur;
  }
  return profile;
}

namespace {

double per_rank(double global, int p, double imbalance) {
  return global / static_cast<double>(p) * imbalance;
}

}  // namespace

PricedRun price_1d(const VolumeProfile& profile,
                   const model::MachineModel& machine,
                   const Price1DOptions& opts) {
  PricedRun run;
  const int t = std::max(1, opts.threads_per_rank);
  const int p = std::max(1, opts.cores / t);
  run.cores_used = p * t;
  const double lambda = profile.imbalance;
  const int ranks_per_node = std::max(1, machine.cores_per_node / t);
  const double nic =
      (1.0 + machine.nic_contention *
                 static_cast<double>(ranks_per_node - 1)) /
      static_cast<double>(t);
  const double frac_remote =
      p > 1 ? static_cast<double>(p - 1) / static_cast<double>(p) : 0.0;

  for (const LevelVolume& lv : profile.levels) {
    const double e_r =
        per_rank(static_cast<double>(lv.edges_scanned), p, lambda);

    model::Work1D work;
    work.frontier_vertices =
        static_cast<eid_t>(per_rank(static_cast<double>(lv.frontier), p, lambda));
    work.edges_scanned = static_cast<eid_t>(e_r);
    work.words_packed = static_cast<eid_t>(2.0 * e_r);
    work.candidates_received = static_cast<eid_t>(2.0 * e_r);
    work.newly_visited = static_cast<vid_t>(
        per_rank(static_cast<double>(lv.newly_visited), p, lambda));
    work.n_local = std::max<vid_t>(1, profile.n / p);
    work.threads = t;
    work.extra_per_edge_seconds = opts.extra_per_edge_seconds;
    run.comp_seconds += model::cost_1d_local(machine, work) +
                        model::cost_thread_barriers(machine, t, 4) +
                        static_cast<double>(p) * opts.per_peer_level_seconds;

    // Each scanned edge becomes one 16-byte candidate; a (p-1)/p fraction
    // crosses the network. Per-rank volumes carry the node-sharing
    // factor: 1/t bandwidth ownership x NIC contention (mirrors
    // simmpi::Cluster::nic_factor).
    const auto bytes = static_cast<std::size_t>(
        e_r * 2.0 * model::kWordBytes * frac_remote * nic);
    double exchange;
    switch (opts.comm_mode) {
      case bfs::CommMode::kAlltoallv:
        exchange = model::cost_alltoallv(machine, p, bytes);
        break;
      case bfs::CommMode::kChunkedSends:
      case bfs::CommMode::kPerEdgeSends: {
        // Per-edge mode pays one message per 16-byte candidate (mirrors
        // Bfs1D::Impl::exchange); only the chunked mode coalesces.
        const std::size_t chunk =
            opts.comm_mode == bfs::CommMode::kPerEdgeSends
                ? std::size_t{16}
                : std::max<std::size_t>(16, opts.chunk_bytes);
        // At least one message per active destination; active
        // destinations saturate at p-1 for large frontiers. Send- and
        // receive-side chunks both pay latency, on top of the level's
        // p-way synchronization floor (mirrors Bfs1D::Impl::exchange).
        // Message counts stay fractional: high-diameter levels ship less
        // than one chunk per rank, and truncating here zeroed them out.
        const double dests =
            std::min<double>(p - 1, e_r * frac_remote);
        const double messages = 2.0 * std::max(
            dests, static_cast<double>(bytes) / static_cast<double>(chunk));
        exchange = static_cast<double>(p) * machine.alpha_net +
                   model::cost_chunked_sends(
                       machine, messages, static_cast<double>(bytes), p);
        break;
      }
      default:
        exchange = 0.0;
        break;
    }
    run.a2a_seconds += exchange;
    run.allreduce_seconds += model::cost_allreduce(machine, p, 8);
  }

  run.comm_seconds = run.a2a_seconds + run.allreduce_seconds;
  run.total_seconds = run.comp_seconds + run.comm_seconds;
  return run;
}

PricedRun price_2d(const VolumeProfile& profile,
                   const model::MachineModel& machine,
                   const Price2DOptions& opts) {
  PricedRun run;
  const int t = std::max(1, opts.threads_per_rank);
  const int ranks = std::max(1, opts.cores / t);
  const int s = std::max(1, static_cast<int>(
                                std::sqrt(static_cast<double>(ranks))));
  const int p = s * s;
  run.cores_used = p * t;
  const double lambda = profile.imbalance;
  const int ranks_per_node = std::max(1, machine.cores_per_node / t);
  const double nic =
      (1.0 + machine.nic_contention *
                 static_cast<double>(ranks_per_node - 1)) /
      static_cast<double>(t);
  const double block = std::max(1.0, static_cast<double>(profile.n) /
                                         static_cast<double>(s));

  for (const LevelVolume& lv : profile.levels) {
    const double frontier = static_cast<double>(lv.frontier);
    const double flops_r =
        per_rank(static_cast<double>(lv.edges_scanned), p, lambda);

    // Fold volume: each touched vertex's candidates are spread over the s
    // column blocks; the expected number of blocks hit follows the
    // balls-into-bins form, saturating at one candidate per edge.
    const double touched = std::max(1.0, static_cast<double>(lv.touched));
    const double k = static_cast<double>(lv.edges_scanned) / touched;
    const double blocks_hit =
        static_cast<double>(s) *
        (1.0 - std::pow(1.0 - 1.0 / static_cast<double>(s), k));
    // The balls-into-bins form is evaluated at the *mean* incident-edge
    // count k; 1-(1-1/s)^k is concave in k, so with skewed per-vertex
    // degrees the mean-based estimate overshoots (Jensen). The constant
    // is fit against the functional simulator on R-MAT inputs and
    // verified by bench/diag_model_validation.
    constexpr double kDegreeSkewCorrection = 0.5;
    const double fold_entries =
        std::min(static_cast<double>(lv.edges_scanned),
                 touched * blocks_hit * kDegreeSkewCorrection);
    const double fold_r = per_rank(fold_entries, p, lambda);

    sparse::SpmsvBackend backend = opts.backend;
    if (backend == sparse::SpmsvBackend::kAuto) {
      backend = sparse::choose_backend(static_cast<eid_t>(flops_r),
                                       static_cast<vid_t>(block));
    }

    model::Work2D work;
    work.spmsv_flops = static_cast<eid_t>(flops_r);
    work.x_nnz = static_cast<vid_t>(frontier / s * lambda);
    work.output_nnz = static_cast<vid_t>(fold_r);
    work.fold_received = static_cast<vid_t>(fold_r);
    work.x_dim = static_cast<vid_t>(block);
    work.out_dim = static_cast<vid_t>(block);
    work.n_local = std::max<vid_t>(1, profile.n / p);
    work.heap_backend = backend == sparse::SpmsvBackend::kHeap;
    work.threads = t;
    run.comp_seconds += model::cost_2d_local(machine, work) +
                        model::cost_thread_barriers(machine, t, 4);

    // TransposeVector: pairwise swap of ~F/p entries. Per-rank volumes
    // carry the node-sharing factor (see Cluster::nic_factor).
    run.transpose_seconds += model::cost_p2p(
        machine, static_cast<std::size_t>(per_rank(frontier, p, lambda) *
                                          model::kWordBytes * nic));
    // Expand: every rank in a column ends holding f_{C_j} ≈ F/s entries.
    run.ag_seconds += model::cost_allgatherv(
        machine, s,
        static_cast<std::size_t>(frontier / s * lambda * model::kWordBytes *
                                 nic));
    // Fold: alltoallv over the processor row, 16-byte candidates.
    run.a2a_seconds += model::cost_alltoallv(
        machine, s,
        static_cast<std::size_t>(fold_r * 2.0 * model::kWordBytes * nic));
    run.allreduce_seconds += model::cost_allreduce(machine, p, 8);
  }

  run.comm_seconds = run.a2a_seconds + run.ag_seconds +
                     run.transpose_seconds + run.allreduce_seconds;
  run.total_seconds = run.comp_seconds + run.comm_seconds;
  return run;
}

}  // namespace dbfs::core
