// Exact metering of simulated inter-node traffic, per collective pattern.
// Every byte the algorithms exchange passes through comm.hpp, which
// records it here; benches and EXPERIMENTS.md report these totals.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace dbfs::simmpi {

enum class Pattern : int {
  kAlltoallv = 0,
  kAllgatherv,
  kAllreduce,
  kBroadcast,
  kGatherv,
  kTranspose,
  kPointToPoint,
  kCount,
};

const char* to_string(Pattern p);

struct PatternTotals {
  std::int64_t calls = 0;
  std::uint64_t bytes = 0;     ///< aggregate bytes moved across the network
  double seconds = 0.0;        ///< modelled transfer seconds (excl. waiting)
  /// participants x seconds, summed: divide by the rank count to get the
  /// mean time a rank spends inside this pattern (collectives over
  /// disjoint groups run concurrently, so summing raw seconds would
  /// overcount relative to wall time).
  double rank_seconds = 0.0;
};

class TrafficMeter {
 public:
  void record(Pattern p, std::uint64_t bytes, double seconds,
              int participants) {
    auto& t = totals_[static_cast<std::size_t>(p)];
    ++t.calls;
    t.bytes += bytes;
    t.seconds += seconds;
    t.rank_seconds += seconds * static_cast<double>(participants);
  }

  const PatternTotals& totals(Pattern p) const noexcept {
    return totals_[static_cast<std::size_t>(p)];
  }

  std::uint64_t total_bytes() const noexcept;
  double total_seconds() const noexcept;

  void reset();

  /// Multi-line human-readable summary (used by examples).
  std::string summary() const;

 private:
  std::array<PatternTotals, static_cast<std::size_t>(Pattern::kCount)>
      totals_{};
};

}  // namespace dbfs::simmpi
