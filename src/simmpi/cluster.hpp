// The cluster simulator: p logical ranks with private address spaces,
// per-rank virtual clocks, a machine cost model, and a traffic meter.
//
// BFS is bulk-synchronous, so a superstep simulator is semantically exact
// (see DESIGN.md): algorithms run their per-rank local phases through
// `for_each_rank`, charge modelled compute via `charge_compute`, and move
// data through the collectives in comm.hpp, which price the transfer and
// synchronize the participants' clocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/clocks.hpp"
#include "model/machine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/traffic.hpp"

namespace dbfs::obs {
class CommAtlas;
}

namespace dbfs::simmpi {

class Cluster {
 public:
  /// `threads_per_rank` models hybrid MPI+OpenMP execution: local compute
  /// charges are divided by t·ε(t) by the cost functions, and the caller
  /// should size the grid/partition by ranks = cores / threads_per_rank.
  Cluster(int ranks, model::MachineModel machine, int threads_per_rank = 1);

  int ranks() const noexcept { return ranks_; }
  int threads_per_rank() const noexcept { return threads_per_rank_; }
  /// Total simulated cores (the x-axis of the paper's scaling plots).
  int cores() const noexcept { return ranks_ * threads_per_rank_; }

  const model::MachineModel& machine() const noexcept { return machine_; }
  model::VirtualClocks& clocks() noexcept { return clocks_; }
  const model::VirtualClocks& clocks() const noexcept { return clocks_; }
  TrafficMeter& traffic() noexcept { return traffic_; }
  const TrafficMeter& traffic() const noexcept { return traffic_; }

  /// Run a local phase on every rank. Phases must touch only rank-private
  /// state (enforced by convention; phases run sequentially by default
  /// and in parallel under OpenMP when available, so races would be real).
  void for_each_rank(const std::function<void(int)>& phase) const;

  /// Charge modelled local computation to one rank's clock. A fault plan
  /// with compute stragglers scales the charge by the rank's factor —
  /// the straggler then delays everyone at the next collective, which is
  /// exactly how a slow node hurts a level-synchronous BFS.
  void charge_compute(int rank, double seconds) {
    const double charged = seconds * fault_compute_factor(rank);
    if (tracer_ != nullptr && charged > 0.0) {
      const double begin = clocks_.now(rank);
      tracer_->record(rank, obs::SpanKind::kCompute, compute_phase_, "",
                      begin, begin + charged);
    }
    clocks_.advance_compute(rank, charged);
  }

  /// Attach passive observers (see src/obs/). Either may be null; the
  /// simulated run is bit-identical with or without them — they only
  /// record what already happens. Observer contents are cleared by
  /// reset_accounting so each run reports its own events.
  void set_observers(obs::Tracer* tracer,
                     obs::MetricsRegistry* metrics) noexcept {
    tracer_ = tracer;
    metrics_ = metrics;
    if (tracer_ != nullptr) tracer_->ensure_ranks(ranks_);
  }
  obs::Tracer* tracer() const noexcept { return tracer_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }
  bool observing() const noexcept {
    return tracer_ != nullptr || metrics_ != nullptr;
  }

  /// Attach the always-on flight recorder (see obs/flight_recorder.hpp).
  /// Like the observers it is passive and non-owning; reset_accounting
  /// clears it so each run's dump describes that run alone.
  void set_flight(obs::FlightRecorder* flight) noexcept { flight_ = flight; }
  obs::FlightRecorder* flight() const noexcept { return flight_; }

  /// Attach the per-rank-pair communication atlas (obs/comm_atlas.hpp).
  /// Passive and non-owning like the other observers: the collectives
  /// record pair volumes into it at exactly the TrafficMeter's call
  /// sites, after the clock updates, so attaching one never perturbs a
  /// run. reset_accounting clears its buckets so each run's atlas
  /// describes that run alone.
  void set_atlas(obs::CommAtlas* atlas) noexcept { atlas_ = atlas; }
  obs::CommAtlas* atlas() const noexcept { return atlas_; }

  /// Label applied to subsequent charge_compute spans ("1d-scan",
  /// "2d-spmsv", ...). Must be a static string.
  void set_compute_phase(const char* phase) noexcept {
    compute_phase_ = phase;
  }
  /// Tag subsequent trace records with a BFS level (-1 = outside levels).
  /// Also feeds the fail-stop schedule: level-triggered kills compare
  /// against this, so it is tracked with or without a tracer.
  void set_trace_level(int level) noexcept {
    current_level_ = level;
    if (tracer_ != nullptr) tracer_->set_level(level);
  }
  int current_level() const noexcept { return current_level_; }

  /// Install a fault plan (see simmpi/fault.hpp). Straggler factors must
  /// be positive; entries naming ranks outside the cluster are ignored.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& faults() const noexcept { return faults_; }
  bool faults_enabled() const noexcept { return faults_enabled_; }

  FaultCounters& fault_counters() noexcept { return fault_counters_; }
  const FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

  /// Issue-ordered event index for deterministic fault draws. Reset with
  /// the accounting so every run replays the same fault sequence.
  std::uint64_t next_fault_event() noexcept { return fault_events_++; }

  double fault_compute_factor(int rank) const noexcept {
    return faults_enabled_
               ? fault_compute_factor_[static_cast<std::size_t>(rank)]
               : 1.0;
  }
  double fault_nic_slowdown(int rank) const noexcept {
    return faults_enabled_
               ? fault_nic_slowdown_[static_cast<std::size_t>(rank)]
               : 1.0;
  }
  /// A collective moves at the pace of its worst link.
  double fault_nic_slowdown(std::span<const int> group) const noexcept {
    if (!faults_enabled_) return 1.0;
    double worst = 1.0;
    for (int r : group) {
      worst = std::max(worst,
                       fault_nic_slowdown_[static_cast<std::size_t>(r)]);
    }
    return worst;
  }

  /// Multiplier applied to per-rank network volumes before pricing:
  /// 1/threads (a hybrid rank owns t cores' bandwidth share) times the
  /// NIC-contention penalty of packing many ranks onto one node.
  double nic_factor() const noexcept {
    const int ranks_per_node =
        std::max(1, machine_.cores_per_node / threads_per_rank_);
    return (1.0 + machine_.nic_contention *
                      static_cast<double>(ranks_per_node - 1)) /
           static_cast<double>(threads_per_rank_);
  }

  // ---------- fail-stop faults (see simmpi/fault.hpp, src/recover/) ----

  /// True while a kill is scheduled or a rank is down — the single-branch
  /// gate the collectives consult, so runs without kills pay nothing.
  bool kills_armed() const noexcept { return kills_armed_; }
  bool rank_dead(int rank) const noexcept {
    return !dead_.empty() && dead_[static_cast<std::size_t>(rank)];
  }

  /// Fail-stop check at the head of every collective: if a scheduled kill
  /// is due for a member of `group` (or a member is already down), the
  /// survivors synchronize and pay the detection timeout
  /// (model::cost_failure_detection with the plan's retry/backoff
  /// constants), then RankFailedError is raised — ULFM-style revoke:
  /// every participant learns of the death at the same barrier.
  void check_fail_stop(std::span<const int> group, const char* site);

  /// After recovery handled a death: drop `rank`'s fired kill entries
  /// from the plan without touching counters or the fault-event stream
  /// (later entries keep their draws). Remaining kills are interpreted
  /// against the current communicator's rank numbering.
  void consume_kill(int rank);

  /// Remove and return the at-rest corruption events due after
  /// `levels_completed` BFS levels. Consuming fired flips is what makes
  /// post-rollback replays run clean (see simmpi/fault.hpp), mirroring
  /// consume_kill; entries that never fire stay scheduled.
  std::vector<MemFlip> take_due_flips(int levels_completed);

  /// Return a dead rank to service (spare-promotion path). The caller is
  /// responsible for re-seeding its clock via clocks().seed / a restore
  /// collective.
  void revive_rank(int rank);

  /// Reset clocks and traffic between BFS runs over the same structures.
  void reset_accounting();

 private:
  int ranks_;
  int threads_per_rank_;
  model::MachineModel machine_;
  model::VirtualClocks clocks_;
  TrafficMeter traffic_;

  obs::Tracer* tracer_ = nullptr;            ///< non-owning; null = off
  obs::MetricsRegistry* metrics_ = nullptr;  ///< non-owning; null = off
  obs::FlightRecorder* flight_ = nullptr;    ///< non-owning; null = off
  obs::CommAtlas* atlas_ = nullptr;          ///< non-owning; null = off
  const char* compute_phase_ = "compute";
  int current_level_ = -1;

  FaultPlan faults_;
  bool faults_enabled_ = false;
  FaultCounters fault_counters_;
  std::uint64_t fault_events_ = 0;
  std::vector<double> fault_compute_factor_;  ///< per rank; empty when off
  std::vector<double> fault_nic_slowdown_;
  bool kills_armed_ = false;
  std::vector<char> dead_;  ///< per-rank down flags; empty when clean

  void rearm_kills() noexcept;
};

}  // namespace dbfs::simmpi
