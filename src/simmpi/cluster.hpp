// The cluster simulator: p logical ranks with private address spaces,
// per-rank virtual clocks, a machine cost model, and a traffic meter.
//
// BFS is bulk-synchronous, so a superstep simulator is semantically exact
// (see DESIGN.md): algorithms run their per-rank local phases through
// `for_each_rank`, charge modelled compute via `charge_compute`, and move
// data through the collectives in comm.hpp, which price the transfer and
// synchronize the participants' clocks.
#pragma once

#include <algorithm>
#include <functional>

#include "model/clocks.hpp"
#include "model/machine.hpp"
#include "simmpi/traffic.hpp"

namespace dbfs::simmpi {

class Cluster {
 public:
  /// `threads_per_rank` models hybrid MPI+OpenMP execution: local compute
  /// charges are divided by t·ε(t) by the cost functions, and the caller
  /// should size the grid/partition by ranks = cores / threads_per_rank.
  Cluster(int ranks, model::MachineModel machine, int threads_per_rank = 1);

  int ranks() const noexcept { return ranks_; }
  int threads_per_rank() const noexcept { return threads_per_rank_; }
  /// Total simulated cores (the x-axis of the paper's scaling plots).
  int cores() const noexcept { return ranks_ * threads_per_rank_; }

  const model::MachineModel& machine() const noexcept { return machine_; }
  model::VirtualClocks& clocks() noexcept { return clocks_; }
  const model::VirtualClocks& clocks() const noexcept { return clocks_; }
  TrafficMeter& traffic() noexcept { return traffic_; }
  const TrafficMeter& traffic() const noexcept { return traffic_; }

  /// Run a local phase on every rank. Phases must touch only rank-private
  /// state (enforced by convention; phases run sequentially by default
  /// and in parallel under OpenMP when available, so races would be real).
  void for_each_rank(const std::function<void(int)>& phase) const;

  /// Charge modelled local computation to one rank's clock.
  void charge_compute(int rank, double seconds) {
    clocks_.advance_compute(rank, seconds);
  }

  /// Multiplier applied to per-rank network volumes before pricing:
  /// 1/threads (a hybrid rank owns t cores' bandwidth share) times the
  /// NIC-contention penalty of packing many ranks onto one node.
  double nic_factor() const noexcept {
    const int ranks_per_node =
        std::max(1, machine_.cores_per_node / threads_per_rank_);
    return (1.0 + machine_.nic_contention *
                      static_cast<double>(ranks_per_node - 1)) /
           static_cast<double>(threads_per_rank_);
  }

  /// Reset clocks and traffic between BFS runs over the same structures.
  void reset_accounting();

 private:
  int ranks_;
  int threads_per_rank_;
  model::MachineModel machine_;
  model::VirtualClocks clocks_;
  TrafficMeter traffic_;
};

}  // namespace dbfs::simmpi
