// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan perturbs a run in three orthogonal ways, all fully
// determined by (seed, event index) so two runs of the same configuration
// inject byte-identical fault sequences:
//
//   * per-rank slowdown factors — compute stragglers multiply the time a
//     rank's local phases are charged; NIC degradation multiplies the
//     transfer cost of every collective the rank participates in (the
//     group pays the worst member's link, rooted collectives pay the
//     root's);
//   * transient collective failures — a failed collective costs its full
//     transfer time, then a capped exponential backoff, then a re-issue;
//     all of it lands on the participants' virtual clocks as
//     communication time and in the FaultCounters;
//   * payload corruption — a bit-flip, drop, or duplicate of one item in
//     a data-carrying collective. The checked_* wrappers in comm.hpp
//     detect this with order-independent per-call checksums and re-issue
//     the exchange; an unrecoverable payload raises FaultError so a
//     corrupted BFS can never complete silently wrong.
//
// A default-constructed (zero) plan is inert: every consultation point is
// gated so the unfaulted paths are bit-identical to a build without the
// subsystem.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dbfs::simmpi {

/// How a corrupted payload is mangled. kMix draws one of the three
/// concrete kinds per corruption event.
enum class CorruptKind { kNone, kBitFlip, kDrop, kDuplicate, kMix };

const char* to_string(CorruptKind kind);
/// Parse "bitflip" | "drop" | "dup" | "mix" (CLI spelling); throws
/// std::invalid_argument otherwise.
CorruptKind parse_corrupt_kind(const std::string& name);

/// Structured error raised when a fault exhausts its retry budget: the
/// injection site, the fault kind, and how many attempts were made are
/// preserved so harnesses can assert on *why* a run aborted.
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string site, std::string kind, int attempts);

  const std::string& site() const noexcept { return site_; }
  const std::string& kind() const noexcept { return kind_; }
  int attempts() const noexcept { return attempts_; }

 private:
  std::string site_;
  std::string kind_;
  int attempts_;
};

struct FaultPlan {
  /// Stream selector for every random draw the plan makes. The seed does
  /// not by itself enable anything; rates and straggler lists do.
  std::uint64_t seed = 0;

  /// Probability that one collective issue fails and must be re-issued.
  double collective_fail_rate = 0.0;
  /// Re-issues before the collective is declared dead (FaultError).
  int max_collective_retries = 6;
  /// Backoff before re-issue k is min(cap, base * 2^k).
  double backoff_base_seconds = 1e-4;
  double backoff_cap_seconds = 2e-3;

  /// Probability that a data-carrying collective delivers a corrupted
  /// payload (one item bit-flipped, dropped, or duplicated).
  double corrupt_rate = 0.0;
  CorruptKind corrupt_kind = CorruptKind::kMix;
  /// Re-issues after a checksum mismatch before FaultError.
  int max_payload_retries = 3;

  /// (rank, factor) lists; factor > 1 slows the rank down. Entries for
  /// ranks outside the cluster are ignored (plans are written against a
  /// core count, not a specific grid shape).
  std::vector<std::pair<int, double>> compute_stragglers;
  std::vector<std::pair<int, double>> nic_stragglers;

  /// True when any perturbation is configured; gates every hot path.
  bool enabled() const noexcept;
  bool payload_faults() const noexcept { return corrupt_rate > 0.0; }

  double compute_factor(int rank) const noexcept;
  double nic_slowdown(int rank) const noexcept;

  /// Deterministic draws, keyed by (seed, event index). Events are
  /// numbered by the Cluster in issue order.
  bool collective_fails(std::uint64_t event) const noexcept;
  CorruptKind corruption_at(std::uint64_t event) const noexcept;
  /// Raw 64-bit draw used to pick corruption victims (buffer/item/bit).
  std::uint64_t shape_draw(std::uint64_t event) const noexcept;

  double backoff_seconds(int attempt) const noexcept;
};

/// Per-run fault accounting, reset alongside clocks and traffic.
struct FaultCounters {
  std::int64_t collective_failures = 0;  ///< failed issues injected
  std::int64_t collective_retries = 0;   ///< re-issues that went through
  double backoff_seconds = 0.0;          ///< total backoff waited
  double reissue_seconds = 0.0;          ///< transfer time paid again
  std::int64_t payload_corruptions = 0;  ///< items mangled in flight
  std::int64_t checksum_checks = 0;      ///< checked_* verification rounds
  std::int64_t payload_retries = 0;      ///< exchanges re-issued on mismatch

  void reset() { *this = FaultCounters{}; }
};

}  // namespace dbfs::simmpi
