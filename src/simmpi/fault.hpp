// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan perturbs a run in three orthogonal ways, all fully
// determined by (seed, event index) so two runs of the same configuration
// inject byte-identical fault sequences:
//
//   * per-rank slowdown factors — compute stragglers multiply the time a
//     rank's local phases are charged; NIC degradation multiplies the
//     transfer cost of every collective the rank participates in (the
//     group pays the worst member's link, rooted collectives pay the
//     root's);
//   * transient collective failures — a failed collective costs its full
//     transfer time, then a capped exponential backoff, then a re-issue;
//     all of it lands on the participants' virtual clocks as
//     communication time and in the FaultCounters;
//   * payload corruption — a bit-flip, drop, or duplicate of one item in
//     a data-carrying collective. The checked_* wrappers in comm.hpp
//     detect this with order-independent per-call checksums and re-issue
//     the exchange; an unrecoverable payload raises FaultError so a
//     corrupted BFS can never complete silently wrong;
//   * fail-stop rank kills — a scheduled rank dies permanently at a
//     virtual time or BFS level. The first collective issued on a group
//     containing the dead rank raises RankFailedError (ULFM-style revoke
//     semantics: every survivor learns of the death at the same barrier)
//     after the survivors pay the detection timeout modeled in
//     model::cost_failure_detection. Recovery — shrink to p-1 ranks or
//     promote a hot spare — lives in src/recover/ and the BFS drivers;
//   * at-rest memory corruption (silent data corruption) — a scheduled
//     bit-flip in state *resident* on a rank at a level barrier: the
//     parents or levels shard, the sender-side visited bitmap, the
//     direction-optimization heuristic scalars, or a stored checkpoint
//     replica. Nothing on the wire notices — detection is the job of the
//     ABFT state auditor in src/bfs/audit.* and the self-verifying
//     checkpoint store, which raise AuditFailedError so the drivers can
//     roll back to the newest clean snapshot and replay.
//
// After a shrink, remaining kill entries are interpreted against the
// rebuilt communicator's rank numbering (the plan names logical slots,
// not physical hosts).
//
// A default-constructed (zero) plan is inert: every consultation point is
// gated so the unfaulted paths are bit-identical to a build without the
// subsystem.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dbfs::simmpi {

/// How a corrupted payload is mangled. kMix draws one of the three
/// concrete kinds per corruption event.
enum class CorruptKind { kNone, kBitFlip, kDrop, kDuplicate, kMix };

const char* to_string(CorruptKind kind);
/// Parse "bitflip" | "drop" | "dup" | "mix" (CLI spelling); throws
/// std::invalid_argument otherwise.
CorruptKind parse_corrupt_kind(const std::string& name);

/// Structured error raised when a fault exhausts its retry budget: the
/// injection site, the fault kind, how many attempts were made, and —
/// when known — the rank and BFS level are preserved so harnesses can
/// assert on *why* a run aborted without a trace dump.
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string site, std::string kind, int attempts,
             int rank = -1, int level = -1);

  const std::string& site() const noexcept { return site_; }
  const std::string& kind() const noexcept { return kind_; }
  int attempts() const noexcept { return attempts_; }
  /// Rank the fault is attributed to, or -1 when it hit the whole group.
  int rank() const noexcept { return rank_; }
  /// BFS level in flight when the fault fired, or -1 outside a traversal.
  int level() const noexcept { return level_; }

 protected:
  /// For subclasses that phrase their own what() but keep the fields.
  struct Prebuilt {};
  FaultError(Prebuilt, const std::string& message, std::string site,
             std::string kind, int attempts, int rank, int level);

 private:
  std::string site_;
  std::string kind_;
  int attempts_;
  int rank_;
  int level_;
};

/// Raised by the first collective issued on a group containing a dead
/// rank. Carries the virtual time at which the survivors finished the
/// detection timeout so recovery can resume their clocks from there.
class RankFailedError : public FaultError {
 public:
  RankFailedError(std::string site, int rank, int level,
                  double virtual_time);

  double virtual_time() const noexcept { return virtual_time_; }

 private:
  double virtual_time_;
};

/// Raised when the state auditor (src/bfs/audit.*) or a verified
/// checkpoint restore detects silent data corruption. Carries which
/// invariant broke, a sample offending vertex when one is known, and the
/// virtual time at which the cluster agreed on the verdict so rollback
/// can resume the survivors' clocks from there.
class AuditFailedError : public FaultError {
 public:
  AuditFailedError(std::string site, std::string check, int rank, int level,
                   std::int64_t sample_vertex, double virtual_time);

  /// The invariant that failed ("shard-checksum", "tree-property",
  /// "visited-superset", "dirop-state", "checkpoint-checksum", ...).
  const std::string& check() const noexcept { return check_; }
  /// A vertex witnessing the corruption, or -1 when only aggregate
  /// checksums disagreed.
  std::int64_t sample_vertex() const noexcept { return sample_vertex_; }
  double virtual_time() const noexcept { return virtual_time_; }

 private:
  std::string check_;
  std::int64_t sample_vertex_;
  double virtual_time_;
};

/// One scheduled fail-stop death. Exactly one of at_level / at_time
/// should be >= 0; the kill fires at the first collective on a group
/// containing `rank` once the trigger is due.
struct RankKill {
  int rank = -1;
  int at_level = -1;     ///< fire once the BFS reaches this level
  double at_time = -1.0; ///< fire once the rank's clock reaches this time

  bool due(int current_level, double now) const noexcept {
    if (at_level >= 0 && current_level >= at_level) return true;
    return at_time >= 0.0 && now >= at_time;
  }
};

/// What resident state an at-rest corruption event mangles.
enum class FlipTarget {
  kParents,     ///< one bit of one visited vertex's parent entry
  kLevels,      ///< one bit of one visited vertex's distance entry
  kVisited,     ///< one spurious bit in the sender-side visited bitmap
  kDirop,       ///< one bit of the direction-optimization m_u scalar
  kCheckpoint,  ///< one bit of the newest stored checkpoint replica
};

const char* to_string(FlipTarget target);
/// Parse "parents" | "levels" | "visited" | "dirop" | "checkpoint";
/// throws std::invalid_argument otherwise.
FlipTarget parse_flip_target(const std::string& name);

/// One scheduled at-rest corruption event: state resident on `rank` is
/// flipped at the first level barrier after `at_level` BFS levels have
/// completed. Like kills, entries naming ranks outside the cluster (or
/// levels the traversal never reaches) are ignored, and a fired flip is
/// consumed so recovery replays run clean — which is what lets a detected
/// corruption converge to bit-identical parents/levels.
struct MemFlip {
  int rank = -1;
  int at_level = -1;
  FlipTarget target = FlipTarget::kParents;

  bool due(int levels_completed) const noexcept {
    return at_level >= 0 && levels_completed >= at_level;
  }
};

struct FaultPlan {
  /// Stream selector for every random draw the plan makes. The seed does
  /// not by itself enable anything; rates and straggler lists do.
  std::uint64_t seed = 0;

  /// Probability that one collective issue fails and must be re-issued.
  double collective_fail_rate = 0.0;
  /// Re-issues before the collective is declared dead (FaultError).
  int max_collective_retries = 6;
  /// Backoff before re-issue k is min(cap, base * 2^k).
  double backoff_base_seconds = 1e-4;
  double backoff_cap_seconds = 2e-3;

  /// Probability that a data-carrying collective delivers a corrupted
  /// payload (one item bit-flipped, dropped, or duplicated).
  double corrupt_rate = 0.0;
  CorruptKind corrupt_kind = CorruptKind::kMix;
  /// Re-issues after a checksum mismatch before FaultError.
  int max_payload_retries = 3;

  /// (rank, factor) lists; factor > 1 slows the rank down. Entries for
  /// ranks outside the cluster are ignored (plans are written against a
  /// core count, not a specific grid shape).
  std::vector<std::pair<int, double>> compute_stragglers;
  std::vector<std::pair<int, double>> nic_stragglers;

  /// Scheduled fail-stop deaths (see RankKill). Entries for ranks outside
  /// the cluster are ignored, like the straggler lists.
  std::vector<RankKill> rank_kills;

  /// Scheduled at-rest corruption events (see MemFlip). Injected by the
  /// BFS drivers at level barriers; detection belongs to the state
  /// auditor and the verified checkpoint store, never the wire.
  std::vector<MemFlip> mem_flips;

  /// True when any perturbation is configured; gates every hot path.
  bool enabled() const noexcept;
  bool payload_faults() const noexcept { return corrupt_rate > 0.0; }

  double compute_factor(int rank) const noexcept;
  double nic_slowdown(int rank) const noexcept;

  /// Deterministic draws, keyed by (seed, event index). Events are
  /// numbered by the Cluster in issue order.
  bool collective_fails(std::uint64_t event) const noexcept;
  CorruptKind corruption_at(std::uint64_t event) const noexcept;
  /// Raw 64-bit draw used to pick corruption victims (buffer/item/bit).
  std::uint64_t shape_draw(std::uint64_t event) const noexcept;

  /// Raw 64-bit draw picking an at-rest flip's victim vertex/bit. Keyed
  /// by the flip's own identity (rank, level, target) rather than an
  /// event counter so the same flip mangles the same bit no matter how
  /// many recoveries replayed before it fired.
  std::uint64_t flip_shape(const MemFlip& flip) const noexcept;

  double backoff_seconds(int attempt) const noexcept;
};

/// Serialize a plan as a JSON object (hand-rolled, byte-stable like the
/// other writers). Kill schedules land under "rank_kills" and corruption
/// schedules under "mem_flips"; a plan without either omits the key so
/// pre-kill readers keep working.
std::string to_json(const FaultPlan& plan);

/// Parse a plan written by to_json (or by hand). Absent keys keep their
/// defaults, so an old pre-kill plan JSON loads with an empty kill
/// schedule — inert with respect to fail-stop faults. Unknown top-level
/// keys (a newer plan read by an older binary) warn once per key to
/// stderr instead of being silently dropped.
FaultPlan fault_plan_from_json(const std::string& text);

/// Parse the CLI kill syntax: comma-separated "RANK@levelL" /
/// "RANK@tSECONDS" specs, e.g. "2@level3,0@t0.05". Throws
/// std::invalid_argument on malformed specs.
std::vector<RankKill> parse_kill_specs(const std::string& spec);

/// Parse the CLI at-rest corruption syntax: comma-separated
/// "RANK@levelL:target" specs, e.g. "2@level3:parents,0@level1:dirop".
/// Throws std::invalid_argument on malformed specs.
std::vector<MemFlip> parse_flip_specs(const std::string& spec);

/// Per-run fault accounting, reset alongside clocks and traffic.
struct FaultCounters {
  std::int64_t collective_failures = 0;  ///< failed issues injected
  std::int64_t collective_retries = 0;   ///< re-issues that went through
  double backoff_seconds = 0.0;          ///< total backoff waited
  double reissue_seconds = 0.0;          ///< transfer time paid again
  std::int64_t payload_corruptions = 0;  ///< items mangled in flight
  std::int64_t checksum_checks = 0;      ///< checked_* verification rounds
  std::int64_t payload_retries = 0;      ///< exchanges re-issued on mismatch

  void reset() { *this = FaultCounters{}; }
};

}  // namespace dbfs::simmpi
