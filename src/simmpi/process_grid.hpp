// Logical pr×pc process grid for the 2D algorithm (paper §3.2). Rank
// (i,j) is stored row-major. Row groups carry the "fold" Alltoallv and
// column groups the "expand" Allgatherv; the transpose partner realizes
// TransposeVector's pairwise exchange on square grids.
#pragma once

#include <span>
#include <vector>

namespace dbfs::simmpi {

class ProcessGrid {
 public:
  ProcessGrid() = default;

  /// Square s×s grid.
  explicit ProcessGrid(int s) : ProcessGrid(s, s) {}

  /// General pr×pc grid (the paper's experiments use square grids; the
  /// general form is kept for the vector-distribution experiments).
  ProcessGrid(int pr, int pc);

  /// Largest square grid fitting within `cores/threads_per_rank` ranks —
  /// the paper's "closest square processor grid" (§6).
  static ProcessGrid closest_square(int cores, int threads_per_rank = 1);

  int pr() const noexcept { return pr_; }
  int pc() const noexcept { return pc_; }
  int ranks() const noexcept { return pr_ * pc_; }

  int rank_of(int i, int j) const noexcept { return i * pc_ + j; }
  int row_of(int rank) const noexcept { return rank / pc_; }
  int col_of(int rank) const noexcept { return rank % pc_; }

  /// Ranks of processor row i: P(i, 0..pc).
  std::span<const int> row_group(int i) const noexcept {
    return {rows_.data() + static_cast<std::size_t>(i) * pc_,
            static_cast<std::size_t>(pc_)};
  }

  /// Ranks of processor column j: P(0..pr, j).
  std::span<const int> col_group(int j) const noexcept {
    return {cols_.data() + static_cast<std::size_t>(j) * pr_,
            static_cast<std::size_t>(pr_)};
  }

  /// All ranks, 0..ranks().
  std::span<const int> world() const noexcept { return world_; }

  /// Transpose partner of `rank` (requires a square grid): P(i,j)<->P(j,i).
  int transpose_partner(int rank) const noexcept {
    return rank_of(col_of(rank), row_of(rank));
  }

  bool is_square() const noexcept { return pr_ == pc_; }

 private:
  int pr_ = 0;
  int pc_ = 0;
  std::vector<int> rows_;   // row-group members, pr_ runs of length pc_
  std::vector<int> cols_;   // col-group members, pc_ runs of length pr_
  std::vector<int> world_;
};

}  // namespace dbfs::simmpi
